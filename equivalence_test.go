// API-equivalence differential harness: the stateful Optimizer service
// must be a drop-in replacement for the legacy one-shot surface. Over the
// 200-scenario corpus (differential_test.go), Optimizer.Optimize and
// Optimizer.OptimizeBatch must return byte-identical PlanReports to
// Scenario.Optimize — cold, and warm through the drift-banded plan cache.
package lecopt

import (
	"testing"
)

// responseKey renders every PlanReport field of a Response, mirroring
// batchReportKey for the service surface.
func responseKey(r Response) string {
	return batchReportKey(r.PlanReport)
}

// corpusRequest converts a corpus scenario into the service Request form.
func corpusRequest(sc *Scenario, alg Algorithm) Request {
	return Request{
		Cat:   sc.Cat,
		Query: sc.Query,
		Env:   sc.Env,
		Alg:   alg,
	}
}

// TestEquivalenceOptimize runs each corpus scenario through a fresh
// handle's Optimize and requires byte-identical reports to the legacy
// Scenario.Optimize path, for a classical and an LEC algorithm.
func TestEquivalenceOptimize(t *testing.T) {
	corpus := diffCorpus(t)
	for _, alg := range []Algorithm{AlgLSCMode, AlgC} {
		opt := New(nil)
		for i, sc := range corpus {
			legacy, err := sc.Optimize(alg)
			if err != nil {
				t.Fatalf("scenario %d: legacy %s: %v", i, alg, err)
			}
			resp, err := opt.Optimize(corpusRequest(sc, alg))
			if err != nil {
				t.Fatalf("scenario %d: handle %s: %v", i, alg, err)
			}
			if got, want := responseKey(resp), batchReportKey(legacy); got != want {
				t.Errorf("scenario %d (%s):\n got %s\nwant %s", i, alg, got, want)
			}
		}
	}
}

// TestEquivalenceOptimizeBatch runs the whole corpus through a handle's
// OptimizeBatch — cold, then warm on the same handle — and requires
// byte-identical reports to the sequential legacy path both times, with
// the warm pass fully served from the drift-banded plan cache.
func TestEquivalenceOptimizeBatch(t *testing.T) {
	corpus := diffCorpus(t)
	reqs := make([]Request, len(corpus))
	want := make([]string, len(corpus))
	for i, sc := range corpus {
		reqs[i] = corpusRequest(sc, AlgC)
		rep, err := sc.Optimize(AlgC)
		if err != nil {
			t.Fatalf("scenario %d: sequential: %v", i, err)
		}
		want[i] = batchReportKey(rep)
	}
	check := func(label string, results []Response) {
		t.Helper()
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: scenario %d: %v", label, i, r.Err)
			}
			if got := responseKey(r); got != want[i] {
				t.Errorf("%s: scenario %d:\n got %s\nwant %s", label, i, got, want[i])
			}
		}
	}
	opt := New(nil, WithWorkers(8))
	check("cold", opt.OptimizeBatch(reqs))
	warm := opt.OptimizeBatch(reqs)
	check("warm", warm)
	hits := 0
	for _, r := range warm {
		if r.CacheHit {
			hits++
		}
	}
	if hits != len(reqs) {
		t.Errorf("warm pass: %d/%d cache hits", hits, len(reqs))
	}
	st := opt.CacheStats()
	if st.Evictions != 0 {
		t.Errorf("corpus should fit the default cache: %d evictions", st.Evictions)
	}
	occupancy := 0
	for _, n := range st.ShardSizes {
		occupancy += n
	}
	if occupancy != st.Size || st.Size == 0 {
		t.Errorf("shard occupancy %d disagrees with size %d", occupancy, st.Size)
	}
}

// TestEquivalenceDeprecatedWrappers pins that the deprecated free
// functions still answer exactly like the handle they delegate to.
func TestEquivalenceDeprecatedWrappers(t *testing.T) {
	corpus := diffCorpus(t)[:40]
	jobs := make([]BatchJob, len(corpus))
	reqs := make([]Request, len(corpus))
	for i, sc := range corpus {
		jobs[i] = BatchJob{Scenario: sc, Alg: AlgC}
		reqs[i] = corpusRequest(sc, AlgC)
	}
	legacy := OptimizeBatch(jobs, BatchOptions{Workers: 4, Cache: NewPlanCache(256)})
	handle := New(nil, WithWorkers(4)).OptimizeBatch(reqs)
	for i := range corpus {
		if legacy[i].Err != nil || handle[i].Err != nil {
			t.Fatalf("scenario %d: errs %v / %v", i, legacy[i].Err, handle[i].Err)
		}
		if got, want := batchReportKey(legacy[i].Report), responseKey(handle[i]); got != want {
			t.Errorf("scenario %d:\n legacy %s\n handle %s", i, got, want)
		}
	}
}
