// Hot-path gates: the allocation contracts and concurrency properties of
// the serving path (see DESIGN.md "Hot path"). These run as part of the
// ordinary test suite so a regression that reintroduces per-request
// garbage — a signature rebuilt on the heap, a scenario that escapes, a
// DP table that stops pooling — fails `go test ./...`, not just a
// benchmark someone has to read.
package lecopt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"lecopt/internal/feedback"
	"lecopt/internal/workload"
)

// missPathAllocBudget bounds the allocations of one cache-miss Optimize
// (request resolution + cache key + full DP + report). Measured at 264
// allocs/op on the reference corpus (down from 1324 before the pooled
// scratch arenas — a 5x cut); the budget leaves ~1.5x headroom so routine
// churn does not trip it while an accidental return to per-node heap
// allocation (which costs hundreds per query) still does.
const missPathAllocBudget = 400

// hotPathRequests builds the mixed 2-5 table request corpus the
// allocation gates and benchmarks share.
func hotPathRequests(t testing.TB, n int) []Request {
	t.Helper()
	envs, err := workload.StandardEnvs()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	shapes := []workload.Shape{workload.Chain, workload.Star, workload.Clique, workload.Random}
	reqs := make([]Request, n)
	for i := range reqs {
		sc, err := workload.Generate(workload.DefaultSpec(2+rng.Intn(4), shapes[i%len(shapes)]), rng)
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = Request{Cat: sc.Cat, Query: sc.Block, Env: envs[i%len(envs)].Env, Alg: AlgC}
	}
	return reqs
}

// TestWarmHitZeroAllocs pins the tentpole claim: a plan-cache hit performs
// zero heap allocations — the key is built in a pooled buffer, hashed on
// the stack, and looked up by raw bytes; the scenario itself is pooled.
func TestWarmHitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	reqs := hotPathRequests(t, 64)
	opt := New(nil)
	for _, r := range reqs {
		if _, err := opt.Optimize(r); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := opt.Optimize(reqs[i%len(reqs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("warm cache hit allocates: %.2f allocs/op, want 0", allocs)
	}
}

// TestMissPathAllocBudget bounds the full optimize path. Unlike the hit
// gate this cannot be zero — the report and its plan tree are real
// results — but the DP's working state (tables, join nodes, candidate
// buffers) must stay pooled.
func TestMissPathAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	reqs := hotPathRequests(t, 64)
	opt := New(nil, WithoutPlanCache())
	for _, r := range reqs[:8] { // warm the scratch pools
		if _, err := opt.Optimize(r); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := opt.Optimize(reqs[i%len(reqs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > missPathAllocBudget {
		t.Fatalf("cache-miss Optimize allocates %.2f allocs/op, budget %d", allocs, missPathAllocBudget)
	}
}

// TestConcurrentOptimizeObserve drives Optimize and Observe through one
// handle from many goroutines — the serving pattern the sharded feedback
// store exists for. Run under -race this proves the shard locking and the
// lock-free observation counter; under the plain suite it still checks
// that concurrent feedback never corrupts results (every response must
// carry a plan).
func TestConcurrentOptimizeObserve(t *testing.T) {
	reqs := hotPathRequests(t, 32)
	opt := New(nil, WithPlanCache(256))
	var wg sync.WaitGroup
	const goroutines, iters = 8, 200
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r := reqs[(g*iters+i)%len(reqs)]
				if g%2 == 0 {
					resp, err := opt.Optimize(r)
					if err != nil {
						errs <- err
						return
					}
					if resp.Plan == nil {
						errs <- fmt.Errorf("goroutine %d iter %d: nil plan", g, i)
						return
					}
				} else {
					err := opt.Observe(Feedback{Cat: r.Cat, Query: r.Query, Sizes: map[string]float64{
						feedback.SetKey(r.Query.Tables[0], r.Query.Tables[1]): float64(100 + i),
					}})
					if err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCorpusWorkersByteIdentical runs the 200-scenario differential corpus
// through the public surface at workers 1, 4 and 8 and requires identical
// reports: Options.Workers must never change which plan is found, which is
// also why it is excluded from plan-cache signatures. (The in-package
// optimizer tests force the rank-parallel gate open on this corpus's
// shapes; here the corpus pins the end-to-end wiring.)
func TestCorpusWorkersByteIdentical(t *testing.T) {
	for i, sc := range diffCorpus(t) {
		sc.Opts.Workers = 1
		base, err := sc.Optimize(AlgC)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		want := batchReportKey(base)
		for _, w := range []int{4, 8} {
			sc.Opts.Workers = w
			rep, err := sc.Optimize(AlgC)
			if err != nil {
				t.Fatalf("scenario %d workers=%d: %v", i, w, err)
			}
			if got := batchReportKey(rep); got != want {
				t.Fatalf("scenario %d: workers=%d diverged:\n got %s\nwant %s", i, w, got, want)
			}
		}
	}
}

// BenchmarkOptimizeHit measures the warm plan-cache hit path; run with
// -benchmem, the headline is 0 allocs/op.
func BenchmarkOptimizeHit(b *testing.B) {
	reqs := hotPathRequests(b, 64)
	opt := New(nil)
	for _, r := range reqs {
		if _, err := opt.Optimize(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeMiss measures the uncached optimize path with pooled
// DP scratch (cache disabled so every iteration runs the dynamic program).
func BenchmarkOptimizeMiss(b *testing.B) {
	reqs := hotPathRequests(b, 64)
	opt := New(nil, WithoutPlanCache())
	for _, r := range reqs[:8] {
		if _, err := opt.Optimize(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserveContended hammers the sharded feedback store from all
// cores: distinct queries hash to distinct shards, so throughput should
// scale instead of serializing on one store-wide mutex.
func BenchmarkObserveContended(b *testing.B) {
	reqs := hotPathRequests(b, 32)
	opt := New(nil, WithPlanCache(256))
	sizes := make([]map[string]float64, len(reqs))
	for i, r := range reqs {
		sizes[i] = map[string]float64{
			feedback.SetKey(r.Query.Tables[0], r.Query.Tables[1]): float64(100 + i),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := reqs[i%len(reqs)]
			if err := opt.Observe(Feedback{Cat: r.Cat, Query: r.Query, Sizes: sizes[i%len(sizes)]}); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
