package lecopt

import (
	"strings"
	"testing"

	"lecopt/internal/lint"
)

// TestNoUnseededRand is the repo-wide determinism contract: every use of
// math/rand must flow through an explicitly seeded rand.New(rand.NewSource(
// seed)) generator, never the process-global helpers and never a wall-clock
// seed, and no map range may emit iteration-order-dependent data unsorted.
// The actual enforcement lives in internal/lint's type-resolved
// `determinism` analyzer (which subsumed this test's original regex scan
// and its clock-seed pattern); this shim keeps the historical test name as
// a thin registry invocation so a determinism regression still fails under
// its old, greppable banner. Package coverage of the walk is guarded by
// lint's TestModuleCoverage.
func TestNoUnseededRand(t *testing.T) {
	m, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	a := lint.ByName("determinism")
	if a == nil {
		t.Fatal("determinism analyzer missing from the leclint registry")
	}
	for _, d := range lint.Run(m, []*lint.Analyzer{a}) {
		t.Errorf("%s", d)
	}
	// The analyzer must still reach this root package: its own unit list
	// is the walk the old test hand-rolled.
	found := false
	for _, u := range m.Units {
		if u.Path == "lecopt" || strings.HasPrefix(u.Path, "lecopt/") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("lint module load covers no lecopt packages")
	}
}
