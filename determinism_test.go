package lecopt

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestNoUnseededRand pins the repo-wide determinism contract: every use of
// math/rand must flow through an explicitly seeded rand.New(rand.NewSource(
// seed)) generator. The package-level helpers (rand.Intn, rand.Float64, …)
// draw from a process-global source, which would make workload generation,
// experiments and the differential corpus irreproducible — exactly the
// failure mode the batch-vs-sequential comparisons cannot tolerate. An
// audit found zero offenders; this test keeps it that way.
func TestNoUnseededRand(t *testing.T) {
	// Matches package-level calls like `rand.Intn(` but not method calls on
	// a *rand.Rand value (those are spelled rng.Intn) and not the allowed
	// constructors rand.New / rand.NewSource / rand.NewZipf.
	forbidden := regexp.MustCompile(
		`\brand\.(Intn?|Int31n?|Int63n?|Uint32|Uint64|Float32|Float64|NormFloat64|ExpFloat64|Perm|Shuffle|Seed|Read)\(`)
	// Wall-clock seeds smuggle nondeterminism past the pattern above.
	clockSeed := regexp.MustCompile(`rand\.NewSource\([^)]*time\.Now`)
	var offenders []string
	scanned := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || path == "determinism_test.go" {
			return nil
		}
		scanned[path] = true
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if forbidden.MatchString(line) || clockSeed.MatchString(line) {
				offenders = append(offenders, path+":"+strconv.Itoa(i+1)+": "+strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) > 0 {
		t.Errorf("unseeded package-level math/rand calls (use rand.New(rand.NewSource(seed))):\n  %s",
			strings.Join(offenders, "\n  "))
	}
	// Guard the audit's own coverage: every sampling-heavy package must be
	// under the walk (a future SkipDir tweak silently exempting the
	// workload generators or the serving runner would gut this test).
	for _, mustSee := range []string{
		"internal/workload/workload.go",
		"internal/workload/serving/mix.go",
		"internal/workload/serving/runner.go",
		"internal/workload/serving/agreement.go",
		"internal/envsim/envsim.go",
		"internal/dist/chain.go",
		"internal/core/service.go",
		"internal/feedback/feedback.go",
		"cmd/lecbench/throughput.go",
		"cmd/lecbench/workloadmode.go",
		"service.go",
	} {
		if !scanned[mustSee] {
			t.Errorf("determinism audit no longer scans %s", mustSee)
		}
	}
}
