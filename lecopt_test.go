package lecopt

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the documented public surface
// end-to-end: build a catalog, parse SQL, optimize classically and with
// LEC, and compare.
func TestPublicAPIQuickstart(t *testing.T) {
	cat := NewCatalog()
	a, err := NewTable("a", 1_000_000, 100_000_000,
		Column{Name: "k", Distinct: 4e13 / 3000.0, Min: 0, Max: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(a); err != nil {
		t.Fatal(err)
	}
	b, err := NewTable("b", 400_000, 40_000_000,
		Column{Name: "k", Distinct: 1000, Min: 0, Max: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(b); err != nil {
		t.Fatal(err)
	}

	blk, err := ParseSQL("SELECT * FROM a, b WHERE a.k = b.k ORDER BY a.k", cat)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Bimodal(700, 2000, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{Cat: cat, Query: blk, Env: Env{Mem: mem}}

	classical, err := sc.Optimize(AlgLSCMode)
	if err != nil {
		t.Fatal(err)
	}
	lec, err := sc.Optimize(AlgC)
	if err != nil {
		t.Fatal(err)
	}
	if !(lec.EC < classical.EC) {
		t.Fatalf("LEC (%v) must beat classical (%v)", lec.EC, classical.EC)
	}
	if !strings.Contains(lec.Plan.String(), "grace-hash") {
		t.Fatalf("expected grace-hash plan, got:\n%s", lec.Plan)
	}

	// ExpectedCost through the public helper agrees with the report.
	ec, err := ExpectedCost(lec.Plan, []Dist{mem})
	if err != nil {
		t.Fatal(err)
	}
	if ec != lec.EC {
		t.Fatalf("ExpectedCost %v vs report %v", ec, lec.EC)
	}
}

func TestPublicDistHelpers(t *testing.T) {
	p := PointDist(42)
	if p.Mean() != 42 {
		t.Fatal("PointDist")
	}
	d, err := NewDist([]float64{1, 2}, []float64{1, 3})
	if err != nil || d.Prob(1) != 0.75 {
		t.Fatalf("NewDist: %v %v", d, err)
	}
	ch, err := StickyChain([]float64{10, 20}, 0.5)
	if err != nil || ch.Len() != 2 {
		t.Fatalf("StickyChain: %v", err)
	}
	if len(Algorithms()) == 0 {
		t.Fatal("Algorithms list")
	}
}

// TestPublicRunWorkload drives the engine-in-the-loop serving simulator
// through the public façade and re-asserts the acceptance claim on a small
// fixed-seed workload: aggregate realized LEC I/O never exceeds LSC's.
func TestPublicRunWorkload(t *testing.T) {
	spec, err := DefaultWorkloadSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Queries = 8
	rep, err := RunWorkload(spec, WorkloadRun{Requests: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 150 || rep.TotalLSCIO <= 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.TotalLECIO > rep.TotalLSCIO {
		t.Fatalf("realized LEC %d > LSC %d", rep.TotalLECIO, rep.TotalLSCIO)
	}
	if rep.RealizedRatio > 1 || rep.RealizedRatio <= 0 {
		t.Fatalf("ratio %v out of range", rep.RealizedRatio)
	}
	// Reproducibility through the public surface.
	again, err := RunWorkload(spec, WorkloadRun{Requests: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalLSCIO != rep.TotalLSCIO || again.TotalLECIO != rep.TotalLECIO {
		t.Fatalf("same spec+seed must reproduce: %+v vs %+v", again, rep)
	}
}
