module lecopt

go 1.24
