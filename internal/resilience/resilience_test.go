package resilience

import (
	"fmt"
	"reflect"
	"testing"

	"lecopt/internal/catalog"
	"lecopt/internal/core"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
)

// testCatalog builds n joinable tables whose distinct counts all sit in
// the log2 band [512, 1024), so ScaleDistinct(4) moves every column
// exactly two bands up — the drifted catalogs used to force cold misses.
func testCatalog(t *testing.T, n int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for i := 0; i < n; i++ {
		tab, err := catalog.NewTable(fmt.Sprintf("t%d", i), 1000, 10_000,
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 600 + float64(i)*17, Min: 0, Max: 1e6})
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func scaled(t *testing.T, cat *catalog.Catalog, f float64) *catalog.Catalog {
	t.Helper()
	out, err := cat.ScaleDistinct(f)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func coreReq(cat *catalog.Catalog, sql string) core.Request {
	return core.Request{SQL: sql, Cat: cat, Env: envsim.Env{Mem: dist.Point(2000)}, Alg: core.AlgC}
}

const joinSQL = "SELECT * FROM t0, t1 WHERE t0.k = t1.k"

// flatLatency prices every cold optimization at exactly ColdBase so the
// accounting in the tests is arithmetic, not plan-space-dependent.
var flatLatency = LatencySpec{Hit: 10, ColdBase: 1000, Degraded: 40, Observe: 5}

func TestBudgetDeniesColdPathAndStillServes(t *testing.T) {
	cat := testCatalog(t, 2)
	clock := NewVirtualClock(0)
	w := New(core.NewOptimizer(nil, core.Config{}), Config{
		Budget:  BudgetSpec{Capacity: 1000, RefillPerSec: 2000},
		Latency: flatLatency,
		Clock:   clock,
	})

	// r1: full bucket admits exactly one cold optimization and drains it.
	out := w.Do(Request{Tenant: "a", Query: "q", Core: coreReq(cat, joinSQL)})
	if out.Decision != DecisionCold || out.Charged != 1000 {
		t.Fatalf("r1: want cold charging 1000, got %s charging %d", out.Decision, out.Charged)
	}

	// r2: a two-band drift at the same instant is a cold miss with an
	// empty bucket — denied, but served the nearest banded cached plan
	// (the widened band search reaches two bands away).
	out = w.Do(Request{Tenant: "a", Query: "q", Core: coreReq(scaled(t, cat, 4), joinSQL)})
	if out.Decision != DecisionDeniedCache {
		t.Fatalf("r2: want %s, got %s", DecisionDeniedCache, out.Decision)
	}
	if out.Plan == nil || out.Err != nil {
		t.Fatalf("r2: denied request must still be served a plan (err %v)", out.Err)
	}

	// r3: a four-band drift is beyond the widened search — degraded plan.
	out = w.Do(Request{Tenant: "a", Query: "q", Core: coreReq(scaled(t, cat, 64), joinSQL)})
	if out.Decision != DecisionDeniedDegraded || !out.Degraded || out.Plan == nil {
		t.Fatalf("r3: want served degraded plan, got %s (plan %v, err %v)", out.Decision, out.Plan, out.Err)
	}

	// One virtual second refills the bucket: the same far drift is now
	// admitted to the cold path.
	clock.Advance(1_000_000)
	out = w.Do(Request{Tenant: "a", Query: "q", Core: coreReq(scaled(t, cat, 64), joinSQL)})
	if out.Decision != DecisionCold {
		t.Fatalf("r4: refilled bucket should admit, got %s", out.Decision)
	}

	s := w.Stats()
	if s.BudgetDenials != 2 || s.Requests != 4 {
		t.Fatalf("stats: want 2 denials over 4 requests, got %+v", s)
	}
	if len(s.Tenants) != 1 || s.Tenants[0].Denials != 2 {
		t.Fatalf("tenant breakdown wrong: %+v", s.Tenants)
	}
}

func TestBreakerTripsServesDegradedAndRecovers(t *testing.T) {
	cat := testCatalog(t, 2)
	clock := NewVirtualClock(0)
	w := New(core.NewOptimizer(nil, core.Config{}), Config{
		Breaker: BreakerSpec{Window: 4, Threshold: 0.5, MinSamples: 2, Cooldown: 1000},
		Latency: flatLatency,
		Clock:   clock,
	})
	do := func(c *catalog.Catalog) Outcome {
		return w.Do(Request{Tenant: "a", Query: "q", Core: coreReq(c, joinSQL)})
	}

	cat4, cat16 := scaled(t, cat, 4), scaled(t, cat, 16)
	// Two band-crossing cold misses in a row: churn 2/2 trips the breaker.
	if out := do(cat); out.Decision != DecisionCold {
		t.Fatalf("r1: %s", out.Decision)
	}
	if out := do(cat4); out.Decision != DecisionCold {
		t.Fatalf("r2: %s", out.Decision)
	}
	// Open: served without touching the cold path. cat16's band was never
	// optimized, and the widened cache search (±2 bands around cat16)
	// reaches cat4's band — degraded-but-cached service while open.
	out := do(cat16)
	if out.Breaker != "open" || out.Decision != DecisionBreakerCache {
		t.Fatalf("r3: want open/breaker-cache, got %s/%s", out.Breaker, out.Decision)
	}
	// Cooldown elapses → half-open trial. A trial on a never-cached band
	// is a cold miss: the tenant is still churning, the breaker reopens.
	clock.Advance(1000)
	out = do(scaled(t, cat, 256))
	if out.Decision != DecisionBreakerTrial || out.Breaker != "half-open" {
		t.Fatalf("r4: want half-open trial, got %s/%s", out.Breaker, out.Decision)
	}
	// Another cooldown → trial on that now-cached band with an unchanged
	// plan: clean recovery, the breaker closes.
	clock.Advance(1000)
	if out := do(scaled(t, cat, 256)); out.Decision != DecisionBreakerTrial || !out.CacheHit {
		t.Fatalf("r5: want trial cache hit, got %s (hit=%v)", out.Decision, out.CacheHit)
	}
	if out := do(scaled(t, cat, 256)); out.Decision != DecisionHit || out.Breaker != "closed" {
		t.Fatalf("r6: closed breaker should serve hits, got %s/%s", out.Decision, out.Breaker)
	}

	s := w.Stats()
	if s.BreakerTrips != 1 || s.BreakerReopens != 1 {
		t.Fatalf("want 1 trip + 1 reopen, got %+v", s)
	}
	if s.Tenants[0].OpenServed != 1 {
		t.Fatalf("want 1 open-served request, got %+v", s.Tenants[0])
	}
}

// TestHedgeAccounting drives the win / loss / cancel cases with exact
// arithmetic: flat 1000µs colds arm the p50 delay at 1000, then three
// jittered requests land one on each side of the race.
func TestHedgeAccounting(t *testing.T) {
	cat := testCatalog(t, 6)
	w := New(core.NewOptimizer(nil, core.Config{}), Config{
		Hedge:   HedgeSpec{Quantile: 0.5, MinSamples: 3, Startup: 10},
		Latency: flatLatency,
		Clock:   NewVirtualClock(0),
	})
	pairs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}}
	do := func(i int, pj, hj float64) Outcome {
		sql := fmt.Sprintf("SELECT * FROM t%d, t%d WHERE t%d.k = t%d.k",
			pairs[i][0], pairs[i][1], pairs[i][0], pairs[i][1])
		return w.Do(Request{Tenant: "a", Query: fmt.Sprintf("q%d", i),
			Core: coreReq(cat, sql), PrimaryJitter: pj, HedgeJitter: hj})
	}

	// Three unhedged colds at jitter 1 arm the delay ring: p50 = 1000.
	for i := 0; i < 3; i++ {
		if out := do(i, 1, 1); out.Hedge != HedgeNone || out.Served != 1000 {
			t.Fatalf("warmup %d: %+v", i, out)
		}
	}
	// Win: primary 2000 outlives the 1000 delay; hedge finishes at
	// 1000+400=1400. Served 1400; the primary's 1400µs of work is waste.
	out := do(3, 2, 0.4)
	if out.Hedge != HedgeWin || out.Served != 1400 || out.Wasted != 1400 || out.Charged != 1800 {
		t.Fatalf("win: %+v", out)
	}
	// Cancel: primary 1004 (1000 × 1.005, truncated to whole µs) beats the
	// hedge's 10µs startup window (ring now holds a 2000; p50 of
	// [1000,1000,1000,2000] is still 1000).
	out = do(4, 1.005, 1)
	if out.Hedge != HedgeCancel || out.Served != 1004 || out.Wasted != 10 || out.Charged != 1014 {
		t.Fatalf("cancel: %+v", out)
	}
	// Loss: hedge would finish at 1000+2000=3000, after the primary's
	// 2000. Served 2000; the hedge's 1000µs beyond its launch is waste.
	out = do(5, 2, 2)
	if out.Hedge != HedgeLoss || out.Served != 2000 || out.Wasted != 1000 || out.Charged != 3000 {
		t.Fatalf("loss: %+v", out)
	}

	s := w.Stats()
	if s.HedgesFired != 3 || s.HedgeWins != 1 || s.HedgeLosses != 1 || s.HedgeCancels != 1 {
		t.Fatalf("hedge counters: %+v", s)
	}
	if s.HedgeWins+s.HedgeLosses+s.HedgeCancels != s.HedgesFired {
		t.Fatalf("accounting identity broken: %+v", s)
	}
}

func TestTimelineRecordsEveryAttemptInOrder(t *testing.T) {
	cat := testCatalog(t, 2)
	tl := NewTimeline()
	w := New(core.NewOptimizer(nil, core.Config{}), Config{
		Latency: flatLatency, Clock: NewVirtualClock(7), Observer: tl,
	})
	req := Request{Tenant: "a", Query: "q", Core: coreReq(cat, joinSQL)}
	w.Do(req)
	w.Do(req)
	if err := w.Observe("a", "q", core.Feedback{SQL: joinSQL, Cat: cat, Sizes: map[string]float64{"t0|t1": 50}}); err != nil {
		t.Fatal(err)
	}

	evs := tl.Events()
	if len(evs) != 3 || tl.Len() != 3 {
		t.Fatalf("want 3 events, got %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("seq not dense: %+v", evs)
		}
		if ev.Start != 7 || ev.Tenant != "a" {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
	if evs[0].Decision != DecisionCold || evs[1].Decision != DecisionHit || evs[2].Kind != "observe" {
		t.Fatalf("decisions wrong: %+v", evs)
	}
	if evs[1].Duration != flatLatency.Hit || evs[2].Duration != flatLatency.Observe {
		t.Fatalf("durations wrong: %+v", evs)
	}
}

// TestWrapperDeterminism: the same request sequence against two fresh
// wrappers settles to identical stats and identical timelines.
func TestWrapperDeterminism(t *testing.T) {
	cat := testCatalog(t, 3)
	run := func() (Stats, []Event) {
		clock := NewVirtualClock(0)
		tl := NewTimeline()
		w := New(core.NewOptimizer(nil, core.Config{}), Config{
			Budget:   BudgetSpec{Capacity: 2000, RefillPerSec: 500_000},
			Breaker:  BreakerSpec{Window: 6, Threshold: 0.5, MinSamples: 4, Cooldown: 2000},
			Hedge:    HedgeSpec{Quantile: 0.5, MinSamples: 2, Startup: 10},
			Latency:  flatLatency,
			Clock:    clock,
			Observer: tl,
		})
		factors := []float64{1, 4, 1, 16, 4, 64, 1, 256, 16, 1}
		for i, f := range factors {
			clock.Set(Micros(i) * 500)
			w.Do(Request{Tenant: "a", Query: "q", Core: coreReq(scaled(t, cat, f), joinSQL),
				PrimaryJitter: 1 + float64(i%3), HedgeJitter: 1})
		}
		return w.Stats(), tl.Events()
	}
	s1, e1 := run()
	s2, e2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats diverged:\n%+v\nvs\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("timelines diverged")
	}
}
