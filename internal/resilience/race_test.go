package resilience

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"lecopt/internal/core"
)

// TestConcurrentDoWithObserver is the race-detector satellite: many
// goroutines drive Optimize and Observe through one wrapper with a
// Timeline attached. Under `go test -race` this proves the observer hook
// does not contend unsafely with the hot path; under plain `go test` it
// still checks the counters and the timeline stay consistent.
func TestConcurrentDoWithObserver(t *testing.T) {
	cat := testCatalog(t, 4)
	tl := NewTimeline()
	clock := NewVirtualClock(0)
	w := New(core.NewOptimizer(nil, core.Config{}), Config{
		Budget:   BudgetSpec{Capacity: 5000, RefillPerSec: 1_000_000},
		Breaker:  BreakerSpec{Window: 8, Threshold: 0.6, MinSamples: 6, Cooldown: 500},
		Hedge:    HedgeSpec{Quantile: 0.9, MinSamples: 4, Startup: 10},
		Latency:  flatLatency,
		Clock:    clock,
		Observer: tl,
	})

	const goroutines, perG = 8, 40
	sqls := []string{
		"SELECT * FROM t0, t1 WHERE t0.k = t1.k",
		"SELECT * FROM t0, t2 WHERE t0.k = t2.k",
		"SELECT * FROM t1, t3 WHERE t1.k = t3.k",
		"SELECT * FROM t2, t3 WHERE t2.k = t3.k",
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				q := rng.Intn(len(sqls))
				tenant := fmt.Sprintf("t-%d", rng.Intn(6))
				out := w.Do(Request{
					Tenant: tenant, Query: fmt.Sprintf("q%d", q),
					Core:          coreReq(cat, sqls[q]),
					PrimaryJitter: 0.5 + rng.Float64()*2,
					HedgeJitter:   0.5 + rng.Float64()*2,
				})
				if out.Err != nil {
					t.Errorf("Do failed: %v", out.Err)
					return
				}
				if i%10 == 0 {
					if err := w.Observe(tenant, fmt.Sprintf("q%d", q), core.Feedback{
						SQL: sqls[q], Cat: cat, Sizes: map[string]float64{"j": 40},
					}); err != nil {
						t.Errorf("Observe failed: %v", err)
						return
					}
					clock.Advance(100)
				}
			}
		}(g)
	}
	wg.Wait()

	s := w.Stats()
	if s.Requests != goroutines*perG {
		t.Fatalf("lost requests: %d of %d", s.Requests, goroutines*perG)
	}
	if s.Errors != 0 {
		t.Fatalf("%d errors", s.Errors)
	}
	if got := tl.Len(); got != s.Requests+s.ObserveCalls {
		t.Fatalf("timeline has %d events, want %d", got, s.Requests+s.ObserveCalls)
	}
	// Sequence numbers are unique and dense even under contention.
	seen := make(map[uint64]bool)
	for _, ev := range tl.Events() {
		if ev.Seq == 0 || ev.Seq > uint64(tl.Len()) || seen[ev.Seq] {
			t.Fatalf("bad seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if s.HedgeWins+s.HedgeLosses+s.HedgeCancels != s.HedgesFired {
		t.Fatalf("hedge identity broken under concurrency: %+v", s)
	}
}
