// Package resilience is the serving-policy layer between fleet traffic and
// the core.Optimizer service handle: per-tenant optimization budgets that
// gate cold-path plan computation under overload, hedged re-optimization
// for tail latency, circuit breakers that trip on drift churn (cache-miss
// + rank-flip rate) and serve degraded-but-cheap plans while open, and a
// timeline observer recording every attempt.
//
// Latency here is *modeled*: an injected LatencySpec prices each served
// path in virtual microseconds and an injected Clock supplies timestamps
// (decision logic never reads the wall clock), so a same-seed fleet run
// makes byte-identical decisions on any machine. The plans themselves are
// real — every path serves an executable plan from the wrapped handle.
package resilience

import (
	"sync"

	"lecopt/internal/core"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
)

// LatencySpec prices the serving paths in virtual microseconds of modeled
// optimizer work. The cold path scales with what the optimizer actually
// did (candidates enumerated, plan-space probes), so heavy queries cost
// proportionally more budget and hedge more often.
type LatencySpec struct {
	// Hit is a plan-cache hit (any path that serves a cached plan).
	Hit Micros
	// ColdBase + PerCandidate·Candidates + PerProbe·Probes is a cold
	// optimization's modeled duration; ColdBase is also the budget
	// admission floor.
	ColdBase     Micros
	PerCandidate Micros
	PerProbe     Micros
	// Degraded is a modal-point LSC fallback plan.
	Degraded Micros
	// Observe is a feedback fold.
	Observe Micros
}

// Config wires a Wrapper. Zero-valued specs disable their mechanism; a
// nil Clock gets a fresh VirtualClock at 0; a nil Observer records
// nothing.
type Config struct {
	Budget   BudgetSpec
	Breaker  BreakerSpec
	Hedge    HedgeSpec
	Latency  LatencySpec
	Clock    Clock
	Observer Observer
}

// Decision labels the policy that served a request.
type Decision string

const (
	// DecisionHit: served from the drift-banded plan cache on the fast
	// path (no budget or breaker involvement).
	DecisionHit Decision = "hit"
	// DecisionCold: admitted cold optimization, no hedge fired.
	DecisionCold Decision = "cold"
	// DecisionColdHedged: admitted cold optimization with a hedge fired.
	DecisionColdHedged Decision = "cold-hedged"
	// DecisionDeniedCache: over budget, served the nearest banded cached
	// plan from a widened band search.
	DecisionDeniedCache Decision = "denied-cache"
	// DecisionDeniedDegraded: over budget and nothing cached nearby,
	// served a degraded modal-point plan.
	DecisionDeniedDegraded Decision = "denied-degraded"
	// DecisionBreakerCache: breaker open, served a nearest cached plan.
	DecisionBreakerCache Decision = "breaker-cache"
	// DecisionBreakerDegraded: breaker open, served a degraded plan.
	DecisionBreakerDegraded Decision = "breaker-degraded"
	// DecisionBreakerTrial: half-open trial re-optimization.
	DecisionBreakerTrial Decision = "breaker-trial"
)

// nearestMargins is the widened band search (in band units, nearest
// first) used when a denied or breaker-open tenant must be served from
// cache: up to two full bands away — a plan optimized for statistics 4x
// off is degraded service, but it is *service*.
var nearestMargins = []float64{0.25, 0.5, 1, 2}

// Request is one tenant request through the wrapper.
type Request struct {
	// Tenant keys the budget, breaker, hedge and timeline state.
	Tenant string
	// Query labels the request in rank-flip tracking and the timeline
	// (typically the fleet's stable query ID).
	Query string
	// Core is the underlying optimization request.
	Core core.Request
	// PrimaryJitter and HedgeJitter scale the two attempts' modeled cold
	// durations (<= 0 means 1). The caller draws them from its own seeded
	// source — the wrapper owns no randomness.
	PrimaryJitter float64
	HedgeJitter   float64
}

// Outcome is the settled result of one request.
type Outcome struct {
	core.Response
	Decision Decision
	// Served is the modeled latency the caller experienced; Charged is
	// the modeled work billed to the tenant's budget; Wasted is the
	// loser's abandoned share of Charged when a hedge fired.
	Served  Micros
	Charged Micros
	Wasted  Micros
	// Hedge is the hedge outcome (HedgeNone when none fired).
	Hedge HedgeOutcome
	// Breaker is the tenant's breaker state at decision time.
	Breaker string
	// Degraded marks a modal-point fallback plan.
	Degraded bool
}

// tenantState is everything the wrapper remembers about one tenant.
type tenantState struct {
	budget   budget
	breaker  breaker
	hedge    hedger
	lastPlan map[string]string // query -> last normally-served plan signature

	requests   int
	denials    int
	openServed int
	degraded   int
	churn      int
}

// Wrapper applies the resilience policies around a core.Optimizer. It is
// concurrency-safe; the optimizer calls themselves run outside the
// wrapper's mutex, and the observer is invoked outside it too, so neither
// cold optimizations nor slow observers serialize other tenants.
type Wrapper struct {
	opt *core.Optimizer
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenantState
	seq     uint64

	requests     int
	errors       int
	decisions    map[Decision]int
	denials      int
	hedgesFired  int
	hedgeWins    int
	hedgeLosses  int
	hedgeCancels int
	observeCalls int
}

// New wraps opt with the configured policies.
func New(opt *core.Optimizer, cfg Config) *Wrapper {
	if cfg.Clock == nil {
		cfg.Clock = NewVirtualClock(0)
	}
	return &Wrapper{
		opt:       opt,
		cfg:       cfg,
		tenants:   make(map[string]*tenantState),
		decisions: make(map[Decision]int),
	}
}

func (w *Wrapper) tenant(name string) *tenantState {
	ts, ok := w.tenants[name]
	if !ok {
		ts = &tenantState{lastPlan: make(map[string]string)}
		ts.budget.spec = w.cfg.Budget
		ts.breaker.spec = w.cfg.Breaker
		ts.hedge.spec = w.cfg.Hedge
		w.tenants[name] = ts
	}
	return ts
}

// coldCost prices a cold optimization from the report's bookkeeping.
func (w *Wrapper) coldCost(resp core.Response) Micros {
	l := w.cfg.Latency
	return l.ColdBase + l.PerCandidate*Micros(resp.Candidates) + l.PerProbe*Micros(resp.Probes)
}

func jittered(d Micros, j float64) Micros {
	if j <= 0 {
		return d
	}
	return Micros(float64(d) * j)
}

// degraded serves the cheapest defensible plan: modal-point LSC — the
// least-specific-cost plan at the tenant's most likely memory level. It
// flows through the wrapped handle, so it is cached like any plan and
// costs real compute only once per band.
func (w *Wrapper) degraded(req Request) (core.Response, error) {
	deg := req.Core
	deg.Alg = core.AlgLSCMode
	deg.Env = envsim.Env{Mem: dist.Point(deg.Env.Mem.Mode())}
	return w.opt.Optimize(deg)
}

// Do serves one request under the tenant's budget, breaker and hedge
// state, and returns the settled outcome. Every path yields a plan (or an
// error in Outcome.Err); resilience means degraded service, not refusal.
func (w *Wrapper) Do(req Request) Outcome {
	now := w.cfg.Clock.Now()

	// Phase 1 — classify under the lock: breaker phase, budget admission,
	// and the rank-flip baseline. No optimizer work happens here.
	w.mu.Lock()
	ts := w.tenant(req.Tenant)
	ts.requests++
	w.requests++
	phase := ts.breaker.phase(now)
	lastSig := ts.lastPlan[req.Query]
	admitted := true
	if phase == breakerClosed {
		ts.budget.refill(now)
		admitted = ts.budget.admit(w.cfg.Latency.ColdBase)
	}
	w.mu.Unlock()

	// Phase 2 — serve outside the lock: cache probes, optimizations and
	// the degraded fallback are the expensive part and must not serialize
	// other tenants.
	var out Outcome
	var churn, recordChurn, isTrial, settlePlan, cold bool
	var primaryDur, hedgeDur Micros
	switch phase {
	case breakerOpen:
		if resp, ok := w.opt.Cached(req.Core, nearestMargins...); ok {
			out = Outcome{Response: resp, Decision: DecisionBreakerCache, Served: w.cfg.Latency.Hit}
		} else {
			resp, err := w.degraded(req)
			out = Outcome{Response: resp, Decision: DecisionBreakerDegraded, Served: w.cfg.Latency.Degraded, Degraded: err == nil}
		}
	case breakerHalfOpen:
		isTrial = true
		out.Decision = DecisionBreakerTrial
		resp, err := w.opt.Optimize(req.Core)
		out.Response = resp
		if err != nil {
			churn = true // an unoptimizable trial is not a recovery
		} else {
			sig := resp.Plan.Signature()
			churn = !resp.CacheHit || (lastSig != "" && lastSig != sig)
			settlePlan = true
			if resp.CacheHit {
				out.Served = w.cfg.Latency.Hit
			} else {
				primaryDur = jittered(w.coldCost(resp), req.PrimaryJitter)
				out.Served = primaryDur
				out.Charged = primaryDur
			}
		}
	default: // closed
		if resp, ok := w.opt.Cached(req.Core); ok {
			out = Outcome{Response: resp, Decision: DecisionHit, Served: w.cfg.Latency.Hit}
			churn = lastSig != "" && lastSig != resp.Plan.Signature()
			recordChurn, settlePlan = true, true
		} else if !admitted {
			// A denied request was still a primary-band cache miss, so it
			// records as churn: an overloaded tenant whose drift keeps
			// missing converges to the breaker's degraded serving instead
			// of denying cold work forever.
			churn, recordChurn = true, true
			if resp, ok := w.opt.Cached(req.Core, nearestMargins...); ok {
				out = Outcome{Response: resp, Decision: DecisionDeniedCache, Served: w.cfg.Latency.Hit}
				settlePlan = true
			} else {
				resp, err := w.degraded(req)
				out = Outcome{Response: resp, Decision: DecisionDeniedDegraded, Served: w.cfg.Latency.Degraded, Degraded: err == nil}
			}
		} else {
			resp, err := w.opt.Optimize(req.Core)
			out.Response = resp
			if err == nil {
				settlePlan = true
				if resp.CacheHit {
					// The margin-probe hysteresis (or a concurrent fill)
					// landed a hit the fast path missed: a hit is a hit.
					out.Decision = DecisionHit
					out.Served = w.cfg.Latency.Hit
					churn = lastSig != "" && lastSig != resp.Plan.Signature()
					recordChurn = true
				} else {
					cold, churn, recordChurn = true, true, true
					primaryDur = jittered(w.coldCost(resp), req.PrimaryJitter)
					hedgeDur = jittered(w.coldCost(resp), req.HedgeJitter)
				}
			} else {
				out.Decision = DecisionCold
			}
		}
	}
	out.Breaker = phase.String()

	// Phase 3 — settle under the lock: hedge resolution (the delay
	// quantile reads tenant state), budget charge, breaker bookkeeping,
	// rank-flip baseline, counters, and the event sequence number.
	w.mu.Lock()
	if cold {
		hr := ts.hedge.resolve(primaryDur, hedgeDur)
		ts.hedge.record(primaryDur)
		out.Served, out.Charged, out.Wasted, out.Hedge = hr.served, hr.charged, hr.wasted, hr.outcome
		out.Decision = DecisionCold
		if hr.fired {
			out.Decision = DecisionColdHedged
			w.hedgesFired++
			switch hr.outcome {
			case HedgeWin:
				w.hedgeWins++
			case HedgeLoss:
				w.hedgeLosses++
			case HedgeCancel:
				w.hedgeCancels++
			}
		}
	}
	if isTrial {
		ts.breaker.trialResult(churn, now)
	} else if recordChurn {
		ts.breaker.record(churn, now)
	}
	if churn && (recordChurn || isTrial) {
		ts.churn++
	}
	ts.budget.charge(out.Charged)
	if settlePlan && out.Plan != nil {
		ts.lastPlan[req.Query] = out.Plan.Signature()
	}
	switch out.Decision {
	case DecisionDeniedCache, DecisionDeniedDegraded:
		ts.denials++
		w.denials++
	case DecisionBreakerCache, DecisionBreakerDegraded:
		ts.openServed++
	}
	if out.Degraded {
		ts.degraded++
	}
	if out.Err != nil {
		w.errors++
	}
	w.decisions[out.Decision]++
	w.seq++
	seq := w.seq
	tokens := ts.budget.tokens
	w.mu.Unlock()

	// Phase 4 — observe outside the lock: a slow observer delays only
	// this caller.
	if w.cfg.Observer != nil {
		ev := Event{
			Seq: seq, Kind: "optimize",
			Tenant: req.Tenant, Query: req.Query,
			Decision: out.Decision,
			Start:    now, Duration: out.Served,
			CacheHit: out.CacheHit, Degraded: out.Degraded,
			Hedge: out.Hedge, Breaker: out.Breaker,
			BudgetTokens: tokens,
		}
		if out.Err != nil {
			ev.Err = out.Err.Error()
		}
		w.cfg.Observer.Record(ev)
	}
	return out
}

// Observe forwards executed-size feedback to the wrapped handle and
// records the attempt on the timeline. It is priced by LatencySpec.Observe
// but charged to no budget — feedback is how plans get *better*; taxing it
// under overload would be self-defeating.
func (w *Wrapper) Observe(tenant, query string, fb core.Feedback) error {
	now := w.cfg.Clock.Now()
	err := w.opt.Observe(fb)
	w.mu.Lock()
	w.observeCalls++
	if err != nil {
		w.errors++
	}
	w.seq++
	seq := w.seq
	w.mu.Unlock()
	if w.cfg.Observer != nil {
		ev := Event{
			Seq: seq, Kind: "observe",
			Tenant: tenant, Query: query,
			Start: now, Duration: w.cfg.Latency.Observe,
		}
		if err != nil {
			ev.Err = err.Error()
		}
		w.cfg.Observer.Record(ev)
	}
	return err
}
