package resilience

import "sync"

// Micros is the resilience layer's time unit: virtual microseconds. Every
// duration the layer decides with — budget refill, breaker cooldown, hedge
// delay, served latency — is a Micros, and every timestamp comes from an
// injected Clock, never from the wall clock. That is the whole determinism
// story: with a VirtualClock driven by the workload, a same-seed fleet run
// makes byte-identical decisions no matter how fast the hardware is.
type Micros int64

// Clock supplies the current virtual time. Decision logic reads time only
// through this interface; time.Now never appears in this package (the
// determinism lint fixture pins the violation shape).
type Clock interface {
	Now() Micros
}

// VirtualClock is a mutex-protected settable clock: the fleet runner sets
// it to each request's start time (arrival or queue-drain, whichever is
// later) before handing the request to the wrapper.
type VirtualClock struct {
	mu  sync.Mutex
	now Micros
}

// NewVirtualClock returns a clock reading now.
func NewVirtualClock(now Micros) *VirtualClock {
	return &VirtualClock{now: now}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() Micros {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set moves the clock to t. Moving backwards is allowed (a fresh load
// level restarts its timeline); state machines that difference timestamps
// clamp negatives to zero.
func (c *VirtualClock) Set(t Micros) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *VirtualClock) Advance(d Micros) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}
