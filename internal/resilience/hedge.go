package resilience

import "sort"

// HedgeSpec is tail-latency hedging for admitted cold optimizations: when
// the primary attempt's modeled duration exceeds a quantile of the
// tenant's recent cold durations, a second attempt is (virtually) fired
// after that quantile delay, the first finisher's result is served, and
// the loser's work is accounted as waste and charged to the tenant's
// budget. The zero value disables hedging.
//
// Identity the report asserts: wins + losses + cancels == hedges fired.
type HedgeSpec struct {
	// Quantile of the recent cold-duration window that sets the hedge
	// delay (e.g. 0.9: hedge fires when the primary outlives its p90).
	// <= 0 disables.
	Quantile float64
	// MinSamples is how many cold durations must be recorded for a tenant
	// before hedging arms (a delay derived from two samples is noise).
	MinSamples int
	// WindowSize bounds the duration ring (0 means 64).
	WindowSize int
	// Startup is the modeled cost of firing an attempt: a hedge whose
	// primary finishes within Startup of the hedge's launch is a cancel —
	// only the startup cost is wasted, not a full attempt.
	Startup Micros
}

func (s HedgeSpec) enabled() bool { return s.Quantile > 0 }

func (s HedgeSpec) window() int {
	if s.WindowSize > 0 {
		return s.WindowSize
	}
	return 64
}

// HedgeOutcome labels what happened to a fired hedge.
type HedgeOutcome string

const (
	// HedgeNone: no hedge fired (disabled, unarmed, or the primary beat
	// the delay).
	HedgeNone HedgeOutcome = ""
	// HedgeCancel: the primary finished within Startup of the hedge
	// launch; the hedge was cancelled before doing real work.
	HedgeCancel HedgeOutcome = "cancel"
	// HedgeWin: the hedge finished first; its result was served and the
	// primary's remaining work was abandoned.
	HedgeWin HedgeOutcome = "win"
	// HedgeLoss: the primary finished first; the hedge's partial work was
	// wasted.
	HedgeLoss HedgeOutcome = "loss"
)

// hedger is one tenant's hedge state: a ring of recent cold primary
// durations from which the delay quantile is derived. Not concurrency-
// safe: the wrapper's mutex guards it.
type hedger struct {
	spec HedgeSpec
	ring []Micros
	head int
}

// record folds one cold primary duration into the ring.
func (h *hedger) record(d Micros) {
	if !h.spec.enabled() {
		return
	}
	w := h.spec.window()
	if len(h.ring) < w {
		h.ring = append(h.ring, d)
		return
	}
	h.ring[h.head] = d
	h.head = (h.head + 1) % w
}

// delay returns the armed hedge delay, or ok=false while unarmed.
func (h *hedger) delay() (Micros, bool) {
	if !h.spec.enabled() || len(h.ring) < h.spec.MinSamples || len(h.ring) == 0 {
		return 0, false
	}
	s := append([]Micros(nil), h.ring...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(h.spec.Quantile * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx], true
}

// hedgeResult is the settled accounting of one (possibly hedged) cold
// optimization, all in modeled Micros.
type hedgeResult struct {
	outcome HedgeOutcome
	fired   bool
	served  Micros // request latency as the caller experienced it
	charged Micros // total work billed to the tenant's budget
	wasted  Micros // the loser's abandoned share of charged
}

// resolve races a primary of duration primary against a hedge launched at
// delay with duration hedge (both already jittered):
//
//   - no hedge armed, or primary <= delay: the hedge never fires.
//   - primary in (delay, delay+Startup]: cancel — served by the primary,
//     the hedge wasted only its startup cost.
//   - delay+hedge < primary: win — served at delay+hedge; the primary's
//     work up to that instant is abandoned.
//   - otherwise: loss — served by the primary; the hedge's work up to
//     that instant is abandoned.
func (h *hedger) resolve(primary, hedge Micros) hedgeResult {
	d, armed := h.delay()
	if !armed || primary <= d {
		return hedgeResult{served: primary, charged: primary}
	}
	start := h.spec.Startup
	switch {
	case primary <= d+start:
		return hedgeResult{
			outcome: HedgeCancel, fired: true,
			served: primary, charged: primary + start, wasted: start,
		}
	case d+hedge < primary:
		served := d + hedge
		return hedgeResult{
			outcome: HedgeWin, fired: true,
			served: served, charged: hedge + served, wasted: served,
		}
	default:
		wasted := primary - d
		return hedgeResult{
			outcome: HedgeLoss, fired: true,
			served: primary, charged: primary + wasted, wasted: wasted,
		}
	}
}
