package resilience

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Event is one timeline entry: everything the wrapper decided about one
// Optimize or Observe attempt, stamped with the injected clock. Events are
// what an incident debugger replays — "which policy served this tenant at
// t, under what budget and breaker state, and what did it cost".
type Event struct {
	// Seq is the global admission order (atomic counter, dense from 1).
	Seq uint64 `json:"seq"`
	// Kind is "optimize" or "observe".
	Kind string `json:"kind"`
	// Tenant and Query identify the request.
	Tenant string `json:"tenant"`
	Query  string `json:"query,omitempty"`
	// Decision is the policy that served the request (Decision* consts).
	Decision Decision `json:"decision,omitempty"`
	// Start is the virtual time the wrapper took the request; Duration is
	// the modeled latency the caller experienced.
	Start    Micros `json:"start"`
	Duration Micros `json:"duration"`
	// CacheHit / Degraded describe what was served.
	CacheHit bool `json:"cache_hit,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// Hedge is the hedge outcome, if one fired.
	Hedge HedgeOutcome `json:"hedge,omitempty"`
	// Breaker is the tenant's breaker state at decision time.
	Breaker string `json:"breaker,omitempty"`
	// BudgetTokens is the tenant's token balance after settlement.
	BudgetTokens Micros `json:"budget_tokens"`
	// Err is the request error, if any.
	Err string `json:"err,omitempty"`
}

// Observer receives every wrapper event. Record is called outside the
// wrapper's mutex — after the decision settles — so a slow observer delays
// only its own request's caller, never other tenants; implementations must
// be concurrency-safe.
type Observer interface {
	Record(Event)
}

// timelineShards keeps shard-lock contention negligible next to the
// wrapper's own critical section (the race satellite's contract).
const timelineShards = 16

// Timeline is the standard Observer: an append-only, sharded event log.
// The wrapper stamps Seq inside its settlement critical section, so a
// sorted-by-Seq read reconstructs the global settlement order regardless
// of which shard a tenant's events landed in.
type Timeline struct {
	shards [timelineShards]struct {
		mu     sync.Mutex
		events []Event
	}
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Record appends the event to its tenant's shard.
func (t *Timeline) Record(ev Event) {
	h := fnv.New32a()
	h.Write([]byte(ev.Tenant))
	s := &t.shards[h.Sum32()%timelineShards]
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Timeline) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// Events returns every event merged across shards in Seq order.
func (t *Timeline) Events() []Event {
	var out []Event
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
