package resilience

import "sort"

// TenantStats is one tenant's settled counters.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Requests served (all decisions).
	Requests int `json:"requests"`
	// Denials is budget-denied requests (served from cache or degraded).
	Denials int `json:"denials,omitempty"`
	// Trips and Reopens are closed→open and half-open→open transitions.
	Trips   int `json:"trips,omitempty"`
	Reopens int `json:"reopens,omitempty"`
	// OpenServed is requests served while the breaker was open.
	OpenServed int `json:"open_served,omitempty"`
	// Degraded is modal-point fallback plans served.
	Degraded int `json:"degraded,omitempty"`
	// Churn is recorded churn events (cold miss or rank flip).
	Churn int `json:"churn,omitempty"`
	// BudgetTokens is the closing token balance.
	BudgetTokens Micros `json:"budget_tokens"`
}

// Stats is a consistent snapshot of the wrapper's counters. Tenants are
// sorted by name and Decisions keys are sorted, so serializing a Stats is
// deterministic.
type Stats struct {
	Requests     int `json:"requests"`
	Errors       int `json:"errors"`
	ObserveCalls int `json:"observe_calls"`
	// Decisions counts requests by serving decision.
	Decisions []DecisionCount `json:"decisions"`
	// BudgetDenials is total budget-denied requests.
	BudgetDenials int `json:"budget_denials"`
	// Hedge accounting; Wins+Losses+Cancels == Fired always.
	HedgesFired  int `json:"hedges_fired"`
	HedgeWins    int `json:"hedge_wins"`
	HedgeLosses  int `json:"hedge_losses"`
	HedgeCancels int `json:"hedge_cancels"`
	// BreakerTrips and BreakerReopens sum the per-tenant transitions.
	BreakerTrips   int `json:"breaker_trips"`
	BreakerReopens int `json:"breaker_reopens"`
	// Tenants is the per-tenant breakdown, sorted by tenant name.
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// DecisionCount is one decision's tally (a sorted slice rather than a map
// so the JSON form is deterministic).
type DecisionCount struct {
	Decision Decision `json:"decision"`
	Count    int      `json:"count"`
}

// Stats snapshots the wrapper.
func (w *Wrapper) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := Stats{
		Requests:      w.requests,
		Errors:        w.errors,
		ObserveCalls:  w.observeCalls,
		BudgetDenials: w.denials,
		HedgesFired:   w.hedgesFired,
		HedgeWins:     w.hedgeWins,
		HedgeLosses:   w.hedgeLosses,
		HedgeCancels:  w.hedgeCancels,
	}
	for d, n := range w.decisions {
		s.Decisions = append(s.Decisions, DecisionCount{Decision: d, Count: n})
	}
	sort.Slice(s.Decisions, func(i, j int) bool { return s.Decisions[i].Decision < s.Decisions[j].Decision })
	names := make([]string, 0, len(w.tenants))
	for name := range w.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := w.tenants[name]
		s.BreakerTrips += ts.breaker.trips
		s.BreakerReopens += ts.breaker.reopens
		s.Tenants = append(s.Tenants, TenantStats{
			Tenant:       name,
			Requests:     ts.requests,
			Denials:      ts.denials,
			Trips:        ts.breaker.trips,
			Reopens:      ts.breaker.reopens,
			OpenServed:   ts.openServed,
			Degraded:     ts.degraded,
			Churn:        ts.churn,
			BudgetTokens: ts.budget.tokens,
		})
	}
	return s
}
