package resilience

// BudgetSpec is a per-tenant optimization budget: a token bucket denominated
// in modeled optimize-work microseconds. Cold-path plan computation is
// admitted only while the tenant holds at least a cold optimization's base
// cost in tokens; over-budget tenants are served the nearest banded cached
// plan (or a degraded plan) instead, so one drift-churning tenant cannot
// starve the fleet's optimizer of compute. The zero value disables
// budgeting (every request admitted).
type BudgetSpec struct {
	// Capacity is the bucket size in Micros of modeled work. 0 disables.
	Capacity Micros
	// RefillPerSec is the token refill rate in Micros of modeled work per
	// virtual second — i.e. RefillPerSec/1e6 is the fraction of one
	// optimizer-core's time this tenant may consume at steady state.
	RefillPerSec Micros
}

func (s BudgetSpec) enabled() bool { return s.Capacity > 0 }

// budget is one tenant's bucket. Not concurrency-safe: the wrapper's mutex
// guards it.
type budget struct {
	spec   BudgetSpec
	tokens Micros
	last   Micros // virtual time of the last refill
	primed bool
}

// refill accrues tokens up to capacity. Called with the wrapper lock held
// before every admission check and every charge.
func (b *budget) refill(now Micros) {
	if !b.spec.enabled() {
		return
	}
	if !b.primed {
		// A tenant's first request finds a full bucket at its own arrival
		// time, wherever in the run that falls.
		b.tokens, b.last, b.primed = b.spec.Capacity, now, true
		return
	}
	if now > b.last {
		b.tokens += (now - b.last) * b.spec.RefillPerSec / 1e6
		if b.tokens > b.spec.Capacity {
			b.tokens = b.spec.Capacity
		}
	}
	// now <= b.last: clock went backwards (new load level) — keep tokens,
	// restart accrual from the new time.
	b.last = now
}

// admit reports whether a cold optimization costing at least base may
// start. Admission does not reserve: the actual modeled work is charged
// when it settles, and the bucket may run into debt on a burst — debt
// just lengthens the deny window, which is the behavior we want under
// overload.
func (b *budget) admit(base Micros) bool {
	if !b.spec.enabled() {
		return true
	}
	return b.tokens >= base
}

// charge settles work micros against the bucket.
func (b *budget) charge(work Micros) {
	if !b.spec.enabled() || work <= 0 {
		return
	}
	b.tokens -= work
}
