package resilience

// BreakerSpec is a per-tenant circuit breaker over drift churn. A churn
// event is a request whose cached plan was worthless: a cold plan-cache
// miss, or a rank flip (the served plan's signature differs from the last
// plan served for the same query). When the churn rate over a sliding
// count window crosses Threshold the breaker opens: the tenant is served
// degraded-but-cheap plans (wide-band cached or modal-point LSC) without
// touching the cold path until a cooldown passes, then a single half-open
// trial request re-optimizes for real — a clean trial closes the breaker,
// a churning one reopens it. The zero value disables breaking.
type BreakerSpec struct {
	// Window is the sliding churn window length in requests. 0 disables.
	Window int
	// Threshold is the churn fraction that trips the breaker (e.g. 0.5).
	Threshold float64
	// MinSamples gates tripping until the window holds at least this many
	// observations (0 means Window).
	MinSamples int
	// Cooldown is the open-state dwell in virtual Micros before a
	// half-open trial is allowed.
	Cooldown Micros
}

func (s BreakerSpec) enabled() bool { return s.Window > 0 }

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one tenant's instance. Not concurrency-safe: the wrapper's
// mutex guards it.
type breaker struct {
	spec     BreakerSpec
	window   []bool // ring of churn observations
	head     int
	filled   int
	churned  int
	state    breakerState
	openedAt Micros
	trips    int // closed→open transitions
	reopens  int // half-open→open transitions
}

func (b *breaker) minSamples() int {
	if b.spec.MinSamples > 0 {
		return b.spec.MinSamples
	}
	return b.spec.Window
}

// phase resolves the effective state at virtual time now, promoting an
// open breaker whose cooldown has elapsed to half-open. Clock regressions
// (a fresh load level) are treated as an elapsed cooldown: the new
// timeline should not inherit an unservable open window of unknowable
// remaining length.
func (b *breaker) phase(now Micros) breakerState {
	if !b.spec.enabled() {
		return breakerClosed
	}
	if b.state == breakerOpen && (now < b.openedAt || now-b.openedAt >= b.spec.Cooldown) {
		b.state = breakerHalfOpen
	}
	return b.state
}

// record folds one churn observation into the window (closed state only —
// the wrapper never records while open, so degraded serving cannot keep a
// breaker open forever) and trips when the windowed rate crosses the
// threshold.
func (b *breaker) record(churn bool, now Micros) {
	if !b.spec.enabled() || b.state != breakerClosed {
		return
	}
	if len(b.window) == 0 {
		b.window = make([]bool, b.spec.Window)
	}
	if b.filled == len(b.window) {
		if b.window[b.head] {
			b.churned--
		}
	} else {
		b.filled++
	}
	b.window[b.head] = churn
	if churn {
		b.churned++
	}
	b.head = (b.head + 1) % len(b.window)
	if b.filled >= b.minSamples() &&
		float64(b.churned) >= b.spec.Threshold*float64(b.filled) {
		b.state = breakerOpen
		b.openedAt = now
		b.trips++
	}
}

// trialResult settles a half-open trial: clean closes the breaker and
// resets the window, churn reopens it for another cooldown.
func (b *breaker) trialResult(churn bool, now Micros) {
	if b.state != breakerHalfOpen {
		return
	}
	if churn {
		b.state = breakerOpen
		b.openedAt = now
		b.reopens++
		return
	}
	b.state = breakerClosed
	b.head, b.filled, b.churned = 0, 0, 0
}
