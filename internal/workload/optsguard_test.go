package workload

import (
	"strings"
	"testing"

	"lecopt/internal/lint"
)

// TestNoHardcodedDisableIndexes is a thin shim over internal/lint's
// module-wide `optguard` analyzer, which replaced this file's original
// ad-hoc AST walk: it asserts the analyzer still covers internal/workload
// (the loader sees the package and its serving subpackage) and that no
// hardcoded optimizer.Options{DisableIndexes: true} literal survives
// there. The full module-wide gate lives in internal/lint and cmd/leclint.
func TestNoHardcodedDisableIndexes(t *testing.T) {
	m, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, u := range m.Units {
		covered[u.Path] = true
	}
	if !covered["lecopt/internal/workload"] || !covered["lecopt/internal/workload/serving"] {
		t.Fatal("optguard analyzer no longer covers internal/workload")
	}
	for _, d := range lint.Run(m, []*lint.Analyzer{lint.ByName("optguard")}) {
		if strings.Contains(d.File, "internal/workload") {
			t.Errorf("%s", d)
		}
	}
}
