package workload

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoHardcodedDisableIndexes guards the serving loop's honesty: the
// executor has a real index access path now, so no optimizer.Options
// composite literal anywhere under internal/workload may quietly set
// DisableIndexes: true again — heap-only runs are a *spec* decision
// (MixSpec.DisableIndexes, `lecbench -workload -noindex`), threaded through
// Mix.planOpts, never a hardcoded plan-space restriction. The one lawful
// literal is the explicitly heap-only comparison arm of the rank-agreement
// test, whose point is the contrast itself (file allow-listed below).
func TestNoHardcodedDisableIndexes(t *testing.T) {
	allowed := map[string]bool{
		filepath.Join("serving", "indexrank_test.go"): true,
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || allowed[path] {
			return err
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isOptionsType(lit.Type) {
				return true
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "DisableIndexes" {
					continue
				}
				if val, ok := kv.Value.(*ast.Ident); ok && val.Name == "true" {
					t.Errorf("%s: hardcoded optimizer.Options{DisableIndexes: true} — route heap-only runs through MixSpec.DisableIndexes instead",
						fset.Position(kv.Pos()))
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// isOptionsType matches the optimizer.Options (or dot-imported Options)
// composite-literal type.
func isOptionsType(expr ast.Expr) bool {
	switch ty := expr.(type) {
	case *ast.SelectorExpr:
		return ty.Sel.Name == "Options"
	case *ast.Ident:
		return ty.Name == "Options"
	}
	return false
}
