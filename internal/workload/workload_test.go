package workload

import (
	"errors"
	"math/rand"
	"testing"

	"lecopt/internal/optimizer"
	"lecopt/internal/query"
)

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(Spec{Tables: 0}, rng); !errors.Is(err, ErrBadSpec) {
		t.Fatal("zero tables")
	}
	if _, err := Generate(Spec{Tables: query.MaxTables + 1}, rng); !errors.Is(err, ErrBadSpec) {
		t.Fatal("too many tables")
	}
	spec := DefaultSpec(3, Chain)
	spec.MinPages = 0
	if _, err := Generate(spec, rng); !errors.Is(err, ErrBadSpec) {
		t.Fatal("bad pages")
	}
	spec = DefaultSpec(3, Shape(99))
	if _, err := Generate(spec, rng); !errors.Is(err, ErrBadSpec) {
		t.Fatal("bad shape")
	}
}

func TestGenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, shape := range []Shape{Chain, Star, Clique, Random} {
		for n := 1; n <= 5; n++ {
			sc, err := Generate(DefaultSpec(n, shape), rng)
			if err != nil {
				t.Fatalf("%v n=%d: %v", shape, n, err)
			}
			if len(sc.Block.Tables) != n {
				t.Fatalf("%v: %d tables", shape, len(sc.Block.Tables))
			}
			if n > 1 && !sc.Block.Connected() {
				t.Fatalf("%v n=%d: disconnected", shape, n)
			}
			wantJoins := map[Shape]int{Chain: n - 1, Star: n - 1, Clique: n * (n - 1) / 2}
			if w, ok := wantJoins[shape]; ok && len(sc.Block.Joins) != w {
				t.Fatalf("%v n=%d: %d joins, want %d", shape, n, len(sc.Block.Joins), w)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultSpec(4, Random), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultSpec(4, Random), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Block.Canonical() != b.Block.Canonical() {
		t.Fatal("same seed must generate same query")
	}
}

// TestGeneratedScenariosOptimize: every generated scenario must be
// optimizable by every algorithm (smoke over the whole pipeline).
func TestGeneratedScenariosOptimize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	envs, err := StandardEnvs()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		shape := []Shape{Chain, Star, Clique, Random}[trial%4]
		sc, err := Generate(DefaultSpec(2+trial%4, shape), rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, ne := range envs {
			if ne.Env.Chain != nil {
				r, err := optimizer.AlgorithmCDynamic(sc.Cat, sc.Block, optimizer.Options{}, ne.Env.Mem, ne.Env.Chain)
				if err != nil || r.Plan == nil {
					t.Fatalf("trial %d env %s: %v", trial, ne.Name, err)
				}
				continue
			}
			r, err := optimizer.AlgorithmC(sc.Cat, sc.Block, optimizer.Options{}, ne.Env.Mem)
			if err != nil || r.Plan == nil {
				t.Fatalf("trial %d env %s: %v", trial, ne.Name, err)
			}
		}
	}
}

func TestStandardEnvs(t *testing.T) {
	envs, err := StandardEnvs()
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 6 {
		t.Fatalf("got %d envs", len(envs))
	}
	names := map[string]bool{}
	dynamic := 0
	for _, ne := range envs {
		if names[ne.Name] {
			t.Fatalf("duplicate env name %s", ne.Name)
		}
		names[ne.Name] = true
		if err := ne.Env.Validate(); err != nil {
			t.Fatalf("env %s invalid: %v", ne.Name, err)
		}
		if ne.Env.Chain != nil {
			dynamic++
		}
	}
	if dynamic != 2 {
		t.Fatalf("want 2 dynamic envs, got %d", dynamic)
	}
	if !names["paper-bimodal"] {
		t.Fatal("the paper's bimodal environment must be present")
	}
}

func TestWarehouse(t *testing.T) {
	cat, queries, err := Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 4 {
		t.Fatalf("got %d queries", len(queries))
	}
	for _, name := range []string{"sales", "customer", "product", "store", "dates"} {
		if !cat.HasTable(name) {
			t.Fatalf("missing table %s", name)
		}
	}
	sales, err := cat.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	if sales.Pages != 500_000 {
		t.Fatal("fact table size")
	}
	// Every query optimizes with every algorithm, and the star query has
	// the full five tables.
	if len(queries[3].Tables) != 5 {
		t.Fatal("Q4 should join the full star")
	}
	envs, err := StandardEnvs()
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		r, err := optimizer.AlgorithmC(cat, q, optimizer.Options{}, envs[1].Env.Mem)
		if err != nil || r.Plan == nil {
			t.Fatalf("Q%d: %v", qi+1, err)
		}
		if r.Plan.Joins() != len(q.Tables)-1 {
			t.Fatalf("Q%d: %d joins for %d tables", qi+1, r.Plan.Joins(), len(q.Tables))
		}
	}
}

func TestShapeString(t *testing.T) {
	for s, want := range map[Shape]string{Chain: "chain", Star: "star", Clique: "clique", Random: "random", Shape(9): "unknown"} {
		if s.String() != want {
			t.Fatalf("%d: %q", s, s.String())
		}
	}
}
