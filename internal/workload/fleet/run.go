package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lecopt/internal/catalog"
	"lecopt/internal/core"
	"lecopt/internal/dist"
	"lecopt/internal/histo"
	"lecopt/internal/optimizer"
	"lecopt/internal/plan"
	"lecopt/internal/resilience"
)

// ErrBadRun reports an invalid run config.
var ErrBadRun = errors.New("fleet: invalid run config")

// RunConfig tunes one fleet run: the same request stream is replayed at
// every load level of the spec, so differences between levels are caused
// by pacing alone.
type RunConfig struct {
	// Requests is the stream length (requests per load level).
	Requests int
	// Seed drives all run-time randomness: drift walks, the tenant/query
	// stream, memory trajectories and latency jitters. Same fleet + same
	// config ⇒ byte-identical report.
	Seed int64
	// Workers bounds the LSC-baseline batch concurrency (0 = GOMAXPROCS).
	// The resilience-served path is sequential in virtual time; workers
	// never change the report.
	Workers int
	// CacheSize is each handle's plan-cache capacity (default 4096).
	CacheSize int
	// DriftBand is the plan-cache key band base (0 = service default).
	DriftBand float64
	// LSC and LEC select the baseline and the served policy; zero values
	// mean AlgLSCMode vs AlgC. LSCSet marks LSC as explicitly chosen even
	// when it equals the zero value AlgLSCMean.
	LSC, LEC core.Algorithm
	LSCSet   bool
	// ObserveEvery forwards every Nth request's executed sizes through
	// the wrapper's Observe hook (0 means 16, negative disables).
	ObserveEvery int
}

func (cfg RunConfig) withDefaults() RunConfig {
	if cfg.CacheSize < 1 {
		cfg.CacheSize = 4096
	}
	if cfg.LSC == 0 && !cfg.LSCSet {
		cfg.LSC = core.AlgLSCMode
	}
	if cfg.LEC == 0 {
		cfg.LEC = core.AlgC
	}
	if cfg.ObserveEvery == 0 {
		cfg.ObserveEvery = 16
	}
	return cfg
}

// fleetRequest is one presampled request of the shared stream.
type fleetRequest struct {
	tenant     int
	query      int // fleet-global query ID
	factor     float64
	memSeq     []float64
	pjit, hjit float64
}

// optKey identifies one distinct baseline optimization problem.
type optKey struct {
	query     int
	archetype int
	factor    float64
}

// execResult is one memoized plan execution on a group engine.
type execResult struct {
	io    int64
	sizes map[string]float64
}

type driftCatKey struct {
	group  int
	factor float64
}

// Run simulates the spec's load levels over one shared request stream:
// tenants drawn by Zipf traffic share, queries uniform within the
// tenant's group, group statistics drifting along presampled walks. Every
// request is served by the resilience wrapper (LEC policy) against a
// batched LSC baseline, then both plans are executed on the group's
// engine under the request's memory trajectory and realized I/O is
// aggregated per level and per archetype.
func (f *Fleet) Run(cfg RunConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("%w: %d requests", ErrBadRun, cfg.Requests)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-group drift trajectories, one step per request index, shared
	// across load levels: the optimizer's statistics walk identically at
	// every level, so level-to-level deltas attribute to pacing.
	factors := make([][]float64, len(f.Groups))
	for g, grp := range f.Groups {
		if grp.driftChain != nil {
			seq, err := grp.driftChain.SampleSeq(rng, dist.Point(1), cfg.Requests)
			if err != nil {
				return nil, err
			}
			factors[g] = seq
			continue
		}
		flat := make([]float64, cfg.Requests)
		for i := range flat {
			flat[i] = 1
		}
		factors[g] = flat
	}

	// The shared request stream, with the distinct baseline problems it
	// touches in first-appearance order (deterministic batch layout).
	stream := make([]fleetRequest, cfg.Requests)
	var keys []optKey
	keyIdx := map[optKey]int{}
	for i := range stream {
		tn := int(f.traffic.Sample(rng))
		t := f.Tenants[tn]
		grp := f.Groups[t.Group]
		q := grp.Queries[rng.Intn(len(grp.Queries))]
		memSeq, err := f.archetypeEnv(t).Sample(rng, q.Phases)
		if err != nil {
			return nil, err
		}
		stream[i] = fleetRequest{
			tenant: tn, query: q.ID, factor: factors[t.Group][i], memSeq: memSeq,
			pjit: f.jitter(rng), hjit: f.jitter(rng),
		}
		k := optKey{q.ID, t.Archetype, stream[i].factor}
		if _, ok := keyIdx[k]; !ok {
			keyIdx[k] = len(keys)
			keys = append(keys, k)
		}
	}

	driftCats := map[driftCatKey]*catalog.Catalog{}
	basePlans, err := f.baseline(keys, driftCats, cfg)
	if err != nil {
		return nil, err
	}

	ecMemo := map[string]float64{}
	execCache := map[string]execResult{}
	rep := &Report{
		Tenants: len(f.Tenants), Groups: len(f.Groups), Queries: len(f.Queries),
		ChurnTenants: f.Spec.ChurnTenants, Seed: cfg.Seed,
		RequestsPerLevel: cfg.Requests,
		DriftBand:        core.ResolveDriftBand(cfg.DriftBand),
		LSCAlgorithm:     cfg.LSC.String(), LECAlgorithm: cfg.LEC.String(),
		RankAgreement: true,
	}
	for _, a := range f.Spec.Archetypes {
		rep.Archetypes = append(rep.Archetypes, a.Name)
	}
	for _, qps := range f.Spec.LoadLevels {
		lvl, err := f.runLevel(qps, stream, keyIdx, basePlans, driftCats, ecMemo, execCache, cfg)
		if err != nil {
			return nil, err
		}
		rep.Levels = append(rep.Levels, *lvl)
		rep.TotalLSCIO += lvl.LSCIO
		rep.TotalLECIO += lvl.LECIO
		rep.Errors += lvl.Errors
		rep.RankAgreement = rep.RankAgreement && lvl.RankAgreement
	}
	if rep.TotalLSCIO > 0 {
		rep.RealizedRatio = round6(float64(rep.TotalLECIO) / float64(rep.TotalLSCIO))
	}
	var pLSC, pLEC float64
	for _, lvl := range rep.Levels {
		pLSC += lvl.predLSC
		pLEC += lvl.predLEC
	}
	if pLSC > 0 {
		rep.PredictedRatio = round6(pLEC / pLSC)
	}
	return rep, nil
}

// jitter draws one lognormal latency multiplier.
func (f *Fleet) jitter(rng *rand.Rand) float64 {
	if f.Spec.JitterSigma == 0 {
		return 1
	}
	return math.Exp(f.Spec.JitterSigma * rng.NormFloat64())
}

// catalogAt returns a group's catalog drifted by factor, memoized so all
// requests optimized at one (group, factor) share a fingerprint.
func (f *Fleet) catalogAt(memo map[driftCatKey]*catalog.Catalog, group int, factor float64) (*catalog.Catalog, error) {
	k := driftCatKey{group, factor}
	if c, ok := memo[k]; ok {
		return c, nil
	}
	c, err := f.Groups[group].Cat.ScaleDistinct(factor)
	if err != nil {
		return nil, err
	}
	memo[k] = c
	return c, nil
}

// baseline optimizes the LSC plan of every distinct problem through one
// plain handle's batch pipeline — the deterministic dedup keeps the
// result independent of cfg.Workers.
func (f *Fleet) baseline(keys []optKey, driftCats map[driftCatKey]*catalog.Catalog, cfg RunConfig) ([]*plan.Node, error) {
	opt := core.NewOptimizer(nil, core.Config{
		Workers: cfg.Workers, CacheSize: cfg.CacheSize,
		DriftBand: cfg.DriftBand, DisableFeedback: true,
	})
	opts := f.planOpts()
	reqs := make([]core.Request, len(keys))
	for i, k := range keys {
		q := f.Queries[k.query]
		cat, err := f.catalogAt(driftCats, q.Group, k.factor)
		if err != nil {
			return nil, err
		}
		reqs[i] = core.Request{
			Query: q.Block, Cat: cat,
			Env: f.Spec.Archetypes[k.archetype].Env,
			Alg: cfg.LSC, Opts: opts,
		}
	}
	results := opt.OptimizeBatch(reqs)
	plans := make([]*plan.Node, len(keys))
	for i, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("fleet: baseline %s: %w", cfg.LSC, res.Err)
		}
		plans[i] = res.Plan
	}
	return plans, nil
}

// predictedEC recomputes a plan's expected cost under the archetype's
// *true* environment (memoized): the common yardstick for the served and
// baseline plans even when the served plan was optimized under a
// degraded point environment or a neighboring drift band.
func (f *Fleet) predictedEC(memo map[string]float64, qid, archetype int, p *plan.Node) (float64, error) {
	key := fmt.Sprintf("%d|%d|%s", qid, archetype, p.Signature())
	if v, ok := memo[key]; ok {
		return v, nil
	}
	env := f.Spec.Archetypes[archetype].Env
	laws, err := optimizer.PhaseLawsFor(len(f.Queries[qid].Block.Tables), env.Mem, env.Chain)
	if err != nil {
		return 0, err
	}
	ec, err := optimizer.ExpectedCostModel(fleetCostModel, p, laws)
	if err != nil {
		return 0, err
	}
	memo[key] = ec
	return ec, nil
}

// execute runs a plan on its group's engine under the trajectory,
// memoized by (query, plan, trajectory) — plans and trajectories repeat
// heavily under Zipf traffic and few memory levels.
func (f *Fleet) execute(cache map[string]execResult, q *Query, p *plan.Node, memSeq []float64) (execResult, error) {
	key := fmt.Sprintf("%d|%s|%v", q.ID, p.Signature(), memSeq)
	if out, ok := cache[key]; ok {
		return out, nil
	}
	grp := f.Groups[q.Group]
	res, err := grp.Eng.ExecutePlan(p, memSeq)
	if err != nil {
		return execResult{}, err
	}
	grp.Store.Drop(res.Output.Name)
	out := execResult{io: res.Stats.IO(), sizes: res.JoinSizes}
	cache[key] = out
	return out, nil
}

// runLevel replays the stream at one offered load: arrivals are
// deadline-anchored (request i is due at i/qps seconds), service is a
// single virtual queue over the wrapper's modeled latencies, and the
// virtual clock is set to each request's start so budget refill, breaker
// cooldowns and the timeline all run in offered-load time.
func (f *Fleet) runLevel(qps float64, stream []fleetRequest, keyIdx map[optKey]int, basePlans []*plan.Node,
	driftCats map[driftCatKey]*catalog.Catalog, ecMemo map[string]float64, execCache map[string]execResult,
	cfg RunConfig) (*LevelReport, error) {

	opt := core.NewOptimizer(nil, core.Config{
		CacheSize: cfg.CacheSize, DriftBand: cfg.DriftBand, DisableFeedback: true,
	})
	clock := resilience.NewVirtualClock(0)
	tl := resilience.NewTimeline()
	w := resilience.New(opt, resilience.Config{
		Budget: f.Spec.Budget, Breaker: f.Spec.Breaker, Hedge: f.Spec.Hedge,
		Latency: f.Spec.Latency, Clock: clock, Observer: tl,
	})
	planOpts := f.planOpts()

	lvl := &LevelReport{QPS: qps, Requests: len(stream)}
	var hist histo.Histogram
	var busy resilience.Micros
	var waitSum float64
	arch := make([]archAgg, len(f.Spec.Archetypes))
	for i := range stream {
		r := &stream[i]
		t := f.Tenants[r.tenant]
		q := f.Queries[r.query]
		cat, err := f.catalogAt(driftCats, q.Group, r.factor)
		if err != nil {
			return nil, err
		}
		arrival := resilience.Micros(float64(i) * 1e6 / qps)
		start := arrival
		if busy > start {
			start = busy
		}
		clock.Set(start)
		wait := start - arrival
		qid := fmt.Sprintf("q%03d", q.ID)
		out := w.Do(resilience.Request{
			Tenant: t.Name, Query: qid,
			Core: core.Request{
				Query: q.Block, Cat: cat,
				Env: f.archetypeEnv(t), Alg: cfg.LEC, Opts: planOpts,
			},
			PrimaryJitter: r.pjit, HedgeJitter: r.hjit,
		})
		if out.Err != nil || out.Plan == nil {
			lvl.Errors++
			continue
		}
		busy = start + out.Served
		hist.Observe(float64(out.Served))
		waitSum += float64(wait)
		if int64(wait) > lvl.MaxWaitMicros {
			lvl.MaxWaitMicros = int64(wait)
		}

		// Execute the served plan and the LSC baseline under the same
		// trajectory; fold realized I/O and recomputed predicted cost
		// into the level and archetype aggregates.
		lec, err := f.execute(execCache, q, out.Plan, r.memSeq)
		if err != nil {
			return nil, fmt.Errorf("fleet: query %d lec: %w", q.ID, err)
		}
		basePlan := basePlans[keyIdx[optKey{r.query, t.Archetype, r.factor}]]
		lsc, err := f.execute(execCache, q, basePlan, r.memSeq)
		if err != nil {
			return nil, fmt.Errorf("fleet: query %d lsc: %w", q.ID, err)
		}
		pLEC, err := f.predictedEC(ecMemo, r.query, t.Archetype, out.Plan)
		if err != nil {
			return nil, err
		}
		pLSC, err := f.predictedEC(ecMemo, r.query, t.Archetype, basePlan)
		if err != nil {
			return nil, err
		}
		lvl.LECIO += lec.io
		lvl.LSCIO += lsc.io
		lvl.predLEC += pLEC
		lvl.predLSC += pLSC
		a := &arch[t.Archetype]
		a.requests++
		a.lecIO += lec.io
		a.lscIO += lsc.io
		a.predLEC += pLEC
		a.predLSC += pLSC

		if cfg.ObserveEvery > 0 && i%cfg.ObserveEvery == 0 {
			// The handle runs with feedback disabled, so this exercises
			// the hook and the timeline, not the costing.
			if err := w.Observe(t.Name, qid, core.Feedback{
				Query: q.Block, Cat: cat, Sizes: lec.sizes,
			}); err != nil {
				lvl.Errors++
			}
		}
	}

	lvl.finish(f, hist, waitSum, busy, w.Stats(), opt.CacheStats(), tl.Len(), arch)
	return lvl, nil
}
