package fleet

import (
	"math"

	"lecopt/internal/histo"
	"lecopt/internal/plancache"
	"lecopt/internal/resilience"
	"lecopt/internal/workload/serving"
)

// Report is the full fleet-run artifact (BENCH_fleet.json). It carries
// no wall-clock timestamps and no worker counts: the same seed and spec
// must serialize byte-identically regardless of machine or parallelism.
type Report struct {
	Tenants          int      `json:"tenants"`
	Groups           int      `json:"groups"`
	Queries          int      `json:"queries"`
	ChurnTenants     int      `json:"churn_tenants"`
	Archetypes       []string `json:"archetypes"`
	Seed             int64    `json:"seed"`
	RequestsPerLevel int      `json:"requests_per_level"`
	DriftBand        float64  `json:"drift_band"`
	LSCAlgorithm     string   `json:"lsc_algorithm"`
	LECAlgorithm     string   `json:"lec_algorithm"`

	Levels []LevelReport `json:"levels"`

	// Fleet-wide totals across all load levels.
	TotalLSCIO     int64   `json:"total_lsc_io"`
	TotalLECIO     int64   `json:"total_lec_io"`
	RealizedRatio  float64 `json:"realized_ratio"`
	PredictedRatio float64 `json:"predicted_ratio"`
	RankAgreement  bool    `json:"rank_agreement"`
	Errors         int     `json:"errors"`
}

// LevelReport aggregates one offered-load level of the shared stream.
type LevelReport struct {
	QPS      float64 `json:"qps"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`

	// Realized I/O and predicted expected cost, served policy vs the LSC
	// baseline, summed over the stream.
	LSCIO          int64   `json:"lsc_io"`
	LECIO          int64   `json:"lec_io"`
	RealizedRatio  float64 `json:"realized_ratio"`
	PredictedRatio float64 `json:"predicted_ratio"`
	RankAgreement  bool    `json:"rank_agreement"`

	// Queueing over the wrapper's modeled service times.
	OptimizeLatency histo.Summary `json:"optimize_latency_micros"`
	MeanWaitMicros  float64       `json:"mean_wait_micros"`
	MaxWaitMicros   int64         `json:"max_wait_micros"`
	MakespanMicros  int64         `json:"makespan_micros"`

	// Resilience counters from the wrapper.
	Decisions      []resilience.DecisionCount `json:"decisions"`
	BudgetDenials  int                        `json:"budget_denials"`
	HedgesFired    int                        `json:"hedges_fired"`
	HedgeWins      int                        `json:"hedge_wins"`
	HedgeLosses    int                        `json:"hedge_losses"`
	HedgeCancels   int                        `json:"hedge_cancels"`
	BreakerTrips   int                        `json:"breaker_trips"`
	BreakerReopens int                        `json:"breaker_reopens"`
	OpenServed     int                        `json:"open_served"`
	DegradedServed int                        `json:"degraded_served"`

	// Plan cache and timeline health.
	PlanCacheHits    uint64  `json:"plan_cache_hits"`
	PlanCacheMisses  uint64  `json:"plan_cache_misses"`
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
	TimelineEvents   int     `json:"timeline_events"`
	TimelineOptimize int     `json:"timeline_optimize"`
	TimelineObserve  int     `json:"timeline_observe"`

	Archetypes []ArchetypeStats `json:"archetype_stats"`
	// ChurnTenantStats carries the engineered high-churn tenants'
	// per-tenant counters so breaker behavior is auditable per level.
	ChurnTenantStats []resilience.TenantStats `json:"churn_tenant_stats,omitempty"`

	predLSC, predLEC float64
}

// ArchetypeStats is one serving archetype's slice of a level.
type ArchetypeStats struct {
	Archetype      string  `json:"archetype"`
	Requests       int     `json:"requests"`
	LSCIO          int64   `json:"lsc_io"`
	LECIO          int64   `json:"lec_io"`
	RealizedRatio  float64 `json:"realized_ratio"`
	PredLSC        float64 `json:"pred_lsc"`
	PredLEC        float64 `json:"pred_lec"`
	PredictedRatio float64 `json:"predicted_ratio"`
	RankAgreement  bool    `json:"rank_agreement"`
}

// archAgg accumulates one archetype during a level run.
type archAgg struct {
	requests         int
	lscIO, lecIO     int64
	predLSC, predLEC float64
}

func round6(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}

// finish folds the wrapper stats, cache stats and archetype aggregates
// into the level report. Every slice it emits is deterministically
// ordered: archetypes by spec order, churn tenants by (sorted) name.
func (lvl *LevelReport) finish(f *Fleet, hist histo.Histogram, waitSum float64, busy resilience.Micros,
	stats resilience.Stats, cache plancache.Stats, timelineLen int, arch []archAgg) {

	served := lvl.Requests - lvl.Errors
	if lvl.LSCIO > 0 {
		lvl.RealizedRatio = round6(float64(lvl.LECIO) / float64(lvl.LSCIO))
	}
	if lvl.predLSC > 0 {
		lvl.PredictedRatio = round6(lvl.predLEC / lvl.predLSC)
	}
	lvl.OptimizeLatency = hist.Summary()
	if served > 0 {
		lvl.MeanWaitMicros = round6(waitSum / float64(served))
	}
	lvl.MakespanMicros = int64(busy)

	lvl.Decisions = stats.Decisions
	lvl.BudgetDenials = stats.BudgetDenials
	lvl.HedgesFired = stats.HedgesFired
	lvl.HedgeWins = stats.HedgeWins
	lvl.HedgeLosses = stats.HedgeLosses
	lvl.HedgeCancels = stats.HedgeCancels
	lvl.BreakerTrips = stats.BreakerTrips
	lvl.BreakerReopens = stats.BreakerReopens
	for _, ts := range stats.Tenants {
		lvl.OpenServed += ts.OpenServed
		lvl.DegradedServed += ts.Degraded
	}

	lvl.PlanCacheHits = cache.Hits
	lvl.PlanCacheMisses = cache.Misses
	if total := cache.Hits + cache.Misses; total > 0 {
		lvl.PlanCacheHitRate = round6(float64(cache.Hits) / float64(total))
	}
	lvl.TimelineEvents = timelineLen
	lvl.TimelineOptimize = stats.Requests
	lvl.TimelineObserve = stats.ObserveCalls

	lvl.RankAgreement = true
	for i, a := range arch {
		if a.requests == 0 {
			continue
		}
		as := ArchetypeStats{
			Archetype: f.Spec.Archetypes[i].Name, Requests: a.requests,
			LSCIO: a.lscIO, LECIO: a.lecIO,
			PredLSC: round6(a.predLSC), PredLEC: round6(a.predLEC),
		}
		if a.lscIO > 0 {
			as.RealizedRatio = round6(float64(a.lecIO) / float64(a.lscIO))
		}
		if a.predLSC > 0 {
			as.PredictedRatio = round6(a.predLEC / a.predLSC)
		}
		as.RankAgreement = rankConsistent(a.predLEC-a.predLSC, a.predLSC+a.predLEC, a.lecIO-a.lscIO)
		lvl.RankAgreement = lvl.RankAgreement && as.RankAgreement
		lvl.Archetypes = append(lvl.Archetypes, as)
	}

	// stats.Tenants is already sorted by name; churn tenants are the
	// reserved low IDs, recognizable by name.
	for _, ts := range stats.Tenants {
		if f.churnTenantName(ts.Tenant) {
			lvl.ChurnTenantStats = append(lvl.ChurnTenantStats, ts)
		}
	}
}

// rankConsistent is serving.RankAgrees with a 1% deadband on the
// predicted side: the resilience layer intentionally serves stale or
// degraded plans under overload, so a near-tie predicted ranking (|Δ|
// under 1% of the combined predicted cost) is not a decisive prediction
// and either realized sign is consistent with it. Decisive predictions
// still gate on realized sign exactly as in the serving workload.
func rankConsistent(predDelta, scale float64, ioDelta int64) bool {
	if math.Abs(predDelta) < 0.01*math.Abs(scale) {
		return true
	}
	return serving.RankAgrees(predDelta, scale, ioDelta)
}

// churnTenantName reports whether name is one of the engineered
// high-churn tenants (IDs 0..ChurnTenants-1).
func (f *Fleet) churnTenantName(name string) bool {
	for i := 0; i < f.Spec.ChurnTenants && i < len(f.Tenants); i++ {
		if f.Tenants[i].Name == name {
			return true
		}
	}
	return false
}
