// Package fleet is the fleet-scale traffic layer over the serving
// machinery: Zipf-distributed tenant traffic shares across hundreds to
// thousands of tenants (memory regimes sampled from the serving
// archetypes), cross-tenant *shared catalogs* — tenants of a group query
// the same physically materialized tables, so statistics drift on a
// shared table is correlated across every tenant and query that touches
// it — and a paced offered-load mode (deadline-anchored QPS) so
// realized-I/O and optimize-latency regressions attribute to load level.
// Requests are served through the resilience layer wrapping a
// core.Optimizer, against an LSC baseline optimized per problem and
// executed under the identical memory trajectories.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/engine"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/query"
	"lecopt/internal/resilience"
	"lecopt/internal/storage"
	"lecopt/internal/workload"
	"lecopt/internal/workload/serving"
)

// ErrBadFleet reports an invalid fleet specification.
var ErrBadFleet = errors.New("fleet: invalid spec")

// fleetCostModel matches the serving path: predictions are judged against
// the engine's measured I/O, so costing replays the engine's machine.
const fleetCostModel = cost.ModelEngine

// Spec controls fleet generation. The physical vocabulary (pages, tuples,
// filters, indexes) matches serving.MixSpec — engine-scale, physically
// materialized, actually executed — but tables live in *groups* shared
// across tenants rather than per-query stores.
type Spec struct {
	// Tenants is the fleet size; traffic shares follow a Zipf law with
	// skew TenantZipfS (tenant 0 is the heaviest).
	Tenants     int
	TenantZipfS float64

	// Groups partitions the fleet's data: each group materializes
	// TablesPerGroup shared tables and carries QueriesPerGroup distinct
	// queries joining subsets of them. Every tenant is homed to one
	// group, so a group's drift walk is correlated across all its
	// tenants and queries. When ChurnTenants > 0, group 0 is reserved
	// for the engineered churn tenants and walks ChurnDrift.
	Groups          int
	TablesPerGroup  int
	QueriesPerGroup int

	MinTables, MaxTables int // tables per query (≥2, ≤ TablesPerGroup)
	MinPages, MaxPages   int
	TuplesPerPage        int
	KeyRange             int64
	OrderByProb          float64
	Shapes               []workload.Shape

	FilterProb                 float64
	MinFilterSel, MaxFilterSel float64

	DisableIndexes bool
	ClusteredProb  float64
	IndexFanout    int

	// Drift is the per-group statistics walk of the regular groups;
	// ChurnDrift is the churn group's — typically band-crossing factors
	// with low stickiness, so the churn tenants' cached plans keep going
	// stale (the condition the circuit breakers exist to detect).
	Drift      serving.DriftSpec
	ChurnDrift serving.DriftSpec

	// ChurnTenants engineers that many high-churn tenants as tenant IDs
	// 0..ChurnTenants-1 — the top Zipf traffic ranks — homed to group 0.
	ChurnTenants int

	// Archetypes are the memory regimes tenants sample from (default:
	// the four serving archetypes).
	Archetypes []serving.Tenant

	// LoadLevels are the offered-load points in requests per virtual
	// second; the run replays the identical request stream at each.
	LoadLevels []float64

	// JitterSigma is the lognormal σ scaling each attempt's modeled cold
	// duration (primary and hedge draws are independent).
	JitterSigma float64

	// Resilience policies and the modeled latency price list.
	Budget  resilience.BudgetSpec
	Breaker resilience.BreakerSpec
	Hedge   resilience.HedgeSpec
	Latency resilience.LatencySpec
}

// DefaultSpec returns the canonical fleet: 512 tenants over 4 groups with
// 4 engineered churn tenants, served at a comfortable and an overloaded
// QPS level.
func DefaultSpec() (Spec, error) {
	archetypes, err := serving.DefaultTenants()
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Tenants:         512,
		TenantZipfS:     1.1,
		Groups:          4,
		TablesPerGroup:  5,
		QueriesPerGroup: 6,
		MinTables:       2,
		MaxTables:       3,
		MinPages:        8,
		MaxPages:        48,
		TuplesPerPage:   6,
		KeyRange:        600,
		OrderByProb:     0.4,
		FilterProb:      0.5,
		MinFilterSel:    0.05,
		MaxFilterSel:    0.6,
		ClusteredProb:   0.5,
		IndexFanout:     16,
		Shapes:          []workload.Shape{workload.Chain, workload.Star, workload.Random},
		Drift:           serving.DriftSpec{Factors: []float64{0.5, 1, 2}, Stay: 0.85},
		ChurnDrift:      serving.DriftSpec{Factors: []float64{0.25, 1, 4}, Stay: 0.35},
		ChurnTenants:    4,
		Archetypes:      archetypes,
		LoadLevels:      []float64{250, 2500},
		JitterSigma:     0.6,
		Budget:          resilience.BudgetSpec{Capacity: 3000, RefillPerSec: 30_000},
		Breaker:         resilience.BreakerSpec{Window: 16, Threshold: 0.6, MinSamples: 12, Cooldown: 50_000},
		Hedge:           resilience.HedgeSpec{Quantile: 0.7, MinSamples: 6, WindowSize: 64, Startup: 200},
		Latency: resilience.LatencySpec{
			Hit: 150, ColdBase: 1500, PerCandidate: 40, PerProbe: 5,
			Degraded: 400, Observe: 50,
		},
	}, nil
}

// Query is one distinct fleet query: a join block over a subset of its
// group's shared tables.
type Query struct {
	ID     int // fleet-global query ID
	Group  int
	Block  *query.Block
	Phases int
}

// Group is one shared-catalog group: the materialized tables, the engine
// over them, the catalog statistics, and the queries that join them. One
// drift walk per group scales the catalog's distinct counts for *every*
// query and tenant of the group at once — correlated drift.
type Group struct {
	ID      int
	Cat     *catalog.Catalog
	Store   *storage.Store
	Eng     *engine.Engine
	Queries []*Query
	Churn   bool

	driftChain *dist.Chain // nil: statistics never drift
}

// FleetTenant is one tenant: a stable name, a home group and a memory
// archetype.
type FleetTenant struct {
	Name      string
	Group     int
	Archetype int
}

// Fleet is a generated fleet workload, ready for Run.
type Fleet struct {
	Spec    Spec
	Groups  []*Group
	Tenants []FleetTenant
	Queries []*Query // flattened, indexed by fleet-global query ID

	traffic dist.Dist // Zipf law over tenant IDs
}

// New generates a fleet from the spec using rng for all randomness (same
// seed ⇒ same fleet, including the physical tuples).
func New(spec Spec, rng *rand.Rand) (*Fleet, error) {
	if err := validate(spec); err != nil {
		return nil, err
	}
	f := &Fleet{Spec: spec}
	for g := 0; g < spec.Groups; g++ {
		churn := spec.ChurnTenants > 0 && g == 0
		grp, err := generateGroup(g, len(f.Queries), spec, churn, rng)
		if err != nil {
			return nil, err
		}
		f.Groups = append(f.Groups, grp)
		f.Queries = append(f.Queries, grp.Queries...)
	}
	// Tenants: churn tenants take the top Zipf ranks and home on the
	// churn group; everyone else is spread across the regular groups.
	regular := make([]int, 0, spec.Groups)
	for g := range f.Groups {
		if !f.Groups[g].Churn {
			regular = append(regular, g)
		}
	}
	f.Tenants = make([]FleetTenant, spec.Tenants)
	for i := range f.Tenants {
		t := FleetTenant{
			Name:      fmt.Sprintf("tenant-%04d", i),
			Archetype: rng.Intn(len(spec.Archetypes)),
		}
		if i < spec.ChurnTenants {
			t.Group = 0
		} else {
			t.Group = regular[rng.Intn(len(regular))]
		}
		f.Tenants[i] = t
	}
	ids := make([]float64, spec.Tenants)
	for i := range ids {
		ids[i] = float64(i)
	}
	traffic, err := dist.Zipf(ids, spec.TenantZipfS)
	if err != nil {
		return nil, err
	}
	f.traffic = traffic
	return f, nil
}

func validate(spec Spec) error {
	if spec.Tenants < 1 {
		return fmt.Errorf("%w: %d tenants", ErrBadFleet, spec.Tenants)
	}
	if math.IsNaN(spec.TenantZipfS) || spec.TenantZipfS < 0 {
		return fmt.Errorf("%w: tenant Zipf skew %v", ErrBadFleet, spec.TenantZipfS)
	}
	if spec.Groups < 1 || spec.QueriesPerGroup < 1 || spec.TablesPerGroup < 2 {
		return fmt.Errorf("%w: %d groups × %d queries over %d tables", ErrBadFleet,
			spec.Groups, spec.QueriesPerGroup, spec.TablesPerGroup)
	}
	if spec.ChurnTenants < 0 || spec.ChurnTenants > spec.Tenants {
		return fmt.Errorf("%w: %d churn tenants", ErrBadFleet, spec.ChurnTenants)
	}
	if spec.ChurnTenants > 0 && spec.Groups < 2 {
		return fmt.Errorf("%w: churn tenants need a dedicated group (Groups >= 2)", ErrBadFleet)
	}
	if spec.MinTables < 2 || spec.MaxTables < spec.MinTables ||
		spec.MaxTables > spec.TablesPerGroup || spec.MaxTables > query.MaxTables {
		return fmt.Errorf("%w: tables range [%d, %d]", ErrBadFleet, spec.MinTables, spec.MaxTables)
	}
	if spec.MinPages < 1 || spec.MaxPages < spec.MinPages || spec.TuplesPerPage < 1 || spec.KeyRange < 1 {
		return fmt.Errorf("%w: physical sizing", ErrBadFleet)
	}
	if len(spec.Shapes) == 0 {
		return fmt.Errorf("%w: no shapes", ErrBadFleet)
	}
	if spec.FilterProb < 0 || spec.FilterProb > 1 || math.IsNaN(spec.FilterProb) {
		return fmt.Errorf("%w: filter prob %v", ErrBadFleet, spec.FilterProb)
	}
	if spec.FilterProb > 0 {
		if !(spec.MinFilterSel > 0) || spec.MaxFilterSel < spec.MinFilterSel || spec.MaxFilterSel > 1 {
			return fmt.Errorf("%w: filter selectivity range [%v, %v]", ErrBadFleet, spec.MinFilterSel, spec.MaxFilterSel)
		}
	}
	if spec.ClusteredProb < 0 || spec.ClusteredProb > 1 || math.IsNaN(spec.ClusteredProb) {
		return fmt.Errorf("%w: clustered prob %v", ErrBadFleet, spec.ClusteredProb)
	}
	if spec.IndexFanout < 0 || spec.IndexFanout == 1 {
		return fmt.Errorf("%w: index fanout %d", ErrBadFleet, spec.IndexFanout)
	}
	if len(spec.Archetypes) == 0 {
		return fmt.Errorf("%w: no archetypes", ErrBadFleet)
	}
	for _, a := range spec.Archetypes {
		if err := a.Env.Validate(); err != nil {
			return fmt.Errorf("%w: archetype %q: %v", ErrBadFleet, a.Name, err)
		}
	}
	if len(spec.LoadLevels) == 0 {
		return fmt.Errorf("%w: no load levels", ErrBadFleet)
	}
	for _, qps := range spec.LoadLevels {
		if !(qps > 0) || math.IsInf(qps, 0) {
			return fmt.Errorf("%w: load level %v qps", ErrBadFleet, qps)
		}
	}
	if spec.JitterSigma < 0 || math.IsNaN(spec.JitterSigma) {
		return fmt.Errorf("%w: jitter sigma %v", ErrBadFleet, spec.JitterSigma)
	}
	return nil
}

// driftChainFor builds a group's sticky walk, or nil when the drift spec
// is empty. Factors must include the neutral 1, like serving.DriftSpec.
func driftChainFor(d serving.DriftSpec) (*dist.Chain, error) {
	if len(d.Factors) == 0 {
		return nil, nil
	}
	hasNeutral := false
	for _, f := range d.Factors {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("%w: drift factor %v", ErrBadFleet, f)
		}
		if f == 1 {
			hasNeutral = true
		}
	}
	if !hasNeutral {
		return nil, fmt.Errorf("%w: drift factors must include the neutral 1", ErrBadFleet)
	}
	chain, err := dist.Sticky(d.Factors, d.Stay)
	if err != nil {
		return nil, fmt.Errorf("%w: drift chain: %v", ErrBadFleet, err)
	}
	return chain, nil
}

// generateGroup materializes one group's shared tables (with statistics
// and indexes exactly as serving's generator records them) and its
// queries, each joining a random subset of the pool.
func generateGroup(id, nextQueryID int, spec Spec, churn bool, rng *rand.Rand) (*Group, error) {
	g := &Group{ID: id, Churn: churn, Cat: catalog.New(), Store: storage.NewStore()}
	drift := spec.Drift
	if churn {
		drift = spec.ChurnDrift
	}
	chain, err := driftChainFor(drift)
	if err != nil {
		return nil, err
	}
	g.driftChain = chain
	fanout := spec.IndexFanout
	if fanout == 0 {
		fanout = 16
	}
	names := make([]string, spec.TablesPerGroup)
	for i := range names {
		names[i] = fmt.Sprintf("g%d_t%d", id, i)
		pages := spec.MinPages + rng.Intn(spec.MaxPages-spec.MinPages+1)
		gen := storage.GenSpec{
			Name: names[i], Pages: pages, TuplesPerPage: spec.TuplesPerPage, KeyRange: spec.KeyRange,
		}
		clustered := !spec.DisableIndexes && rng.Float64() < spec.ClusteredProb
		var rel *storage.Relation
		var err error
		if clustered {
			rel, err = storage.GenerateSorted(gen, rng)
		} else {
			rel, err = storage.Generate(gen, rng)
		}
		if err != nil {
			return nil, err
		}
		if err := g.Store.Add(rel); err != nil {
			return nil, err
		}
		tab, err := catalog.NewTable(names[i], float64(pages), float64(pages*spec.TuplesPerPage),
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: float64(spec.KeyRange), Min: 0, Max: float64(spec.KeyRange)})
		if err != nil {
			return nil, err
		}
		if err := g.Cat.AddTable(tab); err != nil {
			return nil, err
		}
		if !spec.DisableIndexes {
			ixName := fmt.Sprintf("ix_%s_k", names[i])
			ix, err := storage.BuildIndex(g.Store, ixName, names[i], "k", clustered, fanout)
			if err != nil {
				return nil, err
			}
			if err := g.Cat.AddIndex(catalog.Index{
				Name: ixName, Table: names[i], Column: "k",
				Clustered: clustered, Height: float64(ix.Height()),
			}); err != nil {
				return nil, err
			}
		}
	}
	g.Eng = engine.New(g.Store)
	for q := 0; q < spec.QueriesPerGroup; q++ {
		blk, err := generateBlock(names, spec, rng)
		if err != nil {
			return nil, err
		}
		if err := blk.Validate(g.Cat); err != nil {
			return nil, err
		}
		g.Queries = append(g.Queries, &Query{
			ID: nextQueryID + q, Group: id, Block: blk, Phases: len(blk.Tables) - 1,
		})
	}
	return g, nil
}

// generateBlock builds one query over a random subset of the group's
// shared tables — the sharing is the point: distinct queries join the
// same physical tables, so one table's drift is visible to all of them.
func generateBlock(pool []string, spec Spec, rng *rand.Rand) (*query.Block, error) {
	tables := spec.MinTables + rng.Intn(spec.MaxTables-spec.MinTables+1)
	perm := rng.Perm(len(pool))[:tables]
	names := make([]string, tables)
	for i, p := range perm {
		names[i] = pool[p]
	}
	blk := &query.Block{Tables: names}
	join := func(i, j int) {
		blk.Joins = append(blk.Joins, query.Join{
			Left:  query.ColRef{Table: names[i], Column: "k"},
			Right: query.ColRef{Table: names[j], Column: "k"},
		})
	}
	shape := spec.Shapes[rng.Intn(len(spec.Shapes))]
	switch shape {
	case workload.Chain:
		for i := 1; i < tables; i++ {
			join(i-1, i)
		}
	case workload.Star:
		for i := 1; i < tables; i++ {
			join(0, i)
		}
	case workload.Clique:
		for i := 0; i < tables; i++ {
			for j := i + 1; j < tables; j++ {
				join(i, j)
			}
		}
	case workload.Random:
		for i := 1; i < tables; i++ {
			join(rng.Intn(i), i)
		}
	default:
		return nil, fmt.Errorf("%w: shape %d", ErrBadFleet, shape)
	}
	if rng.Float64() < spec.OrderByProb {
		blk.OrderBy = &query.ColRef{Table: names[rng.Intn(tables)], Column: "k"}
	}
	if rng.Float64() < spec.FilterProb {
		sel := spec.MinFilterSel + rng.Float64()*(spec.MaxFilterSel-spec.MinFilterSel)
		blk.Filters = append(blk.Filters, query.Filter{
			Col:   query.ColRef{Table: names[rng.Intn(tables)], Column: "k"},
			Op:    catalog.OpLe,
			Value: math.Round(sel * float64(spec.KeyRange)),
		})
	}
	return blk, nil
}

// planOpts is the fleet's plan-space tuning: the spec's index switch and
// the engine-exact serving cost model.
func (f *Fleet) planOpts() *optimizer.Options {
	return &optimizer.Options{
		DisableIndexes: f.Spec.DisableIndexes,
		CostModel:      fleetCostModel,
	}
}

// archetypeEnv returns a tenant's memory environment.
func (f *Fleet) archetypeEnv(t FleetTenant) envsim.Env {
	return f.Spec.Archetypes[t.Archetype].Env
}
