package fleet

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// smallSpec is a fast fleet for tests: few tenants, few groups, short
// streams, but every mechanism (Zipf traffic, shared-catalog drift,
// churn tenants, budgets, breakers, hedging) still engaged.
func smallSpec(t *testing.T) Spec {
	t.Helper()
	spec, err := DefaultSpec()
	if err != nil {
		t.Fatalf("DefaultSpec: %v", err)
	}
	spec.Tenants = 48
	spec.Groups = 3
	spec.TablesPerGroup = 4
	spec.QueriesPerGroup = 4
	spec.MinPages, spec.MaxPages = 6, 20
	spec.ChurnTenants = 2
	spec.LoadLevels = []float64{500, 5000}
	return spec
}

func newTestFleet(t *testing.T, spec Spec, seed int64) *Fleet {
	t.Helper()
	f, err := New(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestNewFleetShape(t *testing.T) {
	spec := smallSpec(t)
	f := newTestFleet(t, spec, 7)

	if len(f.Tenants) != spec.Tenants {
		t.Fatalf("tenants: %d", len(f.Tenants))
	}
	if len(f.Groups) != spec.Groups {
		t.Fatalf("groups: %d", len(f.Groups))
	}
	if len(f.Queries) != spec.Groups*spec.QueriesPerGroup {
		t.Fatalf("queries: %d", len(f.Queries))
	}
	// Churn tenants are the reserved low IDs, homed in group 0, which is
	// the churn group.
	if !f.Groups[0].Churn {
		t.Fatal("group 0 should be the churn group")
	}
	for i := 0; i < spec.ChurnTenants; i++ {
		if f.Tenants[i].Group != 0 {
			t.Fatalf("churn tenant %d homed in group %d", i, f.Tenants[i].Group)
		}
	}
	for i := spec.ChurnTenants; i < len(f.Tenants); i++ {
		if f.Tenants[i].Group == 0 {
			t.Fatalf("regular tenant %d homed in churn group", i)
		}
	}
	// Query IDs are fleet-global and dense; every query stays inside its
	// group's table pool.
	for i, q := range f.Queries {
		if q.ID != i {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		grp := f.Groups[q.Group]
		for _, tbl := range q.Block.Tables {
			if _, err := grp.Cat.Table(tbl); err != nil {
				t.Fatalf("query %d references %s outside group %d: %v", i, tbl, q.Group, err)
			}
		}
	}
}

func TestNewFleetValidates(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Tenants = 0 },
		func(s *Spec) { s.TenantZipfS = -1 },
		func(s *Spec) { s.Groups = 1 }, // churn tenants need a regular group too
		func(s *Spec) { s.QueriesPerGroup = 0 },
		func(s *Spec) { s.MaxTables = s.TablesPerGroup + 1 },
		func(s *Spec) { s.LoadLevels = nil },
		func(s *Spec) { s.LoadLevels = []float64{0} },
		func(s *Spec) { s.Archetypes = nil },
		func(s *Spec) { s.Drift.Factors = []float64{2, 4} }, // no neutral 1
	}
	for i, mutate := range bad {
		spec := smallSpec(t)
		mutate(&spec)
		if _, err := New(spec, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
}

// TestRunDeterminism is the determinism satellite: same seed + spec give
// a byte-identical report across two independent runs and across worker
// counts.
func TestRunDeterminism(t *testing.T) {
	spec := smallSpec(t)
	run := func(workers int) []byte {
		f := newTestFleet(t, spec, 42)
		rep, err := f.Run(RunConfig{Requests: 300, Seed: 99, Workers: workers})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return buf
	}
	a, b, c := run(1), run(1), run(8)
	if string(a) != string(b) {
		t.Fatal("same seed, same workers: reports differ")
	}
	if string(a) != string(c) {
		t.Fatal("reports differ across worker counts")
	}
}

func TestRunReportShape(t *testing.T) {
	spec := smallSpec(t)
	f := newTestFleet(t, spec, 42)
	rep, err := f.Run(RunConfig{Requests: 300, Seed: 99})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
	if len(rep.Levels) != len(spec.LoadLevels) {
		t.Fatalf("levels: %d", len(rep.Levels))
	}
	for i, lvl := range rep.Levels {
		if lvl.QPS != spec.LoadLevels[i] {
			t.Fatalf("level %d qps %v", i, lvl.QPS)
		}
		if lvl.Requests != 300 {
			t.Fatalf("level %d requests %d", i, lvl.Requests)
		}
		// Every optimize attempt and every observe call is on the
		// timeline.
		if lvl.TimelineEvents != lvl.TimelineOptimize+lvl.TimelineObserve {
			t.Fatalf("level %d timeline %d != %d+%d",
				i, lvl.TimelineEvents, lvl.TimelineOptimize, lvl.TimelineObserve)
		}
		if lvl.TimelineOptimize < lvl.Requests {
			t.Fatalf("level %d optimize events %d < requests %d", i, lvl.TimelineOptimize, lvl.Requests)
		}
		// Hedge accounting identity.
		if lvl.HedgeWins+lvl.HedgeLosses+lvl.HedgeCancels != lvl.HedgesFired {
			t.Fatalf("level %d hedge identity: %+v", i, lvl)
		}
		if lvl.OptimizeLatency.Count != lvl.Requests-lvl.Errors {
			t.Fatalf("level %d histogram count %d", i, lvl.OptimizeLatency.Count)
		}
		if len(lvl.ChurnTenantStats) == 0 {
			t.Fatalf("level %d has no churn tenant stats", i)
		}
		if lvl.LSCIO <= 0 || lvl.LECIO <= 0 {
			t.Fatalf("level %d missing realized IO: lsc=%d lec=%d", i, lvl.LSCIO, lvl.LECIO)
		}
	}
	// Identical streams across levels: realized baseline I/O must match
	// level to level (only pacing differs).
	if rep.Levels[0].LSCIO != rep.Levels[1].LSCIO {
		t.Fatalf("baseline IO differs across levels: %d vs %d",
			rep.Levels[0].LSCIO, rep.Levels[1].LSCIO)
	}
	if rep.RealizedRatio <= 0 || rep.RealizedRatio > 1.5 {
		t.Fatalf("implausible realized ratio %v", rep.RealizedRatio)
	}
	// Higher offered load must not reduce pressure: the high level sees
	// at least as many budget denials as the low level.
	low, high := rep.Levels[0], rep.Levels[1]
	if high.BudgetDenials < low.BudgetDenials {
		t.Fatalf("denials fell with load: %d -> %d", low.BudgetDenials, high.BudgetDenials)
	}
}
