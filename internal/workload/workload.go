// Package workload generates reproducible optimization workloads: random
// catalogs, join queries over chain/star/clique graphs, a fixed
// warehouse-style star schema, and a canonical suite of memory
// environments. It supplies the inputs for the experiment harness
// (internal/experiments) and the examples.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/query"
)

// Errors.
var (
	ErrBadSpec = errors.New("workload: invalid spec")
)

// Shape selects the join-graph topology.
type Shape uint8

// Shapes.
const (
	Chain  Shape = iota // t0 — t1 — t2 — ...
	Star                // t0 joined to every other table
	Clique              // every pair joined
	Random              // random spanning tree plus extra edges
)

func (s Shape) String() string {
	switch s {
	case Chain:
		return "chain"
	case Star:
		return "star"
	case Clique:
		return "clique"
	case Random:
		return "random"
	default:
		return "unknown"
	}
}

// Spec controls random scenario generation.
type Spec struct {
	Tables        int
	Shape         Shape
	MinPages      float64 // per-table page range
	MaxPages      float64
	TuplesPerPage float64
	FilterProb    float64 // chance each table gets a range filter
	OrderByProb   float64 // chance the query has an ORDER BY on a join key
	IndexProb     float64 // chance each table gets an index on its key
}

// DefaultSpec returns a reasonable medium-size spec.
func DefaultSpec(tables int, shape Shape) Spec {
	return Spec{
		Tables:        tables,
		Shape:         shape,
		MinPages:      100,
		MaxPages:      200_000,
		TuplesPerPage: 50,
		FilterProb:    0.4,
		OrderByProb:   0.5,
		IndexProb:     0.3,
	}
}

// Scenario is a generated catalog plus query.
type Scenario struct {
	Cat   *catalog.Catalog
	Block *query.Block
}

// Generate builds a scenario from the spec using rng for all randomness
// (same seed ⇒ same scenario).
func Generate(spec Spec, rng *rand.Rand) (Scenario, error) {
	if spec.Tables < 1 || spec.Tables > query.MaxTables {
		return Scenario{}, fmt.Errorf("%w: %d tables", ErrBadSpec, spec.Tables)
	}
	if spec.MinPages <= 0 || spec.MaxPages < spec.MinPages || spec.TuplesPerPage <= 0 {
		return Scenario{}, fmt.Errorf("%w: page configuration", ErrBadSpec)
	}
	cat := catalog.New()
	names := make([]string, spec.Tables)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
		pages := math.Trunc(spec.MinPages + rng.Float64()*(spec.MaxPages-spec.MinPages))
		rows := pages * spec.TuplesPerPage
		distinct := math.Trunc(1 + rng.Float64()*rows)
		tab := catalog.MustTable(names[i], pages, rows,
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: distinct, Min: 0, Max: 1e12},
			catalog.Column{Name: "v", Type: catalog.TypeInt, Distinct: 1000, Min: 0, Max: 999},
		)
		if err := cat.AddTable(tab); err != nil {
			return Scenario{}, err
		}
		if rng.Float64() < spec.IndexProb {
			err := cat.AddIndex(catalog.Index{
				Name:      "ix_" + names[i],
				Table:     names[i],
				Column:    "k",
				Clustered: rng.Float64() < 0.5,
				Height:    2,
			})
			if err != nil {
				return Scenario{}, err
			}
		}
	}
	blk := &query.Block{Tables: names}
	join := func(i, j int) {
		blk.Joins = append(blk.Joins, query.Join{
			Left:  query.ColRef{Table: names[i], Column: "k"},
			Right: query.ColRef{Table: names[j], Column: "k"},
		})
	}
	switch spec.Shape {
	case Chain:
		for i := 1; i < spec.Tables; i++ {
			join(i-1, i)
		}
	case Star:
		for i := 1; i < spec.Tables; i++ {
			join(0, i)
		}
	case Clique:
		for i := 0; i < spec.Tables; i++ {
			for j := i + 1; j < spec.Tables; j++ {
				join(i, j)
			}
		}
	case Random:
		for i := 1; i < spec.Tables; i++ {
			join(rng.Intn(i), i)
		}
		if spec.Tables >= 3 && rng.Float64() < 0.4 {
			join(0, spec.Tables-1)
		}
	default:
		return Scenario{}, fmt.Errorf("%w: shape %d", ErrBadSpec, spec.Shape)
	}
	for i := 0; i < spec.Tables; i++ {
		if rng.Float64() < spec.FilterProb {
			blk.Filters = append(blk.Filters, query.Filter{
				Col:   query.ColRef{Table: names[i], Column: "v"},
				Op:    catalog.OpLt,
				Value: float64(50 + rng.Intn(900)),
			})
		}
	}
	if rng.Float64() < spec.OrderByProb {
		blk.OrderBy = &query.ColRef{Table: names[rng.Intn(spec.Tables)], Column: "k"}
	}
	if err := blk.Validate(cat); err != nil {
		return Scenario{}, err
	}
	return Scenario{Cat: cat, Block: blk}, nil
}

// NamedEnv pairs an environment with a human-readable label.
type NamedEnv struct {
	Name string
	Env  envsim.Env
}

// StandardEnvs returns the canonical environment suite used across the
// experiments: from the degenerate point law (where LEC ≡ LSC) through the
// paper's bimodal example to wide and dynamic (Markov) environments.
func StandardEnvs() ([]NamedEnv, error) {
	var out []NamedEnv
	add := func(name string, mem dist.Dist, chain *dist.Chain) {
		out = append(out, NamedEnv{Name: name, Env: envsim.Env{Mem: mem, Chain: chain}})
	}
	add("point-1000", dist.Point(1000), nil)
	bimodal, err := dist.Bimodal(700, 2000, 0.2)
	if err != nil {
		return nil, err
	}
	add("paper-bimodal", bimodal, nil)
	spread, err := dist.SpreadAround(1000, 900, 0.4)
	if err != nil {
		return nil, err
	}
	add("wide-spread", spread, nil)
	levels := []float64{64, 256, 1024, 4096}
	heavy, err := dist.Zipf(levels, 1.2)
	if err != nil {
		return nil, err
	}
	add("zipf-levels", heavy, nil)
	sticky, err := dist.Sticky(levels, 0.8)
	if err != nil {
		return nil, err
	}
	stickyInit, err := dist.Uniform(levels...)
	if err != nil {
		return nil, err
	}
	add("markov-sticky", stickyInit, sticky)
	volatile, err := dist.RandomWalk(levels, 0.4, 0.4)
	if err != nil {
		return nil, err
	}
	add("markov-volatile", stickyInit, volatile)
	return out, nil
}

// Warehouse builds a fixed star-schema catalog (a fact table with four
// dimensions, in the spirit of the decision-support workloads the paper's
// introduction motivates) and a batch of analytical join queries.
func Warehouse() (*catalog.Catalog, []*query.Block, error) {
	cat := catalog.New()
	type tdef struct {
		name          string
		pages, rows   float64
		keyDistinct   float64
		extraCol      string
		extraDistinct float64
	}
	tables := []tdef{
		{"sales", 500_000, 50_000_000, 50_000_000, "amount", 10_000},
		{"customer", 20_000, 2_000_000, 2_000_000, "region", 25},
		{"product", 5_000, 500_000, 500_000, "category", 100},
		{"store", 500, 50_000, 50_000, "state", 50},
		{"dates", 100, 10_000, 10_000, "year", 30},
	}
	for _, td := range tables {
		cols := []catalog.Column{
			{Name: "k", Type: catalog.TypeInt, Distinct: td.keyDistinct, Min: 0, Max: 1e12},
			{Name: td.extraCol, Type: catalog.TypeInt, Distinct: td.extraDistinct, Min: 0, Max: td.extraDistinct - 1},
		}
		// The fact table carries a foreign key per dimension.
		if td.name == "sales" {
			for _, fk := range []string{"customer_k", "product_k", "store_k", "date_k"} {
				cols = append(cols, catalog.Column{Name: fk, Type: catalog.TypeInt, Distinct: 1_000_000, Min: 0, Max: 1e12})
			}
		}
		if err := cat.AddTable(catalog.MustTable(td.name, td.pages, td.rows, cols...)); err != nil {
			return nil, nil, err
		}
	}
	if err := cat.AddIndex(catalog.Index{Name: "ix_customer", Table: "customer", Column: "k", Clustered: true, Height: 3}); err != nil {
		return nil, nil, err
	}
	if err := cat.AddIndex(catalog.Index{Name: "ix_product", Table: "product", Column: "k", Clustered: true, Height: 2}); err != nil {
		return nil, nil, err
	}

	fk := func(dim, fkCol string) query.Join {
		return query.Join{
			Left:  query.ColRef{Table: "sales", Column: fkCol},
			Right: query.ColRef{Table: dim, Column: "k"},
		}
	}
	queries := []*query.Block{
		{ // Q1: sales by customer region, ordered by customer key.
			Tables:  []string{"sales", "customer"},
			Joins:   []query.Join{fk("customer", "customer_k")},
			Filters: []query.Filter{{Col: query.ColRef{Table: "customer", Column: "region"}, Op: catalog.OpLt, Value: 5}},
			OrderBy: &query.ColRef{Table: "customer", Column: "k"},
		},
		{ // Q2: three-way: sales x product x store.
			Tables: []string{"sales", "product", "store"},
			Joins:  []query.Join{fk("product", "product_k"), fk("store", "store_k")},
			Filters: []query.Filter{
				{Col: query.ColRef{Table: "product", Column: "category"}, Op: catalog.OpLt, Value: 10},
			},
		},
		{ // Q3: four-way with a date slice, ordered output.
			Tables: []string{"sales", "customer", "product", "dates"},
			Joins: []query.Join{
				fk("customer", "customer_k"), fk("product", "product_k"), fk("dates", "date_k"),
			},
			Filters: []query.Filter{
				{Col: query.ColRef{Table: "dates", Column: "year"}, Op: catalog.OpGe, Value: 25},
				{Col: query.ColRef{Table: "customer", Column: "region"}, Op: catalog.OpLt, Value: 3},
			},
			OrderBy: &query.ColRef{Table: "sales", Column: "customer_k"},
		},
		{ // Q4: full star.
			Tables: []string{"sales", "customer", "product", "store", "dates"},
			Joins: []query.Join{
				fk("customer", "customer_k"), fk("product", "product_k"),
				fk("store", "store_k"), fk("dates", "date_k"),
			},
			Filters: []query.Filter{
				{Col: query.ColRef{Table: "store", Column: "state"}, Op: catalog.OpLt, Value: 5},
			},
		},
	}
	for _, q := range queries {
		if err := q.Validate(cat); err != nil {
			return nil, nil, err
		}
	}
	return cat, queries, nil
}
