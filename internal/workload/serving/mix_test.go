package serving

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lecopt/internal/workload"
)

func TestNewMixValidation(t *testing.T) {
	base, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*MixSpec)
	}{
		{"zero queries", func(s *MixSpec) { s.Queries = 0 }},
		{"one table", func(s *MixSpec) { s.MinTables = 1 }},
		{"inverted pages", func(s *MixSpec) { s.MaxPages = s.MinPages - 1 }},
		{"zero key range", func(s *MixSpec) { s.KeyRange = 0 }},
		{"negative skew", func(s *MixSpec) { s.ZipfS = -1 }},
		{"nan skew", func(s *MixSpec) { s.ZipfS = math.NaN() }},
		{"no shapes", func(s *MixSpec) { s.Shapes = nil }},
		{"no tenants", func(s *MixSpec) { s.Tenants = nil }},
		{"bad tenant env", func(s *MixSpec) { s.Tenants = []Tenant{{Name: "broken"}} }},
		{"drift without neutral", func(s *MixSpec) { s.Drift.Factors = []float64{0.5, 2} }},
		{"non-positive drift factor", func(s *MixSpec) { s.Drift.Factors = []float64{-1, 1} }},
	}
	for _, tc := range cases {
		spec := base
		tc.mut(&spec)
		if _, err := NewMix(spec, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadMix) {
			t.Errorf("%s: want ErrBadMix, got %v", tc.name, err)
		}
	}
}

func TestNewMixDeterministic(t *testing.T) {
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewMix(spec, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMix(spec, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("query counts differ")
	}
	for i := range a.Queries {
		qa, qb := a.Queries[i], b.Queries[i]
		if qa.Block.Canonical() != qb.Block.Canonical() {
			t.Fatalf("query %d differs", i)
		}
		for _, name := range qa.Block.Tables {
			ra, err := qa.Store.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := qb.Store.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if ra.NumPages() != rb.NumPages() || ra.NumTuples() != rb.NumTuples() {
				t.Fatalf("query %d table %s: physical data differs", i, name)
			}
		}
	}
}

// TestMixStatisticsMatchPhysical: at drift factor 1, the catalog's pages
// and rows must equal the materialized relation's.
func TestMixStatisticsMatchPhysical(t *testing.T) {
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMix(spec, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range m.Queries {
		if q.Phases != len(q.Block.Tables)-1 {
			t.Fatalf("query %d: %d phases for %d tables", q.ID, q.Phases, len(q.Block.Tables))
		}
		for _, name := range q.Block.Tables {
			tab, err := q.Cat.Table(name)
			if err != nil {
				t.Fatal(err)
			}
			rel, err := q.Store.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if float64(rel.NumPages()) != tab.Pages || float64(rel.NumTuples()) != tab.Rows {
				t.Fatalf("query %d table %s: catalog %v pages/%v rows vs physical %d/%d",
					q.ID, name, tab.Pages, tab.Rows, rel.NumPages(), rel.NumTuples())
			}
		}
	}
}

func TestZipfPopularitySkew(t *testing.T) {
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMix(spec, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Popularity.Len() != spec.Queries {
		t.Fatalf("popularity over %d values, want %d", m.Popularity.Len(), spec.Queries)
	}
	// Query 0 must be the most popular; mass must decay along IDs.
	if m.Popularity.Mode() != 0 {
		t.Fatalf("mode %v, want query 0", m.Popularity.Mode())
	}
	for i := 1; i < m.Popularity.Len(); i++ {
		if m.Popularity.Prob(i) > m.Popularity.Prob(i-1)+1e-12 {
			t.Fatalf("popularity not decaying at id %d", i)
		}
	}
}

func TestDriftedCatalog(t *testing.T) {
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMix(spec, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	q := m.Queries[0]
	same, err := driftedCatalog(q.Cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same != q.Cat {
		t.Fatal("factor 1 must return the catalog unchanged")
	}
	for _, factor := range []float64{0.5, 2, 1e9, 1e-9} {
		drifted, err := driftedCatalog(q.Cat, factor)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range q.Block.Tables {
			orig, err := q.Cat.Table(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := drifted.Table(name)
			if err != nil {
				t.Fatal(err)
			}
			if got.Pages != orig.Pages || got.Rows != orig.Rows {
				t.Fatalf("drift must not change sizes: %s", name)
			}
			kOrig, err := orig.Column("k")
			if err != nil {
				t.Fatal(err)
			}
			kGot, err := got.Column("k")
			if err != nil {
				t.Fatal(err)
			}
			want := math.Round(kOrig.Distinct * factor)
			if want < 1 {
				want = 1
			}
			if want > orig.Rows {
				want = orig.Rows
			}
			if kGot.Distinct != want {
				t.Fatalf("%s: distinct %v, want %v (factor %v)", name, kGot.Distinct, want, factor)
			}
		}
	}
}

func TestMixShapesRespected(t *testing.T) {
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Shapes = []workload.Shape{workload.Clique}
	spec.MinTables, spec.MaxTables = 3, 3
	m, err := NewMix(spec, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range m.Queries {
		if len(q.Block.Joins) != 3 { // 3-clique
			t.Fatalf("query %d: %d joins, want 3", q.ID, len(q.Block.Joins))
		}
	}
}
