package serving

import (
	"math"
	"math/rand"
	"testing"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/optimizer"
)

// TestPointLawPhaseECExactness pins the *exact-operator family*: the plan
// shapes where the engine realizes the analytic formula to the page, so
// the optimizer's per-phase charge under a Point law must equal the
// executed PhaseIO as integers, not merely within a band. The family is
// 2-table heap plans (no filters, no sorts, exact undrifted statistics)
// whose single phase runs either
//
//   - page nested loop, in both regimes: the resident-inner regime pays
//     outer + inner, the rescan regime pays outer + outer·inner, and the
//     engine's pinned-build pageNLJoin reads exactly those pages; or
//   - grace hash in its one-pass regime (mem >= min(outer, inner) + 2):
//     the model charges outer + inner and the engine degenerates to an
//     in-memory build+probe that reads each side once.
//
// Multi-pass grace hash and sort-merge are deliberately outside the
// family — the engine's 2L+1-pass recursion vs the paper's 2L passes and
// partial-page runs make them band-exact (TestEngineModelConditionalAgreement),
// not page-exact. Any drift here is a mispriced formula or an engine
// operator touching pages the model doesn't know about, with zero
// estimation or law error to hide behind.
func TestPointLawPhaseECExactness(t *testing.T) {
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Queries = 8
	spec.MinTables, spec.MaxTables = 2, 2
	spec.FilterProb = 0
	spec.OrderByProb = 0
	spec.DisableIndexes = true
	spec.Drift = DriftSpec{} // exact statistics: estimated sizes are realized sizes
	rng := rand.New(rand.NewSource(7))
	m, err := NewMix(spec, rng)
	if err != nil {
		t.Fatal(err)
	}

	methodSets := [][]cost.JoinMethod{
		{cost.PageNL},
		{cost.GraceHash},
	}
	levels := []float64{4, 6, 9, 14, 20, 40, 80}
	checked := 0
	for _, q := range m.Queries {
		for _, methods := range methodSets {
			for _, mem := range levels {
				// spec.DisableIndexes keeps the catalog heap-only, so the
				// optimizer has no index paths to consider (optguard: the
				// Options literal must not disable them redundantly).
				res, err := optimizer.AlgorithmC(q.Cat, q.Block,
					optimizer.Options{Methods: methods}, dist.Point(mem))
				if err != nil {
					t.Fatal(err)
				}
				join := res.Plan
				if join.Method == cost.GraceHash {
					small := math.Min(join.Left.OutPages, join.Right.OutPages)
					if mem < small+2 {
						continue // multi-pass grace hash: band-exact only
					}
				}
				exec, err := q.Eng.ExecutePlan(res.Plan, []float64{mem})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.PhaseEC) != 1 || len(exec.PhaseIO) != 1 {
					t.Fatalf("2-table plan %s: phase counts analytic %d, realized %d, want 1",
						res.Plan, len(res.PhaseEC), len(exec.PhaseIO))
				}
				if res.PhaseEC[0] != float64(exec.PhaseIO[0]) {
					t.Errorf("plan %s at mem %v: analytic phase charge %v != realized %d pages",
						res.Plan, mem, res.PhaseEC[0], exec.PhaseIO[0])
				}
				checked++
			}
		}
	}
	// The one-pass cutoff prunes some grace-hash levels; make sure the
	// family is still densely sampled, including both nested-loop regimes.
	if checked < 60 {
		t.Fatalf("only %d exact-family executions checked, want >= 60", checked)
	}
}
