package serving

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"lecopt/internal/core"
)

func defaultMix(t *testing.T, seed int64) *Mix {
	t.Helper()
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMix(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRunLECBeatsLSC is the ISSUE acceptance check: on the default
// Zipf+Markov mix, the LEC policy's aggregate realized I/O — measured by
// actually executing both policies' plans on the page-level engine under
// shared sampled memory trajectories — must not exceed the LSC policy's.
func TestRunLECBeatsLSC(t *testing.T) {
	m := defaultMix(t, 1)
	rep, err := m.Run(RunConfig{Requests: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("realized: LSC=%d LEC=%d ratio=%.4f (predicted %.4f)",
		rep.TotalLSCIO, rep.TotalLECIO, rep.RealizedRatio, rep.PredictedRatio)
	t.Logf("wins=%d ties=%d losses=%d agree=%.2f", rep.Wins, rep.Ties, rep.Losses, rep.PlanAgreementRate)
	t.Logf("regret LEC p50/p90/p99 = %.0f/%.0f/%.0f, LSC = %.0f/%.0f/%.0f",
		rep.LECRegretP50, rep.LECRegretP90, rep.LECRegretP99,
		rep.LSCRegretP50, rep.LSCRegretP90, rep.LSCRegretP99)
	t.Logf("opt=%d plan-cache=%.2f exec-cache=%.2f",
		rep.DistinctOptimizations, rep.PlanCacheHitRate, rep.ExecCacheHitRate)
	for _, ts := range rep.PerTenant {
		t.Logf("tenant %-16s req=%3d lsc=%7d lec=%7d ratio=%.4f w/t/l=%d/%d/%d",
			ts.Name, ts.Requests, ts.LSCIO, ts.LECIO, ts.Ratio, ts.Wins, ts.Ties, ts.Losses)
	}
	if rep.TotalLECIO > rep.TotalLSCIO {
		t.Fatalf("LEC realized more I/O than LSC: %d > %d", rep.TotalLECIO, rep.TotalLSCIO)
	}
	if rep.Requests != 300 || rep.Wins+rep.Ties+rep.Losses != 300 {
		t.Fatalf("request accounting broken: %+v", rep)
	}
}

// TestRunDeterministic: same mix seed + same run seed ⇒ identical reports,
// regardless of worker count (optimization fan-out never changes results).
func TestRunDeterministic(t *testing.T) {
	a, err := defaultMix(t, 7).Run(RunConfig{Requests: 80, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := defaultMix(t, 7).Run(RunConfig{Requests: 80, Seed: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalLSCIO != b.TotalLSCIO || a.TotalLECIO != b.TotalLECIO ||
		a.Wins != b.Wins || a.Ties != b.Ties || a.Losses != b.Losses {
		t.Fatalf("worker count changed realized outcome:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRunPointLawDegenerates: with a single zero-variance tenant and no
// drift, LEC and LSC coincide — every request must tie.
func TestRunPointLawDegenerates(t *testing.T) {
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	tenants, err := DefaultTenants()
	if err != nil {
		t.Fatal(err)
	}
	spec.Tenants = tenants[:1] // "batch": Point(40)
	spec.Drift = DriftSpec{}
	m, err := NewMix(spec, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(RunConfig{Requests: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ties != 60 || rep.Wins != 0 || rep.Losses != 0 {
		t.Fatalf("point law must tie everywhere: %+v", rep)
	}
	if rep.RealizedRatio != 1 {
		t.Fatalf("ratio %v under a point law", rep.RealizedRatio)
	}
}

func TestRunConfigValidation(t *testing.T) {
	m := defaultMix(t, 1)
	if _, err := m.Run(RunConfig{Requests: 0}); !errors.Is(err, ErrBadRun) {
		t.Fatal("zero requests must fail")
	}
}

// TestRunExplicitAlgorithms: the policies are selectable; lsc-mean vs
// algorithm-c must still run end to end.
func TestRunExplicitAlgorithms(t *testing.T) {
	m := defaultMix(t, 2)
	rep, err := m.Run(RunConfig{Requests: 40, Seed: 4, LSC: core.AlgLSCMean, LSCSet: true, LEC: core.AlgC})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LSCAlgorithm != "lsc-mean" || rep.LECAlgorithm != "algorithm-c" {
		t.Fatalf("algorithm labels wrong: %+v", rep)
	}
}

// TestRunExecutesIndexPlans: the default (index-enabled) mix must actually
// execute index-scan plans — the ISSUE acceptance that `Scan(..., index)`
// nodes appear in the artifact's plan dump — and a heap-only spec
// (DisableIndexes) must reproduce the historical all-heap behavior.
func TestRunExecutesIndexPlans(t *testing.T) {
	rep, err := defaultMix(t, 1).Run(RunConfig{Requests: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PlanDump) == 0 {
		t.Fatal("no plan dump collected")
	}
	indexPlans, covered := 0, 0
	for _, pc := range rep.PlanDump {
		covered += pc.Requests
		if strings.Contains(pc.Plan, "index") {
			indexPlans++
		}
	}
	if indexPlans == 0 {
		t.Fatal("default mix executed no index plans; the access-path layer is not reaching serving")
	}
	// Both policies' plans are counted per request.
	if covered != 2*rep.Requests {
		t.Fatalf("plan dump covers %d plan-requests, want %d", covered, 2*rep.Requests)
	}
	t.Logf("%d distinct plans executed, %d index-bearing", len(rep.PlanDump), indexPlans)

	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.DisableIndexes = true
	m, err := NewMix(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	heapRep, err := m.Run(RunConfig{Requests: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range heapRep.PlanDump {
		if strings.Contains(pc.Plan, "index") {
			t.Fatalf("heap-only mix executed an index plan:\n%s", pc.Plan)
		}
	}
	if heapRep.TotalLECIO > heapRep.TotalLSCIO {
		t.Fatalf("heap-only mix: LEC realized more I/O than LSC: %d > %d", heapRep.TotalLECIO, heapRep.TotalLSCIO)
	}
}

// TestRunZeroGraceFallbacks: neither the default nor the heap-only mix
// may drive any grace-hash execution into the level-cap block-NL
// fallback — the key distributions are benign, so a nonzero count means
// the engine's recursion (or the shared fan-out arithmetic in
// internal/cost) regressed. This also keeps cost.ModelEngine honest:
// the model charges the no-fallback recursion, and these mixes are the
// runs it is charged against.
func TestRunZeroGraceFallbacks(t *testing.T) {
	rep, err := defaultMix(t, 1).Run(RunConfig{Requests: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GraceFallbacks != 0 || rep.GraceFallbackIO != 0 {
		t.Fatalf("default mix degenerated: %d grace fallbacks, %d pages of fallback I/O",
			rep.GraceFallbacks, rep.GraceFallbackIO)
	}

	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.DisableIndexes = true
	m, err := NewMix(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	heapRep, err := m.Run(RunConfig{Requests: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if heapRep.GraceFallbacks != 0 || heapRep.GraceFallbackIO != 0 {
		t.Fatalf("heap-only mix degenerated: %d grace fallbacks, %d pages of fallback I/O",
			heapRep.GraceFallbacks, heapRep.GraceFallbackIO)
	}
}
