package serving

import (
	"testing"

	"lecopt/internal/cost"
	"lecopt/internal/plan"
)

func TestMemBand(t *testing.T) {
	cases := []struct {
		mem  float64
		want string
	}{
		{3, "<8"}, {5, "<8"}, {7.9, "<8"},
		{8, "8-15"}, {9, "8-15"}, {15, "8-15"},
		{16, "16-31"}, {17, "16-31"}, {31, "16-31"},
		{32, "32+"}, {40, "32+"}, {4000, "32+"},
	}
	for _, c := range cases {
		if got := memBand(c.mem); got != c.want {
			t.Errorf("memBand(%v) = %q, want %q", c.mem, got, c.want)
		}
	}
	// The default tenant memory levels must land in distinct bands — the
	// ledger's resolution matches the mix's memory regimes.
	seen := map[string]bool{}
	for _, lvl := range []float64{5, 9, 17, 40} {
		b := memBand(lvl)
		if seen[b] {
			t.Fatalf("default levels collide in band %q", b)
		}
		seen[b] = true
	}
}

func TestPhaseOperatorLabels(t *testing.T) {
	// scan(A) ⋈GH scan(B, filtered) ⋈SM scan(C) with a root sort:
	// phase 0 carries the materialized B scan and the 2-way GH join,
	// phase 1 the 3-way SM join plus the sort enforcer.
	filtered := plan.NewScan("B", plan.AccessHeap, "", 0.5, 10)
	filtered.Pred = &plan.ScanPred{Column: "k", Lo: 0, Hi: 10, HasLo: true, HasHi: true}
	p := plan.NewSort(
		plan.NewJoin(cost.SortMerge,
			plan.NewJoin(cost.GraceHash,
				plan.NewScan("A", plan.AccessHeap, "", 1, 10),
				filtered,
				15, plan.Order{}),
			plan.NewScan("C", plan.AccessHeap, "", 1, 30),
			20, plan.Order{}),
		plan.Order{Column: "k"})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	got := phaseOperatorLabels(p)
	want := []string{"scan+grace-hash", "sort-merge+sort"}
	if len(got) != len(want) {
		t.Fatalf("labels %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels %v, want %v", got, want)
		}
	}
}

func TestRankAgrees(t *testing.T) {
	cases := []struct {
		predDelta float64
		ioDelta   int64
		want      bool
	}{
		{-100, -50, true},  // both say LEC wins
		{100, 50, true},    // both say LSC wins
		{-100, 50, false},  // model says LEC, engine says LSC: inversion
		{100, -50, false},  // model says LSC, engine says LEC: inversion
		{0, 50, true},      // model ties: agrees with anything
		{-100, 0, true},    // engine ties: agrees with anything
		{1e-12, -50, true}, // sub-tolerance model delta counts as a tie
	}
	for _, c := range cases {
		if got := RankAgrees(c.predDelta, 1000, c.ioDelta); got != c.want {
			t.Errorf("RankAgrees(%v, 1000, %d) = %v, want %v", c.predDelta, c.ioDelta, got, c.want)
		}
	}
}

// TestPhaseLedgerRun is the tentpole acceptance run: the exact
// BENCH_workload configuration (default mix, 2000 requests, seed 1) must
// produce per-tenant rank agreement everywhere — in particular the
// shared-sticky chain tenant, whose realized LEC/LSC ratio sat at 1.015
// against a predicted 0.9996 before the grace-hash fixes — and a phase
// ledger whose cells are internally consistent and sum back to the
// report's realized totals.
func TestPhaseLedgerRun(t *testing.T) {
	rep, err := defaultMix(t, 1).Run(RunConfig{Requests: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Rank agreement on every tenant (the CI smoke gate, asserted at the
	// library layer too).
	if !rep.RankAgreement {
		t.Error("report-level rank agreement is false")
	}
	for _, ts := range rep.PerTenant {
		if !ts.RankAgreement {
			t.Errorf("tenant %s: rank inversion (predicted %.4f, realized %.4f)",
				ts.Name, ts.PredictedRatio, ts.Ratio)
		}
		if ts.Name == "shared-sticky" && ts.Ratio > 1 {
			t.Errorf("shared-sticky realized LEC/LSC = %.4f, want <= 1.00 (the PR's acceptance)", ts.Ratio)
		}
	}

	// Ledger completeness: realized I/O in the cells sums exactly to the
	// report's totals, per policy.
	if len(rep.PhaseLedger) == 0 {
		t.Fatal("empty phase ledger")
	}
	sums := map[string]float64{}
	for _, c := range rep.PhaseLedger {
		sums[c.Policy] += c.RealizedIO
		if c.Samples <= 0 {
			t.Errorf("cell with no samples: %s", c)
		}
		if got := c.RealizedIO - c.AnalyticIO; got != c.Delta {
			t.Errorf("cell delta inconsistent: %s", c)
		}
		if c.AnalyticIO > 0 && c.Ratio != c.RealizedIO/c.AnalyticIO {
			t.Errorf("cell ratio inconsistent: %s", c)
		}
	}
	if int64(sums["lsc"]) != rep.TotalLSCIO || int64(sums["lec"]) != rep.TotalLECIO {
		t.Errorf("ledger realized sums (lsc %v, lec %v) != report totals (%d, %d)",
			sums["lsc"], sums["lec"], rep.TotalLSCIO, rep.TotalLECIO)
	}

	// The localizing regression cell. Under the salt-rotation bug the
	// engine's recursive grace-hash partitioning never split a bucket
	// (hashKey % power-of-two fan-out moved every key of a bucket to the
	// same next-level bucket), so below-√S joins recursed to the level
	// cap and fell back to block nested loop at 3-page memory: this
	// cell's realized/analytic ratio read 6.23 and single-handedly
	// flipped the shared-sticky ranking. Fixed, it sits near 2 (the
	// engine's 2L+1-pass structure vs the paper's 2L), comfortably
	// inside the documented 4x operator band.
	for _, policy := range []string{"lsc", "lec"} {
		cell := FindLedgerCell(rep.PhaseLedger, "shared-sticky", policy, 0, "scan+grace-hash", "<8")
		if cell == nil {
			t.Fatalf("localizing ledger cell (shared-sticky/%s ph0 scan+grace-hash <8) missing", policy)
		}
		if cell.Ratio >= 4 {
			t.Errorf("grace-hash low-memory attribution regressed: %s", cell)
		}
		if cell.Ratio < 1 {
			t.Errorf("grace-hash low-memory cell implausibly cheap (attribution leak?): %s", cell)
		}
	}

	if FindLedgerCell(rep.PhaseLedger, "no-such-tenant", "lec", 0, "scan", "<8") != nil {
		t.Error("FindLedgerCell fabricated a cell")
	}
}
