package serving

import (
	"math/rand"
	"strings"
	"testing"

	"lecopt/internal/cost"
	"lecopt/internal/feedback"
	"lecopt/internal/optimizer"
	"lecopt/internal/plan"
)

// Engine-vs-model agreement bounds. The analytic cost model is the paper's
// simplified three-case formulas (footnote 2, [Sha86]); the engine runs
// real external sorts, Grace hash and nested-loop joins through an LRU
// buffer pool. E15/E17 established they share threshold *shape*; this
// property pins a quantitative band: over a seeded corpus of random
// left-deep plans and random per-phase memory trajectories, the measured
// total I/O must stay within [1/band, band] of C(P, v).
//
// Two bands, measured over an 800-trial sweep of this corpus's generator:
//
//   - Sort-merge/grace-hash plans: band 3.5 (worst observed 3.04). Their
//     cost is linear in the input sizes, so intermediate-size estimation
//     error passes through undamped but unamplified.
//   - Plans containing a nested-loop join: band 16 (worst observed 11.5).
//     PageNL's expensive case charges outer·inner — the rescan *product*
//     multiplies any error in the estimated intermediate size, so a 3x
//     size misestimate becomes a ~10x cost misestimate. This is the
//     analytic-vs-realized gap the serving runner exists to measure.
//
// Both are intentionally loose — the model counts idealized passes, the
// engine pays partial pages, recursive partitioning and LRU eviction noise
// — but they are *bounds*, and regressions in either layer (a mispriced
// formula, an engine join reading inputs twice) break them.
const (
	modelAgreementBand = 3.5
	// modelAgreementBandNL is the nested-loop band on the *undrifted*
	// corpus (TestEngineModelAgreement optimizes against exact statistics).
	// Historically 16 (worst observed 11.5): the engine's pageNLJoin only
	// realized the formula's cheap case for a resident inner, so a small
	// outer with M ∈ [outer+2, inner+2) paid a rescan product the model
	// never charged. The residency fix (pin the smaller side) removed
	// that whole failure mode; what remains is ordinary size-estimation
	// noise through the rescan product.
	modelAgreementBandNL = 4
	// modelAgreementBandIX is the band for index-scan-bearing plans (no
	// nested loop): engine root-to-leaf walk + leaf run + fetches vs
	// cost.IndexScanIO.
	modelAgreementBandIX = 4
	// modelAgreementBandNLFeedback is the nested-loop band on the
	// *drifted* corpus with executed-size feedback closed through the
	// Optimizer handle: observed intermediate sizes remove the
	// size-estimation error that PageNL's outer·inner product squares.
	// With the residency fix landed the feedback fixpoint tightens from
	// the historical 8 to <= 4 (ISSUE acceptance).
	modelAgreementBandNLFeedback = 4
	// driftedAgreementBandNL bounds the drifted corpus *without* feedback:
	// the ±2x statistics drift enters the rescan product squared, so this
	// band is inherently wide (observed 9.99) — but the residency fix
	// still tightened its historical 16x bound.
	driftedAgreementBandNL = 12
)

// TestEngineModelAgreement is the ISSUE's property test: for a corpus of
// seeded random left-deep plans, executed realized PhaseIO agrees with the
// analytic prediction within the documented band, phase accounting is
// complete (PhaseIO sums to total I/O), and the worst offender is printed
// with its plan and memory sequence on failure.
func TestEngineModelAgreement(t *testing.T) {
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Queries = 10
	spec.OrderByProb = 0.5
	rng := rand.New(rand.NewSource(42))
	m, err := NewMix(spec, rng)
	if err != nil {
		t.Fatal(err)
	}

	methodSets := [][]cost.JoinMethod{
		nil, // optimizer default: sort-merge, grace hash, page nested-loop
		{cost.SortMerge},
		{cost.GraceHash},
		{cost.SortMerge, cost.GraceHash},
		{cost.PageNL, cost.BlockNL},
	}
	levels := []float64{4, 6, 9, 14, 20, 40, 80}

	type offender struct {
		ratio  float64
		plan   string
		memSeq []float64
	}
	worst := offender{ratio: 1}
	checked, checkedIX := 0, 0
	for trial := 0; trial < 60; trial++ {
		q := m.Queries[trial%len(m.Queries)]
		opts := optimizer.Options{
			Methods: methodSets[trial%len(methodSets)],
		}
		// A random optimization memory decouples the plan's choice point
		// from the executed trajectory: plans get executed far from where
		// they were optimized, exactly like a serving mix under drift.
		optMem := levels[rng.Intn(len(levels))]
		res, err := optimizer.LSC(q.Cat, q.Block, opts, optMem)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		memSeq := make([]float64, q.Phases)
		for i := range memSeq {
			memSeq[i] = levels[rng.Intn(len(levels))]
		}
		model, err := res.Plan.CostSeq(plan.SliceMem(memSeq))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		exec, err := q.Eng.ExecutePlan(res.Plan, memSeq)
		if err != nil {
			t.Fatalf("trial %d: execute: %v\nplan:\n%s", trial, err, res.Plan)
		}
		q.Store.Drop(exec.Output.Name)

		if len(exec.PhaseIO) != q.Phases {
			t.Fatalf("trial %d: %d phase slots for %d phases", trial, len(exec.PhaseIO), q.Phases)
		}
		var phaseSum int64
		for _, io := range exec.PhaseIO {
			if io < 0 {
				t.Fatalf("trial %d: negative phase I/O %v", trial, exec.PhaseIO)
			}
			phaseSum += io
		}
		if phaseSum != exec.Stats.IO() {
			t.Fatalf("trial %d: PhaseIO sums to %d, total I/O %d — phase accounting leaks",
				trial, phaseSum, exec.Stats.IO())
		}

		measured := float64(exec.Stats.IO())
		if measured <= 0 || model <= 0 {
			t.Fatalf("trial %d: non-positive cost (measured %v, model %v)", trial, measured, model)
		}
		ratio := measured / model
		checked++
		if ratio > worst.ratio || 1/ratio > worst.ratio {
			r := ratio
			if 1/ratio > r {
				r = 1 / ratio
			}
			worst = offender{ratio: r, plan: res.Plan.String(), memSeq: memSeq}
		}
		band := float64(modelAgreementBand)
		switch {
		case hasNestedLoopJoin(res.Plan):
			band = modelAgreementBandNL
		case hasIndexScan(res.Plan):
			band = modelAgreementBandIX
			checkedIX++
		}
		if ratio > band || ratio < 1/band {
			t.Errorf("trial %d: measured/model ratio %.3f outside [%.3f, %.1f]\nmemSeq: %v\nplan:\n%s",
				trial, ratio, 1/band, band, memSeq, res.Plan)
		}
	}
	t.Logf("%d plans checked (%d index-bearing); worst symmetric ratio %.3f\nworst plan (memSeq %v):\n%s",
		checked, checkedIX, worst.ratio, worst.memSeq, worst.plan)
	if checked == 0 {
		t.Fatal("corpus empty")
	}
	if checkedIX == 0 {
		t.Fatal("corpus produced no index-scan plans; the index band is untested")
	}
}

// TestEngineModelAgreementFeedback closes the result-size feedback loop
// (ISSUE acceptance): running the same corpus generator with executed
// intermediate sizes Observed back through the Optimizer handle must
// tighten the nested-loop measured/model band from 16x to <= 8x, without
// widening the sort-merge/grace-hash band.
func TestEngineModelAgreementFeedback(t *testing.T) {
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Queries = 10
	spec.OrderByProb = 0.5
	m, err := NewMix(spec, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	drift := []float64{0.5, 1, 2} // the default mix's stale-statistics axis
	before, err := m.MeasureModelAgreement(AgreementConfig{Trials: 60, Seed: 7, DriftFactors: drift})
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.MeasureModelAgreement(AgreementConfig{Trials: 60, Seed: 7, Feedback: true, DriftFactors: drift})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bands without feedback: SM/GH %.3f (%d plans), NL %.3f (%d plans), IX %.3f (%d plans)",
		before.BandSMGH, before.PlansSMGH, before.BandNL, before.PlansNL, before.BandIX, before.PlansIX)
	t.Logf("bands with    feedback: SM/GH %.3f (%d plans), NL %.3f (%d plans), IX %.3f (%d plans), %d observations",
		after.BandSMGH, after.PlansSMGH, after.BandNL, after.PlansNL, after.BandIX, after.PlansIX,
		after.FeedbackObservations)
	if before.PlansNL == 0 || after.PlansNL == 0 {
		t.Fatal("corpus produced no nested-loop plans; the NL band is untested")
	}
	if before.PlansIX == 0 || after.PlansIX == 0 {
		t.Fatal("corpus produced no index-scan plans; the index band is untested")
	}
	if before.BandSMGH > modelAgreementBand {
		t.Fatalf("no-feedback SM/GH band regressed: %.3f (limit %v)", before.BandSMGH, modelAgreementBand)
	}
	// The drifted no-feedback NL band is dominated by size-estimation
	// error (the rescan product squares the drift), which only feedback
	// removes; the residency fix still halved its historical 16x bound.
	if before.BandNL > driftedAgreementBandNL {
		t.Fatalf("no-feedback drifted NL band regressed: %.3f (limit %v)", before.BandNL, float64(driftedAgreementBandNL))
	}
	if after.FeedbackObservations == 0 {
		t.Fatal("feedback sweep folded no observations")
	}
	if after.BandNL > modelAgreementBandNLFeedback {
		t.Fatalf("feedback NL band %.3f exceeds %v — the result-size loop is not tightening the model",
			after.BandNL, float64(modelAgreementBandNLFeedback))
	}
	if after.BandSMGH > modelAgreementBand {
		t.Fatalf("feedback widened the SM/GH band: %.3f > %v", after.BandSMGH, modelAgreementBand)
	}
	// Index-scan pricing carries no intermediate-size dependence, so its
	// band must hold with and without feedback.
	if before.BandIX > modelAgreementBandIX || after.BandIX > modelAgreementBandIX {
		t.Fatalf("index band out of bounds: %.3f / %.3f (limit %v)",
			before.BandIX, after.BandIX, float64(modelAgreementBandIX))
	}
}

// Conditional per-phase agreement bands: realized PhaseIO[i] over the
// analytic charge CostPhasesModel(servingCostModel, PhaseMem)[i] — the
// serving-path model conditioned on the memory the executor actually saw,
// phase by phase. Conditioning removes the law/trajectory error that the
// unconditional bands absorb, so these are strictly tighter than the 4x
// whole-plan bands above (measured over the 120-trial corpus in
// TestEngineModelConditionalAgreement):
//
//   - nested-loop phases: 2.0 (observed [0.90, 1.11]) — with exact
//     statistics and realized memory, PageNL's two cases are nearly
//     exact; what remains is partial-page and pin noise. (Identical under
//     both cost models.)
//   - sort-merge phases: 2.5 (observed [0.98, 2.17]) — the engine pays
//     run writes plus a merge read (~3 passes) where the paper's
//     simplified structure charges 2, and partial run pages ride on top.
//     (Identical under both cost models; see DESIGN.md's external-sort
//     audit.)
//   - grace-hash phases: 1.5 — cost.ModelEngine replays the engine's
//     actual fan-out recursion (in-memory +2 boundary, capped fan-out,
//     ceil'd partition tail pages), so the paper model's 2L-vs-2L+1 pass
//     drift and its sub-1 in-memory edge (historical band 3.25, observed
//     [0.50, 2.81]) are gone; what remains is buffer-residency noise.
const (
	condBandNL = 2.0
	condBandSM = 2.5
	condBandGH = 1.5
)

// TestEngineModelConditionalAgreement is the phase-ledger property test:
// for every phase of every corpus plan, the engine's realized phase I/O
// stays within the documented per-operator band of the analytic charge at
// the phase's realized memory — and phases the model prices at zero
// realize exactly zero I/O (the attribution conventions match end to
// end). This is the per-cell guarantee that makes ledger deltas
// attributable to formula error rather than bookkeeping drift.
func TestEngineModelConditionalAgreement(t *testing.T) {
	spec, err := DefaultMixSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Queries = 10
	spec.OrderByProb = 0.5
	rng := rand.New(rand.NewSource(42))
	m, err := NewMix(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	methodSets := [][]cost.JoinMethod{
		nil,
		{cost.SortMerge},
		{cost.GraceHash},
		{cost.SortMerge, cost.GraceHash},
		{cost.PageNL, cost.BlockNL},
	}
	levels := []float64{4, 6, 9, 14, 20, 40, 80}
	checked := 0
	for trial := 0; trial < 120; trial++ {
		q := m.Queries[trial%len(m.Queries)]
		opts := optimizer.Options{Methods: methodSets[trial%len(methodSets)]}
		optMem := levels[rng.Intn(len(levels))]
		res, err := optimizer.LSC(q.Cat, q.Block, opts, optMem)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		memSeq := make([]float64, q.Phases)
		for i := range memSeq {
			memSeq[i] = levels[rng.Intn(len(levels))]
		}
		exec, err := q.Eng.ExecutePlan(res.Plan, memSeq)
		if err != nil {
			t.Fatalf("trial %d: execute: %v\nplan:\n%s", trial, err, res.Plan)
		}
		q.Store.Drop(exec.Output.Name)
		// Condition on the realized memory trajectory AND the realized
		// intermediate sizes: the band then measures pure formula error.
		// The size-estimation axis is measured separately, by the
		// unconditional bands above and the feedback sweep.
		cond := sizeConditioned(res.Plan, exec.JoinSizes)
		condEC, err := cond.CostPhasesModel(servingCostModel, plan.SliceMem(exec.PhaseMem))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(condEC) != len(exec.PhaseIO) || len(exec.PhaseMem) != len(exec.PhaseIO) {
			t.Fatalf("trial %d: phase-count contract broken: %d analytic, %d realized, %d mem entries",
				trial, len(condEC), len(exec.PhaseIO), len(exec.PhaseMem))
		}
		labels := phaseOperatorLabels(res.Plan)
		for i := range condEC {
			realized, analytic := float64(exec.PhaseIO[i]), condEC[i]
			if analytic == 0 {
				if realized != 0 {
					t.Errorf("trial %d phase %d (%s): model charges 0, engine paid %v\nplan:\n%s",
						trial, i, labels[i], realized, res.Plan)
				}
				continue
			}
			band := condBandSM
			switch {
			case strings.Contains(labels[i], "page-nl") || strings.Contains(labels[i], "block-nl"):
				band = condBandNL
			case strings.Contains(labels[i], "grace-hash"):
				band = condBandGH
			}
			ratio := realized / analytic
			checked++
			if ratio > band || ratio < 1/band {
				t.Errorf("trial %d phase %d (%s, mem %.0f): realized/analytic %.3f outside [%.3f, %.2f]\nplan:\n%s",
					trial, i, labels[i], exec.PhaseMem[i], ratio, 1/band, band, res.Plan)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("corpus too thin: %d priced phases checked", checked)
	}
	t.Logf("%d priced phases checked against conditional per-operator bands", checked)
}

// sizeConditioned returns a copy of p with every node's OutPages replaced
// by the executed observed page count of its table set, when one was
// observed (engine.ExecResult.JoinSizes, keyed by feedback.SetKey — the
// same vocabulary the result-size feedback loop uses).
func sizeConditioned(p *plan.Node, sizes map[string]float64) *plan.Node {
	if p == nil {
		return nil
	}
	c := *p
	c.Left = sizeConditioned(p.Left, sizes)
	c.Right = sizeConditioned(p.Right, sizes)
	c.Child = sizeConditioned(p.Child, sizes)
	if obs, ok := sizes[feedback.SetKey(c.Relations()...)]; ok && obs > 0 {
		c.OutPages = obs
	}
	return &c
}
