package serving

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"lecopt/internal/catalog"
	"lecopt/internal/core"
	"lecopt/internal/envsim"
	"lecopt/internal/plan"
	"lecopt/internal/plancache"
)

// Runner errors.
var (
	ErrBadRun = errors.New("workload: invalid run config")
)

// RunConfig tunes one engine-in-the-loop Monte-Carlo run over a Mix.
type RunConfig struct {
	// Requests is the number of serving requests to simulate.
	Requests int
	// Seed drives all run-time randomness (request stream, memory
	// trajectories, drift walk). Same mix + same config ⇒ same report.
	Seed int64
	// Workers bounds optimization concurrency (0 = GOMAXPROCS). Plan
	// execution is sequential either way; workers never change results.
	Workers int
	// CacheSize is the plan-cache capacity (default 1024).
	CacheSize int
	// DriftBand is the plan-cache key band base: 0 uses the service
	// default (geometric factor-2 bands over distinct counts, so the
	// default ±2x statistics drift keeps hitting the cache), any value
	// <= 1 (e.g. -1) restores exact-fingerprint keys, which split every
	// (query, tenant, drift factor) combination into its own entry.
	DriftBand float64
	// LSC and LEC select the two policies compared; zero values mean
	// AlgLSCMode vs AlgC, the paper's classical-vs-least-expected-cost
	// match-up. (AlgLSCMean is the Algorithm zero value, so an explicit
	// lsc-mean baseline is still selectable via LSCSet.)
	LSC, LEC core.Algorithm
	// LSCSet marks LSC as explicitly chosen even when it equals the zero
	// value AlgLSCMean.
	LSCSet bool
}

func (cfg RunConfig) withDefaults() RunConfig {
	if cfg.CacheSize < 1 {
		cfg.CacheSize = 1024
	}
	if cfg.LSC == 0 && !cfg.LSCSet {
		cfg.LSC = core.AlgLSCMode
	}
	if cfg.LEC == 0 {
		cfg.LEC = core.AlgC
	}
	return cfg
}

// request is one simulated serving request.
type request struct {
	query  int
	tenant int
	factor float64 // drift factor in force when the request was optimized
}

// optKey identifies one distinct optimization problem of a run: a query,
// optimized under a tenant's environment against factor-drifted statistics.
type optKey struct {
	query  int
	tenant int
	factor float64
}

// planPair is the two policies' plans for one optKey.
type planPair struct {
	lsc, lec *plan.Node
	lscEC    float64 // expected costs under the tenant's (true) environment
	lecEC    float64
}

// execOutcome is one memoized plan execution.
type execOutcome struct {
	io        int64
	phaseIO   []int64            // engine I/O booked per phase
	phaseMem  []float64          // effective memory each phase ran with
	condEC    []float64          // model's per-phase charge conditioned on phaseMem
	joinSizes map[string]float64 // observed intermediate pages by table set
	// Grace-hash degeneration markers forwarded from engine.ExecResult:
	// level-cap fallbacks to block nested-loop and the I/O they booked.
	fallbacks  int
	fallbackIO int64
}

// Run simulates cfg.Requests serving requests against the mix: each
// request samples a query by popularity, a tenant, and the current drift
// factor; both policies' plans are optimized through the concurrent batch
// pipeline (memoized in a plan cache); then both plans are *executed* on
// the mini engine under one shared sampled memory trajectory (common
// random numbers) and their realized physical I/O is accumulated into the
// report. Executions are memoized by (query, plan, trajectory) — plans and
// trajectories repeat heavily under Zipf popularity and few memory levels,
// and re-executing an identical deterministic run would only burn time.
func (m *Mix) Run(cfg RunConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("%w: %d requests", ErrBadRun, cfg.Requests)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Drift trajectory: one factor per request, shared across tenants and
	// queries (correlated drift).
	factors := make([]float64, cfg.Requests)
	if m.driftChain != nil {
		seq, err := m.driftChain.SampleSeq(rng, m.driftInit, cfg.Requests)
		if err != nil {
			return nil, err
		}
		factors = seq
	} else {
		for i := range factors {
			factors[i] = 1
		}
	}

	// Request stream plus the distinct optimization problems it touches,
	// in first-appearance order (deterministic job layout).
	requests := make([]request, cfg.Requests)
	var keys []optKey
	keyIdx := map[optKey]int{}
	for i := range requests {
		q := int(m.Popularity.Sample(rng))
		tn := rng.Intn(len(m.Tenants))
		requests[i] = request{query: q, tenant: tn, factor: factors[i]}
		k := optKey{query: q, tenant: tn, factor: factors[i]}
		if _, ok := keyIdx[k]; !ok {
			keyIdx[k] = len(keys)
			keys = append(keys, k)
		}
	}

	pairs, cacheStats, err := m.optimizeAll(keys, cfg)
	if err != nil {
		return nil, err
	}

	// Execute every request's two plans under one shared trajectory.
	agg := newAggregator(m, cfg)
	execCache := map[string]execOutcome{}
	var execHits, execMisses int64
	for _, req := range requests {
		q := m.Queries[req.query]
		memSeq, err := m.Tenants[req.tenant].Env.Sample(rng, q.Phases)
		if err != nil {
			return nil, err
		}
		pair := pairs[keyIdx[optKey{req.query, req.tenant, req.factor}]]
		outcomes := make([]execOutcome, 2)
		for pi, p := range []*plan.Node{pair.lsc, pair.lec} {
			key := fmt.Sprintf("%d|%s|%v", req.query, p.Signature(), memSeq)
			out, ok := execCache[key]
			if ok {
				execHits++
			} else {
				execMisses++
				out, err = executeOnce(q, p, memSeq)
				if err != nil {
					return nil, fmt.Errorf("workload: query %d plan %d: %w", req.query, pi, err)
				}
				execCache[key] = out
			}
			outcomes[pi] = out
		}
		agg.observe(req, pair, outcomes[0], outcomes[1])
	}
	rep := agg.report()
	rep.DriftBand = core.ResolveDriftBand(cfg.DriftBand)
	rep.PlanCacheHits = cacheStats.Hits
	rep.PlanCacheMisses = cacheStats.Misses
	rep.PlanCacheHitRate = cacheStats.HitRate()
	rep.PlanCacheEvictions = cacheStats.Evictions
	rep.PlanCacheShardSizes = cacheStats.ShardSizes
	rep.ExecCacheHits = execHits
	rep.ExecCacheMisses = execMisses
	if execHits+execMisses > 0 {
		rep.ExecCacheHitRate = float64(execHits) / float64(execHits+execMisses)
	}
	rep.DistinctOptimizations = len(keys)
	return rep, nil
}

// optimizeAll runs both policies over every distinct optimization problem
// through a long-lived core.Optimizer service handle. The handle owns the
// plan cache with drift-banded keys (cfg.DriftBand), so the same (query,
// tenant) keeps hitting its cached plans while the statistics drift walks
// within a band — the fix for drift splitting the cache into a ~20% hit
// rate. Feedback is disabled here because the runner optimizes the whole
// stream upfront; MeasureModelAgreement exercises the feedback loop.
func (m *Mix) optimizeAll(keys []optKey, cfg RunConfig) ([]planPair, plancache.Stats, error) {
	opt := core.NewOptimizer(nil, core.Config{
		Workers:         cfg.Workers,
		CacheSize:       cfg.CacheSize,
		DriftBand:       cfg.DriftBand,
		DisableFeedback: true,
	})
	driftCats := map[driftCatKey]*catalog.Catalog{}
	// The plan space follows the mix: index access paths are in unless the
	// spec generated a heap-only mix (the executor runs real index walks,
	// so there is nothing left to gate here).
	servingOpts := m.planOpts()
	reqs := make([]core.Request, 0, 2*len(keys))
	for _, k := range keys {
		q := m.Queries[k.query]
		cat, err := m.catalogAt(driftCats, k.query, k.factor)
		if err != nil {
			return nil, plancache.Stats{}, err
		}
		env := m.Tenants[k.tenant].Env
		reqs = append(reqs,
			core.Request{Query: q.Block, Cat: cat, Env: env, Alg: cfg.LSC, Opts: servingOpts},
			core.Request{Query: q.Block, Cat: cat, Env: env, Alg: cfg.LEC, Opts: servingOpts},
		)
	}
	results := opt.OptimizeBatch(reqs)
	pairs := make([]planPair, len(keys))
	for i := range keys {
		lsc, lec := results[2*i], results[2*i+1]
		if lsc.Err != nil {
			return nil, plancache.Stats{}, fmt.Errorf("workload: %s: %w", cfg.LSC, lsc.Err)
		}
		if lec.Err != nil {
			return nil, plancache.Stats{}, fmt.Errorf("workload: %s: %w", cfg.LEC, lec.Err)
		}
		pairs[i] = planPair{
			lsc: lsc.Plan, lec: lec.Plan,
			lscEC: lsc.EC, lecEC: lec.EC,
		}
	}
	return pairs, opt.CacheStats(), nil
}

type driftCatKey struct {
	query  int
	factor float64
}

// catalogAt returns query q's catalog drifted by factor, memoized so every
// request optimized at the same drift level shares one catalog (and thus
// one plan-cache fingerprint).
func (m *Mix) catalogAt(memo map[driftCatKey]*catalog.Catalog, q int, factor float64) (*catalog.Catalog, error) {
	k := driftCatKey{q, factor}
	if c, ok := memo[k]; ok {
		return c, nil
	}
	c, err := driftedCatalog(m.Queries[q].Cat, factor)
	if err != nil {
		return nil, err
	}
	memo[k] = c
	return c, nil
}

// executeOnce runs one plan on the query's engine under the trajectory and
// returns its realized I/O. The output relation is dropped so repeated
// executions do not accumulate state. Alongside the engine's measured
// per-phase I/O it records the model's conditional per-phase charge at
// the memory the executor actually consumed (plan.CostPhasesModel under
// the serving cost model, over ExecResult.PhaseMem) — the analytic half
// of the phase ledger.
func executeOnce(q *ServingQuery, p *plan.Node, memSeq []float64) (execOutcome, error) {
	res, err := q.Eng.ExecutePlan(p, memSeq)
	if err != nil {
		return execOutcome{}, err
	}
	q.Store.Drop(res.Output.Name)
	condEC, err := p.CostPhasesModel(servingCostModel, plan.SliceMem(res.PhaseMem))
	if err != nil {
		return execOutcome{}, err
	}
	return execOutcome{
		io: res.Stats.IO(), phaseIO: res.PhaseIO,
		phaseMem: res.PhaseMem, condEC: condEC,
		joinSizes:  res.JoinSizes,
		fallbacks:  res.GraceFallbacks,
		fallbackIO: res.GraceFallbackIO,
	}, nil
}

// percentile returns the q-quantile of an unsorted sample via envsim's
// shared nearest-rank Quantile.
func percentile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return envsim.Quantile(s, q)
}
