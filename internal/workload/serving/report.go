package serving

import (
	"sort"

	"lecopt/internal/plan"
)

// Report is the outcome of one engine-in-the-loop run: realized (measured)
// physical I/O of the LSC and LEC policies over the same request stream
// and the same sampled memory trajectories. It is the BENCH_workload.json
// artifact and the empirical ground truth future optimizer changes are
// judged against.
type Report struct {
	Requests int   `json:"requests"`
	Queries  int   `json:"queries"`
	Tenants  int   `json:"tenants"`
	Seed     int64 `json:"seed"`

	LSCAlgorithm string `json:"lsc_algorithm"`
	LECAlgorithm string `json:"lec_algorithm"`

	// Aggregate realized physical I/O (pages read+written) of each
	// policy over the whole stream, and their ratio (LEC/LSC; < 1 means
	// the LEC policy realized less I/O).
	TotalLSCIO    int64   `json:"total_lsc_io"`
	TotalLECIO    int64   `json:"total_lec_io"`
	RealizedRatio float64 `json:"realized_ratio"`

	// Predicted ratio: request-weighted expected-cost ratio of the two
	// chosen plans under the tenants' true environments — what the
	// analytic layer promised before anything executed.
	PredictedRatio float64 `json:"predicted_ratio"`

	// Per-request outcome counts from the LEC policy's perspective
	// (strict realized-I/O comparisons under the shared trajectory).
	Wins   int `json:"lec_wins"`
	Ties   int `json:"ties"`
	Losses int `json:"lec_losses"`

	// PlanAgreementRate is the fraction of requests where both policies
	// chose physically identical plans (ties by construction).
	PlanAgreementRate float64 `json:"plan_agreement_rate"`

	// Per-request regret of each policy against the better of the two
	// realized outcomes, in pages of I/O (nearest-rank percentiles).
	LECRegretP50 float64 `json:"lec_regret_p50"`
	LECRegretP90 float64 `json:"lec_regret_p90"`
	LECRegretP99 float64 `json:"lec_regret_p99"`
	LSCRegretP50 float64 `json:"lsc_regret_p50"`
	LSCRegretP90 float64 `json:"lsc_regret_p90"`
	LSCRegretP99 float64 `json:"lsc_regret_p99"`

	// Cache effectiveness: the plan cache memoizes optimizations across
	// the stream's repeats (keyed drift-banded by DriftBand; 0 = exact
	// keys); the exec cache memoizes deterministic (query, plan,
	// trajectory) executions. Evictions and per-shard occupancy expose
	// whether the working set actually fits — a hit rate can look healthy
	// while entries cycle.
	DriftBand             float64 `json:"drift_band"`
	DistinctOptimizations int     `json:"distinct_optimizations"`
	PlanCacheHits         uint64  `json:"plan_cache_hits"`
	PlanCacheMisses       uint64  `json:"plan_cache_misses"`
	PlanCacheHitRate      float64 `json:"plan_cache_hit_rate"`
	PlanCacheEvictions    uint64  `json:"plan_cache_evictions"`
	PlanCacheShardSizes   []int   `json:"plan_cache_shard_occupancy"`
	ExecCacheHits         int64   `json:"exec_cache_hits"`
	ExecCacheMisses       int64   `json:"exec_cache_misses"`
	ExecCacheHitRate      float64 `json:"exec_cache_hit_rate"`

	PerQuery  []QueryStats  `json:"per_query"`
	PerTenant []TenantStats `json:"per_tenant"`

	// GraceFallbacks counts, over every executed request of both policies,
	// the grace-hash partitions that hit the engine's recursion level cap
	// and degenerated to block nested-loop; GraceFallbackIO is the I/O
	// those degenerate joins booked. Nonzero values mean some plans ran
	// outside the regime cost.GracePasses models — healthy mixes report 0.
	GraceFallbacks  int64 `json:"grace_fallbacks"`
	GraceFallbackIO int64 `json:"grace_fallback_io"`

	// RankAgreement reports whether, for every tenant, the analytic
	// ranking of the two policies (sum of chosen-plan expected costs)
	// agrees in sign with their realized-I/O ranking. A false value is a
	// rank inversion: the model systematically mispredicts which policy
	// wins somewhere, even if the global ratio looks healthy.
	RankAgreement bool `json:"rank_agreement"`

	// PhaseLedger is the per-(tenant, policy, phase, operator,
	// memory-band) cost-attribution audit: analytic charges conditioned
	// on the realized memory trajectory joined with the engine's booked
	// phase I/O. See ledger.go.
	PhaseLedger []LedgerCell `json:"phase_ledger"`

	// PlanDump lists every distinct physical plan either policy executed,
	// with how many requests ran it — the artifact-level evidence of
	// *which* operators (heap scans, index scans, join methods, sorts)
	// the run actually exercised. Sorted by query, then policy, then plan.
	PlanDump []PlanCount `json:"plan_dump"`
}

// PlanCount is one distinct executed plan of a run.
type PlanCount struct {
	Query    int    `json:"query"`
	Policy   string `json:"policy"` // "lsc" or "lec"
	Requests int    `json:"requests"`
	Plan     string `json:"plan"` // indented operator tree (plan.Node.String)
}

// QueryStats is one query's realized totals.
type QueryStats struct {
	ID       int     `json:"id"`
	Tables   int     `json:"tables"`
	Requests int     `json:"requests"`
	LSCIO    int64   `json:"lsc_io"`
	LECIO    int64   `json:"lec_io"`
	Ratio    float64 `json:"ratio"`
	Wins     int     `json:"lec_wins"`
	Ties     int     `json:"ties"`
	Losses   int     `json:"lec_losses"`
}

// TenantStats is one memory regime's realized totals.
type TenantStats struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	LSCIO    int64   `json:"lsc_io"`
	LECIO    int64   `json:"lec_io"`
	Ratio    float64 `json:"ratio"`
	Wins     int     `json:"lec_wins"`
	Ties     int     `json:"ties"`
	Losses   int     `json:"lec_losses"`
	// PredictedRatio is the tenant's analytic LEC/LSC expected-cost
	// ratio over its requests — the model's promised ordering.
	PredictedRatio float64 `json:"predicted_ratio"`
	// RankAgreement is true unless the analytic ranking and the realized
	// ranking strictly disagree (the model says one policy wins while
	// the engine measures the other winning). Ties on either side agree
	// with everything.
	RankAgreement bool `json:"rank_agreement"`

	predLSC, predLEC float64
}

// RankAgrees compares an analytic cost difference against a realized I/O
// difference: only strictly opposite signs disagree. The analytic side
// uses a relative tolerance so float noise around equal plans reads as a
// tie.
func RankAgrees(predDelta, scale float64, ioDelta int64) bool {
	tol := 1e-9 * scale
	modelSign := 0
	switch {
	case predDelta < -tol:
		modelSign = -1
	case predDelta > tol:
		modelSign = 1
	}
	ioSign := 0
	switch {
	case ioDelta < 0:
		ioSign = -1
	case ioDelta > 0:
		ioSign = 1
	}
	return modelSign == 0 || ioSign == 0 || modelSign == ioSign
}

// aggregator folds per-request outcomes into a Report.
type aggregator struct {
	mix *Mix
	cfg RunConfig

	totalLSC, totalLEC   int64
	wins, ties, losses   int
	agree                int
	requests             int
	lecRegret, lscRegret []float64
	predLSC, predLEC     float64

	perQuery  []QueryStats
	perTenant []TenantStats
	plans     map[planKey]*PlanCount
	ledger    *ledger

	graceFallbacks  int64
	graceFallbackIO int64
}

// planKey identifies one distinct executed plan per query and policy.
type planKey struct {
	query  int
	policy string
	sig    string
}

func newAggregator(m *Mix, cfg RunConfig) *aggregator {
	a := &aggregator{mix: m, cfg: cfg, plans: make(map[planKey]*PlanCount), ledger: newLedger()}
	a.perQuery = make([]QueryStats, len(m.Queries))
	for i, q := range m.Queries {
		a.perQuery[i] = QueryStats{ID: q.ID, Tables: len(q.Block.Tables)}
	}
	a.perTenant = make([]TenantStats, len(m.Tenants))
	for i, tn := range m.Tenants {
		a.perTenant[i] = TenantStats{Name: tn.Name}
	}
	return a
}

func (a *aggregator) observe(req request, pair planPair, lsc, lec execOutcome) {
	a.requests++
	a.totalLSC += lsc.io
	a.totalLEC += lec.io
	a.predLSC += pair.lscEC
	a.predLEC += pair.lecEC
	a.graceFallbacks += int64(lsc.fallbacks) + int64(lec.fallbacks)
	a.graceFallbackIO += lsc.fallbackIO + lec.fallbackIO
	best := lsc.io
	if lec.io < best {
		best = lec.io
	}
	a.lecRegret = append(a.lecRegret, float64(lec.io-best))
	a.lscRegret = append(a.lscRegret, float64(lsc.io-best))
	win, tie := 0, 0
	switch {
	case lec.io < lsc.io:
		a.wins++
		win = 1
	case lec.io == lsc.io:
		a.ties++
		tie = 1
	default:
		a.losses++
	}
	if pair.lsc.Signature() == pair.lec.Signature() {
		a.agree++
	}
	a.countPlan(req.query, "lsc", pair.lsc)
	a.countPlan(req.query, "lec", pair.lec)
	q := &a.perQuery[req.query]
	q.Requests++
	q.LSCIO += lsc.io
	q.LECIO += lec.io
	q.Wins += win
	q.Ties += tie
	q.Losses += 1 - win - tie
	t := &a.perTenant[req.tenant]
	t.Requests++
	t.LSCIO += lsc.io
	t.LECIO += lec.io
	t.Wins += win
	t.Ties += tie
	t.Losses += 1 - win - tie
	t.predLSC += pair.lscEC
	t.predLEC += pair.lecEC
	a.ledger.observe(t.Name, "lsc", pair.lsc, lsc)
	a.ledger.observe(t.Name, "lec", pair.lec, lec)
}

// countPlan tallies one executed (query, policy, plan) combination.
func (a *aggregator) countPlan(query int, policy string, p *plan.Node) {
	k := planKey{query: query, policy: policy, sig: p.Signature()}
	if pc, ok := a.plans[k]; ok {
		pc.Requests++
		return
	}
	a.plans[k] = &PlanCount{Query: query, Policy: policy, Requests: 1, Plan: p.String()}
}

func ratioOf(lec, lsc int64) float64 {
	if lsc == 0 {
		return 1
	}
	return float64(lec) / float64(lsc)
}

func (a *aggregator) report() *Report {
	rep := &Report{
		Requests:          a.requests,
		Queries:           len(a.mix.Queries),
		Tenants:           len(a.mix.Tenants),
		Seed:              a.cfg.Seed,
		LSCAlgorithm:      a.cfg.LSC.String(),
		LECAlgorithm:      a.cfg.LEC.String(),
		TotalLSCIO:        a.totalLSC,
		TotalLECIO:        a.totalLEC,
		RealizedRatio:     ratioOf(a.totalLEC, a.totalLSC),
		Wins:              a.wins,
		Ties:              a.ties,
		Losses:            a.losses,
		PlanAgreementRate: float64(a.agree) / float64(a.requests),
		LECRegretP50:      percentile(a.lecRegret, 0.50),
		LECRegretP90:      percentile(a.lecRegret, 0.90),
		LECRegretP99:      percentile(a.lecRegret, 0.99),
		LSCRegretP50:      percentile(a.lscRegret, 0.50),
		LSCRegretP90:      percentile(a.lscRegret, 0.90),
		LSCRegretP99:      percentile(a.lscRegret, 0.99),
		GraceFallbacks:    a.graceFallbacks,
		GraceFallbackIO:   a.graceFallbackIO,
	}
	if a.predLSC > 0 {
		rep.PredictedRatio = a.predLEC / a.predLSC
	}
	for i := range a.perQuery {
		a.perQuery[i].Ratio = ratioOf(a.perQuery[i].LECIO, a.perQuery[i].LSCIO)
	}
	rep.RankAgreement = true
	for i := range a.perTenant {
		t := &a.perTenant[i]
		t.Ratio = ratioOf(t.LECIO, t.LSCIO)
		if t.predLSC > 0 {
			t.PredictedRatio = t.predLEC / t.predLSC
		}
		t.RankAgreement = RankAgrees(t.predLEC-t.predLSC, t.predLSC+t.predLEC, t.LECIO-t.LSCIO)
		if !t.RankAgreement {
			rep.RankAgreement = false
		}
	}
	rep.PerQuery = a.perQuery
	rep.PerTenant = a.perTenant
	rep.PhaseLedger = a.ledger.report()
	for _, pc := range a.plans {
		rep.PlanDump = append(rep.PlanDump, *pc)
	}
	sort.Slice(rep.PlanDump, func(i, j int) bool {
		a, b := rep.PlanDump[i], rep.PlanDump[j]
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return a.Plan < b.Plan
	})
	return rep
}
