// Package serving is the engine-in-the-loop validation subsystem: it
// generates *serving mixes* — engine-scale workloads pairing a catalog of
// distinct queries (with physically materialized relations) with a Zipf
// popularity law, per-tenant memory regimes and a Markov drift of the
// optimizer's statistics — and Monte-Carlo-runs them, optimizing every
// request with both the classical LSC policy and an LEC algorithm, then
// *executing* both plans on the mini engine under shared sampled memory
// trajectories. The Report compares realized (measured) physical I/O, not
// analytic expected cost: the empirical check that the least-expected-cost
// plan actually costs least over a distribution of environments.
package serving

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/engine"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/query"
	"lecopt/internal/storage"
	"lecopt/internal/workload"
)

// ErrBadMix reports an invalid mix specification.
var ErrBadMix = errors.New("serving: invalid mix spec")

// Tenant is one memory regime of a multi-tenant serving host: a name plus
// the environment (initial law and optional Markov chain) its queries run
// under.
type Tenant struct {
	Name string
	Env  envsim.Env
}

// DriftSpec models correlated statistics drift: while a mix is served, the
// true distinct-count of every join key walks away from what the catalog
// recorded at "ANALYZE time". The walk is a sticky Markov chain over
// multiplicative Factors (which must include the neutral 1), advanced once
// per request and shared by all tables — drift is correlated, not
// per-table noise. Both policies optimize against the same drifted
// statistics; execution always runs on the true physical data.
type DriftSpec struct {
	Factors []float64
	Stay    float64
}

// MixSpec controls serving-mix generation. All sizes are engine-scale:
// relations are physically materialized and every request's plans are
// actually executed, so page counts here are 10²-10³, not the 10⁵ of the
// analytic specs above.
type MixSpec struct {
	Queries int     // distinct queries in the mix
	ZipfS   float64 // popularity skew: query i is requested ∝ 1/(i+1)^ZipfS

	MinTables, MaxTables int // tables per query (≥ 2: every plan joins)
	MinPages, MaxPages   int // physical pages per base table
	TuplesPerPage        int
	KeyRange             int64 // join keys drawn from [0, KeyRange)
	OrderByProb          float64
	Shapes               []workload.Shape

	// FilterProb is the probability that a query carries a range filter
	// "t.k <= v" on one of its tables, with v drawn so the selectivity is
	// uniform in [MinFilterSel, MaxFilterSel] — the choice point between
	// an index walk and a heap scan, the paper's Sections 2/5 hedging
	// scenario. Zero disables filters.
	FilterProb                 float64
	MinFilterSel, MaxFilterSel float64

	// DisableIndexes makes the mix heap-only: no physical indexes are
	// built and the optimizer's plan space drops index access paths —
	// the pre-access-path behavior (`lecbench -workload -noindex`). The
	// default (false) builds an index on every table's join key (clustered
	// on sorted tables, unclustered otherwise; see IndexFanout) and lets
	// both policies plan real index scans the engine executes.
	DisableIndexes bool
	// ClusteredProb is the probability a table is stored in key order and
	// gets a clustered index (otherwise unclustered). Ignored when
	// DisableIndexes is set.
	ClusteredProb float64
	// IndexFanout is the entry capacity of every index page (default 16).
	IndexFanout int

	Tenants []Tenant
	Drift   DriftSpec
}

// DefaultMixSpec returns the canonical Zipf+Markov serving mix: 12 distinct
// queries with skew 1.1, four tenants from DefaultTenants, and a ±2x sticky
// statistics drift.
func DefaultMixSpec() (MixSpec, error) {
	tenants, err := DefaultTenants()
	if err != nil {
		return MixSpec{}, err
	}
	return MixSpec{
		Queries:       12,
		ZipfS:         1.1,
		MinTables:     2,
		MaxTables:     4,
		MinPages:      8,
		MaxPages:      64,
		TuplesPerPage: 6,
		KeyRange:      600,
		OrderByProb:   0.4,
		FilterProb:    0.5,
		MinFilterSel:  0.05,
		MaxFilterSel:  0.6,
		ClusteredProb: 0.5,
		IndexFanout:   16,
		Shapes:        []workload.Shape{workload.Chain, workload.Star, workload.Random},
		Tenants:       tenants,
		Drift:         DriftSpec{Factors: []float64{0.5, 1, 2}, Stay: 0.85},
	}, nil
}

// DefaultTenants returns the canonical multi-tenant memory regimes, from a
// zero-variance batch tier (where LEC ≡ LSC) through static bimodal
// pressure to sticky and volatile Markov memory. Levels are engine-scale
// pages, chosen to straddle the sort-merge/grace-hash thresholds of tables
// in the DefaultMixSpec size range.
func DefaultTenants() ([]Tenant, error) {
	levels := []float64{5, 9, 17, 40}
	bimodal, err := dist.Bimodal(7, 40, 0.35)
	if err != nil {
		return nil, err
	}
	uniform, err := dist.Uniform(levels...)
	if err != nil {
		return nil, err
	}
	sticky, err := dist.Sticky(levels, 0.7)
	if err != nil {
		return nil, err
	}
	volatile, err := dist.RandomWalk(levels, 0.3, 0.45)
	if err != nil {
		return nil, err
	}
	return []Tenant{
		{Name: "batch", Env: envsim.Env{Mem: dist.Point(40)}},
		{Name: "interactive", Env: envsim.Env{Mem: bimodal}},
		{Name: "shared-sticky", Env: envsim.Env{Mem: uniform, Chain: sticky}},
		{Name: "shared-volatile", Env: envsim.Env{Mem: uniform, Chain: volatile}},
	}, nil
}

// ServingQuery is one distinct query of a mix: the statistics catalog the
// optimizer sees, the query block, and the materialized physical data the
// engine executes against. Catalog statistics match the physical generator
// exactly (pages, rows, key range), so at drift factor 1 the optimizer's
// estimates are unbiased.
type ServingQuery struct {
	ID     int
	Cat    *catalog.Catalog
	Block  *query.Block
	Store  *storage.Store
	Eng    *engine.Engine
	Phases int
}

// Mix is a generated serving workload, ready for Run.
type Mix struct {
	Spec       MixSpec
	Queries    []*ServingQuery
	Tenants    []Tenant
	Popularity dist.Dist // law over query IDs (as float64 values)

	driftChain *dist.Chain // nil: no statistics drift
	driftInit  dist.Dist
}

// NewMix generates a serving mix from the spec using rng for all
// randomness (same seed ⇒ same mix, including the physical tuples).
func NewMix(spec MixSpec, rng *rand.Rand) (*Mix, error) {
	if spec.Queries < 1 {
		return nil, fmt.Errorf("%w: %d queries", ErrBadMix, spec.Queries)
	}
	if spec.MinTables < 2 || spec.MaxTables < spec.MinTables || spec.MaxTables > query.MaxTables {
		return nil, fmt.Errorf("%w: tables range [%d, %d]", ErrBadMix, spec.MinTables, spec.MaxTables)
	}
	if spec.MinPages < 1 || spec.MaxPages < spec.MinPages || spec.TuplesPerPage < 1 || spec.KeyRange < 1 {
		return nil, fmt.Errorf("%w: physical sizing", ErrBadMix)
	}
	if math.IsNaN(spec.ZipfS) || spec.ZipfS < 0 {
		return nil, fmt.Errorf("%w: Zipf skew %v", ErrBadMix, spec.ZipfS)
	}
	if len(spec.Shapes) == 0 {
		return nil, fmt.Errorf("%w: no shapes", ErrBadMix)
	}
	if spec.FilterProb < 0 || spec.FilterProb > 1 || math.IsNaN(spec.FilterProb) {
		return nil, fmt.Errorf("%w: filter prob %v", ErrBadMix, spec.FilterProb)
	}
	if spec.FilterProb > 0 {
		if !(spec.MinFilterSel > 0) || spec.MaxFilterSel < spec.MinFilterSel || spec.MaxFilterSel > 1 {
			return nil, fmt.Errorf("%w: filter selectivity range [%v, %v]", ErrBadMix, spec.MinFilterSel, spec.MaxFilterSel)
		}
	}
	if spec.ClusteredProb < 0 || spec.ClusteredProb > 1 || math.IsNaN(spec.ClusteredProb) {
		return nil, fmt.Errorf("%w: clustered prob %v", ErrBadMix, spec.ClusteredProb)
	}
	if spec.IndexFanout < 0 || spec.IndexFanout == 1 {
		return nil, fmt.Errorf("%w: index fanout %d", ErrBadMix, spec.IndexFanout)
	}
	if len(spec.Tenants) == 0 {
		return nil, fmt.Errorf("%w: no tenants", ErrBadMix)
	}
	for _, tn := range spec.Tenants {
		if err := tn.Env.Validate(); err != nil {
			return nil, fmt.Errorf("%w: tenant %q: %v", ErrBadMix, tn.Name, err)
		}
	}
	m := &Mix{Spec: spec, Tenants: spec.Tenants}
	if len(spec.Drift.Factors) > 0 {
		hasNeutral := false
		for _, f := range spec.Drift.Factors {
			if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("%w: drift factor %v", ErrBadMix, f)
			}
			if f == 1 {
				hasNeutral = true
			}
		}
		if !hasNeutral {
			return nil, fmt.Errorf("%w: drift factors must include the neutral 1", ErrBadMix)
		}
		chain, err := dist.Sticky(spec.Drift.Factors, spec.Drift.Stay)
		if err != nil {
			return nil, fmt.Errorf("%w: drift chain: %v", ErrBadMix, err)
		}
		m.driftChain = chain
		m.driftInit = dist.Point(1)
	}
	ids := make([]float64, spec.Queries)
	for i := range ids {
		ids[i] = float64(i)
	}
	pop, err := dist.Zipf(ids, spec.ZipfS)
	if err != nil {
		return nil, err
	}
	m.Popularity = pop
	for i := 0; i < spec.Queries; i++ {
		q, err := generateServingQuery(i, spec, rng)
		if err != nil {
			return nil, err
		}
		m.Queries = append(m.Queries, q)
	}
	return m, nil
}

// generateServingQuery builds one query: a join block over freshly
// materialized relations plus a catalog whose statistics agree with the
// generator (matched statistics keep the engine-vs-model comparison about
// plan choice rather than estimation error). Unless the spec disables
// indexes, every table gets a physical B-tree index on its join key —
// clustered over key-ordered storage with probability ClusteredProb,
// unclustered otherwise — whose built height is what the catalog records,
// so cost.IndexScanIO prices the very structure the engine walks. With
// FilterProb a query carries one range filter "t.k <= v", the
// index-vs-heap-scan choice point of the paper's headline examples.
func generateServingQuery(id int, spec MixSpec, rng *rand.Rand) (*ServingQuery, error) {
	tables := spec.MinTables + rng.Intn(spec.MaxTables-spec.MinTables+1)
	shape := spec.Shapes[rng.Intn(len(spec.Shapes))]
	fanout := spec.IndexFanout
	if fanout == 0 {
		fanout = 16
	}
	cat := catalog.New()
	store := storage.NewStore()
	names := make([]string, tables)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
		pages := spec.MinPages + rng.Intn(spec.MaxPages-spec.MinPages+1)
		gen := storage.GenSpec{
			Name: names[i], Pages: pages, TuplesPerPage: spec.TuplesPerPage, KeyRange: spec.KeyRange,
		}
		clustered := !spec.DisableIndexes && rng.Float64() < spec.ClusteredProb
		var rel *storage.Relation
		var err error
		if clustered {
			rel, err = storage.GenerateSorted(gen, rng)
		} else {
			rel, err = storage.Generate(gen, rng)
		}
		if err != nil {
			return nil, err
		}
		if err := store.Add(rel); err != nil {
			return nil, err
		}
		tab, err := catalog.NewTable(names[i], float64(pages), float64(pages*spec.TuplesPerPage),
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: float64(spec.KeyRange), Min: 0, Max: float64(spec.KeyRange)})
		if err != nil {
			return nil, err
		}
		if err := cat.AddTable(tab); err != nil {
			return nil, err
		}
		if !spec.DisableIndexes {
			ixName := fmt.Sprintf("ix_%s_k", names[i])
			ix, err := storage.BuildIndex(store, ixName, names[i], "k", clustered, fanout)
			if err != nil {
				return nil, err
			}
			if err := cat.AddIndex(catalog.Index{
				Name: ixName, Table: names[i], Column: "k",
				Clustered: clustered, Height: float64(ix.Height()),
			}); err != nil {
				return nil, err
			}
		}
	}
	blk := &query.Block{Tables: names}
	join := func(i, j int) {
		blk.Joins = append(blk.Joins, query.Join{
			Left:  query.ColRef{Table: names[i], Column: "k"},
			Right: query.ColRef{Table: names[j], Column: "k"},
		})
	}
	switch shape {
	case workload.Chain:
		for i := 1; i < tables; i++ {
			join(i-1, i)
		}
	case workload.Star:
		for i := 1; i < tables; i++ {
			join(0, i)
		}
	case workload.Clique:
		for i := 0; i < tables; i++ {
			for j := i + 1; j < tables; j++ {
				join(i, j)
			}
		}
	case workload.Random:
		for i := 1; i < tables; i++ {
			join(rng.Intn(i), i)
		}
	default:
		return nil, fmt.Errorf("%w: shape %d", ErrBadMix, shape)
	}
	if rng.Float64() < spec.OrderByProb {
		blk.OrderBy = &query.ColRef{Table: names[rng.Intn(tables)], Column: "k"}
	}
	if rng.Float64() < spec.FilterProb {
		sel := spec.MinFilterSel + rng.Float64()*(spec.MaxFilterSel-spec.MinFilterSel)
		blk.Filters = append(blk.Filters, query.Filter{
			Col:   query.ColRef{Table: names[rng.Intn(tables)], Column: "k"},
			Op:    catalog.OpLe,
			Value: math.Round(sel * float64(spec.KeyRange)),
		})
	}
	if err := blk.Validate(cat); err != nil {
		return nil, err
	}
	return &ServingQuery{
		ID:     id,
		Cat:    cat,
		Block:  blk,
		Store:  store,
		Eng:    engine.New(store),
		Phases: tables - 1,
	}, nil
}

// servingCostModel is the cost model every serving-path optimization and
// conditional charge runs under. Serving predictions are judged against
// the engine's measured I/O, so they use cost.ModelEngine — the charge
// that replays the engine's actual grace-hash recursion — while the paper
// experiments stay on cost.ModelPaper (the zero value) to keep the E1-E20
// goldens pinned to the published three-case formulas.
const servingCostModel = cost.ModelEngine

// planOpts returns the optimizer plan-space options a mix's requests run
// under — the one place the spec's index switch and the serving cost
// model feed the optimizer, so a heap-only mix ("-noindex") and an
// index-enabled mix differ by exactly the index field.
func (m *Mix) planOpts() *optimizer.Options {
	return &optimizer.Options{
		DisableIndexes: m.Spec.DisableIndexes,
		CostModel:      servingCostModel,
	}
}

// driftedCatalog rebuilds a query's catalog with every distinct count
// scaled by factor (clamped to [1, rows]) — the stale statistics the
// optimizer sees while the physical data stays put. It delegates to the
// shared catalog.ScaleDistinct transform (serving tables carry only the
// join key column "k", so scaling all columns is scaling the join keys),
// keeping the simulator's drift and Prepare's drift axis the same
// transform. Factor 1 returns the catalog unchanged.
func driftedCatalog(base *catalog.Catalog, factor float64) (*catalog.Catalog, error) {
	return base.ScaleDistinct(factor)
}
