package serving

import (
	"fmt"
	"sort"
	"strings"

	"lecopt/internal/plan"
)

// The phase ledger is the run's cost-attribution audit: every executed
// request contributes, for each execution phase of each policy's plan, a
// (tenant, policy, phase, operator, memory-band) cell joining the
// analytic per-phase charge — conditioned on the memory the executor
// actually saw in that phase (plan.CostPhases over ExecResult.PhaseMem)
// — with the realized physical I/O the engine booked there
// (ExecResult.PhaseIO). Aggregated deltas localize model-vs-engine
// disagreement to a specific operator in a specific memory regime, which
// is exactly the information a total-I/O ratio destroys.

// LedgerCell is one aggregated cell of the phase ledger.
type LedgerCell struct {
	Tenant string `json:"tenant"`
	Policy string `json:"policy"` // "lsc" or "lec"
	Phase  int    `json:"phase"`
	// Operator describes the operators the model attributes to the
	// phase, in plan walk order: e.g. "grace-hash", "scan+page-nl",
	// "sort-merge+sort".
	Operator string `json:"operator"`
	// MemBand buckets the effective memory the phase ran with.
	MemBand string `json:"mem_band"`
	Samples int    `json:"samples"`
	// AnalyticIO sums the model's conditional per-phase charges;
	// RealizedIO sums the engine's booked phase I/O.
	AnalyticIO float64 `json:"analytic_io"`
	RealizedIO float64 `json:"realized_io"`
	// Delta is realized − analytic (positive: the engine paid more than
	// the model predicted at the realized memory); Ratio is
	// realized/analytic (1 when both are 0).
	Delta float64 `json:"delta"`
	Ratio float64 `json:"ratio"`
}

// cellKey identifies one ledger cell.
type cellKey struct {
	tenant   string
	policy   string
	phase    int
	operator string
	memBand  string
}

// ledger accumulates phase-attribution cells over a run.
type ledger struct {
	cells map[cellKey]*LedgerCell
	// opLabels memoizes phaseOperatorLabels by plan signature: the same
	// few plans execute thousands of times under Zipf popularity.
	opLabels map[string][]string
}

func newLedger() *ledger {
	return &ledger{cells: map[cellKey]*LedgerCell{}, opLabels: map[string][]string{}}
}

// memBand buckets an effective phase memory (pages) into the run's
// reporting bands. The boundaries are powers of two chosen so the default
// tenant levels {5, 9, 17, 40} land in distinct bands.
func memBand(mem float64) string {
	switch {
	case mem < 8:
		return "<8"
	case mem < 16:
		return "8-15"
	case mem < 32:
		return "16-31"
	default:
		return "32+"
	}
}

// phaseOperatorLabels renders one label per execution phase listing the
// operators the cost model attributes to it (joins and sorts in their
// phase, materialized scans in phase 0), joined by "+" in plan walk
// order. Unfiltered heap handoffs are invisible: their read is inside
// the consuming operator's formula.
func phaseOperatorLabels(p *plan.Node) []string {
	parts := make([][]string, p.Phases())
	var rec func(n *plan.Node) int
	rec = func(n *plan.Node) int {
		switch n.Kind {
		case plan.KindScan:
			if n.Materialized() {
				parts[0] = append(parts[0], "scan")
			}
			return 1
		case plan.KindSort:
			k := rec(n.Child)
			phase := 0
			if k >= 2 {
				phase = k - 2
			}
			parts[phase] = append(parts[phase], "sort")
			return k
		default: // join
			k := rec(n.Left) + rec(n.Right)
			parts[k-2] = append(parts[k-2], n.Method.String())
			return k
		}
	}
	rec(p)
	labels := make([]string, len(parts))
	for i, ps := range parts {
		if len(ps) == 0 {
			labels[i] = "none"
			continue
		}
		labels[i] = strings.Join(ps, "+")
	}
	return labels
}

// observe folds one executed plan into the ledger.
func (l *ledger) observe(tenant, policy string, p *plan.Node, out execOutcome) {
	sig := p.Signature()
	labels, ok := l.opLabels[sig]
	if !ok {
		labels = phaseOperatorLabels(p)
		l.opLabels[sig] = labels
	}
	for phase := range out.phaseIO {
		op := "none"
		if phase < len(labels) {
			op = labels[phase]
		}
		var mem float64
		if phase < len(out.phaseMem) {
			mem = out.phaseMem[phase]
		}
		var analytic float64
		if phase < len(out.condEC) {
			analytic = out.condEC[phase]
		}
		k := cellKey{tenant: tenant, policy: policy, phase: phase, operator: op, memBand: memBand(mem)}
		c := l.cells[k]
		if c == nil {
			c = &LedgerCell{Tenant: tenant, Policy: policy, Phase: phase, Operator: op, MemBand: k.memBand}
			l.cells[k] = c
		}
		c.Samples++
		c.AnalyticIO += analytic
		c.RealizedIO += float64(out.phaseIO[phase])
	}
}

// report finalizes the cells in a deterministic order.
func (l *ledger) report() []LedgerCell {
	out := make([]LedgerCell, 0, len(l.cells))
	for _, c := range l.cells {
		cc := *c
		cc.Delta = cc.RealizedIO - cc.AnalyticIO
		switch {
		case cc.AnalyticIO > 0:
			cc.Ratio = cc.RealizedIO / cc.AnalyticIO
		case cc.RealizedIO == 0:
			cc.Ratio = 1
		default:
			cc.Ratio = fInf
		}
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Operator != b.Operator {
			return a.Operator < b.Operator
		}
		return bandRank(a.MemBand) < bandRank(b.MemBand)
	})
	return out
}

// bandRank orders memory-band labels low to high.
func bandRank(b string) int {
	for i, s := range []string{"<8", "8-15", "16-31", "32+"} {
		if b == s {
			return i
		}
	}
	return len(b) + 4 // unknown bands sort after known ones, by length
}

// fInf is the JSON-safe stand-in for an infinite realized/analytic ratio
// (analytic 0 with realized I/O > 0): encoding/json rejects +Inf.
const fInf = 1e308

// FindLedgerCell returns the first cell matching the given fields, or nil.
// Tests use it to pin specific attribution cells as regressions.
func FindLedgerCell(cells []LedgerCell, tenant, policy string, phase int, operator, band string) *LedgerCell {
	for i := range cells {
		c := &cells[i]
		if c.Tenant == tenant && c.Policy == policy && c.Phase == phase && c.Operator == operator && c.MemBand == band {
			return c
		}
	}
	return nil
}

// String renders a cell compactly for test failure messages.
func (c LedgerCell) String() string {
	return fmt.Sprintf("%s/%s phase=%d op=%s mem=%s n=%d analytic=%.1f realized=%.1f ratio=%.3f",
		c.Tenant, c.Policy, c.Phase, c.Operator, c.MemBand, c.Samples, c.AnalyticIO, c.RealizedIO, c.Ratio)
}
