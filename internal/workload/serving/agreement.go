package serving

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lecopt/internal/catalog"
	"lecopt/internal/core"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/plan"
)

// ErrBadAgreement reports an invalid agreement-sweep configuration.
var ErrBadAgreement = errors.New("serving: invalid agreement config")

// AgreementConfig tunes one engine-vs-model agreement sweep: a corpus of
// seeded random plans (mixed join-method subsets, random optimization
// memory, random executed trajectories) whose measured physical I/O is
// compared against the analytic cost model's prediction.
type AgreementConfig struct {
	// Trials is the corpus size (0 uses 60, the documented sweep).
	Trials int
	// Seed drives all sweep randomness.
	Seed int64
	// Feedback routes each execution's observed intermediate-result
	// sizes back through an Optimizer handle (Observe) and re-optimizes
	// until the plan choice is stable, so the model side costs with
	// executed sizes instead of selectivity-product estimates.
	Feedback bool
	// DriftFactors cycles statistics drift through the trials: trial i
	// optimizes against the catalog with distinct counts scaled by
	// DriftFactors[i%len] while executing the true data — the serving
	// mix's stale-statistics setting, which is what inflates the
	// nested-loop band. Empty means no drift (factor 1).
	DriftFactors []float64
}

// AgreementReport pins the measured/model agreement of one sweep. Bands
// are worst-case symmetric ratios max(measured/model, model/measured):
// the quantitative gap between the paper's three-case cost formulas and
// the page-level engine. Nested-loop-bearing plans get their own band
// because PageNL's expensive case charges outer·inner — the rescan
// product squares any intermediate-size estimation error, which is
// exactly what executed-size feedback removes. Index-scan-bearing plans
// (without nested loops) get a third band: their access cost is priced by
// cost.IndexScanIO against the engine's real root-to-leaf walk.
type AgreementReport struct {
	Trials   int  `json:"trials"`
	Feedback bool `json:"feedback"`

	// BandSMGH covers heap-scan plans using only sort-merge and
	// grace-hash joins (cost linear in input sizes); BandNL covers plans
	// containing a nested-loop join (classified first: the rescan product
	// dominates any access-path discrepancy); BandIX covers the remaining
	// plans containing an index scan.
	BandSMGH float64 `json:"band_smgh"`
	BandNL   float64 `json:"band_nl"`
	BandIX   float64 `json:"band_ix"`

	// MeanAbsLog* is the mean |ln(measured/model)| per class — the
	// average miscalibration, which executed-size feedback shrinks even
	// when the worst-case band is pinned by a non-size discrepancy.
	MeanAbsLogSMGH float64 `json:"mean_abs_log_smgh"`
	MeanAbsLogNL   float64 `json:"mean_abs_log_nl"`
	MeanAbsLogIX   float64 `json:"mean_abs_log_ix"`

	PlansSMGH int `json:"plans_smgh"`
	PlansNL   int `json:"plans_nl"`
	PlansIX   int `json:"plans_ix"`

	// FeedbackObservations counts the folded size observations (0 when
	// feedback is off).
	FeedbackObservations uint64 `json:"feedback_observations"`
}

// agreementMethodSets mirrors the model-agreement property test's corpus:
// the optimizer default plus restricted subsets that force each join
// family to appear.
func agreementMethodSets() [][]cost.JoinMethod {
	return [][]cost.JoinMethod{
		nil, // optimizer default: sort-merge, grace hash, page nested-loop
		{cost.SortMerge},
		{cost.GraceHash},
		{cost.SortMerge, cost.GraceHash},
		{cost.PageNL, cost.BlockNL},
	}
}

// MeasureModelAgreement sweeps a corpus of random plans over the mix's
// queries and reports the worst measured/model bands, optionally closing
// the executed-size feedback loop between executions. With feedback on,
// each trial executes its plan, Observes the materialized intermediate
// sizes into the handle, and re-optimizes until the choice is stable (at
// most four rounds — observations are deterministic, so a plan whose own
// prefixes have been observed is a fixpoint); the band is then measured
// on the stable, hint-costed plan. Later trials of the same query reuse
// earlier observations, exactly like a serving fleet.
func (m *Mix) MeasureModelAgreement(cfg AgreementConfig) (*AgreementReport, error) {
	trials := cfg.Trials
	if trials == 0 {
		trials = 60
	}
	if trials < 0 {
		return nil, fmt.Errorf("%w: %d trials", ErrBadAgreement, trials)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := core.NewOptimizer(nil, core.Config{
		Workers:         1,
		DisableFeedback: !cfg.Feedback,
	})
	methodSets := agreementMethodSets()
	levels := []float64{4, 6, 9, 14, 20, 40, 80}
	factors := cfg.DriftFactors
	if len(factors) == 0 {
		factors = []float64{1}
	}
	driftCats := map[driftCatKey]*catalog.Catalog{}
	rep := &AgreementReport{Trials: trials, Feedback: cfg.Feedback, BandSMGH: 1, BandNL: 1, BandIX: 1}

	for trial := 0; trial < trials; trial++ {
		q := m.Queries[trial%len(m.Queries)]
		cat, err := m.catalogAt(driftCats, q.ID, factors[trial%len(factors)])
		if err != nil {
			return nil, err
		}
		opts := m.planOpts()
		opts.Methods = methodSets[trial%len(methodSets)]
		// A random optimization memory decouples the plan's choice point
		// from the executed trajectory, exactly like a serving mix under
		// memory drift.
		optMem := levels[rng.Intn(len(levels))]
		memSeq := make([]float64, q.Phases)
		for i := range memSeq {
			memSeq[i] = levels[rng.Intn(len(levels))]
		}
		req := core.Request{
			Query: q.Block, Cat: cat,
			Env:  envsim.Env{Mem: dist.Point(optMem)},
			Alg:  core.AlgLSCMode,
			Opts: opts,
		}
		resp, err := opt.Optimize(req)
		if err != nil {
			return nil, fmt.Errorf("serving: agreement trial %d: %w", trial, err)
		}
		cur := resp.Plan
		exec, err := executeOnce(q, cur, memSeq)
		if err != nil {
			return nil, fmt.Errorf("serving: agreement trial %d: %w", trial, err)
		}
		if cfg.Feedback {
			for iter := 0; iter < 4; iter++ {
				if err := opt.Observe(core.Feedback{Query: q.Block, Cat: cat, Sizes: exec.joinSizes}); err != nil {
					return nil, err
				}
				next, err := opt.Optimize(req)
				if err != nil {
					return nil, fmt.Errorf("serving: agreement trial %d: %w", trial, err)
				}
				if next.Plan.Signature() == cur.Signature() {
					// Same physical shape; adopt the hint-costed node
					// sizes and keep the already-measured execution
					// (execution depends on shape only).
					cur = next.Plan
					break
				}
				cur = next.Plan
				if exec, err = executeOnce(q, cur, memSeq); err != nil {
					return nil, fmt.Errorf("serving: agreement trial %d: %w", trial, err)
				}
			}
		}
		model, err := cur.CostSeqModel(servingCostModel, plan.SliceMem(memSeq))
		if err != nil {
			return nil, fmt.Errorf("serving: agreement trial %d: %w", trial, err)
		}
		measured := float64(exec.io)
		if measured <= 0 || model <= 0 {
			return nil, fmt.Errorf("serving: agreement trial %d: non-positive cost (measured %v, model %v)", trial, measured, model)
		}
		ratio := measured / model
		if 1/ratio > ratio {
			ratio = 1 / ratio
		}
		switch {
		case hasNestedLoopJoin(cur):
			rep.PlansNL++
			rep.MeanAbsLogNL += math.Log(ratio)
			if ratio > rep.BandNL {
				rep.BandNL = ratio
			}
		case hasIndexScan(cur):
			rep.PlansIX++
			rep.MeanAbsLogIX += math.Log(ratio)
			if ratio > rep.BandIX {
				rep.BandIX = ratio
			}
		default:
			rep.PlansSMGH++
			rep.MeanAbsLogSMGH += math.Log(ratio)
			if ratio > rep.BandSMGH {
				rep.BandSMGH = ratio
			}
		}
	}
	if rep.PlansNL > 0 {
		rep.MeanAbsLogNL /= float64(rep.PlansNL)
	}
	if rep.PlansIX > 0 {
		rep.MeanAbsLogIX /= float64(rep.PlansIX)
	}
	if rep.PlansSMGH > 0 {
		rep.MeanAbsLogSMGH /= float64(rep.PlansSMGH)
	}
	_, rep.FeedbackObservations = opt.FeedbackStats()
	return rep, nil
}

// hasNestedLoopJoin reports whether any join in the plan is a nested-loop
// variant.
func hasNestedLoopJoin(p *plan.Node) bool {
	found := false
	p.Walk(func(n *plan.Node) {
		if n.Kind == plan.KindJoin && (n.Method == cost.PageNL || n.Method == cost.BlockNL) {
			found = true
		}
	})
	return found
}

// hasIndexScan reports whether any leaf of the plan is an index scan.
func hasIndexScan(p *plan.Node) bool {
	found := false
	p.Walk(func(n *plan.Node) {
		if n.Kind == plan.KindScan && n.Access == plan.AccessIndex {
			found = true
		}
	})
	return found
}
