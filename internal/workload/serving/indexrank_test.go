package serving

import (
	"math/rand"
	"testing"

	"lecopt/internal/catalog"
	"lecopt/internal/engine"
	"lecopt/internal/optimizer"
	"lecopt/internal/plan"
	"lecopt/internal/query"
	"lecopt/internal/storage"
)

// TestIndexPlanRankAgreement is the E15/E17-style check for the new access
// path: over a two-table filtered join, the optimizer's index plan and the
// heap-only alternative are both *executed*, and at every probed memory
// level the realized I/O must rank the two plans exactly as their analytic
// C(P, v) does. This is the end-to-end property the serving loop rests on:
// when the model says the index plan is cheaper, executing it really is.
func TestIndexPlanRankAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	store := storage.NewStore()
	cat := catalog.New()
	specs := []struct {
		name   string
		pages  int
		sorted bool
	}{{"t0", 48, true}, {"t1", 24, false}}
	const (
		tpp      = 6
		keyRange = 600
	)
	for _, sp := range specs {
		gen := storage.GenSpec{Name: sp.name, Pages: sp.pages, TuplesPerPage: tpp, KeyRange: keyRange}
		var rel *storage.Relation
		var err error
		if sp.sorted {
			rel, err = storage.GenerateSorted(gen, rng)
		} else {
			rel, err = storage.Generate(gen, rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Add(rel); err != nil {
			t.Fatal(err)
		}
		tab, err := catalog.NewTable(sp.name, float64(sp.pages), float64(sp.pages*tpp),
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: keyRange, Min: 0, Max: keyRange})
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddTable(tab); err != nil {
			t.Fatal(err)
		}
		ixName := "ix_" + sp.name + "_k"
		ix, err := storage.BuildIndex(store, ixName, sp.name, "k", sp.sorted, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddIndex(catalog.Index{
			Name: ixName, Table: sp.name, Column: "k",
			Clustered: sp.sorted, Height: float64(ix.Height()),
		}); err != nil {
			t.Fatal(err)
		}
	}
	blk := &query.Block{
		Tables: []string{"t0", "t1"},
		Joins: []query.Join{{
			Left:  query.ColRef{Table: "t0", Column: "k"},
			Right: query.ColRef{Table: "t1", Column: "k"},
		}},
		Filters: []query.Filter{{
			Col: query.ColRef{Table: "t0", Column: "k"}, Op: catalog.OpLe, Value: 90,
		}},
	}
	if err := blk.Validate(cat); err != nil {
		t.Fatal(err)
	}
	eng := engine.New(store)

	const optMem = 20
	withIx, err := optimizer.LSC(cat, blk, optimizer.Options{}, optMem)
	if err != nil {
		t.Fatal(err)
	}
	//leclint:allow optguard -- deliberate heap-only comparison arm; the contrast with the index plan is the test's point
	heapOnly, err := optimizer.LSC(cat, blk, optimizer.Options{DisableIndexes: true}, optMem)
	if err != nil {
		t.Fatal(err)
	}
	if !hasIndexScan(withIx.Plan) {
		t.Fatalf("the selective filter should make the clustered index win:\n%s", withIx.Plan)
	}
	if hasIndexScan(heapOnly.Plan) {
		t.Fatalf("DisableIndexes leaked an index scan:\n%s", heapOnly.Plan)
	}

	execIO := func(p *plan.Node, mem float64) int64 {
		t.Helper()
		res, err := eng.ExecutePlan(p, []float64{mem})
		if err != nil {
			t.Fatalf("execute at mem %v: %v\n%s", mem, err, p)
		}
		store.Drop(res.Output.Name)
		return res.Stats.IO()
	}
	ranksChecked := 0
	for _, mem := range []float64{4, 7, 12, 20, 40} {
		modelIx := withIx.Plan.CostAt(mem)
		modelHeap := heapOnly.Plan.CostAt(mem)
		measIx := execIO(withIx.Plan, mem)
		measHeap := execIO(heapOnly.Plan, mem)
		t.Logf("mem=%v: index plan model=%.0f measured=%d | heap plan model=%.0f measured=%d",
			mem, modelIx, measIx, modelHeap, measHeap)
		// Rank agreement where the model sees a decisive gap (>10%); inside
		// the gap the two plans are analytic ties and either order is fine.
		switch {
		case modelIx < 0.9*modelHeap:
			ranksChecked++
			if measIx >= measHeap {
				t.Errorf("mem=%v: model ranks index plan cheaper (%.0f < %.0f) but execution disagrees (%d >= %d)",
					mem, modelIx, modelHeap, measIx, measHeap)
			}
		case modelHeap < 0.9*modelIx:
			ranksChecked++
			if measHeap >= measIx {
				t.Errorf("mem=%v: model ranks heap plan cheaper (%.0f < %.0f) but execution disagrees (%d >= %d)",
					mem, modelHeap, modelIx, measHeap, measIx)
			}
		}
	}
	if ranksChecked == 0 {
		t.Fatal("no memory level produced a decisive analytic gap; the rank check never ran")
	}
}
