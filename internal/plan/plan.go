// Package plan defines physical query evaluation plans: left-deep trees of
// scans, binary joins and sorts, annotated with estimated output sizes and
// order properties. It also implements C(P, v) — the cost of a plan under
// a concrete parameter setting — including the per-phase memory sequences
// of Section 3.5 (a left-deep plan over n relations executes in n-1 join
// phases; memory may change between phases but not within one).
package plan

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"lecopt/internal/cost"
)

// Kind discriminates plan node types.
type Kind uint8

// Node kinds.
const (
	KindScan Kind = iota
	KindJoin
	KindSort
)

func (k Kind) String() string {
	switch k {
	case KindScan:
		return "scan"
	case KindJoin:
		return "join"
	case KindSort:
		return "sort"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access identifies how a scan reads its table.
type Access uint8

// Access methods.
const (
	AccessHeap Access = iota
	AccessIndex
)

func (a Access) String() string {
	if a == AccessIndex {
		return "index"
	}
	return "heap"
}

// Order is an output order property: sorted ascending on Table.Column.
// The zero value means "no particular order".
type Order struct {
	Table  string
	Column string
}

// IsNone reports whether no order is guaranteed.
func (o Order) IsNone() bool { return o == Order{} }

func (o Order) String() string {
	if o.IsNone() {
		return "none"
	}
	return o.Table + "." + o.Column
}

// ScanPred is a compiled single-column range predicate pushed into a scan
// — the executable form of the query's local filters on one table, carried
// on the plan so the execution engine can evaluate the access path (walk
// an index range, or filter a heap scan) without re-deriving predicates
// from the query block. The optimizer sets it on every access candidate of
// a table whose filters all target one column; multi-column filter sets
// stay estimation-only (Pred nil) and the engine executes the unfiltered
// physical shape, as before.
type ScanPred struct {
	Column string
	// Lo/Hi bound the qualifying values; Has* report whether each bound
	// exists and *Open whether it is exclusive.
	Lo, Hi         float64
	HasLo, HasHi   bool
	LoOpen, HiOpen bool
}

// Match reports whether a value satisfies the predicate.
func (p *ScanPred) Match(v float64) bool {
	if p == nil {
		return true
	}
	if p.HasLo && (v < p.Lo || (p.LoOpen && v == p.Lo)) {
		return false
	}
	if p.HasHi && (v > p.Hi || (p.HiOpen && v == p.Hi)) {
		return false
	}
	return true
}

// KeyRange returns the predicate as an inclusive integer key interval —
// the form an index walk over int64 keys consumes. A nil predicate is the
// full range.
func (p *ScanPred) KeyRange() (lo, hi int64) {
	lo, hi = math.MinInt64, math.MaxInt64
	if p == nil {
		return lo, hi
	}
	if p.HasLo {
		l := math.Ceil(p.Lo)
		if p.LoOpen && l == p.Lo {
			l++
		}
		lo = int64(l)
	}
	if p.HasHi {
		h := math.Floor(p.Hi)
		if p.HiOpen && h == p.Hi {
			h--
		}
		hi = int64(h)
	}
	return lo, hi
}

// Node is one operator of a physical plan. A single struct with a Kind
// discriminator keeps tree surgery, printing and signatures simple.
type Node struct {
	Kind Kind

	// Scan fields.
	Table  string
	Access Access
	Index  string    // index name when Access == AccessIndex
	Sel    float64   // local-filter selectivity applied during the scan
	Pred   *ScanPred // compiled filter range, when the filters admit one

	// Join fields.
	Method      cost.JoinMethod
	Left, Right *Node

	// Sort: Child is the input (also used for rendering uniformity).
	Child *Node

	// Annotations shared by all kinds.
	OutPages float64 // estimated output size in pages (point estimate)
	OutOrder Order   // order property of the output
	IO       float64 // this node's own estimated I/O at annotation time
}

// Errors from plan validation and costing.
var (
	ErrNilNode   = errors.New("plan: nil node")
	ErrShape     = errors.New("plan: malformed tree")
	ErrNotLeft   = errors.New("plan: not left-deep")
	ErrPhaseMem  = errors.New("plan: memory sequence shorter than phase count")
	ErrWrongKind = errors.New("plan: operation on wrong node kind")
)

// NewScan builds a scan leaf. outPages is the size after applying local
// filters (the paper's |A_j| "after any initial selection").
func NewScan(table string, access Access, index string, sel, outPages float64) *Node {
	return &Node{
		Kind:     KindScan,
		Table:    table,
		Access:   access,
		Index:    index,
		Sel:      sel,
		OutPages: outPages,
	}
}

// NewJoin builds a join node over two subtrees.
func NewJoin(method cost.JoinMethod, left, right *Node, outPages float64, order Order) *Node {
	return &Node{
		Kind:     KindJoin,
		Method:   method,
		Left:     left,
		Right:    right,
		OutPages: outPages,
		OutOrder: order,
	}
}

// NewSort builds an explicit sort enforcer above child.
func NewSort(child *Node, order Order) *Node {
	return &Node{
		Kind:     KindSort,
		Child:    child,
		OutPages: child.OutPages,
		OutOrder: order,
	}
}

// Validate checks structural sanity: children present per kind, no nils.
func (n *Node) Validate() error {
	if n == nil {
		return ErrNilNode
	}
	switch n.Kind {
	case KindScan:
		if n.Table == "" {
			return fmt.Errorf("%w: scan without table", ErrShape)
		}
		if n.Left != nil || n.Right != nil || n.Child != nil {
			return fmt.Errorf("%w: scan with children", ErrShape)
		}
	case KindJoin:
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("%w: join missing input", ErrShape)
		}
		if err := n.Left.Validate(); err != nil {
			return err
		}
		return n.Right.Validate()
	case KindSort:
		if n.Child == nil {
			return fmt.Errorf("%w: sort without child", ErrShape)
		}
		return n.Child.Validate()
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrShape, n.Kind)
	}
	return nil
}

// IsLeftDeep reports whether every join's right input is a scan (the
// System R plan space the paper works in). Sort enforcers are transparent.
func (n *Node) IsLeftDeep() bool {
	switch n.Kind {
	case KindScan:
		return true
	case KindSort:
		return n.Child.IsLeftDeep()
	case KindJoin:
		r := n.Right
		for r.Kind == KindSort {
			r = r.Child
		}
		if r.Kind != KindScan {
			return false
		}
		return n.Left.IsLeftDeep()
	default:
		return false
	}
}

// Relations returns the base tables referenced, left to right.
func (n *Node) Relations() []string {
	var out []string
	n.Walk(func(m *Node) {
		if m.Kind == KindScan {
			out = append(out, m.Table)
		}
	})
	return out
}

// Walk visits the tree in post-order (children before parents).
func (n *Node) Walk(f func(*Node)) {
	if n == nil {
		return
	}
	n.Left.Walk(f)
	n.Right.Walk(f)
	n.Child.Walk(f)
	f(n)
}

// Joins counts the join nodes in the tree.
func (n *Node) Joins() int {
	c := 0
	n.Walk(func(m *Node) {
		if m.Kind == KindJoin {
			c++
		}
	})
	return c
}

// Phases returns the number of execution phases per the paper's model:
// one per join (n-1 for n relations), with a minimum of one phase so
// single-table plans still consume a memory value.
func (n *Node) Phases() int {
	j := n.Joins()
	if j == 0 {
		return 1
	}
	return j
}

// phaseOf returns the phase index of a join over k relations in a
// left-deep plan: joins execute bottom-up, so the join whose subtree
// spans k relations runs in phase k-2.
func phaseOf(relations int) int { return relations - 2 }

// CostAt returns C(P, v) for a constant memory value v — the classical
// single-point cost. Equivalent to CostSeq with a constant sequence.
func (n *Node) CostAt(mem float64) float64 {
	return n.CostAtModel(cost.ModelPaper, mem)
}

// CostAtModel is CostAt under the selected cost model.
func (n *Node) CostAtModel(model cost.Model, mem float64) float64 {
	c, err := n.CostSeqModel(model, constSeq{mem})
	if err != nil {
		// constSeq never runs short; structural errors surface as NaN.
		return math.NaN()
	}
	return c
}

// MemSeq supplies the memory available in each execution phase.
type MemSeq interface {
	MemAt(phase int) (float64, error)
}

type constSeq struct{ m float64 }

func (c constSeq) MemAt(int) (float64, error) { return c.m, nil }

// ConstMem returns a MemSeq with the same memory in every phase.
func ConstMem(m float64) MemSeq { return constSeq{m} }

// SliceMem adapts a concrete per-phase memory slice.
type SliceMem []float64

// MemAt returns the memory for the given phase.
func (s SliceMem) MemAt(phase int) (float64, error) {
	if phase < 0 || phase >= len(s) {
		return 0, fmt.Errorf("%w: phase %d of %d", ErrPhaseMem, phase, len(s))
	}
	return s[phase], nil
}

// CostSeq returns C(P, v) where v is a per-phase memory sequence
// (Section 3.5): the sum of the CostPhases breakdown.
func (n *Node) CostSeq(mem MemSeq) (float64, error) {
	return n.CostSeqModel(cost.ModelPaper, mem)
}

// CostSeqModel is CostSeq under the selected cost model.
func (n *Node) CostSeqModel(model cost.Model, mem MemSeq) (float64, error) {
	phases, err := n.CostPhasesModel(model, mem)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, c := range phases {
		total += c
	}
	return total, nil
}

// CostPhases returns the per-phase breakdown of C(P, v): element i is the
// I/O the model attributes to execution phase i, with len equal to
// Phases(). Attribution mirrors the engine's physical conventions so the
// slice is comparable entry-by-entry against ExecResult.PhaseIO:
//
//   - a join over k relations is charged in phase k-2, a sort enforcer in
//     the phase of the subtree it completes;
//   - materialized access paths (index scans, filtered heap scans) are
//     charged in phase 0, where the engine books them;
//   - an unfiltered heap scan is free — the consuming join's formula
//     already counts reading both inputs — except when a sort consumes it
//     directly, in which case the sort pays the base read in its phase.
func (n *Node) CostPhases(mem MemSeq) ([]float64, error) {
	return n.CostPhasesModel(cost.ModelPaper, mem)
}

// CostPhasesModel is CostPhases under the selected cost model: joins are
// charged with cost.JoinIOModel, so ModelEngine replaces the paper's
// three-case grace-hash multiplier with the engine's exact recursion.
// Sort and scan charges are identical under both models.
func (n *Node) CostPhasesModel(model cost.Model, mem MemSeq) ([]float64, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, n.Phases())
	var rec func(m *Node) (relCount int, err error)
	rec = func(m *Node) (int, error) {
		switch m.Kind {
		case KindScan:
			if m.Materialized() {
				out[0] += m.AccessIO()
			}
			return 1, nil
		case KindSort:
			k, err := rec(m.Child)
			if err != nil {
				return 0, err
			}
			phase := 0
			if k >= 2 {
				phase = phaseOf(k)
			}
			mv, err := mem.MemAt(phase)
			if err != nil {
				return 0, err
			}
			if m.Child.Kind == KindScan && !m.Child.Materialized() {
				// The sort itself reads the unmaterialized base table.
				out[phase] += m.Child.AccessIO()
			}
			out[phase] += cost.SortIO(m.Child.OutPages, mv)
			return k, nil
		case KindJoin:
			kl, err := rec(m.Left)
			if err != nil {
				return 0, err
			}
			kr, err := rec(m.Right)
			if err != nil {
				return 0, err
			}
			k := kl + kr
			mv, err := mem.MemAt(phaseOf(k))
			if err != nil {
				return 0, err
			}
			out[phaseOf(k)] += cost.JoinIOModel(model, m.Method, m.Left.OutPages, m.Right.OutPages, mv)
			return k, nil
		default:
			return 0, fmt.Errorf("%w: kind %d", ErrShape, m.Kind)
		}
	}
	if _, err := rec(n); err != nil {
		return nil, err
	}
	return out, nil
}

// Materialized reports whether a scan produces a new temporary relation
// the engine pays to build — an index scan or a filtered heap scan. An
// unfiltered heap scan is handed to its consumer as-is: the consuming
// operator's own formula pays the base read, so charging the scan too
// would double-count it.
func (n *Node) Materialized() bool {
	return n.Kind == KindScan && (n.Access == AccessIndex || n.Pred != nil)
}

// AccessIO returns the access cost recorded on a scan leaf. Index scans
// store their full cost in IO at construction time by the optimizer; heap
// scans cost their base pages. A scan with explicit IO annotation uses it.
func (n *Node) AccessIO() float64 {
	if n.IO > 0 {
		return n.IO
	}
	return cost.ScanIO(n.BasePages())
}

// BasePages returns the pages read by a heap scan: output pages divided by
// the filter selectivity (filters reduce output, not input).
func (n *Node) BasePages() float64 {
	if n.Sel > 0 && n.Sel < 1 {
		return n.OutPages / n.Sel
	}
	return n.OutPages
}

// Signature returns a canonical, order-sensitive description of the plan's
// physical structure, used for deduplication across optimizer runs.
func (n *Node) Signature() string {
	var b strings.Builder
	var rec func(m *Node)
	rec = func(m *Node) {
		switch m.Kind {
		case KindScan:
			b.WriteString(m.Table)
			if m.Access == AccessIndex {
				b.WriteString("[ix:")
				b.WriteString(m.Index)
				b.WriteString("]")
			}
		case KindJoin:
			b.WriteString("(")
			rec(m.Left)
			b.WriteString(" ")
			b.WriteString(m.Method.String())
			b.WriteString(" ")
			rec(m.Right)
			b.WriteString(")")
		case KindSort:
			b.WriteString("sort<")
			b.WriteString(m.OutOrder.String())
			b.WriteString(">(")
			rec(m.Child)
			b.WriteString(")")
		}
	}
	rec(n)
	return b.String()
}

// String renders an indented operator tree.
func (n *Node) String() string {
	var b strings.Builder
	var rec func(m *Node, depth int)
	rec = func(m *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		switch m.Kind {
		case KindScan:
			fmt.Fprintf(&b, "Scan(%s, %s", m.Table, m.Access)
			if m.Access == AccessIndex {
				fmt.Fprintf(&b, ":%s", m.Index)
			}
			fmt.Fprintf(&b, ") out=%.4g pages", m.OutPages)
		case KindJoin:
			fmt.Fprintf(&b, "Join[%s] out=%.4g pages order=%s", m.Method, m.OutPages, m.OutOrder)
		case KindSort:
			fmt.Fprintf(&b, "Sort[%s] out=%.4g pages", m.OutOrder, m.OutPages)
		}
		b.WriteByte('\n')
		if m.Left != nil {
			rec(m.Left, depth+1)
		}
		if m.Right != nil {
			rec(m.Right, depth+1)
		}
		if m.Child != nil {
			rec(m.Child, depth+1)
		}
	}
	rec(n, 0)
	return strings.TrimRight(b.String(), "\n")
}

// Clone returns a deep copy.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := *n
	if n.Pred != nil {
		p := *n.Pred
		out.Pred = &p
	}
	out.Left = n.Left.Clone()
	out.Right = n.Right.Clone()
	out.Child = n.Child.Clone()
	return &out
}
