package plan

import (
	"errors"
	"math"
	"strings"
	"testing"

	"lecopt/internal/cost"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

// twoWay builds Join(method, Scan(a), Scan(b)) with given page sizes.
func twoWay(method cost.JoinMethod, aPages, bPages, outPages float64) *Node {
	a := NewScan("a", AccessHeap, "", 1, aPages)
	b := NewScan("b", AccessHeap, "", 1, bPages)
	var ord Order
	if method.OrdersOutput() {
		ord = Order{Table: "a", Column: "k"}
	}
	return NewJoin(method, a, b, outPages, ord)
}

func TestValidate(t *testing.T) {
	var nilNode *Node
	if err := nilNode.Validate(); !errors.Is(err, ErrNilNode) {
		t.Fatal("nil should fail")
	}
	if err := (&Node{Kind: KindScan}).Validate(); !errors.Is(err, ErrShape) {
		t.Fatal("scan without table should fail")
	}
	bad := NewScan("a", AccessHeap, "", 1, 10)
	bad.Child = NewScan("b", AccessHeap, "", 1, 10)
	if err := bad.Validate(); !errors.Is(err, ErrShape) {
		t.Fatal("scan with child should fail")
	}
	if err := (&Node{Kind: KindJoin}).Validate(); !errors.Is(err, ErrShape) {
		t.Fatal("join without inputs should fail")
	}
	if err := (&Node{Kind: KindSort}).Validate(); !errors.Is(err, ErrShape) {
		t.Fatal("sort without child should fail")
	}
	if err := (&Node{Kind: Kind(9), Table: "x"}).Validate(); !errors.Is(err, ErrShape) {
		t.Fatal("unknown kind should fail")
	}
	good := twoWay(cost.SortMerge, 100, 40, 10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIsLeftDeep(t *testing.T) {
	j2 := twoWay(cost.GraceHash, 100, 40, 10)
	if !j2.IsLeftDeep() {
		t.Fatal("two-way join is left-deep")
	}
	c := NewScan("c", AccessHeap, "", 1, 5)
	j3 := NewJoin(cost.PageNL, j2, c, 3, Order{})
	if !j3.IsLeftDeep() {
		t.Fatal("left-deep three-way")
	}
	bushy := NewJoin(cost.PageNL, j2, twoWay(cost.PageNL, 7, 8, 2), 1, Order{})
	if bushy.IsLeftDeep() {
		t.Fatal("bushy plan misclassified")
	}
	sorted := NewSort(j3, Order{"a", "k"})
	if !sorted.IsLeftDeep() {
		t.Fatal("sort on top preserves left-deep")
	}
	// Sort wrapping the right scan input stays left-deep.
	j := NewJoin(cost.SortMerge, j2, NewSort(c, Order{"c", "k"}), 2, Order{})
	if !j.IsLeftDeep() {
		t.Fatal("sorted right scan input is still left-deep")
	}
}

func TestRelationsJoinsPhases(t *testing.T) {
	j2 := twoWay(cost.SortMerge, 100, 40, 10)
	c := NewScan("c", AccessHeap, "", 1, 5)
	j3 := NewJoin(cost.GraceHash, j2, c, 3, Order{})
	rel := j3.Relations()
	if len(rel) != 3 || rel[0] != "a" || rel[1] != "b" || rel[2] != "c" {
		t.Fatalf("Relations = %v", rel)
	}
	if j3.Joins() != 2 || j3.Phases() != 2 {
		t.Fatalf("Joins=%d Phases=%d", j3.Joins(), j3.Phases())
	}
	scan := NewScan("a", AccessHeap, "", 1, 10)
	if scan.Phases() != 1 {
		t.Fatal("bare scan is one phase")
	}
}

func TestCostAtTwoWay(t *testing.T) {
	// Unfiltered heap scans are free — the sort-merge join's 2(|A|+|B|)
	// already reads both inputs (the paper's Example 1.1 convention).
	p := twoWay(cost.SortMerge, 100, 40, 10)
	m := 50.0 // > √100 → 2 passes
	want := 2 * (100 + 40)
	approx(t, p.CostAt(m), float64(want), 1e-9, "two-way cost")
}

func TestCostAtRespectsFilterSelectivity(t *testing.T) {
	// Unfiltered heap handoff: no separate charge (consumer pays).
	s := NewScan("a", AccessHeap, "", 0.1, 10)
	approx(t, s.BasePages(), 100, 1e-9, "base pages")
	if s.Materialized() {
		t.Fatal("heap scan without compiled predicate is a handoff")
	}
	approx(t, s.CostAt(1000), 0, 1e-9, "handoff scan is charged by its consumer")
	// A compiled predicate materializes the filtered pages: every base
	// page is read during the scan.
	f := NewScan("a", AccessHeap, "", 0.1, 10)
	f.Pred = &ScanPred{Column: "k", Hi: 3, HasHi: true}
	if !f.Materialized() {
		t.Fatal("filtered heap scan materializes")
	}
	approx(t, f.CostAt(1000), 100, 1e-9, "filtered scan reads base pages")
	// Index scan with explicit IO annotation uses it.
	ix := NewScan("a", AccessIndex, "ix_a", 0.1, 10)
	ix.IO = 12
	if !ix.Materialized() {
		t.Fatal("index scan materializes")
	}
	approx(t, ix.CostAt(1000), 12, 1e-9, "index scan uses annotated IO")
}

func TestCostSeqPhases(t *testing.T) {
	// ((a ⋈SM b) ⋈GH c): phase 0 = SM join + scans a,b; phase 1 = GH join + scan c.
	j2 := twoWay(cost.SortMerge, 100, 40, 20)
	c := NewScan("c", AccessHeap, "", 1, 30)
	j3 := NewJoin(cost.GraceHash, j2, c, 5, Order{})

	// Memory 50 in phase 0 (SM: √100=10 < 50 → 2(140)=280)
	// memory 3 in phase 1 (GH: min(20,30)=20, ∛20≈2.71 < 3 ≤ √20≈4.47 → 4·50=200).
	// Heap scans are handoffs: the joins pay all input reads.
	got, err := j3.CostSeq(SliceMem{50, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 280.0 + 200
	approx(t, got, want, 1e-9, "per-phase costing")

	// The breakdown attributes each join to its own phase.
	ph, err := j3.CostPhases(SliceMem{50, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ph) != 2 {
		t.Fatalf("CostPhases len = %d, want 2", len(ph))
	}
	approx(t, ph[0], 280, 1e-9, "phase 0 = SM join")
	approx(t, ph[1], 200, 1e-9, "phase 1 = GH join")

	// Same per-phase memories but swapped: the cost must differ because
	// phases see different formulas.
	got2, err := j3.CostSeq(SliceMem{3, 50})
	if err != nil {
		t.Fatal(err)
	}
	if got2 == got {
		t.Fatal("phase assignment must matter")
	}
	// SM at 3 (∛100≈4.64 ≥ 3 → 6·140=840), GH at 50 (≥ 20+2 → one pass, 50).
	approx(t, got2, 840+50, 1e-9, "swapped phases")

	// Short memory sequence errors out.
	if _, err := j3.CostSeq(SliceMem{50}); !errors.Is(err, ErrPhaseMem) {
		t.Fatal("short sequence should fail")
	}
}

func TestCostSeqSortEnforcer(t *testing.T) {
	j2 := twoWay(cost.GraceHash, 100, 40, 30)
	root := NewSort(j2, Order{"a", "k"})
	// Phase 0 memory 20: GH (√40≈6.3 < 20 → 2·140=280), sort 30 pages
	// (30 > 20, √30≈5.5 < 20 → 2·30=60). Scans are join-paid handoffs.
	got, err := root.CostSeq(SliceMem{20})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 280+60, 1e-9, "enforcer sort costed in its phase")
	// Sort over a bare scan uses phase 0, and pays the base read itself:
	// no join ever consumes the handoff.
	s := NewSort(NewScan("a", AccessHeap, "", 1, 100), Order{"a", "k"})
	got, err = s.CostSeq(SliceMem{8})
	if err != nil {
		t.Fatal(err)
	}
	// scan 100 (read by the sort) + sort 100 at mem 8 (∛100≈4.6 < 8 ≤ 10 → 4·100).
	approx(t, got, 100+400, 1e-9, "sort over scan")
}

func TestCostAtInvalidPlanIsNaN(t *testing.T) {
	bad := &Node{Kind: KindJoin}
	if !math.IsNaN(bad.CostAt(10)) {
		t.Fatal("invalid plan should cost NaN")
	}
}

func TestSignatureAndString(t *testing.T) {
	j2 := twoWay(cost.SortMerge, 100, 40, 10)
	sig := j2.Signature()
	if sig != "(a sort-merge b)" {
		t.Fatalf("Signature = %q", sig)
	}
	c := NewScan("c", AccessIndex, "ix_c", 0.5, 5)
	j3 := NewJoin(cost.GraceHash, j2, c, 3, Order{})
	root := NewSort(j3, Order{"a", "k"})
	sig = root.Signature()
	want := "sort<a.k>(((a sort-merge b) grace-hash c[ix:ix_c]))"
	if sig != want {
		t.Fatalf("Signature = %q, want %q", sig, want)
	}
	s := root.String()
	for _, frag := range []string{"Sort[a.k]", "Join[grace-hash]", "Scan(c, index:ix_c)", "Scan(a, heap)"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String missing %q in:\n%s", frag, s)
		}
	}
}

func TestOrderProps(t *testing.T) {
	var none Order
	if !none.IsNone() || none.String() != "none" {
		t.Fatal("zero order")
	}
	o := Order{"a", "k"}
	if o.IsNone() || o.String() != "a.k" {
		t.Fatal("order string")
	}
}

func TestCloneIsDeep(t *testing.T) {
	j2 := twoWay(cost.SortMerge, 100, 40, 10)
	c := j2.Clone()
	c.Left.Table = "zz"
	c.Method = cost.PageNL
	if j2.Left.Table != "a" || j2.Method != cost.SortMerge {
		t.Fatal("clone aliased original")
	}
	var nilNode *Node
	if nilNode.Clone() != nil {
		t.Fatal("nil clone")
	}
}

func TestKindAndAccessStrings(t *testing.T) {
	if KindScan.String() != "scan" || KindJoin.String() != "join" || KindSort.String() != "sort" {
		t.Fatal("kind strings")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind string")
	}
	if AccessHeap.String() != "heap" || AccessIndex.String() != "index" {
		t.Fatal("access strings")
	}
}

func TestConstMem(t *testing.T) {
	m := ConstMem(42)
	v, err := m.MemAt(17)
	if err != nil || v != 42 {
		t.Fatal("ConstMem wrong")
	}
}
