package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"lecopt/internal/cost"
	"lecopt/internal/storage"
)

// loadPair generates two relations joined on "k" and returns the engine.
func loadPair(t *testing.T, seed int64, pagesA, pagesB, tpp int, keyRange int64) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := storage.NewStore()
	a, err := storage.Generate(storage.GenSpec{Name: "A", Pages: pagesA, TuplesPerPage: tpp, KeyRange: keyRange}, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := storage.Generate(storage.GenSpec{Name: "B", Pages: pagesB, TuplesPerPage: tpp, KeyRange: keyRange}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(b); err != nil {
		t.Fatal(err)
	}
	return New(s)
}

// refJoin is the in-memory reference equi-join, as sorted key pairs.
func refJoin(t *testing.T, e *Engine) []string {
	t.Helper()
	a, _ := e.Store().Get("A")
	b, _ := e.Store().Get("B")
	var out []string
	for _, at := range a.AllTuples() {
		for _, bt := range b.AllTuples() {
			if at[0] == bt[0] {
				out = append(out, fmt.Sprintf("%d", at[0]))
			}
		}
	}
	sort.Strings(out)
	return out
}

func resultKeys(t *testing.T, r *storage.Relation) []string {
	t.Helper()
	var out []string
	for _, tp := range r.AllTuples() {
		out = append(out, fmt.Sprintf("%d", tp[0]))
	}
	sort.Strings(out)
	return out
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestJoinCorrectnessAllMethods: every join algorithm produces exactly the
// reference join, across memory budgets spanning all formula regimes.
func TestJoinCorrectnessAllMethods(t *testing.T) {
	for _, mem := range []int{3, 5, 9, 30, 200} {
		e := loadPair(t, 42, 12, 7, 8, 60)
		want := refJoin(t, e)
		for _, m := range cost.Methods {
			res, _, err := e.Join(JoinSpec{Method: m, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}, mem)
			if err != nil {
				t.Fatalf("mem=%d %v: %v", mem, m, err)
			}
			got := resultKeys(t, res)
			if !equalSlices(got, want) {
				t.Fatalf("mem=%d %v: %d rows, want %d", mem, m, len(got), len(want))
			}
			e.Store().Drop(res.Name)
		}
	}
}

// TestJoinManyToMany: heavy key duplication exercises the group-cross
// product logic of sort-merge and the bucket chains of hash join.
func TestJoinManyToMany(t *testing.T) {
	e := loadPair(t, 7, 6, 6, 10, 3) // keyRange 3 → massive duplication
	want := refJoin(t, e)
	if len(want) < 100 {
		t.Fatalf("test needs many matches, got %d", len(want))
	}
	for _, m := range cost.Methods {
		res, _, err := e.Join(JoinSpec{Method: m, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}, 4)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := resultKeys(t, res); !equalSlices(got, want) {
			t.Fatalf("%v: %d rows, want %d", m, len(got), len(want))
		}
		e.Store().Drop(res.Name)
	}
}

func TestJoinValidation(t *testing.T) {
	e := loadPair(t, 1, 2, 2, 4, 10)
	spec := JoinSpec{Method: cost.SortMerge, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}
	if _, _, err := e.Join(spec, 2); !errors.Is(err, ErrBadMemory) {
		t.Fatal("tiny memory should fail")
	}
	bad := spec
	bad.Outer = "zz"
	if _, _, err := e.Join(bad, 10); err == nil {
		t.Fatal("missing outer")
	}
	bad = spec
	bad.InnerCol = "zz"
	if _, _, err := e.Join(bad, 10); err == nil {
		t.Fatal("missing column")
	}
	bad = spec
	bad.Method = cost.JoinMethod(99)
	if _, _, err := e.Join(bad, 10); !errors.Is(err, ErrBadSpec) {
		t.Fatal("unknown method")
	}
}

// TestPageNLIOShape: measured I/O reproduces the formula's two regimes —
// inner cached when it fits (|A|+|B|) versus rescan per outer page.
func TestPageNLIOShape(t *testing.T) {
	e := loadPair(t, 11, 20, 6, 4, 1000)
	spec := JoinSpec{Method: cost.PageNL, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}

	_, fits, err := e.Join(spec, 10) // inner 6 pages + outer frame + slack
	if err != nil {
		t.Fatal(err)
	}
	if got := fits.IO(); got != 20+6 {
		t.Fatalf("fitting inner: IO=%d want 26", got)
	}
	_, thrash, err := e.Join(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Formula regime |A| + |A|·|B| = 20 + 120 = 140.
	if got := thrash.IO(); got != 20+20*6 {
		t.Fatalf("thrashing inner: IO=%d want 140", got)
	}
}

// TestBlockNLIOShape: measured I/O equals |A| + ⌈|A|/(M-2)⌉·|B| exactly.
func TestBlockNLIOShape(t *testing.T) {
	e := loadPair(t, 13, 20, 8, 4, 1000)
	spec := JoinSpec{Method: cost.BlockNL, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}
	for _, mem := range []int{4, 6, 12, 22} {
		_, st, err := e.Join(spec, mem)
		if err != nil {
			t.Fatal(err)
		}
		blocks := (20 + mem - 3) / (mem - 2)
		want := int64(20 + blocks*8)
		if got := st.IO(); got != want {
			t.Fatalf("mem=%d: IO=%d want %d", mem, got, want)
		}
	}
}

// TestSortMergeIOMonotoneSteps: measured sort-merge I/O is non-increasing
// in memory and strictly cheaper above the √L threshold than far below it.
func TestSortMergeIOMonotoneSteps(t *testing.T) {
	e := loadPair(t, 17, 64, 32, 8, 5000) // L = 64 pages, √L = 8, ∛L = 4
	spec := JoinSpec{Method: cost.SortMerge, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}
	mems := []int{3, 4, 6, 9, 16, 70}
	prev := int64(1 << 60)
	ios := map[int]int64{}
	for _, mem := range mems {
		_, st, err := e.Join(spec, mem)
		if err != nil {
			t.Fatal(err)
		}
		if st.IO() > prev {
			t.Fatalf("I/O increased with memory at mem=%d: %d > %d", mem, st.IO(), prev)
		}
		prev = st.IO()
		ios[mem] = st.IO()
	}
	if !(ios[9] < ios[3]) {
		t.Fatalf("two-pass regime (mem 9: %d) should beat multi-pass (mem 3: %d)", ios[9], ios[3])
	}
	// Good regime: runs written+read once → ~3(|A|+|B|) = 288; allow slack.
	if ios[16] > 3*(64+32)+20 {
		t.Fatalf("good-regime sort-merge I/O too high: %d", ios[16])
	}
}

// TestGraceHashIOKeyedToSmaller: grace hash goes multi-pass only when
// memory falls below ≈√S of the SMALLER relation — the asymmetry versus
// sort-merge that drives Example 1.1.
func TestGraceHashIOKeyedToSmaller(t *testing.T) {
	// A = 64 pages, B = 9 pages: √S = 3.
	e := loadPair(t, 19, 64, 9, 8, 5000)
	spec := JoinSpec{Method: cost.GraceHash, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}

	_, direct, err := e.Join(spec, 12) // B fits: in-memory hash join
	if err != nil {
		t.Fatal(err)
	}
	if direct.IO() != 64+9 {
		t.Fatalf("build-side fits: IO=%d want 73", direct.IO())
	}
	_, onePass, err := e.Join(spec, 6) // partition once: 3(|A|+|B|)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := int64(3*(64+9)-10), int64(3*(64+9)+25)
	if direct.IO() >= onePass.IO() && false {
		t.Fatal("unreachable")
	}
	if onePass.IO() < lo || onePass.IO() > hi {
		t.Fatalf("one-pass grace hash IO=%d, want ≈ %d", onePass.IO(), 3*(64+9))
	}
	// Compare with sort-merge at the same memory: SM is keyed to the
	// LARGER input (64 pages, √L = 8 > 6), so it needs extra merge passes
	// and must cost strictly more.
	_, sm, err := e.Join(JoinSpec{Method: cost.SortMerge, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if sm.IO() <= onePass.IO() {
		t.Fatalf("at mem=6, grace hash (%d) should beat sort-merge (%d): threshold asymmetry", onePass.IO(), sm.IO())
	}
}

// TestSortRelationCorrectAndCharged: external sort is correct and its I/O
// steps with memory.
func TestSortRelationCorrectAndCharged(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := storage.NewStore()
	r, err := storage.Generate(storage.GenSpec{Name: "R", Pages: 27, TuplesPerPage: 6, KeyRange: 400}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(r); err != nil {
		t.Fatal(err)
	}
	e := New(s)
	prev := int64(1 << 60)
	for _, mem := range []int{3, 6, 30} {
		sorted, st, err := e.SortRelation("R", "k", mem)
		if err != nil {
			t.Fatal(err)
		}
		all := sorted.AllTuples()
		if len(all) != r.NumTuples() {
			t.Fatalf("mem=%d: lost tuples: %d vs %d", mem, len(all), r.NumTuples())
		}
		for i := 1; i < len(all); i++ {
			if all[i][0] < all[i-1][0] {
				t.Fatalf("mem=%d: output not sorted", mem)
			}
		}
		if st.IO() > prev {
			t.Fatalf("mem=%d: sort I/O increased: %d > %d", mem, st.IO(), prev)
		}
		prev = st.IO()
		e.Store().Drop(sorted.Name)
	}
	if _, _, err := e.SortRelation("R", "k", 2); !errors.Is(err, ErrBadMemory) {
		t.Fatal("tiny memory")
	}
	if _, _, err := e.SortRelation("zz", "k", 5); err == nil {
		t.Fatal("missing relation")
	}
	if _, _, err := e.SortRelation("R", "zz", 5); err == nil {
		t.Fatal("missing column")
	}
}

func TestScan(t *testing.T) {
	e := loadPair(t, 29, 5, 3, 4, 100)
	n, st, err := e.Scan("A", 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 || st.IO() != 5 {
		t.Fatalf("scan: n=%d io=%d", n, st.IO())
	}
	if _, _, err := e.Scan("zz", 4); err == nil {
		t.Fatal("missing relation")
	}
}

// TestTempCleanup: joins must not leak temp run/partition relations.
func TestTempCleanup(t *testing.T) {
	e := loadPair(t, 31, 16, 8, 4, 500)
	before := len(e.Store().Names())
	for _, m := range []cost.JoinMethod{cost.SortMerge, cost.GraceHash} {
		res, _, err := e.Join(JoinSpec{Method: m, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}, 4)
		if err != nil {
			t.Fatal(err)
		}
		e.Store().Drop(res.Name)
	}
	after := len(e.Store().Names())
	if after != before {
		t.Fatalf("temp leak: %d relations before, %d after: %v", before, after, e.Store().Names())
	}
}

// TestGraceHashDegenerateKeys: a single hot key can never be split by
// recursive partitioning; the join must fall back to block nested loop at
// the recursion cap and still produce the exact result.
func TestGraceHashDegenerateKeys(t *testing.T) {
	e := loadPair(t, 37, 10, 8, 6, 1) // keyRange 1: every tuple matches
	want := refJoin(t, e)
	if len(want) != 10*6*8*6 {
		t.Fatalf("expected full cross product, got %d", len(want))
	}
	res, st, err := e.Join(JoinSpec{Method: cost.GraceHash, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultKeys(t, res); !equalSlices(got, want) {
		t.Fatalf("degenerate grace hash: %d rows, want %d", len(got), len(want))
	}
	if st.IO() == 0 {
		t.Fatal("deep recursion must do I/O")
	}
	e.Store().Drop(res.Name)
	// No temp leak even through the recursion fallback.
	if n := len(e.Store().Names()); n != 2 {
		t.Fatalf("temp leak after degenerate join: %v", e.Store().Names())
	}
}

// TestSortMergeSkewedRunCounts: one side produces many runs, the other
// one; the asymmetric pre-merge path must terminate and stay correct.
func TestSortMergeSkewedRunCounts(t *testing.T) {
	e := loadPair(t, 41, 60, 2, 4, 300)
	want := refJoin(t, e)
	res, _, err := e.Join(JoinSpec{Method: cost.SortMerge, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultKeys(t, res); !equalSlices(got, want) {
		t.Fatalf("skewed sort-merge: %d rows, want %d", len(got), len(want))
	}
}

// TestJoinEmptyMatchSet: disjoint key spaces produce zero rows without
// errors for every method.
func TestJoinEmptyMatchSet(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := storage.NewStore()
	a, err := storage.Generate(storage.GenSpec{Name: "A", Pages: 4, TuplesPerPage: 4, KeyRange: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(a); err != nil {
		t.Fatal(err)
	}
	// Shift B's keys far away from A's.
	b, err := storage.NewRelation("B", []string{"k"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 16; i++ {
		if err := b.Append(storage.Tuple{1000 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Add(b); err != nil {
		t.Fatal(err)
	}
	e := New(s)
	for _, m := range cost.Methods {
		res, _, err := e.Join(JoinSpec{Method: m, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}, 5)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.NumTuples() != 0 {
			t.Fatalf("%v: expected empty result, got %d", m, res.NumTuples())
		}
		e.Store().Drop(res.Name)
	}
}

// TestGraceHashRecursiveSplit: re-partitioning a bucket at the next
// recursion level must actually split it. The original hashKey fed the
// raw FNV sum to `% fanOut`: with a power-of-two fan-out (capacity-1 is
// 4, 8 or 16 at the common memory levels) changing the level salt only
// *rotated* the low bits, so every key of a bucket moved to the same
// next-level bucket, the bucket never shrank, recursion always ran to
// the level cap, and the block-nested-loop fallback executed at 3-page
// memory — realized I/O 10x the analytic charge, which inverted the
// LSC-vs-LEC ranking for low-memory tenants. With the avalanche
// finalizer the whole join must stay within the documented 4x band of
// the paper's formula and still produce the exact join result.
func TestGraceHashRecursiveSplit(t *testing.T) {
	// A=200, B=20 pages at mem=5: B needs two partitioning levels
	// (fan-out is 4 — the pathological power of two).
	e := loadPair(t, 23, 200, 20, 10, 97)
	want := refJoin(t, e)
	res, st, err := e.Join(JoinSpec{Method: cost.GraceHash, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultKeys(t, res); !equalSlices(got, want) {
		t.Fatalf("recursive grace hash: %d rows, want %d", len(got), len(want))
	}
	e.Store().Drop(res.Name)
	model := cost.JoinIO(cost.GraceHash, 200, 20, 5)
	ratio := float64(st.IO()) / model
	t.Logf("engine=%d model=%.0f ratio=%.2f", st.IO(), model, ratio)
	if ratio >= 4 {
		t.Fatalf("recursive grace hash I/O %d is %.1fx the analytic %g: bucket splitting is broken again",
			st.IO(), ratio, model)
	}
}
