package engine

import (
	"math"
	"math/rand"
	"testing"

	"lecopt/internal/cost"
	"lecopt/internal/plan"
	"lecopt/internal/storage"
)

// indexAgreementBand is the asserted engine-vs-cost.IndexScanIO band
// (worst symmetric ratio max(measured/model, model/measured)) over the
// selectivity sweep below. The formula charges height + ⌈sel·pages⌉
// (clustered) or height + ⌈sel·rows⌉ (unclustered); the engine
// additionally reads the covering leaf pages (the formula drops them) and
// an unclustered walk's streaming frames dedupe adjacent same-page
// fetches (the formula charges every row) — both bounded, shape-preserving
// discrepancies, observed well inside 2x.
const indexAgreementBand = 4.0

// loadIndexed builds a store with one table of the given pages (sorted
// when clustered) plus an index on "k", returning engine, index, pages,
// rows.
func loadIndexed(t *testing.T, seed int64, pages, tpp, fanout int, keyRange int64, clustered bool) (*Engine, *storage.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spec := storage.GenSpec{Name: "T", Pages: pages, TuplesPerPage: tpp, KeyRange: keyRange}
	var rel *storage.Relation
	var err error
	if clustered {
		rel, err = storage.GenerateSorted(spec, rng)
	} else {
		rel, err = storage.Generate(spec, rng)
	}
	if err != nil {
		t.Fatal(err)
	}
	s := storage.NewStore()
	if err := s.Add(rel); err != nil {
		t.Fatal(err)
	}
	ix, err := storage.BuildIndex(s, "ix_T_k", "T", "k", clustered, fanout)
	if err != nil {
		t.Fatal(err)
	}
	return New(s), ix
}

// TestIndexScanModelAgreement is the engine-vs-cost.IndexScanIO property:
// over clustered and unclustered indexes and a selectivity sweep from a
// single key to the full range, the measured walk I/O stays within the
// documented band of the analytic formula evaluated at the *realized*
// selectivity (isolating the operator from estimation error).
func TestIndexScanModelAgreement(t *testing.T) {
	const (
		pages    = 64
		tpp      = 6
		fanout   = 16
		keyRange = 600
	)
	for _, clustered := range []bool{true, false} {
		eng, ix := loadIndexed(t, 11, pages, tpp, fanout, keyRange, clustered)
		rel, _ := eng.Store().Get("T")
		rows := float64(rel.NumTuples())
		for _, hi := range []int64{0, 5, 29, 59, 179, 359, 599} {
			pred := &plan.ScanPred{Column: "k", Hi: float64(hi), HasHi: true}
			out, st, err := eng.IndexScan("ix_T_k", pred)
			if err != nil {
				t.Fatal(err)
			}
			matched := out.NumTuples()
			eng.Store().Drop(out.Name)
			selReal := float64(matched) / rows
			model := cost.IndexScanIO(float64(ix.Height()), selReal, float64(pages), rows, clustered)
			if matched == 0 {
				// Empty result: the walk still pays the root-to-leaf path.
				if st.IO() > int64(ix.Height())+1 {
					t.Fatalf("empty range cost %d I/Os", st.IO())
				}
				continue
			}
			measured := float64(st.IO())
			ratio := math.Max(measured/model, model/measured)
			t.Logf("clustered=%v hi=%d sel=%.3f measured=%v model=%v ratio=%.2f",
				clustered, hi, selReal, measured, model, ratio)
			if ratio > indexAgreementBand {
				t.Errorf("clustered=%v hi=%d: measured %v vs model %v, symmetric ratio %.2f > %v",
					clustered, hi, measured, model, ratio, indexAgreementBand)
			}
		}
	}
}

// TestIndexScanHeapCrossover: the measured costs cross over exactly as the
// formulas promise — a selective index walk beats the full heap scan, and
// at sel→1 an unclustered walk loses to it (one fetch per row vs one read
// per page), while a clustered walk stays within its leaf overhead of it.
func TestIndexScanHeapCrossover(t *testing.T) {
	const pages = 64
	for _, clustered := range []bool{true, false} {
		eng, _ := loadIndexed(t, 13, pages, 6, 16, 600, clustered)
		heapIO := int64(pages) // cost.ScanIO: one read per page

		selective := &plan.ScanPred{Column: "k", Hi: 20, HasHi: true}
		out, st, err := eng.IndexScan("ix_T_k", selective)
		if err != nil {
			t.Fatal(err)
		}
		eng.Store().Drop(out.Name)
		if st.IO() >= heapIO {
			t.Errorf("clustered=%v: selective index scan %d I/Os >= heap %d", clustered, st.IO(), heapIO)
		}

		out, st, err = eng.IndexScan("ix_T_k", nil) // full range
		if err != nil {
			t.Fatal(err)
		}
		eng.Store().Drop(out.Name)
		if clustered {
			if st.IO() > 2*heapIO {
				t.Errorf("clustered full walk %d I/Os vs heap %d: leaf overhead out of band", st.IO(), heapIO)
			}
		} else if st.IO() <= heapIO {
			t.Errorf("unclustered full walk %d I/Os should lose to heap %d", st.IO(), heapIO)
		}
	}
}

// TestIndexScanResidualPredicate: a predicate on a non-indexed column is
// applied residually during the walk — full-range I/O, filtered output.
func TestIndexScanResidualPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rel, err := storage.Generate(storage.GenSpec{
		Name: "T", Pages: 16, TuplesPerPage: 6, KeyRange: 50, PayloadCols: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := storage.NewStore()
	if err := s.Add(rel); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.BuildIndex(s, "ix_T_k", "T", "k", false, 8); err != nil {
		t.Fatal(err)
	}
	eng := New(s)
	// p0 is rng noise; filter on its median-ish magnitude.
	pred := &plan.ScanPred{Column: "p0", Hi: float64(1 << 62), HasHi: true}
	want := 0
	ci, _ := rel.ColIndex("p0")
	for _, tp := range rel.AllTuples() {
		if float64(tp[ci]) <= float64(int64(1)<<62) {
			want++
		}
	}
	out, _, err := eng.IndexScan("ix_T_k", pred)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumTuples() != want {
		t.Fatalf("residual filter kept %d rows, want %d", out.NumTuples(), want)
	}
	bad := &plan.ScanPred{Column: "zz"}
	if _, _, err := eng.IndexScan("ix_T_k", bad); err == nil {
		t.Fatal("unknown predicate column must fail")
	}
}

// TestPageNLResidencyPinsSmallerSide is the residency-fix regression: with
// the plan's outer smaller than the inner and memory in [outer+2,
// inner+2), the engine must realize the formula's cheap case |A|+|B| by
// pinning the small side resident — the historical behavior paid
// |A|+|A|·|B| here, a 9.35x band on the serving corpus.
func TestPageNLResidencyPinsSmallerSide(t *testing.T) {
	e := loadPair(t, 19, 6, 20, 4, 1000) // outer A=6 pages, inner B=20
	spec := JoinSpec{Method: cost.PageNL, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}

	// M = 10 ∈ [outer+2, inner+2) = [8, 22): small outer must go resident.
	_, st, err := e.Join(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.IO(), int64(6+20); got != want {
		t.Fatalf("residency window: IO=%d want %d (formula cheap case)", got, want)
	}
	if model := cost.JoinIO(cost.PageNL, 6, 20, 10); model != 6+20 {
		t.Fatalf("formula disagrees with itself: %v", model)
	}

	// Below the window nothing fits: the plan's outer drives and the
	// expensive case realizes the formula exactly.
	_, st, err = e.Join(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.IO(), int64(6+6*20); got != want {
		t.Fatalf("expensive case: IO=%d want %d", got, want)
	}
}

// TestNestedLoopPreservesOuterOrder: the optimizer's order propagation
// says nested loops preserve the *outer's* order (an index-ordered outer
// may satisfy ORDER BY with no sort above), so both nested-loop variants
// must emit in outer row order — including page-NL's pinned-small-outer
// path, whose driving scan is the inner. (Regression: the residency fix
// originally emitted in inner order when flipped.)
func TestNestedLoopPreservesOuterOrder(t *testing.T) {
	s := storage.NewStore()
	outerRel, err := storage.NewRelation("O", []string{"k"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{1, 2, 3, 4} {
		if err := outerRel.Append(storage.Tuple{k}); err != nil {
			t.Fatal(err)
		}
	}
	innerRel, err := storage.NewRelation("I", []string{"k"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Inner stored in descending order: inner-driven emission would
	// reverse the output.
	for k := int64(4); k >= 1; k-- {
		for rep := 0; rep < 3; rep++ {
			if err := innerRel.Append(storage.Tuple{k}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, r := range []*storage.Relation{outerRel, innerRel} {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	e := New(s)
	for _, method := range []cost.JoinMethod{cost.PageNL, cost.BlockNL} {
		for _, mem := range []int{10, 4} { // pinned window and tight memory
			res, st, err := e.Join(JoinSpec{
				Method: method, Outer: "O", Inner: "I", OuterCol: "k", InnerCol: "k",
			}, mem)
			if err != nil {
				t.Fatal(err)
			}
			all := res.AllTuples()
			if len(all) != 12 {
				t.Fatalf("%v mem=%d: %d rows, want 12", method, mem, len(all))
			}
			for i := 1; i < len(all); i++ {
				if all[i][0] < all[i-1][0] {
					t.Fatalf("%v mem=%d (IO %d): output not in outer order at row %d: %v after %v",
						method, mem, st.IO(), i, all[i][0], all[i-1][0])
				}
			}
			s.Drop(res.Name)
		}
	}
}

// TestExecutorIndexPlan: a full left-deep plan whose leaves are index
// scans executes end to end, produces exactly the filtered join result,
// and books the access-path I/O into phase 0.
func TestExecutorIndexPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := storage.NewStore()
	relA, err := storage.GenerateSorted(storage.GenSpec{Name: "A", Pages: 12, TuplesPerPage: 6, KeyRange: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	relB, err := storage.Generate(storage.GenSpec{Name: "B", Pages: 8, TuplesPerPage: 6, KeyRange: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*storage.Relation{relA, relB} {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := storage.BuildIndex(s, "ix_A_k", "A", "k", true, 12); err != nil {
		t.Fatal(err)
	}
	e := New(s)

	pred := &plan.ScanPred{Column: "k", Hi: 19, HasHi: true}
	scanA := plan.NewScan("A", plan.AccessIndex, "ix_A_k", 0.5, 6)
	scanA.Pred = pred
	scanB := plan.NewScan("B", plan.AccessHeap, "", 0.5, 4)
	scanB.Pred = pred
	p := plan.NewJoin(cost.GraceHash, scanA, scanB, 4, plan.Order{})

	res, err := e.ExecutePlan(p, []float64{9})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	byKey := map[int64]int{}
	for _, bt := range relB.AllTuples() {
		if bt[0] <= 19 {
			byKey[bt[0]]++
		}
	}
	for _, at := range relA.AllTuples() {
		if at[0] <= 19 {
			want += byKey[at[0]]
		}
	}
	if got := res.Output.NumTuples(); got != want {
		t.Fatalf("filtered index-plan join: %d rows, want %d", got, want)
	}
	if res.Stats.IO() != res.PhaseIO[0] {
		t.Fatalf("phase accounting leaks: total %d vs phase %v", res.Stats.IO(), res.PhaseIO)
	}
	// The single-table observed sizes must be reported for feedback.
	if res.JoinSizes["A"] <= 0 || res.JoinSizes["B"] <= 0 {
		t.Fatalf("scan sizes not observed: %v", res.JoinSizes)
	}
	s.Drop(res.Output.Name)
}
