// Package engine is a mini page-at-a-time execution engine: external merge
// sort, sort-merge join, Grace hash join, and nested-loop joins executing
// over the storage layer through an LRU buffer pool that counts physical
// page I/O.
//
// Its purpose in this reproduction is experiment E15: demonstrating that
// the paper's simplified three-case cost formulas (footnote 2, [Sha86])
// have the right *shape* — the same memory-threshold plateaus and
// crossovers — when compared against the measured I/O of real join
// algorithm implementations. Join results are materialized without I/O
// charge (pipelined-to-consumer convention, matching the formulas, which
// exclude result writes).
package engine

import (
	"errors"
	"fmt"
	"sort"

	"lecopt/internal/buffer"
	"lecopt/internal/cost"
	"lecopt/internal/storage"
)

// Errors.
var (
	ErrBadMemory = errors.New("engine: memory budget too small")
	ErrBadSpec   = errors.New("engine: invalid spec")
)

// Engine executes operators against one store.
type Engine struct {
	store *storage.Store
}

// New builds an engine over a store.
func New(store *storage.Store) *Engine { return &Engine{store: store} }

// Store exposes the underlying store (for loading inputs in callers).
func (e *Engine) Store() *storage.Store { return e.store }

// JoinSpec names an equi-join to execute.
type JoinSpec struct {
	Method   cost.JoinMethod
	Outer    string // relation names
	Inner    string
	OuterCol string
	InnerCol string
}

// JoinDetail reports execution-shape facts about one join beyond its I/O
// totals: how deep a grace-hash recursion went, and whether it hit the
// level cap and degenerated to block nested loop (with the I/O those
// fallbacks charged). Zero for every non-grace method.
type JoinDetail struct {
	// GraceLevels is the deepest partitioning level a grace-hash
	// recursion performed (0: the first call joined in memory).
	GraceLevels int
	// GraceFallbacks counts level-cap block-nested-loop fallbacks — a
	// degenerate key distribution, not a costing error.
	GraceFallbacks int
	// GraceFallbackIO is the physical I/O charged inside those fallbacks.
	GraceFallbackIO int64
}

// Join executes the spec with a fresh pool of mem pages, returning the
// materialized result and the physical I/O incurred. The result relation
// has the outer's columns followed by the inner's.
func (e *Engine) Join(spec JoinSpec, mem int) (*storage.Relation, buffer.Stats, error) {
	rel, st, _, err := e.JoinDetailed(spec, mem)
	return rel, st, err
}

// JoinDetailed is Join plus the execution-shape detail (grace-hash
// recursion depth and level-cap fallbacks).
func (e *Engine) JoinDetailed(spec JoinSpec, mem int) (*storage.Relation, buffer.Stats, JoinDetail, error) {
	var det JoinDetail
	if mem < 3 {
		return nil, buffer.Stats{}, det, fmt.Errorf("%w: %d pages", ErrBadMemory, mem)
	}
	outer, err := e.store.Get(spec.Outer)
	if err != nil {
		return nil, buffer.Stats{}, det, err
	}
	inner, err := e.store.Get(spec.Inner)
	if err != nil {
		return nil, buffer.Stats{}, det, err
	}
	oc, err := outer.ColIndex(spec.OuterCol)
	if err != nil {
		return nil, buffer.Stats{}, det, err
	}
	ic, err := inner.ColIndex(spec.InnerCol)
	if err != nil {
		return nil, buffer.Stats{}, det, err
	}
	pool, err := buffer.NewPool(e.store, mem)
	if err != nil {
		return nil, buffer.Stats{}, det, err
	}
	result, err := e.newResultRel(outer, inner)
	if err != nil {
		return nil, buffer.Stats{}, det, err
	}
	switch spec.Method {
	case cost.SortMerge:
		err = e.sortMergeJoin(pool, outer, inner, oc, ic, result)
	case cost.GraceHash:
		err = e.graceHashJoin(pool, outer, inner, oc, ic, result, 0, &det)
	case cost.PageNL:
		err = e.pageNLJoin(pool, outer, inner, oc, ic, result)
	case cost.BlockNL:
		err = e.blockNLJoin(pool, outer, inner, oc, ic, result)
	default:
		err = fmt.Errorf("%w: method %v", ErrBadSpec, spec.Method)
	}
	if err != nil {
		return nil, pool.Stats(), det, err
	}
	return result, pool.Stats(), det, nil
}

// newResultRel creates the output temp relation (outer cols ++ inner cols,
// disambiguated).
func (e *Engine) newResultRel(outer, inner *storage.Relation) (*storage.Relation, error) {
	cols := make([]string, 0, len(outer.Cols)+len(inner.Cols))
	for _, c := range outer.Cols {
		cols = append(cols, "o."+c)
	}
	for _, c := range inner.Cols {
		cols = append(cols, "i."+c)
	}
	tpp := outer.TuplesPerPage
	if inner.TuplesPerPage < tpp {
		tpp = inner.TuplesPerPage
	}
	return e.store.NewTemp("join", cols, tpp)
}

func emit(result *storage.Relation, o, i storage.Tuple) error {
	t := make(storage.Tuple, 0, len(o)+len(i))
	t = append(t, o...)
	t = append(t, i...)
	// Results bypass the pool: pipelined to the consumer, uncharged.
	return result.Append(t)
}

// --- nested loops ---------------------------------------------------------

// pageNLJoin: for each outer page, scan the inner. The pool's LRU makes an
// inner that fits in memory resident after the first pass; a larger inner
// floods the cache and pays the rescan product.
//
// The formula's cheap case keys on S = min(|A|,|B|): it assumes the
// *smaller* side can be made resident. An outer smaller than the inner
// with M ∈ [outer+2, inner+2) therefore takes the pinned path below — the
// residency fix for the historical miscalibration where that window paid
// a rescan product the model never charged (observed up to 9.35x
// measured/model on the serving agreement corpus; size feedback cannot
// help because both inputs are base tables with exact sizes). When
// nothing fits, the plan's outer drives, so the expensive case realizes
// the formula's |A| + |A|·|B| exactly. Output rows are in the outer's
// order and keep (outer, inner) column orientation on both paths.
func (e *Engine) pageNLJoin(pool *buffer.Pool, outer, inner *storage.Relation, oc, ic int, result *storage.Relation) error {
	if outer.NumPages() < inner.NumPages() && outer.NumPages()+2 <= pool.Capacity() {
		return e.pageNLJoinPinned(pool, outer, inner, oc, ic, result)
	}
	for op := 0; op < outer.NumPages(); op++ {
		opage, err := pool.Read(outer.Name, op)
		if err != nil {
			return err
		}
		for ip := 0; ip < inner.NumPages(); ip++ {
			ipage, err := pool.Read(inner.Name, ip)
			if err != nil {
				return err
			}
			for _, ot := range opage {
				for _, it := range ipage {
					if ot[oc] == it[ic] {
						if err := emit(result, ot, it); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// pageNLJoinPinned realizes the cheap case with a small resident outer:
// the outer is read once (it fits the pool by the caller's check), the
// inner streams once — |A|+|B| physical reads — and matches are buffered
// per outer tuple so the output keeps the *outer's* row order. The order
// matters for correctness, not just accounting: the optimizer's order
// propagation says nested loops preserve the outer's order (dp.go
// joinOutputOrder), and an index-ordered outer may be satisfying the
// query's ORDER BY with no sort enforcer above.
func (e *Engine) pageNLJoinPinned(pool *buffer.Pool, outer, inner *storage.Relation, oc, ic int, result *storage.Relation) error {
	var outerTuples []storage.Tuple
	byKey := make(map[int64][]int)
	for op := 0; op < outer.NumPages(); op++ {
		opage, err := pool.Read(outer.Name, op)
		if err != nil {
			return err
		}
		for _, ot := range opage {
			byKey[ot[oc]] = append(byKey[ot[oc]], len(outerTuples))
			outerTuples = append(outerTuples, ot)
		}
	}
	matches := make([][]storage.Tuple, len(outerTuples))
	for ip := 0; ip < inner.NumPages(); ip++ {
		ipage, err := pool.Read(inner.Name, ip)
		if err != nil {
			return err
		}
		for _, it := range ipage {
			for _, pos := range byKey[it[ic]] {
				matches[pos] = append(matches[pos], it)
			}
		}
	}
	for pos, ot := range outerTuples {
		for _, it := range matches[pos] {
			if err := emit(result, ot, it); err != nil {
				return err
			}
		}
	}
	return nil
}

// blockNLJoin reads blocks of M-2 outer pages, then scans the inner once
// per block: |A| + ⌈|A|/(M-2)⌉·|B| by construction. Matches are buffered
// per outer tuple within each block so the output keeps the outer's row
// order — the property the optimizer's order propagation assigns to
// nested loops (dp.go joinOutputOrder), which an index-ordered outer may
// be relying on to satisfy the query's ORDER BY without a sort.
func (e *Engine) blockNLJoin(pool *buffer.Pool, outer, inner *storage.Relation, oc, ic int, result *storage.Relation) error {
	blockPages := pool.Capacity() - 2
	if blockPages < 1 {
		blockPages = 1
	}
	for start := 0; start < outer.NumPages(); start += blockPages {
		end := start + blockPages
		if end > outer.NumPages() {
			end = outer.NumPages()
		}
		// Build an in-memory hash table over the block, keeping the
		// block's tuples in arrival order.
		var blockTuples []storage.Tuple
		byKey := make(map[int64][]int)
		for op := start; op < end; op++ {
			opage, err := pool.Read(outer.Name, op)
			if err != nil {
				return err
			}
			for _, ot := range opage {
				byKey[ot[oc]] = append(byKey[ot[oc]], len(blockTuples))
				blockTuples = append(blockTuples, ot)
			}
		}
		matches := make([][]storage.Tuple, len(blockTuples))
		for ip := 0; ip < inner.NumPages(); ip++ {
			ipage, err := pool.Read(inner.Name, ip)
			if err != nil {
				return err
			}
			for _, it := range ipage {
				for _, pos := range byKey[it[ic]] {
					matches[pos] = append(matches[pos], it)
				}
			}
		}
		for pos, ot := range blockTuples {
			for _, it := range matches[pos] {
				if err := emit(result, ot, it); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// --- external sort --------------------------------------------------------

// makeRuns splits rel into sorted runs of up to mem pages, written through
// the pool (charged). Returns the run relations.
func (e *Engine) makeRuns(pool *buffer.Pool, rel *storage.Relation, col int) ([]*storage.Relation, error) {
	var runs []*storage.Relation
	capPages := pool.Capacity()
	for start := 0; start < rel.NumPages(); start += capPages {
		end := start + capPages
		if end > rel.NumPages() {
			end = rel.NumPages()
		}
		var buf []storage.Tuple
		for p := start; p < end; p++ {
			page, err := pool.Read(rel.Name, p)
			if err != nil {
				return nil, err
			}
			buf = append(buf, page...)
		}
		sort.SliceStable(buf, func(i, j int) bool { return buf[i][col] < buf[j][col] })
		run, err := e.store.NewTemp("run", rel.Cols, rel.TuplesPerPage)
		if err != nil {
			return nil, err
		}
		if err := writePages(pool, run, buf); err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// writePages flushes tuples into rel as full pages through the pool.
func writePages(pool *buffer.Pool, rel *storage.Relation, tuples []storage.Tuple) error {
	tpp := rel.TuplesPerPage
	for start := 0; start < len(tuples); start += tpp {
		end := start + tpp
		if end > len(tuples) {
			end = len(tuples)
		}
		if err := pool.AppendPage(rel.Name, tuples[start:end]); err != nil {
			return err
		}
	}
	return nil
}

// runCursor streams a sorted run page by page through the pool.
type runCursor struct {
	pool *buffer.Pool
	rel  *storage.Relation
	page int
	pos  int
	cur  []storage.Tuple
}

func newRunCursor(pool *buffer.Pool, rel *storage.Relation) *runCursor {
	return &runCursor{pool: pool, rel: rel}
}

// peek returns the current tuple without advancing, or nil at EOF.
func (c *runCursor) peek() (storage.Tuple, error) {
	for c.cur == nil || c.pos >= len(c.cur) {
		if c.page >= c.rel.NumPages() {
			return nil, nil
		}
		page, err := c.pool.Read(c.rel.Name, c.page)
		if err != nil {
			return nil, err
		}
		c.cur = page
		c.pos = 0
		c.page++
	}
	return c.cur[c.pos], nil
}

func (c *runCursor) next() (storage.Tuple, error) {
	t, err := c.peek()
	if err != nil || t == nil {
		return t, err
	}
	c.pos++
	return t, nil
}

// mergeRuns merges sorted runs until at most maxRuns remain, with merge
// fan-in M-1. Each step merges only as many runs as needed to close the
// gap (merging k runs reduces the count by k-1), so memory increases can
// never increase total merge I/O. Intermediate merged runs are written
// through the pool (charged). The shortest runs merge first, the classic
// polyphase-style policy that minimizes pages rewritten.
func (e *Engine) mergeRuns(pool *buffer.Pool, runs []*storage.Relation, col int, maxRuns int) ([]*storage.Relation, error) {
	fanIn := pool.Capacity() - 1
	if fanIn < 2 {
		fanIn = 2
	}
	if maxRuns < 1 {
		maxRuns = 1
	}
	for len(runs) > maxRuns {
		k := len(runs) - maxRuns + 1
		if k > fanIn {
			k = fanIn
		}
		sortRunsByPages(runs)
		group := runs[:k]
		merged, err := e.store.NewTemp("merge", group[0].Cols, group[0].TuplesPerPage)
		if err != nil {
			return nil, err
		}
		w := &pageWriter{pool: pool, rel: merged}
		if err := e.mergeInto(pool, group, col, w.add); err != nil {
			return nil, err
		}
		if err := w.flush(); err != nil {
			return nil, err
		}
		for _, g := range group {
			pool.Invalidate(g.Name)
			e.store.Drop(g.Name)
		}
		runs = append(runs[k:], merged)
	}
	return runs, nil
}

// sortRunsByPages orders runs ascending by size (insertion sort: run
// counts are small).
func sortRunsByPages(runs []*storage.Relation) {
	for i := 1; i < len(runs); i++ {
		for j := i; j > 0 && runs[j].NumPages() < runs[j-1].NumPages(); j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}
}

// pageWriter batches tuples into full pages written through the pool
// (each flushed page is one charged write).
type pageWriter struct {
	pool *buffer.Pool
	rel  *storage.Relation
	buf  []storage.Tuple
}

func (w *pageWriter) add(t storage.Tuple) error {
	w.buf = append(w.buf, t)
	if len(w.buf) >= w.rel.TuplesPerPage {
		return w.flush()
	}
	return nil
}

func (w *pageWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	err := w.pool.AppendPage(w.rel.Name, w.buf)
	w.buf = w.buf[:0]
	return err
}

// mergeInto k-way merges the runs on col, invoking out per tuple in order.
func (e *Engine) mergeInto(pool *buffer.Pool, runs []*storage.Relation, col int, out func(storage.Tuple) error) error {
	cursors := make([]*runCursor, len(runs))
	for i, r := range runs {
		cursors[i] = newRunCursor(pool, r)
	}
	for {
		bestIdx := -1
		var bestTuple storage.Tuple
		for i, c := range cursors {
			t, err := c.peek()
			if err != nil {
				return err
			}
			if t == nil {
				continue
			}
			if bestIdx < 0 || t[col] < bestTuple[col] {
				bestIdx, bestTuple = i, t
			}
		}
		if bestIdx < 0 {
			return nil
		}
		if _, err := cursors[bestIdx].next(); err != nil {
			return err
		}
		if err := out(bestTuple); err != nil {
			return err
		}
	}
}

// SortRelation externally sorts a stored relation on col with a fresh pool
// of mem pages, returning the materialized sorted relation (final output
// uncharged — pipelined) and the I/O incurred.
func (e *Engine) SortRelation(name, col string, mem int) (*storage.Relation, buffer.Stats, error) {
	if mem < 3 {
		return nil, buffer.Stats{}, fmt.Errorf("%w: %d pages", ErrBadMemory, mem)
	}
	rel, err := e.store.Get(name)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	ci, err := rel.ColIndex(col)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	pool, err := buffer.NewPool(e.store, mem)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	out, err := e.store.NewTemp("sorted", rel.Cols, rel.TuplesPerPage)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	runs, err := e.makeRuns(pool, rel, ci)
	if err != nil {
		return nil, pool.Stats(), err
	}
	fanIn := mem - 1
	if fanIn < 2 {
		fanIn = 2
	}
	runs, err = e.mergeRuns(pool, runs, ci, fanIn)
	if err != nil {
		return nil, pool.Stats(), err
	}
	// Final merge pipelines into the materialized output (uncharged).
	err = e.mergeInto(pool, runs, ci, func(t storage.Tuple) error {
		return out.Append(t)
	})
	if err != nil {
		return nil, pool.Stats(), err
	}
	for _, r := range runs {
		pool.Invalidate(r.Name)
		e.store.Drop(r.Name)
	}
	return out, pool.Stats(), nil
}

// Scan reads a relation fully through a fresh pool, returning the tuple
// count and I/O (exactly NumPages reads).
func (e *Engine) Scan(name string, mem int) (int, buffer.Stats, error) {
	rel, err := e.store.Get(name)
	if err != nil {
		return 0, buffer.Stats{}, err
	}
	pool, err := buffer.NewPool(e.store, mem)
	if err != nil {
		return 0, buffer.Stats{}, err
	}
	n := 0
	for p := 0; p < rel.NumPages(); p++ {
		page, err := pool.Read(name, p)
		if err != nil {
			return 0, pool.Stats(), err
		}
		n += len(page)
	}
	return n, pool.Stats(), nil
}
