// Access paths: the physical operators that read base tables. Until this
// layer existed the executor had exactly one access path — hand the base
// relation to the consuming join — so index plans could not execute and
// the serving loop had to optimize with DisableIndexes. Now the engine and
// the cost model describe the same machine:
//
//	cost.ScanIO(pages)                 <-> heapScan: every base page read
//	cost.IndexScanIO(h, sel, P, R, cl) <-> indexScan: h root-to-leaf node
//	                                       pages + the covering leaf pages
//	                                       + one data-page fetch per
//	                                       qualifying row (unclustered) or
//	                                       per qualifying page (clustered,
//	                                       entries in storage order)
//
// Both materialize their qualifying tuples into an uncharged temp (the
// pipelined-to-consumer convention join outputs already follow); the
// consuming operator then pays to read the filtered result, exactly as the
// analytic formulas charge the join over the post-filter sizes.
//
// Scans stream: they read through a fixed handful of pool frames
// (scanFrames) regardless of the phase's memory budget, because the
// analytic scan formulas are memory-independent — an index scan that
// silently cached its fetches in a large pool would realize far less I/O
// than the model prices, re-opening the engine/model gap this layer closes.
package engine

import (
	"errors"
	"fmt"

	"lecopt/internal/buffer"
	"lecopt/internal/plan"
	"lecopt/internal/storage"
)

// Access-path errors.
var (
	ErrStaleIndex = errors.New("engine: index is stale for its relation")
	ErrPredColumn = errors.New("engine: predicate column not in relation")
)

// scanFrames is the streaming pool capacity of an access path: one frame
// per concurrently-open page kind (index node, leaf, data).
const scanFrames = 3

// HeapScanFiltered reads every page of a base table through a streaming
// pool (charged: exactly NumPages reads, cost.ScanIO's |A|) and
// materializes the tuples matching pred into an uncharged temp relation.
func (e *Engine) HeapScanFiltered(table string, pred *plan.ScanPred) (*storage.Relation, buffer.Stats, error) {
	rel, err := e.store.Get(table)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	match, err := matcher(rel, pred)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	pool, err := buffer.NewPool(e.store, scanFrames)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	out, err := e.store.NewTemp("scan", rel.Cols, rel.TuplesPerPage)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	for p := 0; p < rel.NumPages(); p++ {
		page, err := pool.Read(rel.Name, p)
		if err != nil {
			return nil, pool.Stats(), err
		}
		for _, t := range page {
			if match(t) {
				if err := out.Append(t); err != nil {
					return nil, pool.Stats(), err
				}
			}
		}
	}
	return out, pool.Stats(), nil
}

// IndexScan walks the named index over pred's key range and materializes
// the qualifying tuples, in index-key order, into an uncharged temp
// relation. Charged I/O is the walk itself: height node pages, the
// covering leaf pages, and the data-page fetches — each through the
// streaming pool, so a clustered index (entries in storage order) fetches
// each qualifying data page once while an unclustered one pays per row,
// minus whatever the few frames keep resident. pred may be nil (full
// range: an index scan used for its order) and may target a column other
// than the indexed one (the walk covers the full range and the predicate
// filters residually).
func (e *Engine) IndexScan(name string, pred *plan.ScanPred) (*storage.Relation, buffer.Stats, error) {
	ix, err := e.store.Index(name)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	rel, err := e.store.Get(ix.Table)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	if !ix.Fresh(e.store) {
		return nil, buffer.Stats{}, fmt.Errorf("%w: %s over %s", ErrStaleIndex, name, ix.Table)
	}
	match, err := matcher(rel, pred)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	lo, hi := int64(minKey), int64(maxKey)
	if pred != nil && pred.Column == ix.Column {
		lo, hi = pred.KeyRange()
	}
	pool, err := buffer.NewPool(e.store, scanFrames)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	out, err := e.store.NewTemp("ixscan", rel.Cols, rel.TuplesPerPage)
	if err != nil {
		return nil, buffer.Stats{}, err
	}
	err = ix.WalkRange(pool.Read, lo, hi, func(_ int64, page, slot int) error {
		data, err := pool.Read(rel.Name, page)
		if err != nil {
			return err
		}
		t := data[slot]
		if match(t) {
			return out.Append(t)
		}
		return nil
	})
	if err != nil {
		return nil, pool.Stats(), err
	}
	return out, pool.Stats(), nil
}

// minKey/maxKey are the unbounded walk limits.
const (
	minKey = -(1 << 62)
	maxKey = 1 << 62
)

// matcher compiles a predicate against a relation's schema.
func matcher(rel *storage.Relation, pred *plan.ScanPred) (func(storage.Tuple) bool, error) {
	if pred == nil {
		return func(storage.Tuple) bool { return true }, nil
	}
	ci, err := rel.ColIndex(pred.Column)
	if err != nil {
		return nil, fmt.Errorf("%w: %s.%s", ErrPredColumn, rel.Name, pred.Column)
	}
	return func(t storage.Tuple) bool { return pred.Match(float64(t[ci])) }, nil
}
