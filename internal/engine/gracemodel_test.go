package engine

import (
	"testing"

	"lecopt/internal/cost"
	"lecopt/internal/storage"
)

// These tests pin the contract behind cost.ModelEngine: cost.GracePasses /
// cost.JoinIOModel are simulators of engine.graceHashJoin, sharing its
// fan-out arithmetic through cost.GraceFanOut. The grid test checks the
// recursion-shape agreement over an S×M sweep of random-key inputs; the
// tail-page test pins page-exact partition I/O on engineered
// perfectly-balanced keys, where the hash fluctuation term is zero and
// the only remaining discrepancy would be a formula error.

// modelFinalPartition replays the model's recursion and returns the build
// partition size (pages) the final level hands to the in-memory join.
func modelFinalPartition(s, m, levels int) int {
	for l := 0; l < levels; l++ {
		f := cost.GraceFanOut(s, m)
		s = (s + f - 1) / f
	}
	return s
}

// TestGracePassesGridMatchesEngine sweeps an S×M grid of random-key join
// inputs and asserts the model's recursion shape against the engine's
// realized one:
//
//   - cost.GracePasses' level count equals the engine's observed deepest
//     partitioning level (JoinDetail.GraceLevels) — exactly, except on
//     *knife-edge* cells, where the model's final partition lands exactly
//     on the in-memory boundary (pages+2 == M) and a single page of hash
//     imbalance legitimately costs one extra level;
//   - no cell degenerates to the level-cap fallback, and the model agrees
//     (GracePasses' fallback flag is false everywhere on the grid);
//   - total realized I/O stays within a tight band of
//     cost.JoinIOModel(ModelEngine, ...): the model charges hash-balanced
//     partitions to the page, the engine adds per-partition tail-page
//     fluctuation and subtracts buffer-residency read hits.
func TestGracePassesGridMatchesEngine(t *testing.T) {
	for _, S := range []int{12, 16, 20, 25, 32, 47, 64, 90, 120, 200} {
		for _, M := range []int{4, 5, 6, 8, 10, 12, 16, 20} {
			e := loadPair(t, int64(S*100+M), S, S, 32, int64(S*32*4))
			res, st, det, err := e.JoinDetailed(JoinSpec{
				Method: cost.GraceHash, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k",
			}, M)
			if err != nil {
				t.Fatalf("S=%d M=%d: %v", S, M, err)
			}
			e.Store().Drop(res.Name)

			wantLv, wantFB := cost.GracePasses(float64(S), float64(M))
			if wantFB {
				t.Fatalf("S=%d M=%d: model predicts a level-cap fallback on a benign grid", S, M)
			}
			if det.GraceFallbacks != 0 || det.GraceFallbackIO != 0 {
				t.Fatalf("S=%d M=%d: engine degenerated (%d fallbacks, %d pages) where the model predicts none",
					S, M, det.GraceFallbacks, det.GraceFallbackIO)
			}
			knife := wantLv > 0 && modelFinalPartition(S, M, wantLv)+2 == M
			switch {
			case det.GraceLevels == wantLv:
			case knife && det.GraceLevels == wantLv+1:
				// One page of hash imbalance across the exact boundary.
			default:
				t.Errorf("S=%d M=%d: engine recursed %d levels, GracePasses says %d (knife-edge=%v)",
					S, M, det.GraceLevels, wantLv, knife)
			}

			model := cost.JoinIOModel(cost.ModelEngine, cost.GraceHash, float64(S), float64(S), float64(M))
			ratio := float64(st.IO()) / model
			lo, hi := 0.70, 1.20
			if knife {
				hi = 1.45 // the possible extra level re-reads and re-writes the stuck pair
			}
			if ratio < lo || ratio > hi {
				t.Errorf("S=%d M=%d: realized I/O %d vs ModelEngine charge %.0f (ratio %.3f outside [%.2f, %.2f])",
					S, M, st.IO(), model, ratio, lo, hi)
			}
		}
	}
}

// balancedPair builds two relations over the same engineered key set:
// perTuples keys per level-0 hash bucket for the given fan-out, each key
// exactly once per relation. Partitioning at level 0 with that fan-out
// then yields exactly perTuples tuples per partition — zero hash
// fluctuation, so partition page counts are deterministic.
func balancedPair(t *testing.T, fanOut, perTuples, tpp int) *Engine {
	t.Helper()
	counts := make([]int, fanOut)
	var keys []int64
	for k := int64(0); len(keys) < fanOut*perTuples; k++ {
		b := hashKey(k, 0) % uint64(fanOut)
		if counts[b] < perTuples {
			counts[b]++
			keys = append(keys, k)
		}
	}
	s := storage.NewStore()
	for _, name := range []string{"A", "B"} {
		rel, err := storage.NewRelation(name, []string{"k", "v"}, tpp)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			if err := rel.Append(storage.Tuple{k, int64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Add(rel); err != nil {
			t.Fatal(err)
		}
	}
	return New(s)
}

// TestGracePartitionTailPagesExact pins the partial-tail-page ceil term of
// ModelEngine page-exactly. Keys are engineered so every level-0 partition
// receives exactly 45 tuples = 4 full pages + 1 partial page at 10 tuples
// per page: the engine must write exactly fanOut·⌈S/fanOut⌉ partition
// pages per side — 25 for a 23-page input, a 2-page tail overcharge the
// paper model never sees — and every logical page access (physical read +
// buffer hit) must match the model's read charge exactly.
func TestGracePartitionTailPagesExact(t *testing.T) {
	const (
		tpp       = 10
		perTuples = 45 // 4.5 pages per partition: the tail page is partial
		mem       = 9
	)
	S := (5*perTuples + tpp - 1) / tpp // 23 pages per side
	fanOut := cost.GraceFanOut(S, mem)
	if fanOut != 5 {
		t.Fatalf("fan-out %d, test geometry wants 5", fanOut)
	}
	e := balancedPair(t, fanOut, perTuples, tpp)
	if got := mustPages(t, e, "A"); got != S {
		t.Fatalf("input is %d pages, want %d", got, S)
	}

	wantLv, wantFB := cost.GracePasses(float64(S), float64(mem))
	if wantLv != 1 || wantFB {
		t.Fatalf("GracePasses(%d, %d) = (%d, %v), test geometry wants one clean level", S, mem, wantLv, wantFB)
	}
	res, st, det, err := e.JoinDetailed(JoinSpec{
		Method: cost.GraceHash, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k",
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	e.Store().Drop(res.Name)
	if det.GraceLevels != 1 || det.GraceFallbacks != 0 {
		t.Fatalf("recursion shape (levels=%d fallbacks=%d), want one level, no fallback",
			det.GraceLevels, det.GraceFallbacks)
	}

	ap := (S + fanOut - 1) / fanOut // 5 pages per partition, tail partial
	wantWrites := int64(2 * fanOut * ap)
	if st.Writes != wantWrites {
		t.Fatalf("partition writes %d, want exactly %d (= 2·fanOut·⌈S/fanOut⌉, incl. tail pages)",
			st.Writes, wantWrites)
	}
	// Logical reads: both inputs once (2S) plus every partition page once.
	if logical := st.Reads + st.Hits; logical != int64(2*S)+wantWrites {
		t.Fatalf("logical page reads %d, want exactly %d", logical, int64(2*S)+wantWrites)
	}
	// And the closed form charges exactly this machine: 2S reads + writes
	// + partition re-reads.
	model := cost.JoinIOModel(cost.ModelEngine, cost.GraceHash, float64(S), float64(S), float64(mem))
	if want := float64(2*S) + 2*float64(wantWrites); model != want {
		t.Fatalf("ModelEngine charge %v, want %v", model, want)
	}
	// The paper model charges a multiple of the raw input sizes and can
	// never see the tail-page overcharge; assert the two models actually
	// disagree here, so this test would catch ModelEngine regressing to
	// the paper formula.
	if paper := cost.JoinIO(cost.GraceHash, float64(S), float64(S), float64(mem)); paper == model {
		t.Fatalf("paper and engine models agree (%v) on a tail-page geometry built to split them", paper)
	}
}

func mustPages(t *testing.T, e *Engine, name string) int {
	t.Helper()
	rel, err := e.Store().Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return rel.NumPages()
}

// TestGraceFanOutSharedWithEngine guards the single-source-of-truth
// contract at the arithmetic level: the fan-out the engine realizes (via
// the shared cost.GraceFanOut) must make GracePasses' balanced-partition
// simulation terminate for every (S, M) in the supported range — i.e. the
// fan-out always strictly shrinks an over-memory build side.
func TestGraceFanOutSharedWithEngine(t *testing.T) {
	for s := 1; s <= 4096; s *= 2 {
		for m := 3; m <= 128; m++ {
			if s+2 <= m {
				continue
			}
			f := cost.GraceFanOut(s, m)
			if f < 2 || f > maxInt(2, m-1) {
				t.Fatalf("GraceFanOut(%d, %d) = %d outside [2, max(2, m-1)]", s, m, f)
			}
			next := (s + f - 1) / f
			if next >= s && s > 1 {
				t.Fatalf("GraceFanOut(%d, %d) = %d does not shrink the build side (%d -> %d)", s, m, f, s, next)
			}
		}
	}
	// Spot-check the documented arithmetic at a few anchors.
	for _, c := range []struct{ s, m, want int }{
		{200, 5, 4}, // capped at m-1
		{20, 8, 5},  // (20+5)/6+1
		{23, 9, 5},  // the tail-page test geometry
		{6, 100, 2}, // floor at 2
		{500, 3, 2}, // minimum memory: cap m-1 then floor 2
	} {
		if got := cost.GraceFanOut(c.s, c.m); got != c.want {
			t.Errorf("GraceFanOut(%d, %d) = %d, want %d", c.s, c.m, got, c.want)
		}
	}
}

// TestGraceDetailZeroForOtherMethods: JoinDetail is a grace-hash artifact;
// the other join methods must leave it zero.
func TestGraceDetailZeroForOtherMethods(t *testing.T) {
	for _, m := range []cost.JoinMethod{cost.SortMerge, cost.PageNL, cost.BlockNL} {
		e := loadPair(t, 3, 10, 8, 8, 50)
		res, _, det, err := e.JoinDetailed(JoinSpec{Method: m, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}, 5)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		e.Store().Drop(res.Name)
		if det != (JoinDetail{}) {
			t.Errorf("%v: JoinDetail = %+v, want zero", m, det)
		}
	}
}

// TestGraceFallbackCounted forces the level cap with a single-key input
// (no hash can ever split it) and asserts the executor surfaces the
// degeneration: the fallback is counted, its I/O booked, and the join is
// still correct.
func TestGraceFallbackCounted(t *testing.T) {
	s := storage.NewStore()
	for _, name := range []string{"A", "B"} {
		rel, err := storage.NewRelation(name, []string{"k", "v"}, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ { // 8 pages of one single key
			if err := rel.Append(storage.Tuple{7, int64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Add(rel); err != nil {
			t.Fatal(err)
		}
	}
	e := New(s)
	res, _, det, err := e.JoinDetailed(JoinSpec{
		Method: cost.GraceHash, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k",
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Store().Drop(res.Name)
	if det.GraceFallbacks == 0 {
		t.Fatal("single-key input must hit the level cap, no fallback recorded")
	}
	if det.GraceFallbackIO <= 0 {
		t.Fatalf("fallback booked no I/O: %+v", det)
	}
	if det.GraceLevels <= 8 {
		t.Fatalf("fallback without exhausting the level cap: %+v", det)
	}
	if got, want := res.NumTuples(), 64*64; got != want {
		t.Fatalf("degenerate join produced %d tuples, want %d", got, want)
	}
	// The model agrees this is fallback territory.
	if _, fb := cost.GracePasses(8, 4); fb {
		t.Fatal("GracePasses predicts fallback for a splittable 8-page side — balanced simulation should terminate")
	}
}
