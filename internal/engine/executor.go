package engine

import (
	"errors"
	"fmt"
	"sort"

	"lecopt/internal/buffer"
	"lecopt/internal/cost"
	"lecopt/internal/feedback"
	"lecopt/internal/plan"
	"lecopt/internal/storage"
)

// Executor errors.
var (
	ErrNotLeftDeep = errors.New("engine: executor requires a left-deep plan")
	ErrNoRelation2 = errors.New("engine: plan references a relation not in the store")
	ErrShortMems   = errors.New("engine: memory sequence shorter than plan phases")
)

// ExecResult is the outcome of executing a whole plan.
type ExecResult struct {
	Output *storage.Relation
	Stats  buffer.Stats
	// PhaseIO breaks the physical I/O down by execution phase.
	PhaseIO []int64
	// PhaseMem records the effective memory budget each phase ran with —
	// the sampled memSeq value exactly as the executor consumed it
	// (truncated to whole pages and floored at the 3-page operator
	// minimum), one entry per phase, parallel to PhaseIO. Feeding
	// PhaseMem[i] into plan.CostPhases / optimizer.Result.PhaseECAt
	// conditions the analytic model on the memory trajectory this
	// execution actually saw, isolating formula error from law error.
	PhaseMem []float64
	// JoinSizes records the *observed* page count of every join's
	// materialized output, keyed by feedback.SetKey over the leaf tables
	// the join covers. These are the executed intermediate-result sizes
	// that size-estimation feedback (optimizer.Options.SizeHints, via a
	// feedback.Store) folds into subsequent costing.
	JoinSizes map[string]float64
	// GraceFallbacks counts grace-hash recursions that hit the level cap
	// and degenerated to block nested loop, across all joins of the plan;
	// GraceFallbackIO is the physical I/O those fallbacks charged. A
	// nonzero count means the engine ran a machine neither cost model
	// describes — "engine degenerated", not "model wrong".
	GraceFallbacks  int
	GraceFallbackIO int64
	// GraceLevels is the deepest grace-hash partitioning recursion any
	// join of the plan performed (0: every grace build side fit in
	// memory, or no grace join ran).
	GraceLevels int
}

// ExecutePlan runs a left-deep plan against the store, one join per phase
// with the phase's memory budget, and returns the materialized result and
// the measured physical I/O. Conventions match the analytic cost model:
// each phase's join reads its inputs through a fresh pool of memSeq[phase]
// pages (charged); intermediate results are materialized without charge
// (the pipelined-to-consumer assumption) and the next phase pays to read
// them. The root ORDER BY sort, if present, runs in the final phase.
//
// Scan leaves read base tables; filter predicates are not re-evaluated
// here (the engine executes the physical shape — join order, methods,
// sort — which is what the optimizer chose and what the I/O comparison
// needs). Join columns are resolved by the plan's join edges: each join
// node must carry left/right tables joined on a column named "k", the
// convention of the storage generators; richer schemas use ExecuteSpec.
func (e *Engine) ExecutePlan(p *plan.Node, memSeq []float64) (ExecResult, error) {
	return e.executePlan(p, memSeq, "k")
}

// ExecutePlanOn is ExecutePlan with an explicit join column name shared by
// all relations.
func (e *Engine) ExecutePlanOn(p *plan.Node, memSeq []float64, joinCol string) (ExecResult, error) {
	return e.executePlan(p, memSeq, joinCol)
}

func (e *Engine) executePlan(p *plan.Node, memSeq []float64, joinCol string) (ExecResult, error) {
	if err := p.Validate(); err != nil {
		return ExecResult{}, err
	}
	if !p.IsLeftDeep() {
		return ExecResult{}, ErrNotLeftDeep
	}
	phases := p.Phases()
	if len(memSeq) < phases {
		return ExecResult{}, fmt.Errorf("%w: %d < %d", ErrShortMems, len(memSeq), phases)
	}
	ex := &executor{
		eng: e, memSeq: memSeq, joinCol: joinCol,
		phaseIO: make([]int64, phases), joinSizes: make(map[string]float64),
	}
	rel, err := ex.run(p)
	if err != nil {
		return ExecResult{}, err
	}
	phaseMem := make([]float64, phases)
	for i := range phaseMem {
		m := int(memSeq[i])
		if m < 3 {
			m = 3
		}
		phaseMem[i] = float64(m)
	}
	return ExecResult{
		Output: rel, Stats: ex.total, PhaseIO: ex.phaseIO, PhaseMem: phaseMem,
		JoinSizes:      ex.joinSizes,
		GraceFallbacks: ex.detail.GraceFallbacks, GraceFallbackIO: ex.detail.GraceFallbackIO,
		GraceLevels: ex.detail.GraceLevels,
	}, nil
}

type executor struct {
	eng       *Engine
	memSeq    []float64
	joinCol   string
	total     buffer.Stats
	phaseIO   []int64
	joinSizes map[string]float64
	temps     []string
	detail    JoinDetail
}

// run evaluates a subtree and returns its materialized relation. The leaf
// tables covered by each subtree are tracked both to map joins onto phases
// (a join covering k relations runs in phase k-2) and to key the observed
// join-output sizes.
func (ex *executor) run(n *plan.Node) (*storage.Relation, error) {
	rel, _, err := ex.eval(n)
	if err != nil {
		ex.cleanup()
		return nil, err
	}
	// Drop all temporaries except the final output.
	for _, t := range ex.temps {
		if t != rel.Name {
			ex.eng.store.Drop(t)
		}
	}
	ex.temps = nil
	return rel, nil
}

func (ex *executor) cleanup() {
	for _, t := range ex.temps {
		ex.eng.store.Drop(t)
	}
	ex.temps = nil
}

func (ex *executor) eval(n *plan.Node) (*storage.Relation, []string, error) {
	switch n.Kind {
	case plan.KindScan:
		rel, err := ex.eng.store.Get(n.Table)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %s", ErrNoRelation2, n.Table)
		}
		switch {
		case n.Access == plan.AccessIndex:
			// Real index walk: node/leaf/fetch I/O charged through the
			// scan's streaming pool; qualifying tuples materialized
			// (uncharged) for the consuming operator to read.
			out, st, err := ex.eng.IndexScan(n.Index, n.Pred)
			if err != nil {
				return nil, nil, err
			}
			return ex.finishScan(n, out, st)
		case n.Pred != nil:
			// Filtered heap scan: every base page read (charged), the
			// qualifying tuples materialized.
			out, st, err := ex.eng.HeapScanFiltered(n.Table, n.Pred)
			if err != nil {
				return nil, nil, err
			}
			return ex.finishScan(n, out, st)
		}
		// Unfiltered heap scan: hand the base relation to the consumer,
		// which pays the read — the model's ScanIO charge shows up as the
		// consuming operator's input pass.
		return rel, []string{n.Table}, nil
	case plan.KindSort:
		child, tables, err := ex.eval(n.Child)
		if err != nil {
			return nil, nil, err
		}
		phase := 0
		if k := len(tables); k >= 2 {
			phase = k - 2
		}
		mem := int(ex.memSeq[phase])
		if mem < 3 {
			mem = 3
		}
		// In-memory sorts are free in the model; still read the input if
		// it's an unmaterialized base table (materialized inputs — join
		// outputs and filtered/index scan temps — were already charged).
		if child.NumPages() <= mem && (n.Child.Kind != plan.KindScan || child.Name != n.Child.Table) {
			sorted, err := ex.materializeSorted(child)
			if err != nil {
				return nil, nil, err
			}
			return sorted, tables, nil
		}
		out, st, err := ex.eng.SortRelation(child.Name, ex.colFor(child), mem)
		if err != nil {
			return nil, nil, err
		}
		ex.charge(phase, st)
		ex.temps = append(ex.temps, out.Name)
		return out, tables, nil
	case plan.KindJoin:
		left, lt, err := ex.eval(n.Left)
		if err != nil {
			return nil, nil, err
		}
		right, rt, err := ex.eval(n.Right)
		if err != nil {
			return nil, nil, err
		}
		tables := append(append([]string(nil), lt...), rt...)
		phase := len(tables) - 2
		mem := int(ex.memSeq[phase])
		if mem < 3 {
			mem = 3
		}
		out, st, err := ex.joinRels(n.Method, left, right, mem)
		if err != nil {
			return nil, nil, err
		}
		ex.charge(phase, st)
		ex.joinSizes[feedback.SetKey(tables...)] = float64(out.NumPages())
		ex.temps = append(ex.temps, out.Name)
		return out, tables, nil
	default:
		return nil, nil, fmt.Errorf("engine: unknown plan node kind %v", n.Kind)
	}
}

// finishScan books a materialized access path: its I/O lands in phase 0
// (the convention single-table sorts already follow — the model's scan
// charges carry no phase attribution, only the total must agree), its
// observed post-filter size feeds the executed-size loop under the
// single-table feedback key, and the temp is tracked for cleanup.
func (ex *executor) finishScan(n *plan.Node, out *storage.Relation, st buffer.Stats) (*storage.Relation, []string, error) {
	ex.charge(0, st)
	ex.joinSizes[feedback.SetKey(n.Table)] = float64(out.NumPages())
	ex.temps = append(ex.temps, out.Name)
	return out, []string{n.Table}, nil
}

func (ex *executor) charge(phase int, st buffer.Stats) {
	ex.total.Reads += st.Reads
	ex.total.Writes += st.Writes
	ex.total.Hits += st.Hits
	if phase >= 0 && phase < len(ex.phaseIO) {
		ex.phaseIO[phase] += st.IO()
	}
}

// colFor returns the join column's name within a relation: base tables use
// the configured join column; join outputs carry the outer side's column
// first, prefixed "o.".
func (ex *executor) colFor(rel *storage.Relation) string {
	for _, c := range rel.Cols {
		if c == ex.joinCol {
			return c
		}
	}
	// Join outputs qualify columns; prefer the outer-side key.
	for _, c := range rel.Cols {
		if c == "o."+ex.joinCol || c == "i."+ex.joinCol {
			return c
		}
	}
	// Fall back to the shortest qualified key ("o.o.k", ...).
	suffix := "." + ex.joinCol
	best := ""
	for _, c := range rel.Cols {
		if len(c) > len(suffix) && c[len(c)-len(suffix):] == suffix {
			if best == "" || len(c) < len(best) {
				best = c
			}
		}
	}
	if best != "" {
		return best
	}
	return rel.Cols[0]
}

// joinRels dispatches a join between two materialized relations on the
// configured key column, folding the join's execution-shape detail into
// the plan-level counters.
func (ex *executor) joinRels(method cost.JoinMethod, outer, inner *storage.Relation, mem int) (*storage.Relation, buffer.Stats, error) {
	out, st, det, err := ex.eng.JoinDetailed(JoinSpec{
		Method:   method,
		Outer:    outer.Name,
		Inner:    inner.Name,
		OuterCol: ex.colFor(outer),
		InnerCol: ex.colFor(inner),
	}, mem)
	ex.detail.GraceFallbacks += det.GraceFallbacks
	ex.detail.GraceFallbackIO += det.GraceFallbackIO
	if det.GraceLevels > ex.detail.GraceLevels {
		ex.detail.GraceLevels = det.GraceLevels
	}
	return out, st, err
}

// materializeSorted copies a relation sorted in memory (uncharged: the
// model's "fits in memory" case).
func (ex *executor) materializeSorted(rel *storage.Relation) (*storage.Relation, error) {
	out, err := ex.eng.store.NewTemp("memsort", rel.Cols, rel.TuplesPerPage)
	if err != nil {
		return nil, err
	}
	ex.temps = append(ex.temps, out.Name)
	all := rel.AllTuples()
	ci, err := rel.ColIndex(ex.colFor(rel))
	if err != nil {
		return nil, err
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i][ci] < all[j][ci] })
	for _, t := range all {
		if err := out.Append(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}
