package engine

import (
	"hash/fnv"

	"lecopt/internal/buffer"
	"lecopt/internal/cost"
	"lecopt/internal/storage"
)

// sortMergeJoin is the classic two-phase implementation: build sorted runs
// of each input (read input, write runs — both charged), then merge-join
// all runs directly (each run page read once) when the combined fan-in
// fits; otherwise pre-merge the larger side first. Equal-key groups are
// buffered in memory to produce the full many-to-many cross product.
func (e *Engine) sortMergeJoin(pool *buffer.Pool, outer, inner *storage.Relation, oc, ic int, result *storage.Relation) error {
	oRuns, err := e.makeRuns(pool, outer, oc)
	if err != nil {
		return err
	}
	iRuns, err := e.makeRuns(pool, inner, ic)
	if err != nil {
		return err
	}
	// Pre-merge until both run sets fit the merge fan-in together.
	fanIn := pool.Capacity() - 1
	if fanIn < 2 {
		fanIn = 2
	}
	for len(oRuns)+len(iRuns) > fanIn {
		// Merge the side with more runs down to whatever share of the
		// fan-in the other side leaves free (at least one run), so each
		// pass strictly reduces the total until it fits.
		if len(oRuns) >= len(iRuns) {
			oRuns, err = e.mergeRuns(pool, oRuns, oc, maxInt(1, fanIn-len(iRuns)))
		} else {
			iRuns, err = e.mergeRuns(pool, iRuns, ic, maxInt(1, fanIn-len(oRuns)))
		}
		if err != nil {
			return err
		}
	}
	defer func() {
		for _, r := range append(oRuns, iRuns...) {
			pool.Invalidate(r.Name)
			e.store.Drop(r.Name)
		}
	}()

	og := newGroupCursor(pool, oRuns, oc)
	ig := newGroupCursor(pool, iRuns, ic)
	oKey, oGroup, err := og.nextGroup()
	if err != nil {
		return err
	}
	iKey, iGroup, err := ig.nextGroup()
	if err != nil {
		return err
	}
	for oGroup != nil && iGroup != nil {
		switch {
		case oKey < iKey:
			oKey, oGroup, err = og.nextGroup()
		case oKey > iKey:
			iKey, iGroup, err = ig.nextGroup()
		default:
			for _, ot := range oGroup {
				for _, it := range iGroup {
					if err := emit(result, ot, it); err != nil {
						return err
					}
				}
			}
			oKey, oGroup, err = og.nextGroup()
			if err != nil {
				return err
			}
			iKey, iGroup, err = ig.nextGroup()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// groupCursor yields runs of equal keys from a k-way merge over sorted
// runs.
type groupCursor struct {
	cursors []*runCursor
	col     int
}

func newGroupCursor(pool *buffer.Pool, runs []*storage.Relation, col int) *groupCursor {
	g := &groupCursor{col: col}
	for _, r := range runs {
		g.cursors = append(g.cursors, newRunCursor(pool, r))
	}
	return g
}

// nextGroup returns the smallest remaining key and every tuple carrying
// it, or (0, nil) at EOF.
func (g *groupCursor) nextGroup() (int64, []storage.Tuple, error) {
	minSet := false
	var minKey int64
	for _, c := range g.cursors {
		t, err := c.peek()
		if err != nil {
			return 0, nil, err
		}
		if t == nil {
			continue
		}
		if !minSet || t[g.col] < minKey {
			minSet, minKey = true, t[g.col]
		}
	}
	if !minSet {
		return 0, nil, nil
	}
	var group []storage.Tuple
	for _, c := range g.cursors {
		for {
			t, err := c.peek()
			if err != nil {
				return 0, nil, err
			}
			if t == nil || t[g.col] != minKey {
				break
			}
			if _, err := c.next(); err != nil {
				return 0, nil, err
			}
			group = append(group, t)
		}
	}
	return minKey, group, nil
}

// graceHashJoin partitions both inputs by a level-salted hash of the join
// key (read input, write partitions — charged), then joins partition
// pairs: a pair whose smaller side fits in memory is joined by building an
// in-memory hash table (both sides read once); otherwise it recurses with
// another partitioning level, which is what produces the extra passes
// below the √S memory threshold. det (never nil) accumulates the
// recursion shape — deepest partitioning level and any level-cap
// fallbacks with their I/O — so callers can tell "model wrong" from
// "engine degenerated".
func (e *Engine) graceHashJoin(pool *buffer.Pool, outer, inner *storage.Relation, oc, ic int, result *storage.Relation, level int, det *JoinDetail) error {
	if level > 8 {
		// Degenerate key distribution: finish with block nested loop,
		// booking the occurrence and its I/O for the phase ledger.
		before := pool.Stats().IO()
		err := e.blockNLJoin(pool, outer, inner, oc, ic, result)
		det.GraceFallbacks++
		det.GraceFallbackIO += pool.Stats().IO() - before
		return err
	}
	small := inner
	if outer.NumPages() < inner.NumPages() {
		small = outer
	}
	// Build side fits: hash join in memory (pages for table ≈ pages of the
	// smaller input + 2 for streaming frames).
	if small.NumPages()+2 <= pool.Capacity() {
		return e.inMemHashJoin(pool, outer, inner, oc, ic, result)
	}
	// Partition count comes from the cost model's shared GraceFanOut —
	// the same function ModelEngine charges with, so the realized fan-out
	// and the charged fan-out cannot silently diverge.
	fanOut := cost.GraceFanOut(small.NumPages(), pool.Capacity())
	if level+1 > det.GraceLevels {
		det.GraceLevels = level + 1
	}
	oParts, err := e.partition(pool, outer, oc, fanOut, level)
	if err != nil {
		return err
	}
	iParts, err := e.partition(pool, inner, ic, fanOut, level)
	if err != nil {
		return err
	}
	defer func() {
		for _, p := range append(oParts, iParts...) {
			pool.Invalidate(p.Name)
			e.store.Drop(p.Name)
		}
	}()
	for i := range oParts {
		if oParts[i].NumPages() == 0 || iParts[i].NumPages() == 0 {
			continue
		}
		if err := e.graceHashJoin(pool, oParts[i], iParts[i], oc, ic, result, level+1, det); err != nil {
			return err
		}
	}
	return nil
}

// inMemHashJoin builds a hash table over the smaller input and probes with
// the larger: each side read exactly once.
func (e *Engine) inMemHashJoin(pool *buffer.Pool, outer, inner *storage.Relation, oc, ic int, result *storage.Relation) error {
	buildOuter := outer.NumPages() <= inner.NumPages()
	build, probe := outer, inner
	bc, pc := oc, ic
	if !buildOuter {
		build, probe = inner, outer
		bc, pc = ic, oc
	}
	table := make(map[int64][]storage.Tuple)
	for p := 0; p < build.NumPages(); p++ {
		page, err := pool.Read(build.Name, p)
		if err != nil {
			return err
		}
		for _, t := range page {
			table[t[bc]] = append(table[t[bc]], t)
		}
	}
	for p := 0; p < probe.NumPages(); p++ {
		page, err := pool.Read(probe.Name, p)
		if err != nil {
			return err
		}
		for _, pt := range page {
			for _, bt := range table[pt[pc]] {
				var err error
				if buildOuter {
					err = emit(result, bt, pt)
				} else {
					err = emit(result, pt, bt)
				}
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// partition hashes rel into fanOut temp partitions (salted by level so
// recursive levels re-split), writing partition pages through the pool.
func (e *Engine) partition(pool *buffer.Pool, rel *storage.Relation, col, fanOut, level int) ([]*storage.Relation, error) {
	parts := make([]*storage.Relation, fanOut)
	writers := make([]*pageWriter, fanOut)
	for i := range parts {
		p, err := e.store.NewTemp("part", rel.Cols, rel.TuplesPerPage)
		if err != nil {
			return nil, err
		}
		parts[i] = p
		writers[i] = &pageWriter{pool: pool, rel: p}
	}
	for pg := 0; pg < rel.NumPages(); pg++ {
		page, err := pool.Read(rel.Name, pg)
		if err != nil {
			return nil, err
		}
		for _, t := range page {
			idx := hashKey(t[col], level) % uint64(fanOut)
			if err := writers[idx].add(t); err != nil {
				return nil, err
			}
		}
	}
	for _, w := range writers {
		if err := w.flush(); err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// hashKey hashes a join key with a per-recursion-level salt. The FNV sum
// alone is NOT usable here: reduced mod a power-of-two fanout (capacity-1
// is 4, 8, or 16 at the common memory levels) its low bits respond to the
// salt byte as a constant rotation, so re-partitioning a bucket at the
// next level moved every key to the same new bucket — the bucket never
// split, recursion always hit the level cap, and the block-nested-loop
// fallback ran at 3-page memory. The murmur3 finalizer avalanches the
// salt through all 64 bits so each level's bucket assignment is
// independent of the previous level's.
func hashKey(k int64, level int) uint64 {
	h := fnv.New64a()
	var b [9]byte
	b[0] = byte(level)
	v := uint64(k)
	for i := 0; i < 8; i++ {
		b[i+1] = byte(v >> (8 * i))
	}
	//leclint:allow errdrop -- hash.Hash.Write never returns an error per its contract
	_, _ = h.Write(b[:])
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
