package engine

import (
	"errors"
	"math/rand"
	"testing"

	"lecopt/internal/cost"
	"lecopt/internal/feedback"
	"lecopt/internal/plan"
	"lecopt/internal/storage"
)

// loadTriple generates three relations A, B, C joined on "k".
func loadTriple(t *testing.T, seed int64, pa, pb, pc int, keyRange int64) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := storage.NewStore()
	for _, spec := range []struct {
		name  string
		pages int
	}{{"A", pa}, {"B", pb}, {"C", pc}} {
		rel, err := storage.Generate(storage.GenSpec{
			Name: spec.name, Pages: spec.pages, TuplesPerPage: 6, KeyRange: keyRange,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Add(rel); err != nil {
			t.Fatal(err)
		}
	}
	return New(s)
}

// refTripleJoin counts A⋈B⋈C rows by brute force.
func refTripleJoin(t *testing.T, e *Engine) int {
	t.Helper()
	a, _ := e.Store().Get("A")
	b, _ := e.Store().Get("B")
	c, _ := e.Store().Get("C")
	count := 0
	byKeyB := map[int64]int{}
	for _, bt := range b.AllTuples() {
		byKeyB[bt[0]]++
	}
	byKeyC := map[int64]int{}
	for _, ct := range c.AllTuples() {
		byKeyC[ct[0]]++
	}
	for _, at := range a.AllTuples() {
		count += byKeyB[at[0]] * byKeyC[at[0]]
	}
	return count
}

func triplePlan(m1, m2 cost.JoinMethod, withSort bool) *plan.Node {
	a := plan.NewScan("A", plan.AccessHeap, "", 1, 12)
	b := plan.NewScan("B", plan.AccessHeap, "", 1, 8)
	c := plan.NewScan("C", plan.AccessHeap, "", 1, 6)
	j1 := plan.NewJoin(m1, a, b, 10, plan.Order{})
	j2 := plan.NewJoin(m2, j1, c, 5, plan.Order{})
	if withSort {
		return plan.NewSort(j2, plan.Order{Table: "A", Column: "k"})
	}
	return j2
}

// TestExecutePlanCorrectness: every method combination produces exactly
// the reference join cardinality, across memory budgets.
func TestExecutePlanCorrectness(t *testing.T) {
	e := loadTriple(t, 3, 12, 8, 6, 25)
	want := refTripleJoin(t, e)
	if want == 0 {
		t.Fatal("test data should produce matches")
	}
	methods := []cost.JoinMethod{cost.SortMerge, cost.GraceHash, cost.PageNL, cost.BlockNL}
	for _, m1 := range methods {
		for _, m2 := range methods {
			for _, mem := range []float64{4, 10, 60} {
				res, err := e.ExecutePlan(triplePlan(m1, m2, false), []float64{mem, mem})
				if err != nil {
					t.Fatalf("%v/%v mem %v: %v", m1, m2, mem, err)
				}
				if got := res.Output.NumTuples(); got != want {
					t.Fatalf("%v/%v mem %v: %d rows, want %d", m1, m2, mem, got, want)
				}
				e.Store().Drop(res.Output.Name)
			}
		}
	}
}

// TestExecutePlanSortedOutput: a root sort enforcer yields ordered output
// and the result survives the per-phase memory model.
func TestExecutePlanSortedOutput(t *testing.T) {
	e := loadTriple(t, 5, 12, 8, 6, 20)
	res, err := e.ExecutePlan(triplePlan(cost.GraceHash, cost.GraceHash, true), []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	all := res.Output.AllTuples()
	if len(all) == 0 {
		t.Fatal("no output")
	}
	// The sort column is the qualified outer key.
	ci, err := res.Output.ColIndex("o.o.k")
	if err != nil {
		t.Fatalf("output cols: %v", res.Output.Cols)
	}
	for i := 1; i < len(all); i++ {
		if all[i][ci] < all[i-1][ci] {
			t.Fatal("output not sorted")
		}
	}
}

// TestExecutePlanPhaseMemories: phase 1 under tiny memory must cost more
// than under ample memory while phase 0 stays identical (same inputs,
// same budget).
func TestExecutePlanPhaseMemories(t *testing.T) {
	p := triplePlan(cost.SortMerge, cost.SortMerge, false)
	e1 := loadTriple(t, 7, 16, 12, 10, 40)
	rich, err := e1.ExecutePlan(p, []float64{6, 60})
	if err != nil {
		t.Fatal(err)
	}
	e2 := loadTriple(t, 7, 16, 12, 10, 40)
	poor, err := e2.ExecutePlan(p, []float64{6, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rich.PhaseIO[0] != poor.PhaseIO[0] {
		t.Fatalf("phase 0 should be unaffected: %d vs %d", rich.PhaseIO[0], poor.PhaseIO[0])
	}
	if !(rich.PhaseIO[1] < poor.PhaseIO[1]) {
		t.Fatalf("phase 1 should be cheaper with memory: %d vs %d", rich.PhaseIO[1], poor.PhaseIO[1])
	}
	if rich.Stats.IO() != rich.PhaseIO[0]+rich.PhaseIO[1] {
		t.Fatal("phase breakdown must sum to the total")
	}
}

// TestExecutePlanNoTempLeak: temporaries are dropped, only the output
// remains.
func TestExecutePlanNoTempLeak(t *testing.T) {
	e := loadTriple(t, 9, 12, 8, 6, 25)
	before := len(e.Store().Names())
	res, err := e.ExecutePlan(triplePlan(cost.SortMerge, cost.GraceHash, true), []float64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	after := len(e.Store().Names())
	if after != before+1 {
		t.Fatalf("temp leak: %d -> %d (%v)", before, after, e.Store().Names())
	}
	e.Store().Drop(res.Output.Name)
}

func TestExecutePlanErrors(t *testing.T) {
	e := loadTriple(t, 11, 4, 4, 4, 10)
	p := triplePlan(cost.SortMerge, cost.SortMerge, false)
	if _, err := e.ExecutePlan(p, []float64{10}); !errors.Is(err, ErrShortMems) {
		t.Fatal("short memory sequence")
	}
	bad := triplePlan(cost.SortMerge, cost.SortMerge, false)
	bad.Left.Left.Table = "missing"
	if _, err := e.ExecutePlan(bad, []float64{10, 10}); !errors.Is(err, ErrNoRelation2) {
		t.Fatal("missing relation")
	}
	bushy := plan.NewJoin(cost.PageNL,
		plan.NewScan("A", plan.AccessHeap, "", 1, 4),
		plan.NewJoin(cost.PageNL,
			plan.NewScan("B", plan.AccessHeap, "", 1, 4),
			plan.NewScan("C", plan.AccessHeap, "", 1, 4), 4, plan.Order{}),
		4, plan.Order{})
	if _, err := e.ExecutePlan(bushy, []float64{10, 10}); !errors.Is(err, ErrNotLeftDeep) {
		t.Fatal("bushy plan")
	}
	var nilPlan *plan.Node
	if _, err := e.ExecutePlan(nilPlan, []float64{10}); err == nil {
		t.Fatal("nil plan")
	}
}

// TestExecutePlanSingleScanWithSort: one-table plan with an enforcer.
func TestExecutePlanSingleScanWithSort(t *testing.T) {
	e := loadTriple(t, 13, 10, 4, 4, 15)
	scan := plan.NewScan("A", plan.AccessHeap, "", 1, 10)
	sorted := plan.NewSort(scan, plan.Order{Table: "A", Column: "k"})
	res, err := e.ExecutePlan(sorted, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	all := res.Output.AllTuples()
	for i := 1; i < len(all); i++ {
		if all[i][0] < all[i-1][0] {
			t.Fatal("not sorted")
		}
	}
	if res.Stats.IO() == 0 {
		t.Fatal("external sort of 10 pages with 4 buffers must do I/O")
	}
}

// TestExecutePlanJoinSizes: the executor reports every join's observed
// output pages, keyed by the canonical table-set key, matching the
// materialized relations exactly — the raw input of result-size feedback.
func TestExecutePlanJoinSizes(t *testing.T) {
	e := loadTriple(t, 11, 12, 8, 6, 40)
	p := triplePlan(cost.SortMerge, cost.GraceHash, false)
	res, err := e.ExecutePlan(p, []float64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Store().Drop(res.Output.Name)
	if len(res.JoinSizes) != 2 {
		t.Fatalf("want 2 join observations, got %v", res.JoinSizes)
	}
	ab, ok := res.JoinSizes[feedback.SetKey("A", "B")]
	if !ok || ab <= 0 {
		t.Fatalf("missing A+B observation: %v", res.JoinSizes)
	}
	abc, ok := res.JoinSizes[feedback.SetKey("A", "B", "C")]
	if !ok {
		t.Fatalf("missing A+B+C observation: %v", res.JoinSizes)
	}
	if got := float64(res.Output.NumPages()); abc != got {
		t.Fatalf("final join observation %v != output pages %v", abc, got)
	}
	// Sizes are shape-independent facts about the data: the mirrored join
	// order must observe the same final size.
	a := plan.NewScan("A", plan.AccessHeap, "", 1, 12)
	b := plan.NewScan("B", plan.AccessHeap, "", 1, 8)
	c := plan.NewScan("C", plan.AccessHeap, "", 1, 6)
	j1 := plan.NewJoin(cost.GraceHash, b, c, 10, plan.Order{})
	j2 := plan.NewJoin(cost.SortMerge, j1, a, 5, plan.Order{})
	res2, err := e.ExecutePlan(j2, []float64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Store().Drop(res2.Output.Name)
	if got := res2.JoinSizes[feedback.SetKey("A", "B", "C")]; got != abc {
		t.Fatalf("join order changed the observed size: %v vs %v", got, abc)
	}
}
