// Package lint is the repo's typed static-analysis suite: it parses and
// type-checks the whole module once (stdlib go/parser + go/types only, per
// the module's zero-dependency rule) and runs a registry of analyzers over
// every package, each emitting positioned diagnostics.
//
// The analyzers encode invariants the compiler cannot see but every
// empirical claim in BENCH_batch.json / BENCH_workload.json rests on:
// seeded randomness only (batch==sequential byte-identity), immutable
// dist.Dist/dist.Chain laws (memoized fingerprints assume laws never
// mutate), pure fingerprint inputs (drift-banded cache keys), no hardcoded
// DisableIndexes regressions (the serving plan space stays honest), and no
// silently dropped errors on the I/O-charging paths. See DESIGN.md
// "Static invariants" for the analyzer-to-claim map.
//
// Suppressions are explicit and justified: a finding may be waived only by
// a same-line or preceding-line directive
//
//	//leclint:allow <analyzer> -- <justification>
//
// and a directive with an empty justification is itself a finding.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Analyzer is one named invariant check. Run is invoked once per loaded
// unit (a package including its in-package test files, or an external
// _test package) and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run inspects one unit. Cross-unit state (e.g. a module-wide call
	// graph) is memoized on the Module.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one unit.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Unit     *Unit

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Module.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

// String renders the conventional file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full registry in a fixed order. Every analyzer
// listed here runs under cmd/leclint, the lint_test.go module gate, and
// the CI leclint lane.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		DistImmutAnalyzer,
		OptGuardAnalyzer,
		FingerprintPurityAnalyzer,
		ErrDropAnalyzer,
		PaperModelAnalyzer,
		ArenaEscapeAnalyzer,
	}
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over every unit of the module, applies the
// //leclint:allow directives (an unjustified directive is converted into a
// finding), and returns the surviving diagnostics sorted by position.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	collect := func(d Diagnostic) {
		d.File, d.Line, d.Column = d.Pos.Filename, d.Pos.Line, d.Pos.Column
		diags = append(diags, d)
	}
	for _, u := range m.Units {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Module: m, Unit: u, report: collect}
			a.Run(pass)
		}
	}
	diags = applyDirectives(m, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
