// Package determinism is a leclint fixture: every // want line seeds a
// violation the determinism analyzer must catch; the rest are true
// negatives that must stay silent.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// globalSource draws from the process-global source: forbidden.
func globalSource() int {
	return rand.Intn(6) // want `process-global source`
}

// globalFloat covers a second package-level helper.
func globalFloat() float64 {
	return rand.Float64() // want `process-global source`
}

// wallClockSeed seeds from the clock: forbidden even though New/NewSource
// are the blessed constructors.
func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall-clock seed`
}

// seededOK is the repo's canonical pattern: explicitly seeded, all draws
// through the local generator. True negative.
func seededOK(seed int64) (int, float64) {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6), rng.Float64()
}

// mapOrderEscapes appends map keys in iteration order and never sorts:
// the emitted slice differs run to run.
func mapOrderEscapes(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map range`
	}
	return keys
}

// mapOrderPrinted prints map entries in iteration order without sorting.
func mapOrderPrinted(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map range`
	}
}

// mapCollectThenSort is the canonical fix: collect, then sort. True
// negative — the enclosing function sorts.
func mapCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapAggregates folds map values commutatively; order never escapes.
// True negative.
func mapAggregates(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// mapCounted ranges without binding key or value. True negative.
func mapCounted(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
