// Package query is a leclint fixture shadowing lecopt/internal/query: the
// fppurity analyzer roots at Block.Canonical, so the global-RNG helper it
// reaches is a seeded violation.
package query

import (
	"math/rand"
	"sort"
	"strings"
)

// Block is a minimal stand-in for the real query block.
type Block struct {
	Tables []string
}

// Canonical is a purity entry point: dedup signatures must be pure.
func (b *Block) Canonical() string {
	tables := append([]string(nil), b.Tables...)
	sort.Strings(tables)
	return strings.Join(tables, ",") + tieBreak()
}

// tieBreak consults the global RNG from inside the signature.
func tieBreak() string {
	if rand.Float64() < 0.5 { // want `global RNG`
		return "|a"
	}
	return "|b"
}
