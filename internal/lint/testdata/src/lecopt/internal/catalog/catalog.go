// Package catalog is a leclint fixture shadowing lecopt/internal/catalog:
// the fppurity analyzer roots its call graph at Fingerprint/
// BandedFingerprint by import-path suffix, so the impure helpers reachable
// from them are seeded violations while unreachable twins stay silent.
package catalog

import (
	"fmt"
	"sort"
	"time"
)

// salt is package-level mutable state; reading it from a digest makes two
// identical catalogs hash differently across processes.
var salt = "s0"

// Catalog is a minimal stand-in.
type Catalog struct {
	tables map[string]int
}

// Fingerprint is a purity entry point: everything it reaches is checked.
func (c *Catalog) Fingerprint() string {
	return c.hashTables() + stamped() + c.emitUnsorted()
}

// BandedFingerprint is the second entry point; its helper is clean.
func (c *Catalog) BandedFingerprint(base float64) string {
	return c.emitSorted()
}

// hashTables reads package-level mutable state from inside the digest.
func (c *Catalog) hashTables() string {
	return salt // want `package-level mutable state`
}

// stamped consults the clock from inside the digest.
func stamped() string {
	return time.Now().String() // want `clock`
}

// emitUnsorted writes map-iteration-order-dependent bytes.
func (c *Catalog) emitUnsorted() string {
	out := ""
	for name, pages := range c.tables {
		out += fmt.Sprint(name, pages) // want `map-iteration-order`
	}
	return out
}

// emitSorted is the canonical collect-then-sort digest loop. True
// negative.
func (c *Catalog) emitSorted() string {
	names := make([]string, 0, len(c.tables))
	for name := range c.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		out += fmt.Sprint(name, c.tables[name])
	}
	return out
}

// unreachableClock is identical to stamped but never called from an entry
// point: purity rules do not apply. True negative.
func unreachableClock() string {
	return time.Now().String()
}
