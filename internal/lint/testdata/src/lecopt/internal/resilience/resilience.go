// Package resilience is a leclint fixture mirroring the real resilience
// layer's circuit-breaker logic: the decision path must run on the
// injected virtual clock, so any wall-clock seed (or global-source draw)
// in breaker code is a seeded violation the determinism analyzer must
// catch. True negatives show the blessed patterns: an injected clock and
// an explicitly seeded jitter source.
package resilience

import (
	"math/rand"
	"time"
)

// breaker is a stripped-down copy of the real count-window breaker.
type breaker struct {
	openedAt int64
	cooldown int64
	jitter   *rand.Rand
}

// newBreakerWallClock seeds the cooldown jitter from time.Now: the exact
// violation that would make two same-seed fleet runs diverge.
func newBreakerWallClock(cooldown int64) *breaker {
	return &breaker{
		cooldown: cooldown,
		jitter:   rand.New(rand.NewSource(time.Now().UnixNano())), // want `wall-clock seed`
	}
}

// newBreakerSeeded is the canonical fix: the caller supplies the seed.
// True negative.
func newBreakerSeeded(cooldown, seed int64) *breaker {
	return &breaker{
		cooldown: cooldown,
		jitter:   rand.New(rand.NewSource(seed)),
	}
}

// tripJitterGlobal draws trip jitter from the process-global source:
// forbidden.
func tripJitterGlobal(cooldown int64) int64 {
	return cooldown + rand.Int63n(cooldown) // want `process-global source`
}

// shouldHalfOpen decides on an injected virtual timestamp, never the wall
// clock. True negative.
func (b *breaker) shouldHalfOpen(now int64) bool {
	return now-b.openedAt >= b.cooldown+b.jitter.Int63n(b.cooldown+1)
}
