// Package engine is a leclint fixture shadowing lecopt/internal/engine:
// the errdrop analyzer covers the I/O-charging packages by import-path
// suffix, so the dropped errors here are seeded violations.
package engine

import (
	"errors"
	"fmt"
)

// readPage stands in for a charging I/O call.
func readPage(p int) (int, error) {
	if p < 0 {
		return 0, errors.New("bad page")
	}
	return p, nil
}

// flush stands in for an error-only call.
func flush() error { return nil }

// rowCount returns no error at all. Discarding it is fine.
func rowCount() int { return 42 }

// dropsExprStmt discards an error-only result as a bare statement.
func dropsExprStmt() {
	flush() // want `never checked`
}

// dropsBlank discards the error position with a blank.
func dropsBlank() int {
	n, _ := readPage(3) // want `assigned to _`
	return n
}

// dropsDefer loses the deferred call's error.
func dropsDefer() {
	defer flush() // want `deferred`
}

// dropsGo loses the spawned call's error.
func dropsGo() {
	go flush() // want `goroutine`
}

// handled checks every error. True negative.
func handled() (int, error) {
	n, err := readPage(3)
	if err != nil {
		return 0, err
	}
	if err := flush(); err != nil {
		return 0, err
	}
	return n, nil
}

// noError discards a result that carries no error. True negative.
func noError() {
	rowCount()
}

// waived carries a justified directive. True negative.
func waived() {
	//leclint:allow errdrop -- fixture: demonstrates a justified drop
	flush()
}

// conversionNotCall converts to an error type; conversions are not
// dropped calls. True negative.
func conversionNotCall(v error) {
	s := fmt.Sprint(error(v))
	_ = s
}
