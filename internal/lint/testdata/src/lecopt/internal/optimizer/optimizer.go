// Package optimizer is a leclint fixture shadowing the real optimizer
// package: just enough surface for the optguard and papermodel fixtures
// to build Options literals against.
package optimizer

import "lecopt/internal/cost"

// Options mirrors the real planning options.
type Options struct {
	DisableIndexes bool
	Workers        int
	CostModel      cost.Model
}
