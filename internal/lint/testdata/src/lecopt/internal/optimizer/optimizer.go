// Package optimizer is a leclint fixture shadowing the real optimizer
// package: just enough surface for the optguard fixture to build Options
// literals against.
package optimizer

// Options mirrors the real planning options.
type Options struct {
	DisableIndexes bool
	Workers        int
}
