package optimizer

// Arena-escape fixture: minimal shadows of the pooled DP scratch types.
// finishGood deep-copies the winner; finishBad and drainBad leak raw arena
// pointers into Results and are the seeded violations. finishHeap shares a
// node without Clone but never touches the scratch machinery, so it must
// stay silent — the heap-allocating passes own their nodes.

// Node stands in for plan.Node.
type Node struct {
	Left, Right *Node
}

// Clone deep-copies the node, as the real plan.Node.Clone does.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := *n
	out.Left = n.Left.Clone()
	out.Right = n.Right.Clone()
	return &out
}

// Result stands in for the real optimizer Result.
type Result struct {
	Plan *Node
	EC   float64
}

type entry struct {
	node  *Node
	score float64
}

type dpSlot struct {
	e  [2]entry
	ok [2]bool
}

type nodeArena struct {
	chunks [][]Node
}

func (a *nodeArena) alloc() *Node {
	if len(a.chunks) == 0 {
		a.chunks = append(a.chunks, make([]Node, 16))
	}
	return &a.chunks[0][0]
}

type dpWorker struct {
	arena nodeArena
}

type dpScratch struct {
	slots   []dpSlot
	workers []dpWorker
}

func getScratch() *dpScratch { return new(dpScratch) }

// finishGood returns the winner the only safe way.
func finishGood(sl *dpSlot) Result {
	best := sl.e[0]
	return Result{Plan: best.node.Clone(), EC: best.score}
}

// finishBad leaks an arena node straight into the Result.
func finishBad(sl *dpSlot) Result {
	best := sl.e[0]
	return Result{Plan: best.node, EC: best.score} // want `must never escape into a Result`
}

// drainBad builds a node from a worker's arena and returns it raw.
func drainBad(w *dpWorker) Result {
	n := w.arena.alloc()
	return Result{Plan: n} // want `must never escape into a Result`
}

// errResult returns an empty Result from a scratch-touching function;
// no Plan field is set, so nothing is reported.
func errResult() (Result, error) {
	sc := getScratch()
	_ = sc
	return Result{}, nil
}

// finishHeap shares a heap node without Clone but never touches the
// scratch, so the analyzer must not fire.
func finishHeap(e entry) Result {
	return Result{Plan: e.node, EC: e.score}
}
