// Package dist is a leclint fixture shadowing lecopt/internal/dist: the
// distimmut analyzer matches on the import-path suffix, so the blessed
// constructors here may fill law fields while every other write is a
// seeded violation.
package dist

// Dist mirrors the real immutable law's shape.
type Dist struct {
	vals  []float64
	probs []float64
}

// Chain mirrors the real row-stochastic chain's shape.
type Chain struct {
	states []float64
	rows   [][]float64
}

// New is a blessed constructor: filling the fresh value is legal. True
// negative.
func New(vals, probs []float64) Dist {
	var d Dist
	for i := range vals {
		d.vals = append(d.vals, vals[i])
		d.probs = append(d.probs, probs[i])
	}
	if len(d.probs) > 0 {
		d.probs[0] = d.probs[0] // in-place fix-ups are constructor-only
	}
	return d
}

// Sticky is a blessed constructor for chains. True negative.
func Sticky(states []float64) *Chain {
	c := &Chain{states: states, rows: make([][]float64, len(states))}
	for i := range c.rows {
		c.rows[i] = make([]float64, len(states))
		c.rows[i][i] = 1
	}
	return c
}

// scaleInPlace mutates through a value receiver: the backing slices are
// shared, so this rewrites the original law.
func (d Dist) scaleInPlace(f float64) {
	for i := range d.vals {
		d.vals[i] *= f // want `laws are immutable`
	}
}

// reweight mutates through a pointer: equally forbidden outside the
// constructors.
func reweight(d *Dist, p float64) {
	d.probs[0] = p // want `laws are immutable`
}

// truncate replaces a law's backing slice wholesale.
func truncate(d *Dist, n int) {
	d.vals = d.vals[:n] // want `laws are immutable`
}

// bump uses an IncDecStmt, which is still a write.
func bump(c *Chain) {
	c.rows[0][0]++ // want `laws are immutable`
}

// holder embeds a law by value; writes through the outer struct still hit
// the law's backing arrays.
type holder struct {
	law Dist
}

// pokeNested writes through a nested selector chain.
func (h *holder) pokeNested() {
	h.law.probs[0] = 0.5 // want `laws are immutable`
}

// rebuild is the lawful alternative: construct a fresh value. True
// negative — writes land on locals, not Dist/Chain fields.
func rebuild(d Dist, f float64) Dist {
	vals := make([]float64, len(d.vals))
	probs := make([]float64, len(d.probs))
	for i := range d.vals {
		vals[i] = d.vals[i] * f
		probs[i] = d.probs[i]
	}
	return New(vals, probs)
}
