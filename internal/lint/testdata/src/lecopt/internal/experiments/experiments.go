// Package experiments is a leclint fixture: the golden-table package must
// keep costing with the paper model. References to cost.ModelEngine and
// explicit CostModel keys are seeded violations; the zero-value Options
// and explicit ModelPaper uses outside Options are true negatives.
package experiments

import (
	"lecopt/internal/cost"
	"lecopt/internal/optimizer"
)

// engineModel reaches for the engine-exact machine: forbidden here.
func engineModel() cost.Model {
	return cost.ModelEngine // want `ModelEngine`
}

// engineCharge smuggles the same reference through an Options key —
// both the key and the constant are reported.
func engineCharge() optimizer.Options {
	return optimizer.Options{CostModel: cost.ModelEngine} // want `CostModel` `ModelEngine`
}

// redundantPaper sets the key to its zero value: still a finding — the
// zero value is the contract, an explicit key invites the wrong edit.
func redundantPaper() optimizer.Options {
	return optimizer.Options{CostModel: cost.ModelPaper} // want `CostModel`
}

// zeroValue is the lawful pattern: Options defaults to the paper model
// by construction. True negative.
func zeroValue() optimizer.Options {
	return optimizer.Options{}
}

// paperOutsideOptions mentions the paper constant directly (e.g. in an
// assertion message). True negative.
func paperOutsideOptions() cost.Model {
	return cost.ModelPaper
}

// otherFields sets unrelated Options fields. True negative.
func otherFields(heapOnly bool) optimizer.Options {
	return optimizer.Options{DisableIndexes: heapOnly}
}

// waived carries a justified directive — e.g. a test that pins the two
// models apart on purpose.
func waived() cost.Model {
	//leclint:allow papermodel -- fixture: justified model-contrast arm stays silent
	return cost.ModelEngine
}
