// Package cost is a leclint fixture shadowing the real cost package:
// just the model-selector surface the papermodel fixture needs.
package cost

// Model selects which machine the join formulas describe.
type Model uint8

// Model values mirroring the real package: ModelPaper is deliberately
// the zero value.
const (
	ModelPaper Model = iota
	ModelEngine
)
