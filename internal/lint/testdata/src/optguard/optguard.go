// Package optguard is a leclint fixture: hardcoded DisableIndexes: true
// literals are seeded violations; spec-driven values and justified allow
// directives are true negatives.
package optguard

import "lecopt/internal/optimizer"

// hardcoded shrinks the plan space with a literal: forbidden.
func hardcoded() optimizer.Options {
	return optimizer.Options{DisableIndexes: true} // want `hardcoded`
}

// hardcodedMultiField hides the literal among other fields.
func hardcodedMultiField() optimizer.Options {
	return optimizer.Options{Workers: 4, DisableIndexes: true} // want `hardcoded`
}

// specDriven threads the decision through configuration: the lawful
// pattern. True negative.
func specDriven(heapOnly bool) optimizer.Options {
	return optimizer.Options{DisableIndexes: heapOnly}
}

// explicitFalse is harmless. True negative.
func explicitFalse() optimizer.Options {
	return optimizer.Options{DisableIndexes: false}
}

// unrelatedFields never mentions the flag. True negative.
func unrelatedFields() optimizer.Options {
	return optimizer.Options{Workers: 8}
}

// waived carries a justified directive, the one lawful way to keep a
// literal (e.g. a test whose point is the heap-only contrast).
func waived() optimizer.Options {
	//leclint:allow optguard -- fixture: justified comparison arm stays silent
	return optimizer.Options{DisableIndexes: true}
}

// unjustified shows a directive without a reason: the finding survives
// and the bare directive itself becomes a finding.
func unjustified() optimizer.Options {
	//leclint:allow optguard // want `no justification`
	return optimizer.Options{DisableIndexes: true} // want `hardcoded`
}
