package lint

import (
	"strings"
)

// allowPrefix introduces a suppression directive:
//
//	//leclint:allow <analyzer> -- <justification>
//
// A directive waives findings from <analyzer> on its own line or, when it
// stands alone on a line, on the next line. The justification is
// mandatory — a bare directive is converted into a finding of its own, so
// every suppression in the tree carries its reason next to it (the ISSUE's
// "no silent suppressions" rule).
const allowPrefix = "//leclint:allow"

// directive is one parsed allow comment.
type directive struct {
	analyzer      string
	justification string
	file          string
	line          int // line the directive sits on
}

// parseDirectives extracts every allow directive in the module, in
// deterministic order.
func parseDirectives(m *Module) []directive {
	var ds []directive
	for _, u := range m.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, allowPrefix)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					d := directive{file: pos.Filename, line: pos.Line}
					// A trailing "// ..." (e.g. a fixture's want
					// expectation) is not part of the directive.
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = rest[:i]
					}
					rest = strings.TrimSpace(rest)
					if name, just, ok := strings.Cut(rest, "--"); ok {
						d.analyzer = strings.TrimSpace(name)
						d.justification = strings.TrimSpace(just)
					} else {
						d.analyzer = strings.TrimSpace(rest)
					}
					ds = append(ds, d)
				}
			}
		}
	}
	return ds
}

// applyDirectives removes diagnostics waived by a well-formed directive
// and reports malformed directives (missing analyzer name, unknown
// analyzer, or empty justification) as findings so suppressions can never
// silently rot.
func applyDirectives(m *Module, diags []Diagnostic) []Diagnostic {
	var extra []Diagnostic
	emit := func(d Diagnostic) {
		d.Pos.Filename, d.Pos.Line, d.Pos.Column = d.File, d.Line, d.Column
		extra = append(extra, d)
	}
	ds := parseDirectives(m)
	valid := make([]directive, 0, len(ds))
	for _, d := range ds {
		switch {
		case d.analyzer == "":
			emit(Diagnostic{
				Analyzer: "leclint", File: d.file, Line: d.line, Column: 1,
				Message: "allow directive names no analyzer (want //leclint:allow <analyzer> -- <justification>)",
			})
		case ByName(d.analyzer) == nil:
			emit(Diagnostic{
				Analyzer: "leclint", File: d.file, Line: d.line, Column: 1,
				Message: "allow directive names unknown analyzer " + d.analyzer,
			})
		case d.justification == "":
			emit(Diagnostic{
				Analyzer: "leclint", File: d.file, Line: d.line, Column: 1,
				Message: "allow directive for " + d.analyzer + " has no justification — suppressions must say why",
			})
		default:
			valid = append(valid, d)
		}
	}
	kept := diags[:0]
	for _, diag := range diags {
		waived := false
		for _, d := range valid {
			if d.analyzer == diag.Analyzer && d.file == diag.File &&
				(d.line == diag.Line || d.line == diag.Line-1) {
				waived = true
				break
			}
		}
		if !waived {
			kept = append(kept, diag)
		}
	}
	return append(kept, extra...)
}
