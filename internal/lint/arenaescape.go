package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ArenaEscapeAnalyzer guards the pooled-DP-scratch contract introduced by
// the zero-alloc hot path: the optimizer's dynamic program builds its join
// nodes in per-worker arenas that are zeroed and recycled when the scratch
// returns to its sync.Pool, so a plan assigned into a Result must be
// deep-copied first — a raw arena pointer in a Result is a use-after-reset
// that manifests as a silently mutated plan on some later optimization.
// The check is deliberately narrow: only functions that touch the scratch
// machinery (dpScratch, dpWorker, nodeArena, dpSlot, getScratch) are held
// to it, so the heap-allocating passes (top-c, distributional, exhaustive)
// stay free to share their nodes.
var ArenaEscapeAnalyzer = &Analyzer{
	Name: "arenaescape",
	Doc:  "plans leaving DP-scratch-touching optimizer functions via Result must be Clone()d; arena nodes are recycled on release",
	Run:  runArenaEscape,
}

// scratchTypeNames are the pooled-scratch types whose presence marks a
// function as arena-touching.
var scratchTypeNames = map[string]bool{
	"dpScratch": true,
	"dpWorker":  true,
	"nodeArena": true,
	"dpSlot":    true,
}

func runArenaEscape(pass *Pass) {
	if !strings.HasSuffix(pass.Unit.Path, "internal/optimizer") {
		return
	}
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !touchesScratch(info, fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok || !isOptimizerResult(info, lit) {
					return true
				}
				for _, el := range lit.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Plan" {
						continue
					}
					if !isClonedPlan(kv.Value) {
						pass.Reportf(kv.Pos(),
							"Result.Plan set without Clone() in a function that touches the pooled DP scratch — arena nodes are recycled on release and must never escape into a Result")
					}
				}
				return true
			})
		}
	}
}

// touchesScratch reports whether the function mentions any pooled-scratch
// type or calls getScratch.
func touchesScratch(info *types.Info, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "getScratch" {
			found = true
			return false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && obj.Type() != nil && isScratchType(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isScratchType unwraps pointers and slices and reports whether the core
// named type is one of the pooled-scratch types.
func isScratchType(t types.Type) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Named:
			return scratchTypeNames[tt.Obj().Name()]
		default:
			return false
		}
	}
}

// isOptimizerResult reports whether the composite literal's type is the
// optimizer package's Result struct.
func isOptimizerResult(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Result" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/optimizer")
}

// isClonedPlan accepts nil and any *.Clone(...) call as a safe Plan value.
func isClonedPlan(e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Clone"
}
