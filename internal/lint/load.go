package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Unit is one loaded analysis unit: a package together with its in-package
// test files, or an external _test package. Units are what analyzers see.
type Unit struct {
	// Path is the import path ("lecopt/internal/dist"; external test
	// packages carry a "_test" suffix).
	Path string
	// Files are the type-checked syntax trees, with comments.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the type-checker's expression/identifier facts.
	Info *types.Info
}

// Module is a fully parsed and type-checked set of units sharing one
// FileSet. Analyzers may memoize module-wide indexes (e.g. a call graph)
// in the cache.
type Module struct {
	// Root is the directory the module was loaded from.
	Root string
	// Fset positions every file in every unit.
	Fset *token.FileSet
	// Units lists analysis units in deterministic (path) order.
	Units []*Unit

	cache sync.Map // analyzer-private memoized indexes, keyed by string
}

// Cached memoizes a module-wide index under key: the first caller's build
// result is stored and every later caller receives it.
func (m *Module) Cached(key string, build func() any) any {
	if v, ok := m.cache.Load(key); ok {
		return v
	}
	v := build()
	actual, _ := m.cache.LoadOrStore(key, v)
	return actual
}

// TestFile reports whether pos lies in a _test.go file.
func (m *Module) TestFile(pos token.Pos) bool {
	return strings.HasSuffix(m.Fset.Position(pos).Filename, "_test.go")
}

// loader resolves import paths against an ordered list of source roots
// (earlier roots shadow later ones — the fixture harness puts its
// testdata/src tree first) and falls back to the stdlib source importer.
// Each package is type-checked twice: a pure (non-test) variant used to
// resolve imports, which breaks the test-import cycles `go test` breaks
// the same way, and an augmented variant including in-package test files,
// which is what analyzers inspect.
type loader struct {
	fset  *token.FileSet
	roots []srcRoot
	std   types.Importer
	pure  map[string]*types.Package
	files map[string][]*ast.File // parsed non-test files per path
	tests map[string][]*ast.File // parsed test files per path
	ctx   build.Context
}

// srcRoot maps the import-path prefix to a directory tree of packages.
type srcRoot struct {
	prefix string // "" or "lecopt"
	dir    string
}

func newLoader(roots []srcRoot) *loader {
	fset := token.NewFileSet()
	ctx := build.Default
	// The loader reads files itself; the context is used only for build
	// -constraint evaluation (skip //go:build race files, _goos suffixes).
	return &loader{
		fset:  fset,
		roots: roots,
		std:   importer.ForCompiler(fset, "source", nil),
		pure:  map[string]*types.Package{},
		files: map[string][]*ast.File{},
		tests: map[string][]*ast.File{},
		ctx:   ctx,
	}
}

// dirFor resolves an import path to a directory, if any root contains it.
func (l *loader) dirFor(path string) (string, bool) {
	for _, r := range l.roots {
		rel := path
		if r.prefix != "" {
			if path == r.prefix {
				rel = "."
			} else if strings.HasPrefix(path, r.prefix+"/") {
				rel = strings.TrimPrefix(path, r.prefix+"/")
			} else {
				continue
			}
		}
		dir := filepath.Join(r.dir, filepath.FromSlash(rel))
		if ents, err := os.ReadDir(dir); err == nil {
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					return dir, true
				}
			}
		}
	}
	return "", false
}

// parseDir parses the buildable .go files of dir into non-test and test
// lists, memoized per import path.
func (l *loader) parseDir(path, dir string) error {
	if _, done := l.files[path]; done {
		return nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files, tests []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if ok, err := l.ctx.MatchFile(dir, name); err != nil || !ok {
			continue // excluded by build constraints (e.g. //go:build race)
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, f)
		} else {
			files = append(files, f)
		}
	}
	l.files[path], l.tests[path] = files, tests
	return nil
}

// Import type-checks the pure variant of path (module-local or stdlib),
// implementing types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pure[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return l.std.Import(path)
	}
	if err := l.parseDir(path, dir); err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, l.files[path], nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	l.pure[path] = pkg
	return pkg, nil
}

// newInfo allocates the fact maps analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// loadUnits produces the analysis units for path: the augmented package
// (pure + in-package test files) and, if present, the external _test
// package. The pure variant must already be checked.
func (l *loader) loadUnits(path string) ([]*Unit, error) {
	files, tests := l.files[path], l.tests[path]
	base := ""
	if len(files) > 0 {
		base = files[0].Name.Name
	} else if len(tests) > 0 {
		base = strings.TrimSuffix(tests[0].Name.Name, "_test")
	}
	var inPkg, extPkg []*ast.File
	for _, f := range tests {
		if f.Name.Name == base {
			inPkg = append(inPkg, f)
		} else {
			extPkg = append(extPkg, f)
		}
	}
	var units []*Unit
	if len(files)+len(inPkg) > 0 {
		all := append(append([]*ast.File{}, files...), inPkg...)
		info := newInfo()
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.fset, all, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s (with tests): %w", path, err)
		}
		units = append(units, &Unit{Path: path, Files: all, Pkg: pkg, Info: info})
	}
	if len(extPkg) > 0 {
		info := newInfo()
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path+"_test", l.fset, extPkg, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s_test: %w", path, err)
		}
		units = append(units, &Unit{Path: path + "_test", Files: extPkg, Pkg: pkg, Info: info})
	}
	return units, nil
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	src, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(src), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// discoverPackages walks a root and returns the import paths of every
// directory containing .go files, skipping testdata and hidden trees.
func discoverPackages(prefix, root string) ([]string, error) {
	seen := map[string]bool{}
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && p != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := prefix
		if rel != "." {
			ip = joinPath(prefix, filepath.ToSlash(rel))
		}
		if !seen[ip] {
			seen[ip] = true
			paths = append(paths, ip)
		}
		return nil
	})
	sort.Strings(paths)
	return paths, err
}

// joinPath joins import-path elements, tolerating an empty prefix.
func joinPath(prefix, rel string) string {
	if prefix == "" {
		return rel
	}
	return prefix + "/" + rel
}

// LoadModule parses and type-checks every package of the module rooted at
// (or above) dir, including test files, and returns the analysis units.
// The result is independent of load order: units come back sorted by path.
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	l := newLoader([]srcRoot{{prefix: mod, dir: root}})
	paths, err := discoverPackages(mod, root)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Fset: l.fset}
	for _, p := range paths {
		if _, err := l.Import(p); err != nil {
			return nil, err
		}
		units, err := l.loadUnits(p)
		if err != nil {
			return nil, err
		}
		m.Units = append(m.Units, units...)
	}
	return m, nil
}

// LoadFixture type-checks the fixture package at importPath under
// srcDir/src (the analysistest-style layout: srcDir/src/<importPath>/*.go).
// Fixture-local packages shadow module and stdlib packages, so fixtures
// can stand in for real paths like lecopt/internal/dist. Only the
// requested package becomes a unit; its fixture-local dependencies are
// type-checked but not analyzed.
func LoadFixture(srcDir, importPath string) (*Module, error) {
	l := newLoader([]srcRoot{{prefix: "", dir: filepath.Join(srcDir, "src")}})
	if _, err := l.Import(importPath); err != nil {
		return nil, err
	}
	m := &Module{Root: srcDir, Fset: l.fset}
	units, err := l.loadUnits(importPath)
	if err != nil {
		return nil, err
	}
	m.Units = units
	return m, nil
}
