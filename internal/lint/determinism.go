package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismAnalyzer pins the repo-wide reproducibility contract that the
// differential corpus, the golden E1–E20 tables and the batch==sequential
// byte-identity proof all assume:
//
//  1. every use of math/rand flows through an explicitly seeded
//     rand.New(rand.NewSource(seed)) generator — the package-level helpers
//     (rand.Intn, rand.Float64, …) draw from a process-global source;
//  2. no seed is derived from the wall clock (rand.NewSource(time.Now()…)
//     smuggles nondeterminism past rule 1);
//  3. no range over a map emits its iteration-order-dependent keys or
//     values (via append or fmt printing) from a function that never
//     sorts — Go randomizes map iteration order per run, so such output
//     differs run to run.
//
// This analyzer subsumes the old regex-based TestNoUnseededRand scan and
// is type-resolved: rng.Intn on a *rand.Rand value is fine, rand.Intn on
// the global source is not, and aliased or dot imports cannot hide a call.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "seeded randomness only: no global math/rand source, no wall-clock seeds, no unsorted map-order emission",
	Run:  runDeterminism,
}

// seededConstructors are the math/rand entry points that are fine at
// package level because they only build explicitly seeded generators.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 spellings, should the module ever migrate.
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an explicit *rand.Rand / Source value
			}
			if !seededConstructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"%s.%s draws from the process-global source; use an explicitly seeded rand.New(rand.NewSource(seed))",
					path, fn.Name())
				return true
			}
			// Rule 2: a seeded constructor fed from the wall clock.
			for _, arg := range call.Args {
				if now := findTimeNow(info, arg); now != nil {
					pass.Reportf(now.Pos(),
						"wall-clock seed: %s.%s derives its seed from time.Now, which destroys run-to-run reproducibility",
						path, fn.Name())
				}
			}
			return true
		})
		checkMapOrderEmission(pass, f)
	}
}

// calleeFunc resolves a call's static callee, or nil (builtin, func value,
// type conversion, unresolved interface method).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// findTimeNow returns the first time.Now call inside expr, if any. It
// does not descend into nested seeded-constructor calls — those are
// visited (and reported) in their own right, so rand.New(rand.NewSource(
// time.Now().UnixNano())) yields exactly one finding.
func findTimeNow(info *types.Info, expr ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" {
				found = call
				return false
			}
		case "math/rand", "math/rand/v2":
			if seededConstructors[fn.Name()] {
				return false // reported when the walker reaches it directly
			}
		}
		return true
	})
	return found
}

// checkMapOrderEmission implements rule 3 for every function in the file.
// The heuristic is deliberately conservative: a range over a map is
// flagged only when its body appends the loop key/value (or data derived
// from them in the same expression) to a slice, or prints them through
// fmt, while the enclosing function contains no sort call at all. A
// function that collects keys and sorts them — the repo's canonical
// pattern — is never flagged.
func checkMapOrderEmission(pass *Pass, f *ast.File) {
	info := pass.Unit.Info
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if functionSorts(info, fd.Body) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			loopVars := rangeVarObjects(info, rng)
			if len(loopVars) == 0 {
				return true // `for range m`: order cannot escape
			}
			if pos, what := findOrderEmission(info, rng.Body, loopVars); pos.IsValid() {
				pass.Reportf(pos,
					"%s inside a map range emits iteration-order-dependent data and the enclosing function never sorts; sort the emitted slice (or iterate over sorted keys)",
					what)
				return false
			}
			return true
		})
	}
}

// functionSorts reports whether body contains any call into sort or
// slices' sorting functions.
func functionSorts(info *types.Info, body *ast.BlockStmt) bool {
	sorts := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorts {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort":
				sorts = true
			case "slices":
				if len(fn.Name()) >= 4 && fn.Name()[:4] == "Sort" {
					sorts = true
				}
			}
		}
		return !sorts
	})
	return sorts
}

// rangeVarObjects returns the objects bound to the range's key/value.
func rangeVarObjects(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var objs []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			objs = append(objs, obj)
		} else if obj := info.Uses[id]; obj != nil {
			objs = append(objs, obj) // `k = range m` over a pre-declared var
		}
	}
	return objs
}

// findOrderEmission scans a map-range body for an append or fmt call whose
// arguments reference a loop variable, returning its position and a label.
func findOrderEmission(info *types.Info, body *ast.BlockStmt, loopVars []types.Object) (pos token.Pos, what string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		label := ""
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				label = "append"
			}
		}
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			label = "fmt." + fn.Name()
		}
		if label == "" {
			return true
		}
		for _, arg := range call.Args {
			if referencesAny(info, arg, loopVars) {
				pos, what = call.Pos(), label
				return false
			}
		}
		return true
	})
	return pos, what
}

// referencesAny reports whether expr mentions any of the given objects.
func referencesAny(info *types.Info, expr ast.Expr, objs []types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			use := info.Uses[id]
			for _, o := range objs {
				if use == o {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
