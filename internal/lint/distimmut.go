package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DistImmutAnalyzer enforces the dist.Dist / dist.Chain immutability law.
// Memoized catalog fingerprints, the plan cache's env-law digests and the
// batch dedup keys all assume a law never changes after construction; a
// single in-place mutation silently poisons every cache keyed on it.
//
// The compiler already stops other packages from touching the unexported
// fields, but it cannot stop code *inside* internal/dist — and because
// Dist has value receivers over shared backing slices, an innocent-looking
// `d.vals[i] *= f` in a new method would mutate the original law, not a
// copy. So the rule is: a write to a Dist/Chain field (or through its
// backing slices) is legal only inside the blessed constructors, which
// fill a fresh, unshared value before it escapes:
//
//	dist.New        — builds the merged, normalized law
//	dist.Sticky     — fills the fresh chain's rows
//	dist.RandomWalk — fills the fresh chain's rows
//
// Everything else — new dist code, test setup, any other package that
// somehow obtains access — must build a new law instead.
var DistImmutAnalyzer = &Analyzer{
	Name: "distimmut",
	Doc:  "dist.Dist/dist.Chain laws are immutable after construction; only the blessed constructors may write their fields",
	Run:  runDistImmut,
}

// distConstructors may fill the fields of a law they are constructing.
// Only free functions declared in internal/dist itself qualify.
var distConstructors = map[string]bool{
	"New": true, "Sticky": true, "RandomWalk": true,
}

func runDistImmut(pass *Pass) {
	info := pass.Unit.Info
	inDist := strings.HasSuffix(pass.Unit.Path, "internal/dist")
	for _, f := range pass.Unit.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := inDist && fd.Recv == nil && distConstructors[fd.Name.Name]
			if exempt {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						checkLawWrite(pass, info, lhs)
					}
				case *ast.IncDecStmt:
					checkLawWrite(pass, info, st.X)
				}
				return true
			})
		}
	}
}

// checkLawWrite reports lhs if the written location is a field of a
// Dist/Chain value (directly, or through index/deref chains into its
// backing slices).
func checkLawWrite(pass *Pass, info *types.Info, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			sel, ok := info.Selections[e]
			if ok && sel.Kind() == types.FieldVal && isLawType(sel.Recv()) {
				pass.Reportf(e.Pos(),
					"write to %s field %s outside a dist constructor — laws are immutable, build a fresh Dist/Chain instead",
					lawTypeName(sel.Recv()), e.Sel.Name)
				return
			}
			lhs = e.X // keep walking: x.law.vals is a write into a law too
		default:
			return
		}
	}
}

// isLawType reports whether t (after pointer unwrapping) is dist.Dist or
// dist.Chain from an internal/dist package.
func isLawType(t types.Type) bool { return lawTypeName(t) != "" }

// lawTypeName names the law type ("dist.Dist"/"dist.Chain"), or "".
func lawTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/dist") {
		return ""
	}
	switch named.Obj().Name() {
	case "Dist", "Chain":
		return "dist." + named.Obj().Name()
	}
	return ""
}
