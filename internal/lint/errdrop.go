package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDropAnalyzer bans discarded error returns in the packages that charge
// I/O: internal/engine, internal/storage and internal/buffer. Both BENCH
// artifacts report PhaseIO totals measured by these packages; an error
// silently dropped on a read/walk/fetch path means the corresponding I/O
// was mis-charged (or a failure mis-read as cheap execution), corrupting
// exactly the realized-cost numbers the LEC<=LSC claims are pinned to.
//
// Flagged forms, in non-test files of the covered packages:
//
//	f(...)        // expression statement whose callee returns an error
//	x, _ := f(...) // error position assigned to blank
//	defer f(...)  // deferred call whose error vanishes
//	go f(...)     // spawned call whose error vanishes
//
// Intentional drops must carry //leclint:allow errdrop -- <why>.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "no discarded error returns in internal/engine, internal/storage, internal/buffer (the I/O-charging paths)",
	Run:  runErrDrop,
}

// errDropPackages are the covered import-path suffixes.
var errDropPackages = []string{
	"internal/engine", "internal/storage", "internal/buffer",
}

func runErrDrop(pass *Pass) {
	covered := false
	p := strings.TrimSuffix(pass.Unit.Path, "_test")
	for _, suffix := range errDropPackages {
		if strings.HasSuffix(p, suffix) {
			covered = true
			break
		}
	}
	if !covered {
		return
	}
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		if pass.Module.TestFile(f.Pos()) {
			continue // test files assert through t.Fatal; production paths only
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, info, call, "result of call discarded")
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, info, st.Call, "deferred call's error discarded")
			case *ast.GoStmt:
				checkDroppedCall(pass, info, st.Call, "goroutine call's error discarded")
			case *ast.AssignStmt:
				checkBlankError(pass, info, st)
			}
			return true
		})
	}
}

// checkDroppedCall reports call if its result set includes an error.
func checkDroppedCall(pass *Pass, info *types.Info, call *ast.CallExpr, label string) {
	if i := errResultIndex(info, call); i >= 0 {
		pass.Reportf(call.Pos(), "%s: %s returns an error that is never checked — on the I/O-charging paths a dropped error miscounts the work the BENCH artifacts report",
			label, callName(call))
	}
}

// checkBlankError reports `..., _ = f(...)` where the blank sits in an
// error-typed result position.
func checkBlankError(pass *Pass, info *types.Info, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok || len(st.Lhs) < 2 {
		return
	}
	i := errResultIndex(info, call)
	if i < 0 || i >= len(st.Lhs) {
		return
	}
	if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(), "error result of %s assigned to _ — handle it or justify with an allow directive",
			callName(call))
	}
}

// errResultIndex returns the index of the error-typed result of call, or
// -1 if the call returns no error (or is a conversion/builtin).
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(tv.Type) {
			// Distinguish a call returning error from a conversion to an
			// error type: conversions have a type operand, calls a func.
			if _, isConv := info.Types[call.Fun]; isConv && info.Types[call.Fun].IsType() {
				return -1
			}
			return 0
		}
	}
	return -1
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callName renders a short name for diagnostics (pkg.F, recv.M, or the
// expression's last identifier).
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
