package lint

import (
	"strings"
	"sync"
	"testing"
)

// fixture runs one analyzer over a testdata/src fixture package and
// verifies the // want expectations: each seeded violation must be
// reported, each true negative must stay silent.
func fixture(t *testing.T, importPath string, analyzers ...string) {
	t.Helper()
	m, err := LoadFixture("testdata", importPath)
	if err != nil {
		t.Fatal(err)
	}
	var as []*Analyzer
	for _, name := range analyzers {
		a := ByName(name)
		if a == nil {
			t.Fatalf("unknown analyzer %q", name)
		}
		as = append(as, a)
	}
	for _, problem := range CheckFixture(m, as) {
		t.Error(problem)
	}
}

func TestDeterminismFixture(t *testing.T) {
	fixture(t, "determinism", "determinism")
}

// TestResilienceFixture seeds the violation the resilience layer is most
// at risk of: breaker logic reaching for the wall clock instead of the
// injected virtual clock.
func TestResilienceFixture(t *testing.T) {
	fixture(t, "lecopt/internal/resilience", "determinism")
}

func TestDistImmutFixture(t *testing.T) {
	fixture(t, "lecopt/internal/dist", "distimmut")
}

func TestOptGuardFixture(t *testing.T) {
	fixture(t, "optguard", "optguard")
}

func TestFingerprintPurityCatalogFixture(t *testing.T) {
	fixture(t, "lecopt/internal/catalog", "fppurity")
}

func TestFingerprintPurityCanonicalFixture(t *testing.T) {
	fixture(t, "lecopt/internal/query", "fppurity")
}

func TestErrDropFixture(t *testing.T) {
	fixture(t, "lecopt/internal/engine", "errdrop")
}

func TestPaperModelFixture(t *testing.T) {
	fixture(t, "lecopt/internal/experiments", "papermodel")
}

// TestArenaEscapeFixture seeds the use-after-reset the pooled DP scratch
// makes possible: a raw arena node leaking into a Result.
func TestArenaEscapeFixture(t *testing.T) {
	fixture(t, "lecopt/internal/optimizer", "arenaescape")
}

// moduleOnce loads and type-checks the real module once per test binary.
var moduleOnce = sync.OnceValues(func() (*Module, error) {
	return LoadModule(".")
})

// RepoModule returns the loaded real module for tests (here and in the
// thin shims that other packages keep: determinism_test.go at the root,
// optsguard_test.go under internal/workload).
func RepoModule(t *testing.T) *Module {
	t.Helper()
	m, err := moduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestModuleInvariants is the gate that makes plain `go test ./...` fail
// on any leclint finding, mirroring the CI `go run ./cmd/leclint ./...`
// lane.
func TestModuleInvariants(t *testing.T) {
	diags := Run(RepoModule(t), Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d invariant violation(s); fix them or add a justified //leclint:allow directive", len(diags))
	}
}

// TestModuleCoverage guards the audit's own reach: the loader must keep
// seeing the packages whose invariants the analyzers exist to protect. A
// future skip-rule tweak that silently exempts one of these would gut the
// suite exactly where it matters.
func TestModuleCoverage(t *testing.T) {
	m := RepoModule(t)
	seen := map[string]bool{}
	for _, u := range m.Units {
		seen[u.Path] = true
	}
	for _, mustSee := range []string{
		"lecopt",
		"lecopt/cmd/lecbench",
		"lecopt/internal/catalog",
		"lecopt/internal/core",
		"lecopt/internal/dist",
		"lecopt/internal/engine",
		"lecopt/internal/envsim",
		"lecopt/internal/feedback",
		"lecopt/internal/optimizer",
		"lecopt/internal/plancache",
		"lecopt/internal/pool",
		"lecopt/internal/histo",
		"lecopt/internal/query",
		"lecopt/internal/resilience",
		"lecopt/internal/storage",
		"lecopt/internal/workload",
		"lecopt/internal/workload/fleet",
		"lecopt/internal/workload/serving",
	} {
		if !seen[mustSee] {
			t.Errorf("module load no longer covers %s", mustSee)
		}
	}
}

// TestRegistry pins the analyzer roster: the suite's invariants must all
// stay registered, and names must be unique (directives key on them).
func TestRegistry(t *testing.T) {
	want := []string{"determinism", "distimmut", "optguard", "fppurity", "errdrop", "papermodel", "arenaescape"}
	got := map[string]bool{}
	for _, a := range Analyzers() {
		if got[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		got[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc line", a.Name)
		}
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("analyzer %q missing from registry", name)
		}
	}
}

// TestDirectiveValidation pins the no-silent-suppressions rule end to
// end on the optguard fixture, which seeds both a justified (waiving)
// and an unjustified (non-waiving, self-reported) directive.
func TestDirectiveValidation(t *testing.T) {
	m, err := LoadFixture("testdata", "optguard")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, []*Analyzer{ByName("optguard")})
	var sawUnjustified, sawSurvivor bool
	for _, d := range diags {
		if d.Analyzer == "leclint" && strings.Contains(d.Message, "no justification") {
			sawUnjustified = true
		}
		if d.Analyzer == "optguard" {
			sawSurvivor = true
		}
	}
	if !sawUnjustified {
		t.Error("unjustified allow directive was not itself reported")
	}
	if !sawSurvivor {
		t.Error("optguard findings should survive an unjustified directive")
	}
}
