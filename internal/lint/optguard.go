package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// OptGuardAnalyzer generalizes the old internal/workload AST guard to the
// whole module: since PR 5 the executor has a real index access path, so
// no optimizer.Options composite literal may hardcode DisableIndexes: true
// and quietly shrink the plan space again. Heap-only runs are a *spec*
// decision — MixSpec.DisableIndexes, `lecbench -workload -noindex` —
// threaded through Mix.planOpts, never a literal. The lawful exceptions
// (explicit heap-only comparison arms in tests, whose point is the
// contrast itself) carry a justified //leclint:allow optguard directive.
var OptGuardAnalyzer = &Analyzer{
	Name: "optguard",
	Doc:  "no hardcoded optimizer.Options{DisableIndexes: true}; heap-only runs are spec decisions",
	Run:  runOptGuard,
}

func runOptGuard(pass *Pass) {
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isOptimizerOptions(info, lit) {
				return true
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "DisableIndexes" {
					continue
				}
				if tv, ok := info.Types[kv.Value]; ok && tv.Value != nil &&
					tv.Value.Kind() == constant.Bool && constant.BoolVal(tv.Value) {
					pass.Reportf(kv.Pos(),
						"hardcoded optimizer.Options{DisableIndexes: true} — route heap-only runs through the workload spec (MixSpec.DisableIndexes / -noindex), not a literal")
				}
			}
			return true
		})
	}
}

// isOptimizerOptions reports whether the composite literal's type is the
// optimizer package's Options struct (resolved through the type-checker,
// so aliases and dot imports cannot hide it).
func isOptimizerOptions(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Options" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/optimizer")
}
