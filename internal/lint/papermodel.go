package lint

import (
	"go/ast"
	"strings"
)

// PaperModelAnalyzer guards the golden tables' cost machine: since the
// engine-exact grace-hash model (cost.ModelEngine) exists, the serving
// path opts into it, but internal/experiments must keep costing with the
// paper's formulas — the E1–E20 tables are *defined* by them, and
// cost.ModelPaper is deliberately the zero value so the experiments get
// it by construction. Two patterns would silently break that: referring
// to cost.ModelEngine at all, or setting the optimizer.Options.CostModel
// key in a composite literal (even to ModelPaper — the zero value is the
// contract, an explicit key invites the wrong edit). Both are findings
// inside any package whose import path ends in internal/experiments,
// including its test files.
var PaperModelAnalyzer = &Analyzer{
	Name: "papermodel",
	Doc:  "internal/experiments costs with the paper model: no cost.ModelEngine, no CostModel key",
	Run:  runPaperModel,
}

func runPaperModel(pass *Pass) {
	if !strings.HasSuffix(strings.TrimSuffix(pass.Unit.Path, "_test"), "internal/experiments") {
		return
	}
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := info.Uses[n]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if obj.Name() == "ModelEngine" && strings.HasSuffix(obj.Pkg().Path(), "internal/cost") {
					pass.Reportf(n.Pos(),
						"cost.ModelEngine referenced in internal/experiments — the published E1–E20 tables are defined by the paper formulas; engine-exact charging belongs to the serving path")
				}
			case *ast.CompositeLit:
				if !isOptimizerOptions(info, n) {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "CostModel" {
						pass.Reportf(kv.Pos(),
							"optimizer.Options.CostModel set in internal/experiments — experiments rely on the zero value (cost.ModelPaper) to keep the golden tables byte-identical")
					}
				}
			}
			return true
		})
	}
}
