package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// wantRe matches the fixture expectation syntax: one or more
// backquote-free, double-quoted regexps after a `// want` marker, in
// the spirit of go/analysis's analysistest:
//
//	rand.Intn(6) // want `global source`
//	x, y := f()  // want "dropped" "twice"
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// expectation is one // want regexp on one fixture line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// CheckFixture runs the given analyzers over the fixture module and
// verifies its diagnostics against the fixture's // want comments: every
// diagnostic must match a // want regexp on its line, and every // want
// must be hit exactly once. Returns a list of mismatch descriptions
// (empty on success) — the caller turns them into test failures, which
// keeps this harness free of a testing dependency.
func CheckFixture(m *Module, analyzers []*Analyzer) []string {
	var wants []*expectation
	for _, u := range m.Units {
		for _, f := range u.Files {
			wants = append(wants, parseWants(m.Fset, f)...)
		}
	}
	var problems []string
	for _, d := range Run(m, analyzers) {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern))
		}
	}
	return problems
}

// parseWants extracts the // want expectations of one fixture file.
func parseWants(fset *token.FileSet, f *ast.File) []*expectation {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "// want ")
			if idx < 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					// Surface the broken pattern as an unmatchable want.
					re = regexp.MustCompile(regexp.QuoteMeta("broken want regexp: " + pat))
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return wants
}
