package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FingerprintPurityAnalyzer protects the cache-key integrity claim: the
// drift-banded plan cache, the batch dedup pass and the prepared-statement
// reuse all key on catalog.Fingerprint / BandedFingerprint and
// query Block.Canonical. Those digests must be pure functions of the
// catalog statistics and the query block — if any function reachable from
// them reads package-level mutable state, consults the clock or the
// global RNG, or emits map-iteration-order-dependent bytes, two identical
// catalogs can hash differently (cache misses at best) or two different
// catalogs identically (serving a stale plan as a hit, corrupting the
// realized LEC/LSC measurements).
//
// The analyzer builds a static call graph over the whole module, marks
// every function reachable from the fingerprint entry points, and reports
// inside that set:
//
//   - reads or writes of package-level mutable variables (error-typed
//     sentinels exempt — they are write-once by convention);
//   - calls into time.Now, os.*, or math/rand;
//   - map ranges whose key/value escapes into append/fmt output from a
//     function that never sorts (same heuristic as the determinism
//     analyzer, but unconditional within the reachable set).
//
// The graph follows static calls only: calls through interfaces or
// function values are not traced. That is the usual soundness trade of a
// lightweight analyzer — reviews must keep dynamic dispatch off the
// fingerprint paths (today there is none).
var FingerprintPurityAnalyzer = &Analyzer{
	Name: "fppurity",
	Doc:  "functions reachable from catalog.Fingerprint/BandedFingerprint and Block.Canonical must be pure",
	Run:  runFingerprintPurity,
}

// fpEntry names one fingerprint entry point.
type fpEntry struct {
	pkgSuffix string // import-path suffix
	recv      string // receiver type name ("" for free functions)
	name      string
}

// fpEntries are the digest roots whose full call trees must stay pure.
var fpEntries = []fpEntry{
	{"internal/catalog", "Catalog", "Fingerprint"},
	{"internal/catalog", "Catalog", "BandedFingerprint"},
	{"internal/catalog", "Catalog", "BandedFingerprintMargin"},
	{"internal/query", "Block", "Canonical"},
}

// funcKey identifies a module function across type-check variants (the
// augmented and pure checks produce distinct types.Func objects for the
// same declaration, so identity must be by name, not pointer).
type funcKey struct {
	pkg  string // import path
	recv string // receiver type name, "" for free functions
	name string
}

// reachableFuncs computes the set of module functions reachable from the
// fingerprint entry points, memoized on the module.
func reachableFuncs(m *Module) map[funcKey]bool {
	v := m.Cached("fppurity.reachable", func() any {
		calls := map[funcKey][]funcKey{}
		for _, u := range m.Units {
			for _, f := range u.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					from := declKey(u, fd)
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if fn := calleeFunc(u.Info, call); fn != nil && fn.Pkg() != nil {
							calls[from] = append(calls[from], keyOf(fn))
						}
						return true
					})
				}
			}
		}
		reach := map[funcKey]bool{}
		var queue []funcKey
		for _, u := range m.Units {
			for _, f := range u.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					k := declKey(u, fd)
					for _, e := range fpEntries {
						if strings.HasSuffix(k.pkg, e.pkgSuffix) && k.recv == e.recv && k.name == e.name {
							reach[k] = true
							queue = append(queue, k)
						}
					}
				}
			}
		}
		for len(queue) > 0 {
			k := queue[0]
			queue = queue[1:]
			out := append([]funcKey(nil), calls[k]...)
			sort.Slice(out, func(i, j int) bool {
				a, b := out[i], out[j]
				return a.pkg < b.pkg || a.pkg == b.pkg && (a.recv < b.recv || a.recv == b.recv && a.name < b.name)
			})
			for _, next := range out {
				if !reach[next] {
					reach[next] = true
					queue = append(queue, next)
				}
			}
		}
		return reach
	})
	return v.(map[funcKey]bool)
}

// declKey keys a function declaration in a unit.
func declKey(u *Unit, fd *ast.FuncDecl) funcKey {
	k := funcKey{pkg: strings.TrimSuffix(u.Path, "_test"), name: fd.Name.Name}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		k.recv = recvTypeName(fd.Recv.List[0].Type)
	}
	return k
}

// recvTypeName extracts the receiver's type name from its AST.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}

// keyOf keys a resolved callee.
func keyOf(fn *types.Func) funcKey {
	k := funcKey{pkg: fn.Pkg().Path(), name: fn.Name()}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			k.recv = named.Obj().Name()
		}
	}
	return k
}

func runFingerprintPurity(pass *Pass) {
	reach := reachableFuncs(pass.Module)
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !reach[declKey(pass.Unit, fd)] {
				continue
			}
			checkPurity(pass, info, fd)
		}
	}
}

// impureCallers maps package path -> banned function name ("" = any).
var impureCallers = map[string]string{
	"time":         "Now",
	"os":           "",
	"math/rand":    "",
	"math/rand/v2": "",
}

// checkPurity reports impurities inside one reachable function.
func checkPurity(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	where := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			obj, ok := info.Uses[e].(*types.Var)
			if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
				return true
			}
			if isErrorType(obj.Type()) {
				return true // write-once sentinel errors
			}
			pass.Reportf(e.Pos(),
				"%s is reachable from a fingerprint entry point but touches package-level mutable state %s.%s — digests must be pure functions of their inputs",
				where, obj.Pkg().Name(), obj.Name())
		case *ast.CallExpr:
			fn := calleeFunc(info, e)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			banned, ok := impureCallers[fn.Pkg().Path()]
			if ok && (banned == "" || banned == fn.Name()) {
				pass.Reportf(e.Pos(),
					"%s is reachable from a fingerprint entry point but calls %s.%s — digests must not depend on clock, environment or global RNG",
					where, fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
	// Map-order emission is unconditional here: a digest that writes
	// map-ordered bytes is broken even if some sort happens elsewhere in
	// the function, but the shared conservative heuristic (skip sorting
	// functions) keeps the canonical collect-then-sort pattern legal.
	if functionSorts(info, fd.Body) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		loopVars := rangeVarObjects(info, rng)
		if len(loopVars) == 0 {
			return true
		}
		if pos, what := findOrderEmission(info, rng.Body, loopVars); pos.IsValid() {
			pass.Reportf(pos,
				"%s is reachable from a fingerprint entry point and %s emits map-iteration-order-dependent bytes without sorting",
				where, what)
			return false
		}
		return true
	})
}
