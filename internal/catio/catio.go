// Package catio loads and saves catalogs and environment descriptions as
// JSON, so the command-line tools can run against user-provided schemas
// rather than only the built-in demos.
package catio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
)

// Errors.
var (
	ErrBadEnvSpec = errors.New("catio: invalid environment spec")
)

// ColumnJSON mirrors catalog.Column.
type ColumnJSON struct {
	Name     string  `json:"name"`
	Type     string  `json:"type,omitempty"` // int | float | string
	Distinct float64 `json:"distinct"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
}

// TableJSON mirrors catalog.Table.
type TableJSON struct {
	Name    string       `json:"name"`
	Pages   float64      `json:"pages"`
	Rows    float64      `json:"rows"`
	Columns []ColumnJSON `json:"columns"`
}

// IndexJSON mirrors catalog.Index.
type IndexJSON struct {
	Name      string  `json:"name"`
	Table     string  `json:"table"`
	Column    string  `json:"column"`
	Clustered bool    `json:"clustered"`
	Height    float64 `json:"height"`
}

// CatalogJSON is the on-disk catalog document.
type CatalogJSON struct {
	Tables  []TableJSON `json:"tables"`
	Indexes []IndexJSON `json:"indexes,omitempty"`
}

// Read decodes a catalog document.
func Read(r io.Reader) (*catalog.Catalog, error) {
	var doc CatalogJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("catio: %w", err)
	}
	return FromJSON(doc)
}

// FromJSON builds a catalog from the document.
func FromJSON(doc CatalogJSON) (*catalog.Catalog, error) {
	cat := catalog.New()
	for _, tj := range doc.Tables {
		cols := make([]catalog.Column, 0, len(tj.Columns))
		for _, cj := range tj.Columns {
			ct, err := parseType(cj.Type)
			if err != nil {
				return nil, err
			}
			cols = append(cols, catalog.Column{
				Name: cj.Name, Type: ct, Distinct: cj.Distinct, Min: cj.Min, Max: cj.Max,
			})
		}
		t, err := catalog.NewTable(tj.Name, tj.Pages, tj.Rows, cols...)
		if err != nil {
			return nil, err
		}
		if err := cat.AddTable(t); err != nil {
			return nil, err
		}
	}
	for _, ij := range doc.Indexes {
		err := cat.AddIndex(catalog.Index{
			Name: ij.Name, Table: ij.Table, Column: ij.Column,
			Clustered: ij.Clustered, Height: ij.Height,
		})
		if err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// Write encodes a catalog back to JSON (tables sorted by name).
func Write(w io.Writer, cat *catalog.Catalog) error {
	var doc CatalogJSON
	for _, name := range cat.TableNames() {
		t, err := cat.Table(name)
		if err != nil {
			return err
		}
		tj := TableJSON{Name: t.Name, Pages: t.Pages, Rows: t.Rows}
		for _, c := range t.Columns() {
			tj.Columns = append(tj.Columns, ColumnJSON{
				Name: c.Name, Type: c.Type.String(), Distinct: c.Distinct, Min: c.Min, Max: c.Max,
			})
		}
		doc.Tables = append(doc.Tables, tj)
		for _, ix := range cat.IndexesOn(name) {
			doc.Indexes = append(doc.Indexes, IndexJSON{
				Name: ix.Name, Table: ix.Table, Column: ix.Column,
				Clustered: ix.Clustered, Height: ix.Height,
			})
		}
	}
	sort.Slice(doc.Indexes, func(i, j int) bool { return doc.Indexes[i].Name < doc.Indexes[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func parseType(s string) (catalog.ColumnType, error) {
	switch strings.ToLower(s) {
	case "", "int":
		return catalog.TypeInt, nil
	case "float":
		return catalog.TypeFloat, nil
	case "string":
		return catalog.TypeString, nil
	default:
		return 0, fmt.Errorf("catio: unknown column type %q", s)
	}
}

// ParseMemLaw parses a memory-law spec of the form "v:p,v:p,..." (weights
// are normalized) or a single "v" for a point law. Example 1.1 is
// "700:0.2,2000:0.8".
func ParseMemLaw(spec string) (dist.Dist, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return dist.Dist{}, fmt.Errorf("%w: empty law", ErrBadEnvSpec)
	}
	var vals, probs []float64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		var v, p float64
		switch n := strings.Count(part, ":"); n {
		case 0:
			if _, err := fmt.Sscanf(part, "%g", &v); err != nil {
				return dist.Dist{}, fmt.Errorf("%w: %q", ErrBadEnvSpec, part)
			}
			p = 1
		case 1:
			if _, err := fmt.Sscanf(part, "%g:%g", &v, &p); err != nil {
				return dist.Dist{}, fmt.Errorf("%w: %q", ErrBadEnvSpec, part)
			}
		default:
			return dist.Dist{}, fmt.Errorf("%w: %q", ErrBadEnvSpec, part)
		}
		vals = append(vals, v)
		probs = append(probs, p)
	}
	d, err := dist.New(vals, probs)
	if err != nil {
		return dist.Dist{}, fmt.Errorf("%w: %v", ErrBadEnvSpec, err)
	}
	return d, nil
}
