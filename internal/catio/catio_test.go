package catio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"lecopt/internal/catalog"
)

const sampleJSON = `{
  "tables": [
    {
      "name": "a",
      "pages": 1000,
      "rows": 50000,
      "columns": [
        {"name": "k", "type": "int", "distinct": 50000, "min": 0, "max": 1000000},
        {"name": "v", "type": "float", "distinct": 100, "min": 0, "max": 99}
      ]
    },
    {
      "name": "b",
      "pages": 200,
      "rows": 10000,
      "columns": [{"name": "k", "distinct": 10000, "min": 0, "max": 1000000}]
    }
  ],
  "indexes": [
    {"name": "ix_a_k", "table": "a", "column": "k", "clustered": true, "height": 2}
  ]
}`

func TestReadSample(t *testing.T) {
	cat, err := Read(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	a, err := cat.Table("a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Pages != 1000 || a.Rows != 50000 {
		t.Fatalf("table stats: %+v", a)
	}
	col, err := a.Column("v")
	if err != nil || col.Type != catalog.TypeFloat {
		t.Fatalf("column v: %+v %v", col, err)
	}
	ix, err := cat.Index("ix_a_k")
	if err != nil || !ix.Clustered || ix.Height != 2 {
		t.Fatalf("index: %+v %v", ix, err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"bad json", `{`},
		{"unknown field", `{"tables": [], "bogus": 1}`},
		{"bad type", `{"tables":[{"name":"t","pages":1,"rows":1,"columns":[{"name":"c","type":"blob","distinct":1,"min":0,"max":1}]}]}`},
		{"invalid stats", `{"tables":[{"name":"t","pages":0,"rows":1,"columns":[]}]}`},
		{"index missing table", `{"tables":[],"indexes":[{"name":"ix","table":"zz","column":"c"}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.doc)); err == nil {
				t.Fatalf("Read(%s) should fail", c.name)
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	cat, err := Read(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cat); err != nil {
		t.Fatal(err)
	}
	again, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, buf.String())
	}
	if len(again.TableNames()) != 2 {
		t.Fatalf("tables after round trip: %v", again.TableNames())
	}
	b, err := again.Table("b")
	if err != nil || b.Pages != 200 {
		t.Fatalf("table b: %+v %v", b, err)
	}
	if _, ok := again.IndexOn("a", "k"); !ok {
		t.Fatal("index lost in round trip")
	}
}

func TestParseMemLaw(t *testing.T) {
	d, err := ParseMemLaw("700:0.2, 2000:0.8")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.PrAtMost(700) != 0.2 {
		t.Fatalf("law: %v", d)
	}
	point, err := ParseMemLaw("1024")
	if err != nil || point.Len() != 1 || point.Value(0) != 1024 {
		t.Fatalf("point law: %v %v", point, err)
	}
	weights, err := ParseMemLaw("1:2,2:2")
	if err != nil || weights.Prob(0) != 0.5 {
		t.Fatalf("weights normalize: %v %v", weights, err)
	}
	for _, bad := range []string{"", "a:b", "1:2:3", "1:-1,2:0"} {
		if _, err := ParseMemLaw(bad); !errors.Is(err, ErrBadEnvSpec) {
			t.Fatalf("ParseMemLaw(%q) should fail, got %v", bad, err)
		}
	}
}
