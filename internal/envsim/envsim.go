// Package envsim simulates query execution environments: it samples
// run-time memory conditions (static draws or per-phase Markov
// trajectories, Section 3.5) and measures the realized cost of executing a
// plan under them. This is the substitute for the paper's "observations of
// the realistic deployment environments": the LEC-vs-LSC comparison only
// depends on the distribution of memory at each phase, which the simulator
// samples exactly.
package envsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lecopt/internal/dist"
	"lecopt/internal/plan"
)

// Errors.
var (
	ErrNoEnv   = errors.New("envsim: environment needs a memory law")
	ErrNoPlans = errors.New("envsim: nothing to simulate")
)

// Env describes an execution environment: the initial memory law and,
// optionally, a Markov chain that evolves memory between join phases. With
// a nil Chain memory is constant within one execution (the static model).
type Env struct {
	Mem   dist.Dist
	Chain *dist.Chain
}

// Validate checks the environment is usable.
func (e Env) Validate() error {
	if e.Mem.IsZero() {
		return ErrNoEnv
	}
	if e.Chain != nil {
		// Every support value must be a chain state. Both sequences are
		// ascending, so a single merge pass checks containment without
		// building a set — Validate runs per request on the serving hot
		// path and must not allocate.
		j, n := 0, e.Chain.Len()
		for i := 0; i < e.Mem.Len(); i++ {
			v := e.Mem.Value(i)
			for j < n && e.Chain.State(j) < v {
				j++
			}
			if j == n || e.Chain.State(j) != v {
				return fmt.Errorf("envsim: initial law value %v is not a chain state", v)
			}
		}
	}
	return nil
}

// PhaseLaws returns the marginal memory law of each of n phases.
func (e Env) PhaseLaws(n int) ([]dist.Dist, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		n = 1
	}
	if e.Chain == nil {
		laws := make([]dist.Dist, n)
		for i := range laws {
			laws[i] = e.Mem
		}
		return laws, nil
	}
	return e.Chain.PhaseLaws(e.Mem, n)
}

// Sample draws one run-time memory sequence of length n.
func (e Env) Sample(rng *rand.Rand, n int) ([]float64, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		n = 1
	}
	if e.Chain == nil {
		m := e.Mem.Sample(rng)
		seq := make([]float64, n)
		for i := range seq {
			seq[i] = m
		}
		return seq, nil
	}
	return e.Chain.SampleSeq(rng, e.Mem, n)
}

// RunStats summarizes a Monte-Carlo simulation of one plan.
type RunStats struct {
	Runs   int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	P95    float64
	Total  float64
	Median float64
}

// Simulate executes a plan's cost model against `runs` sampled
// environments and aggregates realized costs. This is the empirical
// counterpart of EC(P): by the law of large numbers Simulate(...).Mean
// converges to the analytic expected cost.
func Simulate(p *plan.Node, env Env, runs int, rng *rand.Rand) (RunStats, error) {
	if p == nil || runs <= 0 {
		return RunStats{}, ErrNoPlans
	}
	phases := p.Phases()
	costs := make([]float64, 0, runs)
	total := 0.0
	for i := 0; i < runs; i++ {
		seq, err := env.Sample(rng, phases)
		if err != nil {
			return RunStats{}, err
		}
		c, err := p.CostSeq(plan.SliceMem(seq))
		if err != nil {
			return RunStats{}, err
		}
		costs = append(costs, c)
		total += c
	}
	return summarize(costs, total), nil
}

func summarize(costs []float64, total float64) RunStats {
	n := len(costs)
	mean := total / float64(n)
	variance := 0.0
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, c := range costs {
		d := c - mean
		variance += d * d
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	variance /= float64(n)
	sorted := append([]float64(nil), costs...)
	insertionSort(sorted)
	return RunStats{
		Runs:   n,
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    mn,
		Max:    mx,
		P95:    quantile(sorted, 0.95),
		Median: quantile(sorted, 0.5),
		Total:  total,
	}
}

func insertionSort(a []float64) {
	// Avoid pulling sort just for this; n is test-scale.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Quantile returns the q-quantile of an ascending-sorted sample under the
// package's nearest-rank (floor) convention — exported so other layers
// (the serving runner's regret percentiles) share one definition instead
// of keeping copies in sync.
func Quantile(sorted []float64, q float64) float64 { return quantile(sorted, q) }

// Tournament compares named plans under a shared sampled environment
// stream (common random numbers: every plan sees the same memory
// sequences, which slashes comparison variance).
type Tournament struct {
	Names []string
	Plans []*plan.Node
}

// TournamentResult reports per-plan realized means and the win counts
// (how often each plan was the strict per-run winner).
type TournamentResult struct {
	Names []string
	Stats []RunStats
	Wins  []int
}

// Run executes the tournament for `runs` sampled environments.
func (t *Tournament) Run(env Env, runs int, rng *rand.Rand) (TournamentResult, error) {
	if len(t.Plans) == 0 || len(t.Plans) != len(t.Names) {
		return TournamentResult{}, ErrNoPlans
	}
	maxPhases := 1
	for _, p := range t.Plans {
		if ph := p.Phases(); ph > maxPhases {
			maxPhases = ph
		}
	}
	costs := make([][]float64, len(t.Plans))
	totals := make([]float64, len(t.Plans))
	wins := make([]int, len(t.Plans))
	for i := range costs {
		costs[i] = make([]float64, 0, runs)
	}
	for r := 0; r < runs; r++ {
		seq, err := env.Sample(rng, maxPhases)
		if err != nil {
			return TournamentResult{}, err
		}
		bestIdx, bestCost := -1, math.Inf(1)
		strict := true
		for i, p := range t.Plans {
			c, err := p.CostSeq(plan.SliceMem(seq))
			if err != nil {
				return TournamentResult{}, err
			}
			costs[i] = append(costs[i], c)
			totals[i] += c
			switch {
			case c < bestCost:
				bestIdx, bestCost, strict = i, c, true
			case c == bestCost:
				strict = false
			}
		}
		if bestIdx >= 0 && strict {
			wins[bestIdx]++
		}
	}
	res := TournamentResult{Names: append([]string(nil), t.Names...), Wins: wins}
	for i := range t.Plans {
		res.Stats = append(res.Stats, summarize(costs[i], totals[i]))
	}
	return res, nil
}
