package envsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/plan"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

// twoJoinPlan builds ((a ⋈SM b) ⋈GH c) with fixed page sizes.
func twoJoinPlan() *plan.Node {
	a := plan.NewScan("a", plan.AccessHeap, "", 1, 100)
	b := plan.NewScan("b", plan.AccessHeap, "", 1, 40)
	j1 := plan.NewJoin(cost.SortMerge, a, b, 20, plan.Order{})
	c := plan.NewScan("c", plan.AccessHeap, "", 1, 30)
	return plan.NewJoin(cost.GraceHash, j1, c, 5, plan.Order{})
}

func TestEnvValidate(t *testing.T) {
	if err := (Env{}).Validate(); !errors.Is(err, ErrNoEnv) {
		t.Fatal("empty env")
	}
	chain, err := dist.Sticky([]float64{10, 20}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bad := Env{Mem: dist.Point(15), Chain: chain}
	if err := bad.Validate(); err == nil {
		t.Fatal("law off the chain states should fail")
	}
	good := Env{Mem: dist.Point(10), Chain: chain}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseLawsStaticAndDynamic(t *testing.T) {
	mem := dist.MustNew([]float64{10, 20}, []float64{0.5, 0.5})
	laws, err := Env{Mem: mem}.PhaseLaws(3)
	if err != nil || len(laws) != 3 {
		t.Fatalf("static: %v %v", laws, err)
	}
	for _, l := range laws {
		if !l.ApproxEqual(mem, 0) {
			t.Fatal("static laws must repeat the initial law")
		}
	}
	chain, err := dist.Sticky([]float64{10, 20}, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	laws, err = Env{Mem: dist.Point(10), Chain: chain}.PhaseLaws(2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, laws[1].PrAtMost(10), 0.75, 1e-12, "one-step law")
	if _, err := (Env{}).PhaseLaws(1); err == nil {
		t.Fatal("invalid env")
	}
	// n < 1 clamps to 1.
	laws, err = Env{Mem: mem}.PhaseLaws(0)
	if err != nil || len(laws) != 1 {
		t.Fatal("clamp to one phase")
	}
}

func TestSampleStaticIsConstantWithinRun(t *testing.T) {
	mem := dist.MustNew([]float64{10, 2000}, []float64{0.5, 0.5})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		seq, err := Env{Mem: mem}.Sample(rng, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != 4 {
			t.Fatal("length")
		}
		for _, v := range seq[1:] {
			if v != seq[0] {
				t.Fatal("static env must hold memory constant within a run")
			}
		}
	}
}

// TestSimulateConvergesToExpectedCost: the Monte-Carlo mean approaches the
// analytic EC for both static and Markov environments.
func TestSimulateConvergesToExpectedCost(t *testing.T) {
	p := twoJoinPlan()
	mem := dist.MustNew([]float64{5, 12, 50}, []float64{0.3, 0.4, 0.3})

	// Static analytic EC.
	analytic := mem.ExpectF(func(m float64) float64 { return p.CostAt(m) })
	rng := rand.New(rand.NewSource(17))
	st, err := Simulate(p, Env{Mem: mem}, 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if relErr := math.Abs(st.Mean-analytic) / analytic; relErr > 0.01 {
		t.Fatalf("static MC mean %v vs analytic %v (relErr %v)", st.Mean, analytic, relErr)
	}
	if st.Min > st.Median || st.Median > st.P95 || st.P95 > st.Max {
		t.Fatalf("order statistics inconsistent: %+v", st)
	}
	if st.Runs != 60000 || st.Total <= 0 {
		t.Fatalf("bookkeeping: %+v", st)
	}

	// Dynamic: per-phase marginals.
	chain, err := dist.RandomWalk([]float64{5, 12, 50}, 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{Mem: mem, Chain: chain}
	laws, err := env.PhaseLaws(p.Phases())
	if err != nil {
		t.Fatal(err)
	}
	// Analytic EC with per-phase marginals via sequence enumeration.
	seqs, probs, err := chain.AllSeqs(mem, p.Phases())
	if err != nil {
		t.Fatal(err)
	}
	dynAnalytic := 0.0
	for i, seq := range seqs {
		c, err := p.CostSeq(plan.SliceMem(seq))
		if err != nil {
			t.Fatal(err)
		}
		dynAnalytic += probs[i] * c
	}
	_ = laws
	st2, err := Simulate(p, env, 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if relErr := math.Abs(st2.Mean-dynAnalytic) / dynAnalytic; relErr > 0.01 {
		t.Fatalf("dynamic MC mean %v vs analytic %v (relErr %v)", st2.Mean, dynAnalytic, relErr)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(nil, Env{Mem: dist.Point(1)}, 10, rand.New(rand.NewSource(1))); !errors.Is(err, ErrNoPlans) {
		t.Fatal("nil plan")
	}
	p := twoJoinPlan()
	if _, err := Simulate(p, Env{Mem: dist.Point(1)}, 0, rand.New(rand.NewSource(1))); !errors.Is(err, ErrNoPlans) {
		t.Fatal("zero runs")
	}
	if _, err := Simulate(p, Env{}, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid env")
	}
}

// TestTournamentCommonRandomNumbers: Example 1.1 as a tournament — Plan 2
// must win on average; per-run, Plan 1 wins 80% of the time (that's the
// paper's point: the common case favours Plan 1, the expectation doesn't).
func TestTournamentExample11(t *testing.T) {
	a := plan.NewScan("A", plan.AccessHeap, "", 1, 1_000_000)
	b := plan.NewScan("B", plan.AccessHeap, "", 1, 400_000)
	plan1 := plan.NewJoin(cost.SortMerge, a, b, 3000, plan.Order{Table: "A", Column: "k"})
	p2join := plan.NewJoin(cost.GraceHash, a.Clone(), b.Clone(), 3000, plan.Order{})
	plan2 := plan.NewSort(p2join, plan.Order{Table: "A", Column: "k"})

	mem := dist.MustNew([]float64{700, 2000}, []float64{0.2, 0.8})
	tour := &Tournament{Names: []string{"plan1-sm", "plan2-gh+sort"}, Plans: []*plan.Node{plan1, plan2}}
	res, err := tour.Run(Env{Mem: mem}, 20000, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Stats[1].Mean < res.Stats[0].Mean) {
		t.Fatalf("plan 2 must win on average: %v vs %v", res.Stats[1].Mean, res.Stats[0].Mean)
	}
	frac1 := float64(res.Wins[0]) / 20000
	if math.Abs(frac1-0.8) > 0.02 {
		t.Fatalf("plan 1 should win ≈80%% of individual runs, got %v", frac1)
	}
	// Expected means match the formula-level analysis (join formulas
	// include the input reads; handoff scans add nothing).
	approx(t, res.Stats[0].Mean, 0.8*2.8e6+0.2*5.6e6, 2e4, "plan1 mean")
	approx(t, res.Stats[1].Mean, 2.8e6+6000, 2e4, "plan2 mean")
}

func TestTournamentValidation(t *testing.T) {
	tr := &Tournament{Names: []string{"x"}, Plans: nil}
	if _, err := tr.Run(Env{Mem: dist.Point(5)}, 5, rand.New(rand.NewSource(1))); !errors.Is(err, ErrNoPlans) {
		t.Fatal("mismatched tournament")
	}
}

func TestQuantileEdge(t *testing.T) {
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Fatal("empty quantile")
	}
	if q := quantile([]float64{1, 2, 3}, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := quantile([]float64{1, 2, 3}, 1); q != 3 {
		t.Fatalf("q1 = %v", q)
	}
}
