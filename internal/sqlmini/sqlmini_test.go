package sqlmini

import (
	"errors"
	"strings"
	"testing"

	"lecopt/internal/catalog"
	"lecopt/internal/query"
)

func TestParseFullQuery(t *testing.T) {
	blk, err := Parse(`SELECT * FROM a, b, c
		WHERE a.k = b.k AND b.k = c.k AND a.v < 100 AND c.w >= 2.5
		ORDER BY a.k ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Tables) != 3 || blk.Tables[0] != "a" || blk.Tables[2] != "c" {
		t.Fatalf("tables = %v", blk.Tables)
	}
	if len(blk.Joins) != 2 {
		t.Fatalf("joins = %v", blk.Joins)
	}
	if blk.Joins[0].Left != (query.ColRef{Table: "a", Column: "k"}) ||
		blk.Joins[0].Right != (query.ColRef{Table: "b", Column: "k"}) {
		t.Fatalf("join 0 = %v", blk.Joins[0])
	}
	if len(blk.Filters) != 2 {
		t.Fatalf("filters = %v", blk.Filters)
	}
	if blk.Filters[0].Op != catalog.OpLt || blk.Filters[0].Value != 100 {
		t.Fatalf("filter 0 = %v", blk.Filters[0])
	}
	if blk.Filters[1].Op != catalog.OpGe || blk.Filters[1].Value != 2.5 {
		t.Fatalf("filter 1 = %v", blk.Filters[1])
	}
	if blk.OrderBy == nil || *blk.OrderBy != (query.ColRef{Table: "a", Column: "k"}) {
		t.Fatalf("order by = %v", blk.OrderBy)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	blk, err := Parse("select * FROM t WHERE t.x = s.y order by t.x")
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Tables) != 1 || len(blk.Joins) != 1 || blk.OrderBy == nil {
		t.Fatalf("parsed: %v", blk)
	}
}

func TestParseMinimal(t *testing.T) {
	blk, err := Parse("SELECT * FROM solo")
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Tables) != 1 || len(blk.Joins) != 0 || len(blk.Filters) != 0 || blk.OrderBy != nil {
		t.Fatalf("minimal block: %+v", blk)
	}
}

func TestParseAllFilterOps(t *testing.T) {
	blk, err := Parse("SELECT * FROM t WHERE t.a = 1 AND t.b < 2 AND t.c <= 3 AND t.d > 4 AND t.e >= 5")
	if err != nil {
		t.Fatal(err)
	}
	want := []catalog.CmpOp{catalog.OpEq, catalog.OpLt, catalog.OpLe, catalog.OpGt, catalog.OpGe}
	if len(blk.Filters) != len(want) {
		t.Fatalf("filters = %v", blk.Filters)
	}
	for i, f := range blk.Filters {
		if f.Op != want[i] || f.Value != float64(i+1) {
			t.Fatalf("filter %d = %v", i, f)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"UPDATE t",
		"SELECT a FROM t",                 // only * supported
		"SELECT * WHERE t.x = 1",          // missing FROM
		"SELECT * FROM",                   // missing table
		"SELECT * FROM t,",                // trailing comma
		"SELECT * FROM t WHERE x = 1",     // unqualified column
		"SELECT * FROM t WHERE t.x ! 1",   // bad operator character
		"SELECT * FROM t WHERE t.x < s.y", // non-equality join
		"SELECT * FROM t WHERE t.x =",     // missing rhs
		"SELECT * FROM t WHERE t.x = AND", // rhs keyword
		"SELECT * FROM t ORDER t.x",       // missing BY
		"SELECT * FROM t ORDER BY x",      // unqualified order column
		"SELECT * FROM t extra",           // trailing ident
		"SELECT * FROM t WHERE t.x = 1 2", // trailing number
		"SELECT * FROM select",            // reserved word as table
		"SELECT * FROM t WHERE t. = 1",    // missing column name
	}
	for _, src := range cases {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Fatalf("Parse(%q) err = %v, want ErrSyntax", src, err)
		}
	}
}

func TestNumbersLexedGreedily(t *testing.T) {
	blk, err := Parse("SELECT * FROM t WHERE t.x < 10.25 AND t.y > 3")
	if err != nil {
		t.Fatal(err)
	}
	if blk.Filters[0].Value != 10.25 || blk.Filters[1].Value != 3 {
		t.Fatalf("values: %v", blk.Filters)
	}
}

func TestLexUnexpectedRune(t *testing.T) {
	if _, err := lex("t.x # 1"); !errors.Is(err, ErrSyntax) {
		t.Fatal("bad rune should fail lexing")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not sql")
}

func TestParseAndValidate(t *testing.T) {
	cat := catalog.New()
	tab := catalog.MustTable("t", 10, 100,
		catalog.Column{Name: "x", Type: catalog.TypeInt, Distinct: 10, Min: 0, Max: 9})
	if err := cat.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	blk, err := ParseAndValidate("SELECT * FROM t WHERE t.x < 5", cat)
	if err != nil || blk == nil {
		t.Fatal(err)
	}
	if _, err := ParseAndValidate("SELECT * FROM missing", cat); err == nil {
		t.Fatal("validation must catch missing tables")
	}
	if _, err := ParseAndValidate("garbage", cat); !errors.Is(err, ErrSyntax) {
		t.Fatal("syntax error propagates")
	}
}

// Round trip: parsed blocks render back to equivalent SQL-ish text.
func TestRoundTripThroughString(t *testing.T) {
	src := "SELECT * FROM a, b WHERE a.k = b.k AND a.v < 10 ORDER BY b.k"
	blk, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := blk.String()
	for _, frag := range []string{"FROM a, b", "a.k = b.k", "a.v < 10", "ORDER BY b.k"} {
		if !strings.Contains(rendered, frag) {
			t.Fatalf("rendered %q missing %q", rendered, frag)
		}
	}
	again, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	if again.Canonical() != blk.Canonical() {
		t.Fatalf("round trip changed query:\n%s\n%s", blk.Canonical(), again.Canonical())
	}
}
