package sqlmini

import (
	"testing"
)

// FuzzParse hardens the mini-SQL front door: Parse must never panic, and
// any block it accepts must render (Block.String) back into a string that
// re-parses to the same canonical query. The seed corpus spans every
// grammar production plus known-tricky near-misses.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM a",
		"SELECT * FROM a, b WHERE a.k = b.k",
		"SELECT * FROM a, b, c WHERE a.k = b.k AND b.k = c.k AND a.v < 100 ORDER BY a.k",
		"select * from t0, t1 where t0.k = t1.k and t0.v >= 7.5 order by t1.k asc",
		"SELECT * FROM x WHERE x.v <= 0",
		"SELECT * FROM x WHERE x.v > 999999999",
		"SELECT * FROM x WHERE x.v = 3.25",
		"SELECT * FROM a , b WHERE a.k=b.k",
		// Near-misses that must error, not panic.
		"SELECT * FROM",
		"SELECT a FROM b",
		"SELECT * FROM a WHERE a.k <",
		"SELECT * FROM a WHERE k = 1",
		"SELECT * FROM select",
		"SELECT * FROM a ORDER BY",
		"SELECT * FROM a WHERE a.k = 1e9",
		"SELECT * FROM a WHERE a.v < -1",
		"",
		";;;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		blk, err := Parse(sql)
		if err != nil {
			return // rejection is fine; panics and accepted-garbage are not
		}
		if len(blk.Tables) == 0 {
			t.Fatalf("accepted a block with no tables: %q", sql)
		}
		rendered := blk.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", sql, rendered, err)
		}
		if got, want := again.Canonical(), blk.Canonical(); got != want {
			t.Fatalf("round-trip changed the query:\n input     %q\n rendered  %q\n canonical %q\n reparsed  %q",
				sql, rendered, want, got)
		}
	})
}
