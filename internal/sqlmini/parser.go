package sqlmini

import (
	"fmt"
	"strconv"

	"lecopt/internal/catalog"
	"lecopt/internal/query"
)

// Parse parses one SELECT statement into a query block. The block is
// purely syntactic; validate it against a catalog with block.Validate.
func Parse(input string) (*query.Block, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	blk, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.peek().isKeyword("") && p.peek().kind != tokEOF {
		return nil, p.errf("trailing input starting at %s", p.peek())
	}
	return blk, nil
}

// MustParse is Parse but panics on error (static queries in examples).
func MustParse(input string) *query.Block {
	blk, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return blk
}

// ParseAndValidate parses and validates against a catalog in one step.
func ParseAndValidate(input string, cat *catalog.Catalog) (*query.Block, error) {
	blk, err := Parse(input)
	if err != nil {
		return nil, err
	}
	if err := blk.Validate(cat); err != nil {
		return nil, err
	}
	return blk, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSyntax, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peek().isKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) selectStmt() (*query.Block, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if p.peek().kind != tokStar {
		return nil, p.errf("only SELECT * is supported, found %s", p.peek())
	}
	p.next()
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	blk := &query.Block{}
	for {
		t := p.next()
		if t.kind != tokIdent || isReserved(t.text) {
			return nil, p.errf("expected table name, found %s", t)
		}
		blk.Tables = append(blk.Tables, t.text)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.peek().isKeyword("where") {
		p.next()
		for {
			if err := p.conjunct(blk); err != nil {
				return nil, err
			}
			if p.peek().isKeyword("and") {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().isKeyword("order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		col, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if p.peek().isKeyword("asc") {
			p.next()
		}
		blk.OrderBy = &col
	}
	return blk, nil
}

// conjunct parses one predicate: either colref = colref (join) or
// colref op number (filter).
func (p *parser) conjunct(blk *query.Block) error {
	left, err := p.colRef()
	if err != nil {
		return err
	}
	op := p.next()
	if op.kind != tokOp {
		return p.errf("expected comparison operator, found %s", op)
	}
	t := p.peek()
	switch t.kind {
	case tokIdent:
		if op.text != "=" {
			return p.errf("join predicates must use =, found %q", op.text)
		}
		right, err := p.colRef()
		if err != nil {
			return err
		}
		blk.Joins = append(blk.Joins, query.Join{Left: left, Right: right})
		return nil
	case tokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return p.errf("bad number %q", t.text)
		}
		cmp, err := cmpOp(op.text)
		if err != nil {
			return err
		}
		blk.Filters = append(blk.Filters, query.Filter{Col: left, Op: cmp, Value: v})
		return nil
	default:
		return p.errf("expected column or number after operator, found %s", t)
	}
}

func (p *parser) colRef() (query.ColRef, error) {
	tbl := p.next()
	if tbl.kind != tokIdent || isReserved(tbl.text) {
		return query.ColRef{}, p.errf("expected table name, found %s", tbl)
	}
	if p.peek().kind != tokDot {
		return query.ColRef{}, p.errf("expected '.' after %q (columns must be qualified)", tbl.text)
	}
	p.next()
	col := p.next()
	if col.kind != tokIdent {
		return query.ColRef{}, p.errf("expected column name, found %s", col)
	}
	return query.ColRef{Table: tbl.text, Column: col.text}, nil
}

func cmpOp(s string) (catalog.CmpOp, error) {
	switch s {
	case "=":
		return catalog.OpEq, nil
	case "<":
		return catalog.OpLt, nil
	case "<=":
		return catalog.OpLe, nil
	case ">":
		return catalog.OpGt, nil
	case ">=":
		return catalog.OpGe, nil
	default:
		return 0, fmt.Errorf("%w: unknown operator %q", ErrSyntax, s)
	}
}

func isReserved(s string) bool {
	switch {
	case equalFold(s, "select"), equalFold(s, "from"), equalFold(s, "where"),
		equalFold(s, "and"), equalFold(s, "order"), equalFold(s, "by"), equalFold(s, "asc"):
		return true
	}
	return false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
