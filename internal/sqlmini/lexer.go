// Package sqlmini parses a small SQL subset into query blocks — enough to
// express the SELECT-PROJECT-JOIN blocks the optimizer works on:
//
//	SELECT * FROM a, b, c
//	WHERE a.k = b.k AND b.k = c.k AND a.v < 100
//	ORDER BY a.k
//
// Keywords are case-insensitive. Join predicates are equalities between
// two qualified columns; filters compare a qualified column with a numeric
// literal using =, <, <=, > or >=.
package sqlmini

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// Lexing/parsing errors wrap ErrSyntax.
var ErrSyntax = errors.New("sqlmini: syntax error")

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokComma
	tokDot
	tokStar
	tokOp // = < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < n && input[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case unicode.IsDigit(c):
			j := i
			seenDot := false
			for j < n {
				cj := rune(input[j])
				if unicode.IsDigit(cj) {
					j++
					continue
				}
				if cj == '.' && !seenDot && j+1 < n && unicode.IsDigit(rune(input[j+1])) {
					seenDot = true
					j++
					continue
				}
				break
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("%w: unexpected character %q at offset %d", ErrSyntax, c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

// isKeyword reports whether an identifier token equals the keyword
// (case-insensitive).
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
