package catalog

import (
	"fmt"
	"math"
	"sort"

	"lecopt/internal/dist"
)

// Histogram is a bucketed summary of a numeric column: bounds has n+1
// ascending entries and counts[i] rows fall in (bounds[i], bounds[i+1]],
// with the first bucket also including its lower bound. Within a bucket,
// values are assumed uniformly spread (the standard "continuous values"
// assumption of [PIHS96]-style estimators).
type Histogram struct {
	bounds []float64
	counts []float64
	total  float64
}

// NewHistogram validates and builds a histogram.
func NewHistogram(bounds, counts []float64) (*Histogram, error) {
	if len(bounds) != len(counts)+1 || len(counts) == 0 {
		return nil, fmt.Errorf("%w: need len(bounds) = len(counts)+1 ≥ 2", ErrBadHist)
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("%w: bounds not increasing at %d", ErrBadHist, i)
		}
	}
	total := 0.0
	for i, c := range counts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("%w: count %d invalid", ErrBadHist, i)
		}
		total += c
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: zero rows", ErrBadHist)
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: append([]float64(nil), counts...),
		total:  total,
	}, nil
}

// EquiWidthHistogram builds n equal-width buckets over [lo, hi] with the
// given per-bucket counts.
func EquiWidthHistogram(lo, hi float64, counts []float64) (*Histogram, error) {
	n := len(counts)
	if n == 0 || hi <= lo {
		return nil, ErrBadHist
	}
	bounds := make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		bounds[i] = lo + float64(i)*w
	}
	bounds[n] = hi
	return NewHistogram(bounds, counts)
}

// EquiDepthFromSamples builds an n-bucket equi-depth histogram from sample
// values: each bucket holds ≈ the same number of samples, scaled to
// totalRows.
func EquiDepthFromSamples(samples []float64, n int, totalRows float64) (*Histogram, error) {
	if len(samples) == 0 || n <= 0 || totalRows <= 0 {
		return nil, ErrBadHist
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if n > len(s) {
		n = len(s)
	}
	bounds := make([]float64, 0, n+1)
	counts := make([]float64, 0, n)
	per := float64(len(s)) / float64(n)
	bounds = append(bounds, s[0]-1e-9) // open lower edge below the minimum
	prevIdx := 0
	for b := 1; b <= n; b++ {
		idx := int(math.Round(per * float64(b)))
		if idx <= prevIdx {
			idx = prevIdx + 1
		}
		if idx > len(s) {
			idx = len(s)
		}
		hi := s[idx-1]
		if hi <= bounds[len(bounds)-1] {
			hi = math.Nextafter(bounds[len(bounds)-1], math.Inf(1))
		}
		bounds = append(bounds, hi)
		counts = append(counts, float64(idx-prevIdx)/float64(len(s))*totalRows)
		prevIdx = idx
		if prevIdx == len(s) {
			break
		}
	}
	return NewHistogram(bounds, counts)
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Rows returns the total row count.
func (h *Histogram) Rows() float64 { return h.total }

// Bounds returns a copy of the bucket boundaries.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Counts returns a copy of the bucket row counts.
func (h *Histogram) Counts() []float64 { return append([]float64(nil), h.counts...) }

// SelLE returns the selectivity of "col <= v" under the within-bucket
// uniformity assumption.
func (h *Histogram) SelLE(v float64) float64 {
	if v < h.bounds[0] {
		return 0
	}
	if v >= h.bounds[len(h.bounds)-1] {
		return 1
	}
	rows := 0.0
	for i, c := range h.counts {
		lo, hi := h.bounds[i], h.bounds[i+1]
		switch {
		case v >= hi:
			rows += c
		case v > lo:
			rows += c * (v - lo) / (hi - lo)
		}
		if v < hi {
			break
		}
	}
	return rows / h.total
}

// SelRange returns the selectivity of "lo < col <= hi".
func (h *Histogram) SelRange(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	s := h.SelLE(hi) - h.SelLE(lo)
	if s < 0 {
		return 0
	}
	return s
}

// SelEq returns the selectivity of "col = v": the containing bucket's
// fraction divided by an assumed uniform spread over distinctInBucket
// values. distinct is the column's total distinct count, apportioned to
// buckets by row mass.
func (h *Histogram) SelEq(v, distinct float64) float64 {
	if v < h.bounds[0] || v > h.bounds[len(h.bounds)-1] || distinct <= 0 {
		return 0
	}
	for i, c := range h.counts {
		lo, hi := h.bounds[i], h.bounds[i+1]
		inBucket := (i == 0 && v >= lo && v <= hi) || (v > lo && v <= hi)
		if inBucket {
			frac := c / h.total
			dInBucket := distinct * frac
			if dInBucket < 1 {
				dInBucket = 1
			}
			return frac / dInBucket
		}
	}
	return 0
}

// SelLELaw returns a distribution over the selectivity of "col <= v"
// capturing within-bucket uncertainty — the raw material the paper's
// Algorithm D needs for "notoriously uncertain" selectivities (§3.6). The
// point estimate assumes the containing bucket's rows are uniformly
// spread; in truth they could all sit below v (selectivity = everything
// through the bucket) or all above it (selectivity = everything before
// the bucket). The law is {sLo, sMid, sHi} with pCenter mass on the
// interpolated estimate and the remainder split between the extremes.
// Values outside the histogram's range return a point law (no
// uncertainty).
func (h *Histogram) SelLELaw(v float64, pCenter float64) (dist.Dist, error) {
	if pCenter < 0 || pCenter > 1 {
		return dist.Dist{}, fmt.Errorf("%w: pCenter %v", ErrBadHist, pCenter)
	}
	if v < h.bounds[0] {
		return dist.Point(0), nil
	}
	if v >= h.bounds[len(h.bounds)-1] {
		return dist.Point(1), nil
	}
	below := 0.0
	for i, c := range h.counts {
		lo, hi := h.bounds[i], h.bounds[i+1]
		if v >= hi {
			below += c
			continue
		}
		// v falls in bucket i.
		sLo := below / h.total
		sHi := (below + c) / h.total
		sMid := sLo
		if hi > lo {
			sMid += c * (v - lo) / (hi - lo) / h.total
		}
		side := (1 - pCenter) / 2
		return dist.New([]float64{sLo, sMid, sHi}, []float64{side, pCenter, side})
	}
	return dist.Point(1), nil
}

// ToDist converts the histogram into a discrete distribution over bucket
// centers weighted by row mass — the raw material for size/selectivity
// distributions in Algorithm D.
func (h *Histogram) ToDist() dist.Dist {
	vals := make([]float64, len(h.counts))
	probs := make([]float64, len(h.counts))
	for i, c := range h.counts {
		vals[i] = (h.bounds[i] + h.bounds[i+1]) / 2
		probs[i] = c
	}
	return dist.MustNew(vals, probs)
}
