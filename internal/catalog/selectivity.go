package catalog

import (
	"fmt"
	"math"

	"lecopt/internal/dist"
)

// CmpOp is a comparison operator in a local filter predicate.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// FilterSelectivity estimates the fraction of rows of table.column
// satisfying "column op value", using the column's histogram when present
// and System R's classical defaults otherwise (1/distinct for equality,
// linear interpolation over [min,max] for ranges).
func (c *Catalog) FilterSelectivity(table, column string, op CmpOp, value float64) (float64, error) {
	t, err := c.Table(table)
	if err != nil {
		return 0, err
	}
	col, err := t.Column(column)
	if err != nil {
		return 0, err
	}
	if col.Hist != nil {
		switch op {
		case OpEq:
			return clampSel(col.Hist.SelEq(value, col.Distinct)), nil
		case OpLe:
			return clampSel(col.Hist.SelLE(value)), nil
		case OpLt:
			return clampSel(col.Hist.SelLE(math.Nextafter(value, math.Inf(-1)))), nil
		case OpGt:
			return clampSel(1 - col.Hist.SelLE(value)), nil
		case OpGe:
			return clampSel(1 - col.Hist.SelLE(math.Nextafter(value, math.Inf(-1)))), nil
		}
	}
	// Statistics-only fallback.
	switch op {
	case OpEq:
		return clampSel(1 / col.Distinct), nil
	case OpLt, OpLe:
		return clampSel(rangeFrac(col, value)), nil
	case OpGt, OpGe:
		return clampSel(1 - rangeFrac(col, value)), nil
	}
	return 0, fmt.Errorf("%w: unknown op %v", ErrBadStats, op)
}

func rangeFrac(col Column, v float64) float64 {
	if col.Max == col.Min {
		if v >= col.Max {
			return 1
		}
		return 0
	}
	return (v - col.Min) / (col.Max - col.Min)
}

func clampSel(s float64) float64 {
	if math.IsNaN(s) || s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// JoinRowSelectivity estimates the classical row selectivity of an
// equi-join a.x = b.y: 1/max(V(a.x), V(b.y)).
func (c *Catalog) JoinRowSelectivity(aTable, aCol, bTable, bCol string) (float64, error) {
	at, err := c.Table(aTable)
	if err != nil {
		return 0, err
	}
	ac, err := at.Column(aCol)
	if err != nil {
		return 0, err
	}
	bt, err := c.Table(bTable)
	if err != nil {
		return 0, err
	}
	bc, err := bt.Column(bCol)
	if err != nil {
		return 0, err
	}
	v := math.Max(ac.Distinct, bc.Distinct)
	if v < 1 {
		v = 1
	}
	return 1 / v, nil
}

// PageSelectivity converts a row selectivity for joining tables a and b
// into the paper's page-scaled selectivity σ, defined so that the join
// result occupies pagesOut = σ · pages(a) · pages(b) pages. The result
// tuple density is approximated as the max of the input densities (wide
// rows dominate page count).
func PageSelectivity(rowSel, rowsA, pagesA, rowsB, pagesB float64) float64 {
	if pagesA <= 0 || pagesB <= 0 {
		return 0
	}
	outRows := rowSel * rowsA * rowsB
	tpp := math.Max(rowsA/pagesA, rowsB/pagesB)
	if tpp <= 0 {
		return 0
	}
	outPages := outRows / tpp
	if outPages < 0 {
		return 0
	}
	return outPages / (pagesA * pagesB)
}

// JoinPageSelectivity is the catalog-level convenience composing
// JoinRowSelectivity and PageSelectivity for a.x = b.y.
func (c *Catalog) JoinPageSelectivity(aTable, aCol, bTable, bCol string) (float64, error) {
	rowSel, err := c.JoinRowSelectivity(aTable, aCol, bTable, bCol)
	if err != nil {
		return 0, err
	}
	at, _ := c.Table(aTable)
	bt, _ := c.Table(bTable)
	return PageSelectivity(rowSel, at.Rows, at.Pages, bt.Rows, bt.Pages), nil
}

// SelectivityDist wraps a point selectivity estimate in an uncertainty
// band: a three-point distribution at {s/f, s, s·f} with the given center
// probability, truncated to (0, 1]. This is how Algorithm D scenarios turn
// "notoriously uncertain" selectivity estimates (Section 3.6) into laws.
func SelectivityDist(point, factor, pCenter float64) (dist.Dist, error) {
	if point <= 0 || point > 1 || factor < 1 || pCenter < 0 || pCenter > 1 {
		return dist.Dist{}, fmt.Errorf("%w: SelectivityDist(point=%v factor=%v pCenter=%v)",
			ErrBadStats, point, factor, pCenter)
	}
	if factor == 1 {
		return dist.Point(point), nil
	}
	lo, hi := point/factor, math.Min(point*factor, 1)
	side := (1 - pCenter) / 2
	return dist.New([]float64{lo, point, hi}, []float64{side, pCenter, side})
}
