package catalog

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
)

// Fingerprint returns a stable hex digest of the catalog's full statistical
// content: every table (pages, rows, columns with type/distinct/domain and
// histogram buckets) and every index. Tables, columns and indexes are hashed
// in name order, so two catalogs with identical statistics produce identical
// fingerprints regardless of registration order and the fingerprint can key
// caches of optimization results — any statistics change (new histogram,
// updated row count, added index) changes the digest and naturally
// invalidates stale cached plans.
//
// The digest is computed once and memoized until the next AddTable/AddIndex;
// serving workloads therefore pay the hash per catalog version, not per
// query. Callers that revise a registered *Table's statistics in place must
// call InvalidateFingerprint afterwards, or stale plan-cache keys will keep
// serving plans optimized for the old statistics.
func (c *Catalog) Fingerprint() string {
	c.fpMu.Lock()
	defer c.fpMu.Unlock()
	if c.fp == "" {
		c.fp = c.fingerprint()
	}
	return c.fp
}

// BandedFingerprint is Fingerprint with every column's distinct count
// quantized into a geometric band of the given base before hashing: the
// digest covers floor(log_base(min(distinct, rows))), not the exact value.
// Two catalogs that differ only by statistics drift *within* a band —
// e.g. an ANALYZE-time distinct count and its 2x-drifted descendant —
// therefore hash equal, which is what lets a drift-banded plan cache keep
// serving a drifting tenant from cache. Pages, rows, histograms and
// indexes stay exact: the band absorbs the drift axis only.
//
// base must exceed 1; any other value falls back to the exact Fingerprint.
// Digests are memoized per base until the next mutation.
func (c *Catalog) BandedFingerprint(base float64) string {
	return c.BandedFingerprintMargin(base, 0)
}

// BandedFingerprintMargin is BandedFingerprint with every band index
// offset by margin (in band units) before flooring — the probe digest of
// band-edge hysteresis. A catalog whose distinct counts sit within
// |margin| of a band boundary hashes, under the matching-signed margin,
// identically to a neighbor on the boundary's other side: a small drift
// step that happens to cross a floor(log_base) boundary can therefore be
// recognized as the in-band neighbor it really is, instead of splitting
// the plan cache. Margin 0 is the plain banded digest. Digests are
// memoized per (base, margin) until the next mutation.
func (c *Catalog) BandedFingerprintMargin(base, margin float64) string {
	if !(base > 1) {
		return c.Fingerprint()
	}
	key := bandKey{base: base, margin: margin}
	c.fpMu.Lock()
	defer c.fpMu.Unlock()
	if fp, ok := c.bandedFP[key]; ok {
		return fp
	}
	fp := c.fingerprintBanded(base, margin)
	if c.bandedFP == nil {
		c.bandedFP = make(map[bandKey]string)
	}
	c.bandedFP[key] = fp
	return fp
}

// bandKey memoizes banded digests per (base, margin).
type bandKey struct {
	base, margin float64
}

// distinctBand quantizes a distinct count: the effective value is clamped
// to [1, rows] (a distinct count beyond the row count is statistically
// meaningless and is exactly what multiplicative drift produces), then
// bucketed geometrically, with the band index offset by margin before
// flooring (0 for the canonical band; ± a fraction for hysteresis probes).
func distinctBand(distinct, rows, base, margin float64) int {
	eff := distinct
	if rows > 0 && eff > rows {
		eff = rows
	}
	if eff < 1 {
		eff = 1
	}
	return int(math.Floor(math.Log(eff)/math.Log(base) + margin))
}

// InvalidateFingerprint drops the memoized digest. AddTable/AddIndex call it
// automatically; it is exported for callers that mutate registered table
// statistics in place, which the memo cannot observe.
func (c *Catalog) InvalidateFingerprint() { c.invalidateFingerprint() }

// invalidateFingerprint drops the memoized digests after a mutation.
func (c *Catalog) invalidateFingerprint() {
	c.fpMu.Lock()
	c.fp = ""
	c.bandedFP = nil
	c.fpMu.Unlock()
}

func (c *Catalog) fingerprint() string { return c.fingerprintBanded(0, 0) }

// fingerprintBanded hashes the catalog with distinct counts either exact
// (base <= 1) or quantized into geometric bands of the given base, offset
// by margin band units (hysteresis probes).
func (c *Catalog) fingerprintBanded(base, margin float64) string {
	h := sha256.New()
	for _, name := range c.TableNames() { // sorted
		t := c.tables[name]
		fmt.Fprintf(h, "table %s pages=%v rows=%v\n", t.Name, t.Pages, t.Rows)
		cols := append([]Column(nil), t.columns...)
		sort.Slice(cols, func(i, j int) bool { return cols[i].Name < cols[j].Name })
		for _, col := range cols {
			if base > 1 {
				fmt.Fprintf(h, "col %s type=%d dband=%d min=%v max=%v\n",
					col.Name, col.Type, distinctBand(col.Distinct, t.Rows, base, margin), col.Min, col.Max)
			} else {
				fmt.Fprintf(h, "col %s type=%d distinct=%v min=%v max=%v\n",
					col.Name, col.Type, col.Distinct, col.Min, col.Max)
			}
			if col.Hist != nil {
				col.Hist.fingerprint(h)
			}
		}
	}
	ixNames := make([]string, 0, len(c.indexes))
	for name := range c.indexes {
		ixNames = append(ixNames, name)
	}
	sort.Strings(ixNames)
	for _, name := range ixNames {
		ix := c.indexes[name]
		fmt.Fprintf(h, "index %s on=%s.%s clustered=%v height=%v\n",
			ix.Name, ix.Table, ix.Column, ix.Clustered, ix.Height)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprint writes the histogram's buckets into a digest stream.
func (hist *Histogram) fingerprint(w io.Writer) {
	fmt.Fprintf(w, "hist bounds=%v counts=%v\n", hist.bounds, hist.counts)
}
