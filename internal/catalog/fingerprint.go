package catalog

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
)

// Fingerprint returns a stable hex digest of the catalog's full statistical
// content: every table (pages, rows, columns with type/distinct/domain and
// histogram buckets) and every index. Tables, columns and indexes are hashed
// in name order, so two catalogs with identical statistics produce identical
// fingerprints regardless of registration order and the fingerprint can key
// caches of optimization results — any statistics change (new histogram,
// updated row count, added index) changes the digest and naturally
// invalidates stale cached plans.
//
// The digest is computed once and memoized until the next AddTable/AddIndex;
// serving workloads therefore pay the hash per catalog version, not per
// query. Callers that revise a registered *Table's statistics in place must
// call InvalidateFingerprint afterwards, or stale plan-cache keys will keep
// serving plans optimized for the old statistics.
func (c *Catalog) Fingerprint() string {
	c.fpMu.Lock()
	defer c.fpMu.Unlock()
	if c.fp == "" {
		c.fp = c.fingerprint()
	}
	return c.fp
}

// InvalidateFingerprint drops the memoized digest. AddTable/AddIndex call it
// automatically; it is exported for callers that mutate registered table
// statistics in place, which the memo cannot observe.
func (c *Catalog) InvalidateFingerprint() { c.invalidateFingerprint() }

// invalidateFingerprint drops the memoized digest after a mutation.
func (c *Catalog) invalidateFingerprint() {
	c.fpMu.Lock()
	c.fp = ""
	c.fpMu.Unlock()
}

func (c *Catalog) fingerprint() string {
	h := sha256.New()
	for _, name := range c.TableNames() { // sorted
		t := c.tables[name]
		fmt.Fprintf(h, "table %s pages=%v rows=%v\n", t.Name, t.Pages, t.Rows)
		cols := append([]Column(nil), t.columns...)
		sort.Slice(cols, func(i, j int) bool { return cols[i].Name < cols[j].Name })
		for _, col := range cols {
			fmt.Fprintf(h, "col %s type=%d distinct=%v min=%v max=%v\n",
				col.Name, col.Type, col.Distinct, col.Min, col.Max)
			if col.Hist != nil {
				col.Hist.fingerprint(h)
			}
		}
	}
	ixNames := make([]string, 0, len(c.indexes))
	for name := range c.indexes {
		ixNames = append(ixNames, name)
	}
	sort.Strings(ixNames)
	for _, name := range ixNames {
		ix := c.indexes[name]
		fmt.Fprintf(h, "index %s on=%s.%s clustered=%v height=%v\n",
			ix.Name, ix.Table, ix.Column, ix.Clustered, ix.Height)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprint writes the histogram's buckets into a digest stream.
func (hist *Histogram) fingerprint(w io.Writer) {
	fmt.Fprintf(w, "hist bounds=%v counts=%v\n", hist.bounds, hist.counts)
}
