package catalog

import (
	"errors"
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func col(name string, distinct, min, max float64) Column {
	return Column{Name: name, Type: TypeInt, Distinct: distinct, Min: min, Max: max}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("", 10, 100); !errors.Is(err, ErrBadStats) {
		t.Fatal("empty name should fail")
	}
	if _, err := NewTable("t", 0, 100); !errors.Is(err, ErrBadStats) {
		t.Fatal("zero pages should fail")
	}
	if _, err := NewTable("t", 10, -1); !errors.Is(err, ErrBadStats) {
		t.Fatal("negative rows should fail")
	}
	if _, err := NewTable("t", 10, 100, col("a", 0, 0, 1)); !errors.Is(err, ErrBadStats) {
		t.Fatal("zero distinct should fail")
	}
	if _, err := NewTable("t", 10, 100, col("a", 5, 2, 1)); !errors.Is(err, ErrBadStats) {
		t.Fatal("max<min should fail")
	}
	if _, err := NewTable("t", 10, 100, col("a", 5, 0, 9), col("a", 5, 0, 9)); !errors.Is(err, ErrDupColumn) {
		t.Fatal("dup column should fail")
	}
	tab, err := NewTable("t", 10, 100, col("a", 5, 0, 9))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tab.TuplesPerPage(), 10, 1e-12, "tpp")
	if _, err := tab.Column("missing"); !errors.Is(err, ErrNoColumn) {
		t.Fatal("missing column should fail")
	}
	if got := len(tab.Columns()); got != 1 {
		t.Fatalf("Columns len = %d", got)
	}
}

func TestCatalogTablesAndIndexes(t *testing.T) {
	c := New()
	a := MustTable("a", 100, 1000, col("x", 100, 0, 999))
	if err := c.AddTable(a); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(a); !errors.Is(err, ErrDupTable) {
		t.Fatal("dup table should fail")
	}
	if !c.HasTable("a") || c.HasTable("zz") {
		t.Fatal("HasTable wrong")
	}
	if _, err := c.Table("zz"); !errors.Is(err, ErrNoTable) {
		t.Fatal("missing table should fail")
	}

	if err := c.AddIndex(Index{Name: "ix_ax", Table: "a", Column: "x", Height: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(Index{Name: "ix_ax", Table: "a", Column: "x"}); !errors.Is(err, ErrDupIndex) {
		t.Fatal("dup index should fail")
	}
	if err := c.AddIndex(Index{Name: "ix2", Table: "zz", Column: "x"}); !errors.Is(err, ErrNoTable) {
		t.Fatal("index on missing table should fail")
	}
	if err := c.AddIndex(Index{Name: "ix2", Table: "a", Column: "zz"}); !errors.Is(err, ErrNoColumn) {
		t.Fatal("index on missing column should fail")
	}
	if err := c.AddIndex(Index{Name: "ix3", Table: "a", Column: "x", Height: -1}); !errors.Is(err, ErrBadStats) {
		t.Fatal("negative height should fail")
	}
	if err := c.AddIndex(Index{Name: ""}); !errors.Is(err, ErrBadStats) {
		t.Fatal("empty index name should fail")
	}

	ix, err := c.Index("ix_ax")
	if err != nil || ix.Table != "a" {
		t.Fatalf("Index lookup: %v %v", ix, err)
	}
	if _, err := c.Index("nope"); !errors.Is(err, ErrNoIndex) {
		t.Fatal("missing index should fail")
	}
	if got := c.IndexesOn("a"); len(got) != 1 {
		t.Fatalf("IndexesOn = %v", got)
	}
	if _, ok := c.IndexOn("a", "x"); !ok {
		t.Fatal("IndexOn should find ix_ax")
	}
	if _, ok := c.IndexOn("a", "y"); ok {
		t.Fatal("IndexOn should miss")
	}

	b := MustTable("b", 10, 50, col("y", 10, 0, 9))
	if err := c.AddTable(b); err != nil {
		t.Fatal(err)
	}
	names := c.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("TableNames = %v", names)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram([]float64{0, 1}, nil); !errors.Is(err, ErrBadHist) {
		t.Fatal("empty counts should fail")
	}
	if _, err := NewHistogram([]float64{0, 0}, []float64{1}); !errors.Is(err, ErrBadHist) {
		t.Fatal("non-increasing bounds should fail")
	}
	if _, err := NewHistogram([]float64{0, 1}, []float64{-1}); !errors.Is(err, ErrBadHist) {
		t.Fatal("negative count should fail")
	}
	if _, err := NewHistogram([]float64{0, 1}, []float64{0}); !errors.Is(err, ErrBadHist) {
		t.Fatal("zero rows should fail")
	}
	if _, err := EquiWidthHistogram(5, 5, []float64{1}); !errors.Is(err, ErrBadHist) {
		t.Fatal("empty range should fail")
	}
}

func TestHistogramSelectivities(t *testing.T) {
	// 4 equal-width buckets over [0,100), 25 rows each.
	h, err := EquiWidthHistogram(0, 100, []float64{25, 25, 25, 25})
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 4 || h.Rows() != 100 {
		t.Fatal("shape wrong")
	}
	approx(t, h.SelLE(-5), 0, 1e-12, "below domain")
	approx(t, h.SelLE(100), 1, 1e-12, "at top")
	approx(t, h.SelLE(50), 0.5, 1e-12, "midpoint")
	approx(t, h.SelLE(12.5), 0.125, 1e-12, "within first bucket")
	approx(t, h.SelRange(25, 75), 0.5, 1e-12, "middle half")
	approx(t, h.SelRange(75, 25), 0, 1e-12, "empty range")
	// Equality: bucket holds 25% of rows and 25% of the 50 distinct values.
	approx(t, h.SelEq(30, 50), 0.25/12.5, 1e-12, "equality")
	approx(t, h.SelEq(-1, 50), 0, 1e-12, "equality below domain")
	approx(t, h.SelEq(30, 0), 0, 1e-12, "zero distinct")
}

func TestHistogramSkewed(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10, 100}, []float64{90, 10})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, h.SelLE(10), 0.9, 1e-12, "head bucket")
	approx(t, h.SelLE(55), 0.9+0.1*0.5, 1e-12, "half of tail")
	d := h.ToDist()
	if d.Len() != 2 {
		t.Fatal("ToDist buckets")
	}
	approx(t, d.Prob(0), 0.9, 1e-12, "ToDist head mass")
	approx(t, d.Value(0), 5, 1e-12, "ToDist head center")
}

func TestEquiDepthFromSamples(t *testing.T) {
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = float64(i * i % 997) // deterministic scatter
	}
	h, err := EquiDepthFromSamples(samples, 10, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() == 0 || h.Buckets() > 10 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
	approx(t, h.Rows(), 50000, 1, "total rows scaled")
	// Depth balance: each bucket within 3x of the ideal share.
	ideal := 50000.0 / float64(h.Buckets())
	for i, c := range h.Counts() {
		if c > 3*ideal || c < ideal/3 {
			t.Fatalf("bucket %d badly unbalanced: %v vs ideal %v", i, c, ideal)
		}
	}
	if _, err := EquiDepthFromSamples(nil, 4, 100); !errors.Is(err, ErrBadHist) {
		t.Fatal("no samples should fail")
	}
}

func TestFilterSelectivity(t *testing.T) {
	c := New()
	hist, _ := EquiWidthHistogram(0, 100, []float64{50, 50})
	tab := MustTable("t", 100, 1000,
		Column{Name: "h", Type: TypeInt, Distinct: 100, Min: 0, Max: 100, Hist: hist},
		col("plain", 20, 0, 99),
	)
	if err := c.AddTable(tab); err != nil {
		t.Fatal(err)
	}

	s, err := c.FilterSelectivity("t", "h", OpLe, 50)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s, 0.5, 1e-9, "hist <=")
	s, _ = c.FilterSelectivity("t", "h", OpGt, 50)
	approx(t, s, 0.5, 1e-9, "hist >")
	s, _ = c.FilterSelectivity("t", "h", OpEq, 25)
	approx(t, s, 0.5/50, 1e-9, "hist =")
	sLT, _ := c.FilterSelectivity("t", "h", OpLt, 50)
	sGE, _ := c.FilterSelectivity("t", "h", OpGe, 50)
	approx(t, sLT+sGE, 1, 1e-9, "< and >= partition")

	s, _ = c.FilterSelectivity("t", "plain", OpEq, 7)
	approx(t, s, 1.0/20, 1e-9, "1/distinct fallback")
	s, _ = c.FilterSelectivity("t", "plain", OpLt, 49.5)
	approx(t, s, 0.5, 1e-9, "range fallback")
	s, _ = c.FilterSelectivity("t", "plain", OpGe, -5)
	approx(t, s, 1, 1e-9, "clamped high")

	if _, err := c.FilterSelectivity("zz", "h", OpEq, 1); !errors.Is(err, ErrNoTable) {
		t.Fatal("missing table")
	}
	if _, err := c.FilterSelectivity("t", "zz", OpEq, 1); !errors.Is(err, ErrNoColumn) {
		t.Fatal("missing column")
	}
}

func TestDegenerateDomainFallback(t *testing.T) {
	c := New()
	tab := MustTable("t", 10, 100, col("k", 1, 5, 5))
	if err := c.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	s, err := c.FilterSelectivity("t", "k", OpLe, 5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s, 1, 1e-12, "point domain, v at point")
	s, _ = c.FilterSelectivity("t", "k", OpLe, 4)
	approx(t, s, 0, 1e-12, "point domain, v below")
}

func TestJoinSelectivities(t *testing.T) {
	c := New()
	a := MustTable("a", 1000, 100000, col("k", 50000, 0, 1e6))
	b := MustTable("b", 400, 40000, col("k", 40000, 0, 1e6))
	if err := c.AddTable(a); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(b); err != nil {
		t.Fatal(err)
	}
	rs, err := c.JoinRowSelectivity("a", "k", "b", "k")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rs, 1.0/50000, 1e-15, "1/max(V)")

	// Page-scaled σ: outRows = rs·rowsA·rowsB; tpp = max(100,100) = 100;
	// outPages = outRows/100; σ = outPages/(pagesA·pagesB).
	ps, err := c.JoinPageSelectivity("a", "k", "b", "k")
	if err != nil {
		t.Fatal(err)
	}
	outRows := rs * 100000 * 40000
	wantSigma := (outRows / 100) / (1000 * 400)
	approx(t, ps, wantSigma, 1e-15, "page sigma")

	// The defining property of σ: pagesOut = σ·|A|·|B|.
	approx(t, ps*1000*400, outRows/100, 1e-9, "sigma reproduces pages")

	if _, err := c.JoinRowSelectivity("zz", "k", "b", "k"); !errors.Is(err, ErrNoTable) {
		t.Fatal("missing left table")
	}
	if _, err := c.JoinRowSelectivity("a", "zz", "b", "k"); !errors.Is(err, ErrNoColumn) {
		t.Fatal("missing left column")
	}
	if _, err := c.JoinRowSelectivity("a", "k", "zz", "k"); !errors.Is(err, ErrNoTable) {
		t.Fatal("missing right table")
	}
	if _, err := c.JoinRowSelectivity("a", "k", "b", "zz"); !errors.Is(err, ErrNoColumn) {
		t.Fatal("missing right column")
	}
}

func TestPageSelectivityEdgeCases(t *testing.T) {
	if got := PageSelectivity(0.5, 10, 0, 10, 5); got != 0 {
		t.Fatal("zero pages should yield 0")
	}
	if got := PageSelectivity(0, 100, 10, 100, 10); got != 0 {
		t.Fatal("zero row sel should yield 0")
	}
}

func TestSelectivityDist(t *testing.T) {
	d, err := SelectivityDist(0.01, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	approx(t, d.Value(0), 0.0025, 1e-12, "low")
	approx(t, d.Value(2), 0.04, 1e-12, "high")
	approx(t, d.PrBetween(0.005, 0.02), 0.5, 1e-12, "center mass")

	// Truncation at 1.
	d, err = SelectivityDist(0.5, 4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Max(), 1, 1e-12, "truncated to 1")

	p, err := SelectivityDist(0.3, 1, 0.9)
	if err != nil || p.Len() != 1 {
		t.Fatal("factor 1 should be a point")
	}
	if _, err := SelectivityDist(0, 2, 0.5); err == nil {
		t.Fatal("zero point should fail")
	}
	if _, err := SelectivityDist(0.5, 0.5, 0.5); err == nil {
		t.Fatal("factor<1 should fail")
	}
	if _, err := SelectivityDist(0.5, 2, 1.5); err == nil {
		t.Fatal("bad pCenter should fail")
	}
}

func TestSelLELaw(t *testing.T) {
	h, err := EquiWidthHistogram(0, 100, []float64{25, 25, 25, 25})
	if err != nil {
		t.Fatal(err)
	}
	// v = 30 sits in bucket (25,50]: below = 25 rows, bucket = 25 rows.
	law, err := h.SelLELaw(30, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if law.Len() != 3 {
		t.Fatalf("law = %v", law)
	}
	approx(t, law.Min(), 0.25, 1e-12, "sLo: bucket entirely above v")
	approx(t, law.Max(), 0.50, 1e-12, "sHi: bucket entirely below v")
	approx(t, law.Mean(), 0.5*0.3+0.25*(0.25+0.5), 1e-12, "mid-weighted mean")
	// The point estimate sits inside the law's support.
	point := h.SelLE(30)
	if point < law.Min() || point > law.Max() {
		t.Fatalf("point estimate %v outside law %v", point, law)
	}

	// Out-of-range values carry no uncertainty.
	lo, err := h.SelLELaw(-5, 0.5)
	if err != nil || lo.Len() != 1 || lo.Value(0) != 0 {
		t.Fatalf("below range: %v %v", lo, err)
	}
	hi, err := h.SelLELaw(100, 0.5)
	if err != nil || hi.Len() != 1 || hi.Value(0) != 1 {
		t.Fatalf("at top: %v %v", hi, err)
	}
	if _, err := h.SelLELaw(30, 1.5); !errors.Is(err, ErrBadHist) {
		t.Fatal("bad pCenter should fail")
	}
	// pCenter=1 collapses to the point estimate.
	pt, err := h.SelLELaw(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, pt.Mean(), point, 1e-12, "pCenter=1 mean")
}

func TestColumnTypeAndOpStrings(t *testing.T) {
	if TypeInt.String() != "int" || TypeFloat.String() != "float" || TypeString.String() != "string" {
		t.Fatal("type strings")
	}
	if ColumnType(99).String() == "" {
		t.Fatal("unknown type string")
	}
	ops := map[CmpOp]string{OpEq: "=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, s := range ops {
		if op.String() != s {
			t.Fatalf("op %d string = %q want %q", op, op.String(), s)
		}
	}
	if CmpOp(99).String() == "" {
		t.Fatal("unknown op string")
	}
}

func TestScaleDistinct(t *testing.T) {
	cat := New()
	tab, err := NewTable("t", 100, 1000,
		Column{Name: "k", Type: TypeInt, Distinct: 600, Min: 0, Max: 600},
		Column{Name: "v", Type: TypeInt, Distinct: 10, Min: 0, Max: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddIndex(Index{Name: "ix", Table: "t", Column: "k", Height: 2}); err != nil {
		t.Fatal(err)
	}
	same, err := cat.ScaleDistinct(1)
	if err != nil {
		t.Fatal(err)
	}
	if same != cat {
		t.Fatal("factor 1 must return the receiver")
	}
	up, err := cat.ScaleDistinct(3)
	if err != nil {
		t.Fatal(err)
	}
	ut, err := up.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	k, _ := ut.Column("k")
	v, _ := ut.Column("v")
	if k.Distinct != 1000 { // 1800 clamped to rows
		t.Fatalf("k distinct: %v", k.Distinct)
	}
	if v.Distinct != 30 {
		t.Fatalf("v distinct: %v", v.Distinct)
	}
	if _, err := up.Index("ix"); err != nil {
		t.Fatal("indexes must be copied")
	}
	down, err := cat.ScaleDistinct(0.0001)
	if err != nil {
		t.Fatal(err)
	}
	dt, _ := down.Table("t")
	dk, _ := dt.Column("k")
	if dk.Distinct != 1 { // floored at 1
		t.Fatalf("floor clamp: %v", dk.Distinct)
	}
	if _, err := cat.ScaleDistinct(-1); err == nil {
		t.Fatal("negative factor must fail")
	}
	// The original catalog is untouched.
	ot, _ := cat.Table("t")
	ok2, _ := ot.Column("k")
	if ok2.Distinct != 600 {
		t.Fatalf("receiver mutated: %v", ok2.Distinct)
	}
}

func TestBandedFingerprint(t *testing.T) {
	build := func(distinct float64) *Catalog {
		c := New()
		tab, err := NewTable("t", 100, 10_000,
			Column{Name: "k", Type: TypeInt, Distinct: distinct, Min: 0, Max: 1e6})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddTable(tab); err != nil {
			t.Fatal(err)
		}
		return c
	}
	base := build(600)
	inBand := build(780)    // same log2 band [512, 1024)
	outBand := build(2400)  // two bands up
	clamped := build(20000) // clamps to rows
	if base.BandedFingerprint(2) != inBand.BandedFingerprint(2) {
		t.Fatal("in-band distinct counts must hash equal")
	}
	if base.BandedFingerprint(2) == outBand.BandedFingerprint(2) {
		t.Fatal("cross-band distinct counts must differ")
	}
	if base.Fingerprint() == inBand.Fingerprint() {
		t.Fatal("exact fingerprints must differ")
	}
	if clamped.BandedFingerprint(2) != build(10_000).BandedFingerprint(2) {
		t.Fatal("distinct beyond rows must clamp to the row-count band")
	}
	// base <= 1 falls back to the exact fingerprint.
	if base.BandedFingerprint(1) != base.Fingerprint() {
		t.Fatal("band base 1 must be the exact fingerprint")
	}
	// Memoization survives and invalidates with mutations.
	fp := base.BandedFingerprint(2)
	if base.BandedFingerprint(2) != fp {
		t.Fatal("memo broken")
	}
	tab2, err := NewTable("u", 10, 100, Column{Name: "k", Distinct: 5, Min: 0, Max: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.AddTable(tab2); err != nil {
		t.Fatal(err)
	}
	if base.BandedFingerprint(2) == fp {
		t.Fatal("mutation must invalidate the banded memo")
	}
}
