package catalog

import (
	"fmt"
	"math"
	"sort"
)

// ScaleDistinct returns a copy of the catalog with every column's distinct
// count multiplied by factor and clamped to [1, rows] — the "stale
// statistics" transform of multiplicative drift: the data the optimizer
// believes in has drifted by factor from what ANALYZE recorded. Pages,
// rows, histograms and indexes are copied unchanged (histogram bucket
// counts describe value frequencies, which this drift model leaves alone).
// Factor 1 returns the receiver itself.
func (c *Catalog) ScaleDistinct(factor float64) (*Catalog, error) {
	if factor == 1 {
		return c, nil
	}
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("%w: drift factor %v", ErrBadStats, factor)
	}
	out := New()
	for _, name := range c.TableNames() {
		t := c.tables[name]
		cols := t.Columns()
		for i, col := range cols {
			d := math.Round(col.Distinct * factor)
			if d < 1 {
				d = 1
			}
			if d > t.Rows {
				d = t.Rows
			}
			cols[i].Distinct = d
		}
		nt, err := NewTable(name, t.Pages, t.Rows, cols...)
		if err != nil {
			return nil, err
		}
		if err := out.AddTable(nt); err != nil {
			return nil, err
		}
	}
	ixNames := make([]string, 0, len(c.indexes))
	for name := range c.indexes {
		ixNames = append(ixNames, name)
	}
	sort.Strings(ixNames)
	for _, name := range ixNames {
		if err := out.AddIndex(*c.indexes[name]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
