// Package catalog implements the database catalog substrate the optimizer
// reads: tables with page/row counts, columns with domain statistics,
// secondary indexes, and histograms for selectivity estimation.
//
// The LEC paper (Chu, Halpern, Seshadri, PODS 1999) assumes "the DBMS in
// practice is constantly gathering statistical information"; this package
// is that statistics store. It supplies the point estimates the classical
// LSC optimizer uses and the raw material (histograms, distinct counts)
// from which the LEC algorithms derive their parameter distributions.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by catalog operations.
var (
	ErrDupTable    = errors.New("catalog: duplicate table")
	ErrDupColumn   = errors.New("catalog: duplicate column")
	ErrDupIndex    = errors.New("catalog: duplicate index")
	ErrNoTable     = errors.New("catalog: no such table")
	ErrNoColumn    = errors.New("catalog: no such column")
	ErrNoIndex     = errors.New("catalog: no such index")
	ErrBadStats    = errors.New("catalog: invalid statistics")
	ErrBadHist     = errors.New("catalog: invalid histogram")
	ErrEmptyDomain = errors.New("catalog: empty column domain")
)

// ColumnType is the logical type of a column. The optimizer only needs
// numeric ordering, so strings are modeled by their collation rank.
type ColumnType uint8

// Column types.
const (
	TypeInt ColumnType = iota
	TypeFloat
	TypeString
)

func (t ColumnType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	default:
		return fmt.Sprintf("ColumnType(%d)", uint8(t))
	}
}

// Column describes one attribute of a table together with its statistics.
type Column struct {
	Name     string
	Type     ColumnType
	Distinct float64 // number of distinct values (≥1 for non-empty tables)
	Min, Max float64 // numeric domain bounds (collation rank for strings)
	Hist     *Histogram
}

// Table describes a stored relation.
type Table struct {
	Name    string
	Pages   float64 // size in disk pages — the |A| of the paper's formulas
	Rows    float64
	columns []Column
	byName  map[string]int
}

// Index describes a secondary B+-tree index over a single column.
type Index struct {
	Name      string
	Table     string
	Column    string
	Clustered bool
	Height    float64 // non-leaf levels traversed per probe
}

// Catalog is a collection of tables and indexes. The zero value is empty
// and ready to use via AddTable/AddIndex.
type Catalog struct {
	tables  map[string]*Table
	indexes map[string]*Index
	byTable map[string][]*Index

	// fp memoizes Fingerprint between mutations (guarded by fpMu, since
	// concurrent optimizations share read-only catalogs); bandedFP
	// memoizes BandedFingerprint per band base.
	fpMu     sync.Mutex
	fp       string
	bandedFP map[bandKey]string
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*Table),
		indexes: make(map[string]*Index),
		byTable: make(map[string][]*Index),
	}
}

// NewTable builds a table with validated statistics. TuplesPerPage is
// derived as Rows/Pages.
func NewTable(name string, pages, rows float64, cols ...Column) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty table name", ErrBadStats)
	}
	if pages <= 0 || rows <= 0 {
		return nil, fmt.Errorf("%w: table %s must have positive pages and rows", ErrBadStats, name)
	}
	t := &Table{Name: name, Pages: pages, Rows: rows, byName: make(map[string]int)}
	for _, c := range cols {
		if err := t.addColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustTable is NewTable but panics on error; for static schemas and tests.
func MustTable(name string, pages, rows float64, cols ...Column) *Table {
	t, err := NewTable(name, pages, rows, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table) addColumn(c Column) error {
	if c.Name == "" {
		return fmt.Errorf("%w: empty column name on table %s", ErrBadStats, t.Name)
	}
	if _, ok := t.byName[c.Name]; ok {
		return fmt.Errorf("%w: %s.%s", ErrDupColumn, t.Name, c.Name)
	}
	if c.Distinct <= 0 {
		return fmt.Errorf("%w: %s.%s distinct must be positive", ErrBadStats, t.Name, c.Name)
	}
	if c.Max < c.Min {
		return fmt.Errorf("%w: %s.%s max < min", ErrBadStats, t.Name, c.Name)
	}
	t.byName[c.Name] = len(t.columns)
	t.columns = append(t.columns, c)
	return nil
}

// Column returns the named column.
func (t *Table) Column(name string) (Column, error) {
	i, ok := t.byName[name]
	if !ok {
		return Column{}, fmt.Errorf("%w: %s.%s", ErrNoColumn, t.Name, name)
	}
	return t.columns[i], nil
}

// Columns returns the table's columns in declaration order.
func (t *Table) Columns() []Column {
	return append([]Column(nil), t.columns...)
}

// TuplesPerPage returns the average tuple density.
func (t *Table) TuplesPerPage() float64 { return t.Rows / t.Pages }

// AddTable registers a table.
func (c *Catalog) AddTable(t *Table) error {
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDupTable, t.Name)
	}
	c.tables[t.Name] = t
	c.invalidateFingerprint()
	return nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

// HasTable reports whether the table exists.
func (c *Catalog) HasTable(name string) bool {
	_, ok := c.tables[name]
	return ok
}

// TableNames returns all table names, sorted.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddIndex registers an index after validating its target.
func (c *Catalog) AddIndex(ix Index) error {
	if ix.Name == "" {
		return fmt.Errorf("%w: empty index name", ErrBadStats)
	}
	if _, ok := c.indexes[ix.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDupIndex, ix.Name)
	}
	t, err := c.Table(ix.Table)
	if err != nil {
		return err
	}
	if _, err := t.Column(ix.Column); err != nil {
		return err
	}
	if ix.Height < 0 {
		return fmt.Errorf("%w: index %s height negative", ErrBadStats, ix.Name)
	}
	stored := ix
	c.indexes[ix.Name] = &stored
	c.byTable[ix.Table] = append(c.byTable[ix.Table], &stored)
	c.invalidateFingerprint()
	return nil
}

// Index returns the named index.
func (c *Catalog) Index(name string) (Index, error) {
	ix, ok := c.indexes[name]
	if !ok {
		return Index{}, fmt.Errorf("%w: %s", ErrNoIndex, name)
	}
	return *ix, nil
}

// IndexesOn returns the indexes declared on a table (order of creation).
func (c *Catalog) IndexesOn(table string) []Index {
	ptrs := c.byTable[table]
	out := make([]Index, len(ptrs))
	for i, p := range ptrs {
		out[i] = *p
	}
	return out
}

// IndexOn returns the first index on the given table column, if any.
func (c *Catalog) IndexOn(table, column string) (Index, bool) {
	for _, p := range c.byTable[table] {
		if p.Column == column {
			return *p, true
		}
	}
	return Index{}, false
}
