package histo

import (
	"reflect"
	"testing"
)

func TestEmptySummary(t *testing.T) {
	var h Histogram
	if got := h.Summary(); !reflect.DeepEqual(got, Summary{}) {
		t.Fatalf("empty histogram summarized to %+v", got)
	}
}

func TestQuantilesAndBuckets(t *testing.T) {
	var h Histogram
	// 1..100 in scrambled order: quantiles must not depend on insertion
	// order, only on the multiset.
	for i := 100; i >= 1; i-- {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.Count != 100 || s.Max != 100 {
		t.Fatalf("count/max wrong: %+v", s)
	}
	if s.P50 != 50 || s.P90 != 90 || s.P99 != 99 {
		t.Fatalf("nearest-rank quantiles wrong: p50=%v p90=%v p99=%v", s.P50, s.P90, s.P99)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean %v", s.Mean)
	}
	total := 0
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 100 {
		t.Fatalf("buckets cover %d of 100 observations", total)
	}
	// Power-of-two edges: 1, 2, 4, ..., 128 covers max 100.
	if last := s.Buckets[len(s.Buckets)-1].Le; last != 128 {
		t.Fatalf("last bucket edge %v, want 128", last)
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Summary()
	if s.Count != 1 || s.Max != 0 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}

func TestDeterministicSummary(t *testing.T) {
	build := func(order []float64) Summary {
		var h Histogram
		for _, v := range order {
			h.Observe(v)
		}
		return h.Summary()
	}
	a := build([]float64{3, 1, 7, 7, 2})
	b := build([]float64{7, 2, 3, 7, 1})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("summary depends on insertion order:\n%+v\nvs\n%+v", a, b)
	}
}
