// Package histo is the shared per-request latency histogram of the
// benchmark artifacts: BENCH_batch.json records wall-clock optimize
// latency through it, BENCH_fleet.json records virtual (modeled) optimize
// latency through the very same type, so the two artifacts' tail-latency
// surfaces stay comparable across PRs. Values are exact (every observation
// is kept), quantiles are nearest-rank, and the bucketed view is
// power-of-two, so a Summary is a pure function of the observed multiset —
// byte-identical across runs of a deterministic workload.
package histo

import "sort"

// Histogram accumulates observations. The zero value is ready to use. It
// is not concurrency-safe: callers observe from one goroutine (both
// benchmark modes fold results after their pipelines complete).
type Histogram struct {
	vals []float64
}

// Observe records one value. Units are the caller's (the artifacts use
// microseconds); negative values are clamped to zero so a degenerate
// timing can never corrupt the bucket layout.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.vals = append(h.vals, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return len(h.vals) }

// Bucket is one power-of-two histogram bucket: Count observations fell in
// (previous Le, Le].
type Bucket struct {
	Le    float64 `json:"le"`
	Count int     `json:"count"`
}

// Summary is the JSON form of a histogram: nearest-rank quantiles plus the
// power-of-two bucket counts. The artifact unit is documented per field
// site (both current users record microseconds).
type Summary struct {
	Count   int      `json:"count"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Summary computes the histogram's summary. An empty histogram summarizes
// to the zero Summary.
func (h *Histogram) Summary() Summary {
	if len(h.vals) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), h.vals...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		Count:   len(s),
		Mean:    sum / float64(len(s)),
		P50:     quantile(s, 0.50),
		P90:     quantile(s, 0.90),
		P99:     quantile(s, 0.99),
		Max:     s[len(s)-1],
		Buckets: bucketize(s),
	}
}

// quantile is the nearest-rank quantile of a sorted sample (the same rule
// envsim and the serving report use).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// bucketize counts a sorted sample into power-of-two buckets: the first
// bucket is (‑∞, 1], then (1, 2], (2, 4], … up to the bucket covering the
// maximum. Power-of-two edges keep the layout independent of the sample,
// so bucket rows are comparable across artifact generations.
func bucketize(sorted []float64) []Bucket {
	var out []Bucket
	le, i := 1.0, 0
	for i < len(sorted) {
		n := 0
		for i < len(sorted) && sorted[i] <= le {
			n++
			i++
		}
		if n > 0 || len(out) > 0 {
			out = append(out, Bucket{Le: le, Count: n})
		}
		if i < len(sorted) {
			le *= 2
		}
	}
	return out
}
