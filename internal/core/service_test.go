package core

import (
	"errors"
	"math/rand"
	"testing"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/feedback"
	"lecopt/internal/workload"
)

func serviceScenario(t *testing.T, seed int64) workload.Scenario {
	t.Helper()
	sc, err := workload.Generate(workload.DefaultSpec(3, workload.Chain), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func serviceEnv(t *testing.T) envsim.Env {
	t.Helper()
	mem, err := dist.Bimodal(700, 2000, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return envsim.Env{Mem: mem}
}

func TestOptimizeRequiresAQuery(t *testing.T) {
	o := NewOptimizer(nil, Config{})
	if _, err := o.Optimize(Request{Env: serviceEnv(t)}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
	if _, err := o.Optimize(Request{SQL: "SELECT * FROM a"}); !errors.Is(err, ErrNoCatalog) {
		t.Fatalf("want ErrNoCatalog, got %v", err)
	}
	if _, err := o.Prepare("SELECT * FROM a"); !errors.Is(err, ErrNoCatalog) {
		t.Fatalf("Prepare without catalog: got %v", err)
	}
}

// TestOptimizeSQLMatchesBlock: a request carrying SQL answers exactly like
// one carrying the pre-parsed block.
func TestOptimizeSQLMatchesBlock(t *testing.T) {
	sc := serviceScenario(t, 3)
	env := serviceEnv(t)
	o := NewOptimizer(sc.Cat, Config{})
	viaBlock, err := o.Optimize(Request{Query: sc.Block, Env: env, Alg: AlgC})
	if err != nil {
		t.Fatal(err)
	}
	viaSQL, err := o.Optimize(Request{SQL: sc.Block.String(), Env: env, Alg: AlgC})
	if err != nil {
		t.Fatal(err)
	}
	if viaBlock.Plan.Signature() != viaSQL.Plan.Signature() || viaBlock.EC != viaSQL.EC {
		t.Fatalf("SQL path diverged: %s/%v vs %s/%v",
			viaBlock.Plan.Signature(), viaBlock.EC, viaSQL.Plan.Signature(), viaSQL.EC)
	}
	if !viaSQL.CacheHit {
		t.Fatal("identical request must hit the plan cache")
	}
}

// driftCatalog builds a two-table join catalog whose distinct counts sit
// mid-band (600 and 700: both in the log2 band [512, 1024)), so a mild
// multiplicative drift stays in-band while a large one crosses out.
func driftCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for name, distinct := range map[string]float64{"t0": 600, "t1": 700} {
		tab, err := catalog.NewTable(name, 1000, 10_000,
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: distinct, Min: 0, Max: 1e6})
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// TestDriftBandedCacheServesDriftedStats is the drift-banding contract:
// statistics that drift *within* a band keep hitting the cached plan;
// drift that crosses a band boundary — or any change at all under exact
// keys — misses cleanly.
func TestDriftBandedCacheServesDriftedStats(t *testing.T) {
	cat := driftCatalog(t)
	const sql = "SELECT * FROM t0, t1 WHERE t0.k = t1.k"
	env := serviceEnv(t)
	inBand, err := cat.ScaleDistinct(1.3) // 600->780, 700->910: same log2 band
	if err != nil {
		t.Fatal(err)
	}
	outOfBand, err := cat.ScaleDistinct(4) // 2400, 2800: two bands up
	if err != nil {
		t.Fatal(err)
	}

	banded := NewOptimizer(cat, Config{})
	if _, err := banded.Optimize(Request{SQL: sql, Env: env, Alg: AlgC}); err != nil {
		t.Fatal(err)
	}
	resp, err := banded.Optimize(Request{SQL: sql, Cat: inBand, Env: env, Alg: AlgC})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("in-band drifted statistics missed the drift-banded cache")
	}
	resp, err = banded.Optimize(Request{SQL: sql, Cat: outOfBand, Env: env, Alg: AlgC})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("cross-band drift must miss (staleness control)")
	}

	exact := NewOptimizer(cat, Config{DriftBand: -1})
	if _, err := exact.Optimize(Request{SQL: sql, Env: env, Alg: AlgC}); err != nil {
		t.Fatal(err)
	}
	resp, err = exact.Optimize(Request{SQL: sql, Cat: inBand, Env: env, Alg: AlgC})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("exact keys must miss on any statistics change")
	}
	if banded.DriftBand() != DefaultDriftBand || exact.DriftBand() != 0 {
		t.Fatalf("band resolution wrong: %v / %v", banded.DriftBand(), exact.DriftBand())
	}
}

// TestDriftBandedCacheClampedDrift is the serving-fleet case that
// motivated banding: when recorded distinct counts exceed the row count,
// the band is computed on the clamped effective value, so the default
// ±2x multiplicative drift — which clamps back to the row count —
// coalesces into one band and keeps hitting.
func TestDriftBandedCacheClampedDrift(t *testing.T) {
	cat := catalog.New()
	for _, name := range []string{"t0", "t1"} {
		// distinct 600 recorded over only 300 rows: every drift factor's
		// clamped effective distinct is min(600*f, 300) -> 300 for f>=1
		// and 300 for f=0.5 once clamped... all in the same band.
		tab, err := catalog.NewTable(name, 50, 300,
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 600, Min: 0, Max: 600})
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	const sql = "SELECT * FROM t0, t1 WHERE t0.k = t1.k"
	env := serviceEnv(t)
	o := NewOptimizer(cat, Config{})
	if _, err := o.Optimize(Request{SQL: sql, Env: env, Alg: AlgC}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.5, 2} {
		drifted, err := cat.ScaleDistinct(f)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := o.Optimize(Request{SQL: sql, Cat: drifted, Env: env, Alg: AlgC})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.CacheHit {
			t.Fatalf("clamped drift factor %v missed the banded cache", f)
		}
	}
}

// TestObserveChangesCosting closes the loop in miniature: observing an
// executed size for the join's table set must re-cost subsequent
// optimizations with the observed size (visible in the plan's OutPages)
// and must not be served the stale cached plan.
func TestObserveChangesCosting(t *testing.T) {
	sc := serviceScenario(t, 7)
	env := serviceEnv(t)
	o := NewOptimizer(sc.Cat, Config{})
	before, err := o.Optimize(Request{Query: sc.Block, Env: env, Alg: AlgC})
	if err != nil {
		t.Fatal(err)
	}
	// Claim the full join result is 12000 pages, whatever was estimated.
	key := feedback.SetKey(sc.Block.Tables...)
	if err := o.Observe(Feedback{Query: sc.Block, Sizes: map[string]float64{key: 12_000}}); err != nil {
		t.Fatal(err)
	}
	queries, obs := o.FeedbackStats()
	if queries != 1 || obs == 0 {
		t.Fatalf("feedback not stored: %d queries, %d observations", queries, obs)
	}
	after, err := o.Optimize(Request{Query: sc.Block, Env: env, Alg: AlgC})
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("new hints must change the cache key")
	}
	root := after.Plan
	if root.Kind.String() == "sort" {
		root = root.Child
	}
	if root.OutPages != 12_000 {
		t.Fatalf("observed size not folded into costing: root out=%v (before %v)",
			root.OutPages, before.Plan.OutPages)
	}
}

func TestObserveDisabled(t *testing.T) {
	sc := serviceScenario(t, 7)
	o := NewOptimizer(sc.Cat, Config{DisableFeedback: true})
	key := feedback.SetKey(sc.Block.Tables...)
	if err := o.Observe(Feedback{Query: sc.Block, Sizes: map[string]float64{key: 9}}); err != nil {
		t.Fatal(err)
	}
	if q, obs := o.FeedbackStats(); q != 0 || obs != 0 {
		t.Fatalf("disabled feedback stored observations: %d/%d", q, obs)
	}
}

// TestPrepareMemoizedAndParametric: Prepare parses once per SQL text and
// precomputes plan sets over the configured memory and drift axes;
// Select answers off-grid laws from the cached candidate set.
func TestPrepareMemoizedAndParametric(t *testing.T) {
	sc := serviceScenario(t, 11)
	laws := make([]dist.Dist, 0, 3)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		d, err := dist.Bimodal(64, 4096, p)
		if err != nil {
			t.Fatal(err)
		}
		laws = append(laws, d)
	}
	o := NewOptimizer(sc.Cat, Config{
		AnticipatedLaws: laws,
		DriftFactors:    []float64{0.5, 1, 2},
	})
	sql := sc.Block.String()
	p1, err := o.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := o.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("Prepare must memoize by SQL text")
	}
	if p1.PlanSets() != 3 {
		t.Fatalf("want 3 drift-axis plan sets, got %d", p1.PlanSets())
	}
	if len(p1.Entries(1)) != len(laws) {
		t.Fatalf("want %d entries per set, got %d", len(laws), len(p1.Entries(1)))
	}
	actual, err := dist.Bimodal(64, 4096, 0.33)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p1.Select(actual)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Parametric || resp.Plan == nil || resp.EC <= 0 {
		t.Fatalf("parametric selection implausible: %+v", resp)
	}
	// The parametric answer can be no better than a full optimization,
	// and must be a member of the precomputed candidate set.
	full, err := p1.Optimize(envsim.Env{Mem: actual}, AlgC)
	if err != nil {
		t.Fatal(err)
	}
	if resp.EC+1e-9 < full.EC {
		t.Fatalf("parametric EC %v beats full optimization %v", resp.EC, full.EC)
	}
	found := false
	for _, e := range p1.Entries(1) {
		if e.Plan.Signature() == resp.Plan.Signature() {
			found = true
		}
	}
	if !found {
		t.Fatal("selected plan is not from the precomputed set")
	}
	// Drifted selection picks the nearest factor's set.
	if _, err := p1.SelectDrifted(actual, 1.8); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Nearest(actual); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareWithoutLawsFallsBack: no anticipated laws -> no plan sets,
// and Select falls back to a full cached optimization.
func TestPrepareWithoutLawsFallsBack(t *testing.T) {
	sc := serviceScenario(t, 13)
	o := NewOptimizer(sc.Cat, Config{})
	p, err := o.Prepare(sc.Block.String())
	if err != nil {
		t.Fatal(err)
	}
	if p.PlanSets() != 0 || p.Entries(1) != nil {
		t.Fatalf("unexpected plan sets: %d", p.PlanSets())
	}
	resp, err := p.Select(serviceEnv(t).Mem)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Parametric {
		t.Fatal("fallback must be a full optimization, not parametric")
	}
	if resp.Plan == nil {
		t.Fatal("fallback returned no plan")
	}
}

// TestBatchDeterministicAcrossWorkers: with drift-banded keys the batch
// dedupe must make results independent of the worker count.
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	env := serviceEnv(t)
	var reqs []Request
	for seed := int64(0); seed < 12; seed++ {
		sc := serviceScenario(t, 20+seed%4) // repeats share banded keys
		reqs = append(reqs, Request{Query: sc.Block, Cat: sc.Cat, Env: env, Alg: AlgC})
	}
	run := func(workers int) []string {
		o := NewOptimizer(nil, Config{Workers: workers})
		out := o.OptimizeBatch(reqs)
		keys := make([]string, len(out))
		for i, r := range out {
			if r.Err != nil {
				t.Fatalf("request %d: %v", i, r.Err)
			}
			keys[i] = r.Plan.Signature()
		}
		return keys
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: worker count changed the plan: %s vs %s", i, a[i], b[i])
		}
	}
}
