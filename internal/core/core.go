// Package core is the high-level façade of the LEC optimizer library: it
// bundles a catalog, a query and an execution environment into a Scenario
// and exposes one-call entry points for every optimization algorithm of
// Chu, Halpern and Seshadri (PODS 1999), plus uniform expected-cost
// evaluation and Monte-Carlo simulation of the chosen plans.
//
// Typical use:
//
//	sc := &core.Scenario{Cat: cat, Query: blk, Env: envsim.Env{Mem: law}}
//	lsc, _ := sc.Optimize(core.AlgLSCMode)   // classical plan
//	lec, _ := sc.Optimize(core.AlgC)         // least-expected-cost plan
//	fmt.Println(lec.Plan, lec.EC, lsc.EC)
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/plan"
	"lecopt/internal/query"
)

// Errors.
var (
	ErrNilScenario = errors.New("core: scenario is missing catalog or query")
	ErrUnknownAlg  = errors.New("core: unknown algorithm")
)

// Algorithm selects an optimization strategy.
type Algorithm uint8

// Algorithms. The two LSC variants are the classical baselines the paper
// compares against: optimize at the mean or at the modal memory value.
const (
	AlgLSCMean Algorithm = iota
	AlgLSCMode
	AlgA
	AlgB
	AlgC
	AlgD
)

// Algorithms lists every algorithm in presentation order.
var Algorithms = []Algorithm{AlgLSCMean, AlgLSCMode, AlgA, AlgB, AlgC, AlgD}

func (a Algorithm) String() string {
	switch a {
	case AlgLSCMean:
		return "lsc-mean"
	case AlgLSCMode:
		return "lsc-mode"
	case AlgA:
		return "algorithm-a"
	case AlgB:
		return "algorithm-b"
	case AlgC:
		return "algorithm-c"
	case AlgD:
		return "algorithm-d"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Scenario is one optimization problem: what to optimize (Query over Cat)
// and under which uncertainty model (Env plus optional selectivity and
// size laws for Algorithm D).
type Scenario struct {
	Cat   *catalog.Catalog
	Query *query.Block
	Env   envsim.Env
	// SelLaws maps optimizer.EdgeKey(join) to a selectivity law.
	SelLaws map[string]dist.Dist
	// SizeLaws maps table names to filtered-size laws.
	SizeLaws map[string]dist.Dist
	// Opts tunes the plan space (methods, indexes, size buckets).
	Opts optimizer.Options
	// TopC is Algorithm B's candidate-list depth (default 3).
	TopC int
}

// PlanReport is the outcome of one optimization.
type PlanReport struct {
	Algorithm Algorithm
	Plan      *plan.Node
	// Score is the value the algorithm minimized (point cost for LSC,
	// expected cost for the LEC family).
	Score float64
	// EC is the plan's expected cost under the scenario's environment —
	// the common yardstick across algorithms.
	EC float64
	// PhaseEC breaks Score down by execution phase (one entry per plan
	// phase, summing to Score for the memory-only algorithms); see
	// optimizer.Result.PhaseEC.
	PhaseEC []float64
	// Candidates and Probes forward optimizer bookkeeping.
	Candidates int
	Probes     int
}

func (s *Scenario) check() error {
	if s == nil || s.Cat == nil || s.Query == nil {
		return ErrNilScenario
	}
	return s.Env.Validate()
}

func (s *Scenario) topC() int {
	if s.TopC < 1 {
		return 3
	}
	return s.TopC
}

// phaseLaws returns the environment's per-phase memory laws for the
// scenario's query.
func (s *Scenario) phaseLaws() ([]dist.Dist, error) {
	n := len(s.Query.Tables)
	phases := 1
	if n >= 2 {
		phases = n - 1
	}
	return s.Env.PhaseLaws(phases)
}

// Optimize runs one algorithm and evaluates its plan under the scenario
// environment.
func (s *Scenario) Optimize(alg Algorithm) (PlanReport, error) {
	if err := s.check(); err != nil {
		return PlanReport{}, err
	}
	var (
		res optimizer.Result
		err error
	)
	switch alg {
	case AlgLSCMean:
		res, err = optimizer.LSC(s.Cat, s.Query, s.Opts, s.Env.Mem.Mean())
	case AlgLSCMode:
		res, err = optimizer.LSC(s.Cat, s.Query, s.Opts, s.Env.Mem.Mode())
	case AlgA:
		res, err = optimizer.AlgorithmA(s.Cat, s.Query, s.Opts, s.Env.Mem)
	case AlgB:
		res, err = optimizer.AlgorithmB(s.Cat, s.Query, s.Opts, s.Env.Mem, s.topC())
	case AlgC:
		if s.Env.Chain != nil {
			res, err = optimizer.AlgorithmCDynamic(s.Cat, s.Query, s.Opts, s.Env.Mem, s.Env.Chain)
		} else {
			res, err = optimizer.AlgorithmC(s.Cat, s.Query, s.Opts, s.Env.Mem)
		}
	case AlgD:
		res, err = optimizer.AlgorithmD(s.Cat, s.Query, s.Opts, s.Env.Mem, s.SelLaws, s.SizeLaws)
	default:
		return PlanReport{}, fmt.Errorf("%w: %d", ErrUnknownAlg, alg)
	}
	if err != nil {
		return PlanReport{}, err
	}
	ec, err := s.ExpectedCost(res.Plan)
	if err != nil {
		return PlanReport{}, err
	}
	return PlanReport{
		Algorithm:  alg,
		Plan:       res.Plan,
		Score:      res.EC,
		EC:         ec,
		PhaseEC:    res.PhaseEC,
		Candidates: res.Candidates,
		Probes:     res.Probes,
	}, nil
}

// Compare optimizes with several algorithms and returns the reports in the
// given order (all evaluated under the same environment).
func (s *Scenario) Compare(algs ...Algorithm) ([]PlanReport, error) {
	out := make([]PlanReport, 0, len(algs))
	for _, a := range algs {
		r, err := s.Optimize(a)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ExpectedCost evaluates any plan under the scenario's per-phase memory
// laws and its Opts.CostModel — the uniform yardstick used to compare
// algorithms' plans.
func (s *Scenario) ExpectedCost(p *plan.Node) (float64, error) {
	if err := s.check(); err != nil {
		return 0, err
	}
	laws, err := s.phaseLaws()
	if err != nil {
		return 0, err
	}
	return optimizer.ExpectedCostModel(s.Opts.CostModel, p, laws)
}

// Simulate Monte-Carlo-executes a plan's cost model under the environment.
func (s *Scenario) Simulate(p *plan.Node, runs int, seed int64) (envsim.RunStats, error) {
	if err := s.check(); err != nil {
		return envsim.RunStats{}, err
	}
	return envsim.Simulate(p, s.Env, runs, rand.New(rand.NewSource(seed)))
}

// Tournament runs a common-random-numbers realized-cost comparison of the
// given reports' plans.
func (s *Scenario) Tournament(reports []PlanReport, runs int, seed int64) (envsim.TournamentResult, error) {
	if err := s.check(); err != nil {
		return envsim.TournamentResult{}, err
	}
	t := &envsim.Tournament{}
	for _, r := range reports {
		t.Names = append(t.Names, r.Algorithm.String())
		t.Plans = append(t.Plans, r.Plan)
	}
	return t.Run(s.Env, runs, rand.New(rand.NewSource(seed)))
}
