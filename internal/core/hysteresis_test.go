package core

import (
	"testing"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/query"
)

// edgeCat builds a catalog whose a.k distinct count, scaled by factor,
// sits near a floor(log2) band boundary (15.6 at factor 1: band 3; a
// 1.1x step crosses into band 4).
func edgeCat(t *testing.T, factor float64) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, spec := range []struct {
		name     string
		distinct float64
		pages    float64
	}{{"a", 15.6, 120}, {"b", 24, 80}} {
		tab, err := catalog.NewTable(spec.name, spec.pages, spec.pages*50,
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: spec.distinct * factor, Min: 0, Max: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func edgeReq(cat *catalog.Catalog) Request {
	return Request{
		Query: &query.Block{
			Tables: []string{"a", "b"},
			Joins: []query.Join{{
				Left:  query.ColRef{Table: "a", Column: "k"},
				Right: query.ColRef{Table: "b", Column: "k"},
			}},
		},
		Cat: cat,
		Env: envsim.Env{Mem: dist.Point(40)},
		Alg: AlgC,
	}
}

// TestHysteresisBridgesBandEdge: a drift step that crosses a floor(log2)
// band boundary no longer splits the plan cache — the stepped request is
// served from the neighbor band's entry (CacheHit) and the alias is
// re-cached under the new band's own key.
func TestHysteresisBridgesBandEdge(t *testing.T) {
	o := NewOptimizer(nil, Config{Workers: 1})

	first, err := o.Optimize(edgeReq(edgeCat(t, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("cold request cannot hit")
	}
	stepped, err := o.Optimize(edgeReq(edgeCat(t, 1.1)))
	if err != nil {
		t.Fatal(err)
	}
	if !stepped.CacheHit {
		t.Fatal("band-edge step split the cache despite hysteresis")
	}
	if stepped.Plan.Signature() != first.Plan.Signature() {
		t.Fatal("hysteresis served a different plan than the neighbor band's")
	}
	// The alias was written through: the new band now hits on its primary
	// key (a plain Get, no probing needed).
	again, err := o.Optimize(edgeReq(edgeCat(t, 1.1)))
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("alias was not re-cached under the stepped band's key")
	}
}

// TestHysteresisRespectsRealDrift: a full-band step (2x) is genuine
// statistics change and must still miss.
func TestHysteresisRespectsRealDrift(t *testing.T) {
	o := NewOptimizer(nil, Config{Workers: 1})
	if _, err := o.Optimize(edgeReq(edgeCat(t, 1))); err != nil {
		t.Fatal(err)
	}
	far, err := o.Optimize(edgeReq(edgeCat(t, 2.6)))
	if err != nil {
		t.Fatal(err)
	}
	if far.CacheHit {
		t.Fatal("a multi-band drift step must not be served by hysteresis")
	}
}

// TestHysteresisBatchPrefersOwnBand: a batched request whose own band is
// already cached must be served that entry — never a same-batch
// neighbor's — matching what a sequential Optimize returns. (Regression:
// the formation-time probe originally ran before the primary-key check,
// so a warm near-boundary request rode along with its neighbor's group
// and its cache entry was clobbered.)
func TestHysteresisBatchPrefersOwnBand(t *testing.T) {
	o := NewOptimizer(nil, Config{Workers: 1})
	// Warm the stepped band's own entry sequentially.
	warm, err := o.Optimize(edgeReq(edgeCat(t, 1.1)))
	if err != nil {
		t.Fatal(err)
	}
	// Batch the boundary's other side first, then the warm request.
	resps := o.OptimizeBatch([]Request{
		edgeReq(edgeCat(t, 1)),
		edgeReq(edgeCat(t, 1.1)),
	})
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if resps[1].Plan.Signature() != warm.Plan.Signature() || !resps[1].CacheHit {
		t.Fatal("warm request was not served its own band's cached plan")
	}
	// And its entry survived: a sequential re-ask still hits it.
	again, err := o.Optimize(edgeReq(edgeCat(t, 1.1)))
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Plan.Signature() != warm.Plan.Signature() {
		t.Fatal("warm band's cache entry was clobbered by the batch")
	}
	// The other side computed its own plan (it was cold and could not be
	// aliased onto the warm entry's group, but may alias via prior-batch
	// probe — either way it must be a valid report).
	if resps[0].Plan == nil {
		t.Fatal("cold request got no plan")
	}
}

// TestHysteresisBatchDeterministic: batches containing band-edge neighbors
// resolve them at group-formation time — the outcome is identical across
// worker counts.
func TestHysteresisBatchDeterministic(t *testing.T) {
	run := func(workers int) []Response {
		o := NewOptimizer(nil, Config{Workers: workers})
		reqs := []Request{
			edgeReq(edgeCat(t, 1)),
			edgeReq(edgeCat(t, 1.1)), // crosses the boundary: alias of the first
			edgeReq(edgeCat(t, 1)),
			edgeReq(edgeCat(t, 1.1)),
		}
		return o.OptimizeBatch(reqs)
	}
	a := run(1)
	b := run(8)
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("request %d failed: %v / %v", i, a[i].Err, b[i].Err)
		}
		if a[i].Plan.Signature() != b[i].Plan.Signature() || a[i].EC != b[i].EC {
			t.Fatalf("worker count changed batch outcome at %d", i)
		}
	}
	// The band-edge neighbor rode along with the representative's group.
	if !a[1].CacheHit || !a[3].CacheHit {
		t.Fatalf("cross-band dups not served from the shared computation: %+v %+v", a[1].CacheHit, a[3].CacheHit)
	}
	if a[1].Plan.Signature() != a[0].Plan.Signature() {
		t.Fatal("cross-band dup got a different plan")
	}
}
