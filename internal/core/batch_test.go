package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lecopt/internal/dist"
	"lecopt/internal/plancache"
	"lecopt/internal/workload"
)

// batchScenarios builds a deterministic mixed workload: random scenarios
// across shapes and sizes, each paired with a standard environment.
func batchScenarios(t testing.TB, n int) []*Scenario {
	t.Helper()
	envs, err := workload.StandardEnvs()
	if err != nil {
		t.Fatal(err)
	}
	shapes := []workload.Shape{workload.Chain, workload.Star, workload.Clique, workload.Random}
	out := make([]*Scenario, n)
	for i := range out {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		sc, err := workload.Generate(workload.DefaultSpec(2+i%3, shapes[i%len(shapes)]), rng)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = &Scenario{Cat: sc.Cat, Query: sc.Block, Env: envs[i%len(envs)].Env}
	}
	return out
}

// reportKey renders every field of a PlanReport for byte-identity checks.
func reportKey(r PlanReport) string {
	return fmt.Sprintf("%s|%s|%v|%v|%d|%d",
		r.Algorithm, r.Plan.Signature(), r.Score, r.EC, r.Candidates, r.Probes)
}

func TestOptimizeBatchMatchesSequential(t *testing.T) {
	scs := batchScenarios(t, 24)
	algs := []Algorithm{AlgLSCMean, AlgLSCMode, AlgA, AlgB, AlgC}
	var jobs []BatchJob
	for _, sc := range scs {
		for _, alg := range algs {
			jobs = append(jobs, BatchJob{Scenario: sc, Alg: alg})
		}
	}
	want := make([]string, len(jobs))
	for i, j := range jobs {
		rep, err := j.Scenario.Optimize(j.Alg)
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		want[i] = reportKey(rep)
	}
	for _, workers := range []int{1, 8} {
		results := OptimizeBatch(jobs, BatchOptions{Workers: workers})
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if got := reportKey(r.Report); got != want[i] {
				t.Fatalf("workers=%d job %d:\n got %s\nwant %s", workers, i, got, want[i])
			}
		}
	}
}

func TestOptimizeBatchCache(t *testing.T) {
	scs := batchScenarios(t, 8)
	var jobs []BatchJob
	for round := 0; round < 3; round++ {
		for _, sc := range scs {
			jobs = append(jobs, BatchJob{Scenario: sc, Alg: AlgC})
		}
	}
	cache := plancache.New[PlanReport](256)
	// Warm sequentially so hit accounting is deterministic, then re-run hot.
	cold := OptimizeBatch(jobs[:len(scs)], BatchOptions{Workers: 1, Cache: cache})
	for i, r := range cold {
		if r.Err != nil || r.CacheHit {
			t.Fatalf("cold job %d: err=%v hit=%v", i, r.Err, r.CacheHit)
		}
	}
	hot := OptimizeBatch(jobs, BatchOptions{Workers: 4, Cache: cache})
	for i, r := range hot {
		if r.Err != nil {
			t.Fatalf("hot job %d: %v", i, r.Err)
		}
		if !r.CacheHit {
			t.Fatalf("hot job %d missed a warmed cache", i)
		}
		if got, want := reportKey(r.Report), reportKey(cold[i%len(scs)].Report); got != want {
			t.Fatalf("hot job %d:\n got %s\nwant %s", i, got, want)
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.HitRate() == 0 {
		t.Fatalf("cache never hit: %+v", st)
	}
	if st.Size != len(scs) {
		t.Fatalf("cache size = %d, want %d", st.Size, len(scs))
	}
}

func TestOptimizeBatchPerJobErrors(t *testing.T) {
	scs := batchScenarios(t, 2)
	jobs := []BatchJob{
		{Scenario: scs[0], Alg: AlgC},
		{Scenario: nil, Alg: AlgC},
		{Scenario: &Scenario{}, Alg: AlgC},
		{Scenario: scs[1], Alg: Algorithm(99)},
		{Scenario: scs[1], Alg: AlgC},
	}
	results := OptimizeBatch(jobs, BatchOptions{Workers: 3})
	if results[0].Err != nil || results[4].Err != nil {
		t.Fatalf("good jobs failed: %v, %v", results[0].Err, results[4].Err)
	}
	if !errors.Is(results[1].Err, ErrNilScenario) || !errors.Is(results[2].Err, ErrNilScenario) {
		t.Fatalf("nil/empty scenario errors: %v, %v", results[1].Err, results[2].Err)
	}
	if !errors.Is(results[3].Err, ErrUnknownAlg) {
		t.Fatalf("unknown alg error: %v", results[3].Err)
	}
}

func TestOptimizeBatchEmpty(t *testing.T) {
	if got := OptimizeBatch(nil, BatchOptions{}); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

func TestCacheKeyErrors(t *testing.T) {
	sc := &Scenario{}
	if _, err := sc.CacheKey(AlgC); !errors.Is(err, ErrNilScenario) {
		t.Fatalf("CacheKey on empty scenario: %v", err)
	}
}

// TestCacheKeyIgnoresUnreadInputs pins the key-sharing rule: inputs an
// algorithm never reads (TopC outside AlgB, the D-only laws outside AlgD)
// must not split its cache keys.
func TestCacheKeyIgnoresUnreadInputs(t *testing.T) {
	base := batchScenarios(t, 1)[0]
	key := func(mutate func(*Scenario), alg Algorithm) string {
		sc := *base
		mutate(&sc)
		k, err := sc.CacheKey(alg)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	plain := key(func(*Scenario) {}, AlgC)
	if plain != key(func(sc *Scenario) { sc.TopC = 7 }, AlgC) {
		t.Fatal("TopC split AlgC cache keys")
	}
	if plain != key(func(sc *Scenario) {
		sc.SelLaws = map[string]dist.Dist{"t0.k=t1.k": dist.Point(0.5)}
	}, AlgC) {
		t.Fatal("SelLaws split AlgC cache keys")
	}
	if key(func(*Scenario) {}, AlgB) == key(func(sc *Scenario) { sc.TopC = 7 }, AlgB) {
		t.Fatal("TopC must differentiate AlgB cache keys")
	}
	if key(func(*Scenario) {}, AlgD) == key(func(sc *Scenario) {
		sc.SelLaws = map[string]dist.Dist{"t0.k=t1.k": dist.Point(0.5)}
	}, AlgD) {
		t.Fatal("SelLaws must differentiate AlgD cache keys")
	}
}
