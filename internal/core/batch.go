package core

import (
	"lecopt/internal/plancache"
)

// BatchJob is one unit of work for OptimizeBatch: optimize Scenario with Alg.
type BatchJob struct {
	Scenario *Scenario
	Alg      Algorithm
}

// BatchResult is the outcome of one BatchJob. Exactly one of Report/Err is
// meaningful; CacheHit reports whether the report was served from the cache
// without running the optimizer.
type BatchResult struct {
	Report   PlanReport
	Err      error
	CacheHit bool
}

// BatchOptions tunes OptimizeBatch.
type BatchOptions struct {
	// Workers is the number of concurrent optimizations; 0 uses GOMAXPROCS.
	// The worker count never changes the results, only the wall-clock time.
	Workers int
	// Cache, when non-nil, memoizes PlanReports across jobs (and across
	// batches — share one cache for a serving workload). Keys cover the
	// catalog fingerprint, canonical query shape, environment-law digest,
	// plan-space options and algorithm, so a statistics or law change
	// misses cleanly; see Scenario.CacheKey. Two identical jobs racing on
	// a cold key may both compute (last write wins) — wasteful but
	// harmless, since equal keys imply equal reports.
	Cache *plancache.Cache[PlanReport]
}

// CacheKey returns the exact-fingerprint plan-cache signature of optimizing
// this scenario with alg. Scenarios whose keys are equal are optimized
// identically, so their PlanReports may be shared; any change to the catalog
// statistics, query, environment laws or options yields a new key (stale
// entries age out of the LRU — there is no explicit invalidation).
func (s *Scenario) CacheKey(alg Algorithm) (string, error) {
	return s.CacheKeyBanded(alg, 0)
}

// CacheKeyBanded is CacheKey with a drift-banded catalog fingerprint:
// distinct counts are bucketed into geometric bands of base driftBand
// before hashing (catalog.BandedFingerprint), so statistics drift *within*
// a band maps to the same key and a drifting tenant keeps hitting the
// cached plan. driftBand <= 1 is the exact key.
func (s *Scenario) CacheKeyBanded(alg Algorithm, driftBand float64) (string, error) {
	return s.CacheKeyBandedMargin(alg, driftBand, 0)
}

// CacheKeyBandedMargin is CacheKeyBanded with the distinct-count bands
// offset by margin band units (plancache.SignatureMargin) — the band-edge
// hysteresis probe key: statistics within |margin| of a band boundary key,
// under the matching-signed margin, exactly as their across-the-boundary
// neighbor does under margin 0.
func (s *Scenario) CacheKeyBandedMargin(alg Algorithm, driftBand, margin float64) (string, error) {
	var key [plancache.KeyLen]byte
	b, err := s.AppendCacheKey(key[:0], alg, driftBand, margin)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// AppendCacheKey appends the CacheKeyBandedMargin key's plancache.KeyLen
// bytes to dst — the allocation-free form for hot paths that keep a
// reusable buffer and look plans up with Cache.GetBytes/ProbeBytes. Both
// forms build byte-identical keys, so string and byte lookups interleave
// freely on one cache.
func (s *Scenario) AppendCacheKey(dst []byte, alg Algorithm, driftBand, margin float64) ([]byte, error) {
	if err := s.check(); err != nil {
		return dst, err
	}
	// Hash only the inputs this algorithm reads: TopC steers Algorithm B
	// alone and the selectivity/size laws Algorithm D alone, so folding
	// them into every key would split otherwise-identical AlgC jobs into
	// spurious cache misses.
	topC := 0
	if alg == AlgB {
		topC = s.topC()
	}
	selLaws, sizeLaws := s.SelLaws, s.SizeLaws
	if alg != AlgD {
		selLaws, sizeLaws = nil, nil
	}
	return plancache.AppendKeyMargin(dst, s.Cat, s.Query, s.Env, selLaws, sizeLaws,
		s.Opts, topC, alg.String(), driftBand, margin), nil
}

// OptimizeBatch optimizes every job, fanning across opts.Workers goroutines,
// and returns results in job order: results[i] answers jobs[i]. Failures are
// reported per job in BatchResult.Err — one bad scenario never aborts its
// batch. The results are byte-identical to calling jobs[i].Scenario.Optimize
// (jobs[i].Alg) sequentially: every optimization is deterministic and the
// pool only changes scheduling, never inputs.
//
// Scenarios and their catalogs are read, never written, so jobs may share
// them. Cached reports share plan trees; treat returned plans as immutable
// (Clone before mutating).
//
// Deprecated: OptimizeBatch is the legacy free-function surface. It now
// delegates to an ephemeral Optimizer handle with exact cache keys; new
// code should hold a long-lived handle (NewOptimizer / lecopt.New) and
// call its OptimizeBatch, which adds drift-banded caching and feedback.
func OptimizeBatch(jobs []BatchJob, opts BatchOptions) []BatchResult {
	o := NewOptimizer(nil, Config{
		Workers: opts.Workers,
		// Exact keys and no implicit cache: the legacy contract is
		// memoize-only-when-asked with statistics-exact signatures.
		CacheSize:       -1,
		Cache:           opts.Cache,
		DriftBand:       -1,
		DisableFeedback: true,
	})
	reqs := make([]Request, len(jobs))
	for i, j := range jobs {
		if j.Scenario == nil {
			continue // resolved to ErrNilScenario below
		}
		reqs[i] = Request{scenario: j.Scenario, Alg: j.Alg}
	}
	resps := o.OptimizeBatch(reqs)
	results := make([]BatchResult, len(jobs))
	for i, r := range resps {
		if jobs[i].Scenario == nil {
			results[i] = BatchResult{Err: ErrNilScenario}
			continue
		}
		results[i] = BatchResult{Report: r.PlanReport, Err: r.Err, CacheHit: r.CacheHit}
	}
	return results
}
