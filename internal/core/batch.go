package core

import (
	"lecopt/internal/plancache"
	"lecopt/internal/pool"
)

// BatchJob is one unit of work for OptimizeBatch: optimize Scenario with Alg.
type BatchJob struct {
	Scenario *Scenario
	Alg      Algorithm
}

// BatchResult is the outcome of one BatchJob. Exactly one of Report/Err is
// meaningful; CacheHit reports whether the report was served from the cache
// without running the optimizer.
type BatchResult struct {
	Report   PlanReport
	Err      error
	CacheHit bool
}

// BatchOptions tunes OptimizeBatch.
type BatchOptions struct {
	// Workers is the number of concurrent optimizations; 0 uses GOMAXPROCS.
	// The worker count never changes the results, only the wall-clock time.
	Workers int
	// Cache, when non-nil, memoizes PlanReports across jobs (and across
	// batches — share one cache for a serving workload). Keys cover the
	// catalog fingerprint, canonical query shape, environment-law digest,
	// plan-space options and algorithm, so a statistics or law change
	// misses cleanly; see Scenario.CacheKey. Two identical jobs racing on
	// a cold key may both compute (last write wins) — wasteful but
	// harmless, since equal keys imply equal reports.
	Cache *plancache.Cache[PlanReport]
}

// CacheKey returns the plan-cache signature of optimizing this scenario with
// alg. Scenarios whose keys are equal are optimized identically, so their
// PlanReports may be shared; any change to the catalog statistics, query,
// environment laws or options yields a new key (stale entries age out of the
// LRU — there is no explicit invalidation).
func (s *Scenario) CacheKey(alg Algorithm) (string, error) {
	if err := s.check(); err != nil {
		return "", err
	}
	// Hash only the inputs this algorithm reads: TopC steers Algorithm B
	// alone and the selectivity/size laws Algorithm D alone, so folding
	// them into every key would split otherwise-identical AlgC jobs into
	// spurious cache misses.
	topC := 0
	if alg == AlgB {
		topC = s.topC()
	}
	selLaws, sizeLaws := s.SelLaws, s.SizeLaws
	if alg != AlgD {
		selLaws, sizeLaws = nil, nil
	}
	return plancache.Signature(s.Cat, s.Query, s.Env, selLaws, sizeLaws,
		s.Opts, topC, alg.String()), nil
}

// OptimizeBatch optimizes every job, fanning across opts.Workers goroutines,
// and returns results in job order: results[i] answers jobs[i]. Failures are
// reported per job in BatchResult.Err — one bad scenario never aborts its
// batch. The results are byte-identical to calling jobs[i].Scenario.Optimize
// (jobs[i].Alg) sequentially: every optimization is deterministic and the
// pool only changes scheduling, never inputs.
//
// Scenarios and their catalogs are read, never written, so jobs may share
// them. Cached reports share plan trees; treat returned plans as immutable
// (Clone before mutating).
func OptimizeBatch(jobs []BatchJob, opts BatchOptions) []BatchResult {
	results := make([]BatchResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := pool.Workers(opts.Workers, len(jobs))
	runOne := func(i int) {
		job := jobs[i]
		if job.Scenario == nil {
			results[i] = BatchResult{Err: ErrNilScenario}
			return
		}
		key := ""
		if opts.Cache != nil {
			k, err := job.Scenario.CacheKey(job.Alg)
			if err != nil {
				results[i] = BatchResult{Err: err}
				return
			}
			key = k
			if rep, ok := opts.Cache.Get(key); ok {
				results[i] = BatchResult{Report: rep, CacheHit: true}
				return
			}
		}
		sc := job.Scenario
		if workers > 1 && sc.Opts.Workers == 0 {
			// The batch pool already saturates the machine; letting A/B's
			// per-bucket fan-out also default to GOMAXPROCS would stack
			// P×P CPU-bound goroutines for no added parallelism. Shallow-
			// copy rather than mutate — scenarios may be shared across
			// jobs. Workers never changes results, so cache keys and
			// sequential identity are unaffected.
			cp := *sc
			cp.Opts.Workers = 1
			sc = &cp
		}
		rep, err := sc.Optimize(job.Alg)
		if err != nil {
			results[i] = BatchResult{Err: err}
			return
		}
		if opts.Cache != nil {
			opts.Cache.Put(key, rep)
		}
		results[i] = BatchResult{Report: rep}
	}
	pool.Run(len(jobs), workers, func(i int) error {
		runOne(i) // failures land in results[i].Err, never abort the batch
		return nil
	})
	return results
}
