package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/feedback"
	"lecopt/internal/optimizer"
	"lecopt/internal/parametric"
	"lecopt/internal/plan"
	"lecopt/internal/plancache"
	"lecopt/internal/pool"
	"lecopt/internal/query"
	"lecopt/internal/sqlmini"
)

// Service errors.
var (
	ErrNoCatalog  = errors.New("core: optimizer handle has no catalog (pass one to New, or set Request.Cat)")
	ErrBadRequest = errors.New("core: request names no query (set SQL, Query or Prepared)")
	ErrNoFeedback = errors.New("core: feedback must identify a query (set SQL, Query or Prepared)")
)

// Service defaults.
const (
	// DefaultDriftBand is the geometric band base for drift-banded plan
	// cache keys: distinct counts within a factor-2 band hash equal.
	DefaultDriftBand = 2
	// DefaultCacheSize is the plan-cache capacity of a new handle.
	DefaultCacheSize = 4096
	// BandMargin is the band-edge hysteresis width, in band units: after
	// a counted miss on a banded key, the handle probes the two keys whose
	// bands are offset by ±BandMargin before optimizing. A drift step of
	// up to base^BandMargin (≈19% at the default base 2) that happens to
	// cross a floor(log_base) boundary is thereby recognized as the
	// in-band neighbor it really is instead of splitting the cache. The
	// probe is best effort: an *undrifted* column that coincidentally sits
	// within the margin of its own boundary shifts under the probe too and
	// the digests diverge — the probe then simply misses and the request
	// is optimized normally.
	BandMargin = 0.25
)

// Config configures an Optimizer service handle. The root lecopt package
// wraps it in functional options; zero values mean the documented
// defaults.
type Config struct {
	// Workers bounds batch-optimization concurrency (0 = GOMAXPROCS).
	Workers int
	// CacheSize is the plan-cache capacity: 0 means DefaultCacheSize, a
	// negative value disables the plan cache.
	CacheSize int
	// Cache, when non-nil, is used instead of a freshly built cache —
	// share one across handles for a fleet-wide plan cache.
	Cache *plancache.Cache[PlanReport]
	// DriftBand is the geometric band base for drift-banded cache keys:
	// 0 means DefaultDriftBand; any value <= 1 selects exact-fingerprint
	// keys (the pre-handle behavior).
	DriftBand float64
	// PlanSpace is the default plan-space tuning applied to requests that
	// carry no explicit Options.
	PlanSpace optimizer.Options
	// TopC is the default Algorithm B candidate-list depth.
	TopC int
	// DisableFeedback turns the executed-size feedback store off;
	// Observe becomes a no-op and no hints flow into costing.
	DisableFeedback bool
	// FeedbackAlpha is the EWMA weight of each observation (0 uses
	// feedback.DefaultAlpha).
	FeedbackAlpha float64
	// AnticipatedLaws is Prepare's memory axis: the [INSS92]-style family
	// of anticipated memory distributions each prepared statement
	// precomputes LEC plans for. Empty disables plan-set precomputation
	// (Prepared.Select then falls back to full cached optimization).
	AnticipatedLaws []dist.Dist
	// DriftFactors is Prepare's drift axis: one plan set is precomputed
	// per anticipated statistics-drift factor (empty means {1}).
	DriftFactors []float64
}

// Optimizer is a concurrency-safe, long-lived optimization service: it
// owns the plan cache, the worker pool, the prepared statements with
// their parametric plan sets, and the executed-size feedback store. It is
// the stateful counterpart of the one-shot Scenario API — the place where
// cross-request state (cached plans, observed intermediate sizes,
// precomputed plan sets) lives in a serving fleet.
//
// The handle may be bound to a catalog at construction (required for
// Prepare and SQL-carrying requests); requests may override the catalog
// per call, which is how multi-catalog servers and statistics drift are
// expressed.
type Optimizer struct {
	cat  *catalog.Catalog
	cfg  Config
	band float64 // resolved drift band; 0 = exact keys

	cache *plancache.Cache[PlanReport]
	fb    *feedback.Store

	mu       sync.Mutex
	prepared map[string]*Prepared
}

// NewOptimizer builds a service handle over cat (which may be nil when
// every request supplies its own catalog).
func NewOptimizer(cat *catalog.Catalog, cfg Config) *Optimizer {
	o := &Optimizer{cat: cat, cfg: cfg, prepared: make(map[string]*Prepared)}
	o.band = ResolveDriftBand(cfg.DriftBand)
	switch {
	case cfg.Cache != nil:
		o.cache = cfg.Cache
	case cfg.CacheSize >= 0:
		size := cfg.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		o.cache = plancache.New[PlanReport](size)
	}
	if !cfg.DisableFeedback {
		o.fb = feedback.NewStore(cfg.FeedbackAlpha)
	}
	return o
}

// Request is one optimization request against the handle: the query (one
// of SQL, Query or Prepared), the uncertainty model, and the algorithm.
// It unifies the legacy Scenario/BatchJob split: everything a Scenario
// carried is either here or defaulted from the handle's Config.
type Request struct {
	// SQL is parsed and validated against the effective catalog on every
	// call; use Prepare to pay parsing and validation once.
	SQL string
	// Query is a pre-built validated block (takes precedence over SQL).
	Query *query.Block
	// Prepared binds the request to a prepared statement (takes
	// precedence over Query and SQL).
	Prepared *Prepared
	// Cat overrides the handle's catalog for this request — how drifted
	// or per-tenant statistics are supplied.
	Cat *catalog.Catalog
	// Env is the execution environment (memory law, optional chain).
	Env envsim.Env
	// Alg selects the optimization algorithm (zero value AlgLSCMean).
	Alg Algorithm
	// TopC overrides the handle's Algorithm B depth when positive.
	TopC int
	// SelLaws and SizeLaws are Algorithm D's uncertainty laws.
	SelLaws  map[string]dist.Dist
	SizeLaws map[string]dist.Dist
	// Opts overrides the handle's plan-space options for this request.
	Opts *optimizer.Options

	// scenario short-circuits request resolution; set only by the legacy
	// wrappers so the deprecated surface delegates through the handle.
	scenario *Scenario
}

// Response is the outcome of one request. PlanReport is embedded, so the
// plan, expected cost and optimizer bookkeeping read directly off it.
type Response struct {
	PlanReport
	// CacheHit reports the report was served from the plan cache.
	CacheHit bool
	// Parametric reports the plan came from a prepared statement's
	// precomputed plan set rather than a full optimization.
	Parametric bool
	// Elapsed is the wall-clock time this request spent inside the handle
	// (cache lookup plus, on a miss, the optimization) — the per-request
	// latency the BENCH_batch.json histograms aggregate. It is measurement
	// metadata: deterministic outputs (reports, artifacts that must be
	// byte-identical) never serialize it.
	Elapsed time.Duration
	// Err is the per-request failure in batch responses (nil on success).
	Err error
}

// queryKey identifies a query for the feedback store: canonical query
// shape plus the catalog fingerprint (drift-banded when banding is on, so
// observations survive statistics drift exactly as cached plans do).
func (o *Optimizer) queryKey(cat *catalog.Catalog, blk *query.Block) string {
	if o.band > 1 {
		return blk.Canonical() + "@" + cat.BandedFingerprint(o.band)
	}
	return blk.Canonical() + "@" + cat.Fingerprint()
}

// resolveQuery maps the shared (Prepared | Query | SQL, Cat override)
// request vocabulary — used identically by Optimize and Observe — to a
// concrete catalog and validated block.
func (o *Optimizer) resolveQuery(reqCat *catalog.Catalog, prep *Prepared, blk *query.Block, sql string) (*catalog.Catalog, *query.Block, error) {
	cat := reqCat
	if cat == nil {
		cat = o.cat
	}
	if prep != nil && blk == nil {
		blk = prep.block
	}
	if blk == nil {
		if sql == "" {
			return nil, nil, ErrBadRequest
		}
		if cat == nil {
			return nil, nil, ErrNoCatalog
		}
		parsed, err := sqlmini.ParseAndValidate(sql, cat)
		if err != nil {
			return nil, nil, err
		}
		blk = parsed
	}
	if cat == nil {
		return nil, nil, ErrNoCatalog
	}
	return cat, blk, nil
}

// scenarioPool recycles the request-resolution Scenario structs of the
// serving hot path: a warm Optimize resolves, serves from the cache and
// releases without ever touching the heap. Legacy pre-built scenarios
// (Request.scenario) are caller-owned and never pooled.
var scenarioPool = sync.Pool{New: func() any { return new(Scenario) }}

// keyBufPool recycles plancache.KeyLen-capacity cache-key buffers for the
// byte-keyed lookups (Cache.GetBytes/ProbeBytes).
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, plancache.KeyLen)
	return &b
}}

func releaseScenario(sc *Scenario) {
	*sc = Scenario{}
	scenarioPool.Put(sc)
}

// scenario resolves a request into the internal Scenario form, folding in
// handle defaults and feedback hints. The returned scenario is heap-owned
// by the caller (Simulate, Tournament — paths that hold it past a single
// optimization); the hot paths use scenarioFor instead.
func (o *Optimizer) scenario(req Request) (*Scenario, error) {
	if req.scenario != nil {
		return req.scenario, nil
	}
	sc := new(Scenario)
	if err := o.fillScenario(sc, req); err != nil {
		return nil, err
	}
	return sc, nil
}

// scenarioFor is scenario backed by scenarioPool: pooled reports whether
// the caller must releaseScenario once the report is extracted (false for
// the legacy caller-owned short circuit).
func (o *Optimizer) scenarioFor(req Request) (sc *Scenario, pooled bool, err error) {
	if req.scenario != nil {
		return req.scenario, false, nil
	}
	sc = scenarioPool.Get().(*Scenario)
	if err := o.fillScenario(sc, req); err != nil {
		releaseScenario(sc)
		return nil, false, err
	}
	return sc, true, nil
}

func (o *Optimizer) fillScenario(sc *Scenario, req Request) error {
	cat, blk, err := o.resolveQuery(req.Cat, req.Prepared, req.Query, req.SQL)
	if err != nil {
		return err
	}
	opts := o.cfg.PlanSpace
	if req.Opts != nil {
		opts = *req.Opts
	}
	topC := req.TopC
	if topC == 0 {
		topC = o.cfg.TopC
	}
	// Observations() is a lock-free atomic: until something has been
	// observed, requests skip building the feedback query key entirely
	// (an empty store can have no hints for any key).
	if o.fb != nil && o.fb.Observations() > 0 {
		if hints := o.fb.Hints(o.queryKey(cat, blk)); len(hints) > 0 {
			merged := make(map[string]float64, len(hints)+len(opts.SizeHints))
			for k, v := range hints {
				merged[k] = v
			}
			for k, v := range opts.SizeHints { // explicit hints win
				merged[k] = v
			}
			opts.SizeHints = merged
		}
	}
	*sc = Scenario{
		Cat: cat, Query: blk, Env: req.Env,
		SelLaws: req.SelLaws, SizeLaws: req.SizeLaws,
		Opts: opts, TopC: topC,
	}
	return nil
}

// Optimize runs one request through the cache-then-optimize path.
func (o *Optimizer) Optimize(req Request) (Response, error) {
	start := time.Now()
	sc, pooled, err := o.scenarioFor(req)
	if err != nil {
		return Response{Err: err}, err
	}
	rep, hit, err := o.runOne(sc, req.Alg)
	if pooled {
		releaseScenario(sc) // reports never reference the scenario
	}
	if err != nil {
		return Response{Err: err}, err
	}
	return Response{PlanReport: rep, CacheHit: hit, Elapsed: time.Since(start)}, nil
}

// Cached serves a request from the plan cache alone: no optimization is
// ever started, so the call is safe on any hot path that must not pay
// cold-plan compute — the resilience layer's budget-denied and
// breaker-open serving. The primary banded key is probed first, then each
// margin is probed with both signs in band units (nearest first), so a
// caller can widen the search to neighboring drift bands and serve the
// *nearest* cached plan for a tenant whose statistics have walked away.
// With no margins given, the band-edge hysteresis margin is probed, which
// makes a Cached hit equivalent to "Optimize would have hit". All probes
// are uncounted (plancache.Probe): a denied request must not distort the
// hit-rate trajectory the cache stats track. Nothing is re-cached — a
// far-band plan served under pressure must not poison the primary band.
func (o *Optimizer) Cached(req Request, margins ...float64) (Response, bool) {
	if o.cache == nil {
		return Response{}, false
	}
	sc, pooled, err := o.scenarioFor(req)
	if err != nil {
		return Response{Err: err}, false
	}
	if pooled {
		defer releaseScenario(sc)
	}
	kb := keyBufPool.Get().(*[]byte)
	defer keyBufPool.Put(kb)
	key, err := sc.AppendCacheKey((*kb)[:0], req.Alg, o.band, 0)
	*kb = key
	if err != nil {
		return Response{Err: err}, false
	}
	if rep, ok := o.cache.ProbeBytes(key); ok {
		return Response{PlanReport: rep, CacheHit: true}, true
	}
	if o.band <= 1 {
		return Response{}, false
	}
	if len(margins) == 0 {
		margins = []float64{BandMargin}
	}
	pb := keyBufPool.Get().(*[]byte)
	defer keyBufPool.Put(pb)
	for _, m := range margins {
		for _, margin := range [2]float64{-m, m} {
			probe, err := sc.AppendCacheKey((*pb)[:0], req.Alg, o.band, margin)
			*pb = probe
			if err != nil || bytes.Equal(probe, key) {
				continue
			}
			if rep, ok := o.cache.ProbeBytes(probe); ok {
				return Response{PlanReport: rep, CacheHit: true}, true
			}
		}
	}
	return Response{}, false
}

// runOne serves one scenario from the plan cache or optimizes and caches.
// The cache key lives in a pooled buffer and the lookup is byte-keyed, so
// a warm hit — the dominant serving outcome — allocates nothing; the key
// string materializes only on the miss path's Put.
func (o *Optimizer) runOne(sc *Scenario, alg Algorithm) (PlanReport, bool, error) {
	if o.cache == nil {
		rep, err := sc.Optimize(alg)
		return rep, false, err
	}
	kb := keyBufPool.Get().(*[]byte)
	defer keyBufPool.Put(kb)
	key, err := sc.AppendCacheKey((*kb)[:0], alg, o.band, 0)
	*kb = key
	if err != nil {
		return PlanReport{}, false, err
	}
	if rep, ok := o.cache.GetBytes(key); ok {
		return rep, true, nil
	}
	if rep, ok := o.probeAdjacent(sc, alg, key); ok {
		return rep, true, nil
	}
	rep, err := sc.Optimize(alg)
	if err != nil {
		return PlanReport{}, false, err
	}
	o.cache.Put(string(key), rep)
	return rep, false, nil
}

// probeAdjacent is the band-edge hysteresis: after a counted miss on a
// banded primary key, try the two ±BandMargin probe keys — a drift step
// that just crossed a floor(log_base) band boundary keys, under the
// matching-signed margin, exactly as its neighbor did under margin 0. A
// found report is re-cached under the primary key so the new band serves
// itself from then on.
func (o *Optimizer) probeAdjacent(sc *Scenario, alg Algorithm, primary []byte) (PlanReport, bool) {
	if o.band <= 1 {
		return PlanReport{}, false
	}
	pb := keyBufPool.Get().(*[]byte)
	defer keyBufPool.Put(pb)
	for _, margin := range [2]float64{-BandMargin, BandMargin} {
		probe, err := sc.AppendCacheKey((*pb)[:0], alg, o.band, margin)
		*pb = probe
		if err != nil || bytes.Equal(probe, primary) {
			continue
		}
		if rep, ok := o.cache.ProbeBytes(probe); ok {
			o.cache.Put(string(primary), rep)
			return rep, true
		}
	}
	return PlanReport{}, false
}

// OptimizeBatch optimizes every request across the handle's worker pool
// and returns responses in request order; per-request failures land in
// Response.Err and never abort the batch.
//
// Requests that share a plan-cache key are deduplicated deterministically:
// the first request in order is the representative, is optimized once, and
// every duplicate is served its report as a cache hit. With exact keys
// this is pure memoization (equal keys imply equal reports); with
// drift-banded keys it is what makes the batch *deterministic* — which
// request of a band computes the shared plan no longer depends on worker
// scheduling. Results are byte-identical to sequential Optimize calls
// under exact keys, and independent of Workers under either key scheme.
func (o *Optimizer) OptimizeBatch(reqs []Request) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	scs := make([]*Scenario, len(reqs))
	pooled := make([]bool, len(reqs))
	for i := range reqs {
		sc, p, err := o.scenarioFor(reqs[i])
		if err != nil {
			out[i] = Response{Err: err}
			continue
		}
		scs[i], pooled[i] = sc, p
	}
	defer func() {
		for i, sc := range scs {
			if pooled[i] && sc != nil {
				releaseScenario(sc)
			}
		}
	}()
	workers := pool.Workers(o.cfg.Workers, len(reqs))
	damp := func(sc *Scenario) *Scenario {
		if workers > 1 && sc.Opts.Workers == 0 {
			// The batch pool already saturates the machine; letting A/B's
			// per-bucket fan-out also default to GOMAXPROCS would stack
			// P×P CPU-bound goroutines for no added parallelism. Shallow-
			// copy rather than mutate — scenarios may be shared.
			cp := *sc
			cp.Opts.Workers = 1
			return &cp
		}
		return sc
	}
	if o.cache == nil {
		pool.Run(len(reqs), workers, func(i int) error {
			if scs[i] == nil {
				return nil
			}
			start := time.Now()
			rep, err := damp(scs[i]).Optimize(reqs[i].Alg)
			if err != nil {
				out[i] = Response{Err: err}
			} else {
				out[i] = Response{PlanReport: rep, Elapsed: time.Since(start)}
			}
			return nil
		})
		return out
	}
	// Group requests by cache key in first-appearance order. Band-edge
	// hysteresis runs here, in this sequential pass — never in the
	// workers — so which group a near-boundary request joins (and thus the
	// whole batch outcome) is independent of worker scheduling.
	type group struct {
		rep     int
		dups    []int
		dupKeys []string // parallel to dups; non-empty = cross-band alias
	}
	var keys []string
	groups := make(map[string]*group)
	kb := keyBufPool.Get().(*[]byte)
	pb := keyBufPool.Get().(*[]byte)
	for i := range reqs {
		if scs[i] == nil {
			continue
		}
		k, err := scs[i].AppendCacheKey((*kb)[:0], reqs[i].Alg, o.band, 0)
		*kb = k
		if err != nil {
			out[i] = Response{Err: err}
			if pooled[i] {
				releaseScenario(scs[i])
				pooled[i] = false
			}
			scs[i] = nil
			continue
		}
		if g, ok := groups[string(k)]; ok {
			g.dups = append(g.dups, i)
			g.dupKeys = append(g.dupKeys, "")
			continue
		}
		joined := false
		// Hysteresis only applies on a primary-key miss — a request whose
		// own band is already cached must get *that* plan (exactly what a
		// sequential Optimize would return), never a neighbor's. The gate
		// is an uncounted Probe; the group's worker does the counted Get.
		if o.band > 1 {
			if _, cached := o.cache.ProbeBytes(k); !cached {
				for _, margin := range [2]float64{-BandMargin, BandMargin} {
					probe, err := scs[i].AppendCacheKey((*pb)[:0], reqs[i].Alg, o.band, margin)
					*pb = probe
					if err != nil || bytes.Equal(probe, k) {
						continue
					}
					// A same-batch group across the boundary: ride along
					// as a cross-band dup (the answer is written through
					// under this request's own key below).
					if g, ok := groups[string(probe)]; ok {
						g.dups = append(g.dups, i)
						g.dupKeys = append(g.dupKeys, string(k))
						joined = true
						break
					}
					// A prior-batch entry across the boundary: alias it to
					// the primary key so this group's worker (and every
					// future request in the new band) hits.
					if rep, ok := o.cache.ProbeBytes(probe); ok {
						o.cache.Put(string(k), rep)
						break
					}
				}
			}
		}
		if joined {
			continue
		}
		key := string(k)
		groups[key] = &group{rep: i}
		keys = append(keys, key)
	}
	keyBufPool.Put(kb)
	keyBufPool.Put(pb)
	pool.Run(len(keys), pool.Workers(workers, len(keys)), func(gi int) error {
		key := keys[gi]
		g := groups[key]
		i := g.rep
		start := time.Now()
		if rep, ok := o.cache.Get(key); ok {
			out[i] = Response{PlanReport: rep, CacheHit: true, Elapsed: time.Since(start)}
		} else {
			rep, err := damp(scs[i]).Optimize(reqs[i].Alg)
			if err != nil {
				out[i] = Response{Err: err}
			} else {
				o.cache.Put(key, rep)
				out[i] = Response{PlanReport: rep, Elapsed: time.Since(start)}
			}
		}
		for di, d := range g.dups {
			if out[i].Err != nil {
				out[d] = out[i]
				continue
			}
			dupStart := time.Now()
			if rep, ok := o.cache.Get(key); ok { // counts the duplicate's lookup
				out[d] = Response{PlanReport: rep, CacheHit: true, Elapsed: time.Since(dupStart)}
			} else { // evicted under pressure mid-batch: reuse the answer
				out[d] = out[i]
			}
			// Cross-band alias: write the shared answer through under the
			// dup's own key so its band serves itself from now on.
			if g.dupKeys[di] != "" {
				o.cache.Put(g.dupKeys[di], out[d].PlanReport)
			}
		}
		return nil
	})
	return out
}

// Feedback carries one execution's observed intermediate-result sizes
// back to the handle: Sizes maps feedback.SetKey over joined table names
// to observed pages — exactly the engine's ExecResult.JoinSizes. The
// query is identified the same way a Request is (Prepared, Query or SQL,
// with Cat overriding the handle catalog).
type Feedback struct {
	SQL      string
	Query    *query.Block
	Prepared *Prepared
	Cat      *catalog.Catalog
	Sizes    map[string]float64
}

// Observe folds executed sizes into the feedback store; subsequent
// optimizations of the same query cost with the observed sizes instead of
// selectivity-product estimates (and, because hints are hashed into cache
// keys, stale cached plans miss cleanly). A handle configured with
// DisableFeedback ignores observations.
func (o *Optimizer) Observe(fb Feedback) error {
	if o.fb == nil || len(fb.Sizes) == 0 {
		return nil
	}
	cat, blk, err := o.resolveQuery(fb.Cat, fb.Prepared, fb.Query, fb.SQL)
	if err != nil {
		if errors.Is(err, ErrBadRequest) {
			return ErrNoFeedback
		}
		return err
	}
	o.fb.Observe(o.queryKey(cat, blk), fb.Sizes)
	return nil
}

// Simulate Monte-Carlo-executes a plan's cost model under the request's
// environment (the request only needs a query and an environment).
func (o *Optimizer) Simulate(req Request, p *plan.Node, runs int, seed int64) (envsim.RunStats, error) {
	sc, err := o.scenario(req)
	if err != nil {
		return envsim.RunStats{}, err
	}
	return sc.Simulate(p, runs, seed)
}

// Tournament runs a common-random-numbers realized-cost comparison of the
// given reports' plans under the request's environment.
func (o *Optimizer) Tournament(req Request, reports []PlanReport, runs int, seed int64) (envsim.TournamentResult, error) {
	sc, err := o.scenario(req)
	if err != nil {
		return envsim.TournamentResult{}, err
	}
	return sc.Tournament(reports, runs, seed)
}

// CacheStats snapshots the handle's plan cache (zero when disabled).
func (o *Optimizer) CacheStats() plancache.Stats {
	if o.cache == nil {
		return plancache.Stats{}
	}
	return o.cache.Stats()
}

// FeedbackStats reports the feedback store's distinct queries and total
// folded observations (zeros when feedback is disabled).
func (o *Optimizer) FeedbackStats() (queries int, observations uint64) {
	if o.fb == nil {
		return 0, 0
	}
	return o.fb.Queries(), o.fb.Observations()
}

// DriftBand returns the resolved cache-key band base (0 = exact keys).
func (o *Optimizer) DriftBand() float64 { return o.band }

// ResolveDriftBand maps a Config.DriftBand value to the effective band
// base: 0 means DefaultDriftBand, values <= 1 mean exact keys (0).
func ResolveDriftBand(v float64) float64 {
	switch {
	case v == 0:
		return DefaultDriftBand
	case v > 1:
		return v
	default:
		return 0
	}
}

// --- prepared statements -------------------------------------------------

// Prepared is a prepared statement: the query parsed, validated and
// canonicalized once, plus [INSS92]-style parametric plan sets — one LEC
// plan per anticipated memory law, per anticipated drift factor — for
// start-up-time plan selection without a plan-space search.
type Prepared struct {
	opt       *Optimizer
	sql       string
	block     *query.Block
	canonical string
	sets      []preparedSet
}

// preparedSet is the plan set precomputed for one drift factor.
type preparedSet struct {
	factor float64
	plans  *parametric.Cache
}

// Prepare parses, validates and canonicalizes sql against the handle's
// catalog once, and — when the handle is configured with anticipated
// memory laws — precomputes the parametric plan sets over the memory and
// drift axes. Prepared statements are memoized by SQL text: preparing the
// same text twice returns the same handle.
func (o *Optimizer) Prepare(sql string) (*Prepared, error) {
	if o.cat == nil {
		return nil, ErrNoCatalog
	}
	o.mu.Lock()
	if p, ok := o.prepared[sql]; ok {
		o.mu.Unlock()
		return p, nil
	}
	o.mu.Unlock()
	blk, err := sqlmini.ParseAndValidate(sql, o.cat)
	if err != nil {
		return nil, err
	}
	p := &Prepared{opt: o, sql: sql, block: blk, canonical: blk.Canonical()}
	if len(o.cfg.AnticipatedLaws) > 0 {
		factors := o.cfg.DriftFactors
		if len(factors) == 0 {
			factors = []float64{1}
		}
		opts := o.cfg.PlanSpace
		for _, f := range factors {
			cat, err := o.cat.ScaleDistinct(f)
			if err != nil {
				return nil, fmt.Errorf("core: prepare: %w", err)
			}
			plans, err := parametric.Precompute(cat, blk, opts, o.cfg.AnticipatedLaws)
			if err != nil {
				return nil, fmt.Errorf("core: prepare: %w", err)
			}
			p.sets = append(p.sets, preparedSet{factor: f, plans: plans})
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if exist, ok := o.prepared[sql]; ok { // lost a concurrent Prepare race
		return exist, nil
	}
	o.prepared[sql] = p
	return p, nil
}

// SQL returns the prepared statement's text.
func (p *Prepared) SQL() string { return p.sql }

// Block returns the validated query block.
func (p *Prepared) Block() *query.Block { return p.block }

// Canonical returns the canonical query shape.
func (p *Prepared) Canonical() string { return p.canonical }

// PlanSets returns the number of precomputed drift-axis plan sets.
func (p *Prepared) PlanSets() int { return len(p.sets) }

// Optimize runs a full (cached) optimization of the prepared query.
func (p *Prepared) Optimize(env envsim.Env, alg Algorithm) (Response, error) {
	return p.opt.Optimize(Request{Prepared: p, Env: env, Alg: alg})
}

// setFor returns the plan set whose drift factor is nearest (in log
// ratio) to factor, or nil when none were precomputed.
func (p *Prepared) setFor(factor float64) *preparedSet {
	if len(p.sets) == 0 || factor <= 0 {
		return nil
	}
	best := -1
	bestD := math.Inf(1)
	for i := range p.sets {
		d := math.Abs(math.Log(p.sets[i].factor) - math.Log(factor))
		if d < bestD {
			best, bestD = i, d
		}
	}
	return &p.sets[best]
}

// Entries returns the plan-set entries precomputed for the drift factor
// nearest to factor (nil when Prepare ran without anticipated laws).
func (p *Prepared) Entries(factor float64) []parametric.Entry {
	s := p.setFor(factor)
	if s == nil {
		return nil
	}
	return s.plans.Entries()
}

// Nearest returns the precomputed entry whose anticipated law is closest
// (1-Wasserstein) to the actual start-up-time law — the paper's "simple
// table lookup" — from the neutral-drift plan set.
func (p *Prepared) Nearest(mem dist.Dist) (parametric.Entry, error) {
	s := p.setFor(1)
	if s == nil {
		return parametric.Entry{}, parametric.ErrNoEntry
	}
	return s.plans.Nearest(mem)
}

// Select answers a start-up-time memory law from the neutral-drift plan
// set by re-costing the tiny cached candidate set (parametric.SelectByEC
// — Algorithm A over precomputed plans). Without precomputed sets it
// falls back to a full cached optimization with Algorithm C.
func (p *Prepared) Select(mem dist.Dist) (Response, error) {
	return p.SelectDrifted(mem, 1)
}

// SelectDrifted is Select against the plan set precomputed for the drift
// factor nearest to factor.
func (p *Prepared) SelectDrifted(mem dist.Dist, factor float64) (Response, error) {
	s := p.setFor(factor)
	if s == nil {
		return p.Optimize(envsim.Env{Mem: mem}, AlgC)
	}
	pl, ec, err := s.plans.SelectByEC(mem)
	if err != nil {
		return Response{Err: err}, err
	}
	rep := PlanReport{
		Algorithm:  AlgC,
		Plan:       pl,
		Score:      ec,
		EC:         ec,
		Candidates: s.plans.Plans(),
	}
	// Parametric selection skips the optimizer, so derive the per-phase
	// breakdown here: the selected plan charged under the static memory
	// law at every phase, matching what AlgorithmC would report.
	if laws, lerr := optimizer.PhaseLawsFor(len(p.block.Tables), mem, nil); lerr == nil {
		if ph, perr := optimizer.ExpectedCostPhasesModel(s.plans.Model(), pl, laws); perr == nil {
			rep.PhaseEC = ph
		}
	}
	return Response{PlanReport: rep, Parametric: true}, nil
}
