package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/sqlmini"
)

// paperScenario is Example 1.1 through the façade, built from mini-SQL.
func paperScenario(t *testing.T) *Scenario {
	t.Helper()
	cat := catalog.New()
	v := 4e13 / 3000.0
	if err := cat.AddTable(catalog.MustTable("a", 1_000_000, 100_000_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: v, Min: 0, Max: 1e12})); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(catalog.MustTable("b", 400_000, 40_000_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 1000, Min: 0, Max: 1e12})); err != nil {
		t.Fatal(err)
	}
	blk, err := sqlmini.ParseAndValidate("SELECT * FROM a, b WHERE a.k = b.k ORDER BY a.k", cat)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := dist.Bimodal(700, 2000, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return &Scenario{
		Cat:   cat,
		Query: blk,
		Env:   envsim.Env{Mem: mem},
		Opts:  optimizer.Options{Methods: []cost.JoinMethod{cost.SortMerge, cost.GraceHash}},
	}
}

func TestScenarioChecks(t *testing.T) {
	var nilSc *Scenario
	if _, err := nilSc.Optimize(AlgC); !errors.Is(err, ErrNilScenario) {
		t.Fatal("nil scenario")
	}
	sc := &Scenario{}
	if _, err := sc.Optimize(AlgC); !errors.Is(err, ErrNilScenario) {
		t.Fatal("empty scenario")
	}
	good := paperScenario(t)
	if _, err := good.Optimize(Algorithm(99)); !errors.Is(err, ErrUnknownAlg) {
		t.Fatal("unknown algorithm")
	}
}

func TestCompareReproducesPaperStory(t *testing.T) {
	sc := paperScenario(t)
	reports, err := sc.Compare(AlgLSCMean, AlgLSCMode, AlgA, AlgB, AlgC)
	if err != nil {
		t.Fatal(err)
	}
	byAlg := map[Algorithm]PlanReport{}
	for _, r := range reports {
		byAlg[r.Algorithm] = r
	}
	for _, lsc := range []Algorithm{AlgLSCMean, AlgLSCMode} {
		if !strings.Contains(byAlg[lsc].Plan.Signature(), "sort-merge") {
			t.Fatalf("%s should pick plan 1, got %s", lsc, byAlg[lsc].Plan.Signature())
		}
	}
	for _, lec := range []Algorithm{AlgA, AlgB, AlgC} {
		if !strings.Contains(byAlg[lec].Plan.Signature(), "grace-hash") {
			t.Fatalf("%s should pick plan 2, got %s", lec, byAlg[lec].Plan.Signature())
		}
		if byAlg[lec].EC >= byAlg[AlgLSCMean].EC {
			t.Fatalf("%s EC %v should beat LSC %v", lec, byAlg[lec].EC, byAlg[AlgLSCMean].EC)
		}
	}
	// The report's Score for Algorithm C is the same yardstick as EC.
	c := byAlg[AlgC]
	if math.Abs(c.Score-c.EC) > 1e-6*c.EC {
		t.Fatalf("AlgC score %v vs EC %v", c.Score, c.EC)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{
		AlgLSCMean: "lsc-mean", AlgLSCMode: "lsc-mode",
		AlgA: "algorithm-a", AlgB: "algorithm-b", AlgC: "algorithm-c", AlgD: "algorithm-d",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d: %q", a, a.String())
		}
	}
	if Algorithm(77).String() == "" {
		t.Fatal("unknown alg string")
	}
	if len(Algorithms) != 6 {
		t.Fatal("algorithm list")
	}
}

func TestSimulateAgreesWithEC(t *testing.T) {
	sc := paperScenario(t)
	rep, err := sc.Optimize(AlgC)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sc.Simulate(rep.Plan, 40000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(st.Mean-rep.EC) / rep.EC; rel > 0.01 {
		t.Fatalf("MC mean %v vs EC %v", st.Mean, rep.EC)
	}
}

func TestTournamentThroughFacade(t *testing.T) {
	sc := paperScenario(t)
	reports, err := sc.Compare(AlgLSCMode, AlgC)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Tournament(reports, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 {
		t.Fatal("two entrants")
	}
	if !(res.Stats[1].Mean < res.Stats[0].Mean) {
		t.Fatalf("AlgC should win the tournament: %v vs %v", res.Stats[1].Mean, res.Stats[0].Mean)
	}
}

func TestDynamicEnvRoutesToDynamicC(t *testing.T) {
	sc := paperScenario(t)
	chain, err := dist.Sticky([]float64{700, 2000}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	sc.Env.Chain = chain
	rep, err := sc.Optimize(AlgC)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || rep.EC <= 0 {
		t.Fatal("dynamic optimization failed")
	}
	// Mismatched chain/law must surface as an env error.
	sc.Env.Mem = dist.Point(555)
	if _, err := sc.Optimize(AlgC); err == nil {
		t.Fatal("law off chain states should fail")
	}
}

func TestAlgorithmDThroughFacade(t *testing.T) {
	sc := paperScenario(t)
	sigma, err := catalog.SelectivityDist(7.5e-9, 3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	sc.SelLaws = map[string]dist.Dist{
		optimizer.EdgeKey(sc.Query.Joins[0]): sigma,
	}
	rep, err := sc.Optimize(AlgD)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || rep.Score <= 0 {
		t.Fatal("Algorithm D failed")
	}
}

func TestCompareErrorPropagatesAlgorithmName(t *testing.T) {
	sc := paperScenario(t)
	sc.Query.Tables = append(sc.Query.Tables, "missing")
	_, err := sc.Compare(AlgC)
	if err == nil || !strings.Contains(err.Error(), "algorithm-c") {
		t.Fatalf("err = %v", err)
	}
}

func TestTopCDefault(t *testing.T) {
	sc := paperScenario(t)
	if sc.topC() != 3 {
		t.Fatal("default TopC")
	}
	sc.TopC = 7
	if sc.topC() != 7 {
		t.Fatal("explicit TopC")
	}
}
