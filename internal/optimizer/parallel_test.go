package optimizer

import (
	"fmt"
	"math/rand"
	"testing"

	"lecopt/internal/dist"
	"lecopt/internal/workload"
)

// TestParallelBucketsMatchSerial asserts Algorithms A and B return the exact
// same result regardless of Options.Workers: parallelism over memory buckets
// must never change plan choice, score, or bookkeeping.
func TestParallelBucketsMatchSerial(t *testing.T) {
	mem := dist.MustNew([]float64{64, 256, 1024, 4096, 16384}, []float64{3, 2, 1, 1, 2})
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		shape := []workload.Shape{workload.Chain, workload.Star, workload.Random}[seed%3]
		sc, err := workload.Generate(workload.DefaultSpec(3+int(seed%3), shape), rng)
		if err != nil {
			t.Fatal(err)
		}
		key := func(r Result) string {
			return fmt.Sprintf("%s|%v|%d|%d", r.Plan.Signature(), r.EC, r.Candidates, r.Probes)
		}
		serialA, err := AlgorithmA(sc.Cat, sc.Block, Options{Workers: 1}, mem)
		if err != nil {
			t.Fatal(err)
		}
		parallelA, err := AlgorithmA(sc.Cat, sc.Block, Options{Workers: 8}, mem)
		if err != nil {
			t.Fatal(err)
		}
		if key(serialA) != key(parallelA) {
			t.Fatalf("seed %d AlgorithmA:\n serial   %s\n parallel %s", seed, key(serialA), key(parallelA))
		}
		serialB, err := AlgorithmB(sc.Cat, sc.Block, Options{Workers: 1}, mem, 3)
		if err != nil {
			t.Fatal(err)
		}
		parallelB, err := AlgorithmB(sc.Cat, sc.Block, Options{Workers: 8}, mem, 3)
		if err != nil {
			t.Fatal(err)
		}
		if key(serialB) != key(parallelB) {
			t.Fatalf("seed %d AlgorithmB:\n serial   %s\n parallel %s", seed, key(serialB), key(parallelB))
		}
	}
}
