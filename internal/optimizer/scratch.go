package optimizer

import (
	"sync"

	"lecopt/internal/cost"
	"lecopt/internal/plan"
)

// The join-subset DP's scratch memory — the table, the per-worker
// candidate buffers and the per-worker plan-node arenas — is reset, not
// freed, between optimizations: dpBest borrows a dpScratch from a
// sync.Pool and releases it before returning, so a steady stream of cache
// misses stops churning the allocator. Nothing allocated from a scratch
// may outlive the release: finishRoot deep-copies the winning plan, which
// is the only part of the DP state that escapes into a Result.

const (
	// arenaChunkSize is the node count of one arena chunk. Chunks are
	// never reallocated — growth appends a new chunk — so node pointers
	// handed out by alloc stay valid for the whole optimization.
	arenaChunkSize = 256
	// maxPooledChunks and maxPooledSlots bound what a released scratch
	// keeps warm in the pool; an occasional very wide query (the DP table
	// is 2^n slots) must not pin its peak footprint forever.
	maxPooledChunks = 64
	maxPooledSlots  = 1 << 16
)

// dpParallelMinMasks gates rank-parallel enumeration: a rank is split
// across workers only when it has enough masks to amortize goroutine
// handoff (the widest rank reaches it from n = 8 tables up). A var, not a
// const, so tests can force the parallel path on small corpora.
var dpParallelMinMasks = 64

// dpSlot is one DP-table cell: the best retained entry per order slot
// (see slotOf), held by value — entry pointers would pin the scratch's
// previous contents and cost an allocation per keep.
type dpSlot struct {
	e  [2]entry
	ok [2]bool
}

// dpWorker is one enumeration worker's private scratch: a node arena and
// a candidate buffer. Each parallel chunk owns exactly one worker, so
// arenas are never shared across goroutines.
type dpWorker struct {
	arena nodeArena
	cands []int
}

// dpScratch is the pooled scratch of one dpBest call.
type dpScratch struct {
	slots   []dpSlot
	masks   []uint64
	workers []dpWorker
}

var scratchPool = sync.Pool{New: func() any { return new(dpScratch) }}

func getScratch() *dpScratch { return scratchPool.Get().(*dpScratch) }

// table returns a zeroed DP table of n slots, reusing the previous
// allocation when it is large enough.
func (s *dpScratch) table(n int) []dpSlot {
	if cap(s.slots) < n {
		s.slots = make([]dpSlot, n)
		return s.slots
	}
	s.slots = s.slots[:n]
	for i := range s.slots {
		s.slots[i] = dpSlot{}
	}
	return s.slots
}

// ensureWorkers grows the worker set to n before a parallel section —
// growing it mid-flight would move the backing array under live workers.
func (s *dpScratch) ensureWorkers(n int) {
	for len(s.workers) < n {
		s.workers = append(s.workers, dpWorker{})
	}
}

// release zeroes everything that could pin plan nodes, trims outsized
// buffers, and returns the scratch to the pool.
func (s *dpScratch) release() {
	for i := range s.slots {
		s.slots[i] = dpSlot{}
	}
	if cap(s.slots) > maxPooledSlots {
		s.slots = nil
	}
	for i := range s.workers {
		s.workers[i].arena.reset()
	}
	scratchPool.Put(s)
}

// nodeArena hands out plan.Node storage in fixed-size chunks. Reset
// zeroes only the used prefix, so the cost of recycling is proportional
// to what the last optimization actually touched.
type nodeArena struct {
	chunks [][]plan.Node
	ci, ni int // cursor: next node is chunks[ci][ni]
}

// alloc returns a zeroed node. Slots at or past the cursor are always
// zero (fresh chunks are zero; reset and undo re-zero recycled slots).
func (a *nodeArena) alloc() *plan.Node {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]plan.Node, arenaChunkSize))
	}
	n := &a.chunks[a.ci][a.ni]
	a.ni++
	if a.ni == arenaChunkSize {
		a.ci++
		a.ni = 0
	}
	return n
}

// undo gives back the most recently allocated node — the loser of a DP
// comparison that was only built for its tie-break signature.
func (a *nodeArena) undo() {
	if a.ni == 0 {
		a.ci--
		a.ni = arenaChunkSize
	}
	a.ni--
	a.chunks[a.ci][a.ni] = plan.Node{}
}

// newJoin is plan.NewJoin allocated from the arena.
func (a *nodeArena) newJoin(method cost.JoinMethod, left, right *plan.Node, outPages float64, order plan.Order) *plan.Node {
	n := a.alloc()
	n.Kind = plan.KindJoin
	n.Method = method
	n.Left = left
	n.Right = right
	n.OutPages = outPages
	n.OutOrder = order
	return n
}

// reset zeroes the used prefix (dropping the node links that would
// otherwise keep the last query's plans reachable from the pool) and
// rewinds the cursor.
func (a *nodeArena) reset() {
	for i := 0; i <= a.ci && i < len(a.chunks); i++ {
		n := arenaChunkSize
		if i == a.ci {
			n = a.ni
		}
		c := a.chunks[i]
		for j := 0; j < n; j++ {
			c[j] = plan.Node{}
		}
	}
	a.ci, a.ni = 0, 0
	if len(a.chunks) > maxPooledChunks {
		a.chunks = a.chunks[:maxPooledChunks]
	}
}

// owns reports whether p points into the arena — the test hook behind the
// guarantee that no arena pointer escapes into a Result.
func (a *nodeArena) owns(p *plan.Node) bool {
	for _, c := range a.chunks {
		for i := range c {
			if p == &c[i] {
				return true
			}
		}
	}
	return false
}
