package optimizer

import (
	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/plan"
	"lecopt/internal/query"
)

// ExhaustiveLEC enumerates every left-deep plan (all join orders, all join
// methods, all access paths, enforcer added when needed) and returns the
// one of least expected cost under the per-phase memory laws. It scores
// plans with ExpectedCost — an evaluation path independent of the DP's
// incremental scoring — so it serves as the correctness oracle for
// Theorems 3.3 and 3.4 on small queries. Exponential: use only for n ≤ 6.
func ExhaustiveLEC(cat *catalog.Catalog, blk *query.Block, opts Options, laws []dist.Dist) (Result, error) {
	if len(laws) == 0 {
		return Result{}, ErrLawsShort
	}
	c, err := prepare(cat, blk, opts)
	if err != nil {
		return Result{}, err
	}
	res, err := c.exhaustive(func(p *plan.Node) (float64, error) {
		return ExpectedCostModel(c.opts.CostModel, p, laws)
	})
	if err != nil {
		return Result{}, err
	}
	return withPhaseEC(res, c.opts.CostModel, laws)
}

// ExhaustiveLSC is the point-cost oracle for Theorem 2.1: the true best
// left-deep plan at one memory value, found by brute force and scored with
// plan.CostAt.
func ExhaustiveLSC(cat *catalog.Catalog, blk *query.Block, opts Options, mem float64) (Result, error) {
	c, err := prepare(cat, blk, opts)
	if err != nil {
		return Result{}, err
	}
	res, err := c.exhaustive(func(p *plan.Node) (float64, error) {
		return p.CostAtModel(c.opts.CostModel, mem), nil
	})
	if err != nil {
		return Result{}, err
	}
	return withPhaseEC(res, c.opts.CostModel, []dist.Dist{dist.Point(mem)})
}

// exhaustive enumerates all left-deep plans and keeps the minimum under
// eval. Candidates counts complete plans evaluated.
func (c *ctx) exhaustive(eval func(*plan.Node) (float64, error)) (Result, error) {
	type partial struct {
		node  *plan.Node
		pages float64
		order plan.Order
		mask  uint64
	}
	var best *Result
	bestSig := ""
	candidates := 0
	full := fullMask(c.n)

	finish := func(p partial) error {
		node := p.node
		if c.blk.OrderBy != nil && !c.satisfiesOrderBy(p.order) {
			node = plan.NewSort(node, c.requiredOrder())
		}
		score, err := eval(node)
		if err != nil {
			return err
		}
		candidates++
		sig := node.Signature()
		if best == nil || better(score, sig, best.EC, bestSig) {
			best = &Result{Plan: node, EC: score}
			bestSig = sig
		}
		return nil
	}

	var extend func(p partial) error
	extend = func(p partial) error {
		if p.mask == full {
			return finish(p)
		}
		for j := 0; j < c.n; j++ {
			bit := uint64(1) << uint(j)
			if p.mask&bit != 0 {
				continue
			}
			// Mirror the DP's cross-product rule exactly: j may extend the
			// prefix iff it would be a candidate "last join" for the
			// resulting subset.
			if !c.isCandidate(j, p.mask|bit) {
				continue
			}
			sigma := c.sigmaBetween(j, p.mask)
			for _, leaf := range c.leafEntries(c.tables[j]) {
				for _, m := range c.opts.Methods {
					outPages := c.joinOutPages(p.mask|bit, c.clampPages(p.pages*leaf.pages*sigma))
					order := c.joinOutputOrder(m, j, p.mask, p.order)
					node := plan.NewJoin(m, p.node, leaf.node, outPages, order)
					if err := extend(partial{node: node, pages: outPages, order: order, mask: p.mask | bit}); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	for j := 0; j < c.n; j++ {
		for _, leaf := range c.leafEntries(c.tables[j]) {
			p := partial{node: leaf.node, pages: leaf.pages, order: leaf.order, mask: 1 << uint(j)}
			if c.n == 1 {
				if err := finish(p); err != nil {
					return Result{}, err
				}
				continue
			}
			if err := extend(p); err != nil {
				return Result{}, err
			}
		}
	}
	if best == nil {
		return Result{}, ErrNoPlan
	}
	best.Candidates = candidates
	return *best, nil
}

// AllLeftDeepPlans returns every complete left-deep plan for the block
// (enforcers applied), for analyses that need the full plan space (e.g.
// computing the true LEC plan under an arbitrary evaluation). The count
// grows as n!·m^(n-1)·a^n — small n only.
func AllLeftDeepPlans(cat *catalog.Catalog, blk *query.Block, opts Options) ([]*plan.Node, error) {
	c, err := prepare(cat, blk, opts)
	if err != nil {
		return nil, err
	}
	var out []*plan.Node
	_, err = c.exhaustive(func(p *plan.Node) (float64, error) {
		out = append(out, p)
		return 0, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Note: the exhaustive enumerator deliberately does not dedup plans; the
// DP algorithms must beat or tie every single one.
