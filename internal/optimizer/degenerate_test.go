package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"lecopt/internal/dist"
)

// TestDegenerateChainExactness: with a Point memory law and the identity
// (one-state) chain, the whole uncertainty apparatus must vanish. The
// dynamic-memory program reduces to Algorithm C (every phase law is the
// same point), which in turn reduces to a standard System R optimization
// at that memory value: all three pick the same plan, score it with the
// same number, and attribute it to phases identically. This is the
// degenerate anchor of the phase-ledger contract — if the collapse is not
// exact, per-phase attribution error exists even with zero uncertainty
// and the ledger could not distinguish model error from law error.
func TestDegenerateChainExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		sc := randScenario(rng, 2+rng.Intn(3))
		mem := math.Trunc(4 + rng.Float64()*200)
		law := dist.Point(mem)
		chain, err := dist.Sticky([]float64{mem}, 1)
		if err != nil {
			t.Fatal(err)
		}

		lsc, err := LSC(sc.cat, sc.blk, Options{}, mem)
		if err != nil {
			t.Fatalf("trial %d: lsc: %v", trial, err)
		}
		c, err := AlgorithmC(sc.cat, sc.blk, Options{}, law)
		if err != nil {
			t.Fatalf("trial %d: C: %v", trial, err)
		}
		cd, err := AlgorithmCDynamic(sc.cat, sc.blk, Options{}, law, chain)
		if err != nil {
			t.Fatalf("trial %d: C-dynamic: %v", trial, err)
		}

		if got, want := c.Plan.String(), lsc.Plan.String(); got != want {
			t.Fatalf("trial %d (mem %v): C plan %s != LSC plan %s", trial, mem, got, want)
		}
		if got, want := cd.Plan.String(), c.Plan.String(); got != want {
			t.Fatalf("trial %d (mem %v): C-dynamic plan %s != C plan %s", trial, mem, got, want)
		}
		if !relClose(c.EC, lsc.EC) || !relClose(cd.EC, c.EC) {
			t.Fatalf("trial %d (mem %v): scores diverge: lsc=%v c=%v cd=%v",
				trial, mem, lsc.EC, c.EC, cd.EC)
		}

		// Per-phase charges: complete (one entry per phase, summing to the
		// score) and identical between the static and dynamic programs —
		// with one chain state there is nothing for the dynamic program to
		// hedge across phases.
		phases := c.Plan.Phases()
		if len(c.PhaseEC) != phases || len(cd.PhaseEC) != phases || len(lsc.PhaseEC) != phases {
			t.Fatalf("trial %d: phase counts %d/%d/%d, want %d",
				trial, len(lsc.PhaseEC), len(c.PhaseEC), len(cd.PhaseEC), phases)
		}
		var sum float64
		for i := 0; i < phases; i++ {
			if c.PhaseEC[i] != cd.PhaseEC[i] || c.PhaseEC[i] != lsc.PhaseEC[i] {
				t.Fatalf("trial %d phase %d: charges diverge: lsc=%v c=%v cd=%v",
					trial, i, lsc.PhaseEC[i], c.PhaseEC[i], cd.PhaseEC[i])
			}
			sum += c.PhaseEC[i]
		}
		if !relClose(sum, c.EC) {
			t.Fatalf("trial %d: phase charges sum %v != score %v", trial, sum, c.EC)
		}
	}
}
