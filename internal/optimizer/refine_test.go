package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"lecopt/internal/dist"
)

// fineLaw builds a b-bucket law over [3, 5000].
func fineLaw(rng *rand.Rand, b int) dist.Dist {
	vals := make([]float64, b)
	probs := make([]float64, b)
	for i := range vals {
		vals[i] = 3 + rng.Float64()*5000
		probs[i] = rng.Float64() + 0.01
	}
	return dist.MustNew(vals, probs)
}

// TestRefinedReachesFullResolutionIsExact: with an impossible stability
// requirement the refinement runs to the full law and must equal
// Algorithm C exactly.
func TestRefinedReachesFullResolutionIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		sc := randScenario(rng, 2+rng.Intn(3))
		mem := fineLaw(rng, 64)
		res, stats, err := AlgorithmCRefined(sc.cat, sc.blk, Options{}, mem, 2, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Converged {
			t.Fatal("stability threshold was unreachable")
		}
		full, err := AlgorithmC(sc.cat, sc.blk, Options{}, mem)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(res.EC, full.EC) {
			t.Fatalf("trial %d: refined %v vs full %v", trial, res.EC, full.EC)
		}
		last := stats.BucketsPerRound[len(stats.BucketsPerRound)-1]
		if last != mem.Len() {
			t.Fatalf("should have reached full resolution, last b=%d", last)
		}
	}
}

// TestRefinedConvergesEarlyWithSmallRegret: with a modest stability
// requirement, refinement stops early on most scenarios and the chosen
// plan's exact EC stays close to the optimum.
func TestRefinedConvergesEarlyWithSmallRegret(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	early := 0
	for trial := 0; trial < 15; trial++ {
		sc := randScenario(rng, 2+rng.Intn(3))
		mem := fineLaw(rng, 128)
		res, stats, err := AlgorithmCRefined(sc.cat, sc.blk, Options{}, mem, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		full, err := AlgorithmC(sc.cat, sc.blk, Options{}, mem)
		if err != nil {
			t.Fatal(err)
		}
		regret := res.EC/full.EC - 1
		if regret < -1e-9 {
			t.Fatalf("trial %d: refined beat the optimum?! %v", trial, regret)
		}
		if regret > 0.10 {
			t.Fatalf("trial %d: regret too large: %v", trial, regret)
		}
		if stats.Converged {
			early++
			total := 0
			for _, b := range stats.BucketsPerRound {
				total += b
			}
			if total >= 128 {
				t.Fatalf("trial %d: convergence without savings (%v)", trial, stats.BucketsPerRound)
			}
		}
	}
	if early == 0 {
		t.Fatal("refinement never converged early across 15 scenarios")
	}
}

// TestRefinedStatsShape: bucket counts double per round from the start
// value and the reported EC matches an independent evaluation.
func TestRefinedStatsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	sc := randScenario(rng, 3)
	mem := fineLaw(rng, 32)
	res, stats, err := AlgorithmCRefined(sc.cat, sc.blk, Options{}, mem, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != len(stats.BucketsPerRound) || stats.Rounds < 1 {
		t.Fatalf("stats inconsistent: %+v", stats)
	}
	// First round uses startBuckets-1 cuts unless the scenario has fewer
	// in-range level-set cuts, in which case it jumps straight to the full
	// law (which is exact).
	if stats.BucketsPerRound[0] < 1 || stats.BucketsPerRound[0] > mem.Len() {
		t.Fatalf("first round buckets = %d, want 1..%d", stats.BucketsPerRound[0], mem.Len())
	}
	for i := 1; i < len(stats.BucketsPerRound); i++ {
		if stats.BucketsPerRound[i] < stats.BucketsPerRound[i-1] {
			t.Fatal("bucket counts must not shrink")
		}
	}
	ev, err := ExpectedCost(res.Plan, staticLaws(mem, len(sc.blk.Tables)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev-res.EC) > 1e-9*math.Max(1, ev) {
		t.Fatalf("EC %v vs independent %v", res.EC, ev)
	}
}

// TestRefinedDegenerateInputs: clamping of startBuckets/stable, and point
// laws terminate immediately.
func TestRefinedDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	sc := randScenario(rng, 2)
	res, stats, err := AlgorithmCRefined(sc.cat, sc.blk, Options{}, dist.Point(500), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 || res.Plan == nil {
		t.Fatalf("point law should finish in one round: %+v", stats)
	}
	bad := &scenario{cat: sc.cat, blk: sc.blk.Clone()}
	bad.blk.Tables = []string{"zz"}
	if _, _, err := AlgorithmCRefined(bad.cat, bad.blk, Options{}, dist.Point(500), 1, 1); err == nil {
		t.Fatal("invalid block should fail")
	}
}
