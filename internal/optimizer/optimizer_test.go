package optimizer

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/plan"
	"lecopt/internal/query"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func relClose(a, b float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1 {
		return d < 1e-9
	}
	return d/m < 1e-9
}

// example11 builds the paper's motivating scenario: A = 1,000,000 pages,
// B = 400,000 pages, result ≈ 3,000 pages, output ordered by the join
// column. The distinct count on the join key is chosen so the catalog's
// standard 1/max(V) estimator yields exactly the paper's 3,000-page
// result (the paper simply posits that size).
func example11(t *testing.T) (*catalog.Catalog, *query.Block) {
	t.Helper()
	cat := catalog.New()
	// 100 rows per page on both tables → result tpp 100;
	// outPages = rowsA·rowsB/(V·tpp) = 3000 ⇒ V = 4e13/3000.
	v := 4e13 / 3000.0
	a := catalog.MustTable("A", 1_000_000, 100_000_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: v, Min: 0, Max: 1e12})
	b := catalog.MustTable("B", 400_000, 40_000_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 1000, Min: 0, Max: 1e12})
	if err := cat.AddTable(a); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(b); err != nil {
		t.Fatal(err)
	}
	blk := &query.Block{
		Tables:  []string{"A", "B"},
		Joins:   []query.Join{{Left: query.ColRef{Table: "A", Column: "k"}, Right: query.ColRef{Table: "B", Column: "k"}}},
		OrderBy: &query.ColRef{Table: "A", Column: "k"},
	}
	return cat, blk
}

var example11Opts = Options{Methods: []cost.JoinMethod{cost.SortMerge, cost.GraceHash}}

// TestExample11LSCPicksPlan1 is half of experiment E1: at the modal
// memory (2000) and at the mean (1740), the classical optimizer picks the
// sort-merge plan (paper's Plan 1).
func TestExample11LSCPicksPlan1(t *testing.T) {
	cat, blk := example11(t)
	for _, mem := range []float64{2000, 1740} {
		r, err := LSC(cat, blk, example11Opts, mem)
		if err != nil {
			t.Fatal(err)
		}
		sig := r.Plan.Signature()
		if !strings.Contains(sig, "sort-merge") || strings.Contains(sig, "sort<") {
			t.Fatalf("LSC at %v should pick plain sort-merge, got %s", mem, sig)
		}
		// Two-pass sort-merge 2.8e6 — the join reads both inputs, so the
		// handoff scans add nothing (the paper's Example 1.1 numbers).
		approx(t, r.EC, 2*1.4e6, 1, "LSC cost")
	}
}

// TestExample11LECPicksPlan2 is the other half of E1: under the bimodal
// law {700:0.2, 2000:0.8} Algorithm C picks grace-hash + explicit sort
// (paper's Plan 2), and its expected cost beats the LSC plan's.
func TestExample11LECPicksPlan2(t *testing.T) {
	cat, blk := example11(t)
	mem := dist.MustNew([]float64{700, 2000}, []float64{0.2, 0.8})

	r, err := AlgorithmC(cat, blk, example11Opts, mem)
	if err != nil {
		t.Fatal(err)
	}
	sig := r.Plan.Signature()
	if !strings.Contains(sig, "grace-hash") || !strings.Contains(sig, "sort<") {
		t.Fatalf("LEC should pick grace-hash + sort, got %s", sig)
	}
	// GH 2.8e6 (input reads included) + sort of ~3000 pages ≈ 6000.
	approx(t, r.EC, 2.8e6+6000, 5, "LEC expected cost")

	// The LSC plan's expected cost is strictly worse.
	lsc, err := LSC(cat, blk, example11Opts, mem.Mode())
	if err != nil {
		t.Fatal(err)
	}
	lscEC, err := ExpectedCost(lsc.Plan, []dist.Dist{mem})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, lscEC, 0.8*2.8e6+0.2*5.6e6, 5, "LSC plan EC")
	if !(r.EC < lscEC) {
		t.Fatalf("LEC (%v) must beat LSC (%v) in expectation", r.EC, lscEC)
	}
}

// TestExample11AlgorithmA: the black-box algorithm also finds Plan 2,
// because the 700-page bucket's LSC run produces it as a candidate.
func TestExample11AlgorithmA(t *testing.T) {
	cat, blk := example11(t)
	mem := dist.MustNew([]float64{700, 2000}, []float64{0.2, 0.8})
	r, err := AlgorithmA(cat, blk, example11Opts, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Plan.Signature(), "grace-hash") {
		t.Fatalf("Algorithm A should find plan 2, got %s", r.Plan.Signature())
	}
	if r.Candidates < 2 {
		t.Fatalf("Algorithm A should have compared ≥ 2 candidates, got %d", r.Candidates)
	}
	c, err := AlgorithmC(cat, blk, example11Opts, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(r.EC, c.EC) {
		t.Fatalf("on this 2-table query A and C agree: %v vs %v", r.EC, c.EC)
	}
}

// --- random scenario machinery ------------------------------------------

type scenario struct {
	cat *catalog.Catalog
	blk *query.Block
}

// randScenario builds a random catalog and connected join query over n
// tables with a mix of shapes (chain/star/random), filters, indexes and an
// optional ORDER BY.
func randScenario(rng *rand.Rand, n int) scenario {
	cat := catalog.New()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		pages := math.Trunc(50 + rng.Float64()*100000)
		tpp := 50.0
		distinct := math.Trunc(10 + rng.Float64()*pages*tpp)
		cols := []catalog.Column{
			{Name: "k", Type: catalog.TypeInt, Distinct: distinct, Min: 0, Max: 1e9},
			{Name: "v", Type: catalog.TypeInt, Distinct: 100, Min: 0, Max: 999},
		}
		tab := catalog.MustTable(names[i], pages, pages*tpp, cols...)
		if err := cat.AddTable(tab); err != nil {
			panic(err)
		}
		if rng.Float64() < 0.4 {
			_ = cat.AddIndex(catalog.Index{
				Name: "ix_" + names[i], Table: names[i], Column: "k",
				Clustered: rng.Float64() < 0.5, Height: 2,
			})
		}
	}
	blk := &query.Block{Tables: names}
	// Connect via random spanning tree.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		blk.Joins = append(blk.Joins, query.Join{
			Left:  query.ColRef{Table: names[j], Column: "k"},
			Right: query.ColRef{Table: names[i], Column: "k"},
		})
	}
	// Occasional extra edge (cycle).
	if n >= 3 && rng.Float64() < 0.3 {
		blk.Joins = append(blk.Joins, query.Join{
			Left:  query.ColRef{Table: names[0], Column: "k"},
			Right: query.ColRef{Table: names[n-1], Column: "k"},
		})
	}
	// Filters.
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			blk.Filters = append(blk.Filters, query.Filter{
				Col: query.ColRef{Table: names[i], Column: "v"}, Op: catalog.OpLt,
				Value: float64(rng.Intn(900) + 50),
			})
		}
	}
	if rng.Float64() < 0.5 {
		blk.OrderBy = &query.ColRef{Table: names[rng.Intn(n)], Column: "k"}
	}
	return scenario{cat: cat, blk: blk}
}

func randMemLaw(rng *rand.Rand) dist.Dist {
	n := 2 + rng.Intn(4)
	vals := make([]float64, n)
	probs := make([]float64, n)
	for i := range vals {
		vals[i] = math.Trunc(3 + rng.Float64()*3000)
		probs[i] = rng.Float64() + 0.05
	}
	return dist.MustNew(vals, probs)
}

// TestTheorem21 (experiment E3): the System R DP's plan cost equals the
// exhaustive left-deep minimum at a fixed memory point.
func TestTheorem21(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(3) // 2..4 relations
		sc := randScenario(rng, n)
		mem := math.Trunc(3 + rng.Float64()*2000)
		got, err := LSC(sc.cat, sc.blk, Options{}, mem)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := ExhaustiveLSC(sc.cat, sc.blk, Options{}, mem)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !relClose(got.EC, want.EC) {
			t.Fatalf("trial %d (mem %v): DP %v vs exhaustive %v\nDP plan:\n%s\nOracle plan:\n%s",
				trial, mem, got.EC, want.EC, got.Plan, want.Plan)
		}
		// The DP's incremental score must equal the independent evaluator.
		ev := got.Plan.CostAt(mem)
		if !relClose(got.EC, ev) {
			t.Fatalf("trial %d: DP score %v vs CostAt %v", trial, got.EC, ev)
		}
	}
}

// TestTheorem33 (experiment E7): Algorithm C's plan expected cost equals
// the exhaustive LEC minimum under a static law, and the algorithm
// hierarchy EC(C) ≤ EC(B) ≤ EC(A) ≤ EC(LSC@mean) holds.
func TestTheorem33(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3)
		sc := randScenario(rng, n)
		mem := randMemLaw(rng)
		laws := []dist.Dist{mem}

		resC, err := AlgorithmC(sc.cat, sc.blk, Options{}, mem)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		oracle, err := ExhaustiveLEC(sc.cat, sc.blk, Options{}, laws)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !relClose(resC.EC, oracle.EC) {
			t.Fatalf("trial %d: AlgC %v vs oracle %v\nAlgC plan:\n%s\nOracle plan:\n%s",
				trial, resC.EC, oracle.EC, resC.Plan, oracle.Plan)
		}
		// DP score equals independent expected-cost evaluation.
		ev, err := ExpectedCost(resC.Plan, laws)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(resC.EC, ev) {
			t.Fatalf("trial %d: DP score %v vs ExpectedCost %v", trial, resC.EC, ev)
		}

		resA, err := AlgorithmA(sc.cat, sc.blk, Options{}, mem)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := AlgorithmB(sc.cat, sc.blk, Options{}, mem, 3)
		if err != nil {
			t.Fatal(err)
		}
		lsc, err := LSC(sc.cat, sc.blk, Options{}, mem.Mean())
		if err != nil {
			t.Fatal(err)
		}
		lscEC, err := ExpectedCost(lsc.Plan, laws)
		if err != nil {
			t.Fatal(err)
		}
		slack := 1e-9 * math.Max(1, lscEC)
		if resC.EC > resB.EC+slack || resB.EC > resA.EC+slack || resA.EC > lscEC+slack {
			t.Fatalf("trial %d: hierarchy violated: C=%v B=%v A=%v LSC=%v",
				trial, resC.EC, resB.EC, resA.EC, lscEC)
		}
	}
}

// TestTheorem34 (experiment E9): with Markov per-phase memory, dynamic
// Algorithm C equals the exhaustive oracle run on the same phase laws, and
// its expected cost equals the full memory-sequence enumeration — the law
// of total expectation across phases.
func TestTheorem34(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(2) // 3..4 relations → 2..3 phases
		sc := randScenario(rng, n)
		states := []float64{5, 40, 900}
		chain, err := dist.RandomWalk(states, 0.1+0.3*rng.Float64(), 0.1+0.3*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		init := dist.MustNew(states, []float64{rng.Float64() + 0.1, rng.Float64() + 0.1, rng.Float64() + 0.1})

		resDyn, err := AlgorithmCDynamic(sc.cat, sc.blk, Options{}, init, chain)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		laws, err := chain.PhaseLaws(init, n-1)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := ExhaustiveLEC(sc.cat, sc.blk, Options{}, laws)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(resDyn.EC, oracle.EC) {
			t.Fatalf("trial %d: dynamic AlgC %v vs oracle %v", trial, resDyn.EC, oracle.EC)
		}

		// Sequence-enumeration check: EC(P) = Σ_seq Pr(seq)·C(P, seq).
		seqs, probs, err := chain.AllSeqs(init, n-1)
		if err != nil {
			t.Fatal(err)
		}
		seqEC := 0.0
		for i, seq := range seqs {
			cst, err := resDyn.Plan.CostSeq(plan.SliceMem(seq))
			if err != nil {
				t.Fatal(err)
			}
			seqEC += probs[i] * cst
		}
		if !relClose(resDyn.EC, seqEC) {
			t.Fatalf("trial %d: phase-marginal EC %v vs sequence EC %v", trial, resDyn.EC, seqEC)
		}
	}
}

// TestLECNeverWorseThanLSC: the defining guarantee of Section 3.1 — for
// any law, EC(plan of Algorithm C) ≤ EC(plan of LSC at mean) and ≤ EC at
// mode, across many random scenarios.
func TestLECNeverWorseThanLSC(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	wins := 0
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		sc := randScenario(rng, n)
		mem := randMemLaw(rng)
		resC, err := AlgorithmC(sc.cat, sc.blk, Options{}, mem)
		if err != nil {
			t.Fatal(err)
		}
		for _, point := range []float64{mem.Mean(), mem.Mode()} {
			lsc, err := LSC(sc.cat, sc.blk, Options{}, point)
			if err != nil {
				t.Fatal(err)
			}
			lscEC, err := ExpectedCost(lsc.Plan, []dist.Dist{mem})
			if err != nil {
				t.Fatal(err)
			}
			if resC.EC > lscEC*(1+1e-9) {
				t.Fatalf("trial %d: LEC %v worse than LSC@%v %v", trial, resC.EC, point, lscEC)
			}
			if resC.EC < lscEC*(1-1e-9) {
				wins++
			}
		}
	}
	if wins == 0 {
		t.Fatal("LEC never strictly beat LSC across 60 random scenarios; suspicious")
	}
}

func TestSingleTableQuery(t *testing.T) {
	cat := catalog.New()
	tab := catalog.MustTable("t", 1000, 50000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 50000, Min: 0, Max: 1e6})
	if err := cat.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	blk := &query.Block{Tables: []string{"t"}, OrderBy: &query.ColRef{Table: "t", Column: "k"}}
	mem := dist.MustNew([]float64{10, 2000}, []float64{0.5, 0.5})
	r, err := AlgorithmC(cat, blk, Options{}, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Heap scan 1000 + enforcer sort: at 10 pages (∛1000=10 → 6·1000? at
	// m=10: m > cbrt? 10 > 10 false → 6·1000=6000); at 2000: free.
	approx(t, r.EC, 1000+0.5*6000, 1e-6, "single table EC")
	if r.Plan.Kind != plan.KindSort {
		t.Fatalf("expected sort enforcer, got %s", r.Plan.Signature())
	}

	// With a clustered index on k, the ordered access path avoids sorting.
	if err := cat.AddIndex(catalog.Index{Name: "ix_t", Table: "t", Column: "k", Clustered: true, Height: 2}); err != nil {
		t.Fatal(err)
	}
	r2, err := AlgorithmC(cat, blk, Options{}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Plan.Kind != plan.KindScan || r2.Plan.Access != plan.AccessIndex {
		t.Fatalf("expected index scan, got %s", r2.Plan.Signature())
	}
	approx(t, r2.EC, 2+1000, 1e-6, "index scan EC")
}

func TestIndexAccessPathChosenForSelectiveFilter(t *testing.T) {
	cat := catalog.New()
	tab := catalog.MustTable("t", 10000, 500000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 500000, Min: 0, Max: 1e6},
		catalog.Column{Name: "v", Type: catalog.TypeInt, Distinct: 1000, Min: 0, Max: 999})
	if err := cat.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddIndex(catalog.Index{Name: "ix_v", Table: "t", Column: "v", Clustered: true, Height: 3}); err != nil {
		t.Fatal(err)
	}
	blk := &query.Block{
		Tables:  []string{"t"},
		Filters: []query.Filter{{Col: query.ColRef{Table: "t", Column: "v"}, Op: catalog.OpEq, Value: 7}},
	}
	r, err := LSC(cat, blk, Options{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan.Access != plan.AccessIndex {
		t.Fatalf("selective equality filter should use the index, got %s", r.Plan.Signature())
	}
	// sel = 1/1000 → ceil(10000/1000)=10 pages + height 3.
	approx(t, r.EC, 13, 1e-9, "index scan cost")

	// DisableIndexes forces the heap scan.
	//leclint:allow optguard -- this test asserts DisableIndexes itself forces the heap path
	r2, err := LSC(cat, blk, Options{DisableIndexes: true}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Plan.Access != plan.AccessHeap {
		t.Fatal("DisableIndexes must force heap scan")
	}
	approx(t, r2.EC, 10000, 1e-9, "heap scan cost")
}

func TestDisconnectedGraphCrossProduct(t *testing.T) {
	cat := catalog.New()
	for _, n := range []string{"x", "y"} {
		tab := catalog.MustTable(n, 10, 100,
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 100, Min: 0, Max: 99})
		if err := cat.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	blk := &query.Block{Tables: []string{"x", "y"}} // no join predicates
	r, err := LSC(cat, blk, Options{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan.Kind != plan.KindJoin {
		t.Fatal("cross product plan expected")
	}
	// σ = 1 → result pages = 100.
	approx(t, r.Plan.OutPages, 100, 1e-9, "cross product size")
	// Oracle agrees.
	want, err := ExhaustiveLSC(cat, blk, Options{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(r.EC, want.EC) {
		t.Fatalf("DP %v vs oracle %v", r.EC, want.EC)
	}
}

func TestValidationErrorsPropagate(t *testing.T) {
	cat := catalog.New()
	blk := &query.Block{Tables: []string{"missing"}}
	if _, err := LSC(cat, blk, Options{}, 10); err == nil {
		t.Fatal("missing table should fail")
	}
	if _, err := AlgorithmC(cat, blk, Options{}, dist.Point(10)); err == nil {
		t.Fatal("missing table should fail (C)")
	}
	if _, err := AlgorithmB(cat, blk, Options{}, dist.Point(10), 0); err == nil {
		t.Fatal("c=0 should fail")
	}
	if _, err := ExhaustiveLEC(cat, blk, Options{}, nil); err == nil {
		t.Fatal("no laws should fail")
	}
}

func TestExpectedCostErrors(t *testing.T) {
	if _, err := ExpectedCost(&plan.Node{Kind: plan.KindJoin}, []dist.Dist{dist.Point(1)}); err == nil {
		t.Fatal("invalid plan should fail")
	}
	s := plan.NewScan("t", plan.AccessHeap, "", 1, 10)
	if _, err := ExpectedCost(s, nil); err == nil {
		t.Fatal("no laws should fail")
	}
	// An unfiltered heap handoff is charged by its consumer: EC 0.
	got, err := ExpectedCost(s, []dist.Dist{dist.Point(1)})
	if err != nil || got != 0 {
		t.Fatalf("handoff scan EC = %v, %v", got, err)
	}
	ix := plan.NewScan("t", plan.AccessIndex, "ix_t", 1, 10)
	ix.IO = 7
	got, err = ExpectedCost(ix, []dist.Dist{dist.Point(1)})
	if err != nil || got != 7 {
		t.Fatalf("index scan EC = %v, %v", got, err)
	}
}

func TestEdgeKeyCanonical(t *testing.T) {
	j1 := query.Join{Left: query.ColRef{Table: "a", Column: "x"}, Right: query.ColRef{Table: "b", Column: "y"}}
	j2 := query.Join{Left: query.ColRef{Table: "b", Column: "y"}, Right: query.ColRef{Table: "a", Column: "x"}}
	if EdgeKey(j1) != EdgeKey(j2) || EdgeKey(j1) != "a.x=b.y" {
		t.Fatalf("EdgeKey not canonical: %q vs %q", EdgeKey(j1), EdgeKey(j2))
	}
}
