// Package optimizer implements the paper's query optimization algorithms
// over left-deep plans (Chu, Halpern, Seshadri, PODS 1999):
//
//   - LSC: the classical System R bottom-up dynamic program at one fixed
//     parameter point (Theorem 2.1) — the baseline every LEC variant is
//     measured against.
//   - Algorithm A (§3.2): LSC as a black box, run once per memory bucket;
//     candidates re-costed in expectation.
//   - Algorithm B (§3.3): top-c System R using the Proposition 3.1
//     frontier to combine candidate lists.
//   - Algorithm C (§3.4/§3.5): the LEC dynamic program over expected
//     costs, with static or Markov (per-phase) memory laws.
//   - Algorithm D (§3.6): multi-parameter LEC with per-node size
//     distributions and selectivity laws, propagating the result-size
//     distribution (Figure 1).
//   - Exhaustive: a brute-force left-deep enumerator used as a
//     correctness oracle for Theorems 2.1, 3.3 and 3.4.
//
// Plan-space conventions follow the paper: binary joins, left-deep trees
// only, one join per execution phase, cross products only when the join
// graph leaves no alternative. Order properties are tracked for the
// query's ORDER BY column so a final sort enforcer is costed inside the
// DP (our cost formulas sort inputs internally, so intermediate
// "interesting orders" cannot change join costs; see DESIGN.md).
package optimizer

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"

	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/plan"
	"lecopt/internal/query"
)

// Errors.
var (
	ErrNoPlan    = errors.New("optimizer: no plan found")
	ErrBadOpts   = errors.New("optimizer: invalid options")
	ErrLawsShort = errors.New("optimizer: not enough per-phase laws")
)

// Options tunes the plan space every algorithm searches.
type Options struct {
	// Methods are the join algorithms considered; defaults to
	// cost.PaperMethods (sort-merge, grace hash, page nested-loop).
	Methods []cost.JoinMethod
	// DisableIndexes drops index access paths (heap scans only).
	DisableIndexes bool
	// MinPages floors every size estimate; defaults to 1 page.
	MinPages float64
	// SizeBuckets caps the per-node result-size distribution in
	// Algorithm D (Section 3.6.3 rebucketing); defaults to 27.
	SizeBuckets int
	// Workers bounds the concurrency of the per-bucket LSC runs inside
	// Algorithms A and B (one System R pass per memory bucket — the
	// paper's "b standard optimizations", embarrassingly parallel) and
	// of the rank-parallel subset enumeration inside the single-plan
	// dynamic programs (LSC, C, C-dynamic) on wide queries: masks of one
	// popcount rank depend only on smaller ranks, so a rank's masks split
	// across workers in statically assigned chunks once the rank is wide
	// enough to amortize the handoff. 0 uses GOMAXPROCS; 1 runs serially.
	// Workers never changes which plan is found — per-bucket results
	// merge in deterministic bucket order and every DP mask is expanded
	// by exactly one worker against finalized smaller ranks — so it is
	// excluded from plan-cache signatures.
	Workers int
	// SizeHints overrides estimated result sizes (in pages) with observed
	// ones, keyed by feedback.SetKey over the joined tables' names; a
	// single table name keys that table's filtered size. The hints come
	// from executed-size feedback (engine.ExecResult.JoinSizes routed
	// through a feedback.Store): where a hint exists, the dynamic programs
	// cost with the observed size instead of the selectivity-product
	// estimate, and Algorithm D's propagated result-size law collapses to
	// the observed point (a realized size is a fact, not a distribution).
	// Keys naming tables outside the query are ignored. At the leaves,
	// Algorithm D's explicit per-table size laws take precedence over
	// single-table hints. Unlike Workers, hints change which plan is
	// found, so they are hashed into plan-cache signatures.
	SizeHints map[string]float64
	// CostModel selects which machine the join formulas describe
	// (cost.ModelPaper or cost.ModelEngine). The zero value is ModelPaper
	// — the paper's three-case formulas — so default options, every
	// experiment and every golden table keep their published numbers; the
	// serving path opts into ModelEngine, which charges grace hash with
	// the engine's exact partitioning recursion. The model changes which
	// plan is found, so it is hashed into plan-cache signatures.
	CostModel cost.Model
}

func (o Options) withDefaults() Options {
	if len(o.Methods) == 0 {
		o.Methods = cost.PaperMethods
	}
	if o.MinPages <= 0 {
		o.MinPages = 1
	}
	if o.SizeBuckets <= 0 {
		o.SizeBuckets = 27
	}
	return o
}

// Normalized returns the options with defaults applied — the form every
// algorithm actually runs with. Cache-key builders hash the normalized
// form so zero-value options and explicitly spelled-out defaults produce
// the same key.
func (o Options) Normalized() Options { return o.withDefaults() }

// Result is an optimization outcome.
type Result struct {
	Plan *plan.Node
	// EC is the score under which the plan was selected: the point cost
	// for LSC, the expected cost for the LEC algorithms.
	EC float64
	// PhaseEC breaks the plan's score down by execution phase under the
	// memory laws the algorithm optimized with (ExpectedCostPhases):
	// element i is the analytic charge attributed to phase i, len equal
	// to Plan.Phases(). For the memory-only algorithms (LSC, A, B, C,
	// C-dynamic) the slice sums to EC; for Algorithm D it is evaluated at
	// the plan's annotated point sizes, so the sum approximates the
	// joint-law EC.
	PhaseEC []float64
	// Candidates is the number of complete plans the algorithm compared
	// at the final selection step (1 for pure DP algorithms).
	Candidates int
	// Probes counts candidate-pair combinations examined by the
	// Proposition 3.1 frontier (Algorithm B only).
	Probes int
	// Model is the cost model the plan was selected and scored under
	// (Options.CostModel); PhaseECAt conditions on it so per-phase
	// comparisons against the engine use the same formulas the optimizer
	// believed.
	Model cost.Model
}

// PhaseECAt returns the plan's analytic charge for one phase conditioned
// on a realized memory value — the cost the model would have predicted
// for that phase had it known the memory the executor actually saw
// there. Comparing it against engine.ExecResult.PhaseIO[phase] isolates
// formula error from memory-law error. Returns NaN for an out-of-range
// phase or an invalid plan.
func (r Result) PhaseECAt(phase int, mem float64) float64 {
	if r.Plan == nil {
		return math.NaN()
	}
	ph, err := r.Plan.CostPhasesModel(r.Model, plan.ConstMem(mem))
	if err != nil || phase < 0 || phase >= len(ph) {
		return math.NaN()
	}
	return ph[phase]
}

// EdgeKey canonically names a join edge for selectivity-law maps:
// "a.x=b.y" with the lexicographically smaller side first.
func EdgeKey(j query.Join) string {
	l, r := j.Left.String(), j.Right.String()
	if l > r {
		l, r = r, l
	}
	return l + "=" + r
}

// --- prepared optimization context --------------------------------------

type accessCand struct {
	node  *plan.Node
	io    float64
	order plan.Order
}

type tableInfo struct {
	name     string
	idx      int
	sel      float64 // combined local-filter selectivity
	pages    float64 // estimated pages after filters (point)
	accesses []accessCand
	sizeLaw  dist.Dist // law of filtered size; Point(pages) by default
}

type ctx struct {
	cat       *catalog.Catalog
	blk       *query.Block
	opts      Options
	n         int
	tables    []*tableInfo
	sigma     [][]float64         // pairwise page-selectivity product (1 if no edge)
	edge      [][]bool            // join-graph adjacency
	sigmaD    [][]dist.Dist       // per-pair selectivity laws (zero Dist ⇒ Point(sigma))
	orderCols map[plan.Order]bool // orders that satisfy the query's ORDER BY
	sizeHint  map[uint64]float64  // observed result pages by table-subset mask
}

// prepare validates the block and precomputes per-table and per-pair
// statistics shared by every algorithm.
func prepare(cat *catalog.Catalog, blk *query.Block, opts Options) (*ctx, error) {
	opts = opts.withDefaults()
	if err := blk.Validate(cat); err != nil {
		return nil, err
	}
	c := &ctx{
		cat:  cat,
		blk:  blk,
		opts: opts,
		n:    len(blk.Tables),
	}
	c.orderCols = map[plan.Order]bool{}
	if blk.OrderBy != nil {
		c.orderCols[plan.Order{Table: blk.OrderBy.Table, Column: blk.OrderBy.Column}] = true
		// Any column equi-joined (transitively, through the final plan)
		// to the ORDER BY column is equivalent for ordering purposes; we
		// credit direct join partners, which covers the common case of
		// ordering by the join key.
		for _, j := range blk.Joins {
			if j.Left.Table == blk.OrderBy.Table && j.Left.Column == blk.OrderBy.Column {
				c.orderCols[plan.Order{Table: j.Right.Table, Column: j.Right.Column}] = true
			}
			if j.Right.Table == blk.OrderBy.Table && j.Right.Column == blk.OrderBy.Column {
				c.orderCols[plan.Order{Table: j.Left.Table, Column: j.Left.Column}] = true
			}
		}
	}
	for i, name := range blk.Tables {
		ti, err := c.prepareTable(name, i)
		if err != nil {
			return nil, err
		}
		c.tables = append(c.tables, ti)
	}
	if err := c.preparePairs(); err != nil {
		return nil, err
	}
	c.applySizeHints()
	return c, nil
}

// applySizeHints resolves Options.SizeHints onto the query: single-table
// keys override the leaf's filtered-size estimate; multi-table keys are
// mapped to table-subset masks consulted by the dynamic programs for join
// output sizes. Keys naming tables outside the query, and non-positive or
// non-finite sizes, are ignored.
func (c *ctx) applySizeHints() {
	if len(c.opts.SizeHints) == 0 {
		return
	}
	c.sizeHint = make(map[uint64]float64, len(c.opts.SizeHints))
	for key, pages := range c.opts.SizeHints {
		if pages <= 0 || math.IsNaN(pages) || math.IsInf(pages, 0) {
			continue
		}
		mask := uint64(0)
		resolved := true
		for _, name := range strings.Split(key, "+") {
			i := c.blk.TableIndex(name)
			if i < 0 {
				resolved = false
				break
			}
			mask |= 1 << uint(i)
		}
		if !resolved || mask == 0 {
			continue
		}
		c.sizeHint[mask] = c.clampPages(pages)
	}
	for _, ti := range c.tables {
		if v, ok := c.sizeHint[1<<uint(ti.idx)]; ok {
			ti.pages = v
			ti.sizeLaw = dist.Point(v)
			for _, ac := range ti.accesses {
				ac.node.OutPages = v
			}
		}
	}
}

// joinOutPages returns the output size of the join completing mask: the
// observed (hinted) size when executed-size feedback has one, the
// selectivity-product estimate otherwise. Observed sizes are
// join-order-independent, so one mask entry corrects every plan prefix
// covering the same tables.
func (c *ctx) joinOutPages(mask uint64, est float64) float64 {
	if v, ok := c.sizeHint[mask]; ok {
		return v
	}
	return est
}

func (c *ctx) prepareTable(name string, idx int) (*tableInfo, error) {
	t, err := c.cat.Table(name)
	if err != nil {
		return nil, err
	}
	ti := &tableInfo{name: name, idx: idx, sel: 1}
	for _, f := range c.blk.FiltersOn(name) {
		s, err := c.cat.FilterSelectivity(name, f.Col.Column, f.Op, f.Value)
		if err != nil {
			return nil, err
		}
		ti.sel *= s
	}
	ti.pages = c.clampPages(ti.sel * t.Pages)
	ti.sizeLaw = dist.Point(ti.pages)
	pred := compilePred(c.blk.FiltersOn(name))

	// Heap scan: read every base page, filter on the fly.
	heap := plan.NewScan(name, plan.AccessHeap, "", ti.sel, ti.pages)
	heap.IO = cost.ScanIO(t.Pages)
	heap.Pred = pred
	ti.accesses = append(ti.accesses, accessCand{node: heap, io: heap.IO})

	if c.opts.DisableIndexes {
		return ti, nil
	}
	for _, ix := range c.cat.IndexesOn(name) {
		// Selectivity achieved through this index: the product of the
		// filters on the indexed column.
		ixSel := 1.0
		matched := false
		for _, f := range c.blk.FiltersOn(name) {
			if f.Col.Column != ix.Column {
				continue
			}
			s, err := c.cat.FilterSelectivity(name, f.Col.Column, f.Op, f.Value)
			if err != nil {
				return nil, err
			}
			ixSel *= s
			matched = true
		}
		ord := plan.Order{Table: name, Column: ix.Column}
		interesting := c.orderCols[ord]
		if !matched && !interesting {
			continue // the index neither filters nor orders usefully
		}
		io := cost.IndexScanIO(ix.Height, ixSel, t.Pages, t.Rows, ix.Clustered)
		node := plan.NewScan(name, plan.AccessIndex, ix.Name, ti.sel, ti.pages)
		node.IO = io
		node.Pred = pred
		node.OutOrder = ord
		ti.accesses = append(ti.accesses, accessCand{node: node, io: io, order: ord})
	}
	return ti, nil
}

// compilePred reduces a table's local filters to one executable
// single-column range (plan.ScanPred). All filters must target the same
// column and use range-expressible operators; anything else returns nil
// and the scan stays estimation-only (the engine then executes the
// unfiltered physical shape, the pre-access-path behavior).
func compilePred(filters []query.Filter) *plan.ScanPred {
	if len(filters) == 0 {
		return nil
	}
	p := &plan.ScanPred{Column: filters[0].Col.Column}
	setLo := func(v float64, open bool) {
		if !p.HasLo || v > p.Lo || (v == p.Lo && open) {
			p.Lo, p.LoOpen, p.HasLo = v, open, true
		}
	}
	setHi := func(v float64, open bool) {
		if !p.HasHi || v < p.Hi || (v == p.Hi && open) {
			p.Hi, p.HiOpen, p.HasHi = v, open, true
		}
	}
	for _, f := range filters {
		if f.Col.Column != p.Column {
			return nil
		}
		switch f.Op {
		case catalog.OpEq:
			setLo(f.Value, false)
			setHi(f.Value, false)
		case catalog.OpLt:
			setHi(f.Value, true)
		case catalog.OpLe:
			setHi(f.Value, false)
		case catalog.OpGt:
			setLo(f.Value, true)
		case catalog.OpGe:
			setLo(f.Value, false)
		default:
			return nil
		}
	}
	return p
}

func (c *ctx) preparePairs() error {
	n := c.n
	c.sigma = make([][]float64, n)
	c.edge = make([][]bool, n)
	c.sigmaD = make([][]dist.Dist, n)
	for i := range c.sigma {
		c.sigma[i] = make([]float64, n)
		c.edge[i] = make([]bool, n)
		c.sigmaD[i] = make([]dist.Dist, n)
		for j := range c.sigma[i] {
			c.sigma[i][j] = 1
		}
	}
	for _, j := range c.blk.Joins {
		li := c.blk.TableIndex(j.Left.Table)
		ri := c.blk.TableIndex(j.Right.Table)
		s, err := c.cat.JoinPageSelectivity(j.Left.Table, j.Left.Column, j.Right.Table, j.Right.Column)
		if err != nil {
			return err
		}
		c.sigma[li][ri] *= s
		c.sigma[ri][li] *= s
		c.edge[li][ri] = true
		c.edge[ri][li] = true
	}
	return nil
}

// setSelLaws installs per-edge selectivity laws (Algorithm D). Keys are
// EdgeKey strings; missing edges keep their point estimates.
func (c *ctx) setSelLaws(laws map[string]dist.Dist) {
	if len(laws) == 0 {
		return
	}
	for _, j := range c.blk.Joins {
		law, ok := laws[EdgeKey(j)]
		if !ok || law.IsZero() {
			continue
		}
		li := c.blk.TableIndex(j.Left.Table)
		ri := c.blk.TableIndex(j.Right.Table)
		cur := c.sigmaD[li][ri]
		if cur.IsZero() {
			c.sigmaD[li][ri] = law
		} else {
			c.sigmaD[li][ri] = dist.Combine2(cur, law, func(x, y float64) float64 { return x * y })
		}
		c.sigmaD[ri][li] = c.sigmaD[li][ri]
	}
}

// setSizeLaws installs per-table filtered-size laws (Algorithm D).
func (c *ctx) setSizeLaws(laws map[string]dist.Dist) {
	for _, ti := range c.tables {
		if law, ok := laws[ti.name]; ok && !law.IsZero() {
			ti.sizeLaw = law.Map(c.clampPages)
			ti.pages = ti.sizeLaw.Mean()
			for _, ac := range ti.accesses {
				ac.node.OutPages = ti.pages
			}
		}
	}
}

func (c *ctx) clampPages(p float64) float64 {
	if p < c.opts.MinPages {
		return c.opts.MinPages
	}
	return p
}

// sigmaBetween returns the point page-selectivity product joining table j
// against every table in mask.
func (c *ctx) sigmaBetween(j int, mask uint64) float64 {
	s := 1.0
	for i := 0; i < c.n; i++ {
		if mask&(1<<uint(i)) != 0 {
			s *= c.sigma[i][j]
		}
	}
	return s
}

// sigmaLawBetween returns the selectivity law joining table j against
// mask: the product of per-pair laws, using point laws where no
// distribution was installed.
func (c *ctx) sigmaLawBetween(j int, mask uint64) dist.Dist {
	law := dist.Point(1)
	for i := 0; i < c.n; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		pair := c.sigmaD[i][j]
		if pair.IsZero() {
			pair = dist.Point(c.sigma[i][j])
		}
		law = dist.Combine2(law, pair, func(x, y float64) float64 { return x * y })
	}
	return law
}

// connects reports whether table j has a join edge into mask.
func (c *ctx) connects(j int, mask uint64) bool {
	for i := 0; i < c.n; i++ {
		if mask&(1<<uint(i)) != 0 && c.edge[i][j] {
			return true
		}
	}
	return false
}

// candidates returns the tables j in mask eligible as the last join input
// for mask: those connected to the rest, falling back to all members when
// the remainder is unreachable (forced cross product, §2.2's "trivially
// true predicate").
func (c *ctx) candidates(mask uint64) []int {
	return c.candidatesInto(mask, nil)
}

// candidatesInto is candidates appending into a caller-owned buffer (pass
// buf[:0] to reuse it) — the allocation-free form used by the DP's
// per-worker scratch. The returned order is identical to candidates'.
func (c *ctx) candidatesInto(mask uint64, buf []int) []int {
	for j := 0; j < c.n; j++ {
		bit := uint64(1) << uint(j)
		if mask&bit == 0 {
			continue
		}
		rest := mask &^ bit
		if rest == 0 || c.connects(j, rest) {
			buf = append(buf, j)
		}
	}
	if len(buf) > 0 {
		return buf
	}
	for j := 0; j < c.n; j++ {
		if mask&(1<<uint(j)) != 0 {
			buf = append(buf, j)
		}
	}
	return buf
}

// isCandidate reports whether table j is an eligible last join input for
// mask (j must be a member). Shared by the DP and the exhaustive oracle so
// both search the identical plan space.
func (c *ctx) isCandidate(j int, mask uint64) bool {
	for _, cand := range c.candidates(mask) {
		if cand == j {
			return true
		}
	}
	return false
}

// joinOrder returns the output order property of joining left (covering
// leftMask) with table j via method, reduced to "satisfies ORDER BY or
// not": sort-merge output is sorted on its join columns, so if any edge
// column between j and leftMask matches an ORDER BY-equivalent column the
// plan satisfies the requirement.
func (c *ctx) joinOrder(method cost.JoinMethod, j int, leftMask uint64) plan.Order {
	if !method.OrdersOutput() || c.blk.OrderBy == nil {
		return plan.Order{}
	}
	for _, e := range c.blk.JoinsBetween(c.blk.Tables[j], leftMask) {
		side, _ := e.Side(c.blk.Tables[j])
		other, _ := e.Other(c.blk.Tables[j])
		for _, col := range []query.ColRef{side, other} {
			o := plan.Order{Table: col.Table, Column: col.Column}
			if c.orderCols[o] {
				return plan.Order{Table: c.blk.OrderBy.Table, Column: c.blk.OrderBy.Column}
			}
		}
	}
	return plan.Order{}
}

// satisfiesOrderBy reports whether an order property meets the block's
// ORDER BY requirement.
func (c *ctx) satisfiesOrderBy(o plan.Order) bool {
	if c.blk.OrderBy == nil {
		return true
	}
	if o.IsNone() {
		return false
	}
	return c.orderCols[o]
}

// requiredOrder returns the ORDER BY as a plan.Order (zero if none).
func (c *ctx) requiredOrder() plan.Order {
	if c.blk.OrderBy == nil {
		return plan.Order{}
	}
	return plan.Order{Table: c.blk.OrderBy.Table, Column: c.blk.OrderBy.Column}
}

// phaseOfMask returns the execution phase of the join that completes mask.
func phaseOfMask(mask uint64) int {
	k := bits.OnesCount64(mask)
	if k < 2 {
		return 0
	}
	return k - 2
}

// lastPhase returns the final phase index of an n-relation plan.
func lastPhase(n int) int {
	if n < 2 {
		return 0
	}
	return n - 2
}

// fullMask returns the bitmask covering all n tables.
func fullMask(n int) uint64 { return (1 << uint(n)) - 1 }

// better reports strictly lower score with a deterministic tie-break on
// plan signature so optimizer output is reproducible.
func better(score float64, sig string, bestScore float64, bestSig string) bool {
	if score != bestScore {
		return score < bestScore
	}
	return sig < bestSig
}

func checkFinite(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: non-finite score", ErrNoPlan)
	}
	return nil
}
