package optimizer

import (
	"sort"
)

// TopCCombine implements the Proposition 3.1 frontier. Given two lists of
// candidate scores, each sorted ascending, the combined plan (i, k) costs
// left[i] + right[k] (plus a constant that cancels), and (i, k) is
// dominated by every (i', k') with i' ≤ i, k' ≤ k. The proposition shows
// the true top-c combinations all satisfy (i+1)·(k+1) ≤ c (1-based ranks),
// so at most c + c·ln c pairs need probing.
//
// Returns the top-c pairs as index tuples ordered by combined score (ties
// by (k, i) for determinism), and the number of pairs probed.
func TopCCombine(left, right []float64, c int) (pairs [][2]int, probes int) {
	if c <= 0 || len(left) == 0 || len(right) == 0 {
		return nil, 0
	}
	type cand struct {
		score float64
		i, k  int
	}
	var cands []cand
	for k := 0; k < len(right) && k < c; k++ {
		// 1-based ranks: probe i while (i+1)(k+1) ≤ c.
		iMax := c/(k+1) - 1
		if iMax >= len(left) {
			iMax = len(left) - 1
		}
		for i := 0; i <= iMax; i++ {
			cands = append(cands, cand{left[i] + right[k], i, k})
			probes++
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score < cands[b].score
		}
		if cands[a].k != cands[b].k {
			return cands[a].k < cands[b].k
		}
		return cands[a].i < cands[b].i
	})
	if len(cands) > c {
		cands = cands[:c]
	}
	pairs = make([][2]int, len(cands))
	for idx, cd := range cands {
		pairs[idx] = [2]int{cd.i, cd.k}
	}
	return pairs, probes
}

// topList is a bounded ascending list of entries used by the top-c DP.
type topList struct {
	cap     int
	entries []entry
}

func newTopList(c int) *topList { return &topList{cap: c} }

// add inserts e keeping the list sorted ascending by score (signature
// tie-break) and bounded at cap. Duplicate signatures keep the cheaper.
func (l *topList) add(e entry) {
	sig := e.node.Signature()
	for i, cur := range l.entries {
		if cur.node.Signature() == sig {
			if better(e.score, sig, cur.score, sig) {
				l.entries[i] = e
				l.resort()
			}
			return
		}
	}
	l.entries = append(l.entries, e)
	l.resort()
	if len(l.entries) > l.cap {
		l.entries = l.entries[:l.cap]
	}
}

func (l *topList) resort() {
	sort.Slice(l.entries, func(a, b int) bool {
		return better(l.entries[a].score, l.entries[a].node.Signature(),
			l.entries[b].score, l.entries[b].node.Signature())
	})
}

// scores returns the ascending score slice (for TopCCombine).
func (l *topList) scores() []float64 {
	out := make([]float64, len(l.entries))
	for i, e := range l.entries {
		out[i] = e.score
	}
	return out
}
