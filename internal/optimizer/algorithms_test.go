package optimizer

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/query"
)

// bruteTopC returns the true top-c combination scores of left[i]+right[k].
func bruteTopC(left, right []float64, c int) []float64 {
	var all []float64
	for _, l := range left {
		for _, r := range right {
			all = append(all, l+r)
		}
	}
	sort.Float64s(all)
	if len(all) > c {
		all = all[:c]
	}
	return all
}

// TestProposition31 (experiment E5): the frontier probes at most
// c + c·ln(c) pairs and returns exactly the true top-c combinations.
func TestProposition31(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		c := 1 + rng.Intn(64)
		nl := 1 + rng.Intn(2*c)
		nr := 1 + rng.Intn(2*c)
		left := make([]float64, nl)
		right := make([]float64, nr)
		for i := range left {
			left[i] = rng.Float64() * 1000
		}
		for i := range right {
			right[i] = rng.Float64() * 1000
		}
		sort.Float64s(left)
		sort.Float64s(right)

		pairs, probes := TopCCombine(left, right, c)
		bound := float64(c) + float64(c)*math.Log(float64(c))
		if float64(probes) > bound+1e-9 {
			t.Fatalf("trial %d: probes %d exceed c+c·ln c = %.2f (c=%d)", trial, probes, bound, c)
		}
		want := bruteTopC(left, right, c)
		if len(pairs) != len(want) {
			t.Fatalf("trial %d: got %d pairs, want %d", trial, len(pairs), len(want))
		}
		for i, p := range pairs {
			got := left[p[0]] + right[p[1]]
			if math.Abs(got-want[i]) > 1e-9 {
				t.Fatalf("trial %d: rank %d: got %v want %v", trial, i, got, want[i])
			}
		}
	}
}

func TestTopCCombineEdgeCases(t *testing.T) {
	if p, n := TopCCombine(nil, []float64{1}, 3); p != nil || n != 0 {
		t.Fatal("empty left")
	}
	if p, n := TopCCombine([]float64{1}, []float64{2}, 0); p != nil || n != 0 {
		t.Fatal("c=0")
	}
	pairs, probes := TopCCombine([]float64{1}, []float64{2}, 5)
	if len(pairs) != 1 || probes != 1 {
		t.Fatalf("single pair: %v %d", pairs, probes)
	}
}

// Property: frontier equals brute force for arbitrary sorted inputs.
func TestQuickTopCEqualsBrute(t *testing.T) {
	f := func(rawL, rawR []uint16, cRaw uint8) bool {
		c := int(cRaw)%32 + 1
		if len(rawL) == 0 || len(rawR) == 0 {
			return true
		}
		if len(rawL) > 50 {
			rawL = rawL[:50]
		}
		if len(rawR) > 50 {
			rawR = rawR[:50]
		}
		left := make([]float64, len(rawL))
		right := make([]float64, len(rawR))
		for i, v := range rawL {
			left[i] = float64(v)
		}
		for i, v := range rawR {
			right[i] = float64(v)
		}
		sort.Float64s(left)
		sort.Float64s(right)
		pairs, _ := TopCCombine(left, right, c)
		want := bruteTopC(left, right, c)
		if len(pairs) != len(want) {
			return false
		}
		for i, p := range pairs {
			if math.Abs(left[p[0]]+right[p[1]]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAlgorithmBC1MatchesA: with c=1 Algorithm B degenerates to Algorithm
// A (same candidate set), so the selected plan's expected cost matches.
func TestAlgorithmBC1MatchesA(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		sc := randScenario(rng, 2+rng.Intn(3))
		mem := randMemLaw(rng)
		a, err := AlgorithmA(sc.cat, sc.blk, Options{}, mem)
		if err != nil {
			t.Fatal(err)
		}
		b, err := AlgorithmB(sc.cat, sc.blk, Options{}, mem, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(a.EC, b.EC) {
			t.Fatalf("trial %d: A=%v B(c=1)=%v", trial, a.EC, b.EC)
		}
	}
}

// TestAlgorithmBMonotoneInC: increasing c can only improve (or tie) the
// selected plan's expected cost, and Algorithm B records frontier probes.
func TestAlgorithmBMonotoneInC(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 12; trial++ {
		sc := randScenario(rng, 3+rng.Intn(2))
		mem := randMemLaw(rng)
		prev := math.Inf(1)
		for _, c := range []int{1, 2, 4, 8} {
			r, err := AlgorithmB(sc.cat, sc.blk, Options{}, mem, c)
			if err != nil {
				t.Fatal(err)
			}
			if r.EC > prev*(1+1e-9) {
				t.Fatalf("trial %d: EC went up at c=%d: %v > %v", trial, c, r.EC, prev)
			}
			prev = r.EC
			if c > 1 && r.Probes == 0 {
				t.Fatalf("trial %d: no frontier probes recorded at c=%d", trial, c)
			}
		}
	}
}

// TestAlgorithmDPointLawsMatchesC: with degenerate (point) selectivity and
// size laws, Algorithm D must coincide with Algorithm C.
func TestAlgorithmDPointLawsMatchesC(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		sc := randScenario(rng, 2+rng.Intn(3))
		mem := randMemLaw(rng)
		c, err := AlgorithmC(sc.cat, sc.blk, Options{}, mem)
		if err != nil {
			t.Fatal(err)
		}
		d, err := AlgorithmD(sc.cat, sc.blk, Options{}, mem, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(c.EC, d.EC) {
			t.Fatalf("trial %d: C=%v D(point laws)=%v", trial, c.EC, d.EC)
		}
	}
}

// dJointScenario builds a two-table scenario with uncertain selectivity
// and base size for exact joint-enumeration checks.
func dJointScenario(t *testing.T) (*catalog.Catalog, *query.Block) {
	t.Helper()
	cat := catalog.New()
	a := catalog.MustTable("a", 40_000, 4_000_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 4_000_000, Min: 0, Max: 1e9})
	b := catalog.MustTable("b", 10_000, 1_000_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 1_000_000, Min: 0, Max: 1e9})
	if err := cat.AddTable(a); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(b); err != nil {
		t.Fatal(err)
	}
	blk := &query.Block{
		Tables: []string{"a", "b"},
		Joins:  []query.Join{{Left: query.ColRef{Table: "a", Column: "k"}, Right: query.ColRef{Table: "b", Column: "k"}}},
	}
	return cat, blk
}

// TestAlgorithmDJointEnumeration: on a 2-table query with small supports
// and ample size buckets (no rebucketing loss), Algorithm D's score must
// equal the exact joint enumeration E over (|A|, |B|, σ, M) of the chosen
// plan's cost, and no alternative plan may have lower exact EC.
func TestAlgorithmDJointEnumeration(t *testing.T) {
	cat, blk := dJointScenario(t)
	mem := dist.MustNew([]float64{50, 150, 400}, []float64{0.3, 0.4, 0.3})
	sizeA := dist.MustNew([]float64{20_000, 40_000, 80_000}, []float64{0.25, 0.5, 0.25})
	sigma, err := catalog.SelectivityDist(1e-6, 4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Methods: []cost.JoinMethod{cost.SortMerge, cost.GraceHash, cost.PageNL}, SizeBuckets: 1000}
	selLaws := map[string]dist.Dist{EdgeKey(blk.Joins[0]): sigma}
	sizeLaws := map[string]dist.Dist{"a": sizeA}

	res, err := AlgorithmD(cat, blk, opts, mem, selLaws, sizeLaws)
	if err != nil {
		t.Fatal(err)
	}

	// Exact joint EC of a 2-table plan (outer=a with law sizeA, inner=b
	// fixed 10,000 pages): the heap handoff scans are free (the join
	// formula reads both inputs), join cost enumerates (|A|, M).
	exact := func(method cost.JoinMethod) float64 {
		return dist.Expect2(sizeA, mem, func(av, mv float64) float64 {
			return cost.JoinIO(method, av, 10_000, mv)
		})
	}
	best := math.Inf(1)
	var bestM cost.JoinMethod
	for _, m := range opts.Methods {
		if ec := exact(m); ec < best {
			best, bestM = ec, m
		}
	}
	if !relClose(res.EC, best) {
		t.Fatalf("AlgD EC %v vs exact best %v (method %v)", res.EC, best, bestM)
	}
	if res.Plan.Method != bestM && !relClose(exact(res.Plan.Method), best) {
		t.Fatalf("AlgD picked %v, exact best is %v", res.Plan.Method, bestM)
	}
}

// TestAlgorithmDBeatsLSCUnderJointUncertainty: a scenario engineered so
// selectivity uncertainty flips the method choice; D's plan must have
// exact expected cost ≤ the LSC plan's.
func TestAlgorithmDBeatsLSCUnderJointUncertainty(t *testing.T) {
	cat, blk := dJointScenario(t)
	// Memory law straddling grace-hash's √S threshold for the likely size
	// but not the tail size.
	mem := dist.MustNew([]float64{80, 120}, []float64{0.5, 0.5})
	sigma, err := catalog.SelectivityDist(1e-6, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{SizeBuckets: 1000}
	selLaws := map[string]dist.Dist{EdgeKey(blk.Joins[0]): sigma}

	d, err := AlgorithmD(cat, blk, opts, mem, selLaws, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsc, err := LSC(cat, blk, opts, mem.Mean())
	if err != nil {
		t.Fatal(err)
	}
	exactEC := func(method cost.JoinMethod, sorted bool) float64 {
		scan := 50_000.0
		join := mem.ExpectF(func(mv float64) float64 {
			return cost.JoinIO(method, 40_000, 10_000, mv)
		})
		// No ORDER BY in this block, so no enforcer; sorted unused.
		_ = sorted
		return scan + join
	}
	if exactEC(d.Plan.Method, false) > exactEC(lsc.Plan.Method, false)*(1+1e-9) {
		t.Fatalf("D's method %v exact EC %v worse than LSC's %v exact EC %v",
			d.Plan.Method, exactEC(d.Plan.Method, false),
			lsc.Plan.Method, exactEC(lsc.Plan.Method, false))
	}
}

// TestAlgorithmDSizePropagation: on a 3-table chain, the root join's
// outer size distribution must reflect the first join's σ law — checked
// through the plan's annotated mean pages.
func TestAlgorithmDSizePropagation(t *testing.T) {
	cat := catalog.New()
	for _, spec := range []struct {
		name  string
		pages float64
	}{{"a", 1000}, {"b", 2000}, {"c", 500}} {
		tab := catalog.MustTable(spec.name, spec.pages, spec.pages*100,
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: spec.pages * 100, Min: 0, Max: 1e9})
		if err := cat.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	blk := &query.Block{
		Tables: []string{"a", "b", "c"},
		Joins: []query.Join{
			{Left: query.ColRef{Table: "a", Column: "k"}, Right: query.ColRef{Table: "b", Column: "k"}},
			{Left: query.ColRef{Table: "b", Column: "k"}, Right: query.ColRef{Table: "c", Column: "k"}},
		},
	}
	mem := dist.Point(200)
	res, err := AlgorithmD(cat, blk, Options{}, mem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Joins() != 2 {
		t.Fatalf("expected 2 joins, got %s", res.Plan.Signature())
	}
	if res.Plan.OutPages <= 0 || math.IsNaN(res.Plan.OutPages) {
		t.Fatalf("root size annotation invalid: %v", res.Plan.OutPages)
	}
	// Point laws → D equals C exactly on the same block.
	c, err := AlgorithmC(cat, blk, Options{}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(res.EC, c.EC) {
		t.Fatalf("3-chain: D=%v C=%v", res.EC, c.EC)
	}
}

// TestPhaseLawsFor covers the helper used by callers to build laws.
func TestPhaseLawsFor(t *testing.T) {
	static := dist.Point(100)
	laws, err := PhaseLawsFor(4, static, nil)
	if err != nil || len(laws) != 3 {
		t.Fatalf("static laws: %v %v", laws, err)
	}
	chain, err := dist.Sticky([]float64{50, 100}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	laws, err = PhaseLawsFor(3, dist.Point(100), chain)
	if err != nil || len(laws) != 2 {
		t.Fatalf("dynamic laws: %v %v", laws, err)
	}
	if !laws[0].ApproxEqual(dist.Point(100), 0) {
		t.Fatal("phase 0 must be the initial law")
	}
	if laws[1].Len() != 2 {
		t.Fatal("phase 1 must have spread")
	}
}

// TestAlgorithmAIncludesMeanBucket: even when the law's support excludes
// the mean, Algorithm A considers the mean-LSC plan, preserving the
// dominance guarantee of Section 3.2.
func TestAlgorithmAIncludesMeanBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	sc := randScenario(rng, 3)
	mem := dist.MustNew([]float64{10, 3000}, []float64{0.5, 0.5}) // mean 1505 not in support
	a, err := AlgorithmA(sc.cat, sc.blk, Options{}, mem)
	if err != nil {
		t.Fatal(err)
	}
	lsc, err := LSC(sc.cat, sc.blk, Options{}, mem.Mean())
	if err != nil {
		t.Fatal(err)
	}
	lscEC, err := ExpectedCost(lsc.Plan, []dist.Dist{mem})
	if err != nil {
		t.Fatal(err)
	}
	if a.EC > lscEC*(1+1e-9) {
		t.Fatalf("Algorithm A (%v) must not lose to mean-LSC (%v)", a.EC, lscEC)
	}
}
