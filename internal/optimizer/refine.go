package optimizer

import (
	"math"
	"sort"

	"lecopt/internal/bucketing"
	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/query"
)

// RefineStats reports the work done by the coarse-then-refine strategy.
type RefineStats struct {
	// Rounds is the number of optimizations performed.
	Rounds int
	// BucketsPerRound records the law size used in each round.
	BucketsPerRound []int
	// Converged reports whether the plan stabilized before reaching the
	// full-resolution law.
	Converged bool
}

// AlgorithmCRefined implements Section 3.7's coarse-then-refine strategy:
// "We can start with a coarse bucketing strategy to do the pruning, and
// then refine the buckets as necessary." Rounds coarsen the law along a
// growing, importance-ordered prefix of the plan space's LEVEL-SET cuts
// (nested-loop cliffs first — they carry factor-|A| cost jumps — then the
// √ and ∛ thresholds of sort-merge and grace hash, then sort thresholds),
// doubling the cut budget per round. Refinement stops when the chosen
// plan AND its expected-cost estimate are stable for `stable` consecutive
// rounds (the §3.7 "degree of accuracy" criterion), or falls back to the
// full-resolution law, which is exact by Theorem 3.3.
//
// Because optimization cost is linear in the bucket count (Theorem 3.2's
// αb), stopping at b' ≪ b saves a proportional amount of work; the final
// returned EC is always re-evaluated under the FULL law, so the score is
// exact even when the search used coarse laws.
func AlgorithmCRefined(cat *catalog.Catalog, blk *query.Block, opts Options, mem dist.Dist, startBuckets, stable int) (Result, RefineStats, error) {
	if startBuckets < 1 {
		startBuckets = 1
	}
	if stable < 1 {
		stable = 1
	}
	c, err := prepare(cat, blk, opts)
	if err != nil {
		return Result{}, RefineStats{}, err
	}
	cuts := refinementCuts(c, mem)
	const ecTol = 0.01
	var stats RefineStats
	var lastSig string
	var lastEC float64
	var streak int
	var res Result
	nCuts := startBuckets - 1
	for {
		var coarse dist.Dist
		if nCuts >= len(cuts) && mem.Len() > 0 {
			coarse = mem // all cuts used: go straight to full resolution
		} else {
			coarse, err = coarsenByCuts(mem, cuts[:minInt(nCuts, len(cuts))])
			if err != nil {
				return Result{}, stats, err
			}
		}
		r, err := AlgorithmC(cat, blk, opts, coarse)
		if err != nil {
			return Result{}, stats, err
		}
		stats.Rounds++
		stats.BucketsPerRound = append(stats.BucketsPerRound, coarse.Len())
		sig := r.Plan.Signature()
		ecStable := lastEC > 0 && relDiff(r.EC, lastEC) <= ecTol
		if sig == lastSig && ecStable {
			streak++
		} else {
			streak = 1
		}
		lastSig, lastEC = sig, r.EC
		res = r
		if coarse.Len() >= mem.Len() {
			break // full resolution reached: exact by Theorem 3.3
		}
		if streak >= stable {
			stats.Converged = true
			break
		}
		if nCuts < 1 {
			nCuts = 1
		}
		nCuts *= 2
	}
	// Exact score under the full law, regardless of which round won.
	ec, err := ExpectedCostModel(c.opts.CostModel, res.Plan, staticLaws(mem, len(blk.Tables)))
	if err != nil {
		return Result{}, stats, err
	}
	res.EC = ec
	return res, stats, nil
}

// refinementCuts builds the importance-ordered level-set cuts for every
// base-table pair the optimizer might join, restricted to the law's range.
// Ordering encodes how catastrophic a misclassification is: page
// nested-loop cliffs first (cost jumps by a factor of the outer size),
// then the √ thresholds of sort-merge and grace hash, then the ∛
// thresholds, then sort thresholds of the filtered table sizes when the
// query needs an enforcer.
func refinementCuts(c *ctx, mem dist.Dist) []float64 {
	lo, hi := mem.Min(), mem.Max()
	type pair struct{ small, large float64 }
	var pairs []pair
	for i := 0; i < c.n; i++ {
		for j := i + 1; j < c.n; j++ {
			a, b := c.tables[i].pages, c.tables[j].pages
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, pair{small: a, large: b})
		}
	}
	var out []float64
	seen := map[float64]bool{}
	add := func(v float64) {
		if v > lo && v <= hi && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	up := func(v float64) float64 { return math.Nextafter(v, math.Inf(1)) }
	has := func(m cost.JoinMethod) bool {
		for _, mm := range c.opts.Methods {
			if mm == m {
				return true
			}
		}
		return false
	}
	// Group 1: small+2 cliffs, biggest smaller-side first. Page
	// nested-loop's inner stops being resident below this cut, and grace
	// hash's one-pass regime (in-memory build, cost A+B) ends there too —
	// cost.JoinBreakpoints lists small+2 for both methods. Either way the
	// cost jumps discontinuously by a factor of the input size, so
	// misclassifying law mass across this cut is the costliest bucketing
	// error and it refines first.
	if has(cost.PageNL) || has(cost.GraceHash) {
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].small > pairs[j].small })
		for _, p := range pairs {
			add(p.small + 2)
		}
	}
	// Group 2: √ thresholds (sort-merge on the larger, grace hash on the
	// smaller), biggest pairs first.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].large > pairs[j].large })
	for _, p := range pairs {
		if has(cost.SortMerge) {
			add(up(math.Sqrt(p.large)))
		}
		if has(cost.GraceHash) {
			add(up(math.Sqrt(p.small)))
		}
	}
	// Group 3: ∛ thresholds.
	for _, p := range pairs {
		if has(cost.SortMerge) {
			add(up(math.Cbrt(p.large)))
		}
		if has(cost.GraceHash) {
			add(up(math.Cbrt(p.small)))
		}
	}
	// Group 4: sort thresholds of filtered table sizes (enforcer sorts).
	if c.blk.OrderBy != nil {
		for _, ti := range c.tables {
			for _, b := range cost.SortBreakpoints(ti.pages) {
				add(b)
			}
		}
	}
	return out
}

// coarsenByCuts partitions the law along the given importance-ordered cut
// prefix (cuts must be re-sorted ascending for cell assignment).
func coarsenByCuts(mem dist.Dist, cuts []float64) (dist.Dist, error) {
	sorted := append([]float64(nil), cuts...)
	sort.Float64s(sorted)
	return bucketing.CoarsenByCuts(mem, sorted)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m <= 0 {
		return 0
	}
	return d / m
}
