package optimizer

import (
	"fmt"
	"math/bits"
	"sort"

	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/expcost"
	"lecopt/internal/plan"
	"lecopt/internal/pool"
	"lecopt/internal/query"
)

// LSC computes the classical least-specific-cost left-deep plan for one
// fixed memory value — the System R baseline of Theorem 2.1. Current
// optimizers run this at the mean or modal memory value.
func LSC(cat *catalog.Catalog, blk *query.Block, opts Options, mem float64) (Result, error) {
	c, err := prepare(cat, blk, opts)
	if err != nil {
		return Result{}, err
	}
	res, err := c.dpBest(pointScorer{mem, c.opts.CostModel})
	if err != nil {
		return Result{}, err
	}
	return withPhaseEC(res, c.opts.CostModel, []dist.Dist{dist.Point(mem)})
}

// AlgorithmC computes the LEC left-deep plan for a static memory law
// (Section 3.4, Theorem 3.3): the System R DP run over expected costs.
func AlgorithmC(cat *catalog.Catalog, blk *query.Block, opts Options, mem dist.Dist) (Result, error) {
	c, err := prepare(cat, blk, opts)
	if err != nil {
		return Result{}, err
	}
	laws := staticLaws(mem, c.n)
	res, err := c.dpBest(lawScorer{laws, c.opts.CostModel})
	if err != nil {
		return Result{}, err
	}
	return withPhaseEC(res, c.opts.CostModel, laws)
}

// AlgorithmCDynamic computes the LEC left-deep plan when memory evolves
// between phases as a Markov chain (Section 3.5, Theorem 3.4): phase i is
// costed under the i-step law of the chain from the initial distribution.
func AlgorithmCDynamic(cat *catalog.Catalog, blk *query.Block, opts Options, init dist.Dist, chain *dist.Chain) (Result, error) {
	c, err := prepare(cat, blk, opts)
	if err != nil {
		return Result{}, err
	}
	laws, err := chain.PhaseLaws(init, lastPhase(c.n)+1)
	if err != nil {
		return Result{}, err
	}
	res, err := c.dpBest(lawScorer{laws, c.opts.CostModel})
	if err != nil {
		return Result{}, err
	}
	return withPhaseEC(res, c.opts.CostModel, laws)
}

// bucketPoints lists the memory values Algorithms A and B probe with an LSC
// pass: every bucket of the law plus its mean. The paper notes the
// traditional expected value can be assumed to be among the candidates
// "without loss of generality"; including it makes the dominance guarantee
// versus mean-LSC hold by construction.
func bucketPoints(mem dist.Dist) []float64 {
	pts := make([]float64, 0, mem.Len()+1)
	for i := 0; i < mem.Len(); i++ {
		pts = append(pts, mem.Value(i))
	}
	return append(pts, mem.Mean())
}

// AlgorithmA treats a standard optimizer as a black box (Section 3.2): run
// LSC once per memory bucket, then pick the candidate with least expected
// cost under the full law. Its plan is never worse in expectation than the
// plan LSC finds at the law's mean or mode (both are bucket representatives
// or dominated by one), but it can miss the true LEC plan.
func AlgorithmA(cat *catalog.Catalog, blk *query.Block, opts Options, mem dist.Dist) (Result, error) {
	c, err := prepare(cat, blk, opts)
	if err != nil {
		return Result{}, err
	}
	laws := staticLaws(mem, c.n)
	// The per-bucket LSC runs are independent System R passes over the
	// read-only prepared context, so they fan out across Options.Workers
	// goroutines; merging in bucket order afterwards keeps the outcome
	// identical to a serial run.
	type cand struct {
		res Result
		ec  float64
	}
	points := bucketPoints(mem)
	runs := make([]cand, len(points))
	outer := c.opts.workers(len(points))
	inner := c.opts.Workers
	if outer > 1 {
		// The bucket fan-out already saturates the requested concurrency;
		// nested rank-parallel DPs would only fight it for cores.
		inner = 1
	}
	err = pool.Run(len(points), outer, func(i int) error {
		r, err := c.dpBestW(pointScorer{points[i], c.opts.CostModel}, inner)
		if err != nil {
			return err
		}
		ec, err := ExpectedCostModel(c.opts.CostModel, r.Plan, laws)
		if err != nil {
			return err
		}
		runs[i] = cand{r, ec}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	seen := map[string]bool{}
	var cands []cand
	for _, r := range runs {
		sig := r.res.Plan.Signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		cands = append(cands, r)
	}
	best := -1
	for i := range cands {
		if best < 0 || better(cands[i].ec, cands[i].res.Plan.Signature(),
			cands[best].ec, cands[best].res.Plan.Signature()) {
			best = i
		}
	}
	if best < 0 {
		return Result{}, ErrNoPlan
	}
	return withPhaseEC(Result{Plan: cands[best].res.Plan, EC: cands[best].ec, Candidates: len(cands)}, c.opts.CostModel, laws)
}

// AlgorithmB generalizes Algorithm A by generating the top-c plans per
// memory bucket with a modified System R pass (Section 3.3), using the
// Proposition 3.1 frontier to combine candidate lists, then selecting the
// least-expected-cost candidate.
func AlgorithmB(cat *catalog.Catalog, blk *query.Block, opts Options, mem dist.Dist, c int) (Result, error) {
	if c < 1 {
		return Result{}, fmt.Errorf("%w: top-c requires c ≥ 1, got %d", ErrBadOpts, c)
	}
	cx, err := prepare(cat, blk, opts)
	if err != nil {
		return Result{}, err
	}
	laws := staticLaws(mem, cx.n)
	type cand struct {
		e  entry
		ec float64
	}
	// Like Algorithm A, the per-bucket top-c passes are independent and
	// fan out across Options.Workers goroutines; the bucket-order merge
	// below keeps candidate selection deterministic.
	type bucketRun struct {
		cands  []cand
		probes int
	}
	points := bucketPoints(mem)
	runs := make([]bucketRun, len(points))
	err = pool.Run(len(points), cx.opts.workers(len(points)), func(i int) error {
		tops, pr, err := cx.dpTopC(pointScorer{points[i], cx.opts.CostModel}, c)
		if err != nil {
			return err
		}
		run := bucketRun{probes: pr}
		for _, e := range tops {
			ec, err := ExpectedCostModel(cx.opts.CostModel, e.node, laws)
			if err != nil {
				return err
			}
			run.cands = append(run.cands, cand{e, ec})
		}
		runs[i] = run
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	seen := map[string]bool{}
	var cands []cand
	probes := 0
	for _, run := range runs {
		probes += run.probes
		for _, cd := range run.cands {
			sig := cd.e.node.Signature()
			if seen[sig] {
				continue
			}
			seen[sig] = true
			cands = append(cands, cd)
		}
	}
	best := -1
	for i := range cands {
		if best < 0 || better(cands[i].ec, cands[i].e.node.Signature(),
			cands[best].ec, cands[best].e.node.Signature()) {
			best = i
		}
	}
	if best < 0 {
		return Result{}, ErrNoPlan
	}
	return withPhaseEC(Result{Plan: cands[best].e.node, EC: cands[best].ec, Candidates: len(cands), Probes: probes}, cx.opts.CostModel, laws)
}

// dpTopC is the Algorithm B inner pass: System R keeping the top-c entries
// per (subset, order-slot) at a fixed parameter point, combining lists via
// the Proposition 3.1 frontier. Returns the completed root candidates
// (enforcer applied) and the total pair probes.
func (c *ctx) dpTopC(s scorer, topC int) ([]entry, int, error) {
	full := fullMask(c.n)
	dp := make([][2]*topList, full+1)
	slot := func(mask uint64, sl int) *topList {
		if dp[mask][sl] == nil {
			dp[mask][sl] = newTopList(topC)
		}
		return dp[mask][sl]
	}
	for j := 0; j < c.n; j++ {
		for _, e := range c.leafEntries(c.tables[j]) {
			slot(1<<uint(j), c.slotOf(e.order)).add(e)
		}
	}
	probes := 0
	for size := 2; size <= c.n; size++ {
		for mask := uint64(1); mask <= full; mask++ {
			if bits.OnesCount64(mask) != size {
				continue
			}
			phase := phaseOfMask(mask)
			for _, j := range c.candidates(mask) {
				bit := uint64(1) << uint(j)
				rest := mask &^ bit
				sigma := c.sigmaBetween(j, rest)
				for ls := 0; ls < 2; ls++ {
					left := dp[rest][ls]
					if left == nil || len(left.entries) == 0 {
						continue
					}
					for rs := 0; rs < 2; rs++ {
						right := dp[bit][rs]
						if right == nil || len(right.entries) == 0 {
							continue
						}
						for _, m := range c.opts.Methods {
							// All variants in a list share identical
							// physical properties (same pages), so the
							// join cost is a constant per method and the
							// frontier applies to score sums.
							jc := s.joinScore(m, left.entries[0].pages, right.entries[0].pages, phase)
							pairs, pr := TopCCombine(left.scores(), right.scores(), topC)
							probes += pr
							for _, p := range pairs {
								le, re := left.entries[p[0]], right.entries[p[1]]
								outPages := c.joinOutPages(mask, c.clampPages(le.pages*re.pages*sigma))
								order := c.joinOutputOrder(m, j, rest, le.order)
								node := plan.NewJoin(m, le.node, re.node, outPages, order)
								e := entry{node: node, score: le.score + re.score + jc, pages: outPages, order: order}
								slot(mask, c.slotOf(order)).add(e)
							}
						}
					}
				}
			}
		}
	}
	var out []entry
	phase := lastPhase(c.n)
	for sl := 0; sl < 2; sl++ {
		l := dp[full][sl]
		if l == nil {
			continue
		}
		for _, e := range l.entries {
			cand := e
			if c.blk.OrderBy != nil && sl == 0 {
				cand.score += enforcerScore(s, e, phase)
				cand.node = plan.NewSort(e.node, c.requiredOrder())
				cand.order = c.requiredOrder()
			}
			out = append(out, cand)
		}
	}
	if len(out) == 0 {
		return nil, probes, ErrNoPlan
	}
	sort.Slice(out, func(a, b int) bool {
		return better(out[a].score, out[a].node.Signature(), out[b].score, out[b].node.Signature())
	})
	if len(out) > topC {
		out = out[:topC]
	}
	return out, probes, nil
}

// AlgorithmD computes the LEC plan under joint uncertainty in memory,
// base-relation sizes and join selectivities (Section 3.6). Each DP node
// carries exactly the four distributions of Figure 1 — Pr(M) (global),
// Pr(|Bj|) (propagated result sizes), Pr(|Aj|) (base sizes) and Pr(σ) —
// and propagates the result-size law with Section 3.6.3 rebucketing.
// selLaws maps EdgeKey(join) to a selectivity law; sizeLaws maps table
// name to a filtered-size law. Missing entries use point estimates.
func AlgorithmD(cat *catalog.Catalog, blk *query.Block, opts Options, mem dist.Dist,
	selLaws map[string]dist.Dist, sizeLaws map[string]dist.Dist) (Result, error) {
	c, err := prepare(cat, blk, opts)
	if err != nil {
		return Result{}, err
	}
	c.setSelLaws(selLaws)
	c.setSizeLaws(sizeLaws)
	res, err := c.dpDist(mem)
	if err != nil {
		return Result{}, err
	}
	// D's PhaseEC is evaluated at the plan's annotated point sizes: the
	// joint size laws don't decompose per phase, the memory law does.
	return withPhaseEC(res, c.opts.CostModel, staticLaws(mem, c.n))
}

// distEntry extends entry with the node's size law.
type distEntry struct {
	entry
	law dist.Dist
}

// dpDist is the Algorithm D dynamic program.
func (c *ctx) dpDist(mem dist.Dist) (Result, error) {
	full := fullMask(c.n)
	dp := make([][2]*distEntry, full+1)
	keep := func(mask uint64, e distEntry) {
		sl := c.slotOf(e.order)
		cur := dp[mask][sl]
		if cur == nil || better(e.score, e.node.Signature(), cur.score, cur.node.Signature()) {
			ec := e
			dp[mask][sl] = &ec
		}
	}
	for j := 0; j < c.n; j++ {
		ti := c.tables[j]
		for _, e := range c.leafEntries(ti) {
			keep(1<<uint(j), distEntry{entry: e, law: ti.sizeLaw})
		}
	}
	for size := 2; size <= c.n; size++ {
		for mask := uint64(1); mask <= full; mask++ {
			if bits.OnesCount64(mask) != size {
				continue
			}
			for _, j := range c.candidates(mask) {
				bit := uint64(1) << uint(j)
				rest := mask &^ bit
				sigmaLaw := c.sigmaLawBetween(j, rest)
				for _, left := range dp[rest] {
					if left == nil {
						continue
					}
					for _, right := range dp[bit] {
						if right == nil {
							continue
						}
						outLaw, err := expcost.ResultSizeDist(left.law, right.law, sigmaLaw, c.opts.SizeBuckets)
						if err != nil {
							return Result{}, err
						}
						outLaw = outLaw.Map(c.clampPages)
						if v, ok := c.sizeHint[mask]; ok {
							// An executed-size observation collapses the
							// propagated result-size law: the realized
							// size is a fact, not a distribution.
							outLaw = dist.Point(v)
						}
						for _, m := range c.opts.Methods {
							jc := expcost.JoinECModel(c.opts.CostModel, m, left.law, right.law, mem)
							outPages := outLaw.Mean()
							order := c.joinOutputOrder(m, j, rest, left.order)
							node := plan.NewJoin(m, left.node, right.node, outPages, order)
							keep(mask, distEntry{
								entry: entry{node: node, score: left.score + right.score + jc, pages: outPages, order: order},
								law:   outLaw,
							})
						}
					}
				}
			}
		}
	}
	// Root completion with an expected-cost enforcer over the size law.
	var best *distEntry
	bestSig := ""
	for sl, e := range dp[full] {
		if e == nil {
			continue
		}
		cand := *e
		if c.blk.OrderBy != nil && sl == 0 {
			cand.score += expcost.SortEC(e.law, mem)
			if e.node.Kind == plan.KindScan && !e.node.Materialized() {
				cand.score += e.node.AccessIO()
			}
			cand.node = plan.NewSort(e.node, c.requiredOrder())
			cand.order = c.requiredOrder()
		}
		sig := cand.node.Signature()
		if best == nil || better(cand.score, sig, best.score, bestSig) {
			cc := cand
			best, bestSig = &cc, sig
		}
	}
	if best == nil {
		return Result{}, ErrNoPlan
	}
	if err := checkFinite(best.score); err != nil {
		return Result{}, err
	}
	return Result{Plan: best.node, EC: best.score, Candidates: 1}, nil
}

// withPhaseEC annotates a finished result with its per-phase analytic
// breakdown under the model and laws the plan was selected with.
func withPhaseEC(r Result, model cost.Model, laws []dist.Dist) (Result, error) {
	ph, err := ExpectedCostPhasesModel(model, r.Plan, laws)
	if err != nil {
		return Result{}, err
	}
	r.PhaseEC = ph
	r.Model = model
	return r, nil
}

// ExpectedCost evaluates EC(P) = Σ_phase E[cost_phase(M_phase)] for an
// annotated plan under per-phase memory laws (laws[i] is the marginal law
// of memory in phase i; pass a single-element slice for a static law —
// it is repeated for later phases). Scan costs are memory-independent.
func ExpectedCost(p *plan.Node, laws []dist.Dist) (float64, error) {
	return ExpectedCostModel(cost.ModelPaper, p, laws)
}

// ExpectedCostModel is ExpectedCost under the selected cost model.
func ExpectedCostModel(model cost.Model, p *plan.Node, laws []dist.Dist) (float64, error) {
	phases, err := ExpectedCostPhasesModel(model, p, laws)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, c := range phases {
		total += c
	}
	return total, nil
}

// ExpectedCostPhases breaks EC(P) down by execution phase: element i is
// E[cost_phase_i(M_i)], with len equal to p.Phases(). Attribution follows
// plan.CostPhases (and therefore the engine's physical conventions):
// materialized access paths land in phase 0, unfiltered heap scans are
// paid by their consumer, joins and sorts in the phase of the subtree
// they complete. Conditioning the same breakdown on a realized memory
// trajectory instead of the laws is plan.CostPhases itself.
func ExpectedCostPhases(p *plan.Node, laws []dist.Dist) ([]float64, error) {
	return ExpectedCostPhasesModel(cost.ModelPaper, p, laws)
}

// ExpectedCostPhasesModel is ExpectedCostPhases under the selected cost
// model (joins charged with cost.JoinIOModel).
func ExpectedCostPhasesModel(model cost.Model, p *plan.Node, laws []dist.Dist) ([]float64, error) {
	if len(laws) == 0 {
		return nil, ErrLawsShort
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lawAt := func(phase int) dist.Dist {
		if phase >= len(laws) {
			phase = len(laws) - 1
		}
		return laws[phase]
	}
	out := make([]float64, p.Phases())
	var rec func(n *plan.Node) (int, error)
	rec = func(n *plan.Node) (int, error) {
		switch n.Kind {
		case plan.KindScan:
			if n.Materialized() {
				out[0] += n.AccessIO()
			}
			return 1, nil
		case plan.KindSort:
			k, err := rec(n.Child)
			if err != nil {
				return 0, err
			}
			phase := 0
			if k >= 2 {
				phase = k - 2
			}
			if n.Child.Kind == plan.KindScan && !n.Child.Materialized() {
				// The sort itself reads the unmaterialized base table.
				out[phase] += n.Child.AccessIO()
			}
			out[phase] += lawAt(phase).ExpectF(func(m float64) float64 {
				return cost.SortIO(n.Child.OutPages, m)
			})
			return k, nil
		default: // join
			kl, err := rec(n.Left)
			if err != nil {
				return 0, err
			}
			kr, err := rec(n.Right)
			if err != nil {
				return 0, err
			}
			k := kl + kr
			out[k-2] += lawAt(k - 2).ExpectF(func(m float64) float64 {
				return cost.JoinIOModel(model, n.Method, n.Left.OutPages, n.Right.OutPages, m)
			})
			return k, nil
		}
	}
	if _, err := rec(p); err != nil {
		return nil, err
	}
	return out, nil
}

// PhaseLawsFor builds the per-phase laws for an n-relation query: the
// static law repeated, or the chain's i-step marginals when dynamic.
func PhaseLawsFor(n int, static dist.Dist, chain *dist.Chain) ([]dist.Dist, error) {
	k := lastPhase(n) + 1
	if chain == nil {
		return staticLaws(static, n), nil
	}
	return chain.PhaseLaws(static, k)
}
