package optimizer

import (
	"fmt"
	"math/rand"
	"testing"

	"lecopt/internal/dist"
	"lecopt/internal/plan"
	"lecopt/internal/workload"
)

// TestNodeArena exercises the arena mechanics directly: stable distinct
// pointers across chunk boundaries, undo, ownership, and a reset that
// really zeroes the used prefix.
func TestNodeArena(t *testing.T) {
	var a nodeArena
	n := arenaChunkSize*2 + 7 // force two chunk-boundary crossings
	nodes := make([]*plan.Node, n)
	for i := range nodes {
		nodes[i] = a.alloc()
		nodes[i].OutPages = float64(i + 1) // tag to detect aliasing
	}
	seen := make(map[*plan.Node]bool, n)
	for i, p := range nodes {
		if seen[p] {
			t.Fatalf("alloc %d returned an already-handed-out pointer", i)
		}
		seen[p] = true
		if p.OutPages != float64(i+1) {
			t.Fatalf("node %d overwritten: OutPages=%v", i, p.OutPages)
		}
		if !a.owns(p) {
			t.Fatalf("owns(node %d) = false", i)
		}
	}
	if a.owns(&plan.Node{}) {
		t.Fatal("owns reported a foreign node")
	}

	a.undo()
	redo := a.alloc()
	if redo != nodes[n-1] {
		t.Fatal("alloc after undo did not reuse the undone slot")
	}
	if redo.OutPages != 0 {
		t.Fatalf("undone slot not zeroed: OutPages=%v", redo.OutPages)
	}

	a.reset()
	if a.ci != 0 || a.ni != 0 {
		t.Fatalf("reset left cursor at (%d,%d)", a.ci, a.ni)
	}
	for i := 0; i < n; i++ {
		if p := a.alloc(); p.OutPages != 0 {
			t.Fatalf("post-reset alloc %d not zeroed: OutPages=%v", i, p.OutPages)
		}
	}
}

// wideScenario generates a deterministic n-table scenario whose DP ranks
// are wide enough to exercise the parallel enumeration.
func wideScenario(t *testing.T, n int, shape workload.Shape, seed int64) workload.Scenario {
	t.Helper()
	sc, err := workload.Generate(workload.DefaultSpec(n, shape), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func resultKey(r Result) string {
	return fmt.Sprintf("%s|%v|%d|%d", r.Plan.Signature(), r.EC, r.Candidates, r.Probes)
}

// TestRankParallelDPMatchesSerial pins the tentpole determinism claim: the
// rank-parallel subset enumeration is byte-identical to the serial pass at
// every worker count, on queries wide enough (8-10 tables) for the widest
// ranks to clear dpParallelMinMasks naturally.
func TestRankParallelDPMatchesSerial(t *testing.T) {
	mem := dist.MustNew([]float64{64, 512, 4096}, []float64{1, 2, 1})
	for i, tc := range []struct {
		n     int
		shape workload.Shape
	}{
		{8, workload.Chain}, {8, workload.Random}, {9, workload.Star},
		{9, workload.Random}, {10, workload.Chain}, {10, workload.Random},
	} {
		sc := wideScenario(t, tc.n, tc.shape, int64(4000+i))
		c, err := prepare(sc.Cat, sc.Block, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, scorer := range []scorer{
			pointScorer{mem.Mean(), c.opts.CostModel},
			lawScorer{staticLaws(mem, c.n), c.opts.CostModel},
		} {
			serial, err := c.dpBestW(scorer, 1)
			if err != nil {
				t.Fatalf("case %d: serial: %v", i, err)
			}
			for _, workers := range []int{4, 8} {
				par, err := c.dpBestW(scorer, workers)
				if err != nil {
					t.Fatalf("case %d: workers=%d: %v", i, workers, err)
				}
				if resultKey(serial) != resultKey(par) {
					t.Fatalf("case %d (%T): workers=%d diverged:\n serial   %s\n parallel %s",
						i, scorer, workers, resultKey(serial), resultKey(par))
				}
			}
		}
	}
}

// TestRankParallelForcedOnCorpus lowers the parallel gate to 2 masks so
// the chunked path runs on every rank of every scenario, then replays the
// differential corpus's 200 generation specs (seeds 7000+i, 2-4 tables,
// cycling shapes — the same instances the root differential suite pins
// against ground truth) through Algorithm C at workers {1,4,8}, requiring
// identical results.
func TestRankParallelForcedOnCorpus(t *testing.T) {
	old := dpParallelMinMasks
	dpParallelMinMasks = 2
	defer func() { dpParallelMinMasks = old }()

	mem := dist.MustNew([]float64{128, 1024, 8192}, []float64{2, 1, 1})
	shapes := []workload.Shape{workload.Chain, workload.Star, workload.Clique, workload.Random}
	for i := 0; i < 200; i++ {
		sc := wideScenario(t, 2+i%3, shapes[i%len(shapes)], int64(7000+i))
		base, err := AlgorithmC(sc.Cat, sc.Block, Options{Workers: 1}, mem)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 8} {
			got, err := AlgorithmC(sc.Cat, sc.Block, Options{Workers: workers}, mem)
			if err != nil {
				t.Fatal(err)
			}
			if resultKey(base) != resultKey(got) {
				t.Fatalf("scenario %d: AlgorithmC workers=%d diverged:\n serial   %s\n parallel %s",
					i, workers, resultKey(base), resultKey(got))
			}
		}
	}
}

// TestResultSurvivesScratchReuse guards the arena-escape contract from the
// behavioral side: a Result captured early must be unchanged — same
// signature, every node intact — after many later optimizations have
// recycled the pooled scratches its DP used.
func TestResultSurvivesScratchReuse(t *testing.T) {
	mem := dist.MustNew([]float64{100, 2000}, []float64{1, 1})
	sc := wideScenario(t, 6, workload.Random, 42)
	first, err := AlgorithmC(sc.Cat, sc.Block, Options{}, mem)
	if err != nil {
		t.Fatal(err)
	}
	sig := first.Plan.Signature()

	for seed := int64(0); seed < 30; seed++ {
		other := wideScenario(t, 3+int(seed%5), workload.Shape(seed%4), 6000+seed)
		if _, err := AlgorithmC(other.Cat, other.Block, Options{}, mem); err != nil {
			t.Fatal(err)
		}
	}
	if got := first.Plan.Signature(); got != sig {
		t.Fatalf("captured plan mutated by scratch reuse:\n before %s\n after  %s", sig, got)
	}
}

// TestResultOwnsNoArenaNodes checks the contract directly with the owns
// hook: no node reachable from a returned Result points into the pooled
// scratch arenas that produced it.
func TestResultOwnsNoArenaNodes(t *testing.T) {
	mem := dist.MustNew([]float64{100, 2000}, []float64{1, 1})
	sc := wideScenario(t, 6, workload.Random, 43)
	c, err := prepare(sc.Cat, sc.Block, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.dpBestW(lawScorer{staticLaws(mem, c.n), c.opts.CostModel}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Single-goroutine sync.Pool gives back the scratch dpBestW just
	// released; the chunk check keeps the test honest if it ever does not.
	used := getScratch()
	defer used.release()
	if len(used.workers) == 0 || len(used.workers[0].arena.chunks) == 0 {
		t.Skip("pool returned a scratch that ran no DP; ownership not checkable")
	}
	res.Plan.Walk(func(n *plan.Node) {
		for i := range used.workers {
			if used.workers[i].arena.owns(n) {
				t.Fatalf("Result plan node %p lives in a pooled arena", n)
			}
		}
	})
}
