package optimizer

import (
	"math/bits"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/plan"
)

// scorer abstracts how a join or sort is costed in one execution phase —
// the only difference between the LSC dynamic program (point costs,
// Theorem 2.1) and Algorithm C (expected costs, Theorem 3.3/3.4).
type scorer interface {
	joinScore(method cost.JoinMethod, outer, inner float64, phase int) float64
	sortScore(pages float64, phase int) float64
}

// pointScorer costs at one fixed memory value: the classical optimizer.
type pointScorer struct {
	mem   float64
	model cost.Model
}

func (s pointScorer) joinScore(m cost.JoinMethod, outer, inner float64, _ int) float64 {
	return cost.JoinIOModel(s.model, m, outer, inner, s.mem)
}

func (s pointScorer) sortScore(pages float64, _ int) float64 {
	return cost.SortIO(pages, s.mem)
}

// lawScorer costs in expectation under a per-phase memory law. With a
// single repeated law it is Algorithm C's static case; with Markov
// phase laws it is the Section 3.5 dynamic case. Expectation distributes
// over the plan's phase-cost sum, which is exactly why the DP argument of
// Theorem 3.3 carries over (Theorem 3.4).
type lawScorer struct {
	laws  []dist.Dist
	model cost.Model
}

func (s lawScorer) law(phase int) dist.Dist {
	if phase >= len(s.laws) {
		phase = len(s.laws) - 1
	}
	return s.laws[phase]
}

func (s lawScorer) joinScore(m cost.JoinMethod, outer, inner float64, phase int) float64 {
	return s.law(phase).ExpectF(func(mem float64) float64 {
		return cost.JoinIOModel(s.model, m, outer, inner, mem)
	})
}

func (s lawScorer) sortScore(pages float64, phase int) float64 {
	return s.law(phase).ExpectF(func(mem float64) float64 {
		return cost.SortIO(pages, mem)
	})
}

// staticLaws replicates one law across all phases of an n-relation plan.
func staticLaws(law dist.Dist, n int) []dist.Dist {
	k := lastPhase(n) + 1
	laws := make([]dist.Dist, k)
	for i := range laws {
		laws[i] = law
	}
	return laws
}

// entry is one retained subplan at a DP node.
type entry struct {
	node  *plan.Node
	score float64
	pages float64
	order plan.Order
}

// slotOf maps an order property to a DP slot: 1 when it satisfies the
// query's ORDER BY, 0 otherwise. Keeping the best plan per slot is the
// light-weight version of System R's "interesting orders" that our cost
// model needs (joins sort their own inputs, so order can only matter at
// the root).
func (c *ctx) slotOf(o plan.Order) int {
	if c.blk.OrderBy != nil && c.satisfiesOrderBy(o) {
		return 1
	}
	return 0
}

// joinOutputOrder returns the order property of a join's output: sort-merge
// imposes its join-column order; nested-loop variants stream the outer and
// preserve its order; hash joins destroy order.
func (c *ctx) joinOutputOrder(method cost.JoinMethod, j int, leftMask uint64, leftOrder plan.Order) plan.Order {
	switch method {
	case cost.SortMerge:
		return c.joinOrder(method, j, leftMask)
	case cost.PageNL, cost.BlockNL:
		return leftOrder
	default:
		return plan.Order{}
	}
}

// leafEntries builds the access-path entries for one table. Materialized
// access paths (index scans, filtered heap scans) score their access
// cost; an unfiltered heap scan scores 0 — its base read is part of the
// consuming join's formula (see plan.Node.Materialized).
func (c *ctx) leafEntries(ti *tableInfo) []entry {
	out := make([]entry, 0, len(ti.accesses))
	for _, ac := range ti.accesses {
		score := ac.io
		if !ac.node.Materialized() {
			score = 0
		}
		out = append(out, entry{node: ac.node, score: score, pages: ti.pages, order: ac.order})
	}
	return out
}

// enforcerScore is the cost of the root ORDER BY enforcer over an entry:
// the sort itself, plus the base read when the sort consumes an
// unmaterialized heap scan directly (single-table plans — no join ever
// paid for it).
func enforcerScore(s scorer, e entry, phase int) float64 {
	sc := s.sortScore(e.pages, phase)
	if e.node.Kind == plan.KindScan && !e.node.Materialized() {
		sc += e.node.AccessIO()
	}
	return sc
}

// dpBest is the System R bottom-up dynamic program, keeping the best entry
// per (subset, order-slot). With a pointScorer it computes the LSC
// left-deep plan (Theorem 2.1); with a lawScorer it is Algorithm C and
// computes the LEC left-deep plan (Theorems 3.3/3.4).
func (c *ctx) dpBest(s scorer) (Result, error) {
	full := fullMask(c.n)
	dp := make([][2]*entry, full+1)

	keep := func(mask uint64, e entry) {
		slot := c.slotOf(e.order)
		cur := dp[mask][slot]
		if cur == nil || better(e.score, e.node.Signature(), cur.score, cur.node.Signature()) {
			ec := e
			dp[mask][slot] = &ec
		}
	}

	for j := 0; j < c.n; j++ {
		for _, e := range c.leafEntries(c.tables[j]) {
			keep(1<<uint(j), e)
		}
	}

	for size := 2; size <= c.n; size++ {
		for mask := uint64(1); mask <= full; mask++ {
			if bits.OnesCount64(mask) != size {
				continue
			}
			phase := phaseOfMask(mask)
			for _, j := range c.candidates(mask) {
				bit := uint64(1) << uint(j)
				rest := mask &^ bit
				sigma := c.sigmaBetween(j, rest)
				for _, left := range dp[rest] {
					if left == nil {
						continue
					}
					for _, right := range dp[bit] {
						if right == nil {
							continue
						}
						for _, m := range c.opts.Methods {
							jc := s.joinScore(m, left.pages, right.pages, phase)
							score := left.score + right.score + jc
							outPages := c.joinOutPages(mask, c.clampPages(left.pages*right.pages*sigma))
							order := c.joinOutputOrder(m, j, rest, left.order)
							node := plan.NewJoin(m, left.node, right.node, outPages, order)
							keep(mask, entry{node: node, score: score, pages: outPages, order: order})
						}
					}
				}
			}
		}
	}
	return c.finishRoot(dp[full], s)
}

// finishRoot applies the ORDER BY enforcer where needed and returns the
// cheapest completed plan.
func (c *ctx) finishRoot(slots [2]*entry, s scorer) (Result, error) {
	var best *entry
	bestSig := ""
	phase := lastPhase(c.n)
	for slot, e := range slots {
		if e == nil {
			continue
		}
		cand := *e
		if c.blk.OrderBy != nil && slot == 0 {
			cand.score += enforcerScore(s, *e, phase)
			cand.node = plan.NewSort(e.node, c.requiredOrder())
			cand.order = c.requiredOrder()
		}
		sig := cand.node.Signature()
		if best == nil || better(cand.score, sig, best.score, bestSig) {
			cc := cand
			best, bestSig = &cc, sig
		}
	}
	if best == nil {
		return Result{}, ErrNoPlan
	}
	if err := checkFinite(best.score); err != nil {
		return Result{}, err
	}
	return Result{Plan: best.node, EC: best.score, Candidates: 1}, nil
}
