package optimizer

import (
	"math/bits"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/plan"
	"lecopt/internal/pool"
)

// scorer abstracts how a join or sort is costed in one execution phase —
// the only difference between the LSC dynamic program (point costs,
// Theorem 2.1) and Algorithm C (expected costs, Theorem 3.3/3.4).
type scorer interface {
	joinScore(method cost.JoinMethod, outer, inner float64, phase int) float64
	sortScore(pages float64, phase int) float64
}

// pointScorer costs at one fixed memory value: the classical optimizer.
type pointScorer struct {
	mem   float64
	model cost.Model
}

func (s pointScorer) joinScore(m cost.JoinMethod, outer, inner float64, _ int) float64 {
	return cost.JoinIOModel(s.model, m, outer, inner, s.mem)
}

func (s pointScorer) sortScore(pages float64, _ int) float64 {
	return cost.SortIO(pages, s.mem)
}

// lawScorer costs in expectation under a per-phase memory law. With a
// single repeated law it is Algorithm C's static case; with Markov
// phase laws it is the Section 3.5 dynamic case. Expectation distributes
// over the plan's phase-cost sum, which is exactly why the DP argument of
// Theorem 3.3 carries over (Theorem 3.4).
type lawScorer struct {
	laws  []dist.Dist
	model cost.Model
}

func (s lawScorer) law(phase int) dist.Dist {
	if phase >= len(s.laws) {
		phase = len(s.laws) - 1
	}
	return s.laws[phase]
}

func (s lawScorer) joinScore(m cost.JoinMethod, outer, inner float64, phase int) float64 {
	return s.law(phase).ExpectF(func(mem float64) float64 {
		return cost.JoinIOModel(s.model, m, outer, inner, mem)
	})
}

func (s lawScorer) sortScore(pages float64, phase int) float64 {
	return s.law(phase).ExpectF(func(mem float64) float64 {
		return cost.SortIO(pages, mem)
	})
}

// staticLaws replicates one law across all phases of an n-relation plan.
func staticLaws(law dist.Dist, n int) []dist.Dist {
	k := lastPhase(n) + 1
	laws := make([]dist.Dist, k)
	for i := range laws {
		laws[i] = law
	}
	return laws
}

// entry is one retained subplan at a DP node.
type entry struct {
	node  *plan.Node
	score float64
	pages float64
	order plan.Order
}

// slotOf maps an order property to a DP slot: 1 when it satisfies the
// query's ORDER BY, 0 otherwise. Keeping the best plan per slot is the
// light-weight version of System R's "interesting orders" that our cost
// model needs (joins sort their own inputs, so order can only matter at
// the root).
func (c *ctx) slotOf(o plan.Order) int {
	if c.blk.OrderBy != nil && c.satisfiesOrderBy(o) {
		return 1
	}
	return 0
}

// joinOutputOrder returns the order property of a join's output: sort-merge
// imposes its join-column order; nested-loop variants stream the outer and
// preserve its order; hash joins destroy order.
func (c *ctx) joinOutputOrder(method cost.JoinMethod, j int, leftMask uint64, leftOrder plan.Order) plan.Order {
	switch method {
	case cost.SortMerge:
		return c.joinOrder(method, j, leftMask)
	case cost.PageNL, cost.BlockNL:
		return leftOrder
	default:
		return plan.Order{}
	}
}

// leafEntry builds the access-path entry for one access path of a table.
// Materialized access paths (index scans, filtered heap scans) score their
// access cost; an unfiltered heap scan scores 0 — its base read is part of
// the consuming join's formula (see plan.Node.Materialized).
func leafEntry(ti *tableInfo, ac accessCand) entry {
	score := ac.io
	if !ac.node.Materialized() {
		score = 0
	}
	return entry{node: ac.node, score: score, pages: ti.pages, order: ac.order}
}

// leafEntries builds all access-path entries for one table — the
// slice-returning form used by the top-c, distributional and exhaustive
// passes; the single-plan DP iterates leafEntry directly to stay
// allocation-free.
func (c *ctx) leafEntries(ti *tableInfo) []entry {
	out := make([]entry, 0, len(ti.accesses))
	for _, ac := range ti.accesses {
		out = append(out, leafEntry(ti, ac))
	}
	return out
}

// enforcerScore is the cost of the root ORDER BY enforcer over an entry:
// the sort itself, plus the base read when the sort consumes an
// unmaterialized heap scan directly (single-table plans — no join ever
// paid for it).
func enforcerScore(s scorer, e entry, phase int) float64 {
	sc := s.sortScore(e.pages, phase)
	if e.node.Kind == plan.KindScan && !e.node.Materialized() {
		sc += e.node.AccessIO()
	}
	return sc
}

// dpBest is the System R bottom-up dynamic program, keeping the best entry
// per (subset, order-slot). With a pointScorer it computes the LSC
// left-deep plan (Theorem 2.1); with a lawScorer it is Algorithm C and
// computes the LEC left-deep plan (Theorems 3.3/3.4).
func (c *ctx) dpBest(s scorer) (Result, error) {
	return c.dpBestW(s, c.opts.Workers)
}

// dpBestW is dpBest with an explicit worker count for the subset
// enumeration (Algorithms A and B pass 1 when their per-bucket fan-out
// already saturates the requested concurrency). All DP state lives in a
// pooled scratch: the table holds entries by value, join nodes come from
// per-worker arenas, and finishRoot deep-copies the winner so nothing in
// the Result outlives the scratch's release.
//
// Parallelism is by rank: every mask of popcount k depends only on masks
// of strictly smaller popcount, so the masks of one rank can be expanded
// concurrently — each expandMask call writes dp[mask] alone and reads only
// finalized smaller ranks. Workers take statically assigned contiguous
// chunks, so the result is byte-identical to the serial pass for every
// worker count.
func (c *ctx) dpBestW(s scorer, workers int) (Result, error) {
	full := fullMask(c.n)
	sc := getScratch()
	defer sc.release()
	dp := sc.table(int(full) + 1)

	for j := 0; j < c.n; j++ {
		ti := c.tables[j]
		for _, ac := range ti.accesses {
			c.keepSlot(&dp[1<<uint(j)], leafEntry(ti, ac))
		}
	}

	for size := 2; size <= c.n; size++ {
		ms := sc.masks[:0]
		for mask := uint64(1); mask <= full; mask++ {
			if bits.OnesCount64(mask) == size {
				ms = append(ms, mask)
			}
		}
		sc.masks = ms
		w := pool.Workers(workers, len(ms))
		if w > 1 && len(ms) >= dpParallelMinMasks {
			chunk := (len(ms) + w - 1) / w
			nchunks := (len(ms) + chunk - 1) / chunk
			sc.ensureWorkers(nchunks)
			err := pool.Run(nchunks, nchunks, func(ci int) error {
				lo, hi := ci*chunk, (ci+1)*chunk
				if hi > len(ms) {
					hi = len(ms)
				}
				wk := &sc.workers[ci]
				for _, mask := range ms[lo:hi] {
					c.expandMask(dp, mask, s, wk)
				}
				return nil
			})
			if err != nil {
				return Result{}, err
			}
		} else {
			sc.ensureWorkers(1)
			wk := &sc.workers[0]
			for _, mask := range ms {
				c.expandMask(dp, mask, s, wk)
			}
		}
	}
	return c.finishRoot(&dp[full], s)
}

// expandMask computes dp[mask] from the finalized smaller-rank slots. It
// writes only dp[mask], which is what makes rank-order parallel
// enumeration race-free and byte-identical to the serial pass.
func (c *ctx) expandMask(dp []dpSlot, mask uint64, s scorer, w *dpWorker) {
	phase := phaseOfMask(mask)
	w.cands = c.candidatesInto(mask, w.cands[:0])
	sl := &dp[mask]
	for _, j := range w.cands {
		bit := uint64(1) << uint(j)
		rest := mask &^ bit
		sigma := c.sigmaBetween(j, rest)
		for ls := 0; ls < 2; ls++ {
			if !dp[rest].ok[ls] {
				continue
			}
			left := &dp[rest].e[ls]
			for rs := 0; rs < 2; rs++ {
				if !dp[bit].ok[rs] {
					continue
				}
				right := &dp[bit].e[rs]
				for _, m := range c.opts.Methods {
					jc := s.joinScore(m, left.pages, right.pages, phase)
					score := left.score + right.score + jc
					outPages := c.joinOutPages(mask, c.clampPages(left.pages*right.pages*sigma))
					order := c.joinOutputOrder(m, j, rest, left.order)
					slot := c.slotOf(order)
					if sl.ok[slot] && score > sl.e[slot].score {
						continue // strictly worse: skip building the node
					}
					node := w.arena.newJoin(m, left.node, right.node, outPages, order)
					if sl.ok[slot] && !betterEntry(score, node, &sl.e[slot]) {
						w.arena.undo()
						continue
					}
					sl.e[slot] = entry{node: node, score: score, pages: outPages, order: order}
					sl.ok[slot] = true
				}
			}
		}
	}
}

// keepSlot installs e into its order slot when it beats the incumbent.
func (c *ctx) keepSlot(sl *dpSlot, e entry) {
	slot := c.slotOf(e.order)
	if sl.ok[slot] && !betterEntry(e.score, e.node, &sl.e[slot]) {
		return
	}
	sl.e[slot] = e
	sl.ok[slot] = true
}

// betterEntry ranks a challenger against the incumbent: lower score wins,
// exact ties break on plan signature. Signatures are built only on exact
// score ties — they allocate, and ties are rare.
func betterEntry(score float64, node *plan.Node, cur *entry) bool {
	if score != cur.score {
		return score < cur.score
	}
	return node.Signature() < cur.node.Signature()
}

// finishRoot applies the ORDER BY enforcer where needed and returns the
// cheapest completed plan.
func (c *ctx) finishRoot(sl *dpSlot, s scorer) (Result, error) {
	var best entry
	bestSig := ""
	have := false
	phase := lastPhase(c.n)
	for slot := 0; slot < 2; slot++ {
		if !sl.ok[slot] {
			continue
		}
		cand := sl.e[slot]
		if c.blk.OrderBy != nil && slot == 0 {
			cand.score += enforcerScore(s, sl.e[slot], phase)
			cand.node = plan.NewSort(cand.node, c.requiredOrder())
			cand.order = c.requiredOrder()
		}
		sig := cand.node.Signature()
		if !have || better(cand.score, sig, best.score, bestSig) {
			best, bestSig, have = cand, sig, true
		}
	}
	if !have {
		return Result{}, ErrNoPlan
	}
	if err := checkFinite(best.score); err != nil {
		return Result{}, err
	}
	// The winning tree references arena-owned join nodes that are recycled
	// when the scratch is released; deep-copy it so the Result owns its plan.
	return Result{Plan: best.node.Clone(), EC: best.score, Candidates: 1}, nil
}
