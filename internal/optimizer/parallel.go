package optimizer

import "lecopt/internal/pool"

// workers resolves the effective concurrency for n independent sub-runs.
// The prepared optimization context is safe to share across the resulting
// goroutines because every DP pass only reads it.
func (o Options) workers(n int) int { return pool.Workers(o.Workers, n) }
