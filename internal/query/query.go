// Package query defines SELECT-PROJECT-JOIN query blocks, the unit of
// optimization in System R style optimizers and in the LEC paper. A Block
// names the relations to join, the equi-join predicates between them,
// local filter predicates, and an optional required output order.
package query

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"lecopt/internal/catalog"
)

// Validation errors.
var (
	ErrNoTables     = errors.New("query: block references no tables")
	ErrDupTable     = errors.New("query: duplicate table in FROM")
	ErrUnknownTable = errors.New("query: table not in FROM list")
	ErrSelfJoin     = errors.New("query: join predicate must span two distinct tables")
	ErrTooMany      = errors.New("query: too many tables for the optimizer's bitmask")
)

// MaxTables bounds the number of relations in one block; the optimizer's
// dynamic program indexes subsets with a 64-bit mask.
const MaxTables = 24

// ColRef names a column of a specific table.
type ColRef struct {
	Table  string
	Column string
}

func (c ColRef) String() string { return c.Table + "." + c.Column }

// Join is an equi-join predicate Left = Right between two tables.
type Join struct {
	Left  ColRef
	Right ColRef
}

func (j Join) String() string { return j.Left.String() + " = " + j.Right.String() }

// Touches reports whether the predicate references the table.
func (j Join) Touches(table string) bool {
	return j.Left.Table == table || j.Right.Table == table
}

// Other returns the column reference on the opposite side of table, and
// whether the predicate touches table at all.
func (j Join) Other(table string) (ColRef, bool) {
	switch table {
	case j.Left.Table:
		return j.Right, true
	case j.Right.Table:
		return j.Left, true
	default:
		return ColRef{}, false
	}
}

// Side returns the column reference on table's own side.
func (j Join) Side(table string) (ColRef, bool) {
	switch table {
	case j.Left.Table:
		return j.Left, true
	case j.Right.Table:
		return j.Right, true
	default:
		return ColRef{}, false
	}
}

// Filter is a local predicate "Col op Value" on a single table.
type Filter struct {
	Col   ColRef
	Op    catalog.CmpOp
	Value float64
}

func (f Filter) String() string {
	// Decimal (never exponent) notation keeps the rendering inside the
	// sqlmini grammar, so String() output re-parses for any value the
	// parser itself can produce (non-negative finite) — a round-trip the
	// FuzzParse harness checks. Negative values, only constructible
	// programmatically, still render but are outside that grammar.
	return fmt.Sprintf("%s %s %s", f.Col, f.Op, strconv.FormatFloat(f.Value, 'f', -1, 64))
}

// Block is one SPJ query block. Blocks are treated as immutable once
// handed to the optimizer: Canonical memoizes its signature on first use.
type Block struct {
	Tables  []string
	Joins   []Join
	Filters []Filter
	OrderBy *ColRef // optional required output order (ascending)

	// canon caches Canonical's result. Mutating a block after its first
	// Canonical call would serve the stale signature; clone instead.
	canon atomic.Pointer[string]
}

// Validate checks the block against a catalog: every table exists and is
// unique, every referenced column exists, and join predicates span two
// distinct FROM tables.
func (b *Block) Validate(cat *catalog.Catalog) error {
	if len(b.Tables) == 0 {
		return ErrNoTables
	}
	if len(b.Tables) > MaxTables {
		return fmt.Errorf("%w: %d > %d", ErrTooMany, len(b.Tables), MaxTables)
	}
	seen := make(map[string]bool, len(b.Tables))
	for _, t := range b.Tables {
		if seen[t] {
			return fmt.Errorf("%w: %s", ErrDupTable, t)
		}
		seen[t] = true
		if _, err := cat.Table(t); err != nil {
			return err
		}
	}
	checkCol := func(c ColRef) error {
		if !seen[c.Table] {
			return fmt.Errorf("%w: %s", ErrUnknownTable, c.Table)
		}
		t, err := cat.Table(c.Table)
		if err != nil {
			return err
		}
		if _, err := t.Column(c.Column); err != nil {
			return err
		}
		return nil
	}
	for _, j := range b.Joins {
		if j.Left.Table == j.Right.Table {
			return fmt.Errorf("%w: %s", ErrSelfJoin, j)
		}
		if err := checkCol(j.Left); err != nil {
			return err
		}
		if err := checkCol(j.Right); err != nil {
			return err
		}
	}
	for _, f := range b.Filters {
		if err := checkCol(f.Col); err != nil {
			return err
		}
	}
	if b.OrderBy != nil {
		if err := checkCol(*b.OrderBy); err != nil {
			return err
		}
	}
	return nil
}

// TableIndex returns the position of a table in the FROM list, or -1.
func (b *Block) TableIndex(name string) int {
	for i, t := range b.Tables {
		if t == name {
			return i
		}
	}
	return -1
}

// JoinsBetween returns the join predicates connecting table with any table
// whose FROM index is set in mask.
func (b *Block) JoinsBetween(table string, mask uint64) []Join {
	var out []Join
	for _, j := range b.Joins {
		other, ok := j.Other(table)
		if !ok {
			continue
		}
		oi := b.TableIndex(other.Table)
		if oi >= 0 && mask&(1<<uint(oi)) != 0 {
			out = append(out, j)
		}
	}
	return out
}

// FiltersOn returns the local predicates on one table.
func (b *Block) FiltersOn(table string) []Filter {
	var out []Filter
	for _, f := range b.Filters {
		if f.Col.Table == table {
			out = append(out, f)
		}
	}
	return out
}

// Connected reports whether the join graph over the FROM tables is
// connected. System R (and the paper) assume a join predicate between
// every pair "or a trivially true predicate"; a disconnected graph forces
// cross products, which the optimizer permits but flags.
func (b *Block) Connected() bool {
	n := len(b.Tables)
	if n <= 1 {
		return n == 1
	}
	adj := make(map[string][]string)
	for _, j := range b.Joins {
		adj[j.Left.Table] = append(adj[j.Left.Table], j.Right.Table)
		adj[j.Right.Table] = append(adj[j.Right.Table], j.Left.Table)
	}
	seen := map[string]bool{b.Tables[0]: true}
	stack := []string{b.Tables[0]}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return len(seen) == n
}

// String renders the block as pseudo-SQL.
func (b *Block) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT * FROM ")
	sb.WriteString(strings.Join(b.Tables, ", "))
	var preds []string
	for _, j := range b.Joins {
		preds = append(preds, j.String())
	}
	for _, f := range b.Filters {
		preds = append(preds, f.String())
	}
	if len(preds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(preds, " AND "))
	}
	if b.OrderBy != nil {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(b.OrderBy.String())
	}
	return sb.String()
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	out := &Block{
		Tables:  append([]string(nil), b.Tables...),
		Joins:   append([]Join(nil), b.Joins...),
		Filters: append([]Filter(nil), b.Filters...),
	}
	if b.OrderBy != nil {
		ob := *b.OrderBy
		out.OrderBy = &ob
	}
	return out
}

// Canonical returns a deterministic signature for deduplication in
// workload generators and for plan-cache keys: sorted tables and
// predicates. The signature is computed once per block and memoized —
// it sits on the serving hot path, where rebuilding it would dominate
// cache-key construction.
func (b *Block) Canonical() string {
	if s := b.canon.Load(); s != nil {
		return *s
	}
	sig := b.canonical()
	b.canon.Store(&sig)
	return sig
}

func (b *Block) canonical() string {
	tables := append([]string(nil), b.Tables...)
	sort.Strings(tables)
	joins := make([]string, len(b.Joins))
	for i, j := range b.Joins {
		l, r := j.Left.String(), j.Right.String()
		if l > r {
			l, r = r, l
		}
		joins[i] = l + "=" + r
	}
	sort.Strings(joins)
	filters := make([]string, len(b.Filters))
	for i, f := range b.Filters {
		filters[i] = f.String()
	}
	sort.Strings(filters)
	sig := strings.Join(tables, ",") + "|" + strings.Join(joins, "&") + "|" + strings.Join(filters, "&")
	if b.OrderBy != nil {
		sig += "|order=" + b.OrderBy.String()
	}
	return sig
}
