package query

import (
	"errors"
	"strings"
	"testing"

	"lecopt/internal/catalog"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	mk := func(name string, pages, rows float64, cols ...string) {
		ccols := make([]catalog.Column, len(cols))
		for i, cn := range cols {
			ccols[i] = catalog.Column{Name: cn, Type: catalog.TypeInt, Distinct: 100, Min: 0, Max: 999}
		}
		if err := c.AddTable(catalog.MustTable(name, pages, rows, ccols...)); err != nil {
			t.Fatal(err)
		}
	}
	mk("a", 100, 1000, "id", "x")
	mk("b", 50, 500, "id", "aid")
	mk("c", 10, 100, "bid")
	return c
}

func chainABC() *Block {
	return &Block{
		Tables: []string{"a", "b", "c"},
		Joins: []Join{
			{Left: ColRef{"a", "id"}, Right: ColRef{"b", "aid"}},
			{Left: ColRef{"b", "id"}, Right: ColRef{"c", "bid"}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	cat := testCatalog(t)
	b := chainABC()
	b.Filters = []Filter{{Col: ColRef{"a", "x"}, Op: catalog.OpLt, Value: 500}}
	b.OrderBy = &ColRef{"a", "id"}
	if err := b.Validate(cat); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		name string
		mut  func(*Block)
		want error
	}{
		{"no tables", func(b *Block) { b.Tables = nil }, ErrNoTables},
		{"dup table", func(b *Block) { b.Tables = append(b.Tables, "a") }, ErrDupTable},
		{"unknown table", func(b *Block) { b.Tables[0] = "zz" }, catalog.ErrNoTable},
		{"self join", func(b *Block) {
			b.Joins[0] = Join{Left: ColRef{"a", "id"}, Right: ColRef{"a", "x"}}
		}, ErrSelfJoin},
		{"join foreign table", func(b *Block) {
			b.Joins[0] = Join{Left: ColRef{"zz", "id"}, Right: ColRef{"b", "aid"}}
		}, ErrUnknownTable},
		{"join bad column", func(b *Block) {
			b.Joins[0] = Join{Left: ColRef{"a", "nope"}, Right: ColRef{"b", "aid"}}
		}, catalog.ErrNoColumn},
		{"filter bad column", func(b *Block) {
			b.Filters = []Filter{{Col: ColRef{"a", "nope"}, Op: catalog.OpEq, Value: 1}}
		}, catalog.ErrNoColumn},
		{"filter foreign table", func(b *Block) {
			b.Filters = []Filter{{Col: ColRef{"zz", "x"}, Op: catalog.OpEq, Value: 1}}
		}, ErrUnknownTable},
		{"orderby bad column", func(b *Block) { b.OrderBy = &ColRef{"a", "nope"} }, catalog.ErrNoColumn},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := chainABC()
			tc.mut(b)
			if err := b.Validate(cat); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestValidateTooMany(t *testing.T) {
	cat := catalog.New()
	b := &Block{}
	for i := 0; i < MaxTables+1; i++ {
		name := "t" + string(rune('a'+i))
		if err := cat.AddTable(catalog.MustTable(name, 1, 1)); err != nil {
			t.Fatal(err)
		}
		b.Tables = append(b.Tables, name)
	}
	if err := b.Validate(cat); !errors.Is(err, ErrTooMany) {
		t.Fatalf("err = %v, want ErrTooMany", err)
	}
}

func TestJoinAccessors(t *testing.T) {
	j := Join{Left: ColRef{"a", "id"}, Right: ColRef{"b", "aid"}}
	if !j.Touches("a") || !j.Touches("b") || j.Touches("c") {
		t.Fatal("Touches wrong")
	}
	o, ok := j.Other("a")
	if !ok || o != (ColRef{"b", "aid"}) {
		t.Fatal("Other(a) wrong")
	}
	o, ok = j.Other("b")
	if !ok || o != (ColRef{"a", "id"}) {
		t.Fatal("Other(b) wrong")
	}
	if _, ok := j.Other("c"); ok {
		t.Fatal("Other(c) should miss")
	}
	s, ok := j.Side("a")
	if !ok || s != (ColRef{"a", "id"}) {
		t.Fatal("Side(a) wrong")
	}
	if _, ok := j.Side("zz"); ok {
		t.Fatal("Side(zz) should miss")
	}
	if j.String() != "a.id = b.aid" {
		t.Fatalf("String = %q", j.String())
	}
}

func TestJoinsBetweenAndFiltersOn(t *testing.T) {
	b := chainABC()
	b.Filters = []Filter{
		{Col: ColRef{"a", "x"}, Op: catalog.OpLt, Value: 5},
		{Col: ColRef{"b", "id"}, Op: catalog.OpGe, Value: 1},
	}
	// mask with only table a (index 0) set.
	js := b.JoinsBetween("b", 1<<0)
	if len(js) != 1 || js[0].Left.Table != "a" {
		t.Fatalf("JoinsBetween(b, {a}) = %v", js)
	}
	// mask {a, c} for b → both joins.
	js = b.JoinsBetween("b", 1<<0|1<<2)
	if len(js) != 2 {
		t.Fatalf("JoinsBetween(b, {a,c}) = %v", js)
	}
	// table c against {a} → none.
	if js := b.JoinsBetween("c", 1<<0); len(js) != 0 {
		t.Fatalf("JoinsBetween(c, {a}) = %v", js)
	}
	if fs := b.FiltersOn("a"); len(fs) != 1 || fs[0].Col.Column != "x" {
		t.Fatalf("FiltersOn(a) = %v", fs)
	}
	if fs := b.FiltersOn("c"); len(fs) != 0 {
		t.Fatalf("FiltersOn(c) = %v", fs)
	}
}

func TestConnected(t *testing.T) {
	b := chainABC()
	if !b.Connected() {
		t.Fatal("chain should be connected")
	}
	b.Joins = b.Joins[:1] // drop b-c edge
	if b.Connected() {
		t.Fatal("should be disconnected")
	}
	single := &Block{Tables: []string{"a"}}
	if !single.Connected() {
		t.Fatal("single table is connected")
	}
	empty := &Block{}
	if empty.Connected() {
		t.Fatal("empty block is not connected")
	}
}

func TestTableIndex(t *testing.T) {
	b := chainABC()
	if b.TableIndex("a") != 0 || b.TableIndex("c") != 2 || b.TableIndex("zz") != -1 {
		t.Fatal("TableIndex wrong")
	}
}

func TestStringRendering(t *testing.T) {
	b := chainABC()
	b.Filters = []Filter{{Col: ColRef{"a", "x"}, Op: catalog.OpLt, Value: 500}}
	b.OrderBy = &ColRef{"a", "id"}
	s := b.String()
	for _, want := range []string{"SELECT * FROM a, b, c", "a.id = b.aid", "a.x < 500", "ORDER BY a.id"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	bare := &Block{Tables: []string{"a"}}
	if strings.Contains(bare.String(), "WHERE") {
		t.Fatal("bare block should have no WHERE")
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := chainABC()
	b.OrderBy = &ColRef{"a", "id"}
	c := b.Clone()
	c.Tables[0] = "zz"
	c.Joins[0].Left.Table = "zz"
	c.OrderBy.Table = "zz"
	if b.Tables[0] != "a" || b.Joins[0].Left.Table != "a" || b.OrderBy.Table != "a" {
		t.Fatal("Clone aliased the original")
	}
}

func TestCanonicalIsOrderInsensitive(t *testing.T) {
	b1 := chainABC()
	b2 := &Block{
		Tables: []string{"c", "b", "a"},
		Joins: []Join{
			{Left: ColRef{"c", "bid"}, Right: ColRef{"b", "id"}}, // flipped
			{Left: ColRef{"b", "aid"}, Right: ColRef{"a", "id"}}, // flipped
		},
	}
	if b1.Canonical() != b2.Canonical() {
		t.Fatalf("canonical mismatch:\n%s\n%s", b1.Canonical(), b2.Canonical())
	}
	b3 := chainABC()
	b3.OrderBy = &ColRef{"a", "id"}
	if b1.Canonical() == b3.Canonical() {
		t.Fatal("order-by must change the signature")
	}
}
