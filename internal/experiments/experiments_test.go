package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/optimizer"
	"lecopt/internal/query"
)

// TestAllExperimentsPass runs the complete harness: every experiment must
// execute and its qualitative claim must hold. This is the repository's
// single most important integration test — it is the paper reproduction.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is not short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run()
			if err != nil {
				t.Fatalf("%s failed to run: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Fatalf("table ID %q != experiment ID %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if !tab.Pass {
				var buf bytes.Buffer
				_ = tab.Render(&buf)
				t.Fatalf("%s claim FAILED:\n%s", e.ID, buf.String())
			}
		})
	}
}

func TestAllRegistryOrdered(t *testing.T) {
	exps := All()
	if len(exps) != 20 {
		t.Fatalf("want 20 experiments, got %d", len(exps))
	}
	for i, e := range exps {
		if numOf(e.ID) != i+1 {
			t.Fatalf("experiment %d out of order: %s", i, e.ID)
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("e5")
	if err != nil || e.ID != "E5" {
		t.Fatalf("ByID: %v %v", e, err)
	}
	if _, err := ByID("E99"); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatal("unknown experiment")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID:      "EX",
		Title:   "demo",
		Headers: []string{"col", "value"},
		Rows:    [][]string{{"a", "1"}, {"bb", "22"}},
		Notes:   []string{"a note"},
		Pass:    true,
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"EX — demo", "col", "bb", "note: a note", "claim: PASS"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
	tab.Pass = false
	buf.Reset()
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "claim: FAIL") {
		t.Fatal("FAIL marker missing")
	}
}

func TestExample11Scenario(t *testing.T) {
	cat, blk, err := Example11()
	if err != nil {
		t.Fatal(err)
	}
	if err := blk.Validate(cat); err != nil {
		t.Fatal(err)
	}
	// The reverse-engineered distinct count reproduces the 3000-page result.
	sigma, err := cat.JoinPageSelectivity("A", "k", "B", "k")
	if err != nil {
		t.Fatal(err)
	}
	pages := sigma * 1_000_000 * 400_000
	if pages < 2999 || pages > 3001 {
		t.Fatalf("result pages = %v, want ≈3000", pages)
	}
}

// TestJointEvalMatchesAnalytic: for a plan with point laws everywhere, the
// joint evaluator must equal the standard expected-cost evaluation.
func TestJointEvalMatchesAnalytic(t *testing.T) {
	cat, blk, err := Example11()
	if err != nil {
		t.Fatal(err)
	}
	mem := dist.MustNew([]float64{700, 2000}, []float64{0.2, 0.8})
	res, err := optimizer.AlgorithmC(cat, blk, Example11Opts(), mem)
	if err != nil {
		t.Fatal(err)
	}
	je := &jointEval{
		blk:      blk,
		sizeLaws: map[string]dist.Dist{},
		selLaws:  map[string]dist.Dist{optimizer.EdgeKey(blk.Joins[0]): dist.Point(3000.0 / (1_000_000 * 400_000))},
		mem:      mem,
	}
	got := je.EC(res.Plan)
	want, err := optimizer.ExpectedCost(res.Plan, []dist.Dist{mem})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(got, want) {
		t.Fatalf("jointEval %v vs ExpectedCost %v", got, want)
	}
}

// TestJointEvalSizeUncertainty: with a two-point size law, the joint EC is
// the probability mix of the two degenerate evaluations.
func TestJointEvalSizeUncertainty(t *testing.T) {
	cat := catalog.New()
	if err := cat.AddTable(catalog.MustTable("a", 1000, 100_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 100_000, Min: 0, Max: 1e9})); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(catalog.MustTable("b", 500, 50_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 50_000, Min: 0, Max: 1e9})); err != nil {
		t.Fatal(err)
	}
	blk := &query.Block{
		Tables: []string{"a", "b"},
		Joins: []query.Join{{
			Left:  query.ColRef{Table: "a", Column: "k"},
			Right: query.ColRef{Table: "b", Column: "k"},
		}},
	}
	if err := blk.Validate(cat); err != nil {
		t.Fatal(err)
	}
	mem := dist.Point(50)
	res, err := optimizer.LSC(cat, blk, optimizer.Options{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	sizeLaw := dist.MustNew([]float64{600, 1400}, []float64{0.5, 0.5})
	edge := optimizer.EdgeKey(blk.Joins[0])
	mk := func(sz dist.Dist) float64 {
		je := &jointEval{
			blk:      blk,
			sizeLaws: map[string]dist.Dist{"a": sz},
			selLaws:  map[string]dist.Dist{edge: dist.Point(1e-6)},
			mem:      mem,
		}
		return je.EC(res.Plan)
	}
	mixed := mk(sizeLaw)
	lo := mk(dist.Point(600))
	hi := mk(dist.Point(1400))
	if !relClose(mixed, 0.5*lo+0.5*hi) {
		t.Fatalf("mix %v vs %v", mixed, 0.5*lo+0.5*hi)
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtF(3) != "3" {
		t.Fatalf("fmtF(3) = %q", fmtF(3))
	}
	if fmtF(0.5) != "0.5000" {
		t.Fatalf("fmtF(0.5) = %q", fmtF(0.5))
	}
	if fmtF(123456.7) != "1.235e+05" {
		t.Fatalf("fmtF(123456.7) = %q", fmtF(123456.7))
	}
	if fmtRatio(1.23456) != "1.235" {
		t.Fatalf("fmtRatio = %q", fmtRatio(1.23456))
	}
}
