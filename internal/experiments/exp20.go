package experiments

import (
	"fmt"
	"math/rand"

	"lecopt/internal/dist"
	"lecopt/internal/optimizer"
	"lecopt/internal/workload"
)

// E20Refinement exercises §3.7's coarse-then-refine strategy: start from a
// handful of level-set cuts (nested-loop cliffs first), double the cut
// budget until the chosen plan and its EC estimate stabilize, fall back to
// the full law otherwise. Claims: the refined plan's exact EC never beats
// and rarely trails full Algorithm C (≤ 5% regret on every trial here),
// while the total buckets optimized over stay well below always-full.
func E20Refinement() (Table, error) {
	t := Table{
		ID:      "E20",
		Title:   "§3.7 coarse-then-refine: regret and work vs always-full optimization",
		Headers: []string{"law b", "trials", "avg regret", "worst regret", "avg buckets used", "full buckets used", "early stops"},
	}
	rng := rand.New(rand.NewSource(20))
	pass := true
	for _, lawB := range []int{32, 128, 512} {
		const trials = 12
		sumRegret, worst := 0.0, 0.0
		bucketsUsed, fullBuckets := 0, 0
		early := 0
		for i := 0; i < trials; i++ {
			sc, err := workload.Generate(workload.DefaultSpec(2+i%3, workload.Shape(i%4)), rng)
			if err != nil {
				return Table{}, err
			}
			vals := make([]float64, lawB)
			probs := make([]float64, lawB)
			for k := range vals {
				vals[k] = 3 + rng.Float64()*5000
				probs[k] = rng.Float64() + 0.01
			}
			mem := dist.MustNew(vals, probs)
			refined, stats, err := optimizer.AlgorithmCRefined(sc.Cat, sc.Block, optimizer.Options{}, mem, 2, 2)
			if err != nil {
				return Table{}, err
			}
			full, err := optimizer.AlgorithmC(sc.Cat, sc.Block, optimizer.Options{}, mem)
			if err != nil {
				return Table{}, err
			}
			regret := refined.EC/full.EC - 1
			if regret < -1e-9 || regret > 0.05 {
				pass = false
			}
			sumRegret += regret
			if regret > worst {
				worst = regret
			}
			for _, b := range stats.BucketsPerRound {
				bucketsUsed += b
			}
			fullBuckets += mem.Len()
			if stats.Converged {
				early++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", lawB), fmt.Sprintf("%d", trials),
			fmt.Sprintf("%.4f", sumRegret/trials), fmt.Sprintf("%.4f", worst),
			fmtRatio(float64(bucketsUsed) / trials), fmt.Sprintf("%d", fullBuckets/trials),
			fmt.Sprintf("%d/%d", early, trials),
		})
		// Work saved must grow with the law's resolution.
		if lawB >= 128 && float64(bucketsUsed)/trials > 0.75*float64(fullBuckets)/trials {
			pass = false
		}
	}
	t.Pass = pass
	t.Notes = append(t.Notes,
		"regret = EC(refined plan)/EC(full Algorithm C plan) - 1, both exact under the full law",
		"buckets used sums the coarse-law sizes over all refinement rounds (optimization cost ∝ buckets, Thm 3.2)",
		"cuts are level-set aligned, nested-loop cliffs first — quantile-only refinement can converge on cliff-blind plans")
	return t, nil
}
