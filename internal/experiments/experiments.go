// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md's per-experiment index (E1-E20), each
// regenerating a table that checks a claim of Chu, Halpern and Seshadri
// (PODS 1999) — Example 1.1, Proposition 3.1, Theorems 2.1/3.2/3.3/3.4,
// the Section 3.6 complexity results and the Section 3.7 bucketing
// strategies. cmd/lecbench renders every table; bench_test.go wraps each
// experiment in a testing.B benchmark; EXPERIMENTS.md records the outputs
// against the paper's claims.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Errors.
var (
	ErrUnknownExperiment = errors.New("experiments: unknown experiment")
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
	// Pass reports whether the experiment's qualitative claim held.
	Pass bool
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		return "  " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	status := "PASS"
	if !t.Pass {
		status = "FAIL"
	}
	_, err := fmt.Fprintf(w, "  claim: %s\n\n", status)
	return err
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() (Table, error)
}

// All returns every experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Example 1.1: LSC picks Plan 1, LEC picks Plan 2", E1MotivatingExample},
		{"E2", "LEC advantage grows with run-time variance", E2VarianceSweep},
		{"E3", "Theorem 2.1: System R DP equals exhaustive LSC", E3SystemRBaseline},
		{"E4", "Algorithm A never loses to mean/mode LSC", E4AlgorithmA},
		{"E5", "Proposition 3.1: top-c frontier probe bound", E5TopCFrontier},
		{"E6", "Algorithm B: candidate quality vs c", E6AlgorithmB},
		{"E7", "Theorem 3.3: Algorithm C is exactly LEC; hierarchy", E7AlgorithmC},
		{"E8", "Algorithm C cost scales linearly in buckets", E8AlgCScaling},
		{"E9", "Theorem 3.4: dynamic memory (Markov phases)", E9DynamicMemory},
		{"E10", "Algorithm D: joint memory/size/selectivity laws", E10AlgorithmD},
		{"E11", "§3.6.1 linear-time sort-merge expected cost", E11SortMergeLinear},
		{"E12", "§3.6.2 linear-time nested-loop expected cost", E12NestedLoopLinear},
		{"E13", "§3.6.3 result-size rebucketing", E13Rebucketing},
		{"E14", "§3.7 bucketing strategies", E14Bucketing},
		{"E15", "Cost-model shape vs measured engine I/O", E15EngineValidation},
		{"E16", "Fleet: optimize once, run many", E16Fleet},
		{"E17", "Whole-plan execution on the mini engine", E17EndToEnd},
		{"E18", "Parametric LEC plan cache [INSS92]", E18Parametric},
		{"E19", "§3.7 level-set expected-cost evaluation", E19LevelSetEC},
		{"E20", "§3.7 coarse-then-refine optimization", E20Refinement},
	}
	sort.SliceStable(exps, func(i, j int) bool {
		return numOf(exps[i].ID) < numOf(exps[j].ID)
	})
	return exps
}

func numOf(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("%w: %s", ErrUnknownExperiment, id)
}

// RunAll executes every experiment, rendering to w as it goes.
func RunAll(w io.Writer) ([]Table, error) {
	var out []Table
	for _, e := range All() {
		t, err := e.Run()
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		if w != nil {
			if err := t.Render(w); err != nil {
				return out, err
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// fmtF renders a float compactly.
func fmtF(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// fmtRatio renders a ratio with fixed precision.
func fmtRatio(v float64) string { return fmt.Sprintf("%.3f", v) }
