package experiments

import (
	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/optimizer"
	"lecopt/internal/query"
)

// Example11 builds the paper's motivating scenario: A = 1,000,000 pages,
// B = 400,000 pages, join result ≈ 3,000 pages, result ordered by the
// join column. The join key's distinct count is reverse-engineered so the
// catalog's standard 1/max(V) estimator reproduces the paper's posited
// 3,000-page result.
func Example11() (*catalog.Catalog, *query.Block, error) {
	cat := catalog.New()
	v := 4e13 / 3000.0
	a := catalog.MustTable("A", 1_000_000, 100_000_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: v, Min: 0, Max: 1e12})
	b := catalog.MustTable("B", 400_000, 40_000_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 1000, Min: 0, Max: 1e12})
	if err := cat.AddTable(a); err != nil {
		return nil, nil, err
	}
	if err := cat.AddTable(b); err != nil {
		return nil, nil, err
	}
	blk := &query.Block{
		Tables:  []string{"A", "B"},
		Joins:   []query.Join{{Left: query.ColRef{Table: "A", Column: "k"}, Right: query.ColRef{Table: "B", Column: "k"}}},
		OrderBy: &query.ColRef{Table: "A", Column: "k"},
	}
	if err := blk.Validate(cat); err != nil {
		return nil, nil, err
	}
	return cat, blk, nil
}

// Example11Opts restricts the plan space to the paper's two join methods
// so the optimizer's choice is exactly "Plan 1 vs Plan 2".
func Example11Opts() optimizer.Options {
	return optimizer.Options{Methods: []cost.JoinMethod{cost.SortMerge, cost.GraceHash}}
}
