package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false,
	"rewrite the golden experiment tables under testdata/golden")

// volatileColumns lists, per experiment, the columns whose cells are
// wall-clock measurements (or ratios of them). Everything else in every
// table is seeded-deterministic, so the paper-reproduction numbers are
// diff-checked cell by cell; timing cells are masked before comparison.
var volatileColumns = map[string][]string{
	"E8":  {"time/opt", "vs b=1"},
	"E11": {"naive", "linear", "speedup"},
	"E12": {"naive", "linear", "speedup"},
	"E13": {"exact time", "rebucket time"},
}

// maskVolatile blanks wall-clock cells so the rendered table is
// reproducible across runs and hosts.
func maskVolatile(tab *Table) {
	vol := volatileColumns[tab.ID]
	if len(vol) == 0 {
		return
	}
	volIdx := map[int]bool{}
	for i, h := range tab.Headers {
		for _, v := range vol {
			if h == v {
				volIdx[i] = true
			}
		}
	}
	if len(volIdx) != len(vol) {
		panic(fmt.Sprintf("%s: volatile column list does not match headers %v", tab.ID, tab.Headers))
	}
	for _, row := range tab.Rows {
		for i := range row {
			if volIdx[i] {
				row[i] = "<wall-clock>"
			}
		}
	}
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".golden")
}

// TestGoldenTables pins every E1-E20 experiment output byte for byte:
// paper-reproduction numbers are diff-checked, not just "ran without
// error". A legitimate change to an experiment regenerates its golden
// with:
//
//	go test ./internal/experiments -run TestGoldenTables -update
//
// Floating-point note: the goldens are rendered from pure Go float64
// arithmetic with fixed seeds, which is bit-stable on a given
// architecture; an FMA-fusing port (e.g. some arm64 code paths) that
// shifts a printed digit should regenerate the goldens rather than weaken
// the masking.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is not short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run()
			if err != nil {
				t.Fatalf("%s failed to run: %v", e.ID, err)
			}
			maskVolatile(&tab)
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
			path := goldenPath(e.ID)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden table (regenerate with -update): %v", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("%s output drifted from golden.\n--- want (%s)\n%s\n--- got\n%s\n--- first diff: %s",
					e.ID, path, want, buf.Bytes(), firstDiff(string(want), buf.String()))
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		w, g := "", ""
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d: want %q, got %q", i+1, w, g)
		}
	}
	return "identical"
}

// TestGoldenCoverage: a golden file must exist for every experiment and
// nothing else may squat in the golden directory — stale files would make
// the suite look covered when it is not.
func TestGoldenCoverage(t *testing.T) {
	if *updateGolden {
		t.Skip("directory is being rewritten")
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden directory missing (run -update): %v", err)
	}
	want := map[string]bool{}
	for _, e := range All() {
		want[e.ID+".golden"] = false
	}
	for _, ent := range entries {
		if _, ok := want[ent.Name()]; !ok {
			t.Errorf("stray golden file %s", ent.Name())
			continue
		}
		want[ent.Name()] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing golden file %s", name)
		}
	}
}
