package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/engine"
	"lecopt/internal/expcost"
	"lecopt/internal/optimizer"
	"lecopt/internal/parametric"
	"lecopt/internal/plan"
	"lecopt/internal/query"
	"lecopt/internal/storage"
)

// E17EndToEnd plans a three-table chain with the optimizer, then EXECUTES
// the chosen plans on the mini engine (real sort-merge / grace-hash /
// nested-loop implementations over synthetic pages, per-phase memory,
// enforcer sort included) and compares whole-plan measured I/O against the
// analytic C(P, m). Claims: measured cost is non-increasing in memory for
// every plan (same threshold structure) and the measured/model ratio stays
// within a small constant band.
func E17EndToEnd() (Table, error) {
	// Sizes scaled so Example 1.1's tension appears at engine scale: with
	// memory arms {7, 40}, sort-merge (pivot √L = 8) loses a level at the
	// low arm while grace hash (pivot √S ≈ 6.93) does not.
	const (
		tpp      = 6
		pagesA   = 64
		pagesB   = 48
		pagesC   = 12
		keyRange = 600
	)
	// Physical data.
	rng := rand.New(rand.NewSource(17))
	store := storage.NewStore()
	for _, spec := range []struct {
		name  string
		pages int
	}{{"A", pagesA}, {"B", pagesB}, {"C", pagesC}} {
		rel, err := storage.Generate(storage.GenSpec{
			Name: spec.name, Pages: spec.pages, TuplesPerPage: tpp, KeyRange: keyRange,
		}, rng)
		if err != nil {
			return Table{}, err
		}
		if err := store.Add(rel); err != nil {
			return Table{}, err
		}
	}
	eng := engine.New(store)

	// Matching catalog: statistics agree with the physical generator, so
	// the optimizer's size estimates equal the expected actual sizes.
	cat := catalog.New()
	for _, spec := range []struct {
		name  string
		pages float64
	}{{"A", pagesA}, {"B", pagesB}, {"C", pagesC}} {
		tab := catalog.MustTable(spec.name, spec.pages, spec.pages*tpp,
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: keyRange, Min: 0, Max: keyRange})
		if err := cat.AddTable(tab); err != nil {
			return Table{}, err
		}
	}
	blk := &query.Block{
		Tables: []string{"A", "B", "C"},
		Joins: []query.Join{
			{Left: query.ColRef{Table: "A", Column: "k"}, Right: query.ColRef{Table: "B", Column: "k"}},
			{Left: query.ColRef{Table: "B", Column: "k"}, Right: query.ColRef{Table: "C", Column: "k"}},
		},
		OrderBy: &query.ColRef{Table: "A", Column: "k"},
	}
	if err := blk.Validate(cat); err != nil {
		return Table{}, err
	}
	opts := optimizer.Options{Methods: []cost.JoinMethod{cost.SortMerge, cost.GraceHash}}

	// Plans under contrasting assumptions.
	lscHi, err := optimizer.LSC(cat, blk, opts, 40)
	if err != nil {
		return Table{}, err
	}
	mem := dist.MustNew([]float64{7, 40}, []float64{0.5, 0.5})
	lec, err := optimizer.AlgorithmC(cat, blk, opts, mem)
	if err != nil {
		return Table{}, err
	}
	// Ordered slice, not a map: row order must be deterministic for the
	// golden-table diffing of the experiment outputs.
	type namedPlan struct {
		name string
		p    *plan.Node
	}
	plans := []namedPlan{{"lsc@40", lscHi.Plan}}
	if lec.Plan.Signature() != lscHi.Plan.Signature() {
		plans = append(plans, namedPlan{"lec", lec.Plan})
	}

	t := Table{
		ID:      "E17",
		Title:   "Whole-plan execution: measured engine I/O vs analytic C(P,m) (3-table chain)",
		Headers: []string{"plan", "mem", "measured I/O", "model C(P,m)", "ratio"},
	}
	pass := true
	for _, np := range plans {
		name, p := np.name, np.p
		prev := int64(-1)
		for _, m := range []float64{7, 12, 40} {
			res, err := eng.ExecutePlan(p, []float64{m, m})
			if err != nil {
				return Table{}, err
			}
			store.Drop(res.Output.Name)
			model := p.CostAt(m)
			ratio := float64(res.Stats.IO()) / model
			if ratio < 0.3 || ratio > 3.5 {
				pass = false
			}
			if prev >= 0 {
				slack := prev / 20
				if slack < 2 {
					slack = 2
				}
				if res.Stats.IO() > prev+slack {
					pass = false
				}
			}
			prev = res.Stats.IO()
			t.Rows = append(t.Rows, []string{
				name, fmtF(m), fmt.Sprintf("%d", res.Stats.IO()), fmtF(model), fmtRatio(ratio),
			})
		}
	}
	t.Pass = pass
	t.Notes = append(t.Notes,
		"each plan executed end-to-end: scans, per-phase joins, intermediate hand-off, root sort",
		"measured I/O non-increasing in memory per plan; measured/model ratio within [0.3, 3.5]",
		"absolute ratios differ because the model charges the paper's simplified pass counts")
	return t, nil
}

// E18Parametric exercises the paper's proposed combination with parametric
// query optimization [INSS92]: precompute LEC plans for a coverage grid of
// anticipated laws, then at "start-up time" face laws on and off the grid
// and compare the cached selection against full re-optimization.
func E18Parametric() (Table, error) {
	cat, blk, err := Example11()
	if err != nil {
		return Table{}, err
	}
	opts := Example11Opts()
	grid := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	laws, err := parametric.CoverageGrid(700, 2000, grid)
	if err != nil {
		return Table{}, err
	}
	cache, err := parametric.Precompute(cat, blk, opts, laws)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "E18",
		Title: "Parametric LEC cache ([INSS92] + §3.4): cached plans vs full re-optimization",
		Headers: []string{
			"actual Pr(low)", "on grid", "EC(cache select)", "EC(full opt)", "regret",
		},
	}
	pass := true
	worst := 0.0
	// 0.001 sits below Example 1.1's plan-flip point (≈0.0021), far off
	// any grid law — the stress case for the cache.
	probes := []float64{0, 0.001, 0.01, 0.1, 0.2, 0.45, 0.7, 1}
	for _, p := range probes {
		actual, err := dist.Bimodal(700, 2000, p)
		if err != nil {
			return Table{}, err
		}
		_, cachedEC, err := cache.SelectByEC(actual)
		if err != nil {
			return Table{}, err
		}
		full, err := optimizer.AlgorithmC(cat, blk, opts, actual)
		if err != nil {
			return Table{}, err
		}
		regret := cachedEC/full.EC - 1
		if regret < -1e-9 {
			pass = false // the cache cannot beat full optimization
		}
		onGrid := false
		for _, g := range grid {
			if g == p {
				onGrid = true
			}
		}
		if onGrid && regret > 1e-9 {
			pass = false // grid laws must be answered optimally
		}
		if regret > worst {
			worst = regret
		}
		t.Rows = append(t.Rows, []string{
			fmtRatio(p), fmt.Sprintf("%v", onGrid), fmtF(cachedEC), fmtF(full.EC), fmt.Sprintf("%.4f", regret),
		})
	}
	if worst > 0.15 {
		pass = false
	}
	t.Pass = pass
	t.Notes = append(t.Notes,
		fmt.Sprintf("cache: %d anticipated laws collapsed to %d distinct plans", cache.Len(), cache.Plans()),
		"regret 0 everywhere: both contending plans are cached, and re-costing them under the",
		"actual law (Algorithm A over the cache) recovers the optimum without a plan-space search")
	return t, nil
}

// E19LevelSetEC checks the closing idea of Section 3.7: computing EC(P)
// with one cost evaluation per level set. The level-set evaluation must
// equal the dense per-bucket expectation while its evaluation count stays
// bounded by the plan's level-set count, independent of the law's b.
func E19LevelSetEC() (Table, error) {
	a := plan.NewScan("a", plan.AccessHeap, "", 1, 10_000)
	b := plan.NewScan("b", plan.AccessHeap, "", 1, 4_000)
	j1 := plan.NewJoin(cost.SortMerge, a, b, 2_000, plan.Order{})
	c := plan.NewScan("c", plan.AccessHeap, "", 1, 500)
	j2 := plan.NewJoin(cost.GraceHash, j1, c, 300, plan.Order{})
	root := plan.NewSort(j2, plan.Order{Table: "a", Column: "k"})

	breaks, err := expcost.PlanBreakpoints(root, 8)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "E19",
		Title:   "§3.7 level-set EC: cost evaluations vs law size b",
		Headers: []string{"b", "dense evals", "level-set evals", "equal"},
	}
	rng := rand.New(rand.NewSource(19))
	pass := true
	for _, bN := range []int{4, 16, 64, 256, 1024} {
		vals := make([]float64, bN)
		probs := make([]float64, bN)
		for i := range vals {
			vals[i] = 3 + rng.Float64()*20000
			probs[i] = rng.Float64() + 0.01
		}
		mem := dist.MustNew(vals, probs)
		want := mem.ExpectF(root.CostAt)
		got, evals, err := expcost.PlanECLevelSets(root, mem, 8)
		if err != nil {
			return Table{}, err
		}
		equal := math.Abs(got-want) <= 1e-9*math.Max(1, want)
		if !equal || evals > len(breaks)+1 {
			pass = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", bN), fmt.Sprintf("%d", mem.Len()), fmt.Sprintf("%d", evals), fmt.Sprintf("%v", equal),
		})
	}
	t.Pass = pass
	t.Notes = append(t.Notes,
		fmt.Sprintf("this plan has %d memory breakpoints → at most %d occupied level sets", len(breaks), len(breaks)+1),
		"evaluation count saturates while dense evaluation grows linearly in b")
	return t, nil
}
