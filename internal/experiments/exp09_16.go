package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"lecopt/internal/bucketing"
	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/engine"
	"lecopt/internal/envsim"
	"lecopt/internal/expcost"
	"lecopt/internal/optimizer"
	"lecopt/internal/plan"
	"lecopt/internal/query"
	"lecopt/internal/storage"
	"lecopt/internal/workload"
)

// E9DynamicMemory exercises Theorem 3.4: with memory evolving between
// phases as a Markov chain, dynamic Algorithm C (phase-law costing) finds
// the plan of least expected cost; plans chosen by static-law or
// point-estimate optimization can only tie or lose under the true phase
// laws.
func E9DynamicMemory() (Table, error) {
	t := Table{
		ID:      "E9",
		Title:   "Dynamic memory (Markov phases): EC under true phase laws",
		Headers: []string{"chain", "EC(dynC)", "EC(staticC)", "EC(LSC-mean)", "dyn=oracle"},
	}
	rng := rand.New(rand.NewSource(9))
	sc, err := workload.Generate(workload.DefaultSpec(4, workload.Chain), rng)
	if err != nil {
		return Table{}, err
	}
	states := []float64{8, 64, 2048}
	init, err := dist.Uniform(states...)
	if err != nil {
		return Table{}, err
	}
	chains := []struct {
		name string
		mk   func() (*dist.Chain, error)
	}{
		{"sticky(0.9)", func() (*dist.Chain, error) { return dist.Sticky(states, 0.9) }},
		{"volatile walk", func() (*dist.Chain, error) { return dist.RandomWalk(states, 0.45, 0.45) }},
		{"drift down", func() (*dist.Chain, error) { return dist.RandomWalk(states, 0.05, 0.6) }},
	}
	pass := true
	for _, cs := range chains {
		chain, err := cs.mk()
		if err != nil {
			return Table{}, err
		}
		laws, err := chain.PhaseLaws(init, len(sc.Block.Tables)-1)
		if err != nil {
			return Table{}, err
		}
		dyn, err := optimizer.AlgorithmCDynamic(sc.Cat, sc.Block, optimizer.Options{}, init, chain)
		if err != nil {
			return Table{}, err
		}
		static, err := optimizer.AlgorithmC(sc.Cat, sc.Block, optimizer.Options{}, init)
		if err != nil {
			return Table{}, err
		}
		staticEC, err := optimizer.ExpectedCost(static.Plan, laws)
		if err != nil {
			return Table{}, err
		}
		lsc, err := optimizer.LSC(sc.Cat, sc.Block, optimizer.Options{}, init.Mean())
		if err != nil {
			return Table{}, err
		}
		lscEC, err := optimizer.ExpectedCost(lsc.Plan, laws)
		if err != nil {
			return Table{}, err
		}
		oracle, err := optimizer.ExhaustiveLEC(sc.Cat, sc.Block, optimizer.Options{}, laws)
		if err != nil {
			return Table{}, err
		}
		agrees := relClose(dyn.EC, oracle.EC)
		slack := 1e-9 * math.Max(1, lscEC)
		if !agrees || dyn.EC > staticEC+slack || dyn.EC > lscEC+slack {
			pass = false
		}
		t.Rows = append(t.Rows, []string{
			cs.name, fmtF(dyn.EC), fmtF(staticEC), fmtF(lscEC), fmt.Sprintf("%v", agrees),
		})
	}
	t.Pass = pass
	t.Notes = append(t.Notes, "oracle = exhaustive left-deep search costed with the same phase laws")
	return t, nil
}

// E10AlgorithmD optimizes under joint memory/size/selectivity uncertainty
// and scores every algorithm's plan with the exact joint-enumeration
// evaluator (independent of the DP's propagation).
func E10AlgorithmD() (Table, error) {
	cat := catalog.New()
	if err := cat.AddTable(catalog.MustTable("a", 40_000, 4_000_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 4_000_000, Min: 0, Max: 1e9})); err != nil {
		return Table{}, err
	}
	if err := cat.AddTable(catalog.MustTable("b", 10_000, 1_000_000,
		catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: 1_000_000, Min: 0, Max: 1e9})); err != nil {
		return Table{}, err
	}
	blk := &query.Block{
		Tables: []string{"a", "b"},
		Joins: []query.Join{{
			Left:  query.ColRef{Table: "a", Column: "k"},
			Right: query.ColRef{Table: "b", Column: "k"},
		}},
	}
	if err := blk.Validate(cat); err != nil {
		return Table{}, err
	}
	mem := dist.MustNew([]float64{60, 120, 320}, []float64{0.35, 0.35, 0.3})
	sizeA := dist.MustNew([]float64{15_000, 40_000, 90_000}, []float64{0.25, 0.5, 0.25})
	sigma, err := catalog.SelectivityDist(1e-6, 5, 0.6)
	if err != nil {
		return Table{}, err
	}
	selLaws := map[string]dist.Dist{optimizer.EdgeKey(blk.Joins[0]): sigma}
	sizeLaws := map[string]dist.Dist{"a": sizeA}
	opts := optimizer.Options{SizeBuckets: 1000}

	je := &jointEval{blk: blk, sizeLaws: cloneLaws(sizeLaws), selLaws: cloneLaws(selLaws), mem: mem}

	t := Table{
		ID:      "E10",
		Title:   "Algorithm D under joint uncertainty (2-way join; exact joint EC)",
		Headers: []string{"algorithm", "score", "joint EC", "method"},
	}
	resD, err := optimizer.AlgorithmD(cat, blk, opts, mem, selLaws, sizeLaws)
	if err != nil {
		return Table{}, err
	}
	resC, err := optimizer.AlgorithmC(cat, blk, opts, mem)
	if err != nil {
		return Table{}, err
	}
	lsc, err := optimizer.LSC(cat, blk, opts, mem.Mean())
	if err != nil {
		return Table{}, err
	}
	dEC := je.EC(resD.Plan)
	cEC := je.EC(resC.Plan)
	lscEC := je.EC(lsc.Plan)
	t.Rows = append(t.Rows,
		[]string{"algorithm-d", fmtF(resD.EC), fmtF(dEC), resD.Plan.Method.String()},
		[]string{"algorithm-c (point sizes)", fmtF(resC.EC), fmtF(cEC), resC.Plan.Method.String()},
		[]string{"lsc@mean", fmtF(lsc.EC), fmtF(lscEC), lsc.Plan.Method.String()},
	)
	slack := 1e-6 * math.Max(1, lscEC)
	t.Pass = dEC <= cEC+slack && dEC <= lscEC+slack && math.Abs(resD.EC-dEC) <= 1e-6*math.Max(1, dEC)
	t.Notes = append(t.Notes,
		"Algorithm D's own score equals the exact joint EC (no rebucketing loss at this scale)",
		"each node carries the four distributions of Figure 1")
	return t, nil
}

// cloneLaws copies a law map so the joint evaluator can fill defaults
// without mutating the caller's map.
func cloneLaws(in map[string]dist.Dist) map[string]dist.Dist {
	out := make(map[string]dist.Dist, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// E11SortMergeLinear times the O(b_M·b_A·b_B) triple loop against the
// O(b_M+b_A+b_B) algorithm of Section 3.6.1 and checks equality.
func E11SortMergeLinear() (Table, error) {
	return linearVsNaive("E11", "§3.6.1 sort-merge expected cost: naive vs linear", cost.SortMerge)
}

// E12NestedLoopLinear is the Section 3.6.2 analogue for page nested-loop.
func E12NestedLoopLinear() (Table, error) {
	return linearVsNaive("E12", "§3.6.2 nested-loop expected cost: naive vs linear", cost.PageNL)
}

func linearVsNaive(id, title string, method cost.JoinMethod) (Table, error) {
	t := Table{
		ID:      id,
		Title:   title,
		Headers: []string{"b (per var)", "naive", "linear", "speedup", "equal"},
	}
	rng := rand.New(rand.NewSource(11))
	mkLaw := func(b int, lo, hi float64) dist.Dist {
		vals := make([]float64, b)
		probs := make([]float64, b)
		for i := range vals {
			vals[i] = lo + (hi-lo)*rng.Float64()
			probs[i] = rng.Float64() + 0.01
		}
		return dist.MustNew(vals, probs)
	}
	pass := true
	var speedups []float64
	for _, b := range []int{4, 16, 64, 256} {
		a := mkLaw(b, 1, 1e6)
		bb := mkLaw(b, 1, 1e6)
		m := mkLaw(b, 2, 5000)
		reps := 2_000_000 / (b * b * b)
		if reps < 1 {
			reps = 1
		}
		naiveT := timeIt(reps, func() { expcost.JoinECNaive(method, a, bb, m) })
		linReps := reps * b
		linT := timeIt(linReps, func() { expcost.JoinECLinear(method, a, bb, m) })
		want := expcost.JoinECNaive(method, a, bb, m)
		got, _ := expcost.JoinECLinear(method, a, bb, m)
		equal := math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
		if !equal {
			pass = false
		}
		speedup := float64(naiveT) / float64(linT)
		speedups = append(speedups, speedup)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b), naiveT.String(), linT.String(), fmtRatio(speedup), fmt.Sprintf("%v", equal),
		})
	}
	// Claim: the speedup grows with b (asymptotically ~b²/3).
	if !(speedups[len(speedups)-1] > speedups[0]*2) {
		pass = false
	}
	t.Pass = pass
	return t, nil
}

// timeIt returns the per-call duration of f over reps calls.
func timeIt(reps int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

// E13Rebucketing measures Section 3.6.3: computing the result-size law
// with inputs rebucketed to ∛b buckets costs O(b) instead of O(b³) and
// keeps the law's mean exact.
func E13Rebucketing() (Table, error) {
	t := Table{
		ID:      "E13",
		Title:   "Result-size distribution: exact O(b³) vs rebucketed O(b)",
		Headers: []string{"b per input", "exact buckets", "rebucketed", "mean rel.err", "exact time", "rebucket time"},
	}
	rng := rand.New(rand.NewSource(13))
	mkLaw := func(b int, lo, hi float64) dist.Dist {
		vals := make([]float64, b)
		probs := make([]float64, b)
		for i := range vals {
			vals[i] = lo + (hi-lo)*rng.Float64()
			probs[i] = rng.Float64() + 0.01
		}
		return dist.MustNew(vals, probs)
	}
	pass := true
	for _, b := range []int{8, 27, 64, 125} {
		a := mkLaw(b, 100, 10_000)
		bb := mkLaw(b, 100, 10_000)
		s := mkLaw(b, 1e-5, 1e-3)
		exactT := timeIt(3, func() { expcost.ResultSizeExact(a, bb, s) })
		var got dist.Dist
		rebT := timeIt(3, func() {
			var err error
			got, err = expcost.ResultSizeDist(a, bb, s, b)
			if err != nil {
				panic(err)
			}
		})
		exact := expcost.ResultSizeExact(a, bb, s)
		relErr := math.Abs(got.Mean()-exact.Mean()) / exact.Mean()
		if got.Len() > b || relErr > 1e-6 {
			pass = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b), fmt.Sprintf("%d", exact.Len()), fmt.Sprintf("%d", got.Len()),
			fmt.Sprintf("%.2e", relErr), exactT.String(), rebT.String(),
		})
	}
	t.Pass = pass
	t.Notes = append(t.Notes, "mean preserved exactly: rebucketing representatives are conditional means")
	return t, nil
}

// E14Bucketing compares bucketing strategies (§3.7): with buckets aligned
// to the cost formulas' level sets, very few buckets already make the
// expected-cost estimates exact; uniform bucketing needs many more.
func E14Bucketing() (Table, error) {
	cat, blk, err := Example11()
	if err != nil {
		return Table{}, err
	}
	opts := Example11Opts()
	// Fine-grained "true" law over [2, 5000].
	fine, err := dist.EquiWidth(2, 5000, 400, func(c float64) float64 { return 1 + c/5000 })
	if err != nil {
		return Table{}, err
	}
	fineLaws := []dist.Dist{fine}
	optC, err := optimizer.AlgorithmC(cat, blk, opts, fine)
	if err != nil {
		return Table{}, err
	}
	bounds := bucketing.Boundaries(
		[]cost.JoinMethod{cost.SortMerge, cost.GraceHash},
		[][2]float64{{1_000_000, 400_000}},
		[]float64{3000},
	)
	t := Table{
		ID:      "E14",
		Title:   "Bucketing strategies: plan regret and EC-estimate error vs b",
		Headers: []string{"b", "strategy", "regret", "max EC est.err"},
	}
	pass := true
	results := map[string]map[int][2]float64{}
	for _, strat := range []bucketing.Strategy{bucketing.Uniform, bucketing.Quantile, bucketing.LevelSet} {
		results[strat.String()] = map[int][2]float64{}
		for _, b := range []int{2, 3, 5, 8, 16} {
			coarse, err := bucketing.Coarsen(fine, b, strat, bounds)
			if err != nil {
				return Table{}, err
			}
			res, err := optimizer.AlgorithmC(cat, blk, opts, coarse)
			if err != nil {
				return Table{}, err
			}
			trueEC, err := optimizer.ExpectedCost(res.Plan, fineLaws)
			if err != nil {
				return Table{}, err
			}
			regret := trueEC/optC.EC - 1
			if regret < -1e-9 {
				pass = false // nothing beats optimizing on the true law
			}
			estErr := maxEstimateError(cat, blk, opts, coarse, fine)
			results[strat.String()][b] = [2]float64{regret, estErr}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", b), strat.String(),
				fmt.Sprintf("%.4f", regret), fmt.Sprintf("%.4f", estErr),
			})
		}
	}
	// Claims: (i) the level-set estimate is never worse than uniform's at
	// the same budget; (ii) with all seven breakpoints covered (b=8: √L,
	// ∛L, √S, ∛S and the three sort thresholds) the level-set estimate is
	// EXACT, while uniform at the same budget still errs.
	for _, b := range []int{2, 3, 5, 8, 16} {
		if results[bucketing.LevelSet.String()][b][1] > results[bucketing.Uniform.String()][b][1]+1e-9 {
			pass = false
		}
	}
	ls8 := results[bucketing.LevelSet.String()][8]
	un8 := results[bucketing.Uniform.String()][8]
	if ls8[1] > 1e-9 || un8[1] < 1e-6 || ls8[0] > 1e-9 {
		pass = false
	}
	t.Pass = pass
	t.Notes = append(t.Notes,
		"regret = EC(plan chosen with coarse law)/EC(plan chosen with true law) - 1, both under the true law",
		"est.err = max over all candidate plans of |EC_coarse - EC_true|/EC_true",
		"the plan space has 7 memory breakpoints (2 joins × 2 + sort × 3): level-set is exact from b=8 on")
	return t, nil
}

// maxEstimateError returns the worst relative EC-estimation error over the
// two candidate root plans of Example 1.1 when costing with the coarse law
// instead of the fine law.
func maxEstimateError(cat *catalog.Catalog, blk *query.Block, opts optimizer.Options, coarse, fine dist.Dist) float64 {
	plans, err := optimizer.AllLeftDeepPlans(cat, blk, opts)
	if err != nil {
		return math.NaN()
	}
	worst := 0.0
	for _, p := range plans {
		ecFine, err1 := optimizer.ExpectedCost(p, []dist.Dist{fine})
		ecCoarse, err2 := optimizer.ExpectedCost(p, []dist.Dist{coarse})
		if err1 != nil || err2 != nil {
			return math.NaN()
		}
		if e := math.Abs(ecCoarse-ecFine) / ecFine; e > worst {
			worst = e
		}
	}
	return worst
}

// E15EngineValidation sweeps memory and compares the analytic formulas
// against the mini engine's measured I/O: same plateaus, same thresholds,
// same winner — the "shape" claim of DESIGN.md.
func E15EngineValidation() (Table, error) {
	rng := rand.New(rand.NewSource(15))
	store := storage.NewStore()
	a, err := storage.Generate(storage.GenSpec{Name: "A", Pages: 64, TuplesPerPage: 8, KeyRange: 50_000}, rng)
	if err != nil {
		return Table{}, err
	}
	b, err := storage.Generate(storage.GenSpec{Name: "B", Pages: 9, TuplesPerPage: 8, KeyRange: 50_000}, rng)
	if err != nil {
		return Table{}, err
	}
	if err := store.Add(a); err != nil {
		return Table{}, err
	}
	if err := store.Add(b); err != nil {
		return Table{}, err
	}
	e := engine.New(store)
	t := Table{
		ID:      "E15",
		Title:   "Measured engine I/O vs analytic formulas (A=64, B=9 pages)",
		Headers: []string{"mem", "SM meas", "SM model", "SM ratio", "GH meas", "GH model", "GH ratio", "NL meas", "NL model"},
	}
	// mem=3 is excluded from the claims: with fan-out 2 the engine's
	// recursive partitioning/merging costs exceed the paper's "simplified
	// to three cases" 6-pass floor (footnote 2) — exactly the kind of
	// detail the simplification drops.
	mems := []int{4, 6, 9, 12, 20, 40, 80}
	monotone := true
	bandOK := true
	ghNeverWrongWinner := true
	prev := map[cost.JoinMethod]int64{}
	for _, mem := range mems {
		row := []string{fmt.Sprintf("%d", mem)}
		measured := map[cost.JoinMethod]int64{}
		model := map[cost.JoinMethod]float64{}
		for _, m := range []cost.JoinMethod{cost.SortMerge, cost.GraceHash, cost.PageNL} {
			_, st, err := e.Join(engine.JoinSpec{Method: m, Outer: "A", Inner: "B", OuterCol: "k", InnerCol: "k"}, mem)
			if err != nil {
				return Table{}, err
			}
			measured[m] = st.IO()
			model[m] = cost.JoinIO(m, 64, 9, float64(mem))
			// Near-monotone: allow ≤ max(2 pages, 1%) wiggle — higher hash
			// fan-out leaves more partially-filled partition tail pages.
			if p, ok := prev[m]; ok {
				slack := p / 50
				if slack < 2 {
					slack = 2
				}
				if st.IO() > p+slack {
					monotone = false
				}
			}
			prev[m] = st.IO()
			ratio := float64(st.IO()) / model[m]
			if m != cost.PageNL {
				if ratio < 0.45 || ratio > 3.05 {
					bandOK = false
				}
				row = append(row, fmt.Sprintf("%d", st.IO()), fmtF(model[m]), fmtRatio(ratio))
			} else {
				row = append(row, fmt.Sprintf("%d", st.IO()), fmtF(model[m]))
			}
		}
		// One-sided winner consistency: wherever the model says grace hash
		// is no worse than sort-merge (true at every sweep point, since
		// GH's pivot is the smaller input), the measurement must agree.
		if model[cost.GraceHash] <= model[cost.SortMerge] && measured[cost.GraceHash] > measured[cost.SortMerge] {
			ghNeverWrongWinner = false
		}
		t.Rows = append(t.Rows, row)
	}
	t.Pass = monotone && bandOK && ghNeverWrongWinner
	t.Notes = append(t.Notes,
		"measured I/O is non-increasing in memory for every method (same plateau structure)",
		"SM/GH measured-to-model ratios stay within [0.45, 3.05]: same shape, different pass constants",
		"at high memory the real grace hash degenerates to an in-memory hash join (A+B), beating the",
		"paper's partition-based 2(A+B) floor — the model never predicts the wrong SM-vs-GH winner")
	return t, nil
}

// E16Fleet simulates the paper's "optimize once, execute repeatedly"
// setting: the warehouse query fleet is planned once per strategy, then
// run thousands of times under a volatile environment; total realized I/O
// is compared.
func E16Fleet() (Table, error) {
	cat, queries, err := workload.Warehouse()
	if err != nil {
		return Table{}, err
	}
	envs, err := workload.StandardEnvs()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "E16",
		Title:   "Warehouse fleet (4 queries × 3000 runs): realized total I/O",
		Headers: []string{"environment", "LSC fleet", "LEC fleet", "LEC/LSC"},
	}
	pass := true
	sawWin := false
	for _, ne := range envs {
		if ne.Name == "point-1000" || ne.Name == "markov-sticky" || ne.Name == "zipf-levels" {
			continue // keep the table focused; covered by other experiments
		}
		var lscTotal, lecTotal float64
		for qi, q := range queries {
			var lscPlan, lecPlan *plan.Node
			lscRes, err := optimizer.LSC(cat, q, optimizer.Options{}, ne.Env.Mem.Mean())
			if err != nil {
				return Table{}, err
			}
			lscPlan = lscRes.Plan
			if ne.Env.Chain != nil {
				r, err := optimizer.AlgorithmCDynamic(cat, q, optimizer.Options{}, ne.Env.Mem, ne.Env.Chain)
				if err != nil {
					return Table{}, err
				}
				lecPlan = r.Plan
			} else {
				r, err := optimizer.AlgorithmC(cat, q, optimizer.Options{}, ne.Env.Mem)
				if err != nil {
					return Table{}, err
				}
				lecPlan = r.Plan
			}
			tour := &envsim.Tournament{Names: []string{"lsc", "lec"}, Plans: []*plan.Node{lscPlan, lecPlan}}
			res, err := tour.Run(ne.Env, 3000, rand.New(rand.NewSource(int64(1600+qi))))
			if err != nil {
				return Table{}, err
			}
			lscTotal += res.Stats[0].Total
			lecTotal += res.Stats[1].Total
		}
		ratio := lecTotal / lscTotal
		if ratio > 1.001 {
			pass = false
		}
		if ratio < 0.999 {
			sawWin = true
		}
		t.Rows = append(t.Rows, []string{ne.Name, fmtF(lscTotal), fmtF(lecTotal), fmtRatio(ratio)})
	}
	t.Pass = pass && sawWin
	t.Notes = append(t.Notes, "common random numbers: both fleets see identical sampled memory sequences")
	return t, nil
}
