package experiments

import (
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/optimizer"
	"lecopt/internal/plan"
	"lecopt/internal/query"
)

// jointEval computes the EXACT expected cost of a left-deep plan under
// joint uncertainty: base-size laws per table, selectivity laws per join
// edge and a memory law, all independent. It enumerates every realization
// of the size/selectivity variables (exponential in their count — only for
// small scenarios) and, per realization, derives each intermediate size
// bottom-up and takes the expectation over memory. It is the oracle that
// experiment E10 scores Algorithm D against, entirely independent of the
// DP's incremental scoring and of the rebucketed propagation.
type jointEval struct {
	blk      *query.Block
	sizeLaws map[string]dist.Dist // per-table filtered size (Point if absent)
	selLaws  map[string]dist.Dist // per-EdgeKey selectivity (Point if absent)
	mem      dist.Dist
}

// EC evaluates the plan.
func (je *jointEval) EC(p *plan.Node) float64 {
	tables, edges := je.variables(p)
	total := 0.0
	var rec func(i int, prob float64, sizes map[string]float64, sels map[string]float64)
	rec = func(i int, prob float64, sizes map[string]float64, sels map[string]float64) {
		if i < len(tables) {
			law := je.sizeLaws[tables[i]]
			for k := 0; k < law.Len(); k++ {
				sizes[tables[i]] = law.Value(k)
				rec(i+1, prob*law.Prob(k), sizes, sels)
			}
			return
		}
		ei := i - len(tables)
		if ei < len(edges) {
			law := je.selLaws[edges[ei]]
			for k := 0; k < law.Len(); k++ {
				sels[edges[ei]] = law.Value(k)
				rec(i+1, prob*law.Prob(k), sizes, sels)
			}
			return
		}
		total += prob * je.costUnder(p, sizes, sels)
	}
	rec(0, 1, map[string]float64{}, map[string]float64{})
	return total
}

// variables lists the plan's tables and the edge keys it can realize,
// defaulting absent laws to point estimates taken from the plan's
// annotations.
func (je *jointEval) variables(p *plan.Node) (tables []string, edges []string) {
	for _, t := range p.Relations() {
		if _, ok := je.sizeLaws[t]; !ok {
			je.sizeLaws[t] = dist.Point(leafPages(p, t))
		}
		tables = append(tables, t)
	}
	for _, j := range je.blk.Joins {
		key := optimizer.EdgeKey(j)
		if _, ok := je.selLaws[key]; !ok {
			je.selLaws[key] = dist.Point(sigmaOf(je, j))
		}
		edges = append(edges, key)
	}
	return tables, edges
}

func leafPages(p *plan.Node, table string) float64 {
	pages := 1.0
	p.Walk(func(n *plan.Node) {
		if n.Kind == plan.KindScan && n.Table == table {
			pages = n.OutPages
		}
	})
	return pages
}

// sigmaOf is only used when no selectivity law was provided; the caller's
// scenarios always provide laws for the edges under study, so a neutral
// estimate suffices for the remainder.
func sigmaOf(_ *jointEval, _ query.Join) float64 { return 1 }

// costUnder computes E_M[C(P, sizes, sels, M)] for one realization: walk
// the tree computing realized intermediate sizes, then expectation over
// memory of the sum of phase costs.
func (je *jointEval) costUnder(p *plan.Node, sizes map[string]float64, sels map[string]float64) float64 {
	type nodeCost struct {
		pages float64
		// perMem accumulates the join/sort cost as a function of memory;
		// scans contribute constants.
		constPart float64
		memParts  []func(m float64) float64
	}
	var rec func(n *plan.Node) nodeCost
	rec = func(n *plan.Node) nodeCost {
		switch n.Kind {
		case plan.KindScan:
			// Only materialized access paths charge here; an unfiltered
			// heap scan's base read is part of the consuming operator's
			// formula (mirrors plan.CostPhases / the DP leaf scores).
			io := 0.0
			if n.Materialized() {
				io = n.AccessIO()
			}
			return nodeCost{pages: sizes[n.Table], constPart: io}
		case plan.KindSort:
			child := rec(n.Child)
			if n.Child.Kind == plan.KindScan && !n.Child.Materialized() {
				child.constPart += n.Child.AccessIO()
			}
			pages := child.pages
			child.memParts = append(child.memParts, func(m float64) float64 {
				return cost.SortIO(pages, m)
			})
			return child
		default: // join
			l := rec(n.Left)
			r := rec(n.Right)
			sigma := je.sigmaBetween(n, sels)
			out := l.pages * r.pages * sigma
			if out < 1 {
				out = 1
			}
			lp, rp := l.pages, r.pages
			method := n.Method
			parts := append(l.memParts, r.memParts...)
			parts = append(parts, func(m float64) float64 {
				return cost.JoinIO(method, lp, rp, m)
			})
			return nodeCost{pages: out, constPart: l.constPart + r.constPart, memParts: parts}
		}
	}
	nc := rec(p)
	return nc.constPart + je.mem.ExpectF(func(m float64) float64 {
		s := 0.0
		for _, f := range nc.memParts {
			s += f(m)
		}
		return s
	})
}

// sigmaBetween multiplies the realized selectivities of every edge between
// the join's right table and the left subtree's tables.
func (je *jointEval) sigmaBetween(n *plan.Node, sels map[string]float64) float64 {
	rightTables := map[string]bool{}
	for _, t := range n.Right.Relations() {
		rightTables[t] = true
	}
	leftTables := map[string]bool{}
	for _, t := range n.Left.Relations() {
		leftTables[t] = true
	}
	s := 1.0
	for _, j := range je.blk.Joins {
		lT, rT := j.Left.Table, j.Right.Table
		spans := (leftTables[lT] && rightTables[rT]) || (leftTables[rT] && rightTables[lT])
		if spans {
			s *= sels[optimizer.EdgeKey(j)]
		}
	}
	return s
}
