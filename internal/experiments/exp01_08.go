package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"lecopt/internal/dist"
	"lecopt/internal/optimizer"
	"lecopt/internal/workload"
)

// E1MotivatingExample reproduces Example 1.1 exactly: the classical
// optimizer (mean or modal memory) selects the sort-merge plan; the LEC
// algorithms select grace-hash + sort, whose expected cost is lower.
func E1MotivatingExample() (Table, error) {
	cat, blk, err := Example11()
	if err != nil {
		return Table{}, err
	}
	opts := Example11Opts()
	mem := dist.MustNew([]float64{700, 2000}, []float64{0.2, 0.8})
	laws := []dist.Dist{mem}

	t := Table{
		ID:      "E1",
		Title:   "Example 1.1 (A=1e6, B=4e5, result=3000 pages; mem {700:0.2, 2000:0.8})",
		Headers: []string{"algorithm", "plan", "C@2000", "C@700", "EC"},
	}
	type entry struct {
		name string
		run  func() (optimizer.Result, error)
	}
	entries := []entry{
		{"lsc@mode(2000)", func() (optimizer.Result, error) { return optimizer.LSC(cat, blk, opts, 2000) }},
		{"lsc@mean(1740)", func() (optimizer.Result, error) { return optimizer.LSC(cat, blk, opts, 1740) }},
		{"algorithm-a", func() (optimizer.Result, error) { return optimizer.AlgorithmA(cat, blk, opts, mem) }},
		{"algorithm-b(c=3)", func() (optimizer.Result, error) { return optimizer.AlgorithmB(cat, blk, opts, mem, 3) }},
		{"algorithm-c", func() (optimizer.Result, error) { return optimizer.AlgorithmC(cat, blk, opts, mem) }},
	}
	pass := true
	for _, e := range entries {
		res, err := e.run()
		if err != nil {
			return Table{}, err
		}
		ec, err := optimizer.ExpectedCost(res.Plan, laws)
		if err != nil {
			return Table{}, err
		}
		planName := "plan1 (sort-merge)"
		isPlan2 := strings.Contains(res.Plan.Signature(), "grace-hash")
		if isPlan2 {
			planName = "plan2 (grace-hash+sort)"
		}
		lec := strings.HasPrefix(e.name, "algorithm")
		if lec != isPlan2 {
			pass = false
		}
		t.Rows = append(t.Rows, []string{
			e.name, planName,
			fmtF(res.Plan.CostAt(2000)), fmtF(res.Plan.CostAt(700)), fmtF(ec),
		})
	}
	t.Notes = append(t.Notes,
		"paper: LSC (mean or mode) chooses Plan 1; the LEC plan is Plan 2, cheaper in expectation",
		"costs are the paper's printed numbers: the join formulas already read both inputs,",
		"and unfiltered heap scans hand the base relation to the join without a separate charge")
	t.Pass = pass
	return t, nil
}

// E2VarianceSweep increases the run-time variability of memory — the
// probability of landing in Example 1.1's contended 700-page state — and
// tracks the LSC plan's expected-cost penalty relative to the LEC plan.
// The law's variance is 1300²·p(1-p), strictly increasing over p ∈ [0, ½],
// so this is exactly the paper's "the greater the run-time variation in
// the values of parameters ... the greater the cost advantage of the LEC
// plan is likely to be".
func E2VarianceSweep() (Table, error) {
	cat, blk, err := Example11()
	if err != nil {
		return Table{}, err
	}
	opts := Example11Opts()
	t := Table{
		ID:      "E2",
		Title:   "LSC/LEC expected-cost ratio vs memory variability (arms 700/2000)",
		Headers: []string{"Pr(mem=700)", "std dev", "EC(LSC plan)", "EC(LEC plan)", "ratio"},
	}
	var ratios []float64
	pass := true
	// p stops below ½: at exactly ½ the mode is ambiguous and the modal
	// optimizer may happen to plan for the contended state itself.
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45} {
		mem, err := dist.Bimodal(700, 2000, p)
		if err != nil {
			return Table{}, err
		}
		laws := []dist.Dist{mem}
		// The classical optimizer plans at the modal value (2000 for all
		// p ≤ ½), as Example 1.1 describes.
		lsc, err := optimizer.LSC(cat, blk, opts, mem.Mode())
		if err != nil {
			return Table{}, err
		}
		lscEC, err := optimizer.ExpectedCost(lsc.Plan, laws)
		if err != nil {
			return Table{}, err
		}
		lec, err := optimizer.AlgorithmC(cat, blk, opts, mem)
		if err != nil {
			return Table{}, err
		}
		ratio := lscEC / lec.EC
		if len(ratios) > 0 && ratio < ratios[len(ratios)-1]-1e-9 {
			pass = false // advantage must not shrink as variability grows
		}
		if ratio < 1-1e-9 {
			pass = false
		}
		ratios = append(ratios, ratio)
		t.Rows = append(t.Rows, []string{
			fmtRatio(p), fmtF(mem.Std()), fmtF(lscEC), fmtF(lec.EC), fmtRatio(ratio),
		})
	}
	if !(ratios[len(ratios)-1] > ratios[0]+0.05) {
		pass = false
	}
	t.Pass = pass
	t.Notes = append(t.Notes,
		"ratio 1.000 at p=0: with a point law the LEC plan IS the LSC plan",
		"the LEC plan switches to grace-hash+sort as soon as p > ~0.002 (6000 extra I/O vs p·2.8e6)")
	return t, nil
}

// E3SystemRBaseline verifies Theorem 2.1 on random scenarios: the DP's
// plan cost equals the exhaustive left-deep minimum at a fixed point.
func E3SystemRBaseline() (Table, error) {
	t := Table{
		ID:      "E3",
		Title:   "System R DP vs exhaustive left-deep search (fixed memory)",
		Headers: []string{"tables", "trials", "exact agreements"},
	}
	rng := rand.New(rand.NewSource(3))
	pass := true
	for _, n := range []int{2, 3, 4} {
		const trials = 15
		agree := 0
		for i := 0; i < trials; i++ {
			sc, err := workload.Generate(workload.DefaultSpec(n, workload.Shape(i%4)), rng)
			if err != nil {
				return Table{}, err
			}
			mem := math.Trunc(3 + rng.Float64()*2000)
			dp, err := optimizer.LSC(sc.Cat, sc.Block, optimizer.Options{}, mem)
			if err != nil {
				return Table{}, err
			}
			oracle, err := optimizer.ExhaustiveLSC(sc.Cat, sc.Block, optimizer.Options{}, mem)
			if err != nil {
				return Table{}, err
			}
			if relClose(dp.EC, oracle.EC) {
				agree++
			}
		}
		if agree != trials {
			pass = false
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", trials), fmt.Sprintf("%d", agree)})
	}
	t.Pass = pass
	return t, nil
}

// E4AlgorithmA measures the black-box algorithm across the standard
// environments: its plan never loses to the mean- or mode-LSC plan, at the
// cost of b optimizer invocations.
func E4AlgorithmA() (Table, error) {
	t := Table{
		ID:      "E4",
		Title:   "Algorithm A vs classical LSC across environments (20 random queries each)",
		Headers: []string{"environment", "buckets", "avg EC(A)/EC(LSC-mean)", "worst", "avg candidates"},
	}
	envs, err := workload.StandardEnvs()
	if err != nil {
		return Table{}, err
	}
	rng := rand.New(rand.NewSource(4))
	pass := true
	for _, ne := range envs {
		if ne.Env.Chain != nil {
			continue // Algorithm A is a static-law construction
		}
		sum, worst, cands := 0.0, 0.0, 0.0
		const trials = 20
		for i := 0; i < trials; i++ {
			sc, err := workload.Generate(workload.DefaultSpec(2+i%3, workload.Shape(i%4)), rng)
			if err != nil {
				return Table{}, err
			}
			laws := []dist.Dist{ne.Env.Mem}
			a, err := optimizer.AlgorithmA(sc.Cat, sc.Block, optimizer.Options{}, ne.Env.Mem)
			if err != nil {
				return Table{}, err
			}
			lsc, err := optimizer.LSC(sc.Cat, sc.Block, optimizer.Options{}, ne.Env.Mem.Mean())
			if err != nil {
				return Table{}, err
			}
			lscEC, err := optimizer.ExpectedCost(lsc.Plan, laws)
			if err != nil {
				return Table{}, err
			}
			r := a.EC / lscEC
			if r > worst {
				worst = r
			}
			if r > 1+1e-9 {
				pass = false
			}
			sum += r
			cands += float64(a.Candidates)
		}
		t.Rows = append(t.Rows, []string{
			ne.Name, fmt.Sprintf("%d", ne.Env.Mem.Len()),
			fmtRatio(sum / trials), fmtRatio(worst), fmtRatio(cands / trials),
		})
	}
	t.Pass = pass
	t.Notes = append(t.Notes, "ratio ≤ 1 everywhere: Algorithm A dominates mean-LSC by construction (§3.2)")
	return t, nil
}

// E5TopCFrontier checks Proposition 3.1: probing only the (i+1)(k+1) ≤ c
// frontier returns the exact top-c combinations within c + c·ln c probes.
func E5TopCFrontier() (Table, error) {
	t := Table{
		ID:      "E5",
		Title:   "Proposition 3.1 frontier: probes vs bound vs full c² scan",
		Headers: []string{"c", "probes", "c+c·ln c", "full c²", "exact top-c"},
	}
	rng := rand.New(rand.NewSource(5))
	pass := true
	for _, c := range []int{1, 2, 4, 8, 16, 32, 64} {
		left := make([]float64, 2*c)
		right := make([]float64, 2*c)
		for i := range left {
			left[i] = rng.Float64() * 1e6
		}
		for i := range right {
			right[i] = rng.Float64() * 1e6
		}
		sort.Float64s(left)
		sort.Float64s(right)
		pairs, probes := optimizer.TopCCombine(left, right, c)
		bound := float64(c) + float64(c)*math.Log(float64(c))
		exact := true
		brute := bruteTopC(left, right, c)
		if len(pairs) != len(brute) {
			exact = false
		} else {
			for i, p := range pairs {
				if math.Abs(left[p[0]]+right[p[1]]-brute[i]) > 1e-9 {
					exact = false
				}
			}
		}
		if float64(probes) > bound+1e-9 || !exact {
			pass = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c), fmt.Sprintf("%d", probes),
			fmt.Sprintf("%.1f", bound), fmt.Sprintf("%d", c*c), fmt.Sprintf("%v", exact),
		})
	}
	t.Pass = pass
	return t, nil
}

func bruteTopC(left, right []float64, c int) []float64 {
	var all []float64
	for _, l := range left {
		for _, r := range right {
			all = append(all, l+r)
		}
	}
	sort.Float64s(all)
	if len(all) > c {
		all = all[:c]
	}
	return all
}

// E6AlgorithmB sweeps the candidate-list depth c: more candidates can only
// improve the selected plan, approaching Algorithm C's LEC optimum.
func E6AlgorithmB() (Table, error) {
	t := Table{
		ID:      "E6",
		Title:   "Algorithm B: plan quality and frontier probes vs c (15 random queries)",
		Headers: []string{"c", "avg EC(B)/EC(C)", "worst", "avg probes"},
	}
	rng := rand.New(rand.NewSource(6))
	type scen struct {
		sc  workload.Scenario
		mem dist.Dist
		ecC float64
	}
	var scens []scen
	for i := 0; i < 15; i++ {
		sc, err := workload.Generate(workload.DefaultSpec(3+i%2, workload.Shape(i%4)), rng)
		if err != nil {
			return Table{}, err
		}
		mem, err := dist.SpreadAround(800+rng.Float64()*800, 600, 0.4)
		if err != nil {
			return Table{}, err
		}
		c, err := optimizer.AlgorithmC(sc.Cat, sc.Block, optimizer.Options{}, mem)
		if err != nil {
			return Table{}, err
		}
		scens = append(scens, scen{sc, mem, c.EC})
	}
	pass := true
	prevAvg := math.Inf(1)
	for _, c := range []int{1, 2, 4, 8} {
		sum, worst, probes := 0.0, 0.0, 0.0
		for _, s := range scens {
			b, err := optimizer.AlgorithmB(s.sc.Cat, s.sc.Block, optimizer.Options{}, s.mem, c)
			if err != nil {
				return Table{}, err
			}
			r := b.EC / s.ecC
			if r < 1-1e-9 {
				pass = false // B can never beat the true LEC plan
			}
			if r > worst {
				worst = r
			}
			sum += r
			probes += float64(b.Probes)
		}
		avg := sum / float64(len(scens))
		if avg > prevAvg*(1+1e-9) {
			pass = false
		}
		prevAvg = avg
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c), fmtRatio(avg), fmtRatio(worst), fmtF(probes / float64(len(scens))),
		})
	}
	t.Pass = pass
	t.Notes = append(t.Notes, "EC ratios ≥ 1 with equality when B's candidate set contains the LEC plan")
	return t, nil
}

// E7AlgorithmC verifies Theorem 3.3 on random scenarios and the
// EC(C) ≤ EC(B) ≤ EC(A) ≤ EC(LSC) hierarchy.
func E7AlgorithmC() (Table, error) {
	t := Table{
		ID:      "E7",
		Title:   "Theorem 3.3: Algorithm C equals exhaustive LEC; algorithm hierarchy",
		Headers: []string{"tables", "trials", "C = oracle", "hierarchy ok"},
	}
	rng := rand.New(rand.NewSource(7))
	pass := true
	for _, n := range []int{2, 3, 4} {
		const trials = 12
		agree, hier := 0, 0
		for i := 0; i < trials; i++ {
			sc, err := workload.Generate(workload.DefaultSpec(n, workload.Shape(i%4)), rng)
			if err != nil {
				return Table{}, err
			}
			mem, err := dist.SpreadAround(500+rng.Float64()*1500, 400, 0.3)
			if err != nil {
				return Table{}, err
			}
			laws := []dist.Dist{mem}
			resC, err := optimizer.AlgorithmC(sc.Cat, sc.Block, optimizer.Options{}, mem)
			if err != nil {
				return Table{}, err
			}
			oracle, err := optimizer.ExhaustiveLEC(sc.Cat, sc.Block, optimizer.Options{}, laws)
			if err != nil {
				return Table{}, err
			}
			if relClose(resC.EC, oracle.EC) {
				agree++
			}
			resA, err := optimizer.AlgorithmA(sc.Cat, sc.Block, optimizer.Options{}, mem)
			if err != nil {
				return Table{}, err
			}
			resB, err := optimizer.AlgorithmB(sc.Cat, sc.Block, optimizer.Options{}, mem, 3)
			if err != nil {
				return Table{}, err
			}
			lsc, err := optimizer.LSC(sc.Cat, sc.Block, optimizer.Options{}, mem.Mean())
			if err != nil {
				return Table{}, err
			}
			lscEC, err := optimizer.ExpectedCost(lsc.Plan, laws)
			if err != nil {
				return Table{}, err
			}
			slack := 1e-9 * math.Max(1, lscEC)
			if resC.EC <= resB.EC+slack && resB.EC <= resA.EC+slack && resA.EC <= lscEC+slack {
				hier++
			}
		}
		if agree != trials || hier != trials {
			pass = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", trials),
			fmt.Sprintf("%d", agree), fmt.Sprintf("%d", hier),
		})
	}
	t.Pass = pass
	return t, nil
}

// E8AlgCScaling measures Algorithm C's optimization time as the memory
// law's bucket count grows: the paper's claim is "b times the cost of the
// standard computation", i.e. linear in b.
func E8AlgCScaling() (Table, error) {
	t := Table{
		ID:      "E8",
		Title:   "Algorithm C optimization time vs memory buckets (6-table chain)",
		Headers: []string{"buckets", "time/opt", "vs b=1", "buckets ratio"},
	}
	rng := rand.New(rand.NewSource(8))
	sc, err := workload.Generate(workload.DefaultSpec(6, workload.Chain), rng)
	if err != nil {
		return Table{}, err
	}
	timeFor := func(b int) (time.Duration, error) {
		vals := make([]float64, b)
		probs := make([]float64, b)
		for i := range vals {
			vals[i] = 3 + float64(i)*4000/float64(b)
			probs[i] = 1
		}
		mem := dist.MustNew(vals, probs)
		// Warm-up plus best-of-3 timing.
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < 4; rep++ {
			start := time.Now()
			if _, err := optimizer.AlgorithmC(sc.Cat, sc.Block, optimizer.Options{}, mem); err != nil {
				return 0, err
			}
			if d := time.Since(start); rep > 0 && d < best {
				best = d
			}
		}
		return best, nil
	}
	base, err := timeFor(1)
	if err != nil {
		return Table{}, err
	}
	pass := true
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		d, err := timeFor(b)
		if err != nil {
			return Table{}, err
		}
		ratio := float64(d) / float64(base)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b), d.String(), fmtRatio(ratio), fmt.Sprintf("%d", b),
		})
		// Loose sanity: growth must stay well below quadratic in b.
		if b >= 8 && ratio > 4*float64(b) {
			pass = false
		}
	}
	t.Pass = pass
	t.Notes = append(t.Notes,
		"upper bound time ≈ α·b: each DP cost evaluation sums over the b buckets",
		"growth is sub-linear here because DP bookkeeping (node construction, signatures)",
		"dominates the cheap three-case formulas at these bucket counts")
	return t, nil
}

func relClose(a, b float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1 {
		return d < 1e-9
	}
	return d/m < 1e-9
}
