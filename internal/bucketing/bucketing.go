// Package bucketing implements the parameter-space partitioning strategies
// of Section 3.7 of Chu, Halpern and Seshadri (PODS 1999). The complexity
// of every LEC algorithm is linear (or worse) in the number of buckets, so
// the choice of buckets trades optimization cost against the fidelity of
// the expected-cost estimates.
//
// Three strategies are provided:
//
//   - Uniform: equal-width buckets over the parameter range — the obvious
//     baseline.
//   - Quantile: equal-probability buckets — adapts to the law's shape but
//     ignores the cost formulas.
//   - LevelSet: bucket boundaries at the cost formulas' discontinuities
//     (√L, ∛L, S+2, ...), the paper's key observation: "if we are
//     considering a sort-merge join for fixed relation sizes, we need deal
//     with only three buckets for memory sizes."
//
// Each strategy converts a fine-grained "true" law into a coarse law with
// at most b buckets; experiment E14 measures how plan quality degrades
// with b under each strategy.
package bucketing

import (
	"errors"
	"sort"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
)

// Errors.
var (
	ErrBadBuckets = errors.New("bucketing: bucket count must be positive")
)

// Strategy names a bucketing approach.
type Strategy uint8

// Strategies.
const (
	Uniform Strategy = iota
	Quantile
	LevelSet
)

func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case Quantile:
		return "quantile"
	case LevelSet:
		return "level-set"
	default:
		return "unknown"
	}
}

// Coarsen reduces a fine-grained law to at most b buckets using the given
// strategy. boundaries is consulted only by LevelSet (see Boundaries).
// Mass is preserved exactly; each output bucket's representative is the
// conditional mean of the absorbed fine buckets, so the law's mean is
// preserved too.
func Coarsen(law dist.Dist, b int, strategy Strategy, boundaries []float64) (dist.Dist, error) {
	if b <= 0 {
		return dist.Dist{}, ErrBadBuckets
	}
	if law.Len() <= b {
		return law, nil
	}
	switch strategy {
	case Uniform:
		return CoarsenByCuts(law, uniformCuts(law.Min(), law.Max(), b))
	case Quantile:
		return law.Rebucket(b)
	case LevelSet:
		cuts := selectCuts(boundaries, law.Min(), law.Max(), b-1)
		return CoarsenByCuts(law, cuts)
	default:
		return dist.Dist{}, ErrBadBuckets
	}
}

// uniformCuts returns b-1 interior cut points splitting [lo, hi] into b
// equal-width cells.
func uniformCuts(lo, hi float64, b int) []float64 {
	if b <= 1 || hi <= lo {
		return nil
	}
	cuts := make([]float64, 0, b-1)
	w := (hi - lo) / float64(b)
	for i := 1; i < b; i++ {
		cuts = append(cuts, lo+float64(i)*w)
	}
	return cuts
}

// selectCuts picks at most maxCuts of the given boundaries that fall
// strictly inside (lo, hi], preferring the ones nearest the middle of the
// probability range — in practice the √L and S+2 breakpoints dominate, and
// they are passed first by Boundaries.
func selectCuts(boundaries []float64, lo, hi float64, maxCuts int) []float64 {
	var inside []float64
	seen := map[float64]bool{}
	for _, c := range boundaries {
		if c > lo && c <= hi && !seen[c] {
			seen[c] = true
			inside = append(inside, c)
		}
	}
	if len(inside) > maxCuts {
		inside = inside[:maxCuts]
	}
	sort.Float64s(inside)
	return inside
}

// CoarsenByCuts merges fine buckets into the cells delimited by the sorted
// cut points (cell i is (cuts[i-1], cuts[i]]); empty cells disappear.
func CoarsenByCuts(law dist.Dist, cuts []float64) (dist.Dist, error) {
	nCells := len(cuts) + 1
	mass := make([]float64, nCells)
	moment := make([]float64, nCells)
	for i := 0; i < law.Len(); i++ {
		v, p := law.Value(i), law.Prob(i)
		cell := sort.SearchFloat64s(cuts, v)
		// SearchFloat64s returns the first cut ≥ v; v == cut belongs to
		// the lower cell (boundaries are "(lo, hi]").
		if cell < len(cuts) && v == cuts[cell] {
			// belongs to cell `cell` (lower side) — already correct.
			_ = cell
		}
		mass[cell] += p
		moment[cell] += v * p
	}
	var vals, probs []float64
	for i := 0; i < nCells; i++ {
		if mass[i] <= 0 {
			continue
		}
		vals = append(vals, moment[i]/mass[i])
		probs = append(probs, mass[i])
	}
	return dist.New(vals, probs)
}

// Boundaries collects the memory-dimension level-set boundaries of every
// join the optimizer might cost for a query: for each pair of estimated
// input sizes and each join method, the formula's breakpoints, plus the
// sort breakpoints of candidate result sizes. Earlier entries are
// considered more important by selectCuts, so callers should list the
// joins most likely to dominate first (e.g. the largest relations).
func Boundaries(methods []cost.JoinMethod, sizePairs [][2]float64, sortSizes []float64) []float64 {
	var out []float64
	for _, pair := range sizePairs {
		for _, m := range methods {
			out = append(out, cost.JoinBreakpoints(m, pair[0], pair[1], 4)...)
		}
	}
	for _, s := range sortSizes {
		out = append(out, cost.SortBreakpoints(s)...)
	}
	return out
}
