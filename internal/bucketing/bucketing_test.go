package bucketing

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func fineLaw(n int, lo, hi float64, seed int64) dist.Dist {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	probs := make([]float64, n)
	for i := range vals {
		vals[i] = lo + (hi-lo)*float64(i)/float64(n-1)
		probs[i] = rng.Float64() + 0.01
	}
	return dist.MustNew(vals, probs)
}

func TestCoarsenValidation(t *testing.T) {
	law := fineLaw(10, 0, 100, 1)
	if _, err := Coarsen(law, 0, Uniform, nil); !errors.Is(err, ErrBadBuckets) {
		t.Fatal("zero buckets")
	}
	if _, err := Coarsen(law, 3, Strategy(99), nil); !errors.Is(err, ErrBadBuckets) {
		t.Fatal("unknown strategy")
	}
	small, err := Coarsen(law, 20, Uniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !small.ApproxEqual(law, 0) {
		t.Fatal("already-small laws pass through")
	}
}

func TestCoarsenPreservesMassAndMean(t *testing.T) {
	law := fineLaw(200, 2, 5000, 7)
	bounds := Boundaries(cost.PaperMethods, [][2]float64{{1e6, 4e5}}, []float64{3000})
	for _, strat := range []Strategy{Uniform, Quantile, LevelSet} {
		for _, b := range []int{1, 2, 3, 5, 8, 16} {
			c, err := Coarsen(law, b, strat, bounds)
			if err != nil {
				t.Fatalf("%v b=%d: %v", strat, b, err)
			}
			if c.Len() > b {
				t.Fatalf("%v b=%d: got %d buckets", strat, b, c.Len())
			}
			approx(t, c.TotalMass(), 1, 1e-9, "mass")
			approx(t, c.Mean(), law.Mean(), 1e-6*law.Mean(), "mean")
		}
	}
}

// TestLevelSetExactWithFewBuckets is the heart of E14: if buckets align
// with the cost formula's level sets, the expected cost computed from the
// coarse law is EXACT, no matter how few buckets — whereas uniform
// bucketing at the same budget is generally wrong.
func TestLevelSetExactWithFewBuckets(t *testing.T) {
	const a, b = 1_000_000.0, 400_000.0
	law := fineLaw(400, 2, 5000, 11)
	f := func(m float64) float64 { return cost.JoinIO(cost.SortMerge, a, b, m) }
	exact := law.ExpectF(f)

	bounds := Boundaries([]cost.JoinMethod{cost.SortMerge}, [][2]float64{{a, b}}, nil)
	// Sort-merge has 3 level sets in memory → 3 buckets suffice.
	levelSet, err := Coarsen(law, 3, LevelSet, bounds)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, levelSet.ExpectF(f), exact, 1e-6*exact, "level-set EC exact at b=3")

	uniform, err := Coarsen(law, 3, Uniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(uniform.ExpectF(f)-exact) < 1e-6*exact {
		t.Fatal("uniform bucketing at b=3 should NOT be exact on this law (breakpoints at 100 and 1000 don't align)")
	}
}

// TestUniformConvergesWithBuckets: uniform error shrinks as b grows.
func TestUniformConvergesWithBuckets(t *testing.T) {
	const a, b = 1_000_000.0, 400_000.0
	law := fineLaw(512, 2, 5000, 13)
	f := func(m float64) float64 { return cost.JoinIO(cost.SortMerge, a, b, m) }
	exact := law.ExpectF(f)
	errAt := func(buckets int) float64 {
		c, err := Coarsen(law, buckets, Uniform, nil)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(c.ExpectF(f) - exact)
	}
	if !(errAt(256) <= errAt(4)+1e-9) {
		t.Fatalf("uniform bucketing error should shrink: b=4 err %v, b=256 err %v", errAt(4), errAt(256))
	}
}

func TestSelectCutsFiltersAndBounds(t *testing.T) {
	cuts := selectCuts([]float64{5, 50, 500, 5, 5000}, 1, 1000, 2)
	if len(cuts) != 2 {
		t.Fatalf("cuts = %v", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatal("cuts must ascend")
		}
	}
	// Out-of-range and duplicate boundaries dropped.
	cuts = selectCuts([]float64{0.5, 2000}, 1, 1000, 5)
	if len(cuts) != 0 {
		t.Fatalf("out-of-range cuts = %v", cuts)
	}
}

func TestCoarsenByCutsBoundaryMembership(t *testing.T) {
	// Value exactly at a cut belongs to the lower cell.
	law := dist.MustNew([]float64{10, 20, 30}, []float64{1, 1, 1})
	c, err := CoarsenByCuts(law, []float64{20})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cells = %d", c.Len())
	}
	// Lower cell holds {10, 20} → mass 2/3, mean 15.
	approx(t, c.Prob(0), 2.0/3, 1e-12, "lower mass")
	approx(t, c.Value(0), 15, 1e-12, "lower representative")
}

func TestBoundariesComposition(t *testing.T) {
	bs := Boundaries(cost.PaperMethods, [][2]float64{{1000, 100}}, []float64{50})
	if len(bs) == 0 {
		t.Fatal("no boundaries")
	}
	// Must include PageNL's S+2 breakpoint.
	found := false
	for _, b := range bs {
		if b == 102 {
			found = true
		}
	}
	if !found {
		t.Fatalf("S+2 breakpoint missing from %v", bs)
	}
	if got := Boundaries(nil, nil, nil); len(got) != 0 {
		t.Fatal("empty inputs yield no boundaries")
	}
}

func TestStrategyString(t *testing.T) {
	if Uniform.String() != "uniform" || Quantile.String() != "quantile" || LevelSet.String() != "level-set" {
		t.Fatal("strategy strings")
	}
	if Strategy(9).String() != "unknown" {
		t.Fatal("unknown strategy string")
	}
}
