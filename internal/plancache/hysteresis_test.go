package plancache

import (
	"testing"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/query"
)

// edgeCatalog builds a two-table catalog whose "k" distinct counts can be
// scaled; the base values sit just below a floor(log2) band boundary
// (15.6 -> band 3) so a small upward factor step crosses it.
func edgeCatalog(t *testing.T, factor float64) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, spec := range []struct {
		name     string
		distinct float64
	}{{"a", 15.6}, {"b", 24}} {
		tab, err := catalog.NewTable(spec.name, 100, 10000,
			catalog.Column{Name: "k", Type: catalog.TypeInt, Distinct: spec.distinct * factor, Min: 0, Max: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func edgeBlock() *query.Block {
	return &query.Block{
		Tables: []string{"a", "b"},
		Joins: []query.Join{{
			Left:  query.ColRef{Table: "a", Column: "k"},
			Right: query.ColRef{Table: "b", Column: "k"},
		}},
	}
}

// TestSignatureMarginBridgesBandEdge is the band-edge hysteresis property:
// a factor step that crosses a floor(log2) band boundary changes the
// primary banded signature (the historical cache split), but the stepped
// catalog's -margin probe signature equals the original catalog's primary
// signature — the key equality the hysteresis probe in core relies on.
func TestSignatureMarginBridgesBandEdge(t *testing.T) {
	before := edgeCatalog(t, 1)    // a.k distinct 15.6: band 3
	after := edgeCatalog(t, 1.1)   // a.k distinct 17.16: band 4 (crossed)
	within := edgeCatalog(t, 1.01) // a.k distinct 15.756: still band 3
	blk := edgeBlock()
	env := envsim.Env{Mem: dist.Point(100)}
	sig := func(cat *catalog.Catalog, margin float64) string {
		return SignatureMargin(cat, blk, env, nil, nil, optimizer.Options{}, 0, "algorithm-c", 2, margin)
	}

	base := sig(before, 0)
	if sig(within, 0) != base {
		t.Fatal("in-band drift must not change the banded signature")
	}
	stepped := sig(after, 0)
	if stepped == base {
		t.Fatal("the factor step should cross a band boundary (test setup broken)")
	}
	if got := sig(after, -0.25); got != base {
		t.Fatal("-margin probe signature of the stepped catalog must equal the neighbor's primary signature")
	}
	// And symmetrically: stepping back down, the +margin probe bridges.
	if got := sig(before, 0.25); got != stepped {
		t.Fatal("+margin probe signature must bridge the boundary downward")
	}
	// Exact keys ignore the margin entirely.
	exact := SignatureMargin(after, blk, env, nil, nil, optimizer.Options{}, 0, "algorithm-c", 0, -0.25)
	if exact != Signature(after, blk, env, nil, nil, optimizer.Options{}, 0, "algorithm-c", 0) {
		t.Fatal("margin must be a no-op for exact keys")
	}
}

// TestProbeDoesNotCountStats: Probe finds entries and refreshes recency
// without moving the hit/miss counters.
func TestProbeDoesNotCountStats(t *testing.T) {
	c := New[int](64)
	c.Put("x", 1)
	if _, ok := c.Probe("x"); !ok {
		t.Fatal("probe missed a present key")
	}
	if _, ok := c.Probe("y"); ok {
		t.Fatal("probe found a missing key")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("probe moved counters: %+v", st)
	}
}
