// Package plancache memoizes optimization results. Repeated queries are the
// norm in the serving workloads the ROADMAP targets — the same parameterized
// report runs thousands of times an hour against slowly-changing statistics —
// so a plan that took a full dynamic program to find should be found once.
//
// The cache is a sharded, mutex-protected LRU keyed by an opaque string; use
// Signature to build keys that cover everything the optimizer's answer
// depends on (catalog fingerprint, canonical query shape, environment-law
// digest, plan-space options and algorithm). Because statistics are hashed
// into the key, there is no explicit invalidation: updating the catalog
// changes the key and stale entries simply age out of the LRU.
//
// All methods are safe for concurrent use.
package plancache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

const shardCount = 16 // power of two; low-bits shard selection

// Cache is a sharded LRU mapping string keys to values of type V.
// The zero value is not usable; construct with New.
type Cache[V any] struct {
	shards    [shardCount]shard[V]
	seed      maphash.Seed
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type shard[V any] struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type lruEntry[V any] struct {
	key string
	val V
}

// New returns a cache holding at most capacity entries (minimum one per
// shard is enforced so a tiny capacity still caches something).
func New[V any](capacity int) *Cache[V] {
	perShard := capacity / shardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache[V]{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

func (c *Cache[V]) shardOf(key string) *shard[V] {
	return &c.shards[maphash.String(c.seed, key)&(shardCount-1)]
}

// shardOfBytes must agree with shardOf for equal key contents so string
// and byte lookups interleave freely; maphash guarantees Bytes(seed, b)
// == String(seed, string(b)).
func (c *Cache[V]) shardOfBytes(key []byte) *shard[V] {
	return &c.shards[maphash.Bytes(c.seed, key)&(shardCount-1)]
}

// Get returns the cached value for key and whether it was present, marking
// the entry most-recently-used on a hit.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Probe is Get without touching the hit/miss counters: the lookup used by
// band-edge hysteresis, which speculatively tries adjacent-band keys after
// a counted miss. Counting those speculative lookups would dilute the hit
// rate the cache reports for its *primary* keys. A found entry is still
// marked most-recently-used — serving a plan keeps it warm however it was
// found.
func (c *Cache[V]) Probe(key string) (V, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// GetBytes is Get keyed by the raw bytes of a key, for callers that build
// keys in a reusable buffer (AppendKey): the map lookup's string
// conversion stays on the stack, so a hit performs zero heap allocations.
// The key bytes are not retained.
func (c *Cache[V]) GetBytes(key []byte) (V, bool) {
	s := c.shardOfBytes(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[string(key)]; ok {
		s.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// ProbeBytes is Probe keyed by raw key bytes (see GetBytes).
func (c *Cache[V]) ProbeBytes(key []byte) (V, bool) {
	s := c.shardOfBytes(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[string(key)]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put stores key→val, evicting the shard's least-recently-used entry when
// the shard is full. Storing an existing key refreshes its value and recency.
func (c *Cache[V]) Put(key string, val V) {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.cap {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.items, oldest.Value.(*lruEntry[V]).key)
			c.evictions.Add(1)
		}
	}
	s.items[key] = s.order.PushFront(&lruEntry[V]{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits   uint64
	Misses uint64
	Size   int
	// Evictions counts LRU evictions since construction. A hit rate that
	// looks healthy while evictions climb means the working set exceeds
	// the capacity — entries are cycling, not resident.
	Evictions uint64
	// ShardSizes is the per-shard occupancy. Keys hash uniformly, so a
	// heavily skewed profile indicates a pathological key population
	// (e.g. everything collapsing into one drift band).
	ShardSizes []int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (st Stats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats returns a snapshot of the hit/miss/eviction counters, the current
// size and the per-shard occupancy.
func (c *Cache[V]) Stats() Stats {
	st := Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		ShardSizes: make([]int, shardCount),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.ShardSizes[i] = s.order.Len()
		s.mu.Unlock()
		st.Size += st.ShardSizes[i]
	}
	return st
}
