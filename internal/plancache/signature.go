package plancache

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/query"
)

// KeyLen is the byte length of every cache key: a hex-encoded SHA-256
// digest. Callers that look keys up with Cache.GetBytes/ProbeBytes can
// keep a reusable [KeyLen]-capacity buffer and avoid allocating per
// lookup (AppendKey / AppendKeyMargin).
const KeyLen = 2 * sha256.Size

// Signature builds a canonical cache key covering everything an
// optimization's outcome depends on:
//
//   - the catalog fingerprint — exact when driftBand <= 1, or the
//     drift-banded fingerprint (distinct counts bucketed into geometric
//     bands of base driftBand; see catalog.BandedFingerprint) otherwise,
//     so statistics drifting within a band keep hitting the same entry,
//   - the query's canonical shape (tables, predicates, ORDER BY — order
//     insensitive),
//   - a digest of the environment laws (memory distribution plus the full
//     Markov transition matrix when dynamic),
//   - the Algorithm D selectivity and size laws,
//   - the plan-space options — including executed-size feedback hints,
//     which change which plan is optimal — and algorithm name (and
//     Algorithm B's top-c).
//
// Options.Workers is deliberately excluded: the worker count changes how
// fast an answer is found, never which answer. With an exact fingerprint,
// two scenarios that hash equal are optimized identically, so memoized
// PlanReports can be shared; with a banded fingerprint they are optimized
// *equivalently up to in-band drift* — the deliberate approximation that
// lets drifting tenants share plans.
func Signature(cat *catalog.Catalog, blk *query.Block, env envsim.Env,
	selLaws, sizeLaws map[string]dist.Dist, opts optimizer.Options, topC int,
	alg string, driftBand float64) string {
	return SignatureMargin(cat, blk, env, selLaws, sizeLaws, opts, topC, alg, driftBand, 0)
}

// SignatureMargin is Signature with the catalog's distinct-count bands
// offset by margin band units (catalog.BandedFingerprintMargin) — the
// band-edge hysteresis probe key. Everything outside the catalog digest
// hashes identically to Signature, so a statistics state sitting within
// |margin| of a band boundary produces, under the matching-signed margin,
// the very key its across-the-boundary neighbor was cached under. Margin
// only applies to banded keys (driftBand > 1); with exact keys it is
// ignored.
func SignatureMargin(cat *catalog.Catalog, blk *query.Block, env envsim.Env,
	selLaws, sizeLaws map[string]dist.Dist, opts optimizer.Options, topC int,
	alg string, driftBand, margin float64) string {
	var key [KeyLen]byte
	return string(AppendKeyMargin(key[:0], cat, blk, env, selLaws, sizeLaws, opts, topC, alg, driftBand, margin))
}

// AppendKey appends the Signature key's KeyLen bytes to dst and returns
// the extended slice — the allocation-free form of Signature. When dst
// has KeyLen spare capacity and the scenario carries no Algorithm D laws
// and no size hints (the serving hot path), the call performs zero heap
// allocations: the digest preimage is built in a pooled buffer with
// strconv appends, hashed with sha256.Sum256 on the stack, and
// hex-encoded straight into dst.
func AppendKey(dst []byte, cat *catalog.Catalog, blk *query.Block, env envsim.Env,
	selLaws, sizeLaws map[string]dist.Dist, opts optimizer.Options, topC int,
	alg string, driftBand float64) []byte {
	return AppendKeyMargin(dst, cat, blk, env, selLaws, sizeLaws, opts, topC, alg, driftBand, 0)
}

// AppendKeyMargin is AppendKey with the band-edge hysteresis margin of
// SignatureMargin. AppendKeyMargin(nil, ...) == []byte(SignatureMargin(...))
// for all inputs.
func AppendKeyMargin(dst []byte, cat *catalog.Catalog, blk *query.Block, env envsim.Env,
	selLaws, sizeLaws map[string]dist.Dist, opts optimizer.Options, topC int,
	alg string, driftBand, margin float64) []byte {
	bp := preimagePool.Get().(*[]byte)
	pre := appendPreimage((*bp)[:0], cat, blk, env, selLaws, sizeLaws, opts, topC, alg, driftBand, margin)
	sum := sha256.Sum256(pre)
	*bp = pre
	preimagePool.Put(bp)
	return hex.AppendEncode(dst, sum[:])
}

// preimagePool recycles the digest preimage buffers; 2 KB covers a
// typical catalog-fingerprint + query + env description without growth.
var preimagePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// appendPreimage writes the canonical signature preimage. Every field is
// appended with strconv (floats in the same shortest-'g' form fmt's %v
// uses), so the preimage for a given scenario is byte-stable and building
// it allocates only for the sorted-key passes over non-empty law/hint
// maps. The memoized per-catalog fingerprint and per-block canonical
// shape are the prefix digests: the two largest inputs are hashed once
// per catalog version / per block, not per request.
func appendPreimage(b []byte, cat *catalog.Catalog, blk *query.Block, env envsim.Env,
	selLaws, sizeLaws map[string]dist.Dist, opts optimizer.Options, topC int,
	alg string, driftBand, margin float64) []byte {
	opts = opts.Normalized() // zero-value and explicit defaults hash equal
	b = append(b, "alg="...)
	b = append(b, alg...)
	b = append(b, " topc="...)
	b = strconv.AppendInt(b, int64(topC), 10)
	b = append(b, "\ncat="...)
	if driftBand > 1 {
		b = append(b, cat.BandedFingerprintMargin(driftBand, margin)...)
		b = append(b, " band="...)
		b = appendFloat(b, driftBand)
	} else {
		b = append(b, cat.Fingerprint()...)
	}
	b = append(b, "\nquery="...)
	b = append(b, blk.Canonical()...)
	b = append(b, "\nmem="...)
	b = appendDist(b, env.Mem)
	if env.Chain != nil {
		b = append(b, "chain states="...)
		n := env.Chain.Len()
		for i := 0; i < n; i++ {
			b = appendFloat(b, env.Chain.State(i))
			b = append(b, ',')
		}
		b = append(b, " rows="...)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b = appendFloat(b, env.Chain.Prob(i, j))
				b = append(b, ',')
			}
			b = append(b, ';')
		}
		b = append(b, '\n')
	}
	b = appendLawMap(b, "sel", selLaws)
	b = appendLawMap(b, "size", sizeLaws)
	b = appendHints(b, opts.SizeHints)
	b = append(b, "opts methods="...)
	for i, m := range opts.Methods {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, m.String()...)
	}
	b = append(b, " noidx="...)
	b = strconv.AppendBool(b, opts.DisableIndexes)
	b = append(b, " minpages="...)
	b = appendFloat(b, opts.MinPages)
	b = append(b, " sizebuckets="...)
	b = strconv.AppendInt(b, int64(opts.SizeBuckets), 10)
	b = append(b, " costmodel="...)
	b = append(b, opts.CostModel.String()...)
	b = append(b, '\n')
	return b
}

// appendFloat appends a float64 in fmt %v form (shortest 'g').
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendHints streams the executed-size feedback hints in sorted key order.
func appendHints(b []byte, hints map[string]float64) []byte {
	if len(hints) == 0 {
		return b
	}
	keys := make([]string, 0, len(hints))
	for k := range hints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = append(b, "hint "...)
		b = append(b, k...)
		b = append(b, '=')
		b = appendFloat(b, hints[k])
		b = append(b, '\n')
	}
	return b
}

// appendDist streams a distribution's support and probabilities.
func appendDist(b []byte, d dist.Dist) []byte {
	for i := 0; i < d.Len(); i++ {
		b = appendFloat(b, d.Value(i))
		b = append(b, ':')
		b = appendFloat(b, d.Prob(i))
		b = append(b, ',')
	}
	return append(b, '\n')
}

// appendLawMap streams a law map in sorted key order.
func appendLawMap(b []byte, label string, laws map[string]dist.Dist) []byte {
	if len(laws) == 0 {
		return b
	}
	keys := make([]string, 0, len(laws))
	for k := range laws {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = append(b, label...)
		b = append(b, ' ')
		b = append(b, k...)
		b = append(b, '=')
		b = appendDist(b, laws[k])
	}
	return b
}
