package plancache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/query"
)

// Signature builds a canonical cache key covering everything an
// optimization's outcome depends on:
//
//   - the catalog fingerprint (all table/column/histogram/index statistics),
//   - the query's canonical shape (tables, predicates, ORDER BY — order
//     insensitive),
//   - a digest of the environment laws (memory distribution plus the full
//     Markov transition matrix when dynamic),
//   - the Algorithm D selectivity and size laws,
//   - the plan-space options and algorithm name (and Algorithm B's top-c).
//
// Options.Workers is deliberately excluded: the worker count changes how
// fast an answer is found, never which answer. Two scenarios that hash
// equal are optimized identically, so memoized PlanReports can be shared.
func Signature(cat *catalog.Catalog, blk *query.Block, env envsim.Env,
	selLaws, sizeLaws map[string]dist.Dist, opts optimizer.Options, topC int, alg string) string {
	opts = opts.Normalized() // zero-value and explicit defaults hash equal
	h := sha256.New()
	fmt.Fprintf(h, "alg=%s topc=%d\n", alg, topC)
	fmt.Fprintf(h, "cat=%s\n", cat.Fingerprint())
	fmt.Fprintf(h, "query=%s\n", blk.Canonical())
	io.WriteString(h, "mem=")
	writeDist(h, env.Mem)
	if env.Chain != nil {
		states := env.Chain.States()
		fmt.Fprintf(h, "chain states=%v rows=", states)
		for i := range states {
			for j := range states {
				fmt.Fprintf(h, "%v,", env.Chain.Prob(i, j))
			}
			io.WriteString(h, ";")
		}
		io.WriteString(h, "\n")
	}
	writeLawMap(h, "sel", selLaws)
	writeLawMap(h, "size", sizeLaws)
	methods := make([]string, len(opts.Methods))
	for i, m := range opts.Methods {
		methods[i] = m.String()
	}
	fmt.Fprintf(h, "opts methods=%v noidx=%v minpages=%v sizebuckets=%d\n",
		methods, opts.DisableIndexes, opts.MinPages, opts.SizeBuckets)
	return hex.EncodeToString(h.Sum(nil))
}

// writeDist streams a distribution's support and probabilities.
func writeDist(w io.Writer, d dist.Dist) {
	for i := 0; i < d.Len(); i++ {
		fmt.Fprintf(w, "%v:%v,", d.Value(i), d.Prob(i))
	}
	io.WriteString(w, "\n")
}

// writeLawMap streams a law map in sorted key order.
func writeLawMap(w io.Writer, label string, laws map[string]dist.Dist) {
	if len(laws) == 0 {
		return
	}
	keys := make([]string, 0, len(laws))
	for k := range laws {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %s=", label, k)
		writeDist(w, laws[k])
	}
}
