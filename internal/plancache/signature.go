package plancache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/query"
)

// Signature builds a canonical cache key covering everything an
// optimization's outcome depends on:
//
//   - the catalog fingerprint — exact when driftBand <= 1, or the
//     drift-banded fingerprint (distinct counts bucketed into geometric
//     bands of base driftBand; see catalog.BandedFingerprint) otherwise,
//     so statistics drifting within a band keep hitting the same entry,
//   - the query's canonical shape (tables, predicates, ORDER BY — order
//     insensitive),
//   - a digest of the environment laws (memory distribution plus the full
//     Markov transition matrix when dynamic),
//   - the Algorithm D selectivity and size laws,
//   - the plan-space options — including executed-size feedback hints,
//     which change which plan is optimal — and algorithm name (and
//     Algorithm B's top-c).
//
// Options.Workers is deliberately excluded: the worker count changes how
// fast an answer is found, never which answer. With an exact fingerprint,
// two scenarios that hash equal are optimized identically, so memoized
// PlanReports can be shared; with a banded fingerprint they are optimized
// *equivalently up to in-band drift* — the deliberate approximation that
// lets drifting tenants share plans.
func Signature(cat *catalog.Catalog, blk *query.Block, env envsim.Env,
	selLaws, sizeLaws map[string]dist.Dist, opts optimizer.Options, topC int,
	alg string, driftBand float64) string {
	return SignatureMargin(cat, blk, env, selLaws, sizeLaws, opts, topC, alg, driftBand, 0)
}

// SignatureMargin is Signature with the catalog's distinct-count bands
// offset by margin band units (catalog.BandedFingerprintMargin) — the
// band-edge hysteresis probe key. Everything outside the catalog digest
// hashes identically to Signature, so a statistics state sitting within
// |margin| of a band boundary produces, under the matching-signed margin,
// the very key its across-the-boundary neighbor was cached under. Margin
// only applies to banded keys (driftBand > 1); with exact keys it is
// ignored.
func SignatureMargin(cat *catalog.Catalog, blk *query.Block, env envsim.Env,
	selLaws, sizeLaws map[string]dist.Dist, opts optimizer.Options, topC int,
	alg string, driftBand, margin float64) string {
	opts = opts.Normalized() // zero-value and explicit defaults hash equal
	h := sha256.New()
	fmt.Fprintf(h, "alg=%s topc=%d\n", alg, topC)
	if driftBand > 1 {
		fmt.Fprintf(h, "cat=%s band=%v\n", cat.BandedFingerprintMargin(driftBand, margin), driftBand)
	} else {
		fmt.Fprintf(h, "cat=%s\n", cat.Fingerprint())
	}
	fmt.Fprintf(h, "query=%s\n", blk.Canonical())
	io.WriteString(h, "mem=")
	writeDist(h, env.Mem)
	if env.Chain != nil {
		states := env.Chain.States()
		fmt.Fprintf(h, "chain states=%v rows=", states)
		for i := range states {
			for j := range states {
				fmt.Fprintf(h, "%v,", env.Chain.Prob(i, j))
			}
			io.WriteString(h, ";")
		}
		io.WriteString(h, "\n")
	}
	writeLawMap(h, "sel", selLaws)
	writeLawMap(h, "size", sizeLaws)
	writeHints(h, opts.SizeHints)
	methods := make([]string, len(opts.Methods))
	for i, m := range opts.Methods {
		methods[i] = m.String()
	}
	fmt.Fprintf(h, "opts methods=%v noidx=%v minpages=%v sizebuckets=%d costmodel=%s\n",
		methods, opts.DisableIndexes, opts.MinPages, opts.SizeBuckets, opts.CostModel)
	return hex.EncodeToString(h.Sum(nil))
}

// writeHints streams the executed-size feedback hints in sorted key order.
func writeHints(w io.Writer, hints map[string]float64) {
	if len(hints) == 0 {
		return
	}
	keys := make([]string, 0, len(hints))
	for k := range hints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "hint %s=%v\n", k, hints[k])
	}
}

// writeDist streams a distribution's support and probabilities.
func writeDist(w io.Writer, d dist.Dist) {
	for i := 0; i < d.Len(); i++ {
		fmt.Fprintf(w, "%v:%v,", d.Value(i), d.Prob(i))
	}
	io.WriteString(w, "\n")
}

// writeLawMap streams a law map in sorted key order.
func writeLawMap(w io.Writer, label string, laws map[string]dist.Dist) {
	if len(laws) == 0 {
		return
	}
	keys := make([]string, 0, len(laws))
	for k := range laws {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %s=", label, k)
		writeDist(w, laws[k])
	}
}
