package plancache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/workload"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New[int](64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("a", 10) // refresh
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("refreshed Get(a) = %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v", got)
	}
}

// sameShardKeys returns n distinct keys that hash to the same shard.
func sameShardKeys(t *testing.T, c *Cache[int], n int) []string {
	t.Helper()
	target := c.shardOf("k0")
	keys := []string{"k0"}
	for i := 1; len(keys) < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardOf(k) == target {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestLRUEvictionWithinShard(t *testing.T) {
	c := New[int](shardCount) // one entry per shard
	keys := sameShardKeys(t, c, 3)
	c.Put(keys[0], 0)
	c.Put(keys[1], 1) // evicts keys[0]
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry not evicted")
	}
	if v, ok := c.Get(keys[1]); !ok || v != 1 {
		t.Fatal("newest entry missing")
	}
}

func TestLRURecencyOnGet(t *testing.T) {
	c := New[int](2 * shardCount) // two entries per shard
	keys := sameShardKeys(t, c, 3)
	c.Put(keys[0], 0)
	c.Put(keys[1], 1)
	c.Get(keys[0])    // make keys[0] most recent
	c.Put(keys[2], 2) // should evict keys[1]
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestTinyCapacityStillCaches(t *testing.T) {
	c := New[int](1)
	c.Put("x", 7)
	if v, ok := c.Get("x"); !ok || v != 7 {
		t.Fatal("capacity-1 cache dropped its only entry")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", i%64)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
}

func testScenario(t *testing.T, seed int64) workload.Scenario {
	t.Helper()
	sc, err := workload.Generate(workload.DefaultSpec(3, workload.Chain), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestSignatureDeterministicAndDiscriminating(t *testing.T) {
	sc := testScenario(t, 1)
	mem, err := dist.Bimodal(700, 2000, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	env := envsim.Env{Mem: mem}
	sig := func(sc workload.Scenario, env envsim.Env, opts optimizer.Options, topC int, alg string) string {
		return Signature(sc.Cat, sc.Block, env, nil, nil, opts, topC, alg, 0)
	}
	base := sig(sc, env, optimizer.Options{}, 3, "algorithm-c")
	if base != sig(sc, env, optimizer.Options{}, 3, "algorithm-c") {
		t.Fatal("signature not deterministic")
	}
	if base == sig(sc, env, optimizer.Options{}, 3, "algorithm-a") {
		t.Fatal("algorithm not in signature")
	}
	//leclint:allow optguard -- asserts the options (incl. DisableIndexes) are part of the cache signature
	if base == sig(sc, env, optimizer.Options{DisableIndexes: true}, 3, "algorithm-c") {
		t.Fatal("options not in signature")
	}
	if base == sig(sc, env, optimizer.Options{}, 4, "algorithm-c") {
		t.Fatal("top-c not in signature")
	}
	other := testScenario(t, 2)
	if base == sig(other, env, optimizer.Options{}, 3, "algorithm-c") {
		t.Fatal("catalog/query not in signature")
	}
	wider, err := dist.Bimodal(700, 2000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if base == sig(sc, envsim.Env{Mem: wider}, optimizer.Options{}, 3, "algorithm-c") {
		t.Fatal("memory law not in signature")
	}
	chain, err := dist.Sticky([]float64{700, 2000}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if base == sig(sc, envsim.Env{Mem: mem, Chain: chain}, optimizer.Options{}, 3, "algorithm-c") {
		t.Fatal("markov chain not in signature")
	}
	// Workers is a how-fast knob, not a which-plan knob: same key.
	if base != sig(sc, env, optimizer.Options{Workers: 8}, 3, "algorithm-c") {
		t.Fatal("worker count leaked into the signature")
	}
	// Zero-value options and explicitly spelled-out defaults run the same
	// optimization, so they must share a key.
	if base != sig(sc, env, optimizer.Options{}.Normalized(), 3, "algorithm-c") {
		t.Fatal("explicit default options changed the signature")
	}
}

func TestSignatureLawMapOrderInsensitive(t *testing.T) {
	sc := testScenario(t, 3)
	env := envsim.Env{Mem: dist.Point(1000)}
	lawA := dist.Point(0.5)
	lawB := dist.Point(0.25)
	m1 := map[string]dist.Dist{"t0.k=t1.k": lawA, "t1.k=t2.k": lawB}
	m2 := map[string]dist.Dist{"t1.k=t2.k": lawB, "t0.k=t1.k": lawA}
	s1 := Signature(sc.Cat, sc.Block, env, m1, nil, optimizer.Options{}, 3, "algorithm-d", 0)
	s2 := Signature(sc.Cat, sc.Block, env, m2, nil, optimizer.Options{}, 3, "algorithm-d", 0)
	if s1 != s2 {
		t.Fatal("signature depends on map insertion order")
	}
	s3 := Signature(sc.Cat, sc.Block, env, nil, nil, optimizer.Options{}, 3, "algorithm-d", 0)
	if s1 == s3 {
		t.Fatal("selectivity laws not in signature")
	}
}

func TestStatsEvictionsAndShards(t *testing.T) {
	c := New[int](16) // one slot per shard
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("overfull cache recorded no evictions")
	}
	if len(st.ShardSizes) == 0 {
		t.Fatal("no shard occupancy reported")
	}
	total := 0
	for _, n := range st.ShardSizes {
		if n > 1 {
			t.Fatalf("shard over its capacity: %v", st.ShardSizes)
		}
		total += n
	}
	if total != st.Size {
		t.Fatalf("shard occupancy %d != size %d", total, st.Size)
	}
	if uint64(200-st.Size) != st.Evictions {
		t.Fatalf("evictions %d inconsistent with 200 puts and size %d", st.Evictions, st.Size)
	}
}

func TestSignatureDriftBand(t *testing.T) {
	sc := testScenario(t, 9)
	env := envsim.Env{Mem: dist.Point(1000)}
	exact := Signature(sc.Cat, sc.Block, env, nil, nil, optimizer.Options{}, 3, "algorithm-c", 0)
	banded := Signature(sc.Cat, sc.Block, env, nil, nil, optimizer.Options{}, 3, "algorithm-c", 2)
	if exact == banded {
		t.Fatal("band base must be part of the key")
	}
	// Size hints change which plan is optimal, so they must split keys.
	hinted := Signature(sc.Cat, sc.Block, env, nil, nil,
		optimizer.Options{SizeHints: map[string]float64{"t0+t1": 42}}, 3, "algorithm-c", 0)
	if hinted == exact {
		t.Fatal("size hints not in signature")
	}
	h2 := Signature(sc.Cat, sc.Block, env, nil, nil,
		optimizer.Options{SizeHints: map[string]float64{"t0+t1": 42}}, 3, "algorithm-c", 0)
	if hinted != h2 {
		t.Fatal("hinted signature not deterministic")
	}
}
