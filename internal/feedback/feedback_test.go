package feedback

import (
	"fmt"
	"sync"
	"testing"
)

func TestSetKeyCanonical(t *testing.T) {
	if SetKey("b", "a", "c") != "a+b+c" {
		t.Fatalf("got %q", SetKey("b", "a", "c"))
	}
	if SetKey("t0") != "t0" {
		t.Fatalf("single-table key: %q", SetKey("t0"))
	}
	if SetKey("a", "c") == SetKey("a", "b") {
		t.Fatal("different sets must not collide")
	}
}

func TestObserveAndHints(t *testing.T) {
	s := NewStore(0.5)
	if got := s.Hints("q"); got != nil {
		t.Fatalf("empty store returned hints: %v", got)
	}
	s.Observe("q", map[string]float64{"a+b": 100})
	if got := s.Hints("q")["a+b"]; got != 100 {
		t.Fatalf("first observation is the value: got %v", got)
	}
	// EWMA: 0.5*200 + 0.5*100 = 150.
	s.Observe("q", map[string]float64{"a+b": 200})
	if got := s.Hints("q")["a+b"]; got != 150 {
		t.Fatalf("ewma: got %v want 150", got)
	}
	// Repeated identical observations converge and stay put.
	for i := 0; i < 20; i++ {
		s.Observe("q", map[string]float64{"a+b": 150})
	}
	if got := s.Hints("q")["a+b"]; got != 150 {
		t.Fatalf("converged hint moved: %v", got)
	}
	if s.Queries() != 1 {
		t.Fatalf("queries: %d", s.Queries())
	}
	if s.Observations() == 0 {
		t.Fatal("observations not counted")
	}
}

func TestObserveIgnoresGarbage(t *testing.T) {
	s := NewStore(0)
	s.Observe("q", map[string]float64{"a": -1, "b": 0})
	if s.Hints("q") != nil {
		t.Fatal("garbage observations must be dropped")
	}
}

func TestHintsRounded(t *testing.T) {
	s := NewStore(1)
	s.Observe("q", map[string]float64{"a+b": 1234.5})
	if got := s.Hints("q")["a+b"]; got != 1200 {
		t.Fatalf("rounding: got %v want 1200", got)
	}
}

func TestRoundSig(t *testing.T) {
	cases := map[float64]float64{1234: 1200, 96: 96, 0.0372: 0.037, 8: 8, 150: 150}
	for in, want := range cases {
		if got := RoundSig(in); got != want {
			t.Errorf("RoundSig(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestHintsPerQueryIsolation(t *testing.T) {
	s := NewStore(0)
	s.Observe("q1", map[string]float64{"a+b": 10})
	s.Observe("q2", map[string]float64{"a+b": 99})
	if s.Hints("q1")["a+b"] == s.Hints("q2")["a+b"] {
		t.Fatal("queries must not share observations")
	}
}

func TestConcurrentObserve(t *testing.T) {
	s := NewStore(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				q := fmt.Sprintf("q%d", g%4)
				s.Observe(q, map[string]float64{"a+b": 50})
				s.Hints(q)
			}
		}(g)
	}
	wg.Wait()
	if s.Queries() != 4 {
		t.Fatalf("queries: %d", s.Queries())
	}
}
