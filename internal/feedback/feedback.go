// Package feedback is the executed-size feedback store: it remembers the
// *observed* page counts of intermediate join results from real engine
// executions and serves them back to the optimizer as size hints for
// subsequent optimizations of the same query.
//
// The cost model's weakest input is the estimated intermediate-result
// size: nested-loop joins charge outer·inner, so a 3x size misestimate
// becomes a ~10x cost misestimate (the 16x-vs-3.5x band split documented
// by the serving package's model-agreement property). The executed sizes
// are exact — the engine materializes every intermediate — and they are
// order-independent (joining {a,b,c} yields the same logical result pages
// in any join order), so one observation corrects every plan prefix that
// covers the same table set.
//
// Observations are folded with an exponential moving average and exported
// rounded to two significant figures: rounding makes a converged hint a
// *stable* value, so plan-cache keys (which hash the hints) stop churning
// once the store has settled. All methods are safe for concurrent use.
package feedback

import (
	"hash/maphash"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultAlpha is the EWMA weight of a new observation.
const DefaultAlpha = 0.5

// SetKey canonically names a set of joined tables: sorted names joined by
// "+". A single name keys a base table's filtered size. It is the key
// vocabulary shared by the engine's observed sizes (engine.ExecResult) and
// the optimizer's size hints (optimizer.Options.SizeHints).
func SetKey(tables ...string) string {
	s := append([]string(nil), tables...)
	sort.Strings(s)
	return strings.Join(s, "+")
}

// shardCount must be a power of two; shards are selected by the low bits
// of the query key's hash, the same layout as the sharded plan cache.
const shardCount = 16

// Store accumulates executed-size observations per query. Queries are
// identified by an opaque key chosen by the caller (the Optimizer service
// uses canonical query shape + catalog fingerprint).
//
// The store is sharded by query-key hash: an Observe for one query only
// contends with readers and writers of queries in the same shard, so the
// engine-in-the-loop serving pattern — every executed request Observes
// while every optimization reads Hints — no longer serializes on one
// RWMutex. The observation count is a store-global atomic, which gives
// the serving layer a lock-free "has anything been observed yet?" gate.
type Store struct {
	alpha  float64
	seed   maphash.Seed
	obs    atomic.Uint64
	shards [shardCount]storeShard
}

type storeShard struct {
	mu      sync.RWMutex
	queries map[string]map[string]float64 // query key -> set key -> ewma pages
}

// NewStore returns an empty store. alpha is the EWMA weight of each new
// observation; 0 uses DefaultAlpha.
func NewStore(alpha float64) *Store {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	s := &Store{alpha: alpha, seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].queries = make(map[string]map[string]float64)
	}
	return s
}

func (s *Store) shardOf(query string) *storeShard {
	return &s.shards[maphash.String(s.seed, query)&(shardCount-1)]
}

// Observe folds one execution's observed sizes (SetKey -> pages) into the
// query's running averages. Non-positive and non-finite sizes are ignored.
func (s *Store) Observe(query string, sizes map[string]float64) {
	if len(sizes) == 0 {
		return
	}
	sh := s.shardOf(query)
	folded := uint64(0)
	sh.mu.Lock()
	m := sh.queries[query]
	if m == nil {
		m = make(map[string]float64, len(sizes))
		sh.queries[query] = m
	}
	for k, v := range sizes {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if old, ok := m[k]; ok {
			m[k] = s.alpha*v + (1-s.alpha)*old
		} else {
			m[k] = v
		}
		folded++
	}
	sh.mu.Unlock()
	if folded > 0 {
		s.obs.Add(folded)
	}
}

// Hints returns the query's observed sizes rounded to two significant
// figures (a fresh map; nil when nothing was observed). The rounding keeps
// hints — and therefore plan-cache keys that hash them — stable once the
// EWMA has converged.
func (s *Store) Hints(query string) map[string]float64 {
	sh := s.shardOf(query)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.queries[query]
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = RoundSig(v)
	}
	return out
}

// Queries returns the number of distinct queries with observations.
func (s *Store) Queries() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.queries)
		sh.mu.RUnlock()
	}
	return n
}

// Observations returns the total number of folded size observations. It is
// lock-free, so hot paths can use it to skip per-request Hints lookups
// (and their query-key construction) until something has been observed.
func (s *Store) Observations() uint64 {
	return s.obs.Load()
}

// RoundSig rounds a positive value to two significant decimal figures
// (1234 -> 1200, 0.037 -> 0.037); non-positive values pass through.
func RoundSig(v float64) float64 {
	if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	scale := math.Pow(10, math.Floor(math.Log10(v))-1)
	return math.Round(v/scale) * scale
}
