// Package cost implements the paper's I/O cost model: the simplified
// Shapiro [Sha86] formulas of Sections 1.1 and 3.6 of Chu, Halpern and
// Seshadri (PODS 1999), "simplified to three cases" (footnote 2).
//
// All costs are measured in page I/Os. Relation sizes |A|, |B| are in
// pages, memory M in buffer pages. The formulas are deliberately simple —
// the paper speculates that "a return to simple formulas in combination
// with LEC optimization may result in more reliable query optimizers" —
// and their discontinuities (at √L, ∛L, S+2, ...) are exactly what makes
// LEC plans diverge from LSC plans.
package cost

import (
	"fmt"
	"math"
)

// JoinMethod identifies a binary join algorithm.
type JoinMethod uint8

// Join methods considered by the optimizer.
const (
	// SortMerge is sort-merge join. Cost (Section 3.6.1), L = max(|A|,|B|):
	//   2(|A|+|B|) if M > √L; 4(|A|+|B|) if ∛L < M ≤ √L; 6(|A|+|B|) if M ≤ ∛L.
	// Output is ordered on the join column.
	SortMerge JoinMethod = iota
	// GraceHash is Grace hash join [Sha86]. The memory thresholds depend
	// on the SMALLER input S = min(|A|,|B|): one pass (|A|+|B|) when the
	// build side fits in memory (M ≥ S+2 — hybrid hash's degenerate
	// case, which the engine realizes as an in-memory hash join), two
	// passes when M > √S, then the same 4/6-pass structure as
	// sort-merge. This asymmetry versus sort-merge is what drives
	// Example 1.1. Output is unordered.
	GraceHash
	// PageNL is page nested-loop join (Section 3.6.2), S = min(|A|,|B|):
	//   |A|+|B| if M ≥ S+2; |A| + |A|·|B| if M < S+2   (A is the outer).
	PageNL
	// BlockNL is block nested-loop join, an extension beyond the paper's
	// three formulas: |A| + ⌈|A|/(M-2)⌉·|B|. Its many small level sets
	// exercise the level-set bucketing strategy of Section 3.7.
	BlockNL
)

// Methods lists every join method, in a stable order.
var Methods = []JoinMethod{SortMerge, GraceHash, PageNL, BlockNL}

// PaperMethods lists only the methods with formulas given in the paper.
var PaperMethods = []JoinMethod{SortMerge, GraceHash, PageNL}

func (m JoinMethod) String() string {
	switch m {
	case SortMerge:
		return "sort-merge"
	case GraceHash:
		return "grace-hash"
	case PageNL:
		return "page-nl"
	case BlockNL:
		return "block-nl"
	default:
		return fmt.Sprintf("JoinMethod(%d)", uint8(m))
	}
}

// OrdersOutput reports whether the method's output is sorted on the join
// column (only sort-merge).
func (m JoinMethod) OrdersOutput() bool { return m == SortMerge }

// JoinIO returns C(method, v) for joining outer |A| pages with inner |B|
// pages under memory m. Sizes must be positive; non-positive sizes cost 0
// (empty input short-circuit).
func JoinIO(method JoinMethod, outer, inner, mem float64) float64 {
	if outer <= 0 || inner <= 0 {
		return 0
	}
	switch method {
	case SortMerge:
		return passMultiplier(math.Max(outer, inner), mem) * (outer + inner)
	case GraceHash:
		// Build side fits (S pages + 2 streaming frames): one-pass
		// in-memory hash join, each side read exactly once. Without this
		// case the model charges 2(|A|+|B|) in a regime where the engine
		// pays |A|+|B| — a memory-dependent 2× error that inverts the
		// grace-hash/page-nl ranking at high memory.
		if mem >= math.Min(outer, inner)+2 {
			return outer + inner
		}
		return passMultiplier(math.Min(outer, inner), mem) * (outer + inner)
	case PageNL:
		if mem >= math.Min(outer, inner)+2 {
			return outer + inner
		}
		return outer + outer*inner
	case BlockNL:
		blocks := math.Ceil(outer / math.Max(1, mem-2))
		return outer + blocks*inner
	default:
		panic(fmt.Sprintf("cost: unknown join method %v", method))
	}
}

// passMultiplier encodes the paper's three-case pass structure keyed to a
// pivot relation size R: 2 passes over the data when M > √R, 4 when
// ∛R < M ≤ √R, 6 when M ≤ ∛R.
func passMultiplier(r, mem float64) float64 {
	switch {
	case mem > math.Sqrt(r):
		return 2
	case mem > math.Cbrt(r):
		return 4
	default:
		return 6
	}
}

// SortIO returns the cost of sorting r pages with memory m: free when the
// input fits in memory (the sort happens during the consuming read), and
// otherwise the same three-case external-merge structure as sort-merge.
func SortIO(r, mem float64) float64 {
	if r <= 0 || r <= mem {
		return 0
	}
	return passMultiplier(r, mem) * r
}

// ScanIO returns the cost of a full heap scan.
func ScanIO(pages float64) float64 {
	if pages <= 0 {
		return 0
	}
	return pages
}

// IndexScanIO returns the cost of retrieving a sel fraction of a table
// through a B+-tree index of the given height. A clustered index reads
// ⌈sel·pages⌉ contiguous pages; an unclustered index pays one page fetch
// per matching row, ⌈sel·rows⌉.
func IndexScanIO(height, sel, pages, rows float64, clustered bool) float64 {
	if sel <= 0 || pages <= 0 {
		return 0
	}
	if sel > 1 {
		sel = 1
	}
	if clustered {
		return height + math.Ceil(sel*pages)
	}
	return height + math.Ceil(sel*rows)
}

// JoinBreakpoints returns the memory values at which JoinIO(method, a, b, ·)
// changes value — the boundaries of the cost function's level sets in the
// memory dimension (Section 3.7). The returned values are ascending and
// are the *lowest memory in each new regime* (i.e. cost is constant on
// [v_i, v_{i+1})). maxBreaks caps the output for methods with many level
// sets (BlockNL).
func JoinBreakpoints(method JoinMethod, outer, inner float64, maxBreaks int) []float64 {
	if outer <= 0 || inner <= 0 {
		return nil
	}
	switch method {
	case SortMerge:
		l := math.Max(outer, inner)
		return []float64{nextUp(math.Cbrt(l)), nextUp(math.Sqrt(l))}
	case GraceHash:
		s := math.Min(outer, inner)
		return []float64{nextUp(math.Cbrt(s)), nextUp(math.Sqrt(s)), s + 2}
	case PageNL:
		return []float64{math.Min(outer, inner) + 2}
	case BlockNL:
		// cost changes where ⌈outer/(M-2)⌉ changes: M = 2 + outer/k.
		var out []float64
		for k := 1; k <= maxBreaks; k++ {
			out = append(out, 2+outer/float64(k))
		}
		// ascending order
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	default:
		return nil
	}
}

// SortBreakpoints returns the memory level-set boundaries of SortIO(r, ·).
func SortBreakpoints(r float64) []float64 {
	if r <= 0 {
		return nil
	}
	return []float64{nextUp(math.Cbrt(r)), nextUp(math.Sqrt(r)), nextUp(r)}
}

// nextUp nudges a boundary so that a representative placed exactly at the
// returned value falls in the *higher* regime (formulas use strict >).
func nextUp(v float64) float64 { return math.Nextafter(v, math.Inf(1)) }
