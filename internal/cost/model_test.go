package cost

import (
	"math"
	"testing"
)

// TestModelPaperIsJoinIO: ModelPaper must be the paper's formulas
// byte-for-byte — JoinIOModel(ModelPaper, ...) is JoinIO with no
// exceptions, across every method and a dense size/memory grid. The
// E1–E20 golden tables rest on this identity.
func TestModelPaperIsJoinIO(t *testing.T) {
	sizes := []float64{0, 0.4, 1, 2, 3.7, 8, 15, 16, 17, 50, 99.5, 100, 250, 1000}
	mems := []float64{0, 1, 3, 4, 5, 9, 10, 11, 31, 32, 33, 100, math.Inf(1)}
	for _, method := range Methods {
		for _, a := range sizes {
			for _, b := range sizes {
				for _, m := range mems {
					got := JoinIOModel(ModelPaper, method, a, b, m)
					want := JoinIO(method, a, b, m)
					if got != want {
						t.Fatalf("JoinIOModel(ModelPaper, %v, %v, %v, %v) = %v, JoinIO = %v",
							method, a, b, m, got, want)
					}
				}
			}
		}
	}
}

// TestModelEngineDivergesOnlyOnGraceHash: ModelEngine changes the charge
// for grace hash only; sort-merge, page-NL and block-NL keep the paper's
// formulas (the engine realizes those within the documented bands, so
// there is no drift to close).
func TestModelEngineDivergesOnlyOnGraceHash(t *testing.T) {
	for _, method := range Methods {
		if method == GraceHash {
			continue
		}
		for _, a := range []float64{1, 7, 40, 200} {
			for _, m := range []float64{3, 6, 12, 50} {
				got := JoinIOModel(ModelEngine, method, a, a+3, m)
				want := JoinIO(method, a, a+3, m)
				if got != want {
					t.Fatalf("JoinIOModel(ModelEngine, %v, ...) = %v, want paper charge %v", method, got, want)
				}
			}
		}
	}
}

// TestModelEngineGraceClosedForms pins the engine-exact grace-hash charge
// with hand-derived anchors for each regime of the recursion.
func TestModelEngineGraceClosedForms(t *testing.T) {
	cases := []struct {
		name          string
		a, b, m, want float64
	}{
		// Build side + 2 streaming frames fit: in-memory hash join, each
		// side read once.
		{"in-memory", 4, 6, 9, 10},
		{"in-memory boundary", 7, 100, 9, 107},
		// One partitioning level: S=23, M=9 → fanOut 5, partitions of 5
		// pages. 23+23 input reads + 2·5·5 partition writes + 2·5·5
		// partition re-reads by the in-memory sub-joins = 146.
		{"one level", 23, 23, 9, 146},
		// Asymmetric inputs, same recursion keyed to the smaller side:
		// a=23, b=40 → fanOut 5, ap=5, bp=8; level: 23+40+25+40=128;
		// sub-joins: 5·(5+8)=65; total 193.
		{"asymmetric", 23, 40, 9, 193},
		// Fractional sizes page-align before charging (⌈3.2⌉=4, ⌈5.9⌉=6)
		// and memory truncates to whole frames.
		{"fractional pages", 3.2, 5.9, 8.7, 10},
		// Non-positive inputs short-circuit like JoinIO.
		{"empty outer", 0, 10, 9, 0},
		{"empty inner", 10, -1, 9, 0},
	}
	for _, c := range cases {
		if got := JoinIOModel(ModelEngine, GraceHash, c.a, c.b, c.m); got != c.want {
			t.Errorf("%s: JoinIOModel(ModelEngine, GraceHash, %v, %v, %v) = %v, want %v",
				c.name, c.a, c.b, c.m, got, c.want)
		}
	}
}

// TestModelEngineGraceRecursionInvariants checks structural properties of
// the recursion charge over a grid: positive for positive inputs, at
// least one read of each input, never cheaper than the in-memory bound,
// and finite even where the balanced recursion hits the level cap.
func TestModelEngineGraceRecursionInvariants(t *testing.T) {
	for _, a := range []float64{1, 2, 5, 23, 64, 200, 1000, 3000} {
		for _, b := range []float64{1, 8, 23, 500, 3000} {
			for _, m := range []float64{3, 4, 5, 9, 16, 64, 1000} {
				got := JoinIOModel(ModelEngine, GraceHash, a, b, m)
				if math.IsNaN(got) || math.IsInf(got, 0) {
					t.Fatalf("(%v,%v,%v): non-finite charge %v", a, b, m, got)
				}
				if got < a+b {
					t.Fatalf("(%v,%v,%v): charge %v below one read of each input", a, b, m, got)
				}
				if math.Min(a, b)+2 <= m && got != a+b {
					t.Fatalf("(%v,%v,%v): in-memory regime must charge exactly a+b, got %v", a, b, m, got)
				}
			}
		}
	}
}

// TestGracePassesAnchors pins the pass simulator against hand-replayed
// recursions, including the level-cap fallback a minimum-memory pool
// reaches on a large build side.
func TestGracePassesAnchors(t *testing.T) {
	cases := []struct {
		s, m     float64
		levels   int
		fallback bool
	}{
		{7, 100, 0, false}, // fits immediately
		{23, 9, 1, false},  // one split: 23 → ⌈23/5⌉ = 5, 5+2 ≤ 9
		{8, 4, 2, false},   // 8 → ⌈8/3⌉ = 3 → 1
		{1, 3, 0, false},   // single page always fits (mem floor 3)
		{2000, 3, 9, true}, // fan-out capped at 2: halving exhausts the 8-level cap
		{0, 9, 0, false},   // empty build side
	}
	for _, c := range cases {
		lv, fb := GracePasses(c.s, c.m)
		if lv != c.levels || fb != c.fallback {
			t.Errorf("GracePasses(%v, %v) = (%d, %v), want (%d, %v)", c.s, c.m, lv, fb, c.levels, c.fallback)
		}
	}
}

// TestGracePassesMonotoneInMemory: more memory never deepens the
// recursion — treating a level-cap fallback as deeper than any finite
// level count, levels are non-increasing in m for fixed s, fallbacks
// occur only below every non-fallback memory, and once the build side
// fits (s+2 ≤ m) the simulator reports zero levels.
func TestGracePassesMonotoneInMemory(t *testing.T) {
	for _, s := range []float64{5, 23, 64, 200, 1000} {
		prev := math.MaxInt32 // fallback sentinel: deeper than any level count
		for m := 3.0; m <= s+4; m++ {
			lv, fb := GracePasses(s, m)
			if fb {
				if prev != math.MaxInt32 {
					t.Fatalf("GracePasses(%v, %v): fallback above a non-fallback memory", s, m)
				}
				continue
			}
			if lv > prev {
				t.Fatalf("GracePasses(%v, %v) = %d levels > %d at less memory", s, m, lv, prev)
			}
			prev = lv
			if s+2 <= m && lv != 0 {
				t.Fatalf("GracePasses(%v, %v) = %d levels although the build side fits", s, m, lv)
			}
		}
	}
}

// TestGraceFanOutBounds: the shared fan-out stays within the engine's
// frame budget — at least 2 partitions, at most m−1 write frames — and
// yields an average build partition that fits in memory whenever the cap
// doesn't bind.
func TestGraceFanOutBounds(t *testing.T) {
	for s := 1; s <= 2048; s++ {
		for _, m := range []int{0, 1, 2, 3, 4, 5, 8, 9, 16, 100} {
			f := GraceFanOut(s, m)
			em := m
			if em < 3 {
				em = 3
			}
			max := em - 1
			if max < 2 {
				max = 2
			}
			if f < 2 || f > max {
				t.Fatalf("GraceFanOut(%d, %d) = %d outside [2, %d]", s, m, f, max)
			}
			if f < max && ceilDiv(s, f) > em-2 {
				t.Fatalf("GraceFanOut(%d, %d) = %d: uncapped fan-out leaves %d-page partitions over the %d-frame budget",
					s, m, f, ceilDiv(s, f), em-2)
			}
		}
	}
}

// TestModelString covers the Model stringer, including the out-of-range
// diagnostic form.
func TestModelString(t *testing.T) {
	if got := ModelPaper.String(); got != "paper" {
		t.Errorf("ModelPaper = %q", got)
	}
	if got := ModelEngine.String(); got != "engine" {
		t.Errorf("ModelEngine = %q", got)
	}
	if got := Model(9).String(); got != "Model(9)" {
		t.Errorf("Model(9) = %q", got)
	}
}

// TestModelPaperIsZeroValue: the zero value of Model must stay ModelPaper
// — default optimizer.Options and every experiment rely on it to keep the
// published tables reproducing unchanged.
func TestModelPaperIsZeroValue(t *testing.T) {
	var m Model
	if m != ModelPaper {
		t.Fatalf("zero Model = %v, want ModelPaper", m)
	}
}
