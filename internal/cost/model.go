// Engine-exact cost model. The paper's footnote-2 formulas charge grace
// hash with a three-case 2/4/6 pass multiplier keyed to √S/∛S memory
// thresholds; the engine realizes a demand-driven recursive partitioning
// whose pass count is ⌈log_fanOut⌉-shaped. Near the thresholds — and
// especially when the optimizer's S is stale under statistics drift — the
// two machines disagree by phase-dependent factors, which is exactly the
// magnitude error that inverted the heap-only shared-volatile tenant's
// LSC-vs-LEC ranking. ModelEngine charges the recursion the engine
// actually runs; ModelPaper keeps the paper's formulas byte-for-byte.
package cost

import (
	"fmt"
	"math"
)

// Model selects which machine the join formulas describe.
type Model uint8

const (
	// ModelPaper is the paper's simplified three-case formulas (footnote
	// 2) — the zero value, so default Options and every experiment keep
	// reproducing the published tables unchanged.
	ModelPaper Model = iota
	// ModelEngine charges grace hash with the engine's actual recursion:
	// demand-driven fan-out (GraceFanOut), per-level partition writes
	// including partial tail pages, the S+2 in-memory boundary, and the
	// level-cap block-nested-loop fallback. All other operators share the
	// paper's formulas, which the engine already realizes within the
	// documented agreement bands.
	ModelEngine
)

func (m Model) String() string {
	switch m {
	case ModelPaper:
		return "paper"
	case ModelEngine:
		return "engine"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// graceLevelCap is the engine's recursion-depth cap: a partitioning call
// entered at a level beyond the cap degenerates to block nested loop
// (degenerate key distributions). Mirrors the `level > 8` guard in
// engine.graceHashJoin.
const graceLevelCap = 8

// GraceFanOut is the engine's grace-hash partition count for a build side
// of small pages at mem buffer pages: enough partitions that an average
// build partition fits in memory, plus one for hash-balance headroom,
// capped by the write frames available (mem − 1 input frame) and floored
// at 2. This is the single source of truth — engine.graceHashJoin calls
// it for the realized fan-out and engineGraceIO charges with it, so the
// two cannot silently diverge.
func GraceFanOut(small, mem int) int {
	if mem < 3 {
		mem = 3
	}
	fanOut := (small+mem-3)/(mem-2) + 1
	if maxFan := mem - 1; fanOut > maxFan {
		fanOut = maxFan
	}
	if fanOut < 2 {
		fanOut = 2
	}
	return fanOut
}

// GracePasses simulates the engine's grace-hash recursion for a build
// side of s pages at memory m (floats accepted for symmetry with the
// other cost functions; pages are ⌈s⌉, buffers ⌊m⌋ floored at the
// engine's 3-page minimum). It returns the number of partitioning levels
// performed before the build side fits in memory — 0 means the first
// call joins in memory — and whether the recursion would hit the level
// cap and degenerate to block nested loop. Partitions are assumed
// hash-balanced (each level divides the build side by its fan-out,
// rounded up), which the engine's avalanched hashKey realizes to within
// a page.
func GracePasses(s, m float64) (levels int, fallback bool) {
	sp := pagesOf(s)
	mem := memPages(m)
	for level := 0; ; level++ {
		if level > graceLevelCap {
			return levels, true
		}
		if sp+2 <= mem {
			return levels, false
		}
		sp = ceilDiv(sp, GraceFanOut(sp, mem))
		levels++
	}
}

// JoinIOModel returns C(method, v) under the selected cost model.
// ModelPaper delegates to JoinIO unchanged; ModelEngine differs only for
// grace hash, where it charges the engine's exact recursion via
// engineGraceIO. Sizes must be positive; non-positive sizes cost 0.
func JoinIOModel(model Model, method JoinMethod, outer, inner, mem float64) float64 {
	if model == ModelEngine && method == GraceHash {
		if outer <= 0 || inner <= 0 {
			return 0
		}
		return engineGraceIO(pagesOf(outer), pagesOf(inner), memPages(mem), 0)
	}
	return JoinIO(method, outer, inner, mem)
}

// engineGraceIO charges grace hash the way engine.graceHashJoin executes
// it, on integer page counts: a is the outer input, b the inner, m the
// buffer-pool capacity, level the recursion depth. Each partitioning
// level reads both inputs and writes fanOut partitions per side — each
// ⌈X/fanOut⌉ pages, so the partial tail pages the engine materializes
// are charged — then recurses on one balanced partition pair and
// multiplies by the fan-out. The recursion terminates at the in-memory
// boundary (build side + 2 streaming frames fit) or at the level cap,
// where the engine degenerates to block nested loop over the stuck
// partition pair.
func engineGraceIO(a, b, m, level int) float64 {
	if a <= 0 || b <= 0 {
		// The engine skips empty partition pairs without touching a page.
		return 0
	}
	if level > graceLevelCap {
		// Block-nested-loop fallback: read the outer once, scan the inner
		// once per ⌈a/(m−2)⌉ outer block (engine.blockNLJoin).
		blockPages := m - 2
		if blockPages < 1 {
			blockPages = 1
		}
		return float64(a + ceilDiv(a, blockPages)*b)
	}
	small := a
	if b < a {
		small = b
	}
	if small+2 <= m {
		// In-memory hash join: each side read exactly once.
		return float64(a + b)
	}
	f := GraceFanOut(small, m)
	ap, bp := ceilDiv(a, f), ceilDiv(b, f)
	// This level: read both inputs, write every partition page (the ceil
	// terms charge the partial tail page each partition ends with). The
	// recursive calls read their own partitions, so no page is charged
	// twice.
	io := float64(a + b + f*ap + f*bp)
	return io + float64(f)*engineGraceIO(ap, bp, m, level+1)
}

// pagesOf converts an estimated size to a whole page count (a fraction
// of a page still occupies one page).
func pagesOf(v float64) int {
	if v <= 0 {
		return 0
	}
	return int(math.Ceil(v))
}

// memPages converts a memory value to the engine's buffer-pool capacity:
// whole frames only, floored at the 3-page minimum the executor enforces.
func memPages(m float64) int {
	if math.IsInf(m, 1) || m >= math.MaxInt32 {
		return math.MaxInt32
	}
	mp := int(m)
	if mp < 3 {
		mp = 3
	}
	return mp
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
