package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

// TestExample11Formulas checks the motivating example's raw numbers:
// A = 1,000,000 pages, B = 400,000 pages.
func TestExample11Formulas(t *testing.T) {
	const a, b = 1_000_000, 400_000
	// Sort-merge keyed to the LARGER relation: √L = 1000.
	approx(t, JoinIO(SortMerge, a, b, 2000), 2*(a+b), 0, "SM two passes at 2000")
	approx(t, JoinIO(SortMerge, a, b, 1001), 2*(a+b), 0, "SM two passes just above 1000")
	approx(t, JoinIO(SortMerge, a, b, 1000), 4*(a+b), 0, "SM extra pass at exactly 1000 (strict >)")
	approx(t, JoinIO(SortMerge, a, b, 700), 4*(a+b), 0, "SM extra pass at 700")
	approx(t, JoinIO(SortMerge, a, b, 100), 6*(a+b), 0, "SM six at ∛L")
	// Grace hash keyed to the SMALLER relation: √S ≈ 632.46.
	approx(t, JoinIO(GraceHash, a, b, 700), 2*(a+b), 0, "GH two passes at 700")
	approx(t, JoinIO(GraceHash, a, b, 633), 2*(a+b), 0, "GH two passes at 633")
	approx(t, JoinIO(GraceHash, a, b, 632), 4*(a+b), 0, "GH extra pass at 632")
	approx(t, JoinIO(GraceHash, a, b, 73), 6*(a+b), 0, "GH six below ∛S≈73.7")
	// One-pass in-memory case: the build side S = 400,000 fits at M ≥ S+2.
	approx(t, JoinIO(GraceHash, a, b, 400_002), a+b, 0, "GH one pass when build fits")
	approx(t, JoinIO(GraceHash, a, b, 400_001), 2*(a+b), 0, "GH two passes just below fit")
	// Result sort: 3000 pages, memory 2000 → external, √3000≈54.8 < 2000.
	approx(t, SortIO(3000, 2000), 2*3000, 0, "sort small result")
	approx(t, SortIO(3000, 3000), 0, 0, "fits in memory: free")
	approx(t, SortIO(3000, 50), 4*3000, 0, "sort with tiny memory")
	approx(t, SortIO(3000, 10), 6*3000, 0, "sort below cube root")
}

// TestExample11PlanComparison reproduces the paper's conclusion at the
// plan level: under the bimodal memory law {700:0.2, 2000:0.8}, Plan 1
// (sort-merge) is cheaper at both the mean (1740) and the mode (2000), yet
// Plan 2 (grace hash + sort) has lower expected cost.
func TestExample11PlanComparison(t *testing.T) {
	const a, b, res = 1_000_000, 400_000, 3000
	plan1 := func(m float64) float64 { return JoinIO(SortMerge, a, b, m) }
	plan2 := func(m float64) float64 { return JoinIO(GraceHash, a, b, m) + SortIO(res, m) }

	for _, m := range []float64{2000, 1740} {
		if !(plan1(m) < plan2(m)) {
			t.Fatalf("at point memory %v LSC must prefer Plan 1: p1=%v p2=%v", m, plan1(m), plan2(m))
		}
	}
	ec1 := 0.8*plan1(2000) + 0.2*plan1(700)
	ec2 := 0.8*plan2(2000) + 0.2*plan2(700)
	if !(ec2 < ec1) {
		t.Fatalf("LEC must prefer Plan 2: EC1=%v EC2=%v", ec1, ec2)
	}
	// Concrete values implied by the formulas.
	approx(t, ec1, 0.8*2*1.4e6+0.2*4*1.4e6, 1e-6, "EC plan1")
	approx(t, ec2, 2*1.4e6+6000, 1e-6, "EC plan2")
}

func TestPageNL(t *testing.T) {
	// S = min = 40; fits when M ≥ 42.
	approx(t, JoinIO(PageNL, 100, 40, 42), 140, 0, "NL fits")
	approx(t, JoinIO(PageNL, 100, 40, 41), 100+100*40, 0, "NL thrashes")
	// Outer is |A| in the formula even when it's the smaller one.
	approx(t, JoinIO(PageNL, 40, 100, 41), 40+40*100, 0, "NL small outer thrashes")
	approx(t, JoinIO(PageNL, 40, 100, 42), 140, 0, "NL small outer fits")
}

func TestBlockNL(t *testing.T) {
	// outer=100, mem=12 → blocks = ceil(100/10) = 10 → 100 + 10·50.
	approx(t, JoinIO(BlockNL, 100, 50, 12), 600, 0, "10 blocks")
	// mem=102 → one block.
	approx(t, JoinIO(BlockNL, 100, 50, 102), 150, 0, "one block")
	// mem ≤ 3 → denominator clamps to 1 → outer + outer·inner.
	approx(t, JoinIO(BlockNL, 100, 50, 1), 100+100*50, 0, "degenerate memory")
}

func TestJoinIOEdgeCases(t *testing.T) {
	for _, m := range Methods {
		if JoinIO(m, 0, 10, 100) != 0 || JoinIO(m, 10, 0, 100) != 0 {
			t.Fatalf("%v: empty input should cost 0", m)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown method should panic")
		}
	}()
	JoinIO(JoinMethod(99), 1, 1, 1)
}

func TestScanAndIndexIO(t *testing.T) {
	approx(t, ScanIO(123), 123, 0, "heap scan")
	approx(t, ScanIO(0), 0, 0, "empty scan")
	approx(t, IndexScanIO(2, 0.1, 100, 1000, true), 2+10, 0, "clustered")
	approx(t, IndexScanIO(2, 0.1, 100, 1000, false), 2+100, 0, "unclustered")
	approx(t, IndexScanIO(2, 0, 100, 1000, true), 0, 0, "zero sel")
	approx(t, IndexScanIO(2, 5, 100, 1000, true), 2+100, 0, "sel clamped to 1")
}

func TestMethodStrings(t *testing.T) {
	want := map[JoinMethod]string{
		SortMerge: "sort-merge",
		GraceHash: "grace-hash",
		PageNL:    "page-nl",
		BlockNL:   "block-nl",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("%d String = %q want %q", m, m.String(), s)
		}
	}
	if JoinMethod(42).String() == "" {
		t.Fatal("unknown method string")
	}
	if !SortMerge.OrdersOutput() || GraceHash.OrdersOutput() || PageNL.OrdersOutput() {
		t.Fatal("OrdersOutput wrong")
	}
}

// TestBreakpointsPartitionLevelSets: cost is constant between consecutive
// breakpoints and changes across each breakpoint — the defining property
// the Section 3.7 level-set bucketing relies on.
func TestBreakpointsPartitionLevelSets(t *testing.T) {
	const a, b = 90_000, 10_000
	for _, m := range []JoinMethod{SortMerge, GraceHash, PageNL} {
		bps := JoinBreakpoints(m, a, b, 10)
		if len(bps) == 0 {
			t.Fatalf("%v: no breakpoints", m)
		}
		for i := 1; i < len(bps); i++ {
			if bps[i] <= bps[i-1] {
				t.Fatalf("%v: breakpoints not ascending: %v", m, bps)
			}
		}
		// Sample points: below first, between each pair, above last.
		probes := []float64{bps[0] / 2}
		for i := 0; i < len(bps)-1; i++ {
			probes = append(probes, (bps[i]+bps[i+1])/2)
		}
		probes = append(probes, bps[len(bps)-1]*2)
		prev := math.NaN()
		for i, p := range probes {
			c := JoinIO(m, a, b, p)
			if i > 0 && c == prev {
				t.Fatalf("%v: cost did not change across breakpoint %d (%v)", m, i-1, bps[i-1])
			}
			prev = c
		}
		// Within a region the cost is flat.
		lo, hi := bps[0], bps[1%len(bps)]
		if len(bps) >= 2 {
			c1 := JoinIO(m, a, b, lo+(hi-lo)*0.25)
			c2 := JoinIO(m, a, b, lo+(hi-lo)*0.75)
			if c1 != c2 {
				t.Fatalf("%v: cost not constant within level set", m)
			}
		}
	}
}

func TestBreakpointRepresentativesLandHigh(t *testing.T) {
	// A representative placed exactly at a returned breakpoint must be in
	// the higher (cheaper) regime.
	const a, b = 1_000_000, 400_000
	bps := JoinBreakpoints(SortMerge, a, b, 0)
	approx(t, JoinIO(SortMerge, a, b, bps[1]), 2*(a+b), 0, "at √L breakpoint: cheap regime")
	approx(t, JoinIO(SortMerge, a, b, bps[0]), 4*(a+b), 0, "at ∛L breakpoint: middle regime")
}

func TestBlockNLBreakpoints(t *testing.T) {
	bps := JoinBreakpoints(BlockNL, 100, 50, 4)
	// k=4..1 → 2+25, 2+33.3, 2+50, 2+100 ascending.
	want := []float64{27, 2 + 100.0/3, 52, 102}
	if len(bps) != 4 {
		t.Fatalf("got %d breakpoints", len(bps))
	}
	for i := range want {
		approx(t, bps[i], want[i], 1e-9, "blocknl breakpoint")
	}
}

func TestSortBreakpoints(t *testing.T) {
	bps := SortBreakpoints(3000)
	if len(bps) != 3 {
		t.Fatalf("got %v", bps)
	}
	approx(t, SortIO(3000, bps[2]), 0, 0, "at R: free")
	approx(t, SortIO(3000, bps[1]), 2*3000, 0, "at √R: two passes")
	approx(t, SortIO(3000, bps[0]), 4*3000, 0, "at ∛R: four passes")
	if SortBreakpoints(0) != nil || JoinBreakpoints(SortMerge, 0, 5, 3) != nil {
		t.Fatal("degenerate sizes should have no breakpoints")
	}
	if JoinBreakpoints(JoinMethod(99), 5, 5, 3) != nil {
		t.Fatal("unknown method should have no breakpoints")
	}
}

// Property: join cost is monotone non-increasing in memory for all
// methods — more buffer never hurts under this model.
func TestQuickMonotoneInMemory(t *testing.T) {
	f := func(ai, bi uint16, m1, m2 uint16) bool {
		a, b := float64(ai)+1, float64(bi)+1
		lo, hi := float64(m1)+3, float64(m2)+3
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, m := range Methods {
			if JoinIO(m, a, b, hi) > JoinIO(m, a, b, lo) {
				return false
			}
		}
		return SortIO(a, hi) <= SortIO(a, lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: with ample memory every method degenerates to reading both
// inputs once (NL variants and the in-memory hash case of GH) or one
// full read-write pass (SM, which always materializes sorted runs).
func TestQuickAmpleMemory(t *testing.T) {
	f := func(ai, bi uint16) bool {
		a, b := float64(ai)+1, float64(bi)+1
		m := a + b + 10
		if JoinIO(PageNL, a, b, m) != a+b {
			return false
		}
		if JoinIO(BlockNL, a, b, m) != a+b {
			return false
		}
		if JoinIO(SortMerge, a, b, m) != 2*(a+b) {
			return false
		}
		return JoinIO(GraceHash, a, b, m) == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Grace hash is never costlier than sort-merge at equal inputs
// and memory (its pivot is the smaller relation).
func TestQuickGraceLEQSortMerge(t *testing.T) {
	f := func(ai, bi, mi uint16) bool {
		a, b, m := float64(ai)+1, float64(bi)+1, float64(mi)+1
		return JoinIO(GraceHash, a, b, m) <= JoinIO(SortMerge, a, b, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
