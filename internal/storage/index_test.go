package storage

import (
	"errors"
	"math/rand"
	"testing"
)

// buildStore generates one relation and returns the store holding it.
func buildStore(t *testing.T, seed int64, pages, tpp int, keyRange int64, sorted bool) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spec := GenSpec{Name: "T", Pages: pages, TuplesPerPage: tpp, KeyRange: keyRange}
	var rel *Relation
	var err error
	if sorted {
		rel, err = GenerateSorted(spec, rng)
	} else {
		rel, err = Generate(spec, rng)
	}
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	if err := s.Add(rel); err != nil {
		t.Fatal(err)
	}
	return s
}

// directReader reads index pages straight from the store (uncharged).
func directReader(s *Store) PageReader {
	return func(rel string, page int) ([]Tuple, error) {
		r, err := s.Get(rel)
		if err != nil {
			return nil, err
		}
		return r.Page(page)
	}
}

// TestBuildIndexStructure: the built tree has the fanout-derived height,
// covers every row exactly once, and registers its page relations.
func TestBuildIndexStructure(t *testing.T) {
	s := buildStore(t, 1, 40, 6, 500, false)
	ix, err := BuildIndex(s, "ix_T_k", "T", "k", false, 16)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := s.Get("T")
	rows := rel.NumTuples()
	// 240 rows / fanout 16 = 15 leaf pages -> one internal level.
	if ix.LeafPages() != (rows+15)/16 {
		t.Fatalf("leaf pages %d for %d rows", ix.LeafPages(), rows)
	}
	if ix.Height() != 1 {
		t.Fatalf("height %d, want 1", ix.Height())
	}
	count := 0
	prev := int64(-1)
	err = ix.WalkRange(directReader(s), -1, 1<<62, func(k int64, page, slot int) error {
		if k < prev {
			t.Fatalf("walk out of key order: %d after %d", k, prev)
		}
		prev = k
		pg, err := rel.Page(page)
		if err != nil {
			return err
		}
		if pg[slot][0] != k {
			t.Fatalf("entry (%d,%d) points at key %d, want %d", page, slot, pg[slot][0], k)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != rows {
		t.Fatalf("walk visited %d entries, want %d", count, rows)
	}
	if _, err := s.Index("ix_T_k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("ix_T_k!leaf"); err != nil {
		t.Fatal(err)
	}
	if !ix.Fresh(s) {
		t.Fatal("freshly built index reported stale")
	}
}

// TestWalkRangeMatchesScan: for a sweep of ranges, the walk returns exactly
// the rows a full scan would filter — on sorted and unsorted data.
func TestWalkRangeMatchesScan(t *testing.T) {
	for _, sorted := range []bool{true, false} {
		s := buildStore(t, 7, 20, 5, 120, sorted)
		ix, err := BuildIndex(s, "ix", "T", "k", sorted, 8)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := s.Get("T")
		for _, r := range [][2]int64{{0, 0}, {5, 30}, {60, 119}, {-10, 500}, {119, 119}, {50, 40}} {
			want := 0
			for _, tp := range rel.AllTuples() {
				if tp[0] >= r[0] && tp[0] <= r[1] {
					want++
				}
			}
			got := 0
			err := ix.WalkRange(directReader(s), r[0], r[1], func(k int64, page, slot int) error {
				got++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("sorted=%v range [%d,%d]: walk %d rows, scan %d", sorted, r[0], r[1], got, want)
			}
		}
	}
}

// TestWalkRangeDuplicateRunAcrossPages: a run of duplicate keys spanning a
// leaf-page boundary must be returned in full — the descent has to land on
// the *first* page that can hold the bound, because a separator equals its
// subtree's first key and duplicates can start at the preceding page's
// tail. (Regression: a `<= lo` descent skipped to the last duplicate page
// and dropped qualifying rows.)
func TestWalkRangeDuplicateRunAcrossPages(t *testing.T) {
	rel, err := NewRelation("T", []string{"k"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{5, 5, 5, 7, 7, 7, 7, 9} {
		if err := rel.Append(Tuple{k}); err != nil {
			t.Fatal(err)
		}
	}
	s := NewStore()
	if err := s.Add(rel); err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(s, "ix", "T", "k", true, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		lo, hi int64
		want   int
	}{{7, 7, 4}, {5, 5, 3}, {6, 7, 4}, {7, 9, 5}, {9, 9, 1}} {
		got := 0
		if err := ix.WalkRange(directReader(s), tc.lo, tc.hi, func(int64, int, int) error {
			got++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("range [%d,%d]: %d entries, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

// TestBuildIndexTallTree: a tiny fanout forces multiple internal levels and
// the walk still resolves correctly through them.
func TestBuildIndexTallTree(t *testing.T) {
	s := buildStore(t, 3, 30, 8, 1000, false)
	ix, err := BuildIndex(s, "ix", "T", "k", false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Height() < 3 {
		t.Fatalf("fanout 2 over 240 rows should be tall, height %d", ix.Height())
	}
	rel, _ := s.Get("T")
	want := 0
	for _, tp := range rel.AllTuples() {
		if tp[0] >= 100 && tp[0] <= 300 {
			want++
		}
	}
	got := 0
	if err := ix.WalkRange(directReader(s), 100, 300, func(int64, int, int) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("tall tree walk %d, want %d", got, want)
	}
}

// TestBuildIndexValidation: clustered build on unsorted data, duplicate
// names and bad specs all fail cleanly.
func TestBuildIndexValidation(t *testing.T) {
	s := buildStore(t, 5, 10, 6, 50, false)
	if _, err := BuildIndex(s, "ix", "T", "k", true, 8); !errors.Is(err, ErrNotSorted) {
		t.Fatalf("clustered over unsorted data: %v", err)
	}
	if _, err := BuildIndex(s, "ix", "T", "k", false, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndex(s, "ix", "T", "k", false, 8); !errors.Is(err, ErrDupIndex) {
		t.Fatalf("duplicate index: %v", err)
	}
	if _, err := BuildIndex(s, "ix2", "T", "zz", false, 8); err == nil {
		t.Fatal("missing column must fail")
	}
	if _, err := BuildIndex(s, "ix3", "T", "k", false, 1); !errors.Is(err, ErrBadIndex) {
		t.Fatal("fanout 1 must fail")
	}
	if _, err := s.Index("nope"); !errors.Is(err, ErrNoIndex) {
		t.Fatal("missing index lookup must fail")
	}
}
