package storage

import (
	"errors"
	"math/rand"
	"testing"
)

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation("", []string{"a"}, 4); !errors.Is(err, ErrBadSchema) {
		t.Fatal("empty name")
	}
	if _, err := NewRelation("r", nil, 4); !errors.Is(err, ErrBadSchema) {
		t.Fatal("no columns")
	}
	if _, err := NewRelation("r", []string{"a"}, 0); !errors.Is(err, ErrBadSchema) {
		t.Fatal("zero tpp")
	}
	if _, err := NewRelation("r", []string{"a", "a"}, 4); !errors.Is(err, ErrBadSchema) {
		t.Fatal("dup column")
	}
	if _, err := NewRelation("r", []string{""}, 4); !errors.Is(err, ErrBadSchema) {
		t.Fatal("empty column")
	}
}

func TestAppendAndPaging(t *testing.T) {
	r, err := NewRelation("r", []string{"k", "v"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := r.Append(Tuple{i, i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if r.NumPages() != 4 || r.NumTuples() != 10 {
		t.Fatalf("pages=%d tuples=%d", r.NumPages(), r.NumTuples())
	}
	p, err := r.Page(3)
	if err != nil || len(p) != 1 {
		t.Fatalf("last page: %v %v", p, err)
	}
	if _, err := r.Page(4); !errors.Is(err, ErrBadPage) {
		t.Fatal("out of range")
	}
	if _, err := r.Page(-1); !errors.Is(err, ErrBadPage) {
		t.Fatal("negative index")
	}
	if err := r.Append(Tuple{1}); !errors.Is(err, ErrBadSchema) {
		t.Fatal("wrong width tuple")
	}
	ci, err := r.ColIndex("v")
	if err != nil || ci != 1 {
		t.Fatalf("ColIndex: %d %v", ci, err)
	}
	if _, err := r.ColIndex("zz"); !errors.Is(err, ErrNoColumn) {
		t.Fatal("missing column")
	}
}

func TestAppendPage(t *testing.T) {
	r, _ := NewRelation("r", []string{"k"}, 2)
	if err := r.AppendPage([]Tuple{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendPage([]Tuple{{1}, {2}, {3}}); !errors.Is(err, ErrBadSchema) {
		t.Fatal("oversized page")
	}
	if err := r.AppendPage([]Tuple{{1, 2}}); !errors.Is(err, ErrBadSchema) {
		t.Fatal("wrong width in page")
	}
	if r.NumPages() != 1 {
		t.Fatal("page count")
	}
}

func TestTupleClone(t *testing.T) {
	a := Tuple{1, 2}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("clone aliased")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	r, _ := NewRelation("r", []string{"k"}, 2)
	if err := s.Add(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(r); !errors.Is(err, ErrDupRelation) {
		t.Fatal("dup add")
	}
	got, err := s.Get("r")
	if err != nil || got != r {
		t.Fatal("get")
	}
	if _, err := s.Get("zz"); !errors.Is(err, ErrNoRelation) {
		t.Fatal("missing")
	}
	t1, err := s.NewTemp("tmp", []string{"k"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.NewTemp("tmp", []string{"k"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Name == t2.Name {
		t.Fatal("temp names must be unique")
	}
	names := s.Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	s.Drop(t1.Name)
	if _, err := s.Get(t1.Name); err == nil {
		t.Fatal("dropped relation still present")
	}
	s.Drop("absent") // no-op
}

func TestGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel, err := Generate(GenSpec{Name: "g", Pages: 10, TuplesPerPage: 8, KeyRange: 100, PayloadCols: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumPages() != 10 || rel.NumTuples() != 80 {
		t.Fatalf("pages=%d tuples=%d", rel.NumPages(), rel.NumTuples())
	}
	if len(rel.Cols) != 3 || rel.Cols[0] != "k" || rel.Cols[1] != "p0" {
		t.Fatalf("cols = %v", rel.Cols)
	}
	for _, tp := range rel.AllTuples() {
		if tp[0] < 0 || tp[0] >= 100 {
			t.Fatalf("key out of range: %d", tp[0])
		}
	}
	if _, err := Generate(GenSpec{Name: "g2", Pages: 0, TuplesPerPage: 8, KeyRange: 10}, rng); !errors.Is(err, ErrBadSchema) {
		t.Fatal("zero pages should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Name: "g", Pages: 5, TuplesPerPage: 4, KeyRange: 50}
	a, err := Generate(spec, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	at, bt := a.AllTuples(), b.AllTuples()
	for i := range at {
		if at[i][0] != bt[i][0] {
			t.Fatal("same seed must generate same data")
		}
	}
}

func TestGenerateSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel, err := GenerateSorted(GenSpec{Name: "s", Pages: 6, TuplesPerPage: 5, KeyRange: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	all := rel.AllTuples()
	for i := 1; i < len(all); i++ {
		if all[i][0] < all[i-1][0] {
			t.Fatal("not sorted")
		}
	}
	if rel.NumTuples() != 30 {
		t.Fatal("tuple count changed")
	}
}
