// Package storage implements the synthetic paged storage layer beneath the
// mini execution engine: relations as arrays of fixed-capacity pages of
// integer tuples, plus deterministic data generators with controllable
// join selectivity. The engine layers a buffer pool (internal/buffer) on
// top and counts page I/Os against it; storage itself is the "disk".
package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Errors.
var (
	ErrDupRelation = errors.New("storage: duplicate relation")
	ErrNoRelation  = errors.New("storage: no such relation")
	ErrNoColumn    = errors.New("storage: no such column")
	ErrBadPage     = errors.New("storage: page index out of range")
	ErrBadSchema   = errors.New("storage: invalid schema")
)

// Tuple is a fixed-width row of integer attributes.
type Tuple []int64

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	return append(Tuple(nil), t...)
}

// Relation is a paged table: pages of at most tuplesPerPage tuples.
type Relation struct {
	Name          string
	Cols          []string
	TuplesPerPage int
	pages         [][]Tuple
}

// NewRelation builds an empty relation.
func NewRelation(name string, cols []string, tuplesPerPage int) (*Relation, error) {
	if name == "" || len(cols) == 0 || tuplesPerPage <= 0 {
		return nil, ErrBadSchema
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if c == "" || seen[c] {
			return nil, fmt.Errorf("%w: bad column %q", ErrBadSchema, c)
		}
		seen[c] = true
	}
	return &Relation{Name: name, Cols: append([]string(nil), cols...), TuplesPerPage: tuplesPerPage}, nil
}

// ColIndex returns the position of a column.
func (r *Relation) ColIndex(name string) (int, error) {
	for i, c := range r.Cols {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %s.%s", ErrNoColumn, r.Name, name)
}

// NumPages returns the page count.
func (r *Relation) NumPages() int { return len(r.pages) }

// NumTuples returns the total tuple count.
func (r *Relation) NumTuples() int {
	n := 0
	for _, p := range r.pages {
		n += len(p)
	}
	return n
}

// Page returns the raw page (no I/O accounting; the buffer pool is the
// accounted path).
func (r *Relation) Page(i int) ([]Tuple, error) {
	if i < 0 || i >= len(r.pages) {
		return nil, fmt.Errorf("%w: %s[%d] of %d", ErrBadPage, r.Name, i, len(r.pages))
	}
	return r.pages[i], nil
}

// Append adds tuples, filling the last page before opening new ones.
func (r *Relation) Append(tuples ...Tuple) error {
	for _, t := range tuples {
		if len(t) != len(r.Cols) {
			return fmt.Errorf("%w: tuple width %d vs %d columns", ErrBadSchema, len(t), len(r.Cols))
		}
		if n := len(r.pages); n == 0 || len(r.pages[n-1]) >= r.TuplesPerPage {
			r.pages = append(r.pages, make([]Tuple, 0, r.TuplesPerPage))
		}
		last := len(r.pages) - 1
		r.pages[last] = append(r.pages[last], t)
	}
	return nil
}

// AppendPage adds a pre-built page verbatim (used when spilling runs).
func (r *Relation) AppendPage(page []Tuple) error {
	if len(page) > r.TuplesPerPage {
		return fmt.Errorf("%w: page of %d tuples exceeds capacity %d", ErrBadSchema, len(page), r.TuplesPerPage)
	}
	for _, t := range page {
		if len(t) != len(r.Cols) {
			return fmt.Errorf("%w: tuple width %d vs %d columns", ErrBadSchema, len(t), len(r.Cols))
		}
	}
	r.pages = append(r.pages, append([]Tuple(nil), page...))
	return nil
}

// AllTuples flattens the relation (testing helper; no I/O accounting).
func (r *Relation) AllTuples() []Tuple {
	out := make([]Tuple, 0, r.NumTuples())
	for _, p := range r.pages {
		out = append(out, p...)
	}
	return out
}

// Store is a named collection of relations — the "disk" — plus the
// registry of indexes built over them (see index.go).
type Store struct {
	rels    map[string]*Relation
	indexes map[string]*Index
	tempSeq int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{rels: make(map[string]*Relation), indexes: make(map[string]*Index)}
}

// Add registers a relation.
func (s *Store) Add(r *Relation) error {
	if _, ok := s.rels[r.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDupRelation, r.Name)
	}
	s.rels[r.Name] = r
	return nil
}

// Get returns a relation.
func (s *Store) Get(name string) (*Relation, error) {
	r, ok := s.rels[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRelation, name)
	}
	return r, nil
}

// Drop removes a relation (no-op if absent).
func (s *Store) Drop(name string) {
	delete(s.rels, name)
}

// NewTemp creates a uniquely named temporary relation (spill runs, hash
// partitions, intermediate results).
func (s *Store) NewTemp(prefix string, cols []string, tuplesPerPage int) (*Relation, error) {
	s.tempSeq++
	name := fmt.Sprintf("%s#%d", prefix, s.tempSeq)
	r, err := NewRelation(name, cols, tuplesPerPage)
	if err != nil {
		return nil, err
	}
	if err := s.Add(r); err != nil {
		return nil, err
	}
	return r, nil
}

// Names returns all relation names, sorted (diagnostics).
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- generators ----------------------------------------------------------

// GenSpec controls synthetic relation generation.
type GenSpec struct {
	Name          string
	Pages         int
	TuplesPerPage int
	// KeyRange draws the "k" column uniformly from [0, KeyRange); a join
	// between two relations with the same KeyRange has row selectivity
	// ≈ 1/KeyRange.
	KeyRange int64
	// Payload columns beyond "k" are filled with rng noise.
	PayloadCols int
}

// Generate builds a relation per spec with deterministic rng data. Columns
// are "k", then "p0", "p1", ...
func Generate(spec GenSpec, rng *rand.Rand) (*Relation, error) {
	if spec.Pages <= 0 || spec.TuplesPerPage <= 0 || spec.KeyRange <= 0 {
		return nil, fmt.Errorf("%w: non-positive generation spec", ErrBadSchema)
	}
	cols := []string{"k"}
	for i := 0; i < spec.PayloadCols; i++ {
		cols = append(cols, fmt.Sprintf("p%d", i))
	}
	rel, err := NewRelation(spec.Name, cols, spec.TuplesPerPage)
	if err != nil {
		return nil, err
	}
	n := spec.Pages * spec.TuplesPerPage
	for i := 0; i < n; i++ {
		t := make(Tuple, len(cols))
		t[0] = rng.Int63n(spec.KeyRange)
		for j := 1; j < len(cols); j++ {
			t[j] = rng.Int63()
		}
		if err := rel.Append(t); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// GenerateSorted is Generate with the relation pre-sorted on "k" —
// convenient for building clustered-index-like inputs.
func GenerateSorted(spec GenSpec, rng *rand.Rand) (*Relation, error) {
	rel, err := Generate(spec, rng)
	if err != nil {
		return nil, err
	}
	all := rel.AllTuples()
	sort.Slice(all, func(i, j int) bool { return all[i][0] < all[j][0] })
	out, err := NewRelation(spec.Name, rel.Cols, spec.TuplesPerPage)
	if err != nil {
		return nil, err
	}
	for _, t := range all {
		if err := out.Append(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}
