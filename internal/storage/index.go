package storage

import (
	"errors"
	"fmt"
	"sort"
)

// Index errors.
var (
	ErrDupIndex   = errors.New("storage: duplicate index")
	ErrNoIndex    = errors.New("storage: no such index")
	ErrBadIndex   = errors.New("storage: invalid index spec")
	ErrNotSorted  = errors.New("storage: clustered index requires a relation sorted on the key")
	ErrStaleIndex = errors.New("storage: relation changed since the index was built")
)

// Index is a B+-tree-shaped secondary index over one integer column of a
// relation, materialized as *paged relations* in the same store the data
// lives in: the leaf level is a relation of (key, page, slot) entries in
// key order, and the internal levels are relations of (separatorKey,
// childPage) entries, root level first. Because index pages are ordinary
// storage pages, the execution engine walks an index through the same
// buffer.Pool it reads data pages through — every root-to-leaf step, leaf
// page and data-page fetch is a counted physical I/O, which is exactly what
// the analytic cost.IndexScanIO formula charges (height + fetches).
//
// A clustered index requires the relation to be stored in key order; its
// range scans then touch each qualifying data page once (the formula's
// ⌈sel·pages⌉). An unclustered index scatters: each qualifying entry
// fetches its own data page (the formula's ⌈sel·rows⌉, minus whatever the
// scan pool's few frames happen to keep resident).
type Index struct {
	Name      string
	Table     string
	Column    string
	Clustered bool
	// Fanout is the entry capacity of every index page (leaf and internal).
	// The height below is derived from it: ⌈log_Fanout⌉ levels until the
	// root fits one page.
	Fanout int

	col       int // key column position in the indexed relation
	height    int // number of internal levels above the leaves
	leaves    *Relation
	nodes     *Relation  // all internal levels concatenated, root first
	levels    []nodeSpan // page spans of nodes, root level first
	dataPages int        // relation page count at build time (staleness check)
}

// nodeSpan is one internal level's page range within the nodes relation.
type nodeSpan struct {
	start, count int
}

// Leaf and internal entry layouts within the index relations.
const (
	leafKeyCol  = 0
	leafPageCol = 1
	leafSlotCol = 2
	nodeKeyCol  = 0
	nodeKidCol  = 1
)

// indexEntry is one leaf entry during construction.
type indexEntry struct {
	key  int64
	page int
	slot int
}

// BuildIndex constructs an index named name over table.column with the
// given fanout, registering the index and its node/leaf page relations in
// the store. The page relations are named name+"!leaf" and name+"!node";
// "!" cannot appear in generated or temp relation names, so they never
// collide with data.
func BuildIndex(s *Store, name, table, column string, clustered bool, fanout int) (*Index, error) {
	if name == "" || fanout < 2 {
		return nil, fmt.Errorf("%w: name %q fanout %d", ErrBadIndex, name, fanout)
	}
	if _, ok := s.indexes[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDupIndex, name)
	}
	rel, err := s.Get(table)
	if err != nil {
		return nil, err
	}
	col, err := rel.ColIndex(column)
	if err != nil {
		return nil, err
	}

	// Collect every (key, page, slot), then order by key; ties keep
	// physical order so a clustered scan visits pages monotonically.
	var entries []indexEntry
	prev := int64(0)
	sorted := true
	for p := 0; p < rel.NumPages(); p++ {
		page, err := rel.Page(p)
		if err != nil {
			return nil, err
		}
		for slot, t := range page {
			k := t[col]
			if len(entries) > 0 && k < prev {
				sorted = false
			}
			prev = k
			entries = append(entries, indexEntry{key: k, page: p, slot: slot})
		}
	}
	if clustered && !sorted {
		return nil, fmt.Errorf("%w: %s.%s", ErrNotSorted, table, column)
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	leaves, err := NewRelation(name+"!leaf", []string{"key", "page", "slot"}, fanout)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if err := leaves.Append(Tuple{e.key, int64(e.page), int64(e.slot)}); err != nil {
			return nil, err
		}
	}

	// Build internal levels bottom-up: level 0 summarizes the leaves, each
	// higher level summarizes the one below, until a level fits one page.
	// Child references are page numbers *within the child level*.
	type levelEntry struct {
		key int64
		kid int
	}
	summarize := func(firstKeys []int64) []levelEntry {
		out := make([]levelEntry, len(firstKeys))
		for i, k := range firstKeys {
			out[i] = levelEntry{key: k, kid: i}
		}
		return out
	}
	firstKeyOf := func(entries []levelEntry, fanout int) []int64 {
		var keys []int64
		for i := 0; i < len(entries); i += fanout {
			keys = append(keys, entries[i].key)
		}
		return keys
	}
	leafFirst := make([]int64, 0, leaves.NumPages())
	for p := 0; p < leaves.NumPages(); p++ {
		pg, err := leaves.Page(p)
		if err != nil {
			return nil, err
		}
		if len(pg) > 0 {
			leafFirst = append(leafFirst, pg[0][leafKeyCol])
		}
	}
	var built [][]levelEntry // bottom-up: built[0] points at leaves
	if len(leafFirst) > 1 {
		level := summarize(leafFirst)
		built = append(built, level)
		for (len(level)+fanout-1)/fanout > 1 {
			level = summarize(firstKeyOf(level, fanout))
			built = append(built, level)
		}
	}

	nodes, err := NewRelation(name+"!node", []string{"key", "child"}, fanout)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		Name: name, Table: table, Column: column, Clustered: clustered,
		Fanout: fanout, col: col, height: len(built),
		leaves: leaves, nodes: nodes, dataPages: rel.NumPages(),
	}
	// Flatten root level first, recording each level's page span. Levels
	// are page-aligned (AppendPage, not Append): a child reference is a
	// page number within its level, so levels must not share pages.
	for li := len(built) - 1; li >= 0; li-- {
		span := nodeSpan{start: nodes.NumPages()}
		for i := 0; i < len(built[li]); i += fanout {
			end := i + fanout
			if end > len(built[li]) {
				end = len(built[li])
			}
			page := make([]Tuple, 0, end-i)
			for _, e := range built[li][i:end] {
				page = append(page, Tuple{e.key, int64(e.kid)})
			}
			if err := nodes.AppendPage(page); err != nil {
				return nil, err
			}
		}
		span.count = nodes.NumPages() - span.start
		ix.levels = append(ix.levels, span)
	}

	if err := s.Add(leaves); err != nil {
		return nil, err
	}
	if err := s.Add(nodes); err != nil {
		s.Drop(leaves.Name)
		return nil, err
	}
	if err := s.AddIndex(ix); err != nil {
		s.Drop(leaves.Name)
		s.Drop(nodes.Name)
		return nil, err
	}
	return ix, nil
}

// Height returns the number of internal (non-leaf) levels — the pages read
// root-to-leaf per probe, and the value catalog.Index.Height should carry
// so the analytic cost model describes this structure.
func (ix *Index) Height() int { return ix.height }

// LeafPages returns the leaf level's page count.
func (ix *Index) LeafPages() int { return ix.leaves.NumPages() }

// KeyCol returns the indexed column's position in the data relation.
func (ix *Index) KeyCol() int { return ix.col }

// PageReader fetches one page of a named relation — the hook through which
// index walks charge their I/O (the engine passes buffer.Pool.Read; tests
// may pass Store-direct reads for uncharged inspection).
type PageReader func(rel string, page int) ([]Tuple, error)

// WalkRange visits, in key order, every leaf entry with key in [lo, hi],
// reading the root-to-leaf path and each touched leaf page through read.
// emit receives (key, dataPage, slot) per entry. The walk reads height
// internal pages plus the contiguous run of leaf pages covering the range.
func (ix *Index) WalkRange(read PageReader, lo, hi int64, emit func(key int64, page, slot int) error) error {
	if hi < lo || ix.leaves.NumPages() == 0 {
		return nil
	}
	// Root-to-leaf: at each internal level take the last entry whose
	// separator key is strictly below lo (the first entry when none is).
	// Strict: a separator equals its subtree's *first* key, so a run of
	// duplicates equal to lo can begin at the tail of the preceding
	// subtree — descending to `<= lo` would skip those entries and drop
	// qualifying rows, not just misprice them.
	child := 0
	for _, span := range ix.levels {
		page, err := read(ix.nodes.Name, span.start+child)
		if err != nil {
			return err
		}
		next := 0
		for _, e := range page {
			if e[nodeKeyCol] < lo {
				next = int(e[nodeKidCol])
			} else {
				break
			}
		}
		child = next
	}
	for lp := child; lp < ix.leaves.NumPages(); lp++ {
		page, err := read(ix.leaves.Name, lp)
		if err != nil {
			return err
		}
		for _, e := range page {
			k := e[leafKeyCol]
			if k < lo {
				continue
			}
			if k > hi {
				return nil
			}
			if err := emit(k, int(e[leafPageCol]), int(e[leafSlotCol])); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fresh reports whether the indexed relation still has the page count it
// had at build time (this storage layer is append-only, so a changed page
// count is the staleness signal).
func (ix *Index) Fresh(s *Store) bool {
	rel, err := s.Get(ix.Table)
	return err == nil && rel.NumPages() == ix.dataPages
}

// AddIndex registers a pre-built index (BuildIndex calls this; exposed for
// stores assembled from parts).
func (s *Store) AddIndex(ix *Index) error {
	if _, ok := s.indexes[ix.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDupIndex, ix.Name)
	}
	if s.indexes == nil {
		s.indexes = make(map[string]*Index)
	}
	s.indexes[ix.Name] = ix
	return nil
}

// Index returns the named index.
func (s *Store) Index(name string) (*Index, error) {
	ix, ok := s.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoIndex, name)
	}
	return ix, nil
}

// IndexNames returns all registered index names, sorted (diagnostics).
func (s *Store) IndexNames() []string {
	out := make([]string, 0, len(s.indexes))
	for n := range s.indexes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
