// Package pool provides the indexed worker-pool primitive shared by the
// optimizer's per-bucket fan-out and the batch optimization pipeline.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves an effective concurrency for n independent sub-runs:
// requested if positive (capped at n), otherwise GOMAXPROCS, never below 1.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run evaluates f(0) … f(n-1) across at most workers goroutines and returns
// the first error by index order. Each f writes its result into a
// caller-owned slot, so callers get deterministic, input-ordered output no
// matter how the runs interleave; with workers <= 1 it degenerates to a
// plain loop. A returned error stops remaining runs from starting (in-flight
// ones finish).
func Run(n, workers int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := f(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
