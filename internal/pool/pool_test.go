package pool

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct{ requested, n, want int }{
		{1, 10, 1},
		{4, 10, 4},
		{16, 4, 4}, // capped at n
		{0, 2, min(runtime.GOMAXPROCS(0), 2)},
		{-3, 1, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestRun(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		var sum atomic.Int64
		order := make([]int, 10)
		err := Run(10, workers, func(i int) error {
			order[i] = i * i
			sum.Add(int64(i))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Load() != 45 {
			t.Fatalf("workers=%d: visited sum %d", workers, sum.Load())
		}
		for i, v := range order {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d holds %d", workers, i, v)
			}
		}
	}
}

func TestRunError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := Run(8, workers, func(i int) error {
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
