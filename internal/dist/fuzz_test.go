package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// FuzzNewDist throws arbitrary value/weight vectors at the Dist constructor
// and checks the package's core contract: New either rejects with ErrBadDist
// or returns a law whose invariants (ascending duplicate-free support,
// normalized mass, statistics inside the support range) all hold. Every
// algorithm in the repo leans on these invariants, so they must survive
// adversarial inputs — NaNs, infinities, subnormals, huge magnitudes.
func FuzzNewDist(f *testing.F) {
	f.Add(700.0, 2000.0, 0.0, 0.0, 0.2, 0.8, 0.0, 0.0, uint8(2))
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, uint8(4))          // duplicates merge
	f.Add(4096.0, 64.0, 1024.0, 256.0, 1.0, 3.0, 1.0, 2.0, uint8(4)) // unsorted input
	f.Add(0.0, -5.5, 12.25, 3.0, 0.0, 1.0, 2.0, 0.0, uint8(4))       // zero weights drop
	f.Add(math.NaN(), 1.0, 2.0, 3.0, 1.0, 1.0, 1.0, 1.0, uint8(4))   // must reject
	f.Add(1.0, 2.0, 3.0, 4.0, -1.0, 1.0, 1.0, 1.0, uint8(4))         // negative weight
	f.Add(math.MaxFloat64, -math.MaxFloat64, 0.0, 0.0, 0.5, 0.5, 0.0, 0.0, uint8(2))
	f.Add(5e-324, 1e308, 0.0, 0.0, 5e-324, 1e308, 0.0, 0.0, uint8(2)) // subnormal edge
	f.Add(1.0, 2.0, 0.0, 0.0, 1e308, 1e308, 0.0, 0.0, uint8(2))       // weight sum overflows
	f.Fuzz(func(t *testing.T, v0, v1, v2, v3, w0, w1, w2, w3 float64, n uint8) {
		k := int(n)%4 + 1
		vals := []float64{v0, v1, v2, v3}[:k]
		weights := []float64{w0, w1, w2, w3}[:k]
		d, err := New(vals, weights)
		if err != nil {
			if !errors.Is(err, ErrBadDist) {
				t.Fatalf("New rejected with a foreign error: %v", err)
			}
			if !d.IsZero() {
				t.Fatal("error return carried a non-zero Dist")
			}
			return
		}
		if d.Len() < 1 || d.Len() > k {
			t.Fatalf("support size %d outside [1, %d]", d.Len(), k)
		}
		mass := 0.0
		for i := 0; i < d.Len(); i++ {
			v, p := d.Value(i), d.Prob(i)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite support value %v", v)
			}
			if i > 0 && v <= d.Value(i-1) {
				t.Fatalf("support not strictly ascending at %d: %v after %v", i, v, d.Value(i-1))
			}
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("probability %v out of range", p)
			}
			mass += p
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Fatalf("total mass %v != 1", mass)
		}
		lo, hi := d.Min(), d.Max()
		slack := 1e-9 * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
		for name, stat := range map[string]float64{"mean": d.Mean(), "mode": d.Mode()} {
			if math.IsNaN(stat) || stat < lo-slack || stat > hi+slack {
				t.Fatalf("%s %v outside support range [%v, %v]", name, stat, lo, hi)
			}
		}
		sample := d.Sample(rand.New(rand.NewSource(1)))
		found := false
		for i := 0; i < d.Len(); i++ {
			if d.Value(i) == sample {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("Sample returned %v, not a support value", sample)
		}
	})
}
