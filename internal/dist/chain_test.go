package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// rowStochastic checks every row of a chain sums to 1 with non-negative
// entries.
func rowStochastic(t *testing.T, c *Chain) {
	t.Helper()
	for i, row := range c.rows {
		sum := 0.0
		for _, p := range row {
			if p < 0 {
				t.Fatalf("row %d has negative entry: %v", i, row)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v: %v", i, sum, row)
		}
	}
}

func TestStickyTransitions(t *testing.T) {
	c, err := Sticky([]float64{10, 20, 30}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rowStochastic(t, c)
	if c.Len() != 3 {
		t.Fatalf("Len %d", c.Len())
	}
	if got := c.States(); got[0] != 10 || got[2] != 30 {
		t.Fatalf("States %v", got)
	}
	// Boundary: all leave mass to the single neighbour.
	approx(t, c.rows[0][0], 0.8, 1e-12, "stay at bottom")
	approx(t, c.rows[0][1], 0.2, 1e-12, "bottom leaves up")
	// Interior: leave mass split evenly.
	approx(t, c.rows[1][0], 0.1, 1e-12, "interior down")
	approx(t, c.rows[1][2], 0.1, 1e-12, "interior up")
	// States returns a copy.
	c.States()[0] = -1
	if c.states[0] != 10 {
		t.Fatal("States leaked internal state")
	}
}

func TestStickySingleStateAndValidation(t *testing.T) {
	c, err := Sticky([]float64{100}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, c.rows[0][0], 1, 0, "one-state chain always stays")
	for _, bad := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := Sticky([]float64{1, 2}, bad); !errors.Is(err, ErrBadChain) {
			t.Fatalf("stay=%v should fail", bad)
		}
	}
	if _, err := Sticky(nil, 0.5); !errors.Is(err, ErrBadChain) {
		t.Fatal("no states should fail")
	}
	if _, err := Sticky([]float64{5, 5}, 0.5); !errors.Is(err, ErrBadChain) {
		t.Fatal("duplicate states should fail")
	}
}

func TestRandomWalkTransitions(t *testing.T) {
	c, err := RandomWalk([]float64{1, 2, 3}, 0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rowStochastic(t, c)
	// Interior.
	approx(t, c.rows[1][2], 0.2, 1e-12, "up")
	approx(t, c.rows[1][0], 0.3, 1e-12, "down")
	approx(t, c.rows[1][1], 0.5, 1e-12, "stay")
	// Reflecting boundaries fold the blocked move into staying.
	approx(t, c.rows[0][0], 0.8, 1e-12, "bottom stay")
	approx(t, c.rows[2][2], 0.7, 1e-12, "top stay")
	for _, bad := range [][2]float64{{-0.1, 0.1}, {0.1, -0.1}, {0.7, 0.7}, {math.NaN(), 0}} {
		if _, err := RandomWalk([]float64{1, 2}, bad[0], bad[1]); !errors.Is(err, ErrBadChain) {
			t.Fatalf("RandomWalk(%v) should fail", bad)
		}
	}
}

func TestQuickChainsAreRowStochastic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		states := make([]float64, n)
		for i := range states {
			states[i] = float64(i*i + 1)
		}
		s, err := Sticky(states, rng.Float64())
		if err != nil {
			return false
		}
		pUp := rng.Float64() / 2
		pDown := rng.Float64() / 2
		w, err := RandomWalk(states, pUp, pDown)
		if err != nil {
			return false
		}
		for _, c := range []*Chain{s, w} {
			for _, row := range c.rows {
				sum := 0.0
				for _, p := range row {
					if p < 0 {
						return false
					}
					sum += p
				}
				if math.Abs(sum-1) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseLawsEvolution(t *testing.T) {
	c, err := Sticky([]float64{10, 20}, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	init := Point(10)
	laws, err := c.PhaseLaws(init, 3)
	if err != nil || len(laws) != 3 {
		t.Fatalf("laws %v err %v", laws, err)
	}
	if !laws[0].ApproxEqual(init, 0) {
		t.Fatal("phase 0 is the initial law, exactly")
	}
	approx(t, laws[1].PrAtMost(10), 0.75, 1e-12, "one step")
	approx(t, laws[2].PrAtMost(10), 0.75*0.75+0.25*0.25, 1e-12, "two steps")
	for _, l := range laws {
		approx(t, l.TotalMass(), 1, 1e-12, "phase laws stay normalized")
	}
	// n clamps to one phase.
	laws, err = c.PhaseLaws(init, 0)
	if err != nil || len(laws) != 1 {
		t.Fatal("clamp")
	}
	// Off-state mass is rejected.
	if _, err := c.PhaseLaws(Point(15), 2); !errors.Is(err, ErrBadChain) {
		t.Fatal("off-state init should fail")
	}
	if _, err := c.PhaseLaws(Dist{}, 2); !errors.Is(err, ErrBadChain) {
		t.Fatal("zero init should fail")
	}
}

// TestSymmetricWalkConvergesToUniform: a reflecting random walk with
// pUp = pDown satisfies detailed balance with the uniform distribution,
// so phase evolution from ANY initial law must converge to uniform.
func TestSymmetricWalkConvergesToUniform(t *testing.T) {
	states := []float64{8, 64, 512, 4096}
	c, err := RandomWalk(states, 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	laws, err := c.PhaseLaws(Point(8), 400)
	if err != nil {
		t.Fatal(err)
	}
	last := laws[len(laws)-1]
	uniform, err := Uniform(states...)
	if err != nil {
		t.Fatal(err)
	}
	if tv := TotalVariation(last, uniform); tv > 1e-6 {
		t.Fatalf("symmetric walk should converge to uniform, TV = %v", tv)
	}
	// Convergence is monotone-ish: distance at the end is far below the
	// starting distance.
	if start := TotalVariation(laws[0], uniform); !(TotalVariation(last, uniform) < start/100) {
		t.Fatal("no contraction toward the stationary law")
	}
}

// TestStickyConvergesToStationary: the phase evolution of any ergodic
// sticky chain settles: successive phase laws stop changing, and the
// limit is invariant under one more step.
func TestStickyConvergesToStationary(t *testing.T) {
	levels := []float64{64, 256, 1024, 4096}
	c, err := Sticky(levels, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	init, err := Uniform(64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	laws, err := c.PhaseLaws(init, 600)
	if err != nil {
		t.Fatal(err)
	}
	last, prev := laws[len(laws)-1], laws[len(laws)-2]
	if tv := TotalVariation(last, prev); tv > 1e-9 {
		t.Fatalf("chain has not settled: TV between consecutive phases %v", tv)
	}
	// Invariance: evolving the limit one more phase changes nothing.
	more, err := c.PhaseLaws(last, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tv := TotalVariation(more[1], last); tv > 1e-9 {
		t.Fatalf("limit law is not invariant: TV %v", tv)
	}
	// For this sticky chain, detailed balance gives interior states twice
	// a boundary state's mass: π ∝ (1, 2, 2, 1).
	approx(t, last.Prob(0), 1.0/6, 1e-6, "boundary stationary mass")
	approx(t, last.Prob(1), 2.0/6, 1e-6, "interior stationary mass")
}

func TestSampleSeqFollowsChain(t *testing.T) {
	c, err := Sticky([]float64{10, 20}, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	stays, steps := 0, 0
	for run := 0; run < 2000; run++ {
		seq, err := c.SampleSeq(rng, Point(10), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != 5 || seq[0] != 10 {
			t.Fatalf("seq %v", seq)
		}
		for i := 1; i < len(seq); i++ {
			if seq[i] != 10 && seq[i] != 20 {
				t.Fatalf("off-state value %v", seq[i])
			}
			steps++
			if seq[i] == seq[i-1] {
				stays++
			}
		}
	}
	approx(t, float64(stays)/float64(steps), 0.75, 0.02, "empirical stay rate")
	if _, err := c.SampleSeq(rng, Point(99), 3); !errors.Is(err, ErrBadChain) {
		t.Fatal("off-state init should fail")
	}
	// n clamps to 1.
	seq, err := c.SampleSeq(rng, Point(10), 0)
	if err != nil || len(seq) != 1 {
		t.Fatal("clamp")
	}
}

func TestAllSeqsEnumeratesExactly(t *testing.T) {
	c, err := Sticky([]float64{10, 20}, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	init := MustNew([]float64{10, 20}, []float64{0.5, 0.5})
	seqs, probs, err := c.AllSeqs(init, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 8 || len(probs) != 8 {
		t.Fatalf("2 states × 3 phases → 8 sequences, got %d", len(seqs))
	}
	total := 0.0
	for i, s := range seqs {
		if len(s) != 3 {
			t.Fatalf("sequence length %d", len(s))
		}
		total += probs[i]
	}
	approx(t, total, 1, 1e-12, "sequence probabilities sum to 1")

	// The marginal of phase i over all sequences equals PhaseLaws[i].
	laws, err := c.PhaseLaws(init, 3)
	if err != nil {
		t.Fatal(err)
	}
	for phase := 0; phase < 3; phase++ {
		pLow := 0.0
		for i, s := range seqs {
			if s[phase] == 10 {
				pLow += probs[i]
			}
		}
		approx(t, pLow, laws[phase].PrAtMost(10), 1e-12, "sequence marginal matches phase law")
	}

	if _, _, err := c.AllSeqs(Point(42), 2); !errors.Is(err, ErrBadChain) {
		t.Fatal("off-state init should fail")
	}
}
