package dist

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func randLaw(rng *rand.Rand, n int, lo, hi float64) Dist {
	vals := make([]float64, n)
	weights := make([]float64, n)
	for i := range vals {
		vals[i] = lo + (hi-lo)*rng.Float64()
		weights[i] = rng.Float64() + 0.01
	}
	return MustNew(vals, weights)
}

// --- constructors --------------------------------------------------------

func TestNewNormalizesSortsAndMerges(t *testing.T) {
	d, err := New([]float64{400, 100, 400, 900}, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("duplicates should merge: len %d", d.Len())
	}
	if d.Value(0) != 100 || d.Value(1) != 400 || d.Value(2) != 900 {
		t.Fatalf("support not ascending: %v", d)
	}
	approx(t, d.Prob(1), 0.5, 1e-12, "merged weight")
	approx(t, d.TotalMass(), 1, 1e-12, "normalization")
}

func TestNewDropsZeroWeights(t *testing.T) {
	d, err := New([]float64{1, 2, 3}, []float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Value(0) != 1 || d.Value(1) != 3 {
		t.Fatalf("zero-weight bucket should vanish: %v", d)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name          string
		vals, weights []float64
	}{
		{"empty", nil, nil},
		{"length mismatch", []float64{1}, []float64{1, 2}},
		{"negative weight", []float64{1, 2}, []float64{1, -1}},
		{"zero total", []float64{1, 2}, []float64{0, 0}},
		{"nan value", []float64{math.NaN()}, []float64{1}},
		{"inf value", []float64{math.Inf(1)}, []float64{1}},
		{"nan weight", []float64{1}, []float64{math.NaN()}},
		{"inf weight", []float64{1}, []float64{math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := New(tc.vals, tc.weights); !errors.Is(err, ErrBadDist) {
			t.Fatalf("%s: want ErrBadDist, got %v", tc.name, err)
		}
	}
}

func TestMustNewPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid input")
		}
	}()
	MustNew(nil, nil)
}

func TestQuickNormalization(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randLaw(rng, 1+rng.Intn(20), 1, 1e6)
		if math.Abs(d.TotalMass()-1) > 1e-9 {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			if d.Prob(i) <= 0 {
				return false
			}
			if i > 0 && d.Value(i) <= d.Value(i-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPoint(t *testing.T) {
	p := Point(42)
	if p.IsZero() || p.Len() != 1 || p.Value(0) != 42 || p.Prob(0) != 1 {
		t.Fatalf("point law: %v", p)
	}
	approx(t, p.Mean(), 42, 0, "point mean")
	approx(t, p.Std(), 0, 0, "point std")
	if p.Mode() != 42 || p.Min() != 42 || p.Max() != 42 {
		t.Fatal("point stats")
	}
}

func TestBimodal(t *testing.T) {
	d, err := Bimodal(700, 2000, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Prob(0), 0.2, 1e-12, "low arm")
	approx(t, d.Mean(), 0.2*700+0.8*2000, 1e-9, "mean")
	if d.Mode() != 2000 {
		t.Fatal("mode must be the likely arm")
	}
	// Degenerate probabilities collapse to a point.
	for _, tc := range []struct{ p, want float64 }{{0, 2000}, {1, 700}} {
		d, err := Bimodal(700, 2000, tc.p)
		if err != nil || d.Len() != 1 || d.Value(0) != tc.want {
			t.Fatalf("Bimodal p=%v: %v %v", tc.p, d, err)
		}
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Bimodal(1, 2, bad); !errors.Is(err, ErrBadDist) {
			t.Fatalf("Bimodal(%v) should fail", bad)
		}
	}
}

func TestUniform(t *testing.T) {
	d, err := Uniform(64, 256, 1024, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		approx(t, d.Prob(i), 0.25, 1e-12, "uniform mass")
	}
	if _, err := Uniform(); !errors.Is(err, ErrBadDist) {
		t.Fatal("empty uniform should fail")
	}
}

func TestZipf(t *testing.T) {
	levels := []float64{64, 256, 1024, 4096}
	d, err := Zipf(levels, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Fatalf("len %d", d.Len())
	}
	for i := 1; i < d.Len(); i++ {
		if !(d.Prob(i) < d.Prob(i-1)) {
			t.Fatal("Zipf mass must decrease with rank")
		}
	}
	// s=0 degenerates to uniform.
	u, err := Zipf(levels, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, u.Prob(3), 0.25, 1e-12, "s=0 uniform")
	if _, err := Zipf(nil, 1); !errors.Is(err, ErrBadDist) {
		t.Fatal("empty levels should fail")
	}
	if _, err := Zipf(levels, -1); !errors.Is(err, ErrBadDist) {
		t.Fatal("negative exponent should fail")
	}
}

func TestSpreadAround(t *testing.T) {
	d, err := SpreadAround(1000, 900, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 || d.Value(0) != 100 || d.Value(1) != 1000 || d.Value(2) != 1900 {
		t.Fatalf("support: %v", d)
	}
	approx(t, d.Prob(1), 0.4, 1e-12, "center mass")
	approx(t, d.Prob(0), 0.3, 1e-12, "arm mass")
	approx(t, d.Mean(), 1000, 1e-9, "symmetric arms keep the mean")

	point, err := SpreadAround(500, 0, 0.5)
	if err != nil || point.Len() != 1 {
		t.Fatalf("zero width should be a point: %v %v", point, err)
	}
	if _, err := SpreadAround(100, 200, 0.5); !errors.Is(err, ErrBadDist) {
		t.Fatal("non-positive low arm should fail")
	}
	if _, err := SpreadAround(100, 50, 2); !errors.Is(err, ErrBadDist) {
		t.Fatal("bad pCenter should fail")
	}
	if _, err := SpreadAround(100, -1, 0.5); !errors.Is(err, ErrBadDist) {
		t.Fatal("negative width should fail")
	}
}

func TestEquiWidth(t *testing.T) {
	d, err := EquiWidth(0, 100, 4, func(c float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Fatalf("len %d", d.Len())
	}
	// Cell centers of [0,25), [25,50), ...
	if d.Value(0) != 12.5 || d.Value(3) != 87.5 {
		t.Fatalf("centers: %v", d)
	}
	// Weight function shapes the law.
	ramp, err := EquiWidth(2, 5000, 400, func(c float64) float64 { return 1 + c/5000 })
	if err != nil || ramp.Len() != 400 {
		t.Fatalf("ramp: %v", err)
	}
	if !(ramp.Prob(399) > ramp.Prob(0)) {
		t.Fatal("increasing weight function must tilt the law")
	}
	if _, err := EquiWidth(0, 100, 0, func(float64) float64 { return 1 }); !errors.Is(err, ErrBadDist) {
		t.Fatal("zero buckets should fail")
	}
	if _, err := EquiWidth(5, 5, 3, func(float64) float64 { return 1 }); !errors.Is(err, ErrBadDist) {
		t.Fatal("empty range should fail")
	}
}

// --- accessors and statistics -------------------------------------------

func TestZeroDist(t *testing.T) {
	var z Dist
	if !z.IsZero() || z.Len() != 0 {
		t.Fatal("zero law")
	}
	if z.Min() != 0 || z.Max() != 0 || z.Mode() != 0 || z.Mean() != 0 {
		t.Fatal("zero law stats")
	}
	if z.String() != "{}" {
		t.Fatalf("zero law string %q", z.String())
	}
	if Point(1).IsZero() {
		t.Fatal("point law is not zero")
	}
}

func TestStatsAgainstHand(t *testing.T) {
	d := MustNew([]float64{10, 20, 70}, []float64{1, 2, 1})
	approx(t, d.Mean(), (10+40+70)/4.0, 1e-12, "mean")
	variance := (math.Pow(10-30, 2) + 2*math.Pow(20-30, 2) + math.Pow(70-30, 2)) / 4
	approx(t, d.Std(), math.Sqrt(variance), 1e-12, "std")
	if d.Mode() != 20 {
		t.Fatal("mode")
	}
	if d.Min() != 10 || d.Max() != 70 {
		t.Fatal("min/max")
	}
	if got := d.Support(); len(got) != 3 || got[0] != 10 || got[2] != 70 {
		t.Fatalf("support %v", got)
	}
	// Support returns a copy — mutating it must not corrupt the law.
	s := d.Support()
	s[0] = -1
	if d.Value(0) != 10 {
		t.Fatal("Support leaked internal state")
	}
}

func TestModeTieGoesToSmallestValue(t *testing.T) {
	d := MustNew([]float64{700, 2000}, []float64{0.5, 0.5})
	if d.Mode() != 700 {
		t.Fatalf("tied mode should be the contended (low) state, got %v", d.Mode())
	}
}

func TestPrAtMostAndBetween(t *testing.T) {
	d := MustNew([]float64{700, 2000}, []float64{0.2, 0.8})
	approx(t, d.PrAtMost(699), 0, 0, "below support")
	approx(t, d.PrAtMost(700), 0.2, 1e-12, "inclusive")
	approx(t, d.PrAtMost(1999), 0.2, 1e-12, "between")
	approx(t, d.PrAtMost(2000), 1, 1e-12, "all")
	approx(t, d.PrBetween(700, 2000), 0.8, 1e-12, "half-open interval")
	approx(t, d.PrBetween(2000, 700), 0, 0, "inverted interval clamps")
}

func TestExpectF(t *testing.T) {
	d := MustNew([]float64{1, 2, 3}, []float64{1, 1, 2})
	got := d.ExpectF(func(v float64) float64 { return v * v })
	approx(t, got, (1+4+2*9)/4.0, 1e-12, "E[X^2]")
	approx(t, d.ExpectF(func(v float64) float64 { return v }), d.Mean(), 1e-12, "E[X] = Mean")
}

func TestCumTables(t *testing.T) {
	d := MustNew([]float64{10, 20, 30}, []float64{1, 2, 1})
	cumP, cumPE := d.CumTables()
	approx(t, cumP[0], 0.25, 1e-12, "cumP[0]")
	approx(t, cumP[2], 1, 1e-12, "cumP[last]")
	approx(t, cumPE[1], 10*0.25+20*0.5, 1e-12, "partial expectation")
	approx(t, cumPE[2], d.Mean(), 1e-12, "full partial expectation = mean")
}

func TestSampleMatchesLaw(t *testing.T) {
	d := MustNew([]float64{700, 2000}, []float64{0.2, 0.8})
	rng := rand.New(rand.NewSource(7))
	lows := 0
	const n = 100000
	for i := 0; i < n; i++ {
		switch v := d.Sample(rng); v {
		case 700:
			lows++
		case 2000:
		default:
			t.Fatalf("sampled off-support value %v", v)
		}
	}
	approx(t, float64(lows)/n, 0.2, 0.01, "sampling frequency")
}

// --- transformations -----------------------------------------------------

func TestMapMergesCollisions(t *testing.T) {
	d := MustNew([]float64{1, 5, 9}, []float64{1, 1, 2})
	clamped := d.Map(func(v float64) float64 { return math.Max(v, 5) })
	if clamped.Len() != 2 {
		t.Fatalf("clamp should merge: %v", clamped)
	}
	approx(t, clamped.Prob(0), 0.5, 1e-12, "merged mass at clamp floor")
	approx(t, clamped.TotalMass(), 1, 1e-12, "mass preserved")
	// The receiver is untouched (immutability).
	if d.Len() != 3 || d.Value(0) != 1 {
		t.Fatal("Map mutated its receiver")
	}
}

func TestShift(t *testing.T) {
	d := MustNew([]float64{10, 20}, []float64{1, 3})
	s := d.Shift(5)
	if s.Value(0) != 15 || s.Value(1) != 25 {
		t.Fatalf("shifted support %v", s)
	}
	approx(t, s.Mean(), d.Mean()+5, 1e-12, "mean shifts")
	approx(t, s.Std(), d.Std(), 1e-12, "std invariant under shift")
}

func TestRebucketPreservesMassAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		d := randLaw(rng, 1+rng.Intn(200), 2, 1e5)
		for _, b := range []int{1, 2, 3, 7, 27, 64} {
			r, err := d.Rebucket(b)
			if err != nil {
				t.Fatal(err)
			}
			if r.Len() > b {
				t.Fatalf("b=%d: got %d buckets", b, r.Len())
			}
			approx(t, r.TotalMass(), 1, 1e-9, "mass")
			approx(t, r.Mean(), d.Mean(), 1e-6*math.Max(1, d.Mean()), "mean")
		}
	}
}

func TestRebucketPassThroughAndErrors(t *testing.T) {
	d := MustNew([]float64{1, 2}, []float64{1, 1})
	r, err := d.Rebucket(5)
	if err != nil || !r.ApproxEqual(d, 0) {
		t.Fatalf("small laws pass through: %v %v", r, err)
	}
	if _, err := d.Rebucket(0); !errors.Is(err, ErrBadTarget) {
		t.Fatal("target 0 should fail with ErrBadTarget")
	}
	if _, err := d.Rebucket(-3); !errors.Is(err, ErrBadTarget) {
		t.Fatal("negative target should fail")
	}
}

func TestApproxEqual(t *testing.T) {
	a := MustNew([]float64{1, 2}, []float64{1, 1})
	b := MustNew([]float64{1, 2.0000001}, []float64{1, 1})
	if !a.ApproxEqual(a, 0) {
		t.Fatal("self equality")
	}
	if a.ApproxEqual(b, 0) {
		t.Fatal("exact comparison must see the value drift")
	}
	if !a.ApproxEqual(b, 1e-6) {
		t.Fatal("tolerant comparison must accept the drift")
	}
	if a.ApproxEqual(Point(1), 1) {
		t.Fatal("different lengths are never equal")
	}
}

func TestString(t *testing.T) {
	s := MustNew([]float64{700, 2000}, []float64{0.2, 0.8}).String()
	if !strings.Contains(s, "700:0.2") || !strings.Contains(s, "2000:0.8") {
		t.Fatalf("String() = %q", s)
	}
}

// --- combinators ---------------------------------------------------------

func TestExpect2And3(t *testing.T) {
	a := MustNew([]float64{1, 2}, []float64{1, 1})
	b := MustNew([]float64{10, 20}, []float64{3, 1})
	mul := func(x, y float64) float64 { return x * y }
	approx(t, Expect2(a, b, mul), a.Mean()*b.Mean(), 1e-12, "independence factorizes E[XY]")
	c := MustNew([]float64{0.5, 1.5}, []float64{1, 1})
	got := Expect3(a, b, c, func(x, y, z float64) float64 { return x * y * z })
	approx(t, got, a.Mean()*b.Mean()*c.Mean(), 1e-12, "E[XYZ]")
	// Non-multiplicative f: check against direct enumeration.
	sum := Expect2(a, b, func(x, y float64) float64 { return x + y })
	approx(t, sum, a.Mean()+b.Mean(), 1e-12, "E[X+Y]")
}

func TestCombine2And3ProductLaw(t *testing.T) {
	a := MustNew([]float64{10, 20}, []float64{0.5, 0.5})
	b := MustNew([]float64{100, 200}, []float64{0.5, 0.5})
	prod := Combine2(a, b, func(x, y float64) float64 { return x * y })
	// Products: 1000, 2000, 2000, 4000 → merged middle.
	if prod.Len() != 3 {
		t.Fatalf("len %d", prod.Len())
	}
	approx(t, prod.PrBetween(1500, 2500), 0.5, 1e-12, "merged middle mass")
	approx(t, prod.Mean(), a.Mean()*b.Mean(), 1e-9, "product mean")

	s := Point(0.01)
	triple := Combine3(a, b, s, func(x, y, z float64) float64 { return x * y * z })
	approx(t, triple.Mean(), a.Mean()*b.Mean()*0.01, 1e-9, "triple product mean")
	approx(t, triple.TotalMass(), 1, 1e-12, "mass")
}

func TestQuickCombineConsistentWithExpect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randLaw(rng, 1+rng.Intn(6), 1, 100)
		b := randLaw(rng, 1+rng.Intn(6), 1, 100)
		mul := func(x, y float64) float64 { return x * y }
		law := Combine2(a, b, mul)
		return math.Abs(law.Mean()-Expect2(a, b, mul)) <= 1e-9*math.Max(1, law.Mean())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- distances -----------------------------------------------------------

func TestTotalVariationAxioms(t *testing.T) {
	a := MustNew([]float64{0, 10}, []float64{0.5, 0.5})
	b := MustNew([]float64{0, 10}, []float64{0.9, 0.1})
	if TotalVariation(a, a) != 0 {
		t.Fatal("TV(a,a) = 0")
	}
	approx(t, TotalVariation(a, b), 0.4, 1e-12, "TV on shared support")
	approx(t, TotalVariation(a, b), TotalVariation(b, a), 0, "symmetry")
	disjoint := Point(100)
	approx(t, TotalVariation(a, disjoint), 1, 1e-12, "disjoint supports")
}

func TestQuickTotalVariationRangeAndTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randLaw(rng, 1+rng.Intn(8), 0, 50)
		b := randLaw(rng, 1+rng.Intn(8), 0, 50)
		c := randLaw(rng, 1+rng.Intn(8), 0, 50)
		ab, ba := TotalVariation(a, b), TotalVariation(b, a)
		if math.Abs(ab-ba) > 1e-12 || ab < 0 || ab > 1+1e-12 {
			return false
		}
		return ab <= TotalVariation(a, c)+TotalVariation(c, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWassersteinPointMasses(t *testing.T) {
	if d := Wasserstein1(Point(3), Point(11)); math.Abs(d-8) > 1e-12 {
		t.Fatalf("W1 of disjoint point masses must be |x-y|: %v", d)
	}
	if d := Wasserstein1(Point(5), Point(5)); d != 0 {
		t.Fatalf("W1 self = %v", d)
	}
	a := MustNew([]float64{0, 10}, []float64{0.5, 0.5})
	approx(t, Wasserstein1(a, Point(5)), 5, 1e-12, "each half moves 5")
	b := MustNew([]float64{0, 10}, []float64{0.9, 0.1})
	approx(t, Wasserstein1(a, b), 4, 1e-12, "0.4 mass moved 10 units")
}

func TestQuickWassersteinMetricAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randLaw(rng, 1+rng.Intn(8), 0, 100)
		b := randLaw(rng, 1+rng.Intn(8), 0, 100)
		c := randLaw(rng, 1+rng.Intn(8), 0, 100)
		ab, ba := Wasserstein1(a, b), Wasserstein1(b, a)
		if math.Abs(ab-ba) > 1e-9 || ab < 0 {
			return false
		}
		if Wasserstein1(a, a) > 1e-12 {
			return false
		}
		return ab <= Wasserstein1(a, c)+Wasserstein1(c, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDistancesDisagreeOnSupportDrift pins why the package exports BOTH
// metrics: nudging a bucket's value slightly is invisible to TV's
// pointwise comparison (maximal distance) but nearly free for W1 — the
// property the parametric plan cache's nearest-law lookup relies on.
func TestDistancesDisagreeOnSupportDrift(t *testing.T) {
	a := Point(1000)
	b := Point(1001)
	approx(t, TotalVariation(a, b), 1, 1e-12, "TV sees disjoint supports as maximally far")
	approx(t, Wasserstein1(a, b), 1, 1e-12, "W1 sees a 1-unit move as cheap")
}
