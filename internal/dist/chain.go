package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrBadChain reports invalid Markov-chain inputs.
var ErrBadChain = errors.New("dist: invalid markov chain")

// Chain is a row-stochastic Markov chain over ascending memory levels —
// the Section 3.5 model of memory that drifts between join phases as
// concurrent work starts and finishes. rows[i][j] is the probability of
// moving from state i to state j in one phase.
type Chain struct {
	states []float64
	rows   [][]float64
}

// newChain validates states (finite, duplicate-free; sorted internally)
// and allocates zeroed rows for the constructors to fill.
func newChain(states []float64) (*Chain, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("%w: no states", ErrBadChain)
	}
	s := append([]float64(nil), states...)
	sort.Float64s(s)
	for i, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite state %v", ErrBadChain, v)
		}
		if i > 0 && s[i-1] == v {
			return nil, fmt.Errorf("%w: duplicate state %v", ErrBadChain, v)
		}
	}
	rows := make([][]float64, len(s))
	for i := range rows {
		rows[i] = make([]float64, len(s))
	}
	return &Chain{states: s, rows: rows}, nil
}

// Sticky builds a chain that stays at its current level with probability
// stay and otherwise drifts to an adjacent level (interior states split
// the leave mass evenly between both neighbours; boundary states give it
// all to their single neighbour). A one-state chain always stays.
func Sticky(levels []float64, stay float64) (*Chain, error) {
	if math.IsNaN(stay) || stay < 0 || stay > 1 {
		return nil, fmt.Errorf("%w: stay probability %v", ErrBadChain, stay)
	}
	c, err := newChain(levels)
	if err != nil {
		return nil, err
	}
	n := len(c.states)
	for i := 0; i < n; i++ {
		switch {
		case n == 1:
			c.rows[i][i] = 1
		case i == 0:
			c.rows[i][i] = stay
			c.rows[i][i+1] = 1 - stay
		case i == n-1:
			c.rows[i][i] = stay
			c.rows[i][i-1] = 1 - stay
		default:
			c.rows[i][i] = stay
			c.rows[i][i-1] = (1 - stay) / 2
			c.rows[i][i+1] = (1 - stay) / 2
		}
	}
	return c, nil
}

// RandomWalk builds a birth-death chain: from an interior state, move up
// one level with probability pUp, down with pDown, and stay otherwise.
// Moves off the ends fold into staying, so the walk reflects at the
// boundaries. pUp + pDown must not exceed 1.
func RandomWalk(states []float64, pUp, pDown float64) (*Chain, error) {
	if math.IsNaN(pUp) || math.IsNaN(pDown) || pUp < 0 || pDown < 0 || pUp+pDown > 1 {
		return nil, fmt.Errorf("%w: pUp %v, pDown %v", ErrBadChain, pUp, pDown)
	}
	c, err := newChain(states)
	if err != nil {
		return nil, err
	}
	n := len(c.states)
	for i := 0; i < n; i++ {
		stay := 1 - pUp - pDown
		if i == 0 {
			stay += pDown
		} else {
			c.rows[i][i-1] = pDown
		}
		if i == n-1 {
			stay += pUp
		} else {
			c.rows[i][i+1] = pUp
		}
		c.rows[i][i] = stay
	}
	return c, nil
}

// Len returns the number of states.
func (c *Chain) Len() int { return len(c.states) }

// States returns a copy of the ascending state values.
func (c *Chain) States() []float64 {
	return append([]float64(nil), c.states...)
}

// State returns the i-th state value (ascending order, as in States) —
// the allocation-free accessor for hot loops that would otherwise copy
// the whole state slice. It panics on out-of-range indexes, mirroring
// slice semantics.
func (c *Chain) State(i int) float64 { return c.states[i] }

// Prob returns the one-step transition probability from state i to state j
// (states in ascending order, as returned by States). It panics on
// out-of-range indexes, mirroring slice semantics.
func (c *Chain) Prob(i, j int) float64 { return c.rows[i][j] }

// index locates a state value.
func (c *Chain) index(v float64) (int, bool) {
	i := sort.SearchFloat64s(c.states, v)
	if i < len(c.states) && c.states[i] == v {
		return i, true
	}
	return 0, false
}

// initVector converts an initial law into a probability vector over the
// chain's states, failing if the law puts mass outside them.
func (c *Chain) initVector(init Dist) ([]float64, error) {
	if init.IsZero() {
		return nil, fmt.Errorf("%w: empty initial law", ErrBadChain)
	}
	vec := make([]float64, len(c.states))
	for i := 0; i < init.Len(); i++ {
		j, ok := c.index(init.Value(i))
		if !ok {
			return nil, fmt.Errorf("%w: initial law value %v is not a chain state", ErrBadChain, init.Value(i))
		}
		vec[j] += init.Prob(i)
	}
	return vec, nil
}

// step advances a state-probability vector by one transition.
func (c *Chain) step(vec []float64) []float64 {
	next := make([]float64, len(vec))
	for i, p := range vec {
		if p == 0 {
			continue
		}
		for j, t := range c.rows[i] {
			next[j] += p * t
		}
	}
	return next
}

// toDist converts a state-probability vector to a law (zero-mass states
// dropped).
func (c *Chain) toDist(vec []float64) Dist {
	var vals, weights []float64
	for i, p := range vec {
		if p > 0 {
			vals = append(vals, c.states[i])
			weights = append(weights, p)
		}
	}
	return MustNew(vals, weights)
}

// PhaseLaws returns the marginal memory law of each of n execution
// phases: laws[0] is the initial law itself and laws[i] its i-step
// evolution through the chain — exactly the per-phase distributions
// Theorem 3.4's dynamic programming argument needs. n is clamped to at
// least one phase.
func (c *Chain) PhaseLaws(init Dist, n int) ([]Dist, error) {
	if n < 1 {
		n = 1
	}
	vec, err := c.initVector(init)
	if err != nil {
		return nil, err
	}
	laws := make([]Dist, n)
	laws[0] = init
	for i := 1; i < n; i++ {
		vec = c.step(vec)
		laws[i] = c.toDist(vec)
	}
	return laws, nil
}

// SampleSeq draws one memory trajectory of length n: the first value from
// init, each subsequent value by a chain transition.
func (c *Chain) SampleSeq(rng *rand.Rand, init Dist, n int) ([]float64, error) {
	if n < 1 {
		n = 1
	}
	if _, err := c.initVector(init); err != nil {
		return nil, err
	}
	cur, _ := c.index(init.Sample(rng))
	seq := make([]float64, n)
	seq[0] = c.states[cur]
	for i := 1; i < n; i++ {
		u := rng.Float64()
		acc := 0.0
		next := cur
		for j, t := range c.rows[cur] {
			acc += t
			if u < acc {
				next = j
				break
			}
		}
		cur = next
		seq[i] = c.states[cur]
	}
	return seq, nil
}

// AllSeqs enumerates every length-n trajectory with positive probability
// together with its probability (exponential in n; meant for small
// test-scale enumerations of E[C(P, M_1..M_n)]).
func (c *Chain) AllSeqs(init Dist, n int) (seqs [][]float64, probs []float64, err error) {
	if n < 1 {
		n = 1
	}
	vec, err := c.initVector(init)
	if err != nil {
		return nil, nil, err
	}
	var rec func(state int, prob float64, prefix []float64)
	rec = func(state int, prob float64, prefix []float64) {
		if len(prefix) == n {
			seqs = append(seqs, append([]float64(nil), prefix...))
			probs = append(probs, prob)
			return
		}
		for j, t := range c.rows[state] {
			if t == 0 {
				continue
			}
			rec(j, prob*t, append(prefix, c.states[j]))
		}
	}
	for i, p := range vec {
		if p == 0 {
			continue
		}
		rec(i, p, []float64{c.states[i]})
	}
	return seqs, probs, nil
}
