// Package dist is the probabilistic substrate of the LEC optimizer: finite
// discrete probability distributions over run-time parameter values
// (buffer memory, relation sizes, predicate selectivities) and Markov
// chains over memory levels.
//
// Sections 2–3 of Chu, Halpern and Seshadri (PODS 1999) model every
// uncertain run-time parameter as a "buckets" distribution — a finite set
// of representative values with probabilities. Dist is exactly that
// object: an immutable law with ascending, deduplicated support and
// normalized probabilities. Every optimizer layer consumes it: the
// Algorithm C/D dynamic programs take expectations with ExpectF, the
// linear-time evaluators of Section 3.6 sweep its sorted support with
// CumTables, Section 3.6.3 result-size propagation rebuckets it with
// Rebucket, the Section 3.7 bucketing experiments compare coarse and fine
// laws with TotalVariation and Wasserstein1, and the Section 3.5 dynamic
// -memory extension evolves it through a Chain.
//
// Dist values are immutable: every transformation (Map, Shift, Rebucket,
// Combine2, ...) returns a fresh law. The zero Dist is a valid "no law"
// sentinel, distinguishable with IsZero.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Errors.
var (
	// ErrBadDist reports invalid constructor inputs (mismatched lengths,
	// non-finite values, negative weights, zero total mass).
	ErrBadDist = errors.New("dist: invalid distribution")
	// ErrBadTarget reports a non-positive bucket target (Rebucket and the
	// Section 3.6.3 result-size rebucketing).
	ErrBadTarget = errors.New("dist: bucket target must be positive")
)

// Dist is an immutable finite discrete distribution: Value(i) occurs with
// probability Prob(i). The support is ascending and duplicate-free; the
// probabilities are normalized to sum to 1. The zero Dist has no support
// (IsZero reports true) and stands for "no law installed".
type Dist struct {
	vals  []float64
	probs []float64
}

// New builds a distribution from values and unnormalized non-negative
// weights. The support is sorted ascending, duplicate values are merged
// (their weights add), zero-weight values are dropped, and weights are
// normalized to probabilities.
func New(vals, weights []float64) (Dist, error) {
	if len(vals) == 0 || len(vals) != len(weights) {
		return Dist{}, fmt.Errorf("%w: %d values, %d weights", ErrBadDist, len(vals), len(weights))
	}
	total := 0.0
	for i, v := range vals {
		w := weights[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Dist{}, fmt.Errorf("%w: non-finite value %v", ErrBadDist, v)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return Dist{}, fmt.Errorf("%w: weight %v for value %v", ErrBadDist, w, v)
		}
		total += w
	}
	// A sum of individually finite weights can still overflow to +Inf,
	// which would normalize every probability to zero (found by review of
	// the FuzzNewDist invariants); reject it like any other bad mass.
	if total <= 0 || math.IsInf(total, 0) {
		return Dist{}, fmt.Errorf("%w: total weight %v", ErrBadDist, total)
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	d := Dist{
		vals:  make([]float64, 0, len(vals)),
		probs: make([]float64, 0, len(vals)),
	}
	for _, i := range idx {
		if weights[i] == 0 {
			continue
		}
		p := weights[i] / total
		if n := len(d.vals); n > 0 && d.vals[n-1] == vals[i] {
			d.probs[n-1] += p
			continue
		}
		d.vals = append(d.vals, vals[i])
		d.probs = append(d.probs, p)
	}
	// Merging duplicate values sums already-rounded quotients, which can
	// carry a probability one ulp above 1 (found by FuzzNewDist); clamp so
	// Prob always reports a value in [0, 1].
	for i, p := range d.probs {
		if p > 1 {
			d.probs[i] = 1
		}
	}
	return d, nil
}

// MustNew is New, panicking on error. For laws built from literals.
func MustNew(vals, weights []float64) Dist {
	d, err := New(vals, weights)
	if err != nil {
		panic(err)
	}
	return d
}

// Point is the degenerate one-value law.
func Point(v float64) Dist {
	return Dist{vals: []float64{v}, probs: []float64{1}}
}

// Bimodal returns the two-point law {lo: pLo, hi: 1-pLo} — the paper's
// Example 1.1 memory model (a contended and an uncontended state). With
// pLo 0 or 1 the law degenerates to a point.
func Bimodal(lo, hi, pLo float64) (Dist, error) {
	if math.IsNaN(pLo) || pLo < 0 || pLo > 1 {
		return Dist{}, fmt.Errorf("%w: Bimodal pLo %v", ErrBadDist, pLo)
	}
	switch pLo {
	case 0:
		return New([]float64{hi}, []float64{1})
	case 1:
		return New([]float64{lo}, []float64{1})
	}
	return New([]float64{lo, hi}, []float64{pLo, 1 - pLo})
}

// Uniform puts equal mass on each given value.
func Uniform(vals ...float64) (Dist, error) {
	weights := make([]float64, len(vals))
	for i := range weights {
		weights[i] = 1
	}
	return New(vals, weights)
}

// Zipf distributes mass over levels with weight 1/rank^s (rank 1 is the
// first level): a heavy-headed law for memory tiers that are usually
// under pressure.
func Zipf(levels []float64, s float64) (Dist, error) {
	if math.IsNaN(s) || s < 0 {
		return Dist{}, fmt.Errorf("%w: Zipf exponent %v", ErrBadDist, s)
	}
	weights := make([]float64, len(levels))
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
	}
	return New(levels, weights)
}

// SpreadAround returns the three-point law {center-width, center,
// center+width} with pCenter mass at the center and the remainder split
// evenly between the arms. width must keep the low arm positive (the
// parameters modelled — pages of memory, relation sizes — are positive).
// A zero width degenerates to a point law.
func SpreadAround(center, width, pCenter float64) (Dist, error) {
	if math.IsNaN(pCenter) || pCenter < 0 || pCenter > 1 {
		return Dist{}, fmt.Errorf("%w: SpreadAround pCenter %v", ErrBadDist, pCenter)
	}
	if math.IsNaN(width) || width < 0 {
		return Dist{}, fmt.Errorf("%w: SpreadAround width %v", ErrBadDist, width)
	}
	if width == 0 {
		return New([]float64{center}, []float64{1})
	}
	if center-width <= 0 {
		return Dist{}, fmt.Errorf("%w: SpreadAround low arm %v not positive", ErrBadDist, center-width)
	}
	side := (1 - pCenter) / 2
	return New(
		[]float64{center - width, center, center + width},
		[]float64{side, pCenter, side},
	)
}

// EquiWidth builds an n-bucket equal-width law over [lo, hi]: bucket i's
// value is its cell center and its weight is weight(center). This is the
// "fine-grained true law" generator of the Section 3.7 bucketing
// experiments.
func EquiWidth(lo, hi float64, n int, weight func(center float64) float64) (Dist, error) {
	if n < 1 {
		return Dist{}, fmt.Errorf("%w: EquiWidth buckets %d", ErrBadDist, n)
	}
	if !(hi > lo) {
		return Dist{}, fmt.Errorf("%w: EquiWidth range [%v, %v]", ErrBadDist, lo, hi)
	}
	w := (hi - lo) / float64(n)
	vals := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		c := lo + (float64(i)+0.5)*w
		vals[i] = c
		weights[i] = weight(c)
	}
	return New(vals, weights)
}

// --- accessors ----------------------------------------------------------

// IsZero reports whether the law is the zero value (no support).
func (d Dist) IsZero() bool { return len(d.vals) == 0 }

// Len returns the number of support points (buckets).
func (d Dist) Len() int { return len(d.vals) }

// Value returns the i-th support value (ascending order).
func (d Dist) Value(i int) float64 { return d.vals[i] }

// Prob returns the probability of the i-th support value.
func (d Dist) Prob(i int) float64 { return d.probs[i] }

// Support returns a copy of the ascending support.
func (d Dist) Support() []float64 {
	return append([]float64(nil), d.vals...)
}

// TotalMass returns the probability total (1 up to float rounding).
func (d Dist) TotalMass() float64 {
	t := 0.0
	for _, p := range d.probs {
		t += p
	}
	return t
}

// Min returns the smallest support value (0 for the zero law).
func (d Dist) Min() float64 {
	if d.IsZero() {
		return 0
	}
	return d.vals[0]
}

// Max returns the largest support value (0 for the zero law).
func (d Dist) Max() float64 {
	if d.IsZero() {
		return 0
	}
	return d.vals[len(d.vals)-1]
}

// Mean returns E[X].
func (d Dist) Mean() float64 {
	m := 0.0
	for i, v := range d.vals {
		m += v * d.probs[i]
	}
	return m
}

// Std returns the standard deviation.
func (d Dist) Std() float64 {
	m := d.Mean()
	v := 0.0
	for i, x := range d.vals {
		dx := x - m
		v += dx * dx * d.probs[i]
	}
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Mode returns the most probable value; ties go to the smallest value, so
// on an evenly-split bimodal memory law the modal optimizer plans for the
// contended (low) state.
func (d Dist) Mode() float64 {
	if d.IsZero() {
		return 0
	}
	best := 0
	for i := 1; i < len(d.probs); i++ {
		if d.probs[i] > d.probs[best] {
			best = i
		}
	}
	return d.vals[best]
}

// PrAtMost returns Pr(X ≤ v).
func (d Dist) PrAtMost(v float64) float64 {
	p := 0.0
	for i, x := range d.vals {
		if x > v {
			break
		}
		p += d.probs[i]
	}
	return p
}

// PrBetween returns Pr(lo < X ≤ hi).
func (d Dist) PrBetween(lo, hi float64) float64 {
	p := d.PrAtMost(hi) - d.PrAtMost(lo)
	if p < 0 {
		return 0
	}
	return p
}

// ExpectF returns E[f(X)].
func (d Dist) ExpectF(f func(float64) float64) float64 {
	e := 0.0
	for i, v := range d.vals {
		e += d.probs[i] * f(v)
	}
	return e
}

// CumTables returns prefix tables over the ascending support: cumP[i] =
// Pr(X ≤ Value(i)) and cumPE[i] = E[X·1{X ≤ Value(i)}] (the partial
// expectation). They are the O(b) precomputation behind the linear-time
// expected-cost algorithms of Section 3.6.
func (d Dist) CumTables() (cumP, cumPE []float64) {
	cumP = make([]float64, len(d.vals))
	cumPE = make([]float64, len(d.vals))
	p, pe := 0.0, 0.0
	for i, v := range d.vals {
		p += d.probs[i]
		pe += v * d.probs[i]
		cumP[i] = p
		cumPE[i] = pe
	}
	return cumP, cumPE
}

// Sample draws one value.
func (d Dist) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	acc := 0.0
	for i, p := range d.probs {
		acc += p
		if u < acc {
			return d.vals[i]
		}
	}
	return d.vals[len(d.vals)-1]
}

// Map applies f to every support value and rebuilds the law (the image is
// re-sorted; values that collide merge). Used e.g. to clamp size laws to
// a minimum page count.
func (d Dist) Map(f func(float64) float64) Dist {
	vals := make([]float64, len(d.vals))
	for i, v := range d.vals {
		vals[i] = f(v)
	}
	return MustNew(vals, d.probs)
}

// Shift translates the support by delta.
func (d Dist) Shift(delta float64) Dist {
	return d.Map(func(v float64) float64 { return v + delta })
}

// Rebucket coarsens the law to at most b equal-probability buckets
// (quantile cells over the ascending support). Each output bucket's value
// is the conditional mean of the merged points, so total mass and the
// law's mean are preserved exactly — the Section 3.6.3 requirement that
// rebucketing the result-size law keeps expected sizes unbiased.
func (d Dist) Rebucket(b int) (Dist, error) {
	if b <= 0 {
		return Dist{}, ErrBadTarget
	}
	if d.Len() <= b {
		return d, nil
	}
	total := d.TotalMass()
	mass := make([]float64, b)
	moment := make([]float64, b)
	cumBefore := 0.0
	for i, v := range d.vals {
		cell := int(cumBefore / total * float64(b))
		if cell >= b {
			cell = b - 1
		}
		mass[cell] += d.probs[i]
		moment[cell] += v * d.probs[i]
		cumBefore += d.probs[i]
	}
	var vals, weights []float64
	for i := 0; i < b; i++ {
		if mass[i] <= 0 {
			continue
		}
		vals = append(vals, moment[i]/mass[i])
		weights = append(weights, mass[i])
	}
	return New(vals, weights)
}

// ApproxEqual reports whether both laws have the same support length and
// agree value-by-value and probability-by-probability within tol.
func (d Dist) ApproxEqual(o Dist, tol float64) bool {
	if d.Len() != o.Len() {
		return false
	}
	for i := range d.vals {
		if math.Abs(d.vals[i]-o.vals[i]) > tol || math.Abs(d.probs[i]-o.probs[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the law as "{v:p, v:p, ...}".
func (d Dist) String() string {
	if d.IsZero() {
		return "{}"
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range d.vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%g:%g", v, d.probs[i])
	}
	sb.WriteByte('}')
	return sb.String()
}

// --- functional combinators ---------------------------------------------

// Expect2 returns E[f(X, Y)] for independent X ~ a, Y ~ b.
func Expect2(a, b Dist, f func(x, y float64) float64) float64 {
	e := 0.0
	for i, x := range a.vals {
		for j, y := range b.vals {
			e += a.probs[i] * b.probs[j] * f(x, y)
		}
	}
	return e
}

// Expect3 returns E[f(X, Y, Z)] for independent X ~ a, Y ~ b, Z ~ c.
func Expect3(a, b, c Dist, f func(x, y, z float64) float64) float64 {
	e := 0.0
	for i, x := range a.vals {
		for j, y := range b.vals {
			pij := a.probs[i] * b.probs[j]
			for k, z := range c.vals {
				e += pij * c.probs[k] * f(x, y, z)
			}
		}
	}
	return e
}

// Combine2 returns the law of f(X, Y) for independent X ~ a, Y ~ b (the
// product rule; colliding output values merge).
func Combine2(a, b Dist, f func(x, y float64) float64) Dist {
	vals := make([]float64, 0, len(a.vals)*len(b.vals))
	weights := make([]float64, 0, len(a.vals)*len(b.vals))
	for i, x := range a.vals {
		for j, y := range b.vals {
			vals = append(vals, f(x, y))
			weights = append(weights, a.probs[i]*b.probs[j])
		}
	}
	return MustNew(vals, weights)
}

// Combine3 returns the law of f(X, Y, Z) for independent inputs.
func Combine3(a, b, c Dist, f func(x, y, z float64) float64) Dist {
	vals := make([]float64, 0, len(a.vals)*len(b.vals)*len(c.vals))
	weights := make([]float64, 0, len(a.vals)*len(b.vals)*len(c.vals))
	for i, x := range a.vals {
		for j, y := range b.vals {
			pij := a.probs[i] * b.probs[j]
			for k, z := range c.vals {
				vals = append(vals, f(x, y, z))
				weights = append(weights, pij*c.probs[k])
			}
		}
	}
	return MustNew(vals, weights)
}

// --- distances ----------------------------------------------------------

// TotalVariation returns the total-variation distance
// ½·Σ_v |Pr_a(v) - Pr_b(v)| ∈ [0, 1] over the union support. It measures
// the bucketing error of Section 3.7 pointwise: 1 means disjoint laws.
func TotalVariation(a, b Dist) float64 {
	i, j := 0, 0
	sum := 0.0
	for i < a.Len() || j < b.Len() {
		switch {
		case j >= b.Len() || (i < a.Len() && a.vals[i] < b.vals[j]):
			sum += a.probs[i]
			i++
		case i >= a.Len() || b.vals[j] < a.vals[i]:
			sum += b.probs[j]
			j++
		default: // equal values
			sum += math.Abs(a.probs[i] - b.probs[j])
			i++
			j++
		}
	}
	return sum / 2
}

// Wasserstein1 returns the 1-Wasserstein (earth-mover) distance
// ∫ |F_a(x) - F_b(x)| dx: the minimal probability-mass transport cost
// between the laws. Unlike TotalVariation it is support-aware — moving a
// bucket slightly costs little — which is why the parametric plan cache
// uses it to find the nearest anticipated law.
func Wasserstein1(a, b Dist) float64 {
	type edge struct{ v, da, db float64 }
	edges := make([]edge, 0, a.Len()+b.Len())
	for i, v := range a.vals {
		edges = append(edges, edge{v: v, da: a.probs[i]})
	}
	for j, v := range b.vals {
		edges = append(edges, edge{v: v, db: b.probs[j]})
	}
	sort.Slice(edges, func(x, y int) bool { return edges[x].v < edges[y].v })
	d := 0.0
	fa, fb := 0.0, 0.0
	for i, e := range edges {
		if i > 0 {
			d += math.Abs(fa-fb) * (e.v - edges[i-1].v)
		}
		fa += e.da
		fb += e.db
	}
	return d
}
