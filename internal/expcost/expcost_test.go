package expcost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

// relErr returns |got-want| / max(1, |want|).
func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if w := math.Abs(want); w > 1 {
		return d / w
	}
	return d
}

func randDist(rng *rand.Rand, n int, lo, hi float64) dist.Dist {
	vals := make([]float64, n)
	probs := make([]float64, n)
	for i := range vals {
		vals[i] = lo + rng.Float64()*(hi-lo)
		probs[i] = rng.Float64() + 0.01
	}
	return dist.MustNew(vals, probs)
}

// TestLinearMatchesNaive is the correctness half of experiments E11/E12:
// the O(b_M+b_A+b_B) algorithms agree with the O(b_M·b_A·b_B) triple loop
// on random laws, for all three paper join methods.
func TestLinearMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	methods := []cost.JoinMethod{cost.SortMerge, cost.GraceHash, cost.PageNL}
	for trial := 0; trial < 200; trial++ {
		a := randDist(rng, 1+rng.Intn(12), 1, 1e6)
		b := randDist(rng, 1+rng.Intn(12), 1, 1e6)
		m := randDist(rng, 1+rng.Intn(12), 2, 5000)
		for _, method := range methods {
			want := JoinECNaive(method, a, b, m)
			got, ok := JoinECLinear(method, a, b, m)
			if !ok {
				t.Fatalf("%v: no fast path", method)
			}
			if relErr(got, want) > 1e-9 {
				t.Fatalf("trial %d %v: linear %v vs naive %v\na=%v\nb=%v\nm=%v",
					trial, method, got, want, a, b, m)
			}
		}
	}
}

// TestLinearMatchesNaiveWithTies stresses the boundary cases the sweep's
// strict/non-strict splits must get right: equal values in |A| and |B|,
// memory sitting exactly on thresholds.
func TestLinearMatchesNaiveWithTies(t *testing.T) {
	a := dist.MustNew([]float64{100, 400, 400, 900}, []float64{1, 1, 1, 1})
	b := dist.MustNew([]float64{100, 400, 900}, []float64{1, 2, 1})
	// Memory exactly at √900=30, ∛900≈9.65, S+2 values, etc.
	m := dist.MustNew([]float64{9, 10, 30, 31, 102, 402}, []float64{1, 1, 1, 1, 1, 1})
	for _, method := range []cost.JoinMethod{cost.SortMerge, cost.GraceHash, cost.PageNL} {
		want := JoinECNaive(method, a, b, m)
		got, _ := JoinECLinear(method, a, b, m)
		if relErr(got, want) > 1e-12 {
			t.Fatalf("%v: linear %v vs naive %v", method, got, want)
		}
	}
}

func TestJoinECDispatch(t *testing.T) {
	a := dist.Point(100)
	b := dist.Point(50)
	m := dist.Point(10)
	// Fast path methods agree with direct formula under point laws.
	for _, method := range cost.PaperMethods {
		approx(t, JoinEC(method, a, b, m), cost.JoinIO(method, 100, 50, 10), 1e-9,
			method.String())
	}
	// BlockNL has no fast path; dispatch must fall back to naive.
	if _, ok := JoinECLinear(cost.BlockNL, a, b, m); ok {
		t.Fatal("BlockNL should have no linear path")
	}
	approx(t, JoinEC(cost.BlockNL, a, b, m), cost.JoinIO(cost.BlockNL, 100, 50, 10), 1e-9, "blocknl naive")
}

// TestExample11ExpectedCosts wires the linear evaluators to the paper's
// motivating numbers.
func TestExample11ExpectedCosts(t *testing.T) {
	a := dist.Point(1_000_000)
	b := dist.Point(400_000)
	m := dist.MustNew([]float64{700, 2000}, []float64{0.2, 0.8})
	sm, _ := JoinECLinear(cost.SortMerge, a, b, m)
	gh, _ := JoinECLinear(cost.GraceHash, a, b, m)
	approx(t, sm, 0.8*2*1.4e6+0.2*4*1.4e6, 1e-6, "EC(SM)")
	approx(t, gh, 2*1.4e6, 1e-6, "EC(GH)")
	sort := SortEC(dist.Point(3000), m)
	approx(t, sort, 6000, 1e-9, "EC(sort result)")
	if !(gh+sort < sm) {
		t.Fatal("plan 2 must win in expectation")
	}
}

func TestSortAndScanEC(t *testing.T) {
	r := dist.MustNew([]float64{100, 10000}, []float64{0.5, 0.5})
	m := dist.Point(50)
	// 100 pages: √100=10 < 50 → wait, 100 > 50 so external: mult 2 → 200.
	// 10000: √10000=100 ≥ 50 → ∛10000≈21.5 < 50 → mult 4 → 40000.
	approx(t, SortEC(r, m), 0.5*200+0.5*40000, 1e-9, "SortEC")
	approx(t, ScanEC(r), 0.5*100+0.5*10000, 1e-9, "ScanEC")
	// Fits in memory: free.
	approx(t, SortEC(dist.Point(10), dist.Point(50)), 0, 0, "in-memory sort free")
}

func TestResultSizeExact(t *testing.T) {
	a := dist.MustNew([]float64{10, 20}, []float64{0.5, 0.5})
	b := dist.MustNew([]float64{100, 200}, []float64{0.5, 0.5})
	s := dist.Point(0.01)
	d := ResultSizeExact(a, b, s)
	// Supports: 10,20,20,40 → merged {10:0.25, 20:0.5, 40:0.25}.
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	approx(t, d.Mean(), 15*150*0.01, 1e-9, "mean multiplies")
	approx(t, d.PrBetween(15, 25), 0.5, 1e-12, "merged middle")
}

func TestResultSizeDistRebucketing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randDist(rng, 27, 100, 10000)
	b := randDist(rng, 27, 100, 10000)
	s := randDist(rng, 27, 1e-5, 1e-3)
	exact := ResultSizeExact(a, b, s)
	for _, target := range []int{8, 27, 64, 125} {
		got, err := ResultSizeDist(a, b, s, target)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if got.Len() > target {
			t.Fatalf("target %d: got %d buckets", target, got.Len())
		}
		approx(t, got.TotalMass(), 1, 1e-9, "mass")
		// Rebucketing each input to ∛target preserves each input's mean,
		// and independence makes the product mean multiplicative, so the
		// result mean must match the exact law's mean.
		if relErr(got.Mean(), exact.Mean()) > 1e-6 {
			t.Fatalf("target %d: mean drifted: %v vs %v", target, got.Mean(), exact.Mean())
		}
	}
	if _, err := ResultSizeDist(a, b, s, 0); err == nil {
		t.Fatal("target 0 should fail")
	}
}

func TestResultSizeDistSmallInputsPassThrough(t *testing.T) {
	a := dist.Point(10)
	b := dist.Point(20)
	s := dist.Point(0.5)
	d, err := ResultSizeDist(a, b, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Value(0) != 100 {
		t.Fatalf("point laws should stay a point: %v", d)
	}
}

// Property: linear and naive evaluators agree for arbitrary quick-generated
// laws (E11/E12 as a property test).
func TestQuickLinearEqualsNaive(t *testing.T) {
	f := func(seedA, seedB, seedM int64) bool {
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		rngM := rand.New(rand.NewSource(seedM))
		a := randDist(rngA, 1+rngA.Intn(8), 1, 1e5)
		b := randDist(rngB, 1+rngB.Intn(8), 1, 1e5)
		m := randDist(rngM, 1+rngM.Intn(8), 2, 2000)
		for _, method := range []cost.JoinMethod{cost.SortMerge, cost.GraceHash, cost.PageNL} {
			want := JoinECNaive(method, a, b, m)
			got, _ := JoinECLinear(method, a, b, m)
			if relErr(got, want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: expected cost is monotone in stochastic dominance of memory —
// shifting memory mass upward can only decrease EC.
func TestQuickECMonotoneInMemoryShift(t *testing.T) {
	f := func(seed int64, shift uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDist(rng, 1+rng.Intn(6), 1, 1e5)
		b := randDist(rng, 1+rng.Intn(6), 1, 1e5)
		m := randDist(rng, 1+rng.Intn(6), 2, 2000)
		m2 := m.Shift(float64(shift))
		for _, method := range []cost.JoinMethod{cost.SortMerge, cost.GraceHash, cost.PageNL} {
			lo, _ := JoinECLinear(method, a, b, m2)
			hi, _ := JoinECLinear(method, a, b, m)
			// Relative slack: Shift re-normalizes probabilities, so equal
			// laws can differ by float rounding at 1e10 cost magnitudes.
			if lo > hi*(1+1e-9)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkHelper-oriented sanity: the linear algorithm touches each bucket
// O(1) times, so doubling bucket counts should roughly double work. This
// is asserted as wall-clock in bench_test.go (E11/E12); here we only check
// it stays exact at large b.
func TestLinearExactAtLargeB(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randDist(rng, 200, 1, 1e6)
	b := randDist(rng, 200, 1, 1e6)
	m := randDist(rng, 200, 2, 5000)
	for _, method := range []cost.JoinMethod{cost.SortMerge, cost.GraceHash, cost.PageNL} {
		want := JoinECNaive(method, a, b, m)
		got, _ := JoinECLinear(method, a, b, m)
		if relErr(got, want) > 1e-9 {
			t.Fatalf("%v at b=200: %v vs %v", method, got, want)
		}
	}
}
