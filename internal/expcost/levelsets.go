package expcost

import (
	"errors"
	"sort"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/plan"
)

// ErrNilPlan is returned for nil plan inputs.
var ErrNilPlan = errors.New("expcost: nil plan")

// PlanBreakpoints returns the ascending memory values at which the whole
// plan's static-memory cost C(P, m) changes — the union of every
// operator's level-set boundaries (Section 3.7: "values of v that yield
// C(P,v) = c are called a level set"). Between consecutive returned values
// the plan's cost is constant. maxBlockBreaks caps the breakpoints
// contributed by a BlockNL join (whose formula has one per outer-block
// count); plans without BlockNL are unaffected.
func PlanBreakpoints(p *plan.Node, maxBlockBreaks int) ([]float64, error) {
	if p == nil {
		return nil, ErrNilPlan
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	set := map[float64]bool{}
	p.Walk(func(n *plan.Node) {
		switch n.Kind {
		case plan.KindJoin:
			for _, b := range cost.JoinBreakpoints(n.Method, n.Left.OutPages, n.Right.OutPages, maxBlockBreaks) {
				set[b] = true
			}
		case plan.KindSort:
			for _, b := range cost.SortBreakpoints(n.Child.OutPages) {
				set[b] = true
			}
		}
	})
	out := make([]float64, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Float64s(out)
	return out, nil
}

// PlanECLevelSets computes E[C(P, M)] for a static memory law by
// evaluating the plan's cost once per OCCUPIED level set instead of once
// per support point: the Section 3.7 observation that "in principle, we
// can compute EC(P) with ℓ evaluations of the cost function". The result
// equals mem.ExpectF(p.CostAt) exactly (for plans without BlockNL, or with
// BlockNL whose block counts stay within maxBlockBreaks), but the number
// of cost evaluations is bounded by the number of level sets the law
// actually touches — independent of the law's bucket count b.
//
// Returns the expected cost and the number of cost-function evaluations
// performed.
func PlanECLevelSets(p *plan.Node, mem dist.Dist, maxBlockBreaks int) (ec float64, evals int, err error) {
	breaks, err := PlanBreakpoints(p, maxBlockBreaks)
	if err != nil {
		return 0, 0, err
	}
	// Sweep the law's ascending support, grouping consecutive points that
	// fall in the same level-set region. Regions are [breaks[i-1],
	// breaks[i]): the breakpoints are "first value of the new regime".
	bi := 0
	regionMass := 0.0
	var regionRep float64
	haveRegion := false
	flush := func() {
		if haveRegion && regionMass > 0 {
			ec += regionMass * p.CostAt(regionRep)
			evals++
		}
		regionMass = 0
		haveRegion = false
	}
	for i := 0; i < mem.Len(); i++ {
		v := mem.Value(i)
		// Advance the region pointer past all breakpoints ≤ v.
		crossed := false
		for bi < len(breaks) && breaks[bi] <= v {
			bi++
			crossed = true
		}
		if crossed {
			flush()
		}
		if !haveRegion {
			regionRep = v
			haveRegion = true
		}
		regionMass += mem.Prob(i)
	}
	flush()
	return ec, evals, nil
}
