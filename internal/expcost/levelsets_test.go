package expcost

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/plan"
)

// lsPlan builds sort(SM(a,b) GH c) with chosen page sizes.
func lsPlan() *plan.Node {
	a := plan.NewScan("a", plan.AccessHeap, "", 1, 10_000)
	b := plan.NewScan("b", plan.AccessHeap, "", 1, 4_000)
	j1 := plan.NewJoin(cost.SortMerge, a, b, 2_000, plan.Order{})
	c := plan.NewScan("c", plan.AccessHeap, "", 1, 500)
	j2 := plan.NewJoin(cost.GraceHash, j1, c, 300, plan.Order{})
	return plan.NewSort(j2, plan.Order{Table: "a", Column: "k"})
}

func TestPlanBreakpoints(t *testing.T) {
	p := lsPlan()
	breaks, err := PlanBreakpoints(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaks) == 0 {
		t.Fatal("no breakpoints")
	}
	for i := 1; i < len(breaks); i++ {
		if breaks[i] <= breaks[i-1] {
			t.Fatal("not ascending")
		}
	}
	// The cost is constant within regions and changes across at least one
	// boundary.
	changed := false
	for i := 0; i <= len(breaks); i++ {
		lo, hi := regionBounds(breaks, i)
		if hi-lo < 2 {
			continue
		}
		c1 := p.CostAt(lo + (hi-lo)*0.25)
		c2 := p.CostAt(lo + (hi-lo)*0.75)
		if c1 != c2 {
			t.Fatalf("cost not constant within region %d [%v,%v): %v vs %v", i, lo, hi, c1, c2)
		}
		if i > 0 {
			prevLo, prevHi := regionBounds(breaks, i-1)
			if prevHi-prevLo >= 2 && p.CostAt(prevLo+(prevHi-prevLo)*0.5) != c1 {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("no region transition changed the cost")
	}
	if _, err := PlanBreakpoints(nil, 4); !errors.Is(err, ErrNilPlan) {
		t.Fatal("nil plan")
	}
	if _, err := PlanBreakpoints(&plan.Node{Kind: plan.KindJoin}, 4); err == nil {
		t.Fatal("invalid plan")
	}
}

func regionBounds(breaks []float64, i int) (lo, hi float64) {
	lo, hi = 3, 1e6
	if i > 0 {
		lo = breaks[i-1]
	}
	if i < len(breaks) {
		hi = breaks[i]
	}
	return lo, hi
}

// TestPlanECLevelSetsExact: the level-set evaluation equals the dense
// per-bucket evaluation for laws of any size, while evaluating the cost
// function at most once per level set.
func TestPlanECLevelSetsExact(t *testing.T) {
	p := lsPlan()
	breaks, err := PlanBreakpoints(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, b := range []int{1, 5, 50, 500} {
		vals := make([]float64, b)
		probs := make([]float64, b)
		for i := range vals {
			vals[i] = 3 + rng.Float64()*20000
			probs[i] = rng.Float64() + 0.01
		}
		mem := dist.MustNew(vals, probs)
		want := mem.ExpectF(p.CostAt)
		got, evals, err := PlanECLevelSets(p, mem, 8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("b=%d: level-set %v vs dense %v", b, got, want)
		}
		if evals > len(breaks)+1 {
			t.Fatalf("b=%d: %d evals exceed %d level sets", b, evals, len(breaks)+1)
		}
		if b >= 50 && evals >= b {
			t.Fatalf("b=%d: no savings (%d evals)", b, evals)
		}
	}
}

// TestPlanECLevelSetsPointLaw: degenerate law → one evaluation.
func TestPlanECLevelSetsPointLaw(t *testing.T) {
	p := lsPlan()
	ec, evals, err := PlanECLevelSets(p, dist.Point(1500), 8)
	if err != nil {
		t.Fatal(err)
	}
	if evals != 1 {
		t.Fatalf("evals = %d", evals)
	}
	if ec != p.CostAt(1500) {
		t.Fatalf("ec %v vs direct %v", ec, p.CostAt(1500))
	}
}

// Property: equality holds for random two-join plans and random laws.
func TestQuickLevelSetsEqualDense(t *testing.T) {
	f := func(pa, pb, pc uint16, seed int64) bool {
		ap := float64(pa%5000) + 10
		bp := float64(pb%5000) + 10
		cp := float64(pc%2000) + 10
		a := plan.NewScan("a", plan.AccessHeap, "", 1, ap)
		b := plan.NewScan("b", plan.AccessHeap, "", 1, bp)
		j1 := plan.NewJoin(cost.GraceHash, a, b, (ap+bp)/4, plan.Order{})
		c := plan.NewScan("c", plan.AccessHeap, "", 1, cp)
		j2 := plan.NewJoin(cost.PageNL, j1, c, cp/2, plan.Order{})
		root := plan.NewSort(j2, plan.Order{Table: "a", Column: "k"})

		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		vals := make([]float64, n)
		probs := make([]float64, n)
		for i := range vals {
			vals[i] = 3 + rng.Float64()*12000
			probs[i] = rng.Float64() + 0.01
		}
		mem := dist.MustNew(vals, probs)
		want := mem.ExpectF(root.CostAt)
		got, _, err := PlanECLevelSets(root, mem, 8)
		if err != nil {
			return false
		}
		return math.Abs(got-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLevelSetsWithBlockNL: exact when block counts stay within the cap.
func TestLevelSetsWithBlockNL(t *testing.T) {
	a := plan.NewScan("a", plan.AccessHeap, "", 1, 50)
	b := plan.NewScan("b", plan.AccessHeap, "", 1, 30)
	j := plan.NewJoin(cost.BlockNL, a, b, 10, plan.Order{})
	// Law confined to memory ≥ 2 + 50/8: block counts k ≤ 8 within cap 8.
	mem := dist.MustNew([]float64{9, 12, 20, 60}, []float64{1, 1, 1, 1})
	want := mem.ExpectF(j.CostAt)
	got, _, err := PlanECLevelSets(j, mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("blocknl level sets: %v vs %v", got, want)
	}
}
