// Package expcost computes expected join costs over parameter
// distributions — the workhorse of Algorithms C and D in Chu, Halpern and
// Seshadri (PODS 1999).
//
// Two evaluation paths are provided. The generic path enumerates the full
// joint support (the b_M·b_|A|·b_|B| triple loop the paper describes for
// Algorithm D). The linear path implements the O(b_M + b_|A| + b_|B|)
// algorithms of Sections 3.6.1 (sort-merge) and 3.6.2 (nested-loop), which
// exploit the cost formulas' structure: the expectation splits on
// {|A| ≤ |B|} and within each half reduces to prefix/suffix partial
// expectations plus monotone tail probabilities of M, all computable in one
// synchronized sweep over the sorted supports.
//
// The package also computes the result-size distribution of a join with
// rebucketing (Section 3.6.3).
package expcost

import (
	"math"

	"lecopt/internal/cost"
	"lecopt/internal/dist"
)

// JoinECNaive returns E[C(method, |A|, |B|, M)] by full joint enumeration:
// O(b_M · b_A · b_B) cost-formula evaluations.
func JoinECNaive(method cost.JoinMethod, a, b, mem dist.Dist) float64 {
	return dist.Expect3(a, b, mem, func(av, bv, mv float64) float64 {
		return cost.JoinIO(method, av, bv, mv)
	})
}

// JoinECLinear returns E[C(method, |A|, |B|, M)] using the linear-time
// specializations. ok is false when the method has no fast path (then use
// JoinECNaive).
func JoinECLinear(method cost.JoinMethod, a, b, mem dist.Dist) (ec float64, ok bool) {
	switch method {
	case cost.SortMerge:
		return sortMergeEC(a, b, mem), true
	case cost.GraceHash:
		return graceHashEC(a, b, mem), true
	case cost.PageNL:
		return nestedLoopEC(a, b, mem), true
	default:
		return 0, false
	}
}

// JoinEC returns the expected join cost, preferring the linear path.
func JoinEC(method cost.JoinMethod, a, b, mem dist.Dist) float64 {
	if ec, ok := JoinECLinear(method, a, b, mem); ok {
		return ec
	}
	return JoinECNaive(method, a, b, mem)
}

// JoinECModel is JoinEC under the selected cost model. The linear-time
// sweeps hard-code the paper's three-case pass structure, so the one
// model/method pair whose formula differs — ModelEngine grace hash, whose
// recursion charge is not a flat multiplier of |A|+|B| — falls back to
// full joint enumeration over cost.JoinIOModel; every other pair keeps
// the paper path.
func JoinECModel(model cost.Model, method cost.JoinMethod, a, b, mem dist.Dist) float64 {
	if model == cost.ModelEngine && method == cost.GraceHash {
		return dist.Expect3(a, b, mem, func(av, bv, mv float64) float64 {
			return cost.JoinIOModel(model, method, av, bv, mv)
		})
	}
	return JoinEC(method, a, b, mem)
}

// SortEC returns E[SortIO(R, M)] for independent size and memory laws.
func SortEC(r, mem dist.Dist) float64 {
	return dist.Expect2(r, mem, cost.SortIO)
}

// ScanEC returns E[ScanIO(R)] for a size law.
func ScanEC(r dist.Dist) float64 {
	return r.ExpectF(cost.ScanIO)
}

// --- Section 3.6.1: sort-merge -----------------------------------------

// sortMergeEC implements the split
//
//	EC(SM) = EC(SM : |A| ≤ |B|)·Pr(|A| ≤ |B|) + EC(SM : |A| > |B|)·Pr(|A| > |B|)
//
// with each half computed in one sweep. For the first half, conditioning
// on |B| = b (so L = b):
//
//	E[C·1{|A| ≤ b}] = m(b) · ( PE_A(≤ b) + b·P_A(≤ b) )
//
// where m(b) = 2·Pr(M > √b) + 4·Pr(∛b < M ≤ √b) + 6·Pr(M ≤ ∛b) is the
// expected pass multiplier, PE is the partial expectation E[X·1{...}] and
// P the corresponding probability. (The paper's F_b notation folds PE and
// P together; partial expectations make the identity exact.) Because the
// supports are sorted, the P/PE prefix tables and the monotone thresholds
// √b, ∛b advance with two-pointer cursors, giving O(b_M + b_A + b_B).
func sortMergeEC(a, b, mem dist.Dist) float64 {
	return pivotSweep(a, b, mem)
}

// graceHashEC: same sweep structure but the pivot is the SMALLER relation,
// so the roles of the halves flip: conditioning on the half {|A| ≤ |B|},
// the pivot is |A| and we sweep over Val(|A|) aggregating B. On top of the
// 2/4/6 pass bands there is the one-pass band M ≥ s+2 (build side fits in
// memory). Since s+2 > √s, that band is carved out of the 2-pass mass: the
// expected multiplier is m(s) − Pr(M ≥ s+2), because the one-pass region
// pays 1·(|A|+|B|) where the tail cursor charged 2.
func graceHashEC(a, b, mem dist.Dist) float64 {
	// In the half |A| ≤ |B| the smaller relation is A: pivot on a.
	// E[C·1{|B| ≥ a} | A=a] = (m(a) − Pr(M ≥ a+2))·( PE_B(≥a) + a·P_B(≥a) ).
	total := 0.0
	{
		cur := newSuffixCursor(b)
		mq := newTailCursor(mem)
		fc := newAtLeastCursor(mem)
		for i := 0; i < a.Len(); i++ {
			av := a.Value(i)
			pB, peB := cur.atLeast(av)
			if pB == 0 {
				continue
			}
			m := mq.multiplier(av) - fc.atLeast(av+2)
			total += a.Prob(i) * m * (peB + av*pB)
		}
	}
	// In the half |A| > |B| the smaller relation is B: pivot on b, with a
	// strict condition |A| > b.
	{
		cur := newSuffixCursor(a)
		mq := newTailCursor(mem)
		fc := newAtLeastCursor(mem)
		for j := 0; j < b.Len(); j++ {
			bv := b.Value(j)
			pA, peA := cur.greater(bv)
			if pA == 0 {
				continue
			}
			m := mq.multiplier(bv) - fc.atLeast(bv+2)
			total += b.Prob(j) * m * (peA + bv*pA)
		}
	}
	return total
}

// pivotSweep computes the two-half sum when the formula's pivot is the
// LARGER relation (sort-merge): in half {|A| ≤ |B|} the pivot is |B|; in
// half {|A| > |B|} the pivot is |A| (strictly greater).
func pivotSweep(a, b, mem dist.Dist) float64 {
	total := 0.0
	{
		cumP, cumPE := a.CumTables()
		mq := newTailCursor(mem)
		ai := -1
		for j := 0; j < b.Len(); j++ {
			bv := b.Value(j)
			for ai+1 < a.Len() && a.Value(ai+1) <= bv {
				ai++
			}
			if ai < 0 {
				continue
			}
			pA, peA := cumP[ai], cumPE[ai]
			m := mq.multiplier(bv)
			total += b.Prob(j) * m * (peA + bv*pA)
		}
	}
	{
		cumP, cumPE := b.CumTables()
		mq := newTailCursor(mem)
		bi := -1
		for i := 0; i < a.Len(); i++ {
			av := a.Value(i)
			for bi+1 < b.Len() && b.Value(bi+1) < av {
				bi++
			}
			if bi < 0 {
				continue
			}
			pB, peB := cumP[bi], cumPE[bi]
			m := mq.multiplier(av)
			total += a.Prob(i) * m * (peB + av*pB)
		}
	}
	return total
}

// tailCursor computes the expected pass multiplier
// m(r) = 2·Pr(M > √r) + 4·Pr(∛r < M ≤ √r) + 6·Pr(M ≤ ∛r)
// for a monotone ascending sequence of pivot sizes r, advancing two
// pointers over M's sorted support (√r and ∛r are increasing in r).
type tailCursor struct {
	m          dist.Dist
	iSqrt      int     // first index with value > √r for the last query
	iCbrt      int     // first index with value > ∛r
	cumAtSqrt  float64 // Pr(M ≤ √r)
	cumAtCbrt  float64 // Pr(M ≤ ∛r)
	lastPivot  float64
	everCalled bool
}

func newTailCursor(m dist.Dist) *tailCursor {
	return &tailCursor{m: m}
}

func (c *tailCursor) multiplier(r float64) float64 {
	if c.everCalled && r < c.lastPivot {
		// Defensive: callers sweep ascending; restart if violated.
		c.iSqrt, c.iCbrt, c.cumAtSqrt, c.cumAtCbrt = 0, 0, 0, 0
	}
	c.lastPivot, c.everCalled = r, true
	sq, cb := math.Sqrt(r), math.Cbrt(r)
	for c.iSqrt < c.m.Len() && c.m.Value(c.iSqrt) <= sq {
		c.cumAtSqrt += c.m.Prob(c.iSqrt)
		c.iSqrt++
	}
	for c.iCbrt < c.m.Len() && c.m.Value(c.iCbrt) <= cb {
		c.cumAtCbrt += c.m.Prob(c.iCbrt)
		c.iCbrt++
	}
	pHigh := 1 - c.cumAtSqrt          // Pr(M > √r)
	pMid := c.cumAtSqrt - c.cumAtCbrt // Pr(∛r < M ≤ √r)
	pLow := c.cumAtCbrt               // Pr(M ≤ ∛r)
	return 2*pHigh + 4*pMid + 6*pLow
}

// suffixCursor yields suffix probability and partial expectation
// (Pr[X ≥ t], E[X·1{X ≥ t}]) — and strict variants — for ascending
// thresholds t, advancing one pointer.
type suffixCursor struct {
	d       dist.Dist
	i       int     // first index not yet excluded from the suffix
	exclP   float64 // Pr(X < current front)
	exclPE  float64 // E[X·1{X < front}]
	totalP  float64
	totalPE float64
}

func newSuffixCursor(d dist.Dist) *suffixCursor {
	tp, tpe := 0.0, 0.0
	for i := 0; i < d.Len(); i++ {
		tp += d.Prob(i)
		tpe += d.Value(i) * d.Prob(i)
	}
	return &suffixCursor{d: d, totalP: tp, totalPE: tpe}
}

// atLeast returns (Pr[X ≥ t], E[X·1{X ≥ t}]).
func (c *suffixCursor) atLeast(t float64) (p, pe float64) {
	for c.i < c.d.Len() && c.d.Value(c.i) < t {
		c.exclP += c.d.Prob(c.i)
		c.exclPE += c.d.Value(c.i) * c.d.Prob(c.i)
		c.i++
	}
	return c.totalP - c.exclP, c.totalPE - c.exclPE
}

// greater returns (Pr[X > t], E[X·1{X > t}]).
func (c *suffixCursor) greater(t float64) (p, pe float64) {
	for c.i < c.d.Len() && c.d.Value(c.i) <= t {
		c.exclP += c.d.Prob(c.i)
		c.exclPE += c.d.Value(c.i) * c.d.Prob(c.i)
		c.i++
	}
	return c.totalP - c.exclP, c.totalPE - c.exclPE
}

// --- Section 3.6.2: page nested-loop ------------------------------------

// nestedLoopEC: C(NL) = |A|+|B| if M ≥ S+2 else |A| + |A|·|B|, S = min.
// Half {|A| ≤ |B|} pivots on a (S = a):
//
//	E[C·1{|B| ≥ a} | A=a] = Pr(M ≥ a+2)·( a·P_B(≥a) + PE_B(≥a) )
//	                      + Pr(M < a+2)·( a·P_B(≥a) + a·PE_B(≥a) )
//
// Half {|A| > |B|} pivots on b (S = b, strict):
//
//	E[C·1{|A| > b} | B=b] = Pr(M ≥ b+2)·( PE_A(>b) + b·P_A(>b) )
//	                      + Pr(M < b+2)·( PE_A(>b)·(1 + b) )
func nestedLoopEC(a, b, mem dist.Dist) float64 {
	total := 0.0
	{
		cur := newSuffixCursor(b)
		mc := newAtLeastCursor(mem)
		for i := 0; i < a.Len(); i++ {
			av := a.Value(i)
			pB, peB := cur.atLeast(av)
			if pB == 0 {
				continue
			}
			pFit := mc.atLeast(av + 2)
			fit := av*pB + peB
			thrash := av*pB + av*peB
			total += a.Prob(i) * (pFit*fit + (1-pFit)*thrash)
		}
	}
	{
		cur := newSuffixCursor(a)
		mc := newAtLeastCursor(mem)
		for j := 0; j < b.Len(); j++ {
			bv := b.Value(j)
			pA, peA := cur.greater(bv)
			if pA == 0 {
				continue
			}
			pFit := mc.atLeast(bv + 2)
			fit := peA + bv*pA
			thrash := peA * (1 + bv)
			total += b.Prob(j) * (pFit*fit + (1-pFit)*thrash)
		}
	}
	return total
}

// atLeastCursor yields Pr[M ≥ t] for ascending thresholds t.
type atLeastCursor struct {
	d    dist.Dist
	i    int
	excl float64 // Pr(M < front)
}

func newAtLeastCursor(d dist.Dist) *atLeastCursor { return &atLeastCursor{d: d} }

func (c *atLeastCursor) atLeast(t float64) float64 {
	for c.i < c.d.Len() && c.d.Value(c.i) < t {
		c.excl += c.d.Prob(c.i)
		c.i++
	}
	return 1 - c.excl
}

// --- Section 3.6.3: result-size distribution ----------------------------

// ResultSizeDist returns the distribution of |A ⋈ B| = |A|·|B|·σ under
// independence. To keep bucket counts bounded, each input is first
// rebucketed to ⌊∛target⌋ buckets (so the product has at most target
// buckets), exactly the strategy of Section 3.6.3; the final law is
// rebucketed to target as a safety net against duplicate-value merges
// leaving it slightly over.
func ResultSizeDist(a, b, sigma dist.Dist, target int) (dist.Dist, error) {
	if target <= 0 {
		return dist.Dist{}, dist.ErrBadTarget
	}
	k := int(math.Cbrt(float64(target)))
	if k < 1 {
		k = 1
	}
	ar, err := a.Rebucket(k)
	if err != nil {
		return dist.Dist{}, err
	}
	br, err := b.Rebucket(k)
	if err != nil {
		return dist.Dist{}, err
	}
	sr, err := sigma.Rebucket(k)
	if err != nil {
		return dist.Dist{}, err
	}
	joint := dist.Combine3(ar, br, sr, func(x, y, z float64) float64 { return x * y * z })
	return joint.Rebucket(target)
}

// ResultSizeExact returns the un-rebucketed law of |A|·|B|·σ: the O(b³)
// reference the rebucketed law is compared against in experiment E13.
func ResultSizeExact(a, b, sigma dist.Dist) dist.Dist {
	return dist.Combine3(a, b, sigma, func(x, y, z float64) float64 { return x * y * z })
}
