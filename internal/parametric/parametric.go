// Package parametric implements the paper's proposed combination of LEC
// optimization with parametric query optimization [INSS92] (Sections 3.2
// and 3.4): "we can precompute the best expected plan under a number of
// possible distributions (ones that give good coverage of what we expect
// to encounter at run-time), and store these expected plans, for use at
// query execution time."
//
// A Cache holds one LEC plan per anticipated memory law. At start-up time,
// when the actual law becomes known, either
//
//   - Nearest: a "simple table lookup" — return the plan precomputed for
//     the anticipated law closest (1-Wasserstein) to the actual law; or
//   - SelectByEC: re-cost every cached plan under the actual law and
//     return the best — still far cheaper than re-optimizing, because the
//     cached candidate set is tiny compared to the plan space.
//
// SelectByEC is exactly Algorithm A run over the cached plans instead of
// per-bucket LSC plans; Nearest is the constant-time variant.
package parametric

import (
	"errors"
	"fmt"
	"math"

	"lecopt/internal/catalog"
	"lecopt/internal/cost"
	"lecopt/internal/dist"
	"lecopt/internal/optimizer"
	"lecopt/internal/plan"
	"lecopt/internal/query"
)

// Errors.
var (
	ErrEmptyCache = errors.New("parametric: no laws to precompute")
	ErrNoEntry    = errors.New("parametric: empty cache lookup")
)

// Entry is one precomputed plan.
type Entry struct {
	Law  dist.Dist
	Plan *plan.Node
	// EC is the plan's expected cost under its own anticipated law.
	EC float64
}

// Cache holds the precomputed plans for one query.
type Cache struct {
	entries []Entry
	// distinct plans by signature, for SelectByEC.
	planSet []*plan.Node
	// model is the cost model the plans were precomputed under; SelectByEC
	// re-costs with the same model so selection and precomputation agree.
	model cost.Model
}

// Model returns the cost model the cache's plans were precomputed under.
func (c *Cache) Model() cost.Model { return c.model }

// Precompute runs Algorithm C once per anticipated law and stores the
// results. Duplicate plans (several laws mapping to the same plan — the
// common case) are stored once in the candidate set.
func Precompute(cat *catalog.Catalog, blk *query.Block, opts optimizer.Options, laws []dist.Dist) (*Cache, error) {
	if len(laws) == 0 {
		return nil, ErrEmptyCache
	}
	c := &Cache{model: opts.CostModel}
	seen := map[string]bool{}
	for _, law := range laws {
		res, err := optimizer.AlgorithmC(cat, blk, opts, law)
		if err != nil {
			return nil, fmt.Errorf("parametric: precompute: %w", err)
		}
		c.entries = append(c.entries, Entry{Law: law, Plan: res.Plan, EC: res.EC})
		sig := res.Plan.Signature()
		if !seen[sig] {
			seen[sig] = true
			c.planSet = append(c.planSet, res.Plan)
		}
	}
	return c, nil
}

// Len returns the number of anticipated laws.
func (c *Cache) Len() int { return len(c.entries) }

// Plans returns the number of distinct cached plans.
func (c *Cache) Plans() int { return len(c.planSet) }

// Entries returns a copy of the cache contents.
func (c *Cache) Entries() []Entry {
	return append([]Entry(nil), c.entries...)
}

// Nearest returns the entry whose anticipated law is closest to the actual
// law in 1-Wasserstein distance — the paper's "simple table lookup".
func (c *Cache) Nearest(actual dist.Dist) (Entry, error) {
	if len(c.entries) == 0 {
		return Entry{}, ErrNoEntry
	}
	best := 0
	bestD := math.Inf(1)
	for i, e := range c.entries {
		if d := dist.Wasserstein1(e.Law, actual); d < bestD {
			best, bestD = i, d
		}
	}
	return c.entries[best], nil
}

// SelectByEC re-costs every distinct cached plan under the actual law and
// returns the cheapest with its expected cost. Cost: O(plans · b) formula
// evaluations — no plan-space search.
func (c *Cache) SelectByEC(actual dist.Dist) (*plan.Node, float64, error) {
	if len(c.planSet) == 0 {
		return nil, 0, ErrNoEntry
	}
	laws := []dist.Dist{actual}
	var bestPlan *plan.Node
	bestEC := math.Inf(1)
	bestSig := ""
	for _, p := range c.planSet {
		ec, err := optimizer.ExpectedCostModel(c.model, p, laws)
		if err != nil {
			return nil, 0, err
		}
		sig := p.Signature()
		if ec < bestEC || (ec == bestEC && sig < bestSig) {
			bestPlan, bestEC, bestSig = p, ec, sig
		}
	}
	return bestPlan, bestEC, nil
}

// CoverageGrid builds a family of anticipated bimodal memory laws spanning
// low-memory probabilities pLows at the given arms — the "good coverage"
// family suggested by the paper for environments that oscillate between a
// contended and an uncontended state.
func CoverageGrid(lo, hi float64, pLows []float64) ([]dist.Dist, error) {
	var out []dist.Dist
	for _, p := range pLows {
		d, err := dist.Bimodal(lo, hi, p)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, ErrEmptyCache
	}
	return out, nil
}
