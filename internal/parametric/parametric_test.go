package parametric

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lecopt/internal/dist"
	"lecopt/internal/optimizer"
	"lecopt/internal/workload"
)

func testScenario(t *testing.T, seed int64, n int) workload.Scenario {
	t.Helper()
	sc, err := workload.Generate(workload.DefaultSpec(n, workload.Chain), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestPrecomputeValidation(t *testing.T) {
	sc := testScenario(t, 1, 3)
	if _, err := Precompute(sc.Cat, sc.Block, optimizer.Options{}, nil); !errors.Is(err, ErrEmptyCache) {
		t.Fatal("empty laws")
	}
	empty := &Cache{}
	if _, err := empty.Nearest(dist.Point(1)); !errors.Is(err, ErrNoEntry) {
		t.Fatal("empty nearest")
	}
	if _, _, err := empty.SelectByEC(dist.Point(1)); !errors.Is(err, ErrNoEntry) {
		t.Fatal("empty select")
	}
}

func TestPrecomputeAndLookup(t *testing.T) {
	sc := testScenario(t, 2, 4)
	laws, err := CoverageGrid(64, 2048, []float64{0, 0.1, 0.25, 0.5, 0.75, 1})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := Precompute(sc.Cat, sc.Block, optimizer.Options{}, laws)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 6 {
		t.Fatalf("entries = %d", cache.Len())
	}
	if cache.Plans() < 1 || cache.Plans() > 6 {
		t.Fatalf("plans = %d", cache.Plans())
	}
	if got := len(cache.Entries()); got != 6 {
		t.Fatalf("Entries len = %d", got)
	}

	// Looking up an anticipated law exactly returns its own entry.
	for _, law := range laws {
		e, err := cache.Nearest(law)
		if err != nil {
			t.Fatal(err)
		}
		if dist.Wasserstein1(e.Law, law) > 1e-12 {
			t.Fatalf("exact law lookup drifted: %v vs %v", e.Law, law)
		}
	}
}

// TestSelectByECMatchesFullOptimization: when the actual law is one of the
// anticipated ones, re-costing the cached candidates returns exactly the
// fully-optimized expected cost.
func TestSelectByECMatchesFullOptimization(t *testing.T) {
	sc := testScenario(t, 3, 4)
	laws, err := CoverageGrid(64, 2048, []float64{0, 0.25, 0.5, 0.75, 1})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := Precompute(sc.Cat, sc.Block, optimizer.Options{}, laws)
	if err != nil {
		t.Fatal(err)
	}
	for _, law := range laws {
		_, ec, err := cache.SelectByEC(law)
		if err != nil {
			t.Fatal(err)
		}
		full, err := optimizer.AlgorithmC(sc.Cat, sc.Block, optimizer.Options{}, law)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ec-full.EC) > 1e-9*math.Max(1, full.EC) {
			t.Fatalf("cached %v vs full %v", ec, full.EC)
		}
	}
}

// TestSelectByECNearOptimalOffGrid: for laws BETWEEN grid points, the
// cached selection should be close to (and never better than) the full
// optimization.
func TestSelectByECNearOptimalOffGrid(t *testing.T) {
	sc := testScenario(t, 4, 4)
	laws, err := CoverageGrid(64, 2048, []float64{0, 0.2, 0.4, 0.6, 0.8, 1})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := Precompute(sc.Cat, sc.Block, optimizer.Options{}, laws)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	worst := 1.0
	for i := 0; i < 25; i++ {
		actual, err := dist.Bimodal(64, 2048, rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		_, ec, err := cache.SelectByEC(actual)
		if err != nil {
			t.Fatal(err)
		}
		full, err := optimizer.AlgorithmC(sc.Cat, sc.Block, optimizer.Options{}, actual)
		if err != nil {
			t.Fatal(err)
		}
		ratio := ec / full.EC
		if ratio < 1-1e-9 {
			t.Fatalf("cache cannot beat full optimization: %v", ratio)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > 1.25 {
		t.Fatalf("off-grid regret too large: %v", worst)
	}
}

// TestNearestDegradesGracefully: the constant-time lookup is allowed to be
// worse than SelectByEC but must stay sane on-grid.
func TestNearestDegradesGracefully(t *testing.T) {
	sc := testScenario(t, 5, 3)
	laws, err := CoverageGrid(64, 2048, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := Precompute(sc.Cat, sc.Block, optimizer.Options{}, laws)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := dist.Bimodal(64, 2048, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	e, err := cache.Nearest(probe)
	if err != nil {
		t.Fatal(err)
	}
	// 0.45 is closest to the p=0.5 grid law.
	if math.Abs(e.Law.PrAtMost(64)-0.5) > 1e-9 {
		t.Fatalf("nearest picked %v", e.Law)
	}
}

func TestCoverageGridValidation(t *testing.T) {
	if _, err := CoverageGrid(1, 2, nil); !errors.Is(err, ErrEmptyCache) {
		t.Fatal("empty grid")
	}
	if _, err := CoverageGrid(1, 2, []float64{2}); err == nil {
		t.Fatal("invalid probability")
	}
}

func TestWassersteinProperties(t *testing.T) {
	a := dist.MustNew([]float64{0, 10}, []float64{0.5, 0.5})
	b := dist.MustNew([]float64{0, 10}, []float64{0.9, 0.1})
	c := dist.MustNew([]float64{5}, []float64{1})
	if d := dist.Wasserstein1(a, a); d != 0 {
		t.Fatalf("self distance %v", d)
	}
	dab := dist.Wasserstein1(a, b)
	dba := dist.Wasserstein1(b, a)
	if math.Abs(dab-dba) > 1e-12 {
		t.Fatal("not symmetric")
	}
	// Mass 0.4 moved by 10 units.
	if math.Abs(dab-4) > 1e-9 {
		t.Fatalf("W1(a,b) = %v, want 4", dab)
	}
	// Point law at the midpoint: each half moves 5 units.
	if d := dist.Wasserstein1(a, c); math.Abs(d-5) > 1e-9 {
		t.Fatalf("W1(a,c) = %v, want 5", d)
	}
	// Triangle inequality on this trio.
	if dist.Wasserstein1(a, b) > dist.Wasserstein1(a, c)+dist.Wasserstein1(c, b)+1e-9 {
		t.Fatal("triangle inequality violated")
	}

	if tv := dist.TotalVariation(a, a); tv != 0 {
		t.Fatalf("TV self = %v", tv)
	}
	if tv := dist.TotalVariation(a, b); math.Abs(tv-0.4) > 1e-9 {
		t.Fatalf("TV = %v, want 0.4", tv)
	}
	disjoint := dist.MustNew([]float64{100}, []float64{1})
	if tv := dist.TotalVariation(a, disjoint); math.Abs(tv-1) > 1e-9 {
		t.Fatalf("TV disjoint = %v, want 1", tv)
	}
}
