package buffer

import (
	"errors"
	"testing"

	"lecopt/internal/storage"
)

func setup(t *testing.T, pages, tpp int) (*storage.Store, *storage.Relation) {
	t.Helper()
	s := storage.NewStore()
	r, err := storage.NewRelation("r", []string{"k"}, tpp)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < int64(pages*tpp); i++ {
		if err := r.Append(storage.Tuple{i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Add(r); err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestNewPoolValidation(t *testing.T) {
	s, _ := setup(t, 1, 1)
	if _, err := NewPool(s, 0); !errors.Is(err, ErrBadCapacity) {
		t.Fatal("zero capacity")
	}
}

func TestReadCountsAndCaches(t *testing.T) {
	s, _ := setup(t, 4, 2)
	p, err := NewPool(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := p.Read("r", i); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.Reads != 4 || st.Hits != 0 {
		t.Fatalf("cold reads: %+v", st)
	}
	for i := 0; i < 4; i++ {
		if _, err := p.Read("r", i); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.Reads != 4 || st.Hits != 4 {
		t.Fatalf("warm reads: %+v", st)
	}
	if st := p.Stats(); st.IO() != 4 {
		t.Fatalf("IO = %d", st.IO())
	}
	if p.Resident() != 4 {
		t.Fatalf("resident = %d", p.Resident())
	}
}

func TestLRUEviction(t *testing.T) {
	s, _ := setup(t, 5, 2)
	p, err := NewPool(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustRead := func(i int) {
		t.Helper()
		if _, err := p.Read("r", i); err != nil {
			t.Fatal(err)
		}
	}
	mustRead(0)
	mustRead(1)
	mustRead(2) // evicts page 0
	if p.Cached("r", 0) {
		t.Fatal("page 0 should be evicted")
	}
	if !p.Cached("r", 1) || !p.Cached("r", 2) {
		t.Fatal("pages 1,2 should be resident")
	}
	mustRead(1) // refresh 1
	mustRead(3) // evicts 2 (LRU), not 1
	if p.Cached("r", 2) || !p.Cached("r", 1) {
		t.Fatal("LRU order wrong")
	}
	if p.Resident() != 2 {
		t.Fatalf("resident = %d", p.Resident())
	}
}

// Sequential flooding: scanning n > capacity pages repeatedly gets no hits —
// the behaviour that reproduces the nested-loop thrash regime.
func TestSequentialFlooding(t *testing.T) {
	s, _ := setup(t, 6, 2)
	p, err := NewPool(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 6; i++ {
			if _, err := p.Read("r", i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := p.Stats(); st.Hits != 0 || st.Reads != 18 {
		t.Fatalf("flooding should yield zero hits: %+v", st)
	}
}

func TestAppendPageCountsWrite(t *testing.T) {
	s, _ := setup(t, 1, 2)
	tmp, err := s.NewTemp("t", []string{"k"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AppendPage(tmp.Name, []storage.Tuple{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Writes != 1 {
		t.Fatalf("writes = %d", st.Writes)
	}
	// The appended page is cached: reading it back is a hit.
	if _, err := p.Read(tmp.Name, 0); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Hits != 1 || st.Reads != 0 {
		t.Fatalf("write-through caching: %+v", st)
	}
	if err := p.AppendPage("absent", nil); err == nil {
		t.Fatal("append to missing relation should fail")
	}
}

func TestInvalidate(t *testing.T) {
	s, _ := setup(t, 3, 2)
	p, err := NewPool(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Read("r", i); err != nil {
			t.Fatal(err)
		}
	}
	p.Invalidate("r")
	if p.Resident() != 0 {
		t.Fatal("invalidate should drop all frames")
	}
	if _, err := p.Read("r", 0); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Reads != 4 {
		t.Fatalf("re-read after invalidate should miss: %+v", st)
	}
}

func TestReadErrors(t *testing.T) {
	s, _ := setup(t, 2, 2)
	p, _ := NewPool(s, 2)
	if _, err := p.Read("absent", 0); err == nil {
		t.Fatal("missing relation")
	}
	if _, err := p.Read("r", 99); err == nil {
		t.Fatal("bad page index")
	}
}

func TestResetStats(t *testing.T) {
	s, _ := setup(t, 2, 2)
	p, _ := NewPool(s, 2)
	if _, err := p.Read("r", 0); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	if st := p.Stats(); st.Reads != 0 || st.Hits != 0 || st.Writes != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
	// Cache content survives reset: next read is a hit.
	if _, err := p.Read("r", 0); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Hits != 1 {
		t.Fatalf("cache should survive reset: %+v", st)
	}
}
