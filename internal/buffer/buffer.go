// Package buffer implements a page buffer pool with LRU replacement over
// the storage layer. Every page the execution engine touches flows through
// a Pool, which counts physical reads and writes — the "measured I/O" that
// experiment E15 compares against the paper's analytic cost formulas.
package buffer

import (
	"container/list"
	"errors"
	"fmt"

	"lecopt/internal/storage"
)

// Errors.
var (
	ErrBadCapacity = errors.New("buffer: capacity must be positive")
)

// PageID identifies one page of one relation.
type PageID struct {
	Rel   string
	Index int
}

// Stats aggregates physical I/O counters.
type Stats struct {
	Reads  int64 // pages fetched from storage (cache misses)
	Writes int64 // pages written to storage
	Hits   int64 // cache hits
}

// IO returns total physical page transfers (the paper's cost unit).
func (s Stats) IO() int64 { return s.Reads + s.Writes }

// Pool is an LRU page cache. The capacity is the operator's memory budget
// M in pages: an inner relation that fits stays cached across rescans,
// reproducing the nested-loop formula's S+2 discontinuity; sequential
// floods larger than the capacity evict themselves, reproducing the
// multi-pass behaviour of external sort and hash partitioning.
type Pool struct {
	store    *storage.Store
	capacity int
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recent
	stats    Stats
}

type frame struct {
	id   PageID
	page []storage.Tuple
}

// NewPool builds a pool with the given page capacity.
func NewPool(store *storage.Store, capacity int) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	return &Pool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*list.Element),
		lru:      list.New(),
	}, nil
}

// Capacity returns the pool's page capacity.
func (p *Pool) Capacity() int { return p.capacity }

// Stats returns a copy of the I/O counters.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the counters (cache contents are kept).
func (p *Pool) ResetStats() { p.stats = Stats{} }

// Read fetches a page, counting a physical read on a miss.
func (p *Pool) Read(rel string, idx int) ([]storage.Tuple, error) {
	id := PageID{Rel: rel, Index: idx}
	if el, ok := p.frames[id]; ok {
		p.lru.MoveToFront(el)
		p.stats.Hits++
		return el.Value.(*frame).page, nil
	}
	r, err := p.store.Get(rel)
	if err != nil {
		return nil, err
	}
	page, err := r.Page(idx)
	if err != nil {
		return nil, err
	}
	p.stats.Reads++
	p.insert(id, page)
	return page, nil
}

// AppendPage writes a page to the tail of a relation (write-through: one
// physical write), and caches it. The cached frame is a copy: callers
// (pageWriter in particular) reuse the slice they pass in, and a frame
// aliasing a reused buffer mutates in place — the corruption only
// surfaces when the frame survives in the LRU until the page is re-read,
// which is exactly what happens at low partition fan-outs.
func (p *Pool) AppendPage(rel string, page []storage.Tuple) error {
	r, err := p.store.Get(rel)
	if err != nil {
		return err
	}
	if err := r.AppendPage(page); err != nil {
		return err
	}
	p.stats.Writes++
	p.insert(PageID{Rel: rel, Index: r.NumPages() - 1}, append([]storage.Tuple(nil), page...))
	return nil
}

// Invalidate drops any cached pages of a relation (call when dropping
// temporaries so stale frames cannot alias a reused name).
func (p *Pool) Invalidate(rel string) {
	for el := p.lru.Front(); el != nil; {
		next := el.Next()
		f := el.Value.(*frame)
		if f.id.Rel == rel {
			p.lru.Remove(el)
			delete(p.frames, f.id)
		}
		el = next
	}
}

func (p *Pool) insert(id PageID, page []storage.Tuple) {
	if el, ok := p.frames[id]; ok {
		el.Value.(*frame).page = page
		p.lru.MoveToFront(el)
		return
	}
	for p.lru.Len() >= p.capacity {
		oldest := p.lru.Back()
		if oldest == nil {
			break
		}
		f := oldest.Value.(*frame)
		p.lru.Remove(oldest)
		delete(p.frames, f.id)
	}
	p.frames[id] = p.lru.PushFront(&frame{id: id, page: page})
}

// Cached reports whether a page is currently resident (testing hook).
func (p *Pool) Cached(rel string, idx int) bool {
	_, ok := p.frames[PageID{Rel: rel, Index: idx}]
	return ok
}

// Resident returns the number of cached pages.
func (p *Pool) Resident() int { return p.lru.Len() }
