// Selectivity uncertainty (Section 3.6): selectivities are "notoriously
// uncertain", so Algorithm D models them — together with base-relation
// sizes and memory — as distributions. Each dynamic-programming node
// carries exactly the four distributions of the paper's Figure 1: Pr(M),
// Pr(|Bj|), Pr(|Aj|) and Pr(σ), and propagates the result-size law upward
// with Section 3.6.3 rebucketing.
//
// This example optimizes a two-way join whose selectivity estimate may be
// off by up to 5x in either direction and shows where the multi-parameter
// plan diverges from the point-estimate plan. Both optimizations go
// through one Optimizer handle; the uncertainty laws ride on the Request.
//
// Run with: go run ./examples/selectivity
package main

import (
	"fmt"
	"log"

	"lecopt"

	"lecopt/internal/catalog"
	"lecopt/internal/dist"
)

func main() {
	cat := lecopt.NewCatalog()
	mustAdd := func(t *lecopt.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if err := cat.AddTable(t); err != nil {
			log.Fatal(err)
		}
	}
	mustAdd(lecopt.NewTable("orders", 40_000, 4_000_000,
		lecopt.Column{Name: "custkey", Type: catalog.TypeInt, Distinct: 4_000_000, Min: 0, Max: 1e9}))
	mustAdd(lecopt.NewTable("customer", 10_000, 1_000_000,
		lecopt.Column{Name: "custkey", Type: catalog.TypeInt, Distinct: 1_000_000, Min: 0, Max: 1e9}))

	// Memory straddles grace-hash's √S threshold for some but not all of
	// the plausible input sizes.
	mem := dist.MustNew([]float64{60, 120, 320}, []float64{0.35, 0.35, 0.3})

	// The orders table's post-filter size is uncertain (say, upstream
	// operators make it hard to predict), and the join selectivity
	// estimate carries a 5x uncertainty band.
	sizeOrders := dist.MustNew([]float64{15_000, 40_000, 90_000}, []float64{0.25, 0.5, 0.25})
	sigma, err := catalog.SelectivityDist(1e-6, 5, 0.6)
	if err != nil {
		log.Fatal(err)
	}

	opt := lecopt.New(cat, lecopt.WithPlanSpace(lecopt.Options{SizeBuckets: 64}))
	prep, err := opt.Prepare("SELECT * FROM orders, customer WHERE orders.custkey = customer.custkey")
	if err != nil {
		log.Fatal(err)
	}
	env := lecopt.Env{Mem: mem}
	req := lecopt.Request{
		Prepared: prep,
		Env:      env,
		SelLaws: map[string]lecopt.Dist{
			lecopt.EdgeKey(prep.Block().Joins[0]): sigma,
		},
		SizeLaws: map[string]lecopt.Dist{"orders": sizeOrders},
	}

	pointReq := req
	pointReq.Alg = lecopt.AlgC // point sizes & selectivities
	pointPlan, err := opt.Optimize(pointReq)
	if err != nil {
		log.Fatal(err)
	}
	jointReq := req
	jointReq.Alg = lecopt.AlgD // full Figure-1 distributions
	jointPlan, err := opt.Optimize(jointReq)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query:", prep.Block())
	fmt.Printf("memory law: %s\n", mem)
	fmt.Printf("orders size law: %s\n", sizeOrders)
	fmt.Printf("selectivity law: %s\n\n", sigma)

	fmt.Println("Algorithm C (memory-only uncertainty):")
	fmt.Println(pointPlan.Plan)
	fmt.Printf("  selection score: %.6g\n\n", pointPlan.Score)

	fmt.Println("Algorithm D (memory + size + selectivity uncertainty):")
	fmt.Println(jointPlan.Plan)
	fmt.Printf("  selection score: %.6g\n\n", jointPlan.Score)

	if pointPlan.Plan.Signature() == jointPlan.Plan.Signature() {
		fmt.Println("same plan under both models — the size/selectivity uncertainty")
		fmt.Println("was not enough to flip the method choice in this configuration")
	} else {
		fmt.Println("the plans DIFFER: size/selectivity uncertainty flipped the choice —")
		fmt.Println("Algorithm D hedged against the heavy tail of the size law")
	}
}
