// Selectivity uncertainty (Section 3.6): selectivities are "notoriously
// uncertain", so Algorithm D models them — together with base-relation
// sizes and memory — as distributions. Each dynamic-programming node
// carries exactly the four distributions of the paper's Figure 1: Pr(M),
// Pr(|Bj|), Pr(|Aj|) and Pr(σ), and propagates the result-size law upward
// with Section 3.6.3 rebucketing.
//
// This example optimizes a two-way join whose selectivity estimate may be
// off by up to 5x in either direction and shows where the multi-parameter
// plan diverges from the point-estimate plan.
//
// Run with: go run ./examples/selectivity
package main

import (
	"fmt"
	"log"

	"lecopt/internal/catalog"
	"lecopt/internal/core"
	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/sqlmini"
)

func main() {
	cat := catalog.New()
	mustAdd := func(t *catalog.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if err := cat.AddTable(t); err != nil {
			log.Fatal(err)
		}
	}
	mustAdd(catalog.NewTable("orders", 40_000, 4_000_000,
		catalog.Column{Name: "custkey", Type: catalog.TypeInt, Distinct: 4_000_000, Min: 0, Max: 1e9}))
	mustAdd(catalog.NewTable("customer", 10_000, 1_000_000,
		catalog.Column{Name: "custkey", Type: catalog.TypeInt, Distinct: 1_000_000, Min: 0, Max: 1e9}))

	blk, err := sqlmini.ParseAndValidate(
		"SELECT * FROM orders, customer WHERE orders.custkey = customer.custkey", cat)
	if err != nil {
		log.Fatal(err)
	}

	// Memory straddles grace-hash's √S threshold for some but not all of
	// the plausible input sizes.
	mem := dist.MustNew([]float64{60, 120, 320}, []float64{0.35, 0.35, 0.3})

	// The orders table's post-filter size is uncertain (say, upstream
	// operators make it hard to predict), and the join selectivity
	// estimate carries a 5x uncertainty band.
	sizeOrders := dist.MustNew([]float64{15_000, 40_000, 90_000}, []float64{0.25, 0.5, 0.25})
	sigma, err := catalog.SelectivityDist(1e-6, 5, 0.6)
	if err != nil {
		log.Fatal(err)
	}

	sc := &core.Scenario{
		Cat:   cat,
		Query: blk,
		Env:   envsim.Env{Mem: mem},
		SelLaws: map[string]dist.Dist{
			optimizer.EdgeKey(blk.Joins[0]): sigma,
		},
		SizeLaws: map[string]dist.Dist{"orders": sizeOrders},
		Opts:     optimizer.Options{SizeBuckets: 64},
	}

	pointPlan, err := sc.Optimize(core.AlgC) // point sizes & selectivities
	if err != nil {
		log.Fatal(err)
	}
	jointPlan, err := sc.Optimize(core.AlgD) // full Figure-1 distributions
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query:", blk)
	fmt.Printf("memory law: %s\n", mem)
	fmt.Printf("orders size law: %s\n", sizeOrders)
	fmt.Printf("selectivity law: %s\n\n", sigma)

	fmt.Println("Algorithm C (memory-only uncertainty):")
	fmt.Println(pointPlan.Plan)
	fmt.Printf("  selection score: %.6g\n\n", pointPlan.Score)

	fmt.Println("Algorithm D (memory + size + selectivity uncertainty):")
	fmt.Println(jointPlan.Plan)
	fmt.Printf("  selection score: %.6g\n\n", jointPlan.Score)

	if pointPlan.Plan.Signature() == jointPlan.Plan.Signature() {
		fmt.Println("same plan under both models — the size/selectivity uncertainty")
		fmt.Println("was not enough to flip the method choice in this configuration")
	} else {
		fmt.Println("the plans DIFFER: size/selectivity uncertainty flipped the choice —")
		fmt.Println("Algorithm D hedged against the heavy tail of the size law")
	}
}
