// Warehouse fleet: the paper's introduction motivates LEC optimization
// with queries that are "optimized once and then evaluated repeatedly,
// often over many months or years". This example plans a star-schema
// analytics fleet (a sales fact table with four dimensions) under a
// volatile memory environment, then simulates thousands of executions and
// totals the realized I/O of the classically-planned fleet versus the
// LEC-planned fleet.
//
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lecopt/internal/core"
	"lecopt/internal/envsim"
	"lecopt/internal/plan"
	"lecopt/internal/workload"
)

func main() {
	cat, queries, err := workload.Warehouse()
	if err != nil {
		log.Fatal(err)
	}
	envs, err := workload.StandardEnvs()
	if err != nil {
		log.Fatal(err)
	}
	var env envsim.Env
	for _, ne := range envs {
		if ne.Name == "wide-spread" {
			env = ne.Env
		}
	}

	fmt.Printf("environment: memory %s\n\n", env.Mem)
	const runsPerQuery = 5000
	var fleetLSC, fleetLEC float64
	for i, q := range queries {
		sc := &core.Scenario{Cat: cat, Query: q, Env: env}
		reports, err := sc.Compare(core.AlgLSCMean, core.AlgC)
		if err != nil {
			log.Fatal(err)
		}
		lsc, lec := reports[0], reports[1]
		same := "same plan"
		if lsc.Plan.Signature() != lec.Plan.Signature() {
			same = "plans differ"
		}
		fmt.Printf("Q%d: %s\n", i+1, q)
		fmt.Printf("    EC lsc-mean %.6g | algorithm-c %.6g  (%s)\n", lsc.EC, lec.EC, same)
		if same == "plans differ" {
			fmt.Printf("    lsc plan:  %s\n", lsc.Plan.Signature())
			fmt.Printf("    lec plan:  %s\n", lec.Plan.Signature())
		}

		tour := &envsim.Tournament{
			Names: []string{"lsc", "lec"},
			Plans: []*plan.Node{lsc.Plan, lec.Plan},
		}
		res, err := tour.Run(env, runsPerQuery, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			log.Fatal(err)
		}
		fleetLSC += res.Stats[0].Total
		fleetLEC += res.Stats[1].Total
		fmt.Printf("    realized mean over %d runs: lsc %.6g | lec %.6g\n\n",
			runsPerQuery, res.Stats[0].Mean, res.Stats[1].Mean)
	}
	fmt.Printf("fleet total realized I/O: lsc %.6g | lec %.6g | savings %.2f%%\n",
		fleetLSC, fleetLEC, 100*(1-fleetLEC/fleetLSC))
}
