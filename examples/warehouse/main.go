// Warehouse fleet: the paper's introduction motivates LEC optimization
// with queries that are "optimized once and then evaluated repeatedly,
// often over many months or years". This example plans a star-schema
// analytics fleet (a sales fact table with four dimensions) under a
// volatile memory environment through one long-lived Optimizer handle,
// then simulates thousands of executions and totals the realized I/O of
// the classically-planned fleet versus the LEC-planned fleet.
//
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"
	"log"

	"lecopt"

	"lecopt/internal/workload"
)

func main() {
	cat, queries, err := workload.Warehouse()
	if err != nil {
		log.Fatal(err)
	}
	envs, err := workload.StandardEnvs()
	if err != nil {
		log.Fatal(err)
	}
	var env lecopt.Env
	for _, ne := range envs {
		if ne.Name == "wide-spread" {
			env = ne.Env
		}
	}

	opt := lecopt.New(cat)
	fmt.Printf("environment: memory %s\n\n", env.Mem)
	const runsPerQuery = 5000
	var fleetLSC, fleetLEC float64
	for i, q := range queries {
		req := lecopt.Request{Query: q, Env: env}
		lscReq, lecReq := req, req
		lscReq.Alg = lecopt.AlgLSCMean
		lecReq.Alg = lecopt.AlgC
		lsc, err := opt.Optimize(lscReq)
		if err != nil {
			log.Fatal(err)
		}
		lec, err := opt.Optimize(lecReq)
		if err != nil {
			log.Fatal(err)
		}
		same := "same plan"
		if lsc.Plan.Signature() != lec.Plan.Signature() {
			same = "plans differ"
		}
		fmt.Printf("Q%d: %s\n", i+1, q)
		fmt.Printf("    EC lsc-mean %.6g | algorithm-c %.6g  (%s)\n", lsc.EC, lec.EC, same)
		if same == "plans differ" {
			fmt.Printf("    lsc plan:  %s\n", lsc.Plan.Signature())
			fmt.Printf("    lec plan:  %s\n", lec.Plan.Signature())
		}

		res, err := opt.Tournament(req, []lecopt.PlanReport{lsc.PlanReport, lec.PlanReport},
			runsPerQuery, int64(i))
		if err != nil {
			log.Fatal(err)
		}
		fleetLSC += res.Stats[0].Total
		fleetLEC += res.Stats[1].Total
		fmt.Printf("    realized mean over %d runs: lsc %.6g | lec %.6g\n\n",
			runsPerQuery, res.Stats[0].Mean, res.Stats[1].Mean)
	}
	fmt.Printf("fleet total realized I/O: lsc %.6g | lec %.6g | savings %.2f%%\n",
		fleetLSC, fleetLEC, 100*(1-fleetLEC/fleetLSC))
}
