// Parametric LEC optimization ([INSS92] + §3.2/§3.4): the paper proposes
// precomputing "the best expected plan under a number of possible
// distributions (ones that give good coverage of what we expect to
// encounter at run-time)" and storing these expected plans for query
// execution time. In the service API this is exactly what Prepare does:
// a handle configured with anticipated memory laws precomputes one
// [INSS92]-style plan set per drift factor for every prepared statement,
// and Prepared.Select answers start-up-time laws — including ones far off
// the grid — without re-running the optimizer's plan-space search.
//
// Run with: go run ./examples/parametric
package main

import (
	"fmt"
	"log"

	"lecopt"

	"lecopt/internal/experiments"
)

func main() {
	cat, _, err := experiments.Example11()
	if err != nil {
		log.Fatal(err)
	}

	// Compile time: anticipate bimodal memory laws over a grid of
	// contention probabilities; Prepare precomputes one LEC plan per law.
	grid := []float64{0, 0.25, 0.5, 0.75, 1}
	laws, err := lecopt.CoverageGrid(700, 2000, grid)
	if err != nil {
		log.Fatal(err)
	}
	opt := lecopt.New(cat,
		lecopt.WithPlanSpace(experiments.Example11Opts()),
		lecopt.WithAnticipatedLaws(laws...),
	)
	prep, err := opt.Prepare("SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.k")
	if err != nil {
		log.Fatal(err)
	}
	entries := prep.Entries(1)
	distinct := map[string]bool{}
	for _, e := range entries {
		distinct[e.Plan.Signature()] = true
	}
	fmt.Printf("prepared %q\n", prep.SQL())
	fmt.Printf("precomputed %d laws -> %d distinct plans\n\n", len(entries), len(distinct))
	for _, e := range entries {
		fmt.Printf("  anticipated %s -> %s (EC %.6g)\n", e.Law, e.Plan.Signature(), e.EC)
	}

	// Start-up time: the observed law differs from every anticipated one.
	fmt.Println("\nstart-up-time laws:")
	for _, p := range []float64{0.001, 0.1, 0.6} {
		actual, err := lecopt.Bimodal(700, 2000, p)
		if err != nil {
			log.Fatal(err)
		}
		// Constant-time variant: nearest anticipated law.
		near, err := prep.Nearest(actual)
		if err != nil {
			log.Fatal(err)
		}
		// Candidate re-costing variant: exact over the cached plans.
		best, err := prep.Select(actual)
		if err != nil {
			log.Fatal(err)
		}
		// Reference: full optimization from scratch (through the handle's
		// plan cache).
		full, err := prep.Optimize(lecopt.Env{Mem: actual}, lecopt.AlgC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Pr(700)=%.3f  nearest->%s  select->%s (EC %.6g)  full opt EC %.6g  regret %.2g%%\n",
			p, near.Plan.Signature(), best.Plan.Signature(), best.EC, full.EC, 100*(best.EC/full.EC-1))
	}
}
