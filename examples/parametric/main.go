// Parametric LEC optimization ([INSS92] + §3.2/§3.4): the paper proposes
// precomputing "the best expected plan under a number of possible
// distributions (ones that give good coverage of what we expect to
// encounter at run-time)" and storing them for start-up-time use. This
// example precomputes a plan cache for Example 1.1 over a grid of
// contention probabilities, then answers start-up-time laws — including
// ones far off the grid — without re-running the optimizer's plan-space
// search.
//
// Run with: go run ./examples/parametric
package main

import (
	"fmt"
	"log"

	"lecopt/internal/dist"
	"lecopt/internal/experiments"
	"lecopt/internal/optimizer"
	"lecopt/internal/parametric"
)

func main() {
	cat, blk, err := experiments.Example11()
	if err != nil {
		log.Fatal(err)
	}
	opts := experiments.Example11Opts()

	// Compile time: one LEC optimization per anticipated law.
	grid := []float64{0, 0.25, 0.5, 0.75, 1}
	laws, err := parametric.CoverageGrid(700, 2000, grid)
	if err != nil {
		log.Fatal(err)
	}
	cache, err := parametric.Precompute(cat, blk, opts, laws)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("precomputed %d laws -> %d distinct plans\n\n", cache.Len(), cache.Plans())
	for _, e := range cache.Entries() {
		fmt.Printf("  anticipated %s -> %s (EC %.6g)\n", e.Law, e.Plan.Signature(), e.EC)
	}

	// Start-up time: the observed law differs from every anticipated one.
	fmt.Println("\nstart-up-time laws:")
	for _, p := range []float64{0.001, 0.1, 0.6} {
		actual, err := dist.Bimodal(700, 2000, p)
		if err != nil {
			log.Fatal(err)
		}
		// Constant-time variant: nearest anticipated law.
		near, err := cache.Nearest(actual)
		if err != nil {
			log.Fatal(err)
		}
		// Candidate re-costing variant: exact over the cached plans.
		best, ec, err := cache.SelectByEC(actual)
		if err != nil {
			log.Fatal(err)
		}
		// Reference: full optimization from scratch.
		full, err := optimizer.AlgorithmC(cat, blk, opts, actual)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Pr(700)=%.3f  nearest->%s  select->%s (EC %.6g)  full opt EC %.6g  regret %.2g%%\n",
			p, near.Plan.Signature(), best.Signature(), ec, full.EC, 100*(ec/full.EC-1))
	}
}
