// Dynamic memory (Section 3.5): during a long-running multi-join query,
// concurrent work starts and finishes, so the buffer pages available to
// each join phase drift as a Markov chain. This example optimizes a
// four-table chain join three ways —
//
//	lsc-mean:   classical, at the mean initial memory
//	static C:   LEC, but pretending the initial law holds for all phases
//	dynamic C:  LEC with per-phase laws pushed through the chain
//
// — and then simulates real executions where memory actually drifts.
//
// Run with: go run ./examples/dynamicmemory
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lecopt/internal/dist"
	"lecopt/internal/envsim"
	"lecopt/internal/optimizer"
	"lecopt/internal/plan"
	"lecopt/internal/workload"
)

func main() {
	// A reproducible 4-table chain query over a random catalog.
	sc, err := workload.Generate(workload.DefaultSpec(4, workload.Chain), rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	// Memory levels and a drift-down-prone chain: the query starts while
	// the system is quiet but tends to lose memory as it runs.
	levels := []float64{64, 512, 4096}
	chain, err := dist.RandomWalk(levels, 0.1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	init := dist.MustNew(levels, []float64{0.1, 0.3, 0.6})
	env := envsim.Env{Mem: init, Chain: chain}

	laws, err := env.PhaseLaws(len(sc.Block.Tables) - 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-phase memory laws (the distribution each join sees):")
	for i, l := range laws {
		fmt.Printf("  phase %d: %s\n", i, l)
	}
	fmt.Println()

	lsc, err := optimizer.LSC(sc.Cat, sc.Block, optimizer.Options{}, init.Mean())
	if err != nil {
		log.Fatal(err)
	}
	static, err := optimizer.AlgorithmC(sc.Cat, sc.Block, optimizer.Options{}, init)
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := optimizer.AlgorithmCDynamic(sc.Cat, sc.Block, optimizer.Options{}, init, chain)
	if err != nil {
		log.Fatal(err)
	}

	for _, entry := range []struct {
		name string
		p    *plan.Node
	}{{"lsc-mean", lsc.Plan}, {"static-C", static.Plan}, {"dynamic-C", dynamic.Plan}} {
		ec, err := optimizer.ExpectedCost(entry.p, laws)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s EC under true phase laws: %.6g\n", entry.name, ec)
	}

	// Realized-cost tournament with common random numbers.
	tour := &envsim.Tournament{
		Names: []string{"lsc-mean", "static-C", "dynamic-C"},
		Plans: []*plan.Node{lsc.Plan, static.Plan, dynamic.Plan},
	}
	res, err := tour.Run(env, 20000, rand.New(rand.NewSource(99)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrealized costs over 20000 simulated executions:")
	for i, name := range res.Names {
		fmt.Printf("  %-10s mean %.6g  p95 %.6g\n", name, res.Stats[i].Mean, res.Stats[i].P95)
	}
}
