// Dynamic memory (Section 3.5): during a long-running multi-join query,
// concurrent work starts and finishes, so the buffer pages available to
// each join phase drift as a Markov chain. This example optimizes a
// four-table chain join three ways —
//
//	lsc-mean:   classical, at the mean initial memory
//	static C:   LEC, but pretending the initial law holds for all phases
//	dynamic C:  LEC with per-phase laws pushed through the chain
//
// — and then simulates real executions where memory actually drifts. All
// three policies run through one Optimizer service handle.
//
// Run with: go run ./examples/dynamicmemory
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lecopt"

	"lecopt/internal/dist"
	"lecopt/internal/workload"
)

func main() {
	// A reproducible 4-table chain query over a random catalog.
	sc, err := workload.Generate(workload.DefaultSpec(4, workload.Chain), rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	// Memory levels and a drift-down-prone chain: the query starts while
	// the system is quiet but tends to lose memory as it runs.
	levels := []float64{64, 512, 4096}
	chain, err := dist.RandomWalk(levels, 0.1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	init := dist.MustNew(levels, []float64{0.1, 0.3, 0.6})
	dynEnv := lecopt.Env{Mem: init, Chain: chain}

	laws, err := dynEnv.PhaseLaws(len(sc.Block.Tables) - 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-phase memory laws (the distribution each join sees):")
	for i, l := range laws {
		fmt.Printf("  phase %d: %s\n", i, l)
	}
	fmt.Println()

	opt := lecopt.New(sc.Cat)
	lsc, err := opt.Optimize(lecopt.Request{Query: sc.Block, Env: lecopt.Env{Mem: init}, Alg: lecopt.AlgLSCMean})
	if err != nil {
		log.Fatal(err)
	}
	static, err := opt.Optimize(lecopt.Request{Query: sc.Block, Env: lecopt.Env{Mem: init}, Alg: lecopt.AlgC})
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := opt.Optimize(lecopt.Request{Query: sc.Block, Env: dynEnv, Alg: lecopt.AlgC})
	if err != nil {
		log.Fatal(err)
	}

	for _, entry := range []struct {
		name string
		p    *lecopt.Plan
	}{{"lsc-mean", lsc.Plan}, {"static-C", static.Plan}, {"dynamic-C", dynamic.Plan}} {
		ec, err := lecopt.ExpectedCost(entry.p, laws)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s EC under true phase laws: %.6g\n", entry.name, ec)
	}

	// Realized-cost tournament with common random numbers under the true
	// dynamic environment.
	reports := []lecopt.PlanReport{lsc.PlanReport, static.PlanReport, dynamic.PlanReport}
	res, err := opt.Tournament(lecopt.Request{Query: sc.Block, Env: dynEnv}, reports, 20000, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrealized costs over 20000 simulated executions:")
	names := []string{"lsc-mean", "static-C", "dynamic-C"}
	for i, name := range names {
		fmt.Printf("  %-10s mean %.6g  p95 %.6g\n", name, res.Stats[i].Mean, res.Stats[i].P95)
	}
}
