// Quickstart: the paper's Example 1.1 through the public API.
//
// Two plans compete for "SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.k"
// with A = 1,000,000 pages and B = 400,000 pages:
//
//	Plan 1: sort-merge join (output already ordered)
//	Plan 2: grace-hash join + explicit sort of the 3,000-page result
//
// Memory is 2000 pages 80% of the time and 700 pages 20% of the time. The
// classical optimizer plans at the mode (or mean) and picks Plan 1; the
// least-expected-cost optimizer picks Plan 2, which is slightly worse 80%
// of the time and vastly better 20% of the time.
//
// The program goes through the service API: build a long-lived Optimizer
// handle over the catalog, prepare the statement once, and optimize it
// under each policy.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lecopt"
)

func main() {
	cat := lecopt.NewCatalog()
	// The join key's distinct count is chosen so the standard 1/max(V)
	// estimator yields the paper's 3,000-page join result.
	a, err := lecopt.NewTable("A", 1_000_000, 100_000_000,
		lecopt.Column{Name: "k", Distinct: 4e13 / 3000.0, Min: 0, Max: 1e12})
	if err != nil {
		log.Fatal(err)
	}
	b, err := lecopt.NewTable("B", 400_000, 40_000_000,
		lecopt.Column{Name: "k", Distinct: 1000, Min: 0, Max: 1e12})
	if err != nil {
		log.Fatal(err)
	}
	if err := cat.AddTable(a); err != nil {
		log.Fatal(err)
	}
	if err := cat.AddTable(b); err != nil {
		log.Fatal(err)
	}

	mem, err := lecopt.Bimodal(700, 2000, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	env := lecopt.Env{Mem: mem}

	// The long-lived handle owns the plan cache; Prepare parses and
	// validates the statement once.
	opt := lecopt.New(cat)
	prep, err := opt.Prepare("SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.k")
	if err != nil {
		log.Fatal(err)
	}

	classical, err := prep.Optimize(env, lecopt.AlgLSCMode)
	if err != nil {
		log.Fatal(err)
	}
	lec, err := prep.Optimize(env, lecopt.AlgC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("classical (LSC at modal memory 2000):")
	fmt.Println(classical.Plan)
	fmt.Printf("  cost at 2000 pages: %.4g\n", classical.Plan.CostAt(2000))
	fmt.Printf("  cost at  700 pages: %.4g\n", classical.Plan.CostAt(700))
	fmt.Printf("  expected cost:      %.4g\n\n", classical.EC)

	fmt.Println("least expected cost (Algorithm C):")
	fmt.Println(lec.Plan)
	fmt.Printf("  cost at 2000 pages: %.4g\n", lec.Plan.CostAt(2000))
	fmt.Printf("  cost at  700 pages: %.4g\n", lec.Plan.CostAt(700))
	fmt.Printf("  expected cost:      %.4g\n\n", lec.EC)

	fmt.Printf("LEC saves %.1f%% expected I/O over the classical plan\n",
		100*(1-lec.EC/classical.EC))

	// Verify by simulation: 100k executions under the memory law.
	st, err := opt.Simulate(lecopt.Request{Prepared: prep, Env: env}, lec.Plan, 100_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated mean of the LEC plan over %d runs: %.6g (analytic %.6g)\n",
		st.Runs, st.Mean, lec.EC)
}
