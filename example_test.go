package lecopt_test

import (
	"fmt"
	"log"

	"lecopt"
)

// buildExample11 assembles the paper's motivating catalog.
func buildExample11() *lecopt.Catalog {
	cat := lecopt.NewCatalog()
	a, err := lecopt.NewTable("A", 1_000_000, 100_000_000,
		lecopt.Column{Name: "k", Distinct: 4e13 / 3000.0, Min: 0, Max: 1e12})
	if err != nil {
		log.Fatal(err)
	}
	b, err := lecopt.NewTable("B", 400_000, 40_000_000,
		lecopt.Column{Name: "k", Distinct: 1000, Min: 0, Max: 1e12})
	if err != nil {
		log.Fatal(err)
	}
	if err := cat.AddTable(a); err != nil {
		log.Fatal(err)
	}
	if err := cat.AddTable(b); err != nil {
		log.Fatal(err)
	}
	return cat
}

// Example reproduces the paper's Example 1.1 through the public API: the
// classical optimizer picks the sort-merge plan, the LEC optimizer picks
// grace-hash + sort, and the LEC plan wins in expectation.
func Example() {
	cat := buildExample11()
	blk, err := lecopt.ParseSQL("SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.k", cat)
	if err != nil {
		log.Fatal(err)
	}
	mem, err := lecopt.Bimodal(700, 2000, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	sc := &lecopt.Scenario{Cat: cat, Query: blk, Env: lecopt.Env{Mem: mem}}

	classical, err := sc.Optimize(lecopt.AlgLSCMode)
	if err != nil {
		log.Fatal(err)
	}
	lec, err := sc.Optimize(lecopt.AlgC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classical: %s (EC %.4g)\n", classical.Plan.Signature(), classical.EC)
	fmt.Printf("lec:       %s (EC %.4g)\n", lec.Plan.Signature(), lec.EC)
	fmt.Printf("lec wins: %v\n", lec.EC < classical.EC)
	// Output:
	// classical: (A sort-merge B) (EC 3.36e+06)
	// lec:       sort<A.k>((A grace-hash B)) (EC 2.806e+06)
	// lec wins: true
}

// ExampleScenario_Compare runs several algorithms at once and reports each
// plan's expected cost under the same environment.
func ExampleScenario_Compare() {
	cat := buildExample11()
	blk, err := lecopt.ParseSQL("SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.k", cat)
	if err != nil {
		log.Fatal(err)
	}
	mem, err := lecopt.Bimodal(700, 2000, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	sc := &lecopt.Scenario{Cat: cat, Query: blk, Env: lecopt.Env{Mem: mem}}
	reports, err := sc.Compare(lecopt.AlgLSCMean, lecopt.AlgA, lecopt.AlgC)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("%-11s EC %.4g\n", r.Algorithm, r.EC)
	}
	// Output:
	// lsc-mean    EC 3.36e+06
	// algorithm-a EC 2.806e+06
	// algorithm-c EC 2.806e+06
}

// ExamplePointDist shows the degenerate law under which every LEC
// algorithm coincides with the classical optimizer.
func ExamplePointDist() {
	p := lecopt.PointDist(1000)
	fmt.Println(p.Mean(), p.Len())
	// Output: 1000 1
}
