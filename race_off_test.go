//go:build !race

package lecopt

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation adds allocations that would fail the hot-path gates.
const raceEnabled = false
