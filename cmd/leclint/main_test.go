package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunCleanTree pins the acceptance gate: leclint over the repo's own
// tree finds nothing (every violation is fixed or carries a justified
// allow directive).
func TestRunCleanTree(t *testing.T) {
	var sb strings.Builder
	n, err := run(".", false, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("leclint found %d violation(s) in the tree:\n%s", n, sb.String())
	}
}

// TestRunJSON checks the tooling contract: -json always emits a valid
// JSON array, empty on a clean tree.
func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	n, err := run(".", true, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var diags []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, sb.String())
	}
	if len(diags) != n {
		t.Fatalf("JSON array has %d entries, run reported %d", len(diags), n)
	}
}
