// Command leclint runs the repo's typed static-analysis suite
// (internal/lint) over the whole module and reports every invariant
// violation as file:line:col: [analyzer] message, exiting nonzero when
// anything is found. It is the CI lane's entry point; `go test ./...`
// enforces the same gate through internal/lint's module test.
//
// Usage:
//
//	leclint [-json] [-list] [./...]
//
// The only supported pattern is the whole module (./...); leclint's
// analyzers are module-wide by design — a partial run could vacuously
// pass an invariant whose violation sits in an unlisted package.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lecopt/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (for tooling)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: leclint [-json] [-list] [./...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "all" {
			fmt.Fprintf(os.Stderr, "leclint: unsupported pattern %q (leclint always analyzes the whole module; use ./...)\n", arg)
			os.Exit(2)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "leclint:", err)
		os.Exit(2)
	}
	n, err := run(wd, *jsonOut, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leclint:", err)
		os.Exit(2)
	}
	if n > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "leclint: %d finding(s)\n", n)
		}
		os.Exit(1)
	}
}

// run loads the module at (or above) dir, executes the full analyzer
// registry, writes diagnostics to out, and returns the finding count.
func run(dir string, jsonOut bool, out io.Writer) (int, error) {
	mod, err := lint.LoadModule(dir)
	if err != nil {
		return 0, err
	}
	diags := lint.Run(mod, lint.Analyzers())
	if jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			return len(diags), err
		}
		return len(diags), nil
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	return len(diags), nil
}
